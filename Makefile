# Convenience targets for the PERT reproduction.

GO ?= go

.PHONY: all build test vet check validate-scenarios bench bench-micro bench-smoke bench-shards cache-smoke chaos-smoke shard-smoke shard-diff hybrid-smoke results results-paper fuzz clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet, every committed example scenario validated against the
# loader, then the test suite under the race detector (exercises the harness
# and the parallel sweep workers).
check: vet validate-scenarios
	$(GO) test -race -timeout 20m ./...

# Validate every example scenario JSON against the live loader.
validate-scenarios:
	@for f in examples/scenarios/*.json; do \
		$(GO) run ./cmd/pertsim -config $$f -validate || exit 1; \
	done

# Perf-regression reference point: one single-worker quick-scale sweep,
# recorded as a machine-readable report (wall time, events/s, mallocs and
# allocs/event per experiment). Compare BENCH_quick.json across commits to
# spot hot-path regressions; add -cpuprofile/-memprofile to find them.
bench:
	$(GO) run ./cmd/pertbench -scale quick -json -parallel 1 > BENCH_quick.json

# Go micro-benchmarks: every paper figure/table at quick scale, ablations,
# and substrate benchmarks (ns/event, allocs/event, saturated-link cost).
bench-micro:
	$(GO) test -bench=. -benchmem ./...

# Fast benchmark sanity pass for CI: run each microbenchmark once, the
# allocation-budget tests that pin the zero-alloc hot paths (including the
# disabled-metrics path), and the metrics-overhead budget (<10% on the
# benchmark dumbbell with sampling at the default interval).
bench-smoke:
	$(GO) test -run 'TestScheduleAllocBudget|TestLinkAllocBudget' -bench=. -benchtime=1x -benchmem ./internal/sim/ ./internal/netem/
	$(GO) test -run 'TestMetricsOverheadSmoke' -bench 'BenchmarkSimulatedSecond' -benchtime=1x -benchmem .

# Shard speedup measurement: wall time of the 8-bottleneck parking-lot
# benchmark at increasing shard counts, serial first as the baseline.
# Informational, not a CI gate — real speedup needs real cores; a 1-core
# container serializes the shard goroutines and shows ~1x. When a
# BENCH_quick.json from `make bench` exists, the table is recorded into it
# under .shard_scaling so shard-speedup history rides along with the
# perf-regression reference point.
bench-shards:
	@rows=""; \
	for n in 1 2 4 8; do \
		start=$$(date +%s%N); \
		$(GO) run ./cmd/pertbench -scale quick -exp ext-parkinglot-xl -parallel 1 -shards $$n > /dev/null || exit 1; \
		end=$$(date +%s%N); \
		ms=$$(( (end - start) / 1000000 )); \
		echo "ext-parkinglot-xl shards=$$n wall_ms=$$ms"; \
		rows="$$rows{\"shards\":$$n,\"wall_ms\":$$ms},"; \
	done; \
	if [ -f BENCH_quick.json ]; then \
		jq --argjson t "[$${rows%,}]" \
			'.shard_scaling = {"experiment":"ext-parkinglot-xl","scale":"quick","wall_ms_by_shards":$$t}' \
			BENCH_quick.json > BENCH_quick.json.tmp && mv BENCH_quick.json.tmp BENCH_quick.json; \
		echo "bench-shards: recorded under .shard_scaling in BENCH_quick.json"; \
	else \
		echo "bench-shards: no BENCH_quick.json (run 'make bench' first); table not recorded"; \
	fi

# Sharded-engine smoke: the conservative-lookahead parallel engine's
# correctness gate. Runs the shard unit and integration tests under the race
# detector (cross-shard ports, domain partitioning, queue-RNG rebinding,
# schedule migration, lazy cross-domain web sinks, the sharded runner's
# one-shard bit-identity against the serial path, fixed-N determinism, and
# the quick subset of the serial↔sharded differential suite), then
# the cross-shard zero-alloc budget without race instrumentation, then the
# CLI path end to end: -shards 1 must take the serial engine, and two
# -shards 4 runs must note per-shard event counts and agree byte for byte
# once wall-clock timing lines are filtered.
shard-smoke:
	$(GO) test -race -count=1 -timeout 15m -run 'Shard|Partition|TestCounters|TestDomainAudit' ./internal/sim/ ./internal/netem/ ./internal/scenario/ ./internal/experiments/ ./internal/tcp/ ./internal/trafficgen/
	$(GO) test -count=1 -run 'TestShardSendDrainAllocBudget' ./internal/sim/
	@dir=$$(mktemp -d); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/pertbench -scale quick -exp ext-parkinglot-xl -parallel 1 -shards 1 > "$$dir/serial.txt" || exit 1; \
	grep -q 'run serially (shards=1)' "$$dir/serial.txt" || { echo "shard-smoke: -shards 1 did not take the serial path"; exit 1; }; \
	$(GO) run ./cmd/pertbench -scale quick -exp ext-parkinglot-xl -parallel 1 -shards 4 > "$$dir/s4a.txt" || exit 1; \
	$(GO) run ./cmd/pertbench -scale quick -exp ext-parkinglot-xl -parallel 1 -shards 4 > "$$dir/s4b.txt" || exit 1; \
	grep -q 'shards=4 events_per_shard=' "$$dir/s4a.txt" || { echo "shard-smoke: missing per-shard event counts"; exit 1; }; \
	grep -v 'completed in' "$$dir/s4a.txt" > "$$dir/s4a.flat"; \
	grep -v 'completed in' "$$dir/s4b.txt" > "$$dir/s4b.flat"; \
	diff -u "$$dir/s4a.flat" "$$dir/s4b.flat" || { echo "shard-smoke: sharded run not deterministic"; exit 1; }; \
	echo "shard-smoke: OK (serial path, per-shard counts, deterministic replay)"

# Serial↔sharded differential suite, full depth: every registry experiment and
# every committed example scenario run serial, -shards 1, 2 and 4, three reps
# each. Byte-identity is asserted where the engine guarantees it (shards=1
# always; shards>1 for experiments whose only cut is vacuous) and fixed-N
# determinism everywhere else. The default `go test` run covers a quick subset
# of the same table; this target removes the subset gate.
shard-diff:
	PERT_SHARDDIFF=full $(GO) test ./internal/experiments -run 'TestShardDiff' -count=1 -timeout 30m -v

# Hybrid fluid/packet smoke: the substrate's correctness gate (DESIGN.md
# §10). Runs the fluid stepper and coupling unit tests, the scenario
# fluid-group validation/identity tests, and the ext-hybrid equilibrium
# conformance acceptance check (shared queue vs eq. (9) within 10%), then
# the CLI path end to end: the hybrid example scenario must validate and
# run serially, and a -shards request on it must be rejected with a clear
# error, not a panic or a wrong answer.
hybrid-smoke:
	$(GO) test -count=1 -timeout 10m -run 'Stepper|Hybrid|Fluid' ./internal/fluid/ ./internal/netem/ ./internal/scenario/ ./internal/experiments/
	$(GO) run ./cmd/pertsim -config examples/scenarios/hybrid_isp.json -validate
	$(GO) run ./cmd/pertsim -config examples/scenarios/hybrid_isp.json > /dev/null
	@if $(GO) run ./cmd/pertsim -config examples/scenarios/hybrid_isp.json -shards 4 >/dev/null 2>&1; then \
		echo "hybrid-smoke: sharded hybrid run must be rejected"; exit 1; \
	fi
	@echo "hybrid-smoke: OK (unit+conformance tests, example scenario, serial-only rejection)"

# Cache smoke: the same tiny sweep twice into one cache directory. The warm
# run must replay every cell (top-level sim_events stays 0, both runs marked
# cached) and — once timing and cache-bookkeeping lines are filtered — emit a
# byte-identical report. Guards the resume/replay contract end to end.
cache-smoke:
	@dir=$$(mktemp -d); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/pertbench -scale quick -exp fig5,fig13 -json -cache-dir "$$dir/cache" > "$$dir/cold.json" || exit 1; \
	$(GO) run ./cmd/pertbench -scale quick -exp fig5,fig13 -json -cache-dir "$$dir/cache" > "$$dir/warm.json" || exit 1; \
	grep -q '^  "sim_events": 0,' "$$dir/warm.json" || { echo "cache-smoke: warm run still simulated events"; exit 1; }; \
	test "$$(grep -c '"cached": true' "$$dir/warm.json")" -eq 2 || { echo "cache-smoke: expected 2 cached runs"; exit 1; }; \
	volatile='"started_at"|"wall_seconds"|"sim_events"|"events_per_second"|"mallocs"|"allocs_per_event"|"cache_hits"|"cache_misses"|"cached"'; \
	grep -Ev "$$volatile" "$$dir/cold.json" > "$$dir/cold.flat"; \
	grep -Ev "$$volatile" "$$dir/warm.json" > "$$dir/warm.flat"; \
	diff -u "$$dir/cold.flat" "$$dir/warm.flat" || { echo "cache-smoke: warm report differs from cold"; exit 1; }; \
	echo "cache-smoke: OK (2/2 cells replayed, zero simulations)"

# Chaos smoke: the fault-tolerance acceptance suite. SIGKILLs and
# crash-injects a cached sweep at random points (including inside the cache
# commit protocol), then proves a clean rerun repairs the debris and
# converges to a byte-identical report with zero re-simulated warm cells;
# also pins worker isolation, retry-to-identical, and crash containment.
chaos-smoke:
	$(GO) test ./internal/harness -run 'TestChaos|TestIsolatedSweepMatchesInProcess|TestCrashOnceCellRetriesToBitIdentical|TestIsolationContainsWorkerCrash' -count=1 -timeout 15m -v
	$(GO) test ./internal/cache -run 'TestCrash|TestFsck' -count=1 -v

# Regenerate the committed quick-scale results file.
results:
	$(GO) run ./cmd/pertbench -scale quick > results_quick.txt

# The paper's exact parameters; takes hours.
results-paper:
	$(GO) run ./cmd/pertbench -scale paper > results_paper.txt

# Exercise the fuzz targets briefly.
fuzz:
	$(GO) test ./internal/predictors -run=NONE -fuzz=FuzzLoadTrace -fuzztime=20s
	$(GO) test ./internal/experiments -run=NONE -fuzz=FuzzLoadScenario -fuzztime=20s
	$(GO) test ./internal/scenario -run=NONE -fuzz=FuzzLoadSpec -fuzztime=20s
	$(GO) test ./internal/netem -run=NONE -fuzz=FuzzReadTrace -fuzztime=20s
	$(GO) test ./internal/netem -run=NONE -fuzz=FuzzPartition -fuzztime=20s
	$(GO) test ./internal/harness -run=NONE -fuzz=FuzzDecodeRunRecord -fuzztime=20s

clean:
	$(GO) clean ./...
