# Convenience targets for the PERT reproduction.

GO ?= go

.PHONY: all build test vet check validate-scenarios bench bench-micro bench-smoke cache-smoke chaos-smoke results results-paper fuzz clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet, every committed example scenario validated against the
# loader, then the test suite under the race detector (exercises the harness
# and the parallel sweep workers).
check: vet validate-scenarios
	$(GO) test -race -timeout 20m ./...

# Validate every example scenario JSON against the live loader.
validate-scenarios:
	@for f in examples/scenarios/*.json; do \
		$(GO) run ./cmd/pertsim -config $$f -validate || exit 1; \
	done

# Perf-regression reference point: one single-worker quick-scale sweep,
# recorded as a machine-readable report (wall time, events/s, mallocs and
# allocs/event per experiment). Compare BENCH_quick.json across commits to
# spot hot-path regressions; add -cpuprofile/-memprofile to find them.
bench:
	$(GO) run ./cmd/pertbench -scale quick -json -parallel 1 > BENCH_quick.json

# Go micro-benchmarks: every paper figure/table at quick scale, ablations,
# and substrate benchmarks (ns/event, allocs/event, saturated-link cost).
bench-micro:
	$(GO) test -bench=. -benchmem ./...

# Fast benchmark sanity pass for CI: run each microbenchmark once, the
# allocation-budget tests that pin the zero-alloc hot paths (including the
# disabled-metrics path), and the metrics-overhead budget (<10% on the
# benchmark dumbbell with sampling at the default interval).
bench-smoke:
	$(GO) test -run 'TestScheduleAllocBudget|TestLinkAllocBudget' -bench=. -benchtime=1x -benchmem ./internal/sim/ ./internal/netem/
	$(GO) test -run 'TestMetricsOverheadSmoke' -bench 'BenchmarkSimulatedSecond' -benchtime=1x -benchmem .

# Cache smoke: the same tiny sweep twice into one cache directory. The warm
# run must replay every cell (top-level sim_events stays 0, both runs marked
# cached) and — once timing and cache-bookkeeping lines are filtered — emit a
# byte-identical report. Guards the resume/replay contract end to end.
cache-smoke:
	@dir=$$(mktemp -d); \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/pertbench -scale quick -exp fig5,fig13 -json -cache-dir "$$dir/cache" > "$$dir/cold.json" || exit 1; \
	$(GO) run ./cmd/pertbench -scale quick -exp fig5,fig13 -json -cache-dir "$$dir/cache" > "$$dir/warm.json" || exit 1; \
	grep -q '^  "sim_events": 0,' "$$dir/warm.json" || { echo "cache-smoke: warm run still simulated events"; exit 1; }; \
	test "$$(grep -c '"cached": true' "$$dir/warm.json")" -eq 2 || { echo "cache-smoke: expected 2 cached runs"; exit 1; }; \
	volatile='"started_at"|"wall_seconds"|"sim_events"|"events_per_second"|"mallocs"|"allocs_per_event"|"cache_hits"|"cache_misses"|"cached"'; \
	grep -Ev "$$volatile" "$$dir/cold.json" > "$$dir/cold.flat"; \
	grep -Ev "$$volatile" "$$dir/warm.json" > "$$dir/warm.flat"; \
	diff -u "$$dir/cold.flat" "$$dir/warm.flat" || { echo "cache-smoke: warm report differs from cold"; exit 1; }; \
	echo "cache-smoke: OK (2/2 cells replayed, zero simulations)"

# Chaos smoke: the fault-tolerance acceptance suite. SIGKILLs and
# crash-injects a cached sweep at random points (including inside the cache
# commit protocol), then proves a clean rerun repairs the debris and
# converges to a byte-identical report with zero re-simulated warm cells;
# also pins worker isolation, retry-to-identical, and crash containment.
chaos-smoke:
	$(GO) test ./internal/harness -run 'TestChaos|TestIsolatedSweepMatchesInProcess|TestCrashOnceCellRetriesToBitIdentical|TestIsolationContainsWorkerCrash' -count=1 -timeout 15m -v
	$(GO) test ./internal/cache -run 'TestCrash|TestFsck' -count=1 -v

# Regenerate the committed quick-scale results file.
results:
	$(GO) run ./cmd/pertbench -scale quick > results_quick.txt

# The paper's exact parameters; takes hours.
results-paper:
	$(GO) run ./cmd/pertbench -scale paper > results_paper.txt

# Exercise the fuzz targets briefly.
fuzz:
	$(GO) test ./internal/predictors -run=NONE -fuzz=FuzzLoadTrace -fuzztime=20s
	$(GO) test ./internal/experiments -run=NONE -fuzz=FuzzLoadScenario -fuzztime=20s
	$(GO) test ./internal/scenario -run=NONE -fuzz=FuzzLoadSpec -fuzztime=20s
	$(GO) test ./internal/netem -run=NONE -fuzz=FuzzReadTrace -fuzztime=20s
	$(GO) test ./internal/harness -run=NONE -fuzz=FuzzDecodeRunRecord -fuzztime=20s

clean:
	$(GO) clean ./...
