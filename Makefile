# Convenience targets for the PERT reproduction.

GO ?= go

.PHONY: all build test vet check bench results results-paper fuzz clean

all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full gate: vet plus the test suite under the race detector (exercises the
# harness and the parallel sweep workers).
check: vet
	$(GO) test -race -timeout 20m ./...

# Full benchmark run: every paper figure/table at quick scale, ablations,
# and substrate micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed quick-scale results file.
results:
	$(GO) run ./cmd/pertbench -scale quick > results_quick.txt

# The paper's exact parameters; takes hours.
results-paper:
	$(GO) run ./cmd/pertbench -scale paper > results_paper.txt

# Exercise the fuzz targets briefly.
fuzz:
	$(GO) test ./internal/predictors -run=NONE -fuzz=FuzzLoadTrace -fuzztime=20s
	$(GO) test ./internal/experiments -run=NONE -fuzz=FuzzLoadScenario -fuzztime=20s
	$(GO) test ./internal/netem -run=NONE -fuzz=FuzzReadTrace -fuzztime=20s

clean:
	$(GO) clean ./...
