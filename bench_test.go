// Benchmarks regenerating every table and figure of the paper at quick
// scale, plus ablations of PERT's design choices and micro-benchmarks of the
// simulator substrate. Custom metrics attached via b.ReportMetric carry the
// experiment's headline numbers (queue, drops, utilization, fairness) into
// the benchmark output, so `go test -bench=.` doubles as a results run.
//
// Run a single experiment:   go test -bench=BenchmarkFig6 -benchtime=1x
// Full paper-scale runs:     go run ./cmd/pertbench -scale paper
package pert

import (
	"context"
	"math/rand"
	"testing"

	"pert/internal/core"
	"pert/internal/experiments"
	"pert/internal/fluid"
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// runExperiment executes a registered experiment once per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := context.Background()
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = exp.Run(ctx, experiments.Quick)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	rows := 0
	for _, t := range tables {
		rows += len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// --- One benchmark per paper table/figure (E1..E13 in DESIGN.md) ---

func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }

// Extension experiments (beyond the paper; see EXPERIMENTS.md).

func BenchmarkExtAQM(b *testing.B)        { runExperiment(b, "ext-aqm") }
func BenchmarkExtValidation(b *testing.B) { runExperiment(b, "ext-validation") }
func BenchmarkExtJitter(b *testing.B)     { runExperiment(b, "ext-jitter") }
func BenchmarkExtDelayCC(b *testing.B)    { runExperiment(b, "ext-delaycc") }
func BenchmarkExtHighSpeed(b *testing.B)  { runExperiment(b, "ext-highspeed") }
func BenchmarkExtCoexist(b *testing.B)    { runExperiment(b, "ext-coexist") }
func BenchmarkExtFCT(b *testing.B)        { runExperiment(b, "ext-fct") }
func BenchmarkExtThreshold(b *testing.B)  { runExperiment(b, "ext-threshold") }
func BenchmarkExtStability(b *testing.B)  { runExperiment(b, "ext-stability") }
func BenchmarkExtReplicated(b *testing.B) { runExperiment(b, "ext-replicated") }

// --- Ablations of PERT's fixed design choices (DESIGN.md section 4) ---

func reportAblation(b *testing.B, r experiments.DumbbellResult) {
	b.Helper()
	b.ReportMetric(r.AvgQueue, "queue_pkts")
	b.ReportMetric(r.DropRate*1e6, "drops_ppm")
	b.ReportMetric(r.Utilization*100, "util_%")
	b.ReportMetric(r.Jain*1000, "jain_milli")
}

// BenchmarkAblationDecreaseFactor sweeps the early-response multiplicative
// decrease around the paper's 0.35 (eq. 1).
func BenchmarkAblationDecreaseFactor(b *testing.B) {
	for _, f := range []float64{0.20, 0.35, 0.50} {
		v := experiments.DefaultVariant("decrease")
		v.DecreaseFactor = f
		b.Run(pctName(f), func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunAblation(v, 21)
			}
			reportAblation(b, r)
		})
	}
}

// BenchmarkAblationSignalWeight compares the srtt_0.99 smoothing against
// TCP's 7/8 and the raw per-ACK signal (ties to Figure 3).
func BenchmarkAblationSignalWeight(b *testing.B) {
	for _, tc := range []struct {
		name string
		w    float64
	}{{"w0.5", 0.5}, {"w0.875", 0.875}, {"w0.99", 0.99}} {
		v := experiments.DefaultVariant("weight")
		v.HistoryWeight = tc.w
		b.Run(tc.name, func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunAblation(v, 22)
			}
			reportAblation(b, r)
		})
	}
}

// BenchmarkAblationResponseLimit toggles the once-per-RTT early-response
// limit (Section 3: the effect of a reduction is invisible for one RTT).
func BenchmarkAblationResponseLimit(b *testing.B) {
	for _, tc := range []struct {
		name      string
		unlimited bool
	}{{"once-per-rtt", false}, {"unlimited", true}} {
		v := experiments.DefaultVariant("limit")
		v.Unlimited = tc.unlimited
		b.Run(tc.name, func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunAblation(v, 23)
			}
			reportAblation(b, r)
		})
	}
}

// BenchmarkAblationGentle compares the gentle upper ramp against a curve
// clipped at pmax.
func BenchmarkAblationGentle(b *testing.B) {
	for _, tc := range []struct {
		name   string
		gentle bool
	}{{"gentle", true}, {"clipped", false}} {
		v := experiments.DefaultVariant("gentle")
		v.Curve.Gentle = tc.gentle
		b.Run(tc.name, func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunAblation(v, 24)
			}
			reportAblation(b, r)
		})
	}
}

// BenchmarkAblationThresholds sweeps the queueing-delay thresholds around
// the paper's P+5 ms / P+10 ms.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, tc := range []struct {
		name       string
		tmin, tmax sim.Duration
	}{
		{"2.5ms-5ms", sim.Milliseconds(2.5), 5 * sim.Millisecond},
		{"5ms-10ms", 5 * sim.Millisecond, 10 * sim.Millisecond},
		{"10ms-20ms", 10 * sim.Millisecond, 20 * sim.Millisecond},
	} {
		v := experiments.DefaultVariant("thresholds")
		v.Curve.Tmin, v.Curve.Tmax = tc.tmin, tc.tmax
		b.Run(tc.name, func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunAblation(v, 25)
			}
			reportAblation(b, r)
		})
	}
}

// BenchmarkAblationResponderKind compares the AQM emulations PERT can host:
// the paper's RED curve, the Section 6 PI controller, the Section 7
// adaptive-proactiveness variant, and a REM emulation (the conclusion's
// "other AQM schemes" claim).
func BenchmarkAblationResponderKind(b *testing.B) {
	spec := experiments.AblationSpec(26)
	pps := spec.Bandwidth / (8 * 1040)
	kinds := []struct {
		name string
		cc   func() tcp.CongestionControl
	}{
		{"red", func() tcp.CongestionControl { return tcp.NewPERTRed() }},
		{"pi", func() tcp.CongestionControl {
			return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
				params := core.DesignPERTPI(pps, spec.Flows, 120*sim.Millisecond)
				return core.NewPIResponder(c.Engine().Rand(), params,
					sim.Seconds(float64(spec.Flows)/pps), 3*sim.Millisecond)
			})
		}},
		{"rem", func() tcp.CongestionControl {
			return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
				return core.NewREMResponder(c.Engine().Rand(), 0, 0, 3*sim.Millisecond)
			})
		}},
		{"adaptive", func() tcp.CongestionControl {
			return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
				return core.NewAdaptiveResponder(c.Engine().Rand())
			})
		}},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			var r experiments.DumbbellResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunDumbbellWith(spec, k.cc)
			}
			reportAblation(b, r)
		})
	}
}

func pctName(f float64) string {
	switch f {
	case 0.20:
		return "f0.20"
	case 0.35:
		return "f0.35"
	default:
		return "f0.50"
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkEngineScheduleRun measures raw event throughput of the
// discrete-event core.
func BenchmarkEngineScheduleRun(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	var t sim.Time
	for i := 0; i < b.N; i++ {
		t += sim.Microsecond
		eng.At(t, func() {})
		if i%1024 == 1023 {
			eng.Run(t)
		}
	}
	eng.Run(sim.MaxTime - 1)
}

// BenchmarkDropTail measures the FIFO fast path.
func BenchmarkDropTail(b *testing.B) {
	q := queue.NewDropTail(1024)
	p := &netem.Packet{Size: 1040}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(p, sim.Time(i))
		q.Dequeue(sim.Time(i))
	}
}

// BenchmarkRED measures RED's per-arrival average update and marking draw.
func BenchmarkRED(b *testing.B) {
	r := queue.NewRED(queue.REDConfig{Limit: 1024, MinTh: 100, MaxTh: 300, Wq: 0.002, Gentle: true}, rand.New(rand.NewSource(1)))
	p := &netem.Packet{Size: 1040}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(p, sim.Time(i)*sim.Microsecond)
		r.Dequeue(sim.Time(i) * sim.Microsecond)
	}
}

// BenchmarkScoreboard measures SACK scoreboard maintenance with a moving
// window of holes.
func BenchmarkScoreboard(b *testing.B) {
	var s tcp.Scoreboard
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := int64(i) * 4
		s.Add(netem.SackBlock{Start: base + 2, End: base + 4})
		s.AckedUpTo(base)
		_ = s.NextHole(base, base+4)
	}
}

// BenchmarkResponderOnRTT measures PERT's per-ACK cost: EWMA update, curve
// evaluation, and the probabilistic draw.
func BenchmarkResponderOnRTT(b *testing.B) {
	r := core.NewREDResponder(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Microsecond
		r.OnRTT(now, 60*sim.Millisecond+sim.Duration(i%8)*sim.Millisecond)
	}
}

// BenchmarkFluidStep measures the DDE integrator.
func BenchmarkFluidStep(b *testing.B) {
	p := fluid.PERTParams{C: 100, N: 5, R: 0.1, Tmin: 0.05, Tmax: 0.1, Pmax: 0.1, Alpha: 0.99, Delta: 1e-4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Trajectory(1.0, 1e-3, nil) // 1000 RK4 steps
	}
}

// BenchmarkSimulatedSecond measures end-to-end simulator throughput: one
// virtual second of a loaded 30 Mbps dumbbell, reporting simulated packets
// per wall-second via the per-op packet count.
func BenchmarkSimulatedSecond(b *testing.B) {
	eng := sim.NewEngine(99)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 30e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     8,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	ids := trafficgen.NewIDs()
	trafficgen.FTPFleet(net, ids, d.Left, d.Right, 8, trafficgen.FTPConfig{
		CC: func() tcp.CongestionControl { return tcp.NewPERTRed() },
	})
	eng.Run(5 * sim.Second) // reach steady state outside the timer
	b.ResetTimer()
	start := d.Forward.Stats.TxPackets
	horizon := eng.Now()
	for i := 0; i < b.N; i++ {
		horizon += sim.Second
		eng.Run(horizon)
	}
	b.ReportMetric(float64(d.Forward.Stats.TxPackets-start)/float64(b.N), "pkts/simsec")
}
