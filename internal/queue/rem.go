package queue

import (
	"math"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// REM implements Random Exponential Marking (Athuraliya, Li, Low, Yin — IEEE
// Network 2001), one of the AQM schemes the paper cites alongside RED and
// PI. A link "price" integrates the mismatch between arrivals and capacity
// plus the backlog above a small target; packets are marked with probability
// 1 - Phi^(-price), which factors across links of a path — the property REM
// is known for.
type REM struct {
	Limit  int
	Gamma  float64 // price step size
	Phi    float64 // probability base, > 1
	Alpha  float64 // weight of the backlog term
	BRef   float64 // target backlog, packets
	Period sim.Duration
	ECN    bool

	CapacityPPS float64 // link rate in packets/second

	q        fifo
	rng      *rand.Rand
	price    float64
	arrivals uint64
	lastArr  uint64
	last     sim.Time
	init     bool

	EarlyDrops  uint64
	ForcedDrops uint64
	ECNMarks    uint64
}

// NewREM builds a REM queue with the published defaults: gamma = 0.001,
// phi = 1.001, alpha = 0.1, update period 10 ms, target backlog 20 packets.
func NewREM(limit int, capacityPPS float64, ecn bool, rng *rand.Rand) *REM {
	if limit <= 0 || capacityPPS <= 0 {
		panic("queue: REM requires positive limit and capacity")
	}
	return &REM{
		Limit:       limit,
		Gamma:       0.001,
		Phi:         1.001,
		Alpha:       0.1,
		BRef:        20,
		Period:      10 * sim.Millisecond,
		ECN:         ecn,
		CapacityPPS: capacityPPS,
		rng:         rng,
	}
}

// Price returns the current link price.
func (r *REM) Price() float64 { return r.price }

// BindRand rebinds the marking RNG (see RED.BindRand); called by
// netem.Partition before any traffic flows.
func (r *REM) BindRand(rng *rand.Rand) { r.rng = rng }

// P returns the current marking probability.
func (r *REM) P() float64 { return 1 - math.Pow(r.Phi, -r.price) }

// update advances the price: p <- max(0, p + gamma*(alpha*(b - bref) + x - c))
// where b is the backlog, x the measured input rate, and c the capacity.
func (r *REM) update(now sim.Time) {
	if !r.init {
		r.init = true
		r.last = now
		return
	}
	for now-r.last >= r.Period {
		dt := r.Period.Seconds()
		x := float64(r.arrivals-r.lastArr) / dt
		r.lastArr = r.arrivals
		b := float64(r.q.len())
		r.price = math.Max(0, r.price+r.Gamma*(r.Alpha*(b-r.BRef)+(x-r.CapacityPPS)*dt))
		r.last += r.Period
	}
}

// Enqueue implements netem.Discipline.
func (r *REM) Enqueue(p *netem.Packet, now sim.Time) bool {
	r.update(now)
	r.arrivals++
	if r.q.len() >= r.Limit {
		r.ForcedDrops++
		return false
	}
	if pr := r.P(); pr > 0 && r.rng.Float64() < pr {
		if r.ECN && p.ECT {
			p.CE = true
			r.ECNMarks++
		} else {
			r.EarlyDrops++
			return false
		}
	}
	r.q.push(p)
	return true
}

// Dequeue implements netem.Discipline.
func (r *REM) Dequeue(_ sim.Time) *netem.Packet { return r.q.pop() }

// Len implements netem.Discipline.
func (r *REM) Len() int { return r.q.len() }

// Bytes implements netem.Discipline.
func (r *REM) Bytes() int { return r.q.bytes }
