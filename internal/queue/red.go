package queue

import (
	"math"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// REDConfig parameterizes a RED queue. Zero-valued fields are filled with the
// defaults recommended in the RED and Adaptive RED papers by applyDefaults.
type REDConfig struct {
	Limit   int     // hard buffer capacity in packets (required)
	MinTh   float64 // lower average-queue threshold, packets
	MaxTh   float64 // upper average-queue threshold, packets
	MaxP    float64 // marking probability at MaxTh
	Wq      float64 // EWMA weight for the average queue estimate
	Gentle  bool    // ramp probability from MaxP to 1 between MaxTh and 2*MaxTh
	ECN     bool    // mark ECN-capable packets instead of dropping
	MeanPkt int     // mean packet size in bytes, for idle-time compensation

	// CapacityPPS is the link rate in packets/second; needed for idle-time
	// compensation and the adaptive variant's automatic Wq.
	CapacityPPS float64
}

func (c *REDConfig) applyDefaults() {
	if c.Limit <= 0 {
		panic("queue: RED requires a positive Limit")
	}
	if c.MinTh == 0 {
		c.MinTh = math.Max(5, float64(c.Limit)/12)
	}
	if c.MaxTh == 0 {
		c.MaxTh = 3 * c.MinTh
	}
	if c.MaxP == 0 {
		c.MaxP = 0.1
	}
	if c.Wq == 0 {
		if c.CapacityPPS > 0 {
			// Floyd 2001: track the queue on the time scale of the link.
			c.Wq = 1 - math.Exp(-1/c.CapacityPPS)
			if c.Wq < 1e-6 {
				c.Wq = 1e-6
			}
		} else {
			c.Wq = 0.002
		}
	}
	if c.MeanPkt == 0 {
		c.MeanPkt = 1000
	}
	if c.MaxTh > float64(c.Limit) {
		c.MaxTh = float64(c.Limit)
	}
	if c.MinTh >= c.MaxTh {
		c.MinTh = c.MaxTh / 3
	}
}

// RED implements Random Early Detection with optional gentle mode and ECN
// marking. The average queue length is an EWMA updated on every arrival, with
// the standard idle-period compensation that decays the average as if empty-
// queue departures had been observed.
type RED struct {
	cfg REDConfig
	q   fifo
	rng *rand.Rand

	avg       float64
	count     int // packets since last mark/drop while in marking region
	idleSince sim.Time
	idle      bool

	// Cumulative decision counters, exported for tests and instrumentation.
	EarlyDrops  uint64
	ForcedDrops uint64
	ECNMarks    uint64
}

// NewRED returns a RED queue. rng drives marking decisions; pass the
// simulation engine's generator for reproducible runs.
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	cfg.applyDefaults()
	return &RED{cfg: cfg, rng: rng, idle: true}
}

// Config returns the effective configuration after defaulting.
func (r *RED) Config() REDConfig { return r.cfg }

// BindRand rebinds the marking RNG. netem.Partition calls this to move a
// queue's randomness onto its owning shard's engine; for the domain-0 links
// of a topology built on engine 0 the new generator is the same object the
// queue was constructed with, so serial draw order is untouched. Must not be
// called after traffic has flowed.
func (r *RED) BindRand(rng *rand.Rand) { r.rng = rng }

// AvgQueue returns the current average queue estimate in packets.
func (r *RED) AvgQueue() float64 { return r.avg }

// MaxP returns the marking probability currently in effect at MaxTh. For
// plain RED it is the configured constant; AdaptiveRED shadows this with the
// live adapted value. Exposed for instrumentation.
func (r *RED) MaxP() float64 { return r.cfg.MaxP }

// updateAvg advances the average queue estimate for an arrival at time now.
func (r *RED) updateAvg(now sim.Time) {
	if r.idle {
		// Simulate m empty-queue samples for the idle period.
		txTime := 1.0
		if r.cfg.CapacityPPS > 0 {
			txTime = 1 / r.cfg.CapacityPPS
		}
		m := (now - r.idleSince).Seconds() / txTime
		if m > 0 {
			r.avg *= math.Pow(1-r.cfg.Wq, m)
		}
		r.idle = false
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(r.q.len())
}

// markProb returns the packet-marking probability for the current average,
// before the count correction.
func (r *RED) markProb() float64 {
	c := &r.cfg
	switch {
	case r.avg < c.MinTh:
		return 0
	case r.avg < c.MaxTh:
		return c.MaxP * (r.avg - c.MinTh) / (c.MaxTh - c.MinTh)
	case c.Gentle && r.avg < 2*c.MaxTh:
		return c.MaxP + (1-c.MaxP)*(r.avg-c.MaxTh)/c.MaxTh
	default:
		return 1
	}
}

// Enqueue implements netem.Discipline.
func (r *RED) Enqueue(p *netem.Packet, now sim.Time) bool {
	r.updateAvg(now)
	c := &r.cfg

	if r.q.len() >= c.Limit {
		r.ForcedDrops++
		return false
	}

	forcedRegion := r.avg >= 2*c.MaxTh || (!c.Gentle && r.avg >= c.MaxTh)
	if forcedRegion {
		r.count = 0
		r.ForcedDrops++
		return false
	}

	if pb := r.markProb(); pb > 0 {
		r.count++
		// Uniformize inter-mark spacing (RED's count correction).
		pa := pb / math.Max(1e-12, 1-float64(r.count)*pb)
		if float64(r.count)*pb >= 1 || r.rng.Float64() < pa {
			r.count = 0
			if c.ECN && p.ECT {
				p.CE = true
				r.ECNMarks++
			} else {
				r.EarlyDrops++
				return false
			}
		}
	} else {
		r.count = 0
	}

	r.q.push(p)
	return true
}

// Dequeue implements netem.Discipline.
func (r *RED) Dequeue(now sim.Time) *netem.Packet {
	p := r.q.pop()
	if p != nil && r.q.len() == 0 {
		r.idle = true
		r.idleSince = now
	}
	return p
}

// Len implements netem.Discipline.
func (r *RED) Len() int { return r.q.len() }

// Bytes implements netem.Discipline.
func (r *RED) Bytes() int { return r.q.bytes }
