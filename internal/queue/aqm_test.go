package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/sim"
)

func TestREMPriceTracksOverload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewREM(500, 1000, false, rng)
	// 25% overload: price must rise and drops must appear.
	now := sim.Time(0)
	nextServe, nextArrive := sim.Time(0), sim.Time(0)
	serveEvery := sim.Seconds(1.0 / 1000)
	arriveEvery := sim.Seconds(1.0 / 1250)
	for now < 60*sim.Second {
		if nextArrive <= nextServe {
			now = nextArrive
			r.Enqueue(pkt(1000), now)
			nextArrive += arriveEvery
		} else {
			now = nextServe
			r.Dequeue(now)
			nextServe += serveEvery
		}
	}
	if r.Price() <= 0 {
		t.Fatalf("price = %v under overload", r.Price())
	}
	if r.EarlyDrops == 0 {
		t.Fatal("REM never shed load")
	}
	// The backlog must be held near the target, far below the buffer.
	if r.Len() > 100 {
		t.Fatalf("backlog = %d, want near BRef=20", r.Len())
	}
}

func TestREMPriceDrainsWhenIdle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewREM(500, 1000, false, rng)
	now := sim.Time(0)
	// Build price with a burst.
	for i := 0; i < 5000; i++ {
		now += 200 * sim.Microsecond
		r.Enqueue(pkt(1000), now)
		if i%2 == 0 {
			r.Dequeue(now)
		}
	}
	high := r.Price()
	if high <= 0 {
		t.Fatal("premise: price should have risen")
	}
	for r.Len() > 0 {
		r.Dequeue(now)
	}
	// Light load: price decays.
	for i := 0; i < 20000; i++ {
		now += 10 * sim.Millisecond
		r.Enqueue(pkt(1000), now)
		r.Dequeue(now)
	}
	if r.Price() >= high/2 {
		t.Fatalf("price did not decay: %v -> %v", high, r.Price())
	}
}

func TestREMECNMarks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewREM(500, 1000, true, rng)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		now += 500 * sim.Microsecond // 2000 pkt/s into a 1000 pkt/s drain
		p := pkt(1000)
		p.ECT = true
		r.Enqueue(p, now)
		if i%2 == 0 {
			r.Dequeue(now)
		}
	}
	if r.ECNMarks == 0 {
		t.Fatal("REM/ECN never marked")
	}
	if r.EarlyDrops != 0 {
		t.Fatal("REM/ECN dropped ECT packets early")
	}
}

func TestREMProbabilityBounds(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewREM(100, 1000, false, rng)
		now := sim.Time(0)
		for _, enq := range ops {
			now += 300 * sim.Microsecond
			if enq {
				r.Enqueue(pkt(1000), now)
			} else {
				r.Dequeue(now)
			}
			if r.P() < 0 || r.P() >= 1 || r.Price() < 0 || r.Len() > 100 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAVQKeepsQueueNearEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAVQ(500, 1000, false, rng)
	now := sim.Time(0)
	nextServe, nextArrive := sim.Time(0), sim.Time(0)
	serveEvery := sim.Seconds(1.0 / 1000)
	arriveEvery := sim.Seconds(1.0 / 1100) // 10% overload
	var qSum float64
	var n int
	for now < 60*sim.Second {
		if nextArrive <= nextServe {
			now = nextArrive
			a.Enqueue(pkt(1000), now)
			nextArrive += arriveEvery
		} else {
			now = nextServe
			a.Dequeue(now)
			nextServe += serveEvery
		}
		if now > 30*sim.Second {
			qSum += float64(a.Len())
			n++
		}
	}
	if a.EarlyDrops == 0 {
		t.Fatal("AVQ never shed the overload")
	}
	if avg := qSum / float64(n); avg > 50 {
		t.Fatalf("AVQ steady queue = %v packets, want small", avg)
	}
	if a.VirtualCapacity() <= 0 || a.VirtualCapacity() > 1000 {
		t.Fatalf("virtual capacity = %v", a.VirtualCapacity())
	}
}

func TestAVQUnderUtilizationAdmitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAVQ(500, 1000, false, rng)
	now := sim.Time(0)
	drops := 0
	// 50% load: no marking expected once adapted.
	for i := 0; i < 30000; i++ {
		now += 2 * sim.Millisecond
		if !a.Enqueue(pkt(1000), now) {
			drops++
		}
		a.Dequeue(now)
	}
	if drops > 300 { // minor adaptation transient allowed
		t.Fatalf("AVQ dropped %d packets at 50%% load", drops)
	}
}

func TestAVQECNMarksInsteadOfDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewAVQ(500, 1000, true, rng)
	now := sim.Time(0)
	for i := 0; i < 40000; i++ {
		now += 800 * sim.Microsecond // 1250 pkt/s arrivals
		p := pkt(1000)
		p.ECT = true
		a.Enqueue(p, now)
		if i%5 != 0 { // serve 1000 pkt/s
			a.Dequeue(now)
		}
	}
	if a.ECNMarks == 0 {
		t.Fatal("AVQ/ECN never marked")
	}
	if a.EarlyDrops != 0 {
		t.Fatal("AVQ/ECN dropped ECT packets")
	}
}
