package queue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/sim"
)

func pkt(size int) *netem.Packet { return &netem.Packet{Size: size} }

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(3)
	for i := 0; i < 3; i++ {
		p := pkt(100)
		p.Seq = int64(i)
		if !q.Enqueue(p, 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Enqueue(pkt(100), 0) {
		t.Fatal("enqueue beyond limit accepted")
	}
	if q.Len() != 3 || q.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := 0; i < 3; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d got %+v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("dequeue from empty queue returned a packet")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("empty queue len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestDropTailRefillAfterDrain(t *testing.T) {
	q := NewDropTail(2)
	for round := 0; round < 200; round++ {
		if !q.Enqueue(pkt(10), 0) || !q.Enqueue(pkt(10), 0) {
			t.Fatalf("round %d: enqueue rejected below limit", round)
		}
		q.Dequeue(0)
		q.Dequeue(0)
	}
	if q.Len() != 0 {
		t.Fatalf("len=%d after drain", q.Len())
	}
}

// Property: for any interleaving of enqueues and dequeues, DropTail preserves
// FIFO order, never exceeds its limit, and Bytes always equals the sum of
// queued packet sizes.
func TestDropTailProperty(t *testing.T) {
	f := func(ops []bool, limit8 uint8) bool {
		limit := int(limit8%16) + 1
		q := NewDropTail(limit)
		var model []*netem.Packet
		seq := int64(0)
		for _, enq := range ops {
			if enq {
				p := pkt(int(seq%500) + 40)
				p.Seq = seq
				seq++
				ok := q.Enqueue(p, 0)
				if ok != (len(model) < limit) {
					return false
				}
				if ok {
					model = append(model, p)
				}
			} else {
				p := q.Dequeue(0)
				if len(model) == 0 {
					if p != nil {
						return false
					}
				} else {
					if p != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			wantBytes := 0
			for _, m := range model {
				wantBytes += m.Size
			}
			if q.Len() != len(model) || q.Bytes() != wantBytes {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestREDDefaults(t *testing.T) {
	r := NewRED(REDConfig{Limit: 120}, rand.New(rand.NewSource(1)))
	c := r.Config()
	if c.MinTh <= 0 || c.MaxTh <= c.MinTh || c.MaxP <= 0 || c.Wq <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.MaxTh > float64(c.Limit) {
		t.Fatalf("MaxTh %v beyond limit %d", c.MaxTh, c.Limit)
	}
}

func TestREDBelowMinThNeverDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 100, MinTh: 20, MaxTh: 60, MaxP: 0.1, Wq: 0.5}, rng)
	// Keep the instantaneous queue at <= 2 packets: avg stays below MinTh.
	for i := 0; i < 1000; i++ {
		if !r.Enqueue(pkt(1000), sim.Time(i)*sim.Millisecond) {
			t.Fatalf("drop below MinTh at %d (avg=%v)", i, r.AvgQueue())
		}
		if r.Len() > 2 {
			r.Dequeue(sim.Time(i) * sim.Millisecond)
			r.Dequeue(sim.Time(i) * sim.Millisecond)
		}
	}
	if r.EarlyDrops != 0 || r.ForcedDrops != 0 {
		t.Fatalf("drops below MinTh: early=%d forced=%d", r.EarlyDrops, r.ForcedDrops)
	}
}

func TestREDMarksUnderSustainedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 200, MinTh: 10, MaxTh: 30, MaxP: 0.1, Wq: 0.2, Gentle: true}, rng)
	drops := 0
	for i := 0; i < 5000; i++ {
		if !r.Enqueue(pkt(1000), sim.Time(i)*sim.Microsecond) {
			drops++
		}
		// Serve slower than arrivals so the queue builds.
		if i%3 == 0 {
			r.Dequeue(sim.Time(i) * sim.Microsecond)
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped under sustained overload")
	}
	if r.EarlyDrops == 0 {
		t.Fatal("RED never dropped early (probabilistically)")
	}
}

func TestREDECNMarksInsteadOfDropping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 1000, MinTh: 5, MaxTh: 15, MaxP: 0.2, Wq: 0.5, Gentle: true, ECN: true}, rng)
	marks := 0
	for i := 0; i < 2000; i++ {
		p := pkt(1000)
		p.ECT = true
		before := p.CE
		ok := r.Enqueue(p, sim.Time(i)*sim.Microsecond)
		if ok && p.CE && !before {
			marks++
		}
		if i%2 == 0 {
			r.Dequeue(sim.Time(i) * sim.Microsecond)
		}
	}
	if marks == 0 {
		t.Fatal("ECN-capable packets never marked")
	}
	if r.EarlyDrops != 0 {
		t.Fatalf("ECN-capable packets dropped early %d times while avg below gentle ceiling", r.EarlyDrops)
	}
}

func TestREDNonECTDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 1000, MinTh: 5, MaxTh: 15, MaxP: 0.2, Wq: 0.5, Gentle: true, ECN: true}, rng)
	for i := 0; i < 2000; i++ {
		r.Enqueue(pkt(1000), sim.Time(i)*sim.Microsecond) // ECT=false
		if i%2 == 0 {
			r.Dequeue(sim.Time(i) * sim.Microsecond)
		}
	}
	if r.EarlyDrops == 0 {
		t.Fatal("non-ECT packets never early-dropped by ECN-enabled RED")
	}
	if r.ECNMarks != 0 {
		t.Fatal("non-ECT packets were CE-marked")
	}
}

func TestREDIdleDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 100, MinTh: 10, MaxTh: 30, Wq: 0.2, CapacityPPS: 1000}, rng)
	for i := 0; i < 50; i++ {
		r.Enqueue(pkt(1000), 0)
	}
	high := r.AvgQueue()
	for r.Len() > 0 {
		r.Dequeue(sim.Millisecond)
	}
	// After a long idle period the next arrival sees a decayed average.
	r.Enqueue(pkt(1000), 2*sim.Second)
	if r.AvgQueue() >= high/10 {
		t.Fatalf("avg did not decay over idle: before=%v after=%v", high, r.AvgQueue())
	}
}

func TestREDHardLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRED(REDConfig{Limit: 10, MinTh: 100, MaxTh: 300, Wq: 0.001}, rng)
	accepted := 0
	for i := 0; i < 100; i++ {
		if r.Enqueue(pkt(1000), 0) {
			accepted++
		}
	}
	if accepted != 10 {
		t.Fatalf("accepted %d, want hard limit 10", accepted)
	}
}

// Property: RED's average-queue estimate is always within [0, Limit] and the
// queue never exceeds its hard limit, for arbitrary arrival/service patterns.
func TestREDInvariantsProperty(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRED(REDConfig{Limit: 50, MinTh: 5, MaxTh: 20, MaxP: 0.1, Wq: 0.1, Gentle: true}, rng)
		now := sim.Time(0)
		for _, enq := range ops {
			now += sim.Microsecond
			if enq {
				r.Enqueue(pkt(1000), now)
			} else {
				r.Dequeue(now)
			}
			if r.Len() > 50 || r.Len() < 0 {
				return false
			}
			if r.AvgQueue() < 0 || r.AvgQueue() > 50+1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveREDAdaptsMaxPUp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAdaptiveRED(AdaptiveREDConfig{Limit: 300, CapacityPPS: 1000, ECN: false}, rng)
	p0 := a.MaxP()
	now := sim.Time(0)
	// Sustained overload: queue sits near the top of the band.
	for i := 0; i < 20000; i++ {
		now += 500 * sim.Microsecond
		a.Enqueue(pkt(1000), now)
		if i%4 != 0 { // serve 3 of 4
			a.Dequeue(now)
		}
	}
	if a.MaxP() <= p0 {
		t.Fatalf("MaxP did not increase under overload: %v -> %v", p0, a.MaxP())
	}
	if a.MaxP() > 0.5+0.01 {
		t.Fatalf("MaxP exceeded ceiling: %v", a.MaxP())
	}
}

func TestAdaptiveREDAdaptsMaxPDown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAdaptiveRED(AdaptiveREDConfig{Limit: 300, CapacityPPS: 1000}, rng)
	p0 := a.MaxP()
	now := sim.Time(0)
	// Light load: queue stays essentially empty.
	for i := 0; i < 5000; i++ {
		now += 10 * sim.Millisecond
		a.Enqueue(pkt(1000), now)
		a.Dequeue(now)
	}
	if a.MaxP() >= p0 {
		t.Fatalf("MaxP did not decrease under light load: %v -> %v", p0, a.MaxP())
	}
	if a.MaxP() < 0.01*0.89 {
		t.Fatalf("MaxP fell below floor: %v", a.MaxP())
	}
}

func TestDesignPIMatchesHollot(t *testing.T) {
	// Hollot et al. INFOCOM 2001, Section V: C=3750 pkt/s, N=60 flows,
	// Rmax=246 ms, sampled at 160 Hz gives a=1.822e-5, b=1.816e-5.
	g := DesignPI(3750, 60, 246*sim.Millisecond, 160)
	if g.A < 1.5e-5 || g.A > 2.2e-5 {
		t.Fatalf("A = %g, want ~1.82e-5", g.A)
	}
	if g.B < 1.5e-5 || g.B > 2.2e-5 {
		t.Fatalf("B = %g, want ~1.82e-5", g.B)
	}
	if g.A <= g.B {
		t.Fatalf("A (%g) must exceed B (%g)", g.A, g.B)
	}
	if got := g.Interval.Seconds(); got < 1.0/160-1e-9 || got > 1.0/160+1e-9 {
		t.Fatalf("interval = %v", g.Interval)
	}
}

func TestPIControlsQueueTowardReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 1000 pkt/s link, arrivals at 1250 pkt/s: 25% overload that PI must
	// shave via early drops while holding the queue near QRef. Gains are
	// tuned for an open-loop (non-TCP-reactive) source; DesignPI gains
	// assume the TCP plant and converge too slowly for a short unit test.
	g := PIGains{A: 2e-3, B: 1.9e-3, Interval: 5 * sim.Millisecond}
	pi := NewPI(500, 50, g, false, rng)
	now := sim.Time(0)
	var qSum float64
	var qN int
	serveEvery := sim.Seconds(1.0 / 1000)
	arriveEvery := sim.Seconds(1.0 / 1250)
	nextServe, nextArrive := sim.Time(0), sim.Time(0)
	for now < 60*sim.Second {
		if nextArrive <= nextServe {
			now = nextArrive
			pi.Enqueue(pkt(1000), now)
			nextArrive += arriveEvery
		} else {
			now = nextServe
			pi.Dequeue(now)
			nextServe += serveEvery
		}
		if now > 30*sim.Second {
			qSum += float64(pi.Len())
			qN++
		}
	}
	avg := qSum / float64(qN)
	if avg < 25 || avg > 100 {
		t.Fatalf("PI steady-state queue %v, want near QRef=50", avg)
	}
	// A 25% overload requires a steady drop probability near 0.2.
	if pi.P() < 0.1 || pi.P() > 0.35 {
		t.Fatalf("PI steady-state p = %v, want near 0.2", pi.P())
	}
	if pi.EarlyDrops == 0 {
		t.Fatal("PI never early-dropped under overload")
	}
}

func TestPIProbabilityBounds(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := PIGains{A: 1e-3, B: 0.9e-3, Interval: sim.Millisecond}
		pi := NewPI(100, 20, g, false, rng)
		now := sim.Time(0)
		for _, enq := range ops {
			now += 500 * sim.Microsecond
			if enq {
				pi.Enqueue(pkt(500), now)
			} else {
				pi.Dequeue(now)
			}
			if pi.P() < 0 || pi.P() > 1 {
				return false
			}
			if pi.Len() > 100 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPIECNMarking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := PIGains{A: 1e-2, B: 0.5e-2, Interval: sim.Millisecond}
	pi := NewPI(1000, 5, g, true, rng)
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += 100 * sim.Microsecond
		p := pkt(1000)
		p.ECT = true
		pi.Enqueue(p, now)
		if i%3 == 0 {
			pi.Dequeue(now)
		}
	}
	if pi.ECNMarks == 0 {
		t.Fatal("PI/ECN never marked")
	}
	if pi.EarlyDrops != 0 {
		t.Fatal("PI/ECN dropped ECT packets early")
	}
}
