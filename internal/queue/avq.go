package queue

import (
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// AVQ implements the Adaptive Virtual Queue of Kunniyur and Srikant
// (SIGCOMM 2001), another AQM from the paper's citation list. A fictitious
// queue with capacity gamma*C (gamma < 1) is served alongside the real one;
// arrivals that would overflow the virtual queue mark (or drop) the real
// packet. The virtual capacity adapts so the link is driven to the desired
// utilization gamma with an essentially empty real queue.
type AVQ struct {
	Limit int
	Gamma float64 // desired utilization (default 0.98)
	Alpha float64 // damping / adaptation gain (default 0.15)
	ECN   bool

	CapacityPPS float64

	q    fifo
	rng  *rand.Rand
	vq   float64 // virtual queue occupancy, packets
	vcap float64 // virtual capacity, packets/second
	last sim.Time
	init bool

	EarlyDrops  uint64
	ForcedDrops uint64
	ECNMarks    uint64
}

// NewAVQ builds an AVQ queue for a link of the given rate.
func NewAVQ(limit int, capacityPPS float64, ecn bool, rng *rand.Rand) *AVQ {
	if limit <= 0 || capacityPPS <= 0 {
		panic("queue: AVQ requires positive limit and capacity")
	}
	return &AVQ{
		Limit:       limit,
		Gamma:       0.98,
		Alpha:       0.15,
		ECN:         ecn,
		CapacityPPS: capacityPPS,
		rng:         rng,
	}
}

// VirtualCapacity returns the current adapted virtual capacity in pkt/s.
func (a *AVQ) VirtualCapacity() float64 { return a.vcap }

// BindRand rebinds the RNG (see RED.BindRand). AVQ's virtual-queue decision
// is deterministic and draws nothing today, but the discipline carries a
// generator like its siblings, so it honors the same rebinding contract.
func (a *AVQ) BindRand(rng *rand.Rand) { a.rng = rng }

// Enqueue implements netem.Discipline, running the AVQ fluid update at each
// arrival (the form given in the AVQ paper's pseudocode).
func (a *AVQ) Enqueue(p *netem.Packet, now sim.Time) bool {
	if !a.init {
		a.init = true
		a.last = now
		a.vcap = a.Gamma * a.CapacityPPS
	}
	dt := (now - a.last).Seconds()
	a.last = now
	// Drain the virtual queue at the virtual capacity; adapt the virtual
	// capacity toward the target utilization:
	//   VC' = alpha * (gamma*C - lambda)  implemented incrementally.
	a.vq -= a.vcap * dt
	if a.vq < 0 {
		a.vq = 0
	}
	a.vcap += a.Alpha * (a.Gamma*a.CapacityPPS*dt - 1) // -1: this arrival
	if a.vcap < 0.05*a.CapacityPPS {
		a.vcap = 0.05 * a.CapacityPPS
	}
	if a.vcap > a.CapacityPPS {
		a.vcap = a.CapacityPPS
	}

	if a.q.len() >= a.Limit {
		a.ForcedDrops++
		return false
	}
	// Virtual buffer has the same size as the real one.
	if a.vq+1 > float64(a.Limit) {
		if a.ECN && p.ECT {
			p.CE = true
			a.ECNMarks++
			a.q.push(p)
			return true
		}
		a.EarlyDrops++
		return false
	}
	a.vq++
	a.q.push(p)
	return true
}

// Dequeue implements netem.Discipline.
func (a *AVQ) Dequeue(_ sim.Time) *netem.Packet { return a.q.pop() }

// Len implements netem.Discipline.
func (a *AVQ) Len() int { return a.q.len() }

// Bytes implements netem.Discipline.
func (a *AVQ) Bytes() int { return a.q.bytes }

var _ netem.Discipline = (*AVQ)(nil)
var _ netem.Discipline = (*REM)(nil)
var _ netem.Discipline = (*PI)(nil)
var _ netem.Discipline = (*RED)(nil)
var _ netem.Discipline = (*AdaptiveRED)(nil)
var _ netem.Discipline = (*DropTail)(nil)
