package queue

import (
	"math/rand"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

// TestDisciplineConformance subjects every queue discipline to the same
// randomized workload and checks the invariants the Link contract relies on:
// FIFO delivery of accepted packets, truthful Len/Bytes accounting, a hard
// Limit that is never exceeded, nil from an empty Dequeue, and the marking
// contract (CE may be set only inside Enqueue — Link.Send counts marks by
// comparing CE across the Enqueue call, so a dequeue-time mark would go
// uncounted).
func TestDisciplineConformance(t *testing.T) {
	const limit = 32
	makers := map[string]func(rng *rand.Rand) netem.Discipline{
		"droptail": func(*rand.Rand) netem.Discipline { return NewDropTail(limit) },
		"red": func(rng *rand.Rand) netem.Discipline {
			return NewRED(REDConfig{Limit: limit, MinTh: 4, MaxTh: 12, MaxP: 0.1, Wq: 0.2, Gentle: true}, rng)
		},
		"red-ecn": func(rng *rand.Rand) netem.Discipline {
			return NewRED(REDConfig{Limit: limit, MinTh: 4, MaxTh: 12, MaxP: 0.2, Wq: 0.2, Gentle: true, ECN: true}, rng)
		},
		"adaptive-red": func(rng *rand.Rand) netem.Discipline {
			return NewAdaptiveRED(AdaptiveREDConfig{Limit: limit, CapacityPPS: 1000}, rng)
		},
		"pi": func(rng *rand.Rand) netem.Discipline {
			return NewPI(limit, 8, PIGains{A: 1e-3, B: 0.9e-3, Interval: sim.Millisecond}, false, rng)
		},
		"rem": func(rng *rand.Rand) netem.Discipline {
			return NewREM(limit, 1000, false, rng)
		},
		"avq": func(rng *rand.Rand) netem.Discipline {
			return NewAVQ(limit, 1000, false, rng)
		},
	}

	for name, mk := range makers {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				rng := rand.New(rand.NewSource(seed))
				q := mk(rand.New(rand.NewSource(seed + 100)))
				var model []*netem.Packet
				ceAtEnqueue := map[uint64]bool{}
				bytes := 0
				now := sim.Time(0)
				nextID := uint64(1)
				for op := 0; op < 4000; op++ {
					now += sim.Duration(rng.Intn(2000)) * sim.Microsecond
					if rng.Intn(3) > 0 { // 2/3 enqueue
						p := &netem.Packet{ID: nextID, Size: 40 + rng.Intn(1400), ECT: rng.Intn(2) == 0}
						nextID++
						if q.Enqueue(p, now) {
							model = append(model, p)
							ceAtEnqueue[p.ID] = p.CE
							bytes += p.Size
						}
					} else {
						got := q.Dequeue(now)
						if len(model) == 0 {
							if got != nil {
								t.Fatalf("seed %d: dequeue from empty returned %v", seed, got.ID)
							}
						} else {
							if got == nil {
								t.Fatalf("seed %d: nil dequeue with %d queued", seed, len(model))
							}
							if got != model[0] {
								t.Fatalf("seed %d: FIFO violated: got %d want %d", seed, got.ID, model[0].ID)
							}
							if got.CE != ceAtEnqueue[got.ID] {
								t.Fatalf("seed %d: CE changed after enqueue on %d (marking contract)", seed, got.ID)
							}
							delete(ceAtEnqueue, got.ID)
							model = model[1:]
							bytes -= got.Size
						}
					}
					if q.Len() != len(model) {
						t.Fatalf("seed %d op %d: Len=%d model=%d", seed, op, q.Len(), len(model))
					}
					if q.Bytes() != bytes {
						t.Fatalf("seed %d op %d: Bytes=%d model=%d", seed, op, q.Bytes(), bytes)
					}
					if q.Len() > limit {
						t.Fatalf("seed %d: limit exceeded: %d", seed, q.Len())
					}
				}
			}
		})
	}
}
