package queue

import (
	"math"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// PIGains are the discretized proportional-integral controller coefficients:
// p(k) = p(k-1) + A*(q(k)-qref) - B*(q(k-1)-qref), sampled every Interval.
type PIGains struct {
	A, B     float64
	Interval sim.Duration
}

// DesignPI derives PI gains for a router queue from link and population
// bounds, following Hollot et al. (INFOCOM 2001): the controller zero cancels
// the slow TCP-window pole at m = 2*Nmin/(Rmax^2*C) and the loop gain K is
// set for unity magnitude at the crossover. C is in packets/second, freq is
// the sampling frequency in Hz. For Hollot's published example
// (C=3750 pkt/s, Nmin=60, Rmax=246 ms, 160 Hz) this yields gains within a few
// percent of their a=1.822e-5, b=1.816e-5.
func DesignPI(cPPS float64, nMin int, rMax sim.Duration, freq float64) PIGains {
	R := rMax.Seconds()
	m := 2 * float64(nMin) / (R * R * cPPS)
	// Crossover at the zero frequency; loop |L(jw)| = K*C^3/(2N) placed at 1.
	// Router PI acts on queue length, giving the C^3 scaling the paper
	// contrasts with PERT's C^2 (Section 6).
	k := m * math.Hypot(R*m, 1) * math.Pow(2*float64(nMin), 2) / (math.Pow(R, 3) * math.Pow(cPPS, 3))
	dt := 1 / freq
	return PIGains{
		A:        k/m + k*dt/2,
		B:        k/m - k*dt/2,
		Interval: sim.Seconds(dt),
	}
}

// PI is the proportional-integral AQM of Hollot et al.: the marking
// probability integrates the instantaneous queue-length error against a
// reference QRef, removing RED's steady-state error and its averaging-induced
// sluggishness. Marking decisions are per-arrival with the current p.
type PI struct {
	Limit int
	QRef  float64 // reference queue length, packets
	Gains PIGains
	ECN   bool

	q    fifo
	rng  *rand.Rand
	p    float64 // current marking probability
	qOld float64 // queue sample at previous controller update
	last sim.Time
	init bool

	EarlyDrops  uint64
	ForcedDrops uint64
	ECNMarks    uint64
}

// NewPI returns a PI queue with hard capacity limit packets and reference
// queue qref.
func NewPI(limit int, qref float64, g PIGains, ecn bool, rng *rand.Rand) *PI {
	if limit <= 0 {
		panic("queue: non-positive PI limit")
	}
	if g.Interval <= 0 {
		panic("queue: PI gains require a positive sampling interval")
	}
	return &PI{Limit: limit, QRef: qref, Gains: g, ECN: ecn, rng: rng}
}

// P returns the controller's current marking probability.
func (pi *PI) P() float64 { return pi.p }

// BindRand rebinds the marking RNG (see RED.BindRand); called by
// netem.Partition before any traffic flows.
func (pi *PI) BindRand(rng *rand.Rand) { pi.rng = rng }

// update advances the controller to time now, applying one step per elapsed
// sampling interval. Running the difference equation on the arrival path
// (rather than on a timer) keeps the discipline self-contained; multiple
// missed intervals are applied iteratively with the same queue sample, which
// matches the behaviour of a timer-driven controller over an idle period.
func (pi *PI) update(now sim.Time) {
	if !pi.init {
		pi.init = true
		pi.last = now
		pi.qOld = float64(pi.q.len())
		return
	}
	steps := int((now - pi.last) / pi.Gains.Interval)
	if steps <= 0 {
		return
	}
	if steps > 1000 {
		steps = 1000 // long idle: converged long ago
	}
	q := float64(pi.q.len())
	for i := 0; i < steps; i++ {
		pi.p += pi.Gains.A*(q-pi.QRef) - pi.Gains.B*(pi.qOld-pi.QRef)
		pi.p = math.Max(0, math.Min(1, pi.p))
		pi.qOld = q
	}
	pi.last += sim.Time(steps) * pi.Gains.Interval
}

// Enqueue implements netem.Discipline.
func (pi *PI) Enqueue(p *netem.Packet, now sim.Time) bool {
	pi.update(now)
	if pi.q.len() >= pi.Limit {
		pi.ForcedDrops++
		return false
	}
	if pi.p > 0 && pi.rng.Float64() < pi.p {
		if pi.ECN && p.ECT {
			p.CE = true
			pi.ECNMarks++
		} else {
			pi.EarlyDrops++
			return false
		}
	}
	pi.q.push(p)
	return true
}

// Dequeue implements netem.Discipline.
func (pi *PI) Dequeue(_ sim.Time) *netem.Packet { return pi.q.pop() }

// Len implements netem.Discipline.
func (pi *PI) Len() int { return pi.q.len() }

// Bytes implements netem.Discipline.
func (pi *PI) Bytes() int { return pi.q.bytes }
