// Package queue implements the queue-management disciplines the paper
// evaluates against: DropTail, RED with gentle mode and ECN marking
// (Floyd/Jacobson 1993), Adaptive RED (Floyd/Gummadi/Shenker 2001), and the
// PI controller of Hollot et al. (INFOCOM 2001), together with the published
// control-theoretic design rule for PI gains.
package queue

import (
	"pert/internal/netem"
	"pert/internal/sim"
)

// fifo is the shared packet buffer used by all disciplines. It is a slice
// ring with amortized O(1) enqueue/dequeue.
type fifo struct {
	pkts  []*netem.Packet
	head  int
	bytes int
}

func (f *fifo) push(p *netem.Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += p.Size
}

func (f *fifo) pop() *netem.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= p.Size
	// Reclaim space once the consumed prefix dominates.
	if f.head > 64 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.pkts) - f.head }

// DropTail is a FIFO queue with a hard capacity in packets: arrivals beyond
// the limit are dropped. This is the default router behaviour PERT and Vegas
// are evaluated over in the paper.
type DropTail struct {
	Limit int // capacity in packets
	q     fifo
}

// NewDropTail returns a DropTail queue holding at most limit packets.
func NewDropTail(limit int) *DropTail {
	if limit <= 0 {
		panic("queue: non-positive DropTail limit")
	}
	return &DropTail{Limit: limit}
}

// Enqueue implements netem.Discipline.
func (d *DropTail) Enqueue(p *netem.Packet, _ sim.Time) bool {
	if d.q.len() >= d.Limit {
		return false
	}
	d.q.push(p)
	return true
}

// Dequeue implements netem.Discipline.
func (d *DropTail) Dequeue(_ sim.Time) *netem.Packet { return d.q.pop() }

// Len implements netem.Discipline.
func (d *DropTail) Len() int { return d.q.len() }

// Bytes implements netem.Discipline.
func (d *DropTail) Bytes() int { return d.q.bytes }
