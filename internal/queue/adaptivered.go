package queue

import (
	"math"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// AdaptiveRED wraps RED with the parameter self-tuning of Floyd, Gummadi and
// Shenker (2001): MaxP is adapted by AIMD every Interval to keep the average
// queue inside a target band centred between MinTh and MaxTh, and Wq and the
// thresholds are derived from the link rate and a target queueing delay. This
// is the "adaptive RED version for the routers that tunes the parameters
// according to network conditions" used throughout the paper's Section 4.
type AdaptiveRED struct {
	*RED

	// Interval between MaxP adaptations; Floyd 2001 uses 0.5 s.
	Interval sim.Duration
	// Alpha is the additive MaxP increment, Beta the multiplicative
	// decrement (paper defaults: min(0.01, MaxP/4) and 0.9).
	Beta float64

	targetLo, targetHi float64
	lastAdapt          sim.Time
	forcedAtAdapt      uint64
}

// AdaptiveREDConfig describes an Adaptive RED queue in terms of link
// properties rather than raw thresholds.
type AdaptiveREDConfig struct {
	Limit       int          // buffer capacity in packets (required)
	CapacityPPS float64      // link rate in packets/second (required)
	TargetDelay sim.Duration // target queueing delay; default 5 ms
	ECN         bool
	MeanPkt     int
}

// NewAdaptiveRED builds an Adaptive RED queue with thresholds auto-set from
// the link rate and target delay per Floyd 2001: MinTh = max(5, C*d/2),
// MaxTh = 3*MinTh, Wq = 1-exp(-1/C).
func NewAdaptiveRED(cfg AdaptiveREDConfig, rng *rand.Rand) *AdaptiveRED {
	if cfg.CapacityPPS <= 0 {
		panic("queue: AdaptiveRED requires CapacityPPS")
	}
	if cfg.TargetDelay == 0 {
		// Default target: a quarter of the buffer's drain time, floored at
		// 5 ms. A fixed small target starves BDP-sized buffers of the
		// queue TCP sawtooths need to keep the link busy.
		drain := sim.Seconds(float64(cfg.Limit) / cfg.CapacityPPS)
		cfg.TargetDelay = drain / 4
		if cfg.TargetDelay < 5*sim.Millisecond {
			cfg.TargetDelay = 5 * sim.Millisecond
		}
	}
	minTh := math.Max(5, cfg.CapacityPPS*cfg.TargetDelay.Seconds()/2)
	// Keep the marking region inside the physical buffer.
	if 3*minTh > float64(cfg.Limit) {
		minTh = math.Max(1, float64(cfg.Limit)/3)
	}
	red := NewRED(REDConfig{
		Limit:       cfg.Limit,
		MinTh:       minTh,
		MaxTh:       3 * minTh,
		MaxP:        0.1,
		Gentle:      true,
		ECN:         cfg.ECN,
		MeanPkt:     cfg.MeanPkt,
		CapacityPPS: cfg.CapacityPPS,
	}, rng)
	a := &AdaptiveRED{
		RED:      red,
		Interval: 500 * sim.Millisecond,
		Beta:     0.9,
	}
	span := red.cfg.MaxTh - red.cfg.MinTh
	a.targetLo = red.cfg.MinTh + 0.4*span
	a.targetHi = red.cfg.MinTh + 0.6*span
	return a
}

// Enqueue implements netem.Discipline, adapting MaxP on the configured
// interval before delegating to RED.
func (a *AdaptiveRED) Enqueue(p *netem.Packet, now sim.Time) bool {
	if now-a.lastAdapt >= a.Interval {
		a.adapt()
		a.lastAdapt = now
	}
	return a.RED.Enqueue(p, now)
}

// adapt applies one AIMD step to MaxP toward the target average-queue band.
// Buffer overflows during the interval mean marking was too weak regardless
// of where the average sits (overflow losses themselves pull the average
// back into the band, a degenerate equilibrium Floyd's rule alone can get
// stuck in), so they force an increase.
func (a *AdaptiveRED) adapt() {
	r := a.RED
	overflowed := r.ForcedDrops > a.forcedAtAdapt
	a.forcedAtAdapt = r.ForcedDrops
	switch {
	case overflowed:
		r.cfg.MaxP = math.Min(0.5, r.cfg.MaxP*1.5)
	case r.avg > a.targetHi && r.cfg.MaxP < 0.5:
		r.cfg.MaxP += math.Min(0.01, r.cfg.MaxP/4)
	case r.avg < a.targetLo && r.cfg.MaxP > 0.01:
		r.cfg.MaxP *= a.Beta
	}
}

// MaxP exposes the current adapted marking ceiling, for tests.
func (a *AdaptiveRED) MaxP() float64 { return a.RED.cfg.MaxP }
