package cache

import (
	"fmt"
	"os"
)

// Crash-injection hooks for the chaos harness. Setting CrashEnv to one of
// the site names below makes the process die abruptly (os.Exit, no deferred
// cleanup — the closest a cooperating process can come to a SIGKILL) the
// first time it reaches that point of the cache protocol. The sites bracket
// every state transition a crash could interrupt: a killed claimant must
// leave debris that the next claimant (or `-cache-fsck`) can always repair,
// and a crash after the atomic rename must leave a fully-committed cell.
//
// With CrashOnceEnv also set to a file path, the crash fires only if that
// file does not exist yet; the marker is written just before dying, so a
// retried worker inheriting the same environment crashes exactly once.
// This is test instrumentation, not an operator surface.
const (
	// CrashEnv selects the crash site; empty disables injection.
	CrashEnv = "PERT_CRASH_AT"
	// CrashOnceEnv points at a marker file making the injected crash
	// one-shot across process restarts.
	CrashOnceEnv = "PERT_CRASH_ONCE"

	// CrashExitCode is the exit status of an injected crash, distinct from
	// every deliberate exit code the binaries use.
	CrashExitCode = 86
)

// The injectable sites, in protocol order.
const (
	CrashSiteClaim        = "cache.claim"         // lockfile created, staging dir not yet
	CrashSiteStage        = "cache.stage"         // staging dir created, nothing written
	CrashSiteCommitStage  = "cache.commit.stage"  // record staged, rename not yet done
	CrashSiteCommitRename = "cache.commit.rename" // cell renamed into place, lock not yet dropped
	CrashSiteRelease      = "cache.release"       // release requested, nothing cleaned yet
)

// CrashSites lists every injectable site, for chaos drivers that want to
// sweep them.
func CrashSites() []string {
	return []string{CrashSiteClaim, CrashSiteStage, CrashSiteCommitStage,
		CrashSiteCommitRename, CrashSiteRelease}
}

// crashPoint dies abruptly when injection is armed for this site.
func crashPoint(site string) {
	if os.Getenv(CrashEnv) != site {
		return
	}
	if marker := os.Getenv(CrashOnceEnv); marker != "" {
		if _, err := os.Stat(marker); err == nil {
			return // already crashed once
		}
		os.WriteFile(marker, []byte(site), 0o644)
	}
	fmt.Fprintf(os.Stderr, "cache: injected crash at %s\n", site)
	os.Exit(CrashExitCode)
}
