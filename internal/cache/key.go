package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key returns the content address of v: the hex SHA-256 of its JSON
// encoding. Hashing the *parsed* identity object (not raw input bytes) is
// what makes keys canonical: JSON field order, whitespace, duration
// spellings ("60s" vs "1m") and elided defaults all normalize away before
// the digest, so semantically identical specs share a cell.
//
// Callers own canonicalization of the value itself: maps (whose Go JSON
// encoding is key-sorted, hence deterministic) are fine, but any field that
// does not affect results — worker counts, sinks, timeouts — must be left
// out of the identity object, and defaults must be applied before hashing.
func Key(v any) (string, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("cache: keying: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}
