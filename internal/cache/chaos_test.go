package cache

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the crash-test child: when PERT_CACHE_CRASHTEST names
// a store directory, the process runs one claim/commit (or claim/release)
// sequence against it instead of the test suite — with PERT_CRASH_AT armed,
// it dies mid-protocol at the injected site.
func TestMain(m *testing.M) {
	if dir := os.Getenv("PERT_CACHE_CRASHTEST"); dir != "" {
		os.Exit(crashChild(dir))
	}
	os.Exit(m.Run())
}

// crashTestKey is the cell the crash child operates on.
const crashTestKey = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"

func crashChild(dir string) int {
	s, err := Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 9
	}
	claim, err := s.Claim(crashTestKey)
	if err != nil || claim == nil {
		fmt.Fprintf(os.Stderr, "claim failed: %v\n", err)
		return 9
	}
	if os.Getenv(CrashEnv) == CrashSiteRelease {
		claim.Release()
		return 0
	}
	if _, err := claim.Commit([]byte(`{"id":"x","status":"ok","tables":[]}`)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 9
	}
	return 0
}

// runCrashChild re-execs the test binary as a crash child against dir with
// injection armed at site, returning the child's exit code.
func runCrashChild(t *testing.T, dir, site string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"PERT_CACHE_CRASHTEST="+dir,
		CrashEnv+"="+site,
	)
	cmd.Stderr = os.Stderr
	err := cmd.Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("crash child: %v", err)
	return -1
}

// TestCrashSitesLeaveRepairableDebris is the cache half of the chaos
// harness: for every injectable site, a child process dies exactly there,
// and the store must (a) never present a corrupt committed cell, and (b) be
// fully repairable by Fsck, after which a fresh claim/commit round succeeds.
func TestCrashSitesLeaveRepairableDebris(t *testing.T) {
	for _, site := range CrashSites() {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			if code := runCrashChild(t, dir, site); code != CrashExitCode {
				t.Fatalf("child exit = %d, want %d (injection did not fire)", code, CrashExitCode)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// The atomic-rename protocol's core promise: a crash anywhere
			// either left the cell fully committed or not present at all —
			// never half-written.
			entry, committed, err := s.Get(crashTestKey)
			if err != nil {
				t.Fatalf("crash at %s left a corrupt committed cell: %v", site, err)
			}
			wantCommitted := site == CrashSiteCommitRename
			if committed != wantCommitted {
				t.Fatalf("crash at %s: committed = %v, want %v", site, committed, wantCommitted)
			}
			if committed && !strings.Contains(string(entry.Record), `"id":"x"`) {
				t.Fatalf("committed record garbled: %s", entry.Record)
			}
			rep, err := s.Fsck(nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Evicted != 0 {
				t.Fatalf("fsck evicted %d committed cells after crash at %s:\n%s",
					rep.Evicted, site, strings.Join(rep.Problems, "\n"))
			}
			// Every site dies holding the lock (even commit.rename crashes
			// before dropping it), so fsck must break exactly one claim;
			// sites that die with a live staging dir must have it reaped.
			if rep.ClaimsBroken != 1 {
				t.Fatalf("fsck after %s broke %d claims, want 1:\n%s",
					site, rep.ClaimsBroken, strings.Join(rep.Problems, "\n"))
			}
			wantTmp := 0
			switch site {
			case CrashSiteStage, CrashSiteCommitStage, CrashSiteRelease:
				wantTmp = 1
			}
			if rep.TmpReaped != wantTmp {
				t.Fatalf("fsck after %s reaped %d staging dirs, want %d", site, rep.TmpReaped, wantTmp)
			}
			// The store must be fully usable afterwards.
			if !committed {
				claim, err := s.Claim(crashTestKey)
				if err != nil || claim == nil {
					t.Fatalf("re-claim after fsck failed: claim=%v err=%v", claim, err)
				}
				if _, err := claim.Commit([]byte(`{"id":"x","status":"ok","tables":[]}`)); err != nil {
					t.Fatal(err)
				}
			}
			if _, ok, err := s.Get(crashTestKey); err != nil || !ok {
				t.Fatalf("cell not readable after repair: ok=%v err=%v", ok, err)
			}
			// A second fsck on the healthy store is a no-op.
			rep, err = s.Fsck(nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Evicted != 0 || rep.ClaimsBroken != 0 || rep.TmpReaped != 0 {
				t.Fatalf("fsck on healthy store repaired something: %s", rep.Summary())
			}
		})
	}
}

// TestCrashOnceMarker pins the one-shot behavior retried workers rely on:
// with CrashOnceEnv set, the first child dies at the site and the second
// sails through.
func TestCrashOnceMarker(t *testing.T) {
	dir := t.TempDir()
	marker := filepath.Join(t.TempDir(), "crashed-once")
	env := []string{
		"PERT_CACHE_CRASHTEST=" + dir,
		CrashEnv + "=" + CrashSiteCommitStage,
		CrashOnceEnv + "=" + marker,
	}
	run := func() int {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), env...)
		err := cmd.Run()
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatal(err)
		return -1
	}
	if code := run(); code != CrashExitCode {
		t.Fatalf("first child exit = %d, want %d", code, CrashExitCode)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("marker not written: %v", err)
	}
	if code := run(); code != 0 {
		t.Fatalf("second child exit = %d, want 0 (marker should disarm the crash)", code)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(crashTestKey); !ok {
		t.Fatal("second child did not commit the cell")
	}
}

// TestFsckRepairsAllDebrisKinds builds every kind of crash debris by hand —
// an orphaned staging dir, a stale claim, a truncated record — plus one
// healthy cell and one live claim, and checks Fsck repairs exactly the
// debris.
func TestFsckRepairsAllDebrisKinds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyFor := func(b byte) string { return strings.Repeat(string(b), 64) }

	// Healthy committed cell.
	healthy := keyFor('a')
	claim, _ := s.Claim(healthy)
	if _, err := claim.Commit([]byte(`{"id":"h"}`)); err != nil {
		t.Fatal(err)
	}
	// Truncated record.
	corrupt := keyFor('b')
	cdir := s.CellDir(corrupt)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cdir, "record.json"), []byte(`{"id":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stale claim: dead owner.
	stale := keyFor('c')
	if err := os.MkdirAll(filepath.Dir(s.lockPath(stale)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.lockPath(stale), []byte(fmt.Sprint(1<<30)), 0o644); err != nil {
		t.Fatal(err)
	}
	// Live claim: ours, must survive.
	live := keyFor('d')
	liveClaim, err := s.Claim(live)
	if err != nil || liveClaim == nil {
		t.Fatal("live claim failed")
	}
	defer liveClaim.Release()
	// Orphaned staging dir (dead owner).
	orphan := filepath.Join(dir, "tmp", fmt.Sprintf("%s.%d", keyFor('e'), 1<<30))
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (the truncated record): %v", rep.Evicted, rep.Problems)
	}
	if rep.ClaimsBroken != 1 {
		t.Fatalf("claims broken = %d, want 1 (the dead owner): %v", rep.ClaimsBroken, rep.Problems)
	}
	if rep.TmpReaped != 1 {
		t.Fatalf("tmp reaped = %d, want 1: %v", rep.TmpReaped, rep.Problems)
	}
	if _, ok, _ := s.Get(healthy); !ok {
		t.Fatal("healthy cell evicted")
	}
	if _, ok, _ := s.Get(corrupt); ok {
		t.Fatal("corrupt cell survived")
	}
	if s.claimStale(s.lockPath(live)) {
		t.Fatal("live claim broken")
	}
	if _, err := os.Stat(liveClaim.staging); err != nil {
		t.Fatal("live staging dir reaped by fsck")
	}
}

// TestClaimStaleClockSkew: a lockfile whose mtime is in the future (clock
// skew between hosts sharing the directory) must still be breakable when
// its owner is provably dead — age alone never protects a dead owner.
func TestClaimStaleClockSkew(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("f", 64)
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte(fmt.Sprint(1<<30)), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(lock, future, future); err != nil {
		t.Fatal(err)
	}
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("future-dated dead claim not broken: claim=%v err=%v", claim, err)
	}
	claim.Release()
}

// TestClaimStalePIDReuse: when the lockfile's PID is alive but belongs to an
// unrelated process (PID reuse after a reboot — modeled with PID 1), the
// liveness probe alone must not wedge the cell forever: the mtime staleness
// bound still breaks the claim.
func TestClaimStalePIDReuse(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.StaleClaim = 50 * time.Millisecond
	key := strings.Repeat("e", 64)
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte("1"), 0o644); err != nil { // PID 1 is always alive
		t.Fatal(err)
	}
	if claim, _ := s.Claim(key); claim != nil {
		t.Fatal("fresh claim with a live PID was broken")
	}
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("aged-out claim with reused PID not broken: claim=%v err=%v", claim, err)
	}
	claim.Release()
}

// TestWaitReturnsWhenOwnerDies: a waiter polling a claim whose owner was
// SIGKILLed (dead PID in the lockfile, no commit coming) must return
// promptly instead of blocking until context cancellation.
func TestWaitReturnsWhenOwnerDies(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("d", 64)
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte(fmt.Sprint(1<<30)), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		entry, err := s.Wait(ctx, key, 5*time.Millisecond)
		if entry != nil {
			err = fmt.Errorf("Wait returned an entry for an uncommitted cell")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait wedged on a dead owner's claim")
	}
}
