package cache

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testKey(t *testing.T, v any) string {
	t.Helper()
	k, err := Key(v)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyCanonicalizesParsedForm(t *testing.T) {
	// Two JSON documents with different field order and spelling must hash
	// identically once parsed into the same struct.
	type spec struct {
		A string `json:"a,omitempty"`
		B int    `json:"b,omitempty"`
	}
	var x, y spec
	if err := json.Unmarshal([]byte(`{"a":"v","b":2}`), &x); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"b":2,  "a":"v"}`), &y); err != nil {
		t.Fatal(err)
	}
	if testKey(t, x) != testKey(t, y) {
		t.Fatal("field order changed the key")
	}
	if testKey(t, spec{A: "v", B: 2}) != testKey(t, x) {
		t.Fatal("literal vs parsed mismatch")
	}
	if testKey(t, spec{A: "v", B: 3}) == testKey(t, x) {
		t.Fatal("different content, same key")
	}
	if len(testKey(t, x)) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(testKey(t, x)))
	}
}

func TestKeyRejectsUnmarshalable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Fatal("func value produced a key")
	}
}

func TestClaimCommitGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "cell-1")

	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}

	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("Claim = %v, %v", claim, err)
	}
	// Artifacts staged under SeriesDir travel with the commit.
	sub := filepath.Join(claim.SeriesDir(), "exp1")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "cell.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir, err := claim.Commit([]byte(`{"id":"cell-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if dir != s.CellDir(key) {
		t.Fatalf("committed to %q, want %q", dir, s.CellDir(key))
	}

	e, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after commit = %v, %v", ok, err)
	}
	if string(e.Record) != `{"id":"cell-1"}` {
		t.Fatalf("record = %s", e.Record)
	}
	if _, err := os.Stat(filepath.Join(e.Dir, SeriesDirName, "exp1", "cell.jsonl")); err != nil {
		t.Fatalf("series not published: %v", err)
	}
	if _, err := os.Stat(s.lockPath(key)); !os.IsNotExist(err) {
		t.Fatalf("lock survived commit: %v", err)
	}

	// A second commit attempt on the resolved claim fails cleanly.
	if _, err := claim.Commit(nil); err == nil {
		t.Fatal("double commit succeeded")
	}

	if err := s.Evict(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("entry survived Evict")
	}
}

func TestClaimConflictAndRelease(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "contended")

	first, err := s.Claim(key)
	if err != nil || first == nil {
		t.Fatalf("first claim: %v, %v", first, err)
	}
	// Same-process PID is alive, so the second claim loses.
	second, err := s.Claim(key)
	if err != nil || second != nil {
		t.Fatalf("second claim = %v, %v (want nil, nil)", second, err)
	}
	first.Release()
	if _, err := os.Stat(first.staging); !os.IsNotExist(err) {
		t.Fatalf("staging survived release: %v", err)
	}
	retry, err := s.Claim(key)
	if err != nil || retry == nil {
		t.Fatalf("claim after release: %v, %v", retry, err)
	}
	retry.Release()
	retry.Release() // idempotent
}

func TestClaimBreaksDeadOwner(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "orphaned")
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	// A PID far beyond pid_max is never alive.
	if err := os.WriteFile(lock, []byte(fmt.Sprint(1<<30)), 0o644); err != nil {
		t.Fatal(err)
	}
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("dead owner's claim not broken: %v, %v", claim, err)
	}
	claim.Release()
}

func TestClaimBreaksStaleMtime(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.StaleClaim = time.Millisecond
	key := testKey(t, "stale")
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	// A live PID (our own), but the lock is older than StaleClaim — the
	// cross-host path where liveness can't be probed.
	if err := os.WriteFile(lock, []byte(fmt.Sprint(os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("stale claim not broken: %v, %v", claim, err)
	}
	claim.Release()
}

func TestClaimMalformedLockIsStale(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "garbled")
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lock, []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatalf("malformed claim not broken: %v, %v", claim, err)
	}
	claim.Release()
}

func TestWaitSeesCommit(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "awaited")
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatal("claim failed")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		claim.Commit([]byte(`{"ok":true}`))
	}()
	e, err := s.Wait(context.Background(), key, 5*time.Millisecond)
	if err != nil || e == nil {
		t.Fatalf("Wait = %v, %v", e, err)
	}
	if !strings.Contains(string(e.Record), "true") {
		t.Fatalf("record = %s", e.Record)
	}
}

func TestWaitReturnsNilOnRelease(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "abandoned")
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatal("claim failed")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		claim.Release()
	}()
	e, err := s.Wait(context.Background(), key, 5*time.Millisecond)
	if err != nil || e != nil {
		t.Fatalf("Wait after release = %v, %v (want nil, nil)", e, err)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, "forever")
	claim, err := s.Claim(key)
	if err != nil || claim == nil {
		t.Fatal("claim failed")
	}
	defer claim.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, key, 5*time.Millisecond); err == nil {
		t.Fatal("Wait ignored cancellation")
	}
}

func TestOpenSweepsDeadStaging(t *testing.T) {
	dir := t.TempDir()
	// Old + dead owner: reaped.
	dead := filepath.Join(dir, "tmp", fmt.Sprintf("somekey.%d", 1<<30))
	if err := os.MkdirAll(dead, 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpGCGrace)
	if err := os.Chtimes(dead, old, old); err != nil {
		t.Fatal(err)
	}
	// Dead owner but fresh: inside the grace window (the PID may not have
	// started yet — a racing process mid-MkdirTemp), so it survives.
	freshDead := filepath.Join(dir, "tmp", fmt.Sprintf("newkey.%d", 1<<30-1))
	if err := os.MkdirAll(freshDead, 0o755); err != nil {
		t.Fatal(err)
	}
	// Live owner, however old: never reaped.
	live := filepath.Join(dir, "tmp", fmt.Sprintf("otherkey.%d", os.Getpid()))
	if err := os.MkdirAll(live, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(live, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dead); !os.IsNotExist(err) {
		t.Fatal("old dead staging dir survived Open")
	}
	if _, err := os.Stat(freshDead); err != nil {
		t.Fatal("fresh staging dir was swept inside the grace window")
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatal("live staging dir was swept")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
