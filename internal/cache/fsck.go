package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FsckReport summarizes one repair pass over a store.
type FsckReport struct {
	// Cells is the number of committed cells examined.
	Cells int
	// Evicted counts cells removed because their record.json was missing,
	// truncated, or failed validation.
	Evicted int
	// ClaimsBroken counts stale lockfiles removed (dead or unprovable
	// owners; live claims are left alone).
	ClaimsBroken int
	// TmpReaped counts orphaned staging directories removed.
	TmpReaped int
	// Problems describes each repair, one line per action, in scan order.
	Problems []string
}

// Fsck scans the whole store and repairs crash debris: orphaned staging
// directories under tmp/, stale claim lockfiles, and committed cells whose
// record.json no longer parses (truncated by a dying filesystem,
// hand-edited, or otherwise corrupt). validate, when non-nil, is applied to
// each record blob and its error evicts the cell — the harness passes a
// strict RunRecord decoder; nil falls back to a JSON well-formedness check.
//
// Fsck is safe to run while other processes use the store: live claims and
// live staging directories are never touched, and eviction of a corrupt
// cell at worst forces a recompute. The atomic stage-under-tmp/rename
// commit protocol guarantees a crash can never truncate a committed cell,
// so on a healthy store Fsck evicts nothing — the chaos suite pins that.
func (s *Store) Fsck(validate func([]byte) error) (*FsckReport, error) {
	if validate == nil {
		validate = func(blob []byte) error {
			if !json.Valid(blob) {
				return errors.New("not valid JSON")
			}
			return nil
		}
	}
	rep := &FsckReport{}
	note := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	// Orphaned staging directories: an explicit repair does not wait out the
	// dead-owner grace period Open's background GC observes.
	tmp, err := os.ReadDir(filepath.Join(s.dir, "tmp"))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("cache: fsck: %w", err)
	}
	for _, e := range tmp {
		if s.reapTmp(e.Name(), 0) {
			rep.TmpReaped++
			note("reaped orphaned staging dir tmp/%s", e.Name())
		}
	}

	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: fsck: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == "tmp" {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			path := filepath.Join(s.dir, sh.Name(), name)
			if strings.HasSuffix(name, ".lock") {
				if s.claimStale(path) {
					os.Remove(path)
					rep.ClaimsBroken++
					note("broke stale claim %s/%s", sh.Name(), name)
				}
				continue
			}
			if !e.IsDir() {
				continue
			}
			rep.Cells++
			blob, err := os.ReadFile(filepath.Join(path, recordFile))
			if err != nil {
				os.RemoveAll(path)
				rep.Evicted++
				note("evicted cell %s: unreadable record.json: %v", name, err)
				continue
			}
			if err := validate(blob); err != nil {
				os.RemoveAll(path)
				rep.Evicted++
				note("evicted cell %s: corrupt record.json: %v", name, err)
			}
		}
	}
	return rep, nil
}

// Summary renders the report's one-line totals.
func (r *FsckReport) Summary() string {
	return fmt.Sprintf("%d cells checked, %d evicted, %d stale claims broken, %d staging dirs reaped",
		r.Cells, r.Evicted, r.ClaimsBroken, r.TmpReaped)
}
