// Package cache implements a content-addressed result store for sweep
// cells. Every cell is keyed by the hex SHA-256 of a canonical JSON
// "identity" object (the harness builds it from the RunSpec, the experiment,
// and the code version) and committed atomically under
//
//	<dir>/<key[:2]>/<key>/record.json   the cell's serialized RunRecord
//	<dir>/<key[:2]>/<key>/series/...    bulky artifacts (obs time series)
//
// so a committed cell is always complete: the staging directory under
// <dir>/tmp is populated first and renamed into place in one atomic step.
// While a cell is being computed its owner holds a lockfile claim
// (<dir>/<key[:2]>/<key>.lock, containing the owner's PID), which is how
// multiple worker processes share one cache directory to split a sweep:
// a worker that loses the claim race waits for the winner's commit instead
// of recomputing. Claims left behind by killed processes are broken by the
// next claimant (dead PID, or mtime older than Store.StaleClaim), which is
// what makes an interrupted sweep resumable exactly where it stopped.
//
// The store is deliberately generic — records are opaque JSON blobs — so it
// has no dependency on the harness's report types.
package cache

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// recordFile is the per-cell record filename; its presence defines a
// committed cell (the atomic rename guarantees it never exists partially).
const recordFile = "record.json"

// SeriesDirName is the per-cell subdirectory for bulky artifacts (time
// series files). Callers populate Claim.SeriesDir before Commit.
const SeriesDirName = "series"

// DefaultStaleClaim bounds how long a claim whose owner cannot be proven
// dead (e.g. a worker on another machine sharing the directory) blocks
// other claimants before being broken.
const DefaultStaleClaim = 15 * time.Minute

// Store is one cache directory. It is safe for use by many processes at
// once; within a process, use one Store per sweep (methods are stateless,
// so concurrent use is also fine).
type Store struct {
	dir string

	// StaleClaim is the age beyond which a live-looking claim is broken
	// anyway (covers owners on other hosts, where PID liveness means
	// nothing). Zero disables the age check; PID-dead claims are always
	// broken.
	StaleClaim time.Duration
}

// Open creates (if needed) and returns the store rooted at dir. The tmp
// staging area lives inside dir so commits rename within one filesystem;
// staging directories abandoned by dead processes are swept on open.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cache: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{dir: dir, StaleClaim: DefaultStaleClaim}
	s.sweepTmp()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// CellDir returns the committed location for key (which exists only once
// the cell has been committed).
func (s *Store) CellDir(key string) string {
	return filepath.Join(s.dir, shard(key), key)
}

func (s *Store) lockPath(key string) string {
	return filepath.Join(s.dir, shard(key), key+".lock")
}

// shard spreads cells over 256 subdirectories.
func shard(key string) string {
	if len(key) < 2 {
		return "xx"
	}
	return key[:2]
}

// Entry is one committed cell.
type Entry struct {
	Key    string
	Dir    string          // the committed cell directory
	Record json.RawMessage // contents of record.json
}

// Get reports the committed entry for key, if any. A missing cell is not an
// error; a present but unreadable one is.
func (s *Store) Get(key string) (*Entry, bool, error) {
	dir := s.CellDir(key)
	blob, err := os.ReadFile(filepath.Join(dir, recordFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	return &Entry{Key: key, Dir: dir, Record: blob}, true, nil
}

// Evict removes a committed cell (used to recover from a corrupt record so
// the cell can be recomputed).
func (s *Store) Evict(key string) error {
	return os.RemoveAll(s.CellDir(key))
}

// Claim attempts to take exclusive ownership of computing key. It returns
// (nil, nil) when another live process already holds the claim — the caller
// should Wait for that owner's commit. Claims whose owner is provably dead,
// or older than StaleClaim, are broken and re-taken, which is what lets a
// killed sweep's successor resume the exact cell that was in flight.
func (s *Store) Claim(key string) (*Claim, error) {
	lock := s.lockPath(key)
	if err := os.MkdirAll(filepath.Dir(lock), 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(lock, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			if err := f.Close(); err != nil {
				os.Remove(lock)
				return nil, fmt.Errorf("cache: %w", err)
			}
			crashPoint(CrashSiteClaim)
			staging := filepath.Join(s.dir, "tmp", fmt.Sprintf("%s.%d", key, os.Getpid()))
			os.RemoveAll(staging)
			if err := os.MkdirAll(staging, 0o755); err != nil {
				os.Remove(lock)
				return nil, fmt.Errorf("cache: %w", err)
			}
			crashPoint(CrashSiteStage)
			return &Claim{store: s, key: key, lock: lock, staging: staging}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("cache: %w", err)
		}
		if !s.claimStale(lock) {
			return nil, nil
		}
		os.Remove(lock) // stale: break it and retry the exclusive create
	}
	return nil, nil
}

// Wait blocks until key is committed by another process, polling the store.
// It returns (nil, nil) when the claim disappears without a commit (the
// owner released or died) — the caller should retry Claim. A claim whose
// owner is provably dead, or stale by age, counts as disappeared: a waiter
// must not be wedged forever by the lockfile of a SIGKILLed worker.
// Cancellation of ctx returns its error.
func (s *Store) Wait(ctx context.Context, key string, poll time.Duration) (*Entry, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		if e, ok, err := s.Get(key); err != nil {
			return nil, err
		} else if ok {
			return e, nil
		}
		if s.claimStale(s.lockPath(key)) {
			// No live claim (vanished, dead owner, or stale by age): the
			// caller should retry Claim, which will break any leftover lock.
			// One last Get closes the release-after-commit race.
			e, ok, err := s.Get(key)
			if err != nil || !ok {
				return nil, err
			}
			return e, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}

// claimStale reports whether the lockfile may be broken: unreadable or
// malformed locks, dead owners, and (when StaleClaim is set) old locks all
// count as stale.
func (s *Store) claimStale(lock string) bool {
	fi, err := os.Stat(lock)
	if err != nil {
		return true // vanished or unreadable: retry the create
	}
	if s.StaleClaim > 0 && time.Since(fi.ModTime()) > s.StaleClaim {
		return true
	}
	blob, err := os.ReadFile(lock)
	if err != nil {
		return true
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(blob)))
	if err != nil || pid <= 0 {
		return true
	}
	return !processAlive(pid)
}

// processAlive reports whether pid exists on this host. EPERM (alive, other
// user) counts as alive; on platforms where signal 0 is unsupported the
// probe errs on the side of alive and the mtime staleness bound applies.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	if errors.Is(err, os.ErrProcessDone) || errors.Is(err, syscall.ESRCH) {
		return false
	}
	return true
}

// tmpGCGrace is the minimum age before Open's GC may reap a staging
// directory whose owner looks dead. The PID probe can misfire — an owner on
// another host sharing the directory, or a PID namespace boundary — so a
// freshly-modified staging dir is never reaped on liveness evidence alone,
// mirroring the lockfile protocol's age + PID-liveness stale-breaking.
const tmpGCGrace = time.Minute

// sweepTmp garbage-collects staging directories abandoned by interrupted
// commits. It must never reap a directory another live process is actively
// staging, so it reaps only when the owner is provably dead AND the
// directory has not been touched within tmpGCGrace; directories whose owner
// cannot even be parsed are reaped once older than StaleClaim. A live
// owner's staging dir is never touched (a reused PID delays collection
// until that PID dies, which is bounded and harmless).
func (s *Store) sweepTmp() {
	entries, err := os.ReadDir(filepath.Join(s.dir, "tmp"))
	if err != nil {
		return
	}
	for _, e := range entries {
		s.reapTmp(e.Name(), tmpGCGrace)
	}
}

// reapTmp applies the staging GC policy to one tmp entry: deadGrace is the
// minimum age for reaping a dead owner's directory (fsck passes 0 — an
// explicit repair need not wait). Reports whether the entry was removed.
func (s *Store) reapTmp(name string, deadGrace time.Duration) bool {
	path := filepath.Join(s.dir, "tmp", name)
	fi, err := os.Stat(path)
	if err != nil {
		return false
	}
	age := time.Since(fi.ModTime())
	pid := 0
	if dot := strings.LastIndexByte(name, '.'); dot >= 0 {
		pid, _ = strconv.Atoi(name[dot+1:])
	}
	switch {
	case pid == os.Getpid():
		return false // our own in-flight claims
	case pid > 0 && processAlive(pid):
		return false // actively staging (or a reused PID; collected later)
	case pid > 0:
		if age < deadGrace {
			return false // dead-looking but fresh: the probe may be wrong
		}
	default:
		// Unattributable name (not ours): only age can clear it.
		if s.StaleClaim <= 0 || age < s.StaleClaim {
			return false
		}
	}
	os.RemoveAll(path)
	return true
}

// Claim is exclusive ownership of one in-flight cell. Exactly one of Commit
// and Release must be called; both are idempotent afterwards.
type Claim struct {
	store   *Store
	key     string
	lock    string
	staging string
	done    bool
}

// SeriesDir returns the staging directory for the cell's bulky artifacts;
// files written under it are published atomically with the record on
// Commit. The directory exists.
func (c *Claim) SeriesDir() string { return filepath.Join(c.staging, SeriesDirName) }

// Dir returns the cell's final committed location (valid after Commit).
func (c *Claim) Dir() string { return c.store.CellDir(c.key) }

// Commit writes the record into staging and atomically publishes the whole
// cell, then drops the lock. Returns the committed cell directory.
func (c *Claim) Commit(record []byte) (string, error) {
	if c.done {
		return "", errors.New("cache: claim already resolved")
	}
	final := c.store.CellDir(c.key)
	fail := func(err error) (string, error) {
		c.Release()
		return "", fmt.Errorf("cache: committing %s: %w", c.key, err)
	}
	if err := os.WriteFile(filepath.Join(c.staging, recordFile), record, 0o644); err != nil {
		return fail(err)
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fail(err)
	}
	crashPoint(CrashSiteCommitStage)
	if err := os.Rename(c.staging, final); err != nil {
		// A cell that appeared despite our lock (external writer) still
		// satisfies the caller; anything else is a real commit failure.
		if _, ok, _ := c.store.Get(c.key); ok {
			c.Release()
			return final, nil
		}
		return fail(err)
	}
	crashPoint(CrashSiteCommitRename)
	os.Remove(c.lock)
	c.done = true
	return final, nil
}

// Release abandons the claim: staging is discarded and the lock dropped, so
// another claimant (or a retry) can compute the cell.
func (c *Claim) Release() {
	if c.done {
		return
	}
	crashPoint(CrashSiteRelease)
	os.RemoveAll(c.staging)
	os.Remove(c.lock)
	c.done = true
}
