package netem

import (
	"fmt"
	"math/rand"

	"pert/internal/fluid"
	"pert/internal/sim"
)

// FluidSource couples a PERT/RED fluid aggregate (internal/fluid) to one
// link: the modeled flows' arrival rate and queue occupancy inflate the
// link's shared queue, so real packets crossing the link experience the
// fluid-driven delay and loss, while the measured packet arrival rate feeds
// back into the DDE's queue equation (fluid.HybridSystem). One FluidSource
// models Flows background connections at the cost of a three-state ODE step
// per tick — the substrate that takes a bottleneck from thousands of
// simulated connections to millions of modeled ones.
//
// The co-simulation runs on a sim.Ticker: each Interval the source measures
// the packet arrival rate over the elapsed tick, advances the fluid Stepper
// to the current sim time, and refreshes the cached coupling outputs (modeled
// backlog, added queueing delay, response probability) that the packet path
// reads. Fluid state is therefore piecewise-constant between ticks, which is
// exact to O(Interval) — keep Interval well below the modeled RTT.
//
// FluidSources are serial-only: Network.Partition rejects a partitioned
// network containing one (the ticker and the shared-queue reads are bound to
// the build engine).
type FluidSource struct {
	link *Link
	cfg  FluidConfig
	par  fluid.PERTParams
	st   *fluid.Stepper
	tick *sim.Ticker
	rng  *rand.Rand // ECN-mark draws; nil unless cfg.ECN

	lastArrivals uint64   // Stats.Arrivals at the previous tick
	lastTick     sim.Time // previous tick time
	pktRate      float64  // measured packet arrivals/s over the last tick

	// Cached coupling outputs, refreshed every tick.
	backlog float64      // modeled fluid packets in the shared queue
	extra   sim.Duration // queueing delay real packets inherit from them
	prob    float64      // response probability L·(Tq̂−Tmin), clamped [0,1]
}

// FluidConfig parameterizes the modeled aggregate attached to a link.
type FluidConfig struct {
	// Flows is the number of modeled background connections (N in the
	// fluid model). Counts up to 10^6 cost the same as 10.
	Flows float64
	// RTT is the modeled flows' common round-trip time, seconds.
	RTT float64
	// PktSize converts the link's bit rate to packets/second (C in the
	// model). Defaults to 1040 bytes (1000B payload + headers), matching
	// the packet experiments.
	PktSize int
	// Tmin, Tmax, Pmax shape the PERT response curve. Defaults: 5 ms,
	// 105 ms, 0.1.
	Tmin, Tmax, Pmax float64
	// Alpha and Delta are the EWMA weight and sampling interval of the
	// modeled end hosts. Alpha defaults to 0.99; Delta defaults to
	// (1-Alpha)·RTT/6, pinning the EWMA smoothing time constant
	// Delta/(1-Alpha) to RTT/6. A fixed default would put seconds of
	// smoothing lag on top of a tens-of-milliseconds feedback delay, and
	// the extra phase drives certified-stable equilibria into sustained
	// drain-and-refill limit cycles around the Tq=0 clamp.
	Alpha, Delta float64
	// Step is the DDE integration step, seconds. Default 1 ms.
	Step float64
	// Interval is the co-simulation tick. Default 10 ms.
	Interval sim.Duration
	// BufferPkts bounds the shared queue: a real packet arriving when
	// modeled backlog + packet queue length reaches it is dropped exactly
	// like a queue reject. 0 disables shared-overflow loss.
	BufferPkts int
	// ECN marks real ECN-capable packets with probability equal to the
	// aggregate's current response probability instead of relying on
	// overflow loss alone. Draws come from a dedicated generator seeded
	// with Seed, so enabling it perturbs no other random stream.
	ECN  bool
	Seed int64
}

func (c *FluidConfig) applyDefaults() {
	if c.PktSize == 0 {
		c.PktSize = 1040
	}
	if c.Tmin == 0 {
		c.Tmin = 0.005
	}
	if c.Tmax == 0 {
		c.Tmax = 0.105
	}
	if c.Pmax == 0 {
		c.Pmax = 0.1
	}
	if c.Alpha == 0 {
		c.Alpha = 0.99
	}
	if c.Delta == 0 {
		c.Delta = (1 - c.Alpha) * c.RTT / 6
	}
	if c.Step == 0 {
		c.Step = 1e-3
	}
	if c.Interval == 0 {
		c.Interval = 10 * sim.Millisecond
	}
}

// AttachFluid attaches a modeled background aggregate to the link and starts
// its co-simulation ticker. The fluid model sees the link's capacity at
// attach time (SetCapacity changes do not propagate into the DDE), starts
// from the cold state (W=1, empty queue), and runs for the rest of the
// simulation. One fluid source per link.
func AttachFluid(l *Link, cfg FluidConfig) (*FluidSource, error) {
	if l.fluid != nil {
		return nil, fmt.Errorf("netem: %v already has a fluid source", l)
	}
	if l.eng == nil {
		return nil, fmt.Errorf("netem: link is not attached to an engine")
	}
	cfg.applyDefaults()
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("netem: fluid source needs a positive flow count, got %v", cfg.Flows)
	}
	if cfg.RTT <= cfg.Step {
		return nil, fmt.Errorf("netem: fluid RTT %vs must exceed the integration step %vs", cfg.RTT, cfg.Step)
	}
	fs := &FluidSource{link: l, cfg: cfg}
	fs.par = fluid.PERTParams{
		C:     l.Capacity / (8 * float64(cfg.PktSize)),
		N:     cfg.Flows,
		R:     cfg.RTT,
		Tmin:  cfg.Tmin,
		Tmax:  cfg.Tmax,
		Pmax:  cfg.Pmax,
		Alpha: cfg.Alpha,
		Delta: cfg.Delta,
	}
	if cfg.ECN {
		fs.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	sys := fs.par.HybridSystem(fluid.HybridInputs{PacketRate: func() float64 { return fs.pktRate }})
	now := l.eng.Now()
	fs.st = fluid.NewStepper(sys, []float64{1, 0, 0}, now.Seconds(), cfg.Step)
	fs.lastTick = now
	fs.lastArrivals = l.Stats.Arrivals
	fs.tick = l.eng.Every(now, cfg.Interval, fs.onTick)
	l.fluid = fs
	return fs, nil
}

// onTick is the co-simulation step: measure the packet arrival rate since the
// last tick, advance the DDE to now, and refresh the coupling outputs.
func (fs *FluidSource) onTick(now sim.Time) {
	if dt := (now - fs.lastTick).Seconds(); dt > 0 {
		fs.pktRate = float64(fs.link.Stats.Arrivals-fs.lastArrivals) / dt
	}
	fs.lastTick = now
	fs.lastArrivals = fs.link.Stats.Arrivals
	fs.st.AdvanceTo(now.Seconds())

	x := fs.st.State()
	// The DDE's Tq models the shared queue's total delay; the modeled
	// backlog is whatever part of it the real packet queue doesn't already
	// account for.
	fs.backlog = x[1]*fs.par.C - float64(fs.link.Queue.Len())
	if fs.backlog < 0 {
		fs.backlog = 0
	}
	fs.extra = sim.Seconds(fs.backlog / fs.par.C)
	p := fs.par.L() * (x[2] - fs.par.Tmin)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	fs.prob = p
}

// admit decides the fate of a real packet offered to the shared queue:
// reject when the combined modeled + packet backlog has filled the buffer,
// and otherwise mark ECN-capable packets at the aggregate's response
// probability when configured.
func (fs *FluidSource) admit(p *Packet) bool {
	if fs.cfg.BufferPkts > 0 && fs.backlog+float64(fs.link.Queue.Len()) >= float64(fs.cfg.BufferPkts) {
		return false
	}
	if fs.rng != nil && p.ECT && !p.CE && fs.prob > 0 && fs.rng.Float64() < fs.prob {
		p.CE = true
		fs.link.Stats.Marks++
	}
	return true
}

// Backlog returns the modeled fluid packets currently in the shared queue.
func (fs *FluidSource) Backlog() float64 { return fs.backlog }

// QueueDelay returns the extra queueing delay real packets currently inherit
// from the modeled traffic.
func (fs *FluidSource) QueueDelay() sim.Duration { return fs.extra }

// Prob returns the aggregate's current response probability.
func (fs *FluidSource) Prob() float64 { return fs.prob }

// Rate returns the modeled aggregate's current arrival rate in packets per
// second, N·W/R evaluated at the present fluid state.
func (fs *FluidSource) Rate() float64 {
	return fs.par.N * fs.st.State()[0] / fs.par.R
}

// PacketRate returns the measured real-packet arrival rate fed back into the
// DDE over the last completed tick.
func (fs *FluidSource) PacketRate() float64 { return fs.pktRate }

// Params returns the fluid model parameters derived from the config and the
// link (notably C in packets/second).
func (fs *FluidSource) Params() fluid.PERTParams { return fs.par }

// Flows returns the modeled background flow count.
func (fs *FluidSource) Flows() float64 { return fs.cfg.Flows }

// State returns the current fluid state (W, Tq, smoothed Tq). The slice is
// live working storage; copy to retain.
func (fs *FluidSource) State() []float64 { return fs.st.State() }

// Stop halts the co-simulation ticker; the cached coupling outputs freeze at
// their last values.
func (fs *FluidSource) Stop() { fs.tick.Stop() }

// Fluid returns the link's attached fluid source, nil without one.
func (l *Link) Fluid() *FluidSource { return l.fluid }

// QueuePkts returns the link's shared queue length in packets: the real
// queue plus the modeled fluid backlog. Without a fluid source it is exactly
// float64(Queue.Len()).
func (l *Link) QueuePkts() float64 {
	n := float64(l.Queue.Len())
	if l.fluid != nil {
		n += l.fluid.backlog
	}
	return n
}
