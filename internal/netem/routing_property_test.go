package netem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/sim"
)

// Property: on random connected graphs, ComputeRoutes yields next-hop tables
// whose path lengths equal the BFS shortest-path distance, and following the
// next hops always reaches the destination without loops.
func TestRoutingShortestPathProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%14) + 2
		extra := int(extraRaw % 16)

		eng := sim.NewEngine(1)
		net := NewNetwork(eng)
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = net.AddNode()
		}
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		link := func(a, b int) {
			if a == b || adj[a][b] {
				return
			}
			adj[a][b], adj[b][a] = true, true
			net.AddDuplexLink(nodes[a], nodes[b], 1e9, sim.Millisecond, &tail{limit: 10}, &tail{limit: 10})
		}
		// Random spanning tree keeps the graph connected.
		for i := 1; i < n; i++ {
			link(i, rng.Intn(i))
		}
		for i := 0; i < extra; i++ {
			link(rng.Intn(n), rng.Intn(n))
		}
		net.ComputeRoutes()

		// Reference BFS distances.
		dist := func(src int) []int {
			d := make([]int, n)
			for i := range d {
				d[i] = -1
			}
			d[src] = 0
			q := []int{src}
			for len(q) > 0 {
				v := q[0]
				q = q[1:]
				for u := 0; u < n; u++ {
					if adj[v][u] && d[u] < 0 {
						d[u] = d[v] + 1
						q = append(q, u)
					}
				}
			}
			return d
		}
		for src := 0; src < n; src++ {
			d := dist(src)
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				// Walk the next-hop chain.
				hops := 0
				cur := src
				for cur != dst {
					l := nodes[cur].next[NodeID(dst)]
					if l == nil {
						return false // unreachable in a connected graph
					}
					cur = int(l.To.ID)
					hops++
					if hops > n {
						return false // loop
					}
				}
				if hops != d[dst] {
					return false // not shortest
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(15))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
