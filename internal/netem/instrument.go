package netem

import (
	"math"

	"pert/internal/obs"
	"pert/internal/sim"
)

// Instrument registers the link's time series on reg, named <prefix>.<field>:
//
//	len         instantaneous queue length, packets
//	bytes       instantaneous queue occupancy, bytes
//	drops       cumulative drops (queue rejects + blackholing)
//	marks       cumulative ECN marks
//	util        link utilization over the preceding sampling interval,
//	            via UtilizationOver (exact across SetCapacity changes)
//	avg         discipline's average queue estimate, packets (RED family)
//	maxp        discipline's live marking ceiling (RED family; the adaptive
//	            variant reports its adapted value)
//	prob        discipline's current marking probability (PI)
//	drop_events cumulative drop events counted by a chained OnDrop hook — a
//	            per-event counter, unlike the sampled gauges above
//
// avg/maxp/prob appear only when the attached Discipline exposes them
// (structural interfaces, satisfied by the queue package's RED, AdaptiveRED
// and PI). Gauges are pure reads at sampling ticks; the OnDrop chain is the
// only per-event cost and exists only on instrumented links.
func (l *Link) Instrument(reg *obs.Registry, prefix string) {
	if l == nil || reg == nil {
		return
	}
	reg.GaugeFunc(prefix+".len", func() float64 { return float64(l.Queue.Len()) })
	reg.GaugeFunc(prefix+".bytes", func() float64 { return float64(l.Queue.Bytes()) })
	reg.GaugeFunc(prefix+".drops", func() float64 { return float64(l.Stats.Drops) })
	reg.GaugeFunc(prefix+".marks", func() float64 { return float64(l.Stats.Marks) })

	// Utilization over the window since the previous sample: the closure
	// keeps a (time, TxBytes) snapshot and advances it every tick.
	var lastT sim.Time
	var lastTx uint64
	reg.GaugeFunc(prefix+".util", func() float64 {
		now := l.eng.Now()
		if now <= lastT {
			return math.NaN() // first tick at t=0: no window yet
		}
		u := l.UtilizationOver(lastTx, lastT, now)
		lastT, lastTx = now, l.Stats.TxBytes
		return u
	})

	if q, ok := l.Queue.(interface{ AvgQueue() float64 }); ok {
		reg.GaugeFunc(prefix+".avg", func() float64 { return q.AvgQueue() })
	}
	if q, ok := l.Queue.(interface{ MaxP() float64 }); ok {
		reg.GaugeFunc(prefix+".maxp", func() float64 { return q.MaxP() })
	}
	if q, ok := l.Queue.(interface{ P() float64 }); ok {
		reg.GaugeFunc(prefix+".prob", func() float64 { return q.P() })
	}

	if fs := l.fluid; fs != nil {
		reg.GaugeFunc(prefix+".fluid.rate", func() float64 { return fs.Rate() })
		reg.GaugeFunc(prefix+".fluid.queue", func() float64 { return fs.Backlog() })
		reg.GaugeFunc(prefix+".fluid.prob", func() float64 { return fs.Prob() })
		reg.GaugeFunc(prefix+".fluid.share", func() float64 {
			total := l.QueuePkts()
			if total == 0 {
				return 0
			}
			return fs.Backlog() / total
		})
	}

	drops := reg.NewCounter(prefix + ".drop_events")
	prev := l.OnDrop
	l.OnDrop = func(p *Packet, now sim.Time) {
		drops.Inc()
		if prev != nil {
			prev(p, now)
		}
	}
}
