// Package netem models network elements at packet granularity: packets,
// nodes, unidirectional links with output queues, and static shortest-path
// routing. Together with a queue discipline (internal/queue) and endpoint
// agents (internal/tcp) it forms the packet-level simulator the paper's ns-2
// evaluation is reproduced on.
package netem

import (
	"math/rand"

	"pert/internal/sim"
)

// NodeID identifies a node within a Network. IDs are dense indices assigned
// by Network.AddNode.
type NodeID int

// SackBlock is a contiguous range of received segments [Start, End)
// advertised by a receiver, in segment numbers.
type SackBlock struct {
	Start, End int64
}

// MaxSackBlocks is the most SACK blocks one ACK advertises (RFC 2018's
// practical limit with timestamps), and the capacity of every packet's
// inline SACK storage.
const MaxSackBlocks = 3

// Pool states for Packet.pool. Foreign packets (constructed directly rather
// than via Network.NewPacket) are never recycled.
const (
	pktForeign uint8 = iota
	pktLive
	pktFree
)

// Packet is a simulated packet. Like ns-2, TCP is modeled at segment
// granularity: Seq and AckNo count segments, not bytes; Size is the wire size
// in bytes used for link timing and queue accounting.
type Packet struct {
	ID   uint64
	Flow int
	Src  NodeID
	Dst  NodeID
	Size int // bytes on the wire

	// TCP fields.
	IsAck bool
	Seq   int64 // data: segment sequence number
	AckNo int64 // ack: next expected segment (cumulative)
	// Sack lists up to MaxSackBlocks most recent received blocks on an ACK.
	// Receivers on the hot path call ResetSack and append, which backs the
	// slice with the packet's inline sackStore array instead of a fresh
	// heap allocation per ACK; hand-built packets may still assign any
	// slice directly.
	Sack []SackBlock

	// ECN (RFC 3168) fields. ECT marks the packet as ECN-capable; CE is set
	// by an AQM in place of a drop; ECE is the receiver's echo back to the
	// sender; CWR acknowledges the echo.
	ECT bool
	CE  bool
	ECE bool
	CWR bool

	// SentAt is stamped by the sender on data packets and echoed in Echo on
	// the corresponding ACK, giving per-packet RTT samples.
	SentAt sim.Time
	Echo   sim.Time

	// Retrans marks retransmitted data segments; their echoed timestamps are
	// ambiguous and excluded from RTT sampling (Karn's rule).
	Retrans bool

	// OWD, when set by an instrumented receiver, is the measured forward
	// one-way delay of a data segment, echoed back on its ACK. It powers
	// the Section 7 one-way-delay PERT variant, which excludes reverse-path
	// queueing from the congestion signal.
	OWD sim.Duration

	// QueueSample is measurement instrumentation (not protocol state): a
	// probe point (e.g. the bottleneck queue) can stamp the occupancy this
	// packet observed, and receivers echo it on ACKs, giving per-sample
	// ground truth for the Section 2 study. Negative means unset.
	QueueSample float64

	// sackStore is the inline backing array ResetSack points Sack at.
	sackStore [MaxSackBlocks]SackBlock
	// pool tracks free-list membership; see Network.NewPacket.
	pool uint8
}

// ResetSack empties the packet's SACK list and points it at the inline
// backing array, so up to MaxSackBlocks appends allocate nothing.
func (p *Packet) ResetSack() { p.Sack = p.sackStore[:0] }

// Handler consumes packets addressed to a node's local agents.
type Handler interface {
	Receive(p *Packet, now sim.Time)
}

// Discipline is a queue management algorithm attached to a link. Enqueue
// either accepts the packet (possibly setting CE on ECN-capable packets in
// place of a drop) and returns true, or rejects it and returns false.
// Dequeue returns nil when the queue is empty.
//
// Marking contract: a discipline may set CE only inside Enqueue, never at
// Dequeue or between calls. Link.Send counts a mark by comparing CE across
// the Enqueue call, so a dequeue-time mark would silently go uncounted; the
// conformance suite (internal/queue) asserts every discipline honors this.
// All AQMs in this repository (RED, Adaptive RED, PI, REM, AVQ) are
// enqueue-marking by construction, matching their published forms.
type Discipline interface {
	Enqueue(p *Packet, now sim.Time) bool
	Dequeue(now sim.Time) *Packet
	Len() int   // packets queued
	Bytes() int // bytes queued
}

// RandBinder is implemented by disciplines whose decisions draw from a
// random generator. Network.Partition rebinds each such queue to its owning
// shard's engine generator so marking randomness stays domain-local; for
// links staying in domain 0 the rebind hands back the same generator the
// queue was built with, preserving serial draw order bit for bit.
type RandBinder interface {
	BindRand(*rand.Rand)
}
