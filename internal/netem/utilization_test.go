package netem

import (
	"math"
	"testing"

	"pert/internal/sim"
)

// TestUtilizationAcrossCapacityChange is the regression test for the
// mid-window capacity bug: Utilization used to divide the window's
// transmitted bits by the *current* Capacity, so an ext-flap-style
// LinkSchedule change inside the window skewed every utilization sample
// taken after it. The denominator must integrate capacity over the window.
func TestUtilizationAcrossCapacityChange(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	l := net.AddLink(a, b, 8e6, 0, &tail{limit: 100})
	net.ComputeRoutes()

	// The ext-flap idiom: double the rate one second in.
	LinkSchedule{{At: sim.Second, Capacity: 16e6}}.Apply(l)
	eng.Run(2 * sim.Second)

	// Pretend the link transmitted 1.5 MB over [0, 2s]. Deliverable bits
	// over the window are 8e6*1 + 16e6*1 = 24e6, so true utilization is
	// 12e6/24e6 = 0.5. The old formula divided by the final rate alone
	// (16e6 * 2s = 32e6 bits) and reported 0.375.
	l.Stats.TxBytes = 1_500_000

	if got := l.UtilizationOver(0, 0, 2*sim.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("UtilizationOver([0,2s]) = %v, want 0.5", got)
	}
	if got := l.Utilization(0, 2*sim.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization(2s window) = %v, want 0.5", got)
	}

	// A window straddling the change unevenly: [0.5s, 1.5s] holds
	// 8e6*0.5 + 16e6*0.5 = 12e6 deliverable bits. 750 kB transmitted in
	// the window is utilization 6e6/12e6 = 0.5.
	start := l.Stats.TxBytes
	l.Stats.TxBytes += 750_000
	from, to := sim.Second/2, sim.Second+sim.Second/2
	if got := l.UtilizationOver(start, from, to); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("UtilizationOver([0.5s,1.5s]) = %v, want 0.5", got)
	}

	// Windows entirely on one side of the breakpoint use that side's rate.
	if got := l.UtilizationOver(start, 0, sim.Second/2); math.Abs(got-750_000*8/4e6) > 1e-9 {
		t.Errorf("UtilizationOver([0,0.5s]) = %v", got)
	}
}

// TestUtilizationWithoutEngine keeps the engine-free fallback working:
// hand-constructed links (tests, analytic code) have no capacity history
// and must fall back to the constant-capacity formula.
func TestUtilizationWithoutEngine(t *testing.T) {
	l := &Link{Capacity: 8e6}
	l.Stats.TxBytes = 500_000 // 4e6 bits over a 1s window at 8 Mb/s
	if got := l.Utilization(0, sim.Second); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("engine-free Utilization = %v, want 0.5", got)
	}
}
