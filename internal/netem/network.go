package netem

import (
	"fmt"

	"pert/internal/sim"
)

// Node is a network node: an end host or a router. Packets addressed to the
// node are demultiplexed to a registered Handler by flow ID; everything else
// is forwarded along the static route toward its destination.
type Node struct {
	ID    NodeID
	net   *Network
	dom   *domain         // shard domain owning this node (domain.go)
	out   []*Link         // links originating here
	next  []*Link         // next-hop link per destination NodeID; nil = unreachable
	demux map[int]Handler // flow ID -> local agent

	// listener, if set, is consulted when a non-ACK packet arrives for a
	// flow with no registered handler (SetListener).
	listener      func(p *Packet, now sim.Time)
	listenerOwner any
}

// SetListener installs a catch-all hook for data packets arriving at this
// node with no registered flow handler. The listener runs on the node's
// owning engine and may attach a Handler for p.Flow (via AttachFlow);
// Receive then re-dispatches the triggering packet to it. This is how
// cross-domain traffic generators lazily create receive-side agents on the
// destination's own shard rather than racing its demux table from another
// goroutine. ACKs never trigger the listener: an ACK for an unknown flow
// still means a closed connection, not a new one. Installing a second
// listener panics — two generators claiming one node's stray packets would
// steal each other's flows; owner is an opaque cookie installers use to
// recognize (and validate against) their own earlier installation via
// ListenerOwner.
func (n *Node) SetListener(fn func(p *Packet, now sim.Time), owner any) {
	if n.listener != nil && fn != nil {
		panic("netem: node already has a listener")
	}
	n.listener = fn
	n.listenerOwner = owner
}

// ListenerOwner returns the owner cookie of the installed listener, or nil
// when the node has none.
func (n *Node) ListenerOwner() any {
	if n.listener == nil {
		return nil
	}
	return n.listenerOwner
}

// AttachFlow registers h to receive packets of the given flow arriving at
// this node. Both endpoints of a TCP connection register under the same flow
// ID at their respective nodes.
func (n *Node) AttachFlow(flow int, h Handler) {
	n.demux[flow] = h
}

// DetachFlow removes a flow registration (e.g. when a web transfer ends).
func (n *Node) DetachFlow(flow int) {
	delete(n.demux, flow)
}

// Receive handles a packet arriving at the node: local delivery if the node
// is the destination, otherwise forwarding. Local delivery is a packet's
// terminal point: once the handler returns the packet goes back to the
// network's free list, so handlers (and the observers they call) must copy
// any fields they keep — the Handler contract has always been synchronous
// consumption, and the pool now enforces it.
func (n *Node) Receive(p *Packet) {
	if p.Dst == n.ID {
		n.dom.acct.Delivered++
		now := n.dom.eng.Now()
		h, ok := n.demux[p.Flow]
		if !ok && n.listener != nil && !p.IsAck {
			// Give the catch-all listener a chance to attach a handler
			// (lazy receive-side setup for cross-domain flows), then
			// re-dispatch this packet to whatever it registered.
			n.listener(p, now)
			h, ok = n.demux[p.Flow]
		}
		if ok {
			h.Receive(p, now)
		}
		// Packets for unregistered flows (e.g. ACKs racing a closed
		// connection) are silently discarded, as a real host would RST.
		n.dom.releasePacket(p)
		return
	}
	n.Forward(p)
}

// Forward sends the packet along the static route toward p.Dst. Packets with
// no route are dropped; topologies in this repository are always connected,
// so this indicates a configuration error and panics.
func (n *Node) Forward(p *Packet) {
	l := n.next[p.Dst]
	if l == nil {
		panic(fmt.Sprintf("netem: node %d has no route to %d", n.ID, p.Dst))
	}
	l.Send(p)
}

// LinkTo returns the direct link from n to the given neighbor, or nil.
func (n *Node) LinkTo(to NodeID) *Link {
	for _, l := range n.out {
		if l.To.ID == to {
			return l
		}
	}
	return nil
}

// Network is a static topology of nodes and unidirectional links plus the
// simulation engine they share. Build topologies by adding nodes and links,
// then call ComputeRoutes once before starting traffic.
type Network struct {
	eng   *sim.Engine
	Nodes []*Node

	// doms are the shard domains (domain.go), each owning its engine,
	// packet pool/ID counter, and conservation-ledger column. An
	// unpartitioned network has exactly one; Partition replaces the slice.
	// Each node and link points at its owning domain directly, so the hot
	// path never searches this slice.
	doms []*domain
}

// NewNetwork returns an empty network bound to the engine.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng, doms: []*domain{{idx: 0, eng: eng}}}
}

// Engine returns the simulation engine the network was built on (shard 0's
// engine when partitioned). Endpoint code scheduling per-node work should
// use Node.Engine instead.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddNode creates a new node and returns it.
func (n *Network) AddNode() *Node {
	node := &Node{ID: NodeID(len(n.Nodes)), net: n, dom: n.doms[0], demux: make(map[int]Handler)}
	n.Nodes = append(n.Nodes, node)
	return node
}

// AddLink creates a unidirectional link from from to to with the given
// capacity (bits/s), propagation delay, and queue discipline.
func (n *Network) AddLink(from, to *Node, capacity float64, delay sim.Duration, q Discipline) *Link {
	if capacity <= 0 {
		panic("netem: non-positive link capacity")
	}
	l := &Link{From: from, To: to, Capacity: capacity, Delay: delay, Queue: q, eng: from.dom.eng, dom: from.dom}
	l.txDone = l.eng.NewTimer(l.completeTx)
	l.arriveFn = func(a any) { l.arrive(a.(*Packet)) }
	from.out = append(from.out, l)
	return l
}

// AddDuplexLink creates a pair of symmetric links between a and b, one queue
// discipline each (qab serves a->b, qba serves b->a).
func (n *Network) AddDuplexLink(a, b *Node, capacity float64, delay sim.Duration, qab, qba Discipline) (ab, ba *Link) {
	ab = n.AddLink(a, b, capacity, delay, qab)
	ba = n.AddLink(b, a, capacity, delay, qba)
	return ab, ba
}

// NewPacketID returns a fresh unique packet ID from domain 0's counter.
// Per-node endpoint code should use Node.NewPacket, which mints from the
// owning domain.
func (n *Network) NewPacketID() uint64 { return n.doms[0].newPacketID() }

// NewPacket returns a zeroed packet with a fresh ID, drawn from domain 0's
// free list when possible. Pool-allocated packets are recycled at their
// terminal points (local delivery, queue drop, wire loss), so callers must
// not retain them past the handler or observer callback that sees them.
// Each free list is LIFO and touched only from its owning shard's
// goroutine, so pooling cannot perturb deterministic packet identity: IDs
// still come from per-domain counters in per-domain order.
func (n *Network) NewPacket() *Packet { return n.doms[0].newPacket() }

// ReleasePacket returns a pool-allocated packet to domain 0's free list.
// Packets constructed directly (tests, external drivers) are ignored, so
// terminal points may release unconditionally. Releasing the same packet
// twice panics: a double free would alias two live packets and silently
// corrupt the run.
func (n *Network) ReleasePacket(p *Packet) { n.doms[0].releasePacket(p) }

// ComputeRoutes fills every node's next-hop table with shortest paths by hop
// count (BFS from every destination). Must be called after the topology is
// complete and before any traffic is sent.
func (n *Network) ComputeRoutes() {
	size := len(n.Nodes)
	// adj[v] lists links arriving at v, so a reverse BFS from each
	// destination labels every node with its next-hop link toward it.
	in := make([][]*Link, size)
	for _, node := range n.Nodes {
		for _, l := range node.out {
			in[l.To.ID] = append(in[l.To.ID], l)
		}
	}
	for _, node := range n.Nodes {
		node.next = make([]*Link, size)
	}
	queue := make([]NodeID, 0, size)
	for dst := range n.Nodes {
		visited := make([]bool, size)
		visited[dst] = true
		queue = queue[:0]
		queue = append(queue, NodeID(dst))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, l := range in[v] {
				u := l.From.ID
				if visited[u] {
					continue
				}
				visited[u] = true
				l.From.next[dst] = l
				queue = append(queue, u)
			}
		}
	}
}

// SendFrom injects a packet into the network at the source node, routing it
// toward its destination. Packets originating at a node still traverse that
// node's outgoing link queue.
func (n *Network) SendFrom(src *Node, p *Packet) {
	src.dom.acct.Injected++
	if p.Dst == src.ID {
		src.Receive(p)
		return
	}
	src.Forward(p)
}
