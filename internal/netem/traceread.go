package netem

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pert/internal/sim"
)

// TraceOp is the event type of one trace line.
type TraceOp byte

// Trace event types, matching the ns-2 convention.
const (
	TraceEnqueue TraceOp = '+'
	TraceDequeue TraceOp = '-'
	TraceDrop    TraceOp = 'd'
)

// TraceEvent is one parsed line of a Tracer output file.
type TraceEvent struct {
	Op    TraceOp
	T     sim.Time
	From  NodeID
	To    NodeID
	Kind  string // "tcp" or "ack"
	Size  int
	Flow  int
	Seq   int64 // data: sequence; ack: cumulative ACK number
	ID    uint64
	Flags string // "-" or a subset of "CEWR"
}

// Format renders the event as the exact line Tracer emits (microsecond time
// precision, no trailing newline). Format is the inverse of the line parser:
// re-formatting a parsed trace reproduces the file byte for byte, which the
// round-trip property test in traceread_roundtrip_test.go pins down.
func (e TraceEvent) Format() string {
	return fmt.Sprintf("%c %.6f %d %d %s %d %d %d %d %s",
		byte(e.Op), e.T.Seconds(), e.From, e.To, e.Kind, e.Size, e.Flow, e.Seq, e.ID, e.Flags)
}

// ReadTrace parses a trace written by Tracer, returning the events in file
// order. Malformed lines abort with an error naming the line number.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, err := parseTraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("netem: trace line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netem: reading trace: %w", err)
	}
	return out, nil
}

func parseTraceLine(line string) (TraceEvent, error) {
	f := strings.Fields(line)
	if len(f) != 10 {
		return TraceEvent{}, fmt.Errorf("want 10 fields, got %d", len(f))
	}
	if len(f[0]) != 1 {
		return TraceEvent{}, fmt.Errorf("bad op %q", f[0])
	}
	op := TraceOp(f[0][0])
	switch op {
	case TraceEnqueue, TraceDequeue, TraceDrop:
	default:
		return TraceEvent{}, fmt.Errorf("bad op %q", f[0])
	}
	secs, err := strconv.ParseFloat(f[1], 64)
	// Reject NaN, infinities, negatives, and times whose nanosecond form
	// overflows sim.Time — conversion of out-of-range floats to int64 is
	// implementation-defined, so they must never reach sim.Seconds.
	if err != nil || math.IsNaN(secs) || secs < 0 || secs > float64(math.MaxInt64)/1e9 {
		return TraceEvent{}, fmt.Errorf("bad time %q", f[1])
	}
	ints := make([]int64, 0, 6)
	for _, field := range []string{f[2], f[3], f[5], f[6], f[7], f[8]} {
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return TraceEvent{}, fmt.Errorf("bad integer %q", field)
		}
		ints = append(ints, v)
	}
	if f[4] != "tcp" && f[4] != "ack" {
		return TraceEvent{}, fmt.Errorf("bad kind %q", f[4])
	}
	return TraceEvent{
		Op:    op,
		T:     sim.Seconds(secs),
		From:  NodeID(ints[0]),
		To:    NodeID(ints[1]),
		Kind:  f[4],
		Size:  int(ints[2]),
		Flow:  int(ints[3]),
		Seq:   ints[4],
		ID:    uint64(ints[5]),
		Flags: f[9],
	}, nil
}
