package netem

import (
	"math/rand"
	"testing"

	"pert/internal/sim"
)

// schedChainRun drives the 4-node chain with a LinkSchedule applied before
// partitioning and returns delivery evidence. shards=1 never partitions (the
// serial baseline); shards=2 cuts at the b-c link, leaving a-b and b-c in
// domain 0 and c-d inside domain 1.
func schedChainRun(t *testing.T, shards int, sched LinkSchedule, on func(net *Network, nodes []*Node) *Link) (*countHandler, ImpairStats, Conservation) {
	t.Helper()
	g := sim.NewShardGroup(shards, 5)
	net, nodes := buildChain(g.Engine(0), 2*sim.Millisecond)
	h := &countHandler{}
	nodes[3].AttachFlow(1, h)
	link := on(net, nodes)
	sched.Apply(link)
	if shards > 1 {
		if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	src := nodes[0]
	for i := 0; i < 120; i++ {
		i := i
		// Off-grid send times so no packet event ever ties with a schedule
		// change (tie order between engines is not part of the contract).
		src.Engine().At(sim.Time(i)*sim.Millisecond+77*sim.Microsecond, func() {
			p := src.NewPacket()
			p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
			net.SendFrom(src, p)
		})
	}
	g.Run(sim.Second)
	if err := net.Audit(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return h, link.Impairments(), net.Conservation()
}

// flapSched halves capacity, restores it, and flaps the link down for 10 ms —
// the full repertoire a sharded schedule may use.
func flapSched() LinkSchedule {
	return LinkSchedule{
		{At: 20*sim.Millisecond + 300*sim.Microsecond, Capacity: 1e6},
		{At: 60*sim.Millisecond + 300*sim.Microsecond, Capacity: 8e6},
		{At: 80*sim.Millisecond + 300*sim.Microsecond, Down: true},
		{At: 90*sim.Millisecond + 300*sim.Microsecond, Up: true},
	}
}

// TestShardScheduleMigratesToOwningDomain: a schedule applied (pre-partition,
// on engine 0) to a link that lands inside domain 1 is re-armed on domain 1's
// engine, and the sharded run reproduces the serial run's deliveries,
// blackhole count, and ledger exactly.
func TestShardScheduleMigratesToOwningDomain(t *testing.T) {
	inner := func(net *Network, nodes []*Node) *Link { return nodes[2].LinkTo(nodes[3].ID) }
	sh, si, sc := schedChainRun(t, 1, flapSched(), inner)
	ph, pi, pc := schedChainRun(t, 2, flapSched(), inner)
	if si.Blackholed == 0 {
		t.Fatal("flap never fired: schedule test is vacuous")
	}
	if sh.n != ph.n || si != pi {
		t.Fatalf("serial delivered %d (impair %+v), sharded %d (%+v)", sh.n, si, ph.n, pi)
	}
	for i := range sh.at {
		if sh.at[i] != ph.at[i] {
			t.Fatalf("delivery %d at %v sharded vs %v serial", i, ph.at[i], sh.at[i])
		}
	}
	if sc.Delivered != pc.Delivered || sc.Dropped != pc.Dropped {
		t.Fatalf("ledgers differ: serial %+v sharded %+v", sc, pc)
	}
}

// TestShardScheduleOnBoundaryLink: capacity changes and flaps on the cut link
// itself are sender-side state and stay valid — and identical to serial.
func TestShardScheduleOnBoundaryLink(t *testing.T) {
	boundary := func(net *Network, nodes []*Node) *Link { return nodes[1].LinkTo(nodes[2].ID) }
	sh, si, _ := schedChainRun(t, 1, flapSched(), boundary)
	ph, pi, _ := schedChainRun(t, 2, flapSched(), boundary)
	if si.Blackholed == 0 {
		t.Fatal("flap never fired")
	}
	if sh.n != ph.n || si != pi {
		t.Fatalf("serial delivered %d (impair %+v), sharded %d (%+v)", sh.n, si, ph.n, pi)
	}
	for i := range sh.at {
		if sh.at[i] != ph.at[i] {
			t.Fatalf("delivery %d at %v sharded vs %v serial", i, ph.at[i], sh.at[i])
		}
	}
}

// TestShardScheduleDelayChangeRules: a delay change is fine on an internal
// link of any domain (its events migrate with the link) but rejected on a
// boundary link, whose lookahead was fixed when the ports were connected.
func TestShardScheduleDelayChangeRules(t *testing.T) {
	delaySched := LinkSchedule{{At: 30 * sim.Millisecond, Delay: 5 * sim.Millisecond}}

	inner := func(net *Network, nodes []*Node) *Link { return nodes[2].LinkTo(nodes[3].ID) }
	sh, _, _ := schedChainRun(t, 1, delaySched, inner)
	ph, _, _ := schedChainRun(t, 2, delaySched, inner)
	if sh.n != ph.n {
		t.Fatalf("internal delay change: serial delivered %d, sharded %d", sh.n, ph.n)
	}
	for i := range sh.at {
		if sh.at[i] != ph.at[i] {
			t.Fatalf("delivery %d at %v sharded vs %v serial", i, ph.at[i], sh.at[i])
		}
	}

	g := sim.NewShardGroup(2, 5)
	net, nodes := buildChain(g.Engine(0), 2*sim.Millisecond)
	delaySched.Apply(nodes[1].LinkTo(nodes[2].ID))
	if err := net.Partition(g, []int{0, 0, 1, 1}); err == nil {
		t.Fatal("boundary delay schedule accepted by Partition")
	}
}

// markingQueue draws one RNG value per enqueue, recording the generator it
// drew from — a stand-in for RED/PI/REM marking randomness.
type markingQueue struct {
	tail
	rng  *rand.Rand
	from []*rand.Rand
}

func (m *markingQueue) Enqueue(p *Packet, now sim.Time) bool {
	m.rng.Float64()
	m.from = append(m.from, m.rng)
	return m.tail.Enqueue(p, now)
}

func (m *markingQueue) BindRand(rng *rand.Rand) { m.rng = rng }

// TestShardPartitionRebindsQueueRand: partitioning rebinds a RandBinder
// queue to its owning domain's engine — pointer-identical for domain 0 (the
// serial draw order survives) and engine 1's generator for domain 1.
func TestShardPartitionRebindsQueueRand(t *testing.T) {
	g := sim.NewShardGroup(2, 1)
	net, nodes := buildChain(g.Engine(0), 2*sim.Millisecond)
	h := &countHandler{}
	nodes[3].AttachFlow(1, h)

	// Queues built the way compiled scenarios build them: from the global
	// (engine 0) RNG.
	q0 := &markingQueue{tail: tail{limit: 100}, rng: net.Engine().Rand()}
	q1 := &markingQueue{tail: tail{limit: 100}, rng: net.Engine().Rand()}
	nodes[0].LinkTo(nodes[1].ID).Queue = q0 // domain 0
	nodes[2].LinkTo(nodes[3].ID).Queue = q1 // domain 1

	if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if q0.rng != g.Engine(0).Rand() {
		t.Fatal("domain-0 queue lost its serial generator")
	}
	if q1.rng != g.Engine(1).Rand() {
		t.Fatal("domain-1 queue not rebound to its owning engine")
	}

	src := nodes[0]
	for i := 0; i < 50; i++ {
		i := i
		src.Engine().At(sim.Time(i)*sim.Millisecond, func() {
			p := src.NewPacket()
			p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
			net.SendFrom(src, p)
		})
	}
	g.Run(sim.Second)
	if h.n != 50 {
		t.Fatalf("delivered %d of 50", h.n)
	}
	// Every draw happened on the generator owned by the queue's domain —
	// the -race run of this test is the real assertion.
	for _, r := range q1.from {
		if r != g.Engine(1).Rand() {
			t.Fatal("domain-1 queue drew from a foreign generator mid-run")
		}
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}
