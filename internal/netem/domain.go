package netem

import (
	"fmt"

	"pert/internal/sim"
)

// A domain is the slice of Network state one shard owns exclusively: its
// engine, its packet pool, its packet-ID counter, and its column of the
// conservation ledger. An unpartitioned network has exactly one domain, and
// every fast-path field access below compiles to the same loads the
// pre-domain code did — the serial path is the one-domain special case, not
// a branch.
//
// Ownership rule: a domain's fields are touched only from its own shard's
// goroutine (or from the single construction goroutine before the group
// runs). Cross-domain packet handoff transfers a packet's pool ownership to
// the receiving domain — pools are LIFO free lists, so a packet allocated
// on one shard and delivered on another is simply recycled into the
// receiver's list.
type domain struct {
	idx int
	eng *sim.Engine

	nextPktID uint64
	pktFree   []*Packet

	// acct is this domain's column of the packet-conservation ledger. The
	// network-wide equation holds only over the SUM of all domains: a
	// cross-shard send increments the sender's InFlight and the matching
	// arrival decrements the receiver's, so an individual domain's InFlight
	// may legitimately go negative mid-run.
	acct Conservation
}

// domainPktShift positions the domain index in the top bits of a packet ID,
// so concurrent domains mint unique IDs without sharing a counter. Domain 0
// occupies the zero prefix: its IDs are the plain counter values a serial
// run has always produced.
const domainPktShift = 56

func (d *domain) newPacketID() uint64 {
	d.nextPktID++
	return uint64(d.idx)<<domainPktShift | d.nextPktID
}

func (d *domain) newPacket() *Packet {
	var p *Packet
	if k := len(d.pktFree); k > 0 {
		p = d.pktFree[k-1]
		d.pktFree = d.pktFree[:k-1]
		*p = Packet{}
	} else {
		p = &Packet{}
	}
	p.ID = d.newPacketID()
	p.pool = pktLive
	return p
}

func (d *domain) releasePacket(p *Packet) {
	switch p.pool {
	case pktForeign:
		return
	case pktFree:
		panic("netem: packet released twice")
	}
	p.pool = pktFree
	d.pktFree = append(d.pktFree, p)
}

func (d *domain) clonePacket(p *Packet) *Packet {
	var cp *Packet
	if p.pool == pktLive {
		if k := len(d.pktFree); k > 0 {
			cp = d.pktFree[k-1]
			d.pktFree = d.pktFree[:k-1]
		} else {
			cp = &Packet{}
		}
	} else {
		cp = &Packet{}
	}
	*cp = *p
	if k := len(p.Sack); k > 0 && &p.Sack[0] == &p.sackStore[0] {
		cp.Sack = cp.sackStore[:k]
	}
	return cp
}

// Engine returns the engine this node's events run on: the network engine
// when unpartitioned, the owning shard's engine after Partition. Endpoint
// code (TCP connections, sinks) must schedule its timers here, not on
// Network.Engine(), or a sharded run would mutate engine 0 from every
// shard.
func (n *Node) Engine() *sim.Engine { return n.dom.eng }

// NewPacket allocates a packet from the pool of the domain owning this
// node. Endpoints attached to the node must use this rather than
// Network.NewPacket so pool and ID state stay shard-local.
func (n *Node) NewPacket() *Packet { return n.dom.newPacket() }

// Domain returns the index of the shard domain owning the node (0 when the
// network is unpartitioned).
func (n *Node) Domain() int { return n.dom.idx }

// Domains returns the number of shard domains (1 when unpartitioned).
func (n *Network) Domains() int { return len(n.doms) }

// Partition splits the network across the shards of g: assign[node.ID]
// names the shard owning each node. A link belongs to its sending node's
// shard; links whose endpoints land on different shards become boundary
// links, delivering through a cross-shard port whose lookahead is the
// link's propagation delay.
//
// Call exactly once, after the topology is complete (including
// ComputeRoutes) and before any traffic or timers exist on engines other
// than g.Engine(0). The network must have been built on g.Engine(0), so a
// group of one shard leaves every code path exactly as the serial engine
// ran it.
//
// Partition also completes domain ownership for per-link state armed at
// build time: queue disciplines implementing RandBinder are rebound to their
// owning engine's generator (a pointer-identical no-op for domain 0), and
// LinkSchedule change events are re-armed on the owning engine, so AQM
// marking draws and mid-run capacity shifts / flaps stay shard-local.
//
// Boundary links must have positive Delay (a zero-delay boundary admits no
// conservative lookahead) and must keep that Delay fixed for the whole run:
// the cross-shard port's lookahead is set from it here, so schedules with
// Delay changes on boundary links are rejected. Capacity changes and
// up/down flaps on boundary links are fine — both act on the transmitting
// side only, and the shard protocol's horizon advances from engine commits
// rather than packet sends, so a down boundary link cannot stall its
// neighbor.
func (n *Network) Partition(g *sim.ShardGroup, assign []int) error {
	if len(n.doms) != 1 {
		return fmt.Errorf("netem: network already partitioned into %d domains", len(n.doms))
	}
	if n.eng != g.Engine(0) {
		return fmt.Errorf("netem: network was not built on shard 0's engine")
	}
	if len(assign) != len(n.Nodes) {
		return fmt.Errorf("netem: partition assigns %d nodes, network has %d", len(assign), len(n.Nodes))
	}
	if c := n.doms[0].acct; c.Injected != 0 || c.Delivered != 0 || c.Dropped != 0 {
		return fmt.Errorf("netem: cannot partition after traffic has flowed (%+v)", c)
	}
	for id, s := range assign {
		if s < 0 || s >= g.N() {
			return fmt.Errorf("netem: node %d assigned to shard %d, group has %d", id, s, g.N())
		}
	}
	for _, node := range n.Nodes {
		for _, l := range node.out {
			if l.fluid != nil {
				return fmt.Errorf("netem: %v has a hybrid fluid source; fluid/packet co-simulation is serial-only (no cross-domain fluid coupling yet)", l)
			}
			if assign[l.From.ID] == assign[l.To.ID] {
				continue
			}
			if l.Delay <= 0 {
				return fmt.Errorf("netem: boundary %v needs positive delay for lookahead", l)
			}
			if l.sched.HasDelayChange() {
				return fmt.Errorf("netem: boundary %v has a schedule with delay changes; boundary lookahead is fixed", l)
			}
		}
	}

	doms := make([]*domain, g.N())
	doms[0] = n.doms[0]
	for i := 1; i < g.N(); i++ {
		doms[i] = &domain{idx: i, eng: g.Engine(i)}
	}
	n.doms = doms
	for _, node := range n.Nodes {
		node.dom = doms[assign[node.ID]]
	}
	// Rebind each link to its owner's engine. The transmit timer is
	// re-created rather than migrated: NewTimer consumes no sequence
	// numbers, so shard 0's event ordering is untouched. Queue RNGs are
	// rebound unconditionally — for domain 0 the owning engine is engine 0,
	// so a queue seeded from Network.Engine().Rand() gets the very same
	// generator back and serial draw order is preserved. Schedules migrate
	// only off engine 0: domain-0 links keep their original change events
	// (and their original sequence numbers).
	for _, node := range n.Nodes {
		for _, l := range node.out {
			l.dom = l.From.dom
			l.eng = l.dom.eng
			l.txDone = l.eng.NewTimer(l.completeTx)
			if b, ok := l.Queue.(RandBinder); ok {
				b.BindRand(l.eng.Rand())
			}
			if l.dom.idx != 0 {
				l.migrateSchedule()
			}
			if l.From.dom == l.To.dom {
				continue
			}
			to := l.To
			l.xport = g.Connect(l.From.dom.idx, l.To.dom.idx, l.Delay)
			l.remoteArriveFn = func(a any) {
				p := a.(*Packet)
				to.dom.acct.InFlight--
				to.Receive(p)
			}
		}
	}
	return nil
}

// BoundaryLinks returns the links whose endpoints lie in different domains
// (empty when unpartitioned).
func (n *Network) BoundaryLinks() []*Link {
	var out []*Link
	for _, node := range n.Nodes {
		for _, l := range node.out {
			if l.xport != nil {
				out = append(out, l)
			}
		}
	}
	return out
}
