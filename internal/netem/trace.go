package netem

import (
	"fmt"
	"io"

	"pert/internal/sim"
)

// Tracer writes per-packet link events in an ns-2-like text format, one
// event per line:
//
//	<op> <time> <from> <to> <type> <size> <flow> <seq> <id> [flags]
//
// where op is "+" (enqueue), "-" (dequeue/transmit), or "d" (drop); type is
// "tcp" or "ack"; and flags include C (CE), E (ECE), W (CWR), R (retransmit).
// It is the packet-level debugging instrument every simulator needs: attach
// it to the links of interest, run, and diff traces across runs (runs are
// deterministic, so traces are too).
type Tracer struct {
	W io.Writer
	// Filter, when set, limits tracing to packets it returns true for
	// (e.g. one flow).
	Filter func(*Packet) bool

	Events uint64
}

// NewTracer traces to w with no filter.
func NewTracer(w io.Writer) *Tracer { return &Tracer{W: w} }

// Attach instruments a link, chaining with any hooks already installed.
func (t *Tracer) Attach(l *Link) {
	prevEnq := l.OnEnqueue
	l.OnEnqueue = func(p *Packet, now sim.Time) {
		if prevEnq != nil {
			prevEnq(p, now)
		}
		t.emit('+', now, l, p)
	}
	prevDep := l.OnDepart
	l.OnDepart = func(p *Packet, now sim.Time) {
		if prevDep != nil {
			prevDep(p, now)
		}
		t.emit('-', now, l, p)
	}
	prevDrop := l.OnDrop
	l.OnDrop = func(p *Packet, now sim.Time) {
		if prevDrop != nil {
			prevDrop(p, now)
		}
		t.emit('d', now, l, p)
	}
}

func (t *Tracer) emit(op byte, now sim.Time, l *Link, p *Packet) {
	if t.Filter != nil && !t.Filter(p) {
		return
	}
	t.Events++
	kind := "tcp"
	seq := p.Seq
	if p.IsAck {
		kind = "ack"
		seq = p.AckNo
	}
	var flags []byte
	if p.CE {
		flags = append(flags, 'C')
	}
	if p.ECE {
		flags = append(flags, 'E')
	}
	if p.CWR {
		flags = append(flags, 'W')
	}
	if p.Retrans {
		flags = append(flags, 'R')
	}
	if len(flags) == 0 {
		flags = []byte{'-'}
	}
	fmt.Fprintf(t.W, "%c %.6f %d %d %s %d %d %d %d %s\n",
		op, now.Seconds(), l.From.ID, l.To.ID, kind, p.Size, p.Flow, seq, p.ID, flags)
}
