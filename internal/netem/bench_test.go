package netem

import (
	"testing"

	"pert/internal/obs"
	"pert/internal/sim"
)

// ring is an allocation-free DropTail over a fixed circular buffer, so the
// alloc-budget test below measures the netem loop itself rather than the
// queue discipline's storage management.
type ring struct {
	buf     [128]*Packet
	head, n int
	bytes   int
}

func (r *ring) Enqueue(p *Packet, _ sim.Time) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
	r.bytes += p.Size
	return true
}

func (r *ring) Dequeue(_ sim.Time) *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.bytes -= p.Size
	return p
}

func (r *ring) Len() int   { return r.n }
func (r *ring) Bytes() int { return r.bytes }

// saturatedLink builds a two-node network whose single link is kept busy by
// a self-refilling source: every departure injects a replacement packet, so
// the link transmits back to back for as long as the simulation runs. This
// is the netem hot path — enqueue, transmit, deliver, receive, recycle —
// with no TCP machinery on top.
func saturatedLink(seed int64) (*sim.Engine, *Network, *Link) {
	eng := sim.NewEngine(seed)
	net := NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	l := net.AddLink(a, b, 80e6, sim.Millisecond, &ring{})
	net.ComputeRoutes()
	b.AttachFlow(1, nopHandler{})

	inject := func() {
		p := net.NewPacket()
		p.Flow = 1
		p.Src = a.ID
		p.Dst = b.ID
		p.Size = 1000
		net.SendFrom(a, p)
	}
	l.OnDepart = func(*Packet, sim.Time) { inject() }
	for i := 0; i < 32; i++ {
		inject()
	}
	return eng, net, l
}

type nopHandler struct{}

func (nopHandler) Receive(*Packet, sim.Time) {}

// BenchmarkSaturatedLink reports the per-simulated-second cost of a fully
// loaded link: 80 Mb/s of 1000-byte packets is 10k transmissions (and 10k
// deliveries) per simulated second.
func BenchmarkSaturatedLink(b *testing.B) {
	eng, _, _ := saturatedLink(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + sim.Second)
	}
}

// TestLinkAllocBudget asserts the warmed transmit loop allocates nothing:
// after the packet pool and event heap reach steady state, a simulated
// second of back-to-back transmissions (~30k events) must do zero heap
// allocations. This pins down the tentpole property — pooled packets,
// persistent transmit timer, handle-free arrival scheduling — as a test
// rather than a benchmark delta.
func TestLinkAllocBudget(t *testing.T) {
	eng, _, _ := saturatedLink(1)
	eng.Run(sim.Second) // warm pools, heap, and free lists
	allocs := testing.AllocsPerRun(5, func() {
		eng.Run(eng.Now() + sim.Second)
	})
	if allocs != 0 {
		t.Errorf("saturated link allocates %.1f per simulated second, budget is 0", allocs)
	}
}

// TestPacketPoolRecycling exercises the free list directly: a released
// packet must come back from NewPacket zeroed, with a fresh ID, and a
// double release must panic rather than alias two live packets.
func TestPacketPoolRecycling(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)

	p := net.NewPacket()
	p.Flow = 7
	p.Seq = 42
	p.ResetSack()
	p.Sack = append(p.Sack, SackBlock{Start: 1, End: 2})
	id := p.ID
	net.ReleasePacket(p)

	q := net.NewPacket()
	if q != p {
		t.Fatal("released packet was not recycled")
	}
	if q.ID == id {
		t.Fatal("recycled packet kept its old ID")
	}
	if q.Flow != 0 || q.Seq != 0 || q.Sack != nil {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}

	// Foreign packets (built by hand, e.g. in tests) are never pooled.
	foreign := &Packet{ID: net.NewPacketID()}
	net.ReleasePacket(foreign)
	if got := net.NewPacket(); got == foreign {
		t.Fatal("foreign packet entered the pool")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	net.ReleasePacket(q)
	net.ReleasePacket(q)
}

// TestInlineSackAliasing guards the packet pool against the subtle clone
// bug: copying a Packet by value copies its inline SACK backing array, so a
// clone's Sack slice must be re-pointed at its own array or the two packets
// would share (and corrupt) SACK state.
func TestInlineSackAliasing(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)

	p := net.NewPacket()
	p.ResetSack()
	p.Sack = append(p.Sack, SackBlock{Start: 10, End: 12}, SackBlock{Start: 20, End: 21})

	cp := net.doms[0].clonePacket(p)
	if cp.ID != p.ID {
		t.Fatal("clone must keep the original's ID (wire duplication)")
	}
	if len(cp.Sack) != 2 || cp.Sack[0] != p.Sack[0] {
		t.Fatalf("clone SACK = %v", cp.Sack)
	}
	if &cp.Sack[0] == &p.Sack[0] {
		t.Fatal("clone's SACK aliases the original's backing array")
	}
	cp.Sack[0].Start = 99
	if p.Sack[0].Start != 10 {
		t.Fatal("writing the clone's SACK corrupted the original")
	}
}

// TestLinkAllocBudgetDisabledMetrics extends the zero-alloc budget to the
// disabled-metrics path: nil obs instruments wired into every per-packet hook
// of the saturated link — exactly what instrumented model code costs when no
// registry is attached — must keep the warmed transmit loop at zero
// allocations.
func TestLinkAllocBudgetDisabledMetrics(t *testing.T) {
	eng, _, l := saturatedLink(1)
	var pkts *obs.Counter  // nil: metrics disabled
	var lastLen *obs.Gauge // nil
	var h *obs.Histogram   // nil
	prev := l.OnDepart
	l.OnDepart = func(p *Packet, now sim.Time) {
		pkts.Inc()
		pkts.Add(uint64(p.Size))
		lastLen.Set(float64(l.Queue.Len()))
		h.Observe(now.Seconds())
		if prev != nil {
			prev(p, now)
		}
	}
	l.Instrument(nil, "queue") // nil registry: must be a no-op
	eng.Run(sim.Second)        // warm pools, heap, and free lists
	allocs := testing.AllocsPerRun(5, func() {
		eng.Run(eng.Now() + sim.Second)
	})
	if allocs != 0 {
		t.Errorf("saturated link with disabled metrics allocates %.1f per simulated second, budget is 0", allocs)
	}
	if pkts.Value() != 0 || lastLen.Value() != 0 || h.Count() != 0 {
		t.Errorf("nil instruments accumulated state")
	}
}
