package netem

import (
	"strings"
	"testing"

	"pert/internal/sim"
)

// fluidLine builds a one-way line with a fluid aggregate on the forward link:
// 50 modeled flows at a 100 ms RTT over an 8 Mbps link (1000 pkt/s at
// 1000 B). W* = 2 keeps the Theorem 1 LHS at 0.2 (comfortably stable) and
// the equilibrium queue deep: p* = 0.5, Tq* = 50ms + 0.5/2 = 300 ms, so the
// modeled backlog settles near 300 packets.
func fluidLine(t *testing.T, buffer int) (*sim.Engine, *Network, *Node, *Node, *Link, *FluidSource) {
	t.Helper()
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 1<<20)
	fs, err := AttachFluid(ab, FluidConfig{
		Flows: 50, RTT: 0.1, PktSize: 1000,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
		BufferPkts: buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, net, a, b, ab, fs
}

func TestFluidSourceBuildsBacklog(t *testing.T) {
	eng, _, _, _, ab, fs := fluidLine(t, 0)
	eng.Run(30 * sim.Second)
	// W* = RC/N = 2 pkts, p* = 2/W*² = 0.5, Tq* = 50ms + 0.5/2 = 300 ms:
	// the modeled backlog settles near Tq*·C = 300 packets.
	if got := fs.Backlog(); got < 240 || got > 360 {
		t.Fatalf("modeled backlog = %v pkts, want near 300", got)
	}
	if qp := ab.QueuePkts(); qp != fs.Backlog() {
		t.Fatalf("QueuePkts = %v with an empty packet queue, want the fluid backlog %v", qp, fs.Backlog())
	}
	if r := fs.Rate(); r < 800 || r > 1200 {
		t.Fatalf("modeled rate = %v pkt/s, want near capacity 1000", r)
	}
	if p := fs.Prob(); p < 0.4 || p > 0.6 {
		t.Fatalf("response probability = %v, want near p* = 0.5", p)
	}
}

func TestFluidDelaysRealPackets(t *testing.T) {
	// The same probe packet sent at t=30s arrives later when a fluid
	// aggregate occupies the queue, by roughly backlog/C seconds.
	arrival := func(withFluid bool) (sim.Time, float64) {
		eng := sim.NewEngine(3)
		net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 1<<20)
		var fs *FluidSource
		if withFluid {
			var err error
			fs, err = AttachFluid(ab, FluidConfig{
				Flows: 50, RTT: 0.1, PktSize: 1000,
				Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
				Alpha: 0.99, Delta: 1e-4,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		s := &sink{}
		b.AttachFlow(1, s)
		eng.Run(30 * sim.Second)
		var backlog float64
		if fs != nil {
			backlog = fs.Backlog() // at send time, before further drift
		}
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
		eng.Run(40 * sim.Second)
		if len(s.at) != 1 {
			t.Fatalf("delivered %d packets", len(s.at))
		}
		return s.at[0], backlog
	}
	plain, _ := arrival(false)
	inflated, backlog := arrival(true)
	extra := (inflated - plain).Seconds()
	want := backlog / 1000 // C = 1000 pkt/s
	if extra < 0.8*want || extra > 1.2*want {
		t.Fatalf("fluid added %vs of delay, want ~backlog/C = %vs (backlog %v pkts)", extra, want, backlog)
	}
}

func TestFluidSharedBufferOverflow(t *testing.T) {
	// A buffer smaller than the fluid equilibrium backlog leaves no room
	// for real packets: once the aggregate fills it, every arrival drops.
	eng, net, a, b, ab, fs := fluidLine(t, 150) // equilibrium backlog ≈ 300 > 150
	s := &sink{}
	b.AttachFlow(1, s)
	eng.Run(30 * sim.Second)
	if fs.Backlog() < 150 {
		t.Fatalf("aggregate did not fill the buffer: backlog %v", fs.Backlog())
	}
	drops := ab.Stats.Drops
	for i := 0; i < 10; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000, Seq: int64(i)})
	}
	eng.Run(31 * sim.Second)
	if got := ab.Stats.Drops - drops; got != 10 {
		t.Fatalf("%d of 10 packets dropped at the full shared buffer, want all", got)
	}
	if len(s.got) != 0 {
		t.Fatalf("%d packets slipped past the full shared buffer", len(s.got))
	}
}

func TestFluidECNMarking(t *testing.T) {
	eng, net, a, b, ab := func() (*sim.Engine, *Network, *Node, *Node, *Link) {
		eng := sim.NewEngine(3)
		net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 1<<20)
		return eng, net, a, b, ab
	}()
	_, err := AttachFluid(ab, FluidConfig{
		Flows: 50, RTT: 0.1, PktSize: 1000,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
		ECN: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{}
	b.AttachFlow(1, s)
	eng.Run(30 * sim.Second) // reach equilibrium: prob ≈ 0.5
	for i := 0; i < 2000; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID,
			Size: 1000, Seq: int64(i), ECT: true})
	}
	eng.Run(60 * sim.Second)
	marks := 0
	for _, p := range s.got {
		if p.CE {
			marks++
		}
	}
	if marks < len(s.got)*3/10 || marks > len(s.got)*7/10 {
		t.Fatalf("%d of %d ECN-capable packets marked, want ~p* = 50%%", marks, len(s.got))
	}
	if marks != int(ab.Stats.Marks) {
		t.Fatalf("delivered CE count %d != Stats.Marks %d", marks, ab.Stats.Marks)
	}
}

func TestFluidAttachErrors(t *testing.T) {
	eng := sim.NewEngine(3)
	_, _, _, ab := line(eng, 8e6, 5*sim.Millisecond, 100)
	if _, err := AttachFluid(ab, FluidConfig{Flows: 0, RTT: 0.1}); err == nil {
		t.Fatal("zero flows accepted")
	}
	if _, err := AttachFluid(ab, FluidConfig{Flows: 10, RTT: 0}); err == nil {
		t.Fatal("RTT below the integration step accepted")
	}
	if _, err := AttachFluid(ab, FluidConfig{Flows: 10, RTT: 0.1}); err != nil {
		t.Fatalf("valid attach rejected: %v", err)
	}
	if _, err := AttachFluid(ab, FluidConfig{Flows: 10, RTT: 0.1}); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestPartitionRejectsFluidSources(t *testing.T) {
	g := sim.NewShardGroup(2, 3)
	eng := g.Engine(0)
	net, _, _, ab := line(eng, 8e6, 5*sim.Millisecond, 100)
	if _, err := AttachFluid(ab, FluidConfig{Flows: 1000, RTT: 0.1}); err != nil {
		t.Fatal(err)
	}
	err := net.Partition(g, []int{0, 1})
	if err == nil {
		t.Fatal("partition with a fluid source succeeded; hybrid is serial-only")
	}
	if !strings.Contains(err.Error(), "serial-only") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}
