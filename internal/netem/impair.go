package netem

import (
	"math/rand"

	"pert/internal/sim"
)

// Impairment injects deterministic non-congestive faults on one link: random
// wire loss, packet duplication, and bounded reordering. It owns a dedicated
// seeded RNG so attaching an impairment never perturbs the simulation's main
// random stream — a run with every probability at zero is bit-identical to a
// run with no impairment at all, because the zero paths draw nothing.
//
// Faults apply after a packet finishes transmission (it consumed link
// capacity) and before delivery, modeling corruption on the wire rather than
// queue overflow: the losses PERT must distinguish from congestion.
type Impairment struct {
	// Loss is the probability a transmitted packet is lost on the wire.
	Loss float64
	// Dup is the probability a delivered packet is delivered twice (the
	// copy shares the original's arrival time plus one transmission time).
	Dup float64
	// Reorder is the probability a packet is held back by an extra delay
	// uniform in (0, ReorderMax], letting later packets overtake it.
	// ReorderMax must be positive when Reorder is.
	Reorder    float64
	ReorderMax sim.Duration

	rng *rand.Rand
}

// ImpairStats counts fault events injected on one link.
type ImpairStats struct {
	WireLost   uint64 // transmitted but lost on the wire
	Duplicated uint64 // extra copies delivered
	Reordered  uint64 // packets held back past a successor
	Blackholed uint64 // offered or transmitted while the link was down
}

// NewImpairment returns an impairment with its own deterministic RNG. The
// fault probabilities start at zero; set the fields before the run starts.
func NewImpairment(seed int64) *Impairment {
	return &Impairment{rng: rand.New(rand.NewSource(seed))}
}

// SetImpairment attaches imp to the link (nil detaches). Must be called
// before traffic flows; swapping impairments mid-run would make the fault
// sequence depend on wall-clock attach order rather than the seed.
func (l *Link) SetImpairment(imp *Impairment) {
	if imp != nil && imp.Reorder > 0 && imp.ReorderMax <= 0 {
		panic("netem: Impairment.Reorder needs a positive ReorderMax")
	}
	l.impair = imp
}

// Impairments returns the link's fault counters.
func (l *Link) Impairments() ImpairStats { return l.impairStats }

// Up reports whether the link is currently up. Links start up; LinkSchedule
// or SetUp flap them.
func (l *Link) Up() bool { return !l.down }

// SetUp changes the link's up/down state. A down link blackholes traffic:
// packets offered to it are dropped immediately, and packets it finishes
// transmitting are lost instead of delivered (the queue keeps draining, so a
// revived link starts fresh rather than replaying a stale backlog). Packets
// already propagating when the link goes down were on the wire and still
// arrive.
func (l *Link) SetUp(up bool) { l.down = !up }

// LinkChange is one step of a LinkSchedule: at time At, apply the non-zero
// fields. Capacity and Delay of zero mean "unchanged" (links cannot change to
// zero capacity — take the link down instead). Down and Up flap the link;
// setting both is rejected.
type LinkChange struct {
	At       sim.Time
	Capacity float64      // bits/s; 0 = unchanged
	Delay    sim.Duration // propagation; 0 = unchanged
	Down     bool
	Up       bool
}

// LinkSchedule is a time-driven sequence of link changes — the mid-run
// capacity shifts, delay steps, and link flaps of the ext-flap experiment.
type LinkSchedule []LinkChange

// HasDelayChange reports whether any step changes the link's propagation
// delay. Boundary links of a partitioned network reject such schedules: the
// cross-shard port's conservative lookahead is fixed at the link's Delay
// when the partition is cut, so a mid-run delay step would either violate
// the lookahead bound (shrink) or silently waste parallelism (grow).
func (s LinkSchedule) HasDelayChange() bool {
	for _, c := range s {
		if c.Delay > 0 {
			return true
		}
	}
	return false
}

// Apply schedules every change on the link's engine and records the
// schedule on the link. Call once, before the run starts; a later
// Partition re-arms the recorded events on the owning domain's engine.
func (s LinkSchedule) Apply(l *Link) {
	for _, c := range s {
		if c.Capacity < 0 {
			panic("netem: LinkChange with negative capacity")
		}
		if c.Down && c.Up {
			panic("netem: LinkChange cannot be both Down and Up")
		}
		l.armChange(c)
	}
	l.sched = append(l.sched, s...)
}

// armChange schedules one validated change on the link's current engine,
// keeping the event handle for migration.
func (l *Link) armChange(c LinkChange) {
	ev := l.eng.At(c.At, func() {
		if c.Capacity > 0 {
			l.SetCapacity(c.Capacity)
		}
		if c.Delay > 0 {
			l.Delay = c.Delay
		}
		if c.Down {
			l.SetUp(false)
		}
		if c.Up {
			l.SetUp(true)
		}
	})
	l.schedEvents = append(l.schedEvents, ev)
}

// migrateSchedule moves the link's pending schedule events onto its
// (post-Partition) owning engine: cancel on the old engine — Cancel
// consumes no sequence numbers, so shard 0's event order is untouched —
// then re-arm on l.eng. Called by Partition before the run starts, while
// every recorded handle is still pending.
func (l *Link) migrateSchedule() {
	if len(l.sched) == 0 {
		return
	}
	for _, ev := range l.schedEvents {
		ev.Cancel()
	}
	l.schedEvents = l.schedEvents[:0]
	for _, c := range l.sched {
		l.armChange(c)
	}
}

// deliver schedules the packet's arrival at l.To after the given propagation
// delay, applying wire-level impairments. It is the single exit point from a
// completed transmission; conservation accounting moves the packet from the
// transmitter into flight (or into the dropped column) here.
func (l *Link) deliver(p *Packet, delay sim.Duration) {
	acct := &l.dom.acct
	if l.down {
		// Carrier gone mid-transmission: the bits went nowhere.
		l.impairStats.Blackholed++
		acct.Dropped++
		l.dom.releasePacket(p)
		return
	}
	if imp := l.impair; imp != nil {
		if imp.Loss > 0 && imp.rng.Float64() < imp.Loss {
			l.impairStats.WireLost++
			acct.Dropped++
			l.dom.releasePacket(p)
			return
		}
		if imp.Reorder > 0 && imp.rng.Float64() < imp.Reorder {
			// Hold this packet back without raising the FIFO floor, so
			// successors may overtake it — bounded by ReorderMax.
			extra := 1 + imp.rng.Int63n(int64(imp.ReorderMax))
			l.impairStats.Reordered++
			acct.InFlight++
			arrival := l.eng.Now() + delay + sim.Duration(extra)
			l.eng.Post(arrival, l.arriveFn, p)
			l.maybeDup(p, delay)
			return
		}
	}
	arrival := l.eng.Now() + delay
	// FIFO: never deliver before an earlier packet on this link.
	if arrival < l.lastDelivery {
		arrival = l.lastDelivery
	}
	l.lastDelivery = arrival
	acct.InFlight++
	l.eng.Post(arrival, l.arriveFn, p)
	l.maybeDup(p, delay)
}

// maybeDup delivers an independent copy of the packet one transmission time
// later, as if the wire echoed it.
func (l *Link) maybeDup(p *Packet, delay sim.Duration) {
	imp := l.impair
	if imp == nil || imp.Dup <= 0 || imp.rng.Float64() >= imp.Dup {
		return
	}
	l.impairStats.Duplicated++
	acct := &l.dom.acct
	acct.Duplicated++
	acct.InFlight++
	cp := l.dom.clonePacket(p)
	arrival := l.eng.Now() + delay + l.txTime(p.Size)
	if arrival < l.lastDelivery {
		arrival = l.lastDelivery
	}
	l.lastDelivery = arrival
	l.eng.Post(arrival, l.arriveFn, cp)
}

// arrive completes a packet's flight across the link.
func (l *Link) arrive(p *Packet) {
	l.dom.acct.InFlight--
	l.To.Receive(p)
}

// deliverCross is deliver for boundary links: arrivals go through the
// cross-shard port instead of the local event heap. The impairment RNG
// draws happen in exactly deliver's order (loss, reorder, dup), so a
// link's fault sequence depends only on its seed, not on which side of a
// partition cut it landed.
//
// Two accounting rules differ from the serial path. The sender's domain
// increments InFlight and the receiver's domain decrements it on arrival
// (remoteArriveFn), so only the summed ledger balances. And the duplication
// decision — including the clone — happens BEFORE the original is sent:
// once a packet is on the port the receiving shard may mutate or recycle it
// concurrently, so the serial path's clone-after-post order would race.
func (l *Link) deliverCross(p *Packet, delay sim.Duration) {
	acct := &l.dom.acct
	if l.down {
		l.impairStats.Blackholed++
		acct.Dropped++
		l.dom.releasePacket(p)
		return
	}
	if imp := l.impair; imp != nil {
		if imp.Loss > 0 && imp.rng.Float64() < imp.Loss {
			l.impairStats.WireLost++
			acct.Dropped++
			l.dom.releasePacket(p)
			return
		}
		if imp.Reorder > 0 && imp.rng.Float64() < imp.Reorder {
			extra := 1 + imp.rng.Int63n(int64(imp.ReorderMax))
			l.impairStats.Reordered++
			arrival := l.eng.Now() + delay + sim.Duration(extra)
			cp := l.cloneForDup(p)
			acct.InFlight++
			l.xport.Send(arrival, l.remoteArriveFn, p)
			if cp != nil {
				l.sendDupCross(cp, delay)
			}
			return
		}
	}
	arrival := l.eng.Now() + delay
	if arrival < l.lastDelivery {
		arrival = l.lastDelivery
	}
	l.lastDelivery = arrival
	cp := l.cloneForDup(p)
	acct.InFlight++
	l.xport.Send(arrival, l.remoteArriveFn, p)
	if cp != nil {
		l.sendDupCross(cp, delay)
	}
}

// cloneForDup draws the duplication decision and returns the wire echo to
// send, or nil. Split from the send so deliverCross can clone before the
// original leaves this shard.
func (l *Link) cloneForDup(p *Packet) *Packet {
	imp := l.impair
	if imp == nil || imp.Dup <= 0 || imp.rng.Float64() >= imp.Dup {
		return nil
	}
	return l.dom.clonePacket(p)
}

// sendDupCross ships a wire duplicate across the boundary one transmission
// time after the original, mirroring maybeDup's arrival arithmetic.
func (l *Link) sendDupCross(cp *Packet, delay sim.Duration) {
	l.impairStats.Duplicated++
	acct := &l.dom.acct
	acct.Duplicated++
	acct.InFlight++
	arrival := l.eng.Now() + delay + l.txTime(cp.Size)
	if arrival < l.lastDelivery {
		arrival = l.lastDelivery
	}
	l.lastDelivery = arrival
	l.xport.Send(arrival, l.remoteArriveFn, cp)
}
