package netem

import (
	"bytes"
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	// Generate a real trace, then parse it back and check consistency.
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, sim.Millisecond, 2)
	var buf bytes.Buffer
	NewTracer(&buf).Attach(ab)
	b.AttachFlow(1, &sink{})
	for i := 0; i < 5; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000, Seq: int64(i)})
	}
	eng.Run(sim.Second)

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events parsed")
	}
	var enq, deq, drop int
	for i, ev := range events {
		switch ev.Op {
		case TraceEnqueue:
			enq++
		case TraceDequeue:
			deq++
		case TraceDrop:
			drop++
		}
		if ev.From != a.ID || ev.To != b.ID || ev.Kind != "tcp" || ev.Size != 1000 {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if i > 0 && ev.T < events[i-1].T {
			t.Fatal("timestamps not monotone")
		}
	}
	// 1 in service + 2 queued accepted; 2 dropped.
	if enq != 3 || deq != 3 || drop != 2 {
		t.Fatalf("counts: +%d -%d d%d", enq, deq, drop)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad op":     "x 1.0 0 1 tcp 100 1 0 1 -",
		"short line": "+ 1.0 0 1 tcp",
		"bad time":   "+ abc 0 1 tcp 100 1 0 1 -",
		"bad kind":   "+ 1.0 0 1 udp 100 1 0 1 -",
		"bad int":    "+ 1.0 0 one tcp 100 1 0 1 -",
		"long op":    "++ 1.0 0 1 tcp 100 1 0 1 -",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "\n+ 1.5 0 1 ack 40 7 42 9 E\n\n"
	events, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	ev := events[0]
	if ev.Kind != "ack" || ev.Seq != 42 || ev.Flags != "E" || ev.T != sim.Milliseconds(1500) {
		t.Fatalf("parsed %+v", ev)
	}
}
