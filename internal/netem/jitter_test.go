package netem

import (
	"testing"

	"pert/internal/sim"
)

func TestJitterSpreadsArrivals(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 1e9, 10*sim.Millisecond, 1000)
	ab.JitterMax = 5 * sim.Millisecond
	s := &sink{}
	b.AttachFlow(1, s)
	for i := 0; i < 200; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 100, Seq: int64(i)})
	}
	eng.Run(sim.Second)
	if len(s.got) != 200 {
		t.Fatalf("delivered %d", len(s.got))
	}
	// Arrivals must be at least base delay and show actual spread.
	var minExtra, maxExtra sim.Duration = sim.MaxTime, 0
	for i, at := range s.at {
		base := sim.Time(i+1)*800*sim.Nanosecond + 10*sim.Millisecond
		extra := at - base
		if extra < 0 {
			t.Fatalf("packet %d arrived before base delay (extra %v)", i, extra)
		}
		if extra < minExtra {
			minExtra = extra
		}
		if extra > maxExtra {
			maxExtra = extra
		}
	}
	if maxExtra-minExtra < sim.Millisecond {
		t.Fatalf("no jitter spread: min=%v max=%v", minExtra, maxExtra)
	}
	if maxExtra >= 5*sim.Millisecond+sim.Millisecond {
		t.Fatalf("jitter beyond bound: %v", maxExtra)
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	eng := sim.NewEngine(2)
	net, a, b, ab := line(eng, 1e9, sim.Millisecond, 10000)
	ab.JitterMax = 20 * sim.Millisecond // jitter >> serialization: would reorder without the clamp
	s := &sink{}
	b.AttachFlow(1, s)
	for i := 0; i < 1000; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 100, Seq: int64(i)})
	}
	eng.Run(10 * sim.Second)
	for i, p := range s.got {
		if p.Seq != int64(i) {
			t.Fatalf("reordered: position %d has seq %d", i, p.Seq)
		}
	}
	for i := 1; i < len(s.at); i++ {
		if s.at[i] < s.at[i-1] {
			t.Fatalf("arrival times not monotone at %d", i)
		}
	}
}

func TestNoJitterIsDeterministicBaseline(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine(3)
		net, a, b, _ := line(eng, 1e9, sim.Millisecond, 10)
		s := &sink{}
		b.AttachFlow(1, s)
		net.SendFrom(a, &Packet{ID: 1, Flow: 1, Src: a.ID, Dst: b.ID, Size: 100})
		eng.Run(sim.Second)
		return s.at[0]
	}
	if run() != run() {
		t.Fatal("jitter-free link not deterministic")
	}
}
