package netem

import (
	"fmt"
	"strings"

	"pert/internal/sim"
)

// Conservation is the network-wide packet ledger: at any instant between
// events, every packet ever injected (plus wire duplicates) is in exactly one
// of the right-hand columns,
//
//	Injected + Duplicated = Delivered + Dropped + Queued + Transmitting + InFlight.
//
// The columns are maintained inline by the packet path (Send, serve, deliver,
// Receive), so the equation is checkable at zero setup cost; Network.Audit
// verifies it.
type Conservation struct {
	Injected     uint64 // packets entered via SendFrom
	Duplicated   uint64 // extra copies created by wire duplication
	Delivered    uint64 // arrived at their destination node
	Dropped      uint64 // queue drops + blackholed + wire-lost
	Queued       int64  // sitting in some link queue
	Transmitting int64  // occupying some link's transmitter
	InFlight     int64  // propagating on some wire
}

// add accumulates another domain's ledger column into c.
func (c *Conservation) add(o Conservation) {
	c.Injected += o.Injected
	c.Duplicated += o.Duplicated
	c.Delivered += o.Delivered
	c.Dropped += o.Dropped
	c.Queued += o.Queued
	c.Transmitting += o.Transmitting
	c.InFlight += o.InFlight
}

// Conservation returns a snapshot of the network's packet ledger, summed
// over all shard domains. Only the sum balances: a boundary delivery
// increments the sender domain's InFlight and decrements the receiver's,
// so individual columns of a partitioned network are not meaningful alone.
// On a partitioned network, call only while the shard group is stopped.
func (n *Network) Conservation() Conservation {
	c := n.doms[0].acct
	for _, d := range n.doms[1:] {
		c.add(d.acct)
	}
	return c
}

// Audit checks the simulation's structural invariants and returns the first
// violation found, or nil:
//
//   - packet conservation (the Conservation equation above), plus
//     non-negative queue/transmitter/flight occupancy;
//   - per-link accounting: every packet a link has accepted is queued, in the
//     transmitter, or counted transmitted — Arrivals = Drops + TxPackets +
//     Queue.Len() + busy;
//   - queue sanity: Len and Bytes are non-negative, and Len of an empty-bytes
//     queue is zero.
//
// A non-nil return means the simulator's bookkeeping is corrupt (a model bug,
// not a model result), so callers should abort the run.
func (n *Network) Audit() error {
	c := n.Conservation()
	if c.Queued < 0 || c.Transmitting < 0 || c.InFlight < 0 {
		return fmt.Errorf("negative occupancy: queued=%d transmitting=%d in-flight=%d",
			c.Queued, c.Transmitting, c.InFlight)
	}
	in := c.Injected + c.Duplicated
	out := c.Delivered + c.Dropped + uint64(c.Queued) + uint64(c.Transmitting) + uint64(c.InFlight)
	if in != out {
		return fmt.Errorf("packet conservation violated: injected+duplicated=%d but delivered+dropped+queued+transmitting+in-flight=%d (%+v)",
			in, out, c)
	}
	for _, node := range n.Nodes {
		for _, l := range node.out {
			if err := auditLink(l); err != nil {
				return err
			}
		}
	}
	return nil
}

// auditLink checks one link's local invariants: queue sanity and the
// per-link packet accounting equation. All the state involved is owned by
// the link's domain, so a shard-scoped auditor may run this mid-run.
func auditLink(l *Link) error {
	qlen, qbytes := l.Queue.Len(), l.Queue.Bytes()
	if qlen < 0 || qbytes < 0 || (qbytes == 0) != (qlen == 0) {
		return fmt.Errorf("%v: queue accounting corrupt: Len=%d Bytes=%d", l, qlen, qbytes)
	}
	busy := uint64(0)
	if l.busy {
		busy = 1
	}
	if want := l.Stats.Drops + l.Stats.TxPackets + uint64(qlen) + busy; l.Stats.Arrivals != want {
		return fmt.Errorf("%v: link accounting violated: arrivals=%d but drops+tx+queued+busy=%d",
			l, l.Stats.Arrivals, want)
	}
	return nil
}

// ViolationError is an invariant-auditor failure: the violation itself plus
// the repro bundle needed to replay the run that produced it.
type ViolationError struct {
	Violation string // what check failed
	At        sim.Time
	Seed      int64    // the run's RNG seed
	Scenario  string   // human-readable scenario description
	Trace     []string // trailing packet-trace lines from the audited links
	Metrics   []string // flight-recorder dump (AuditConfig.MetricsDump), if any
}

// Error renders the violation and the full repro bundle.
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netem: invariant violated at %v: %s\n", e.At, e.Violation)
	fmt.Fprintf(&b, "repro bundle: seed=%d scenario=%q", e.Seed, e.Scenario)
	if len(e.Trace) > 0 {
		fmt.Fprintf(&b, "\ntrailing trace (%d events, oldest first):", len(e.Trace))
		for _, line := range e.Trace {
			b.WriteString("\n  ")
			b.WriteString(line)
		}
	}
	if len(e.Metrics) > 0 {
		b.WriteString("\nflight recorder:")
		for _, line := range e.Metrics {
			b.WriteString("\n  ")
			b.WriteString(line)
		}
	}
	return b.String()
}

// AuditConfig configures an Auditor.
type AuditConfig struct {
	// Seed and Scenario identify the run in the repro bundle.
	Seed     int64
	Scenario string
	// Interval is the periodic audit period; 0 means 100 ms of sim time.
	Interval sim.Duration
	// TraceDepth bounds the trailing-trace ring kept per auditor; 0 means 32
	// events. The ring records events only on links passed to Watch.
	TraceDepth int
	// OnViolation, when set, receives the violation instead of the default
	// panic. The default panic is deliberate: a conservation failure means
	// results can no longer be trusted, and the run harness converts panics
	// into per-run errors with the bundle text.
	OnViolation func(*ViolationError)
	// MetricsDump, when set, is invoked at violation time and its lines are
	// attached to the repro bundle — typically a flight recorder's Dump, so
	// an abort ships with the trailing time-series window alongside the
	// packet trace.
	MetricsDump func() []string
}

// Auditor periodically verifies Network.Audit plus per-link queue bounds and
// sample-time monotonicity, keeping a bounded ring of recent packet events so
// a violation ships with its trailing trace. Attach with StartAudit.
type Auditor struct {
	net    *Network
	cfg    AuditConfig
	bounds []queueBound
	ring   []auditTraceEvent
	next   int  // ring write cursor
	full   bool // ring has wrapped
	last   sim.Time
	ticker *sim.Ticker

	// dom, when non-nil, scopes the auditor to one shard domain
	// (StartDomainAudit): it ticks on that domain's engine and checks only
	// that domain's links, skipping the network-wide conservation equation
	// — which spans state owned by concurrently running shards and only
	// balances over the sum anyway.
	dom *domain
}

type queueBound struct {
	link *Link
	pkts int
}

// auditTraceEvent is one ring entry, compact enough to record per packet
// without allocation; formatted as a Tracer-style line only on violation.
type auditTraceEvent struct {
	op       byte
	t        sim.Time
	from, to NodeID
	flow     int
	seq      int64
	id       uint64
	size     int
	ack      bool
}

// StartAudit attaches an auditor to the network and schedules its periodic
// checks from sim time 0. Watch links and bound queues before traffic starts.
func StartAudit(n *Network, cfg AuditConfig) *Auditor {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = 32
	}
	a := &Auditor{net: n, cfg: cfg, ring: make([]auditTraceEvent, cfg.TraceDepth)}
	a.ticker = n.eng.Every(0, cfg.Interval, a.check)
	return a
}

// StartDomainAudit attaches an auditor scoped to one shard domain of a
// partitioned network, ticking on that domain's engine — safe while the
// other shards run concurrently. It verifies per-link accounting and queue
// sanity for the domain's links plus any bounds registered with BoundQueue
// (watch and bound only links the domain owns); the global conservation
// equation is left to a whole-network Audit after the group stops.
//
// Domain 0's auditor consumes exactly the engine-0 sequence numbers a
// serial StartAudit would, which is part of the shards=1 bit-identity
// contract.
func StartDomainAudit(n *Network, dom int, cfg AuditConfig) *Auditor {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = 32
	}
	a := &Auditor{net: n, cfg: cfg, ring: make([]auditTraceEvent, cfg.TraceDepth), dom: n.doms[dom]}
	a.ticker = a.dom.eng.Every(0, cfg.Interval, a.check)
	return a
}

// Watch records the link's packet events (enqueue/dequeue/drop) in the
// auditor's trailing-trace ring, chaining with hooks already installed.
func (a *Auditor) Watch(l *Link) {
	record := func(op byte) func(p *Packet, now sim.Time) {
		return func(p *Packet, now sim.Time) {
			e := auditTraceEvent{op: op, t: now, from: l.From.ID, to: l.To.ID,
				flow: p.Flow, seq: p.Seq, id: p.ID, size: p.Size, ack: p.IsAck}
			if p.IsAck {
				e.seq = p.AckNo
			}
			a.ring[a.next] = e
			a.next++
			if a.next == len(a.ring) {
				a.next, a.full = 0, true
			}
		}
	}
	prevEnq, prevDep, prevDrop := l.OnEnqueue, l.OnDepart, l.OnDrop
	enq, dep, drop := record('+'), record('-'), record('d')
	l.OnEnqueue = func(p *Packet, now sim.Time) {
		if prevEnq != nil {
			prevEnq(p, now)
		}
		enq(p, now)
	}
	l.OnDepart = func(p *Packet, now sim.Time) {
		if prevDep != nil {
			prevDep(p, now)
		}
		dep(p, now)
	}
	l.OnDrop = func(p *Packet, now sim.Time) {
		if prevDrop != nil {
			prevDrop(p, now)
		}
		drop(p, now)
	}
}

// BoundQueue asserts that the link's queue never holds more than pkts packets
// at audit time — the queue-bound invariant for disciplines with a known
// limit.
func (a *Auditor) BoundQueue(l *Link, pkts int) {
	a.bounds = append(a.bounds, queueBound{l, pkts})
}

// Stop cancels the periodic checks.
func (a *Auditor) Stop() { a.ticker.Stop() }

// Check runs one audit pass immediately (the periodic ticker calls this too).
func (a *Auditor) Check() {
	if a.dom != nil {
		a.check(a.dom.eng.Now())
		return
	}
	a.check(a.net.eng.Now())
}

func (a *Auditor) check(now sim.Time) {
	if now < a.last {
		a.fail(now, fmt.Sprintf("event time moved backwards: %v after %v", now, a.last))
		return
	}
	a.last = now
	if a.dom != nil {
		for _, node := range a.net.Nodes {
			if node.dom != a.dom {
				continue
			}
			for _, l := range node.out {
				if err := auditLink(l); err != nil {
					a.fail(now, err.Error())
					return
				}
			}
		}
	} else if err := a.net.Audit(); err != nil {
		a.fail(now, err.Error())
		return
	}
	for _, b := range a.bounds {
		if n := b.link.Queue.Len(); n > b.pkts {
			a.fail(now, fmt.Sprintf("%v: queue bound exceeded: %d > %d packets", b.link, n, b.pkts))
			return
		}
	}
}

func (a *Auditor) fail(now sim.Time, violation string) {
	err := &ViolationError{
		Violation: violation,
		At:        now,
		Seed:      a.cfg.Seed,
		Scenario:  a.cfg.Scenario,
		Trace:     a.trace(),
	}
	if a.cfg.MetricsDump != nil {
		err.Metrics = a.cfg.MetricsDump()
	}
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(err)
		return
	}
	panic(err.Error())
}

// trace renders the ring as Tracer-format lines, oldest first.
func (a *Auditor) trace() []string {
	var events []auditTraceEvent
	if a.full {
		events = append(events, a.ring[a.next:]...)
	}
	events = append(events, a.ring[:a.next]...)
	out := make([]string, 0, len(events))
	for _, e := range events {
		kind := "tcp"
		if e.ack {
			kind = "ack"
		}
		out = append(out, fmt.Sprintf("%c %.6f %d %d %s %d %d %d %d -",
			e.op, e.t.Seconds(), e.from, e.to, kind, e.size, e.flow, e.seq, e.id))
	}
	return out
}
