package netem

import (
	"strings"
	"testing"

	"pert/internal/obs"
	"pert/internal/sim"
)

func TestAuditCleanRun(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 60)
	aud := StartAudit(net, AuditConfig{Seed: 3, Scenario: "clean run",
		Interval: sim.Millisecond,
		OnViolation: func(v *ViolationError) {
			t.Fatalf("clean run flagged: %v", v)
		}})
	aud.Watch(ab)
	aud.BoundQueue(ab, 60)
	s := flood(eng, net, a, b, 50)
	aud.Check()
	if len(s.got) != 50 {
		t.Fatalf("delivered %d", len(s.got))
	}
	c := net.Conservation()
	if c.Injected != 50 || c.Delivered != 50 || c.Dropped != 0 {
		t.Fatalf("ledger: %+v", c)
	}
	if c.Queued != 0 || c.Transmitting != 0 || c.InFlight != 0 {
		t.Fatalf("occupancy after drain: %+v", c)
	}
}

func TestAuditViolationCarriesReproBundle(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 60)
	var got *ViolationError
	aud := StartAudit(net, AuditConfig{Seed: 77, Scenario: "corrupted ledger",
		OnViolation: func(v *ViolationError) { got = v }})
	aud.Watch(ab)
	flood(eng, net, a, b, 10)

	// Corrupt the ledger the way a lost-packet bug would: a packet that was
	// injected but never reached any other column.
	net.doms[0].acct.Injected++
	aud.Check()

	if got == nil {
		t.Fatal("violation not reported")
	}
	if !strings.Contains(got.Violation, "conservation") {
		t.Fatalf("violation: %q", got.Violation)
	}
	if got.Seed != 77 || got.Scenario != "corrupted ledger" {
		t.Fatalf("bundle identity: %+v", got)
	}
	if len(got.Trace) == 0 {
		t.Fatal("bundle has no trailing trace")
	}
	msg := got.Error()
	for _, want := range []string{"repro bundle", "seed=77", `scenario="corrupted ledger"`, "trailing trace"} {
		if !strings.Contains(msg, want) {
			t.Errorf("bundle text missing %q:\n%s", want, msg)
		}
	}
	// Trace lines use the Tracer format, so they re-parse.
	if _, err := ReadTrace(strings.NewReader(strings.Join(got.Trace, "\n"))); err != nil {
		t.Fatalf("bundle trace not parseable: %v", err)
	}
}

func TestAuditDefaultPanicsWithBundle(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, _ := line(eng, 8e6, 0, 60)
	aud := StartAudit(net, AuditConfig{Seed: 5, Scenario: "panics"})
	flood(eng, net, a, b, 3)
	net.doms[0].acct.Delivered++ // corrupt
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on violation")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "repro bundle: seed=5") {
			t.Fatalf("panic payload: %v", r)
		}
	}()
	aud.Check()
}

func TestAuditQueueBound(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 0, 50)
	var got *ViolationError
	aud := StartAudit(net, AuditConfig{Seed: 1, Scenario: "bound",
		OnViolation: func(v *ViolationError) { got = v }})
	aud.BoundQueue(ab, 2)
	b.AttachFlow(1, &sink{})
	// 1 in service + 5 queued: exceeds the declared bound of 2.
	for i := 0; i < 6; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	aud.Check()
	if got == nil || !strings.Contains(got.Violation, "queue bound exceeded") {
		t.Fatalf("violation: %+v", got)
	}
}

func TestAuditTimeMonotonicity(t *testing.T) {
	eng := sim.NewEngine(3)
	net, _, _, _ := line(eng, 8e6, 0, 10)
	var got *ViolationError
	aud := StartAudit(net, AuditConfig{Seed: 1, Scenario: "clock",
		OnViolation: func(v *ViolationError) { got = v }})
	aud.check(5 * sim.Millisecond)
	if got != nil {
		t.Fatalf("forward sample flagged: %v", got)
	}
	aud.check(3 * sim.Millisecond)
	if got == nil || !strings.Contains(got.Violation, "backwards") {
		t.Fatalf("violation: %+v", got)
	}
}

func TestAuditTraceRingWraps(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 0, 100)
	var got *ViolationError
	aud := StartAudit(net, AuditConfig{Seed: 1, Scenario: "ring", TraceDepth: 4,
		OnViolation: func(v *ViolationError) { got = v }})
	aud.Watch(ab)
	flood(eng, net, a, b, 10) // 20 ring events (enqueue+depart per packet)
	net.doms[0].acct.Injected++
	aud.Check()
	if got == nil {
		t.Fatal("no violation")
	}
	if len(got.Trace) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got.Trace))
	}
	// Oldest first: the last ring entries are the final departures.
	if !strings.HasPrefix(got.Trace[3], "-") {
		t.Fatalf("ring order wrong: %v", got.Trace)
	}
}

func TestAuditorStopSilences(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, _ := line(eng, 8e6, 0, 60)
	violations := 0
	aud := StartAudit(net, AuditConfig{Seed: 1, Scenario: "stopped",
		Interval:    sim.Millisecond,
		OnViolation: func(*ViolationError) { violations++ }})
	aud.Stop()
	net.doms[0].acct.Injected++ // corrupt before any traffic
	flood(eng, net, a, b, 5)
	if violations != 0 {
		t.Fatalf("stopped auditor still fired %d times", violations)
	}
}

func TestAuditViolationCarriesFlightDump(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 60)
	fl := obs.NewFlight("test scenario", 8)
	fl.Record(obs.Point{T: 0.1, Series: "queue.len", Value: 3})
	fl.Record(obs.Point{T: 0.2, Series: "queue.len", Value: 5})
	var got *ViolationError
	aud := StartAudit(net, AuditConfig{Seed: 9, Scenario: "with flight",
		MetricsDump: fl.Dump,
		OnViolation: func(v *ViolationError) { got = v }})
	aud.Watch(ab)
	flood(eng, net, a, b, 10)
	net.doms[0].acct.Injected++ // corrupt
	aud.Check()

	if got == nil {
		t.Fatal("violation not reported")
	}
	if len(got.Metrics) != 3 { // header + 2 points
		t.Fatalf("flight dump has %d lines, want 3: %v", len(got.Metrics), got.Metrics)
	}
	msg := got.Error()
	for _, want := range []string{"flight recorder:", `flight "test scenario"`,
		"t=0.100000 queue.len=3", "t=0.200000 queue.len=5"} {
		if !strings.Contains(msg, want) {
			t.Errorf("bundle text missing %q:\n%s", want, msg)
		}
	}
	// Without MetricsDump the section is absent entirely.
	eng2 := sim.NewEngine(3)
	net2, _, _, _ := line(eng2, 8e6, 0, 60)
	var bare *ViolationError
	aud2 := StartAudit(net2, AuditConfig{Seed: 9, Scenario: "no flight",
		OnViolation: func(v *ViolationError) { bare = v }})
	net2.doms[0].acct.Injected++
	aud2.Check()
	if bare == nil {
		t.Fatal("second auditor saw no violation")
	}
	if strings.Contains(bare.Error(), "flight recorder") {
		t.Errorf("bundle without MetricsDump mentions the flight recorder")
	}
}
