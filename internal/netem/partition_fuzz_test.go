package netem

import (
	"testing"

	"pert/internal/sim"
)

// FuzzPartition throws arbitrary node→shard assignments at Network.Partition
// over a chain topology with a zero-delay middle link. The contract under
// fuzz: structurally invalid input (wrong length, out-of-range shard, a cut
// crossing the zero-lookahead link) returns an error — never a panic — and
// any assignment Partition accepts must carry traffic end to end, terminate
// (no cross-shard deadlock), and balance the conservation ledger.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1}, uint8(2))   // valid two-domain cut at c-d... (b-c is zero-delay: rejected)
	f.Add([]byte{0, 0, 0, 1}, uint8(2))   // valid cut at the 2 ms c-d link
	f.Add([]byte{0, 0, 0, 0}, uint8(4))   // all in one domain of a wider group
	f.Add([]byte{0, 1, 0, 1}, uint8(2))   // alternating: cuts every link
	f.Add([]byte{0, 0, 1}, uint8(2))      // wrong length
	f.Add([]byte{0, 0, 0, 255}, uint8(2)) // out of range (and negative as int8)
	f.Add([]byte{0, 0, 2, 3}, uint8(4))   // skips shard 1: empty domains are fine
	f.Fuzz(func(t *testing.T, data []byte, nShards uint8) {
		shards := int(nShards)%8 + 1
		g := sim.NewShardGroup(shards, 1)
		net := NewNetwork(g.Engine(0))
		var nodes []*Node
		for i := 0; i < 4; i++ {
			nodes = append(nodes, net.AddNode())
		}
		// a -1ms- b -0ms- c -2ms- d: the middle link has no lookahead, so
		// every assignment separating b from c must be rejected.
		delays := []sim.Duration{sim.Millisecond, 0, 2 * sim.Millisecond}
		for i := 0; i < 3; i++ {
			net.AddDuplexLink(nodes[i], nodes[i+1], 8e6, delays[i], &tail{limit: 100}, &tail{limit: 100})
		}
		net.ComputeRoutes()

		assign := make([]int, len(data))
		for i, b := range data {
			assign[i] = int(int8(b)) // sign-extend so negatives are covered
		}
		err := net.Partition(g, assign)

		if len(assign) != len(net.Nodes) {
			if err == nil {
				t.Fatalf("length-%d assignment accepted for %d nodes", len(assign), len(net.Nodes))
			}
			return
		}
		for id, s := range assign {
			if s < 0 || s >= g.N() {
				if err == nil {
					t.Fatalf("node %d assigned out-of-range shard %d accepted (group of %d)", id, s, g.N())
				}
				return
			}
		}
		if assign[1] != assign[2] {
			if err == nil {
				t.Fatal("cut across the zero-delay b-c link accepted: no lookahead exists")
			}
			return
		}
		if err != nil {
			t.Fatalf("structurally valid assignment %v rejected: %v", assign, err)
		}

		// Accepted: the partitioned network must still work. Drive a few
		// packets across the whole chain and check delivery and the ledger.
		h := &countHandler{}
		nodes[3].AttachFlow(1, h)
		src := nodes[0]
		for i := 0; i < 5; i++ {
			i := i
			src.Engine().At(sim.Time(i)*sim.Millisecond, func() {
				p := src.NewPacket()
				p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
				net.SendFrom(src, p)
			})
		}
		g.Run(100 * sim.Millisecond)
		if h.n != 5 {
			t.Fatalf("assignment %v: delivered %d of 5", assign, h.n)
		}
		if err := net.Audit(); err != nil {
			t.Fatalf("assignment %v: %v", assign, err)
		}
	})
}
