package netem

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"pert/internal/sim"
)

// TestTraceRoundTripProperty pins the Tracer <-> ReadTrace inverse pair:
// for any event with microsecond-aligned time (the Tracer's output
// precision), Format -> ReadTrace reproduces the event, and re-Formatting
// reproduces the line byte for byte.
func TestTraceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []TraceOp{TraceEnqueue, TraceDequeue, TraceDrop}
	kinds := []string{"tcp", "ack"}
	flagSets := []string{"-", "C", "E", "W", "R", "CE", "CR", "EW", "CEWR"}
	for i := 0; i < 2000; i++ {
		want := TraceEvent{
			Op:    ops[rng.Intn(len(ops))],
			T:     sim.Duration(rng.Int63n(1e9)) * sim.Microsecond,
			From:  NodeID(rng.Intn(1000)),
			To:    NodeID(rng.Intn(1000)),
			Kind:  kinds[rng.Intn(2)],
			Size:  rng.Intn(65536),
			Flow:  rng.Intn(10000),
			Seq:   rng.Int63n(1 << 40),
			ID:    uint64(rng.Int63()),
			Flags: flagSets[rng.Intn(len(flagSets))],
		}
		line := want.Format()
		evs, err := ReadTrace(strings.NewReader(line + "\n"))
		if err != nil {
			t.Fatalf("parse of own format failed: %v\nline: %s", err, line)
		}
		if len(evs) != 1 || evs[0] != want {
			t.Fatalf("round trip:\nwant %+v\ngot  %+v\nline %s", want, evs[0], line)
		}
		if got := evs[0].Format(); got != line {
			t.Fatalf("re-format differs:\nwant %s\ngot  %s", line, got)
		}
	}
}

// TestTraceRoundTripRealRun runs an actual simulation with a Tracer
// attached, parses the trace, and re-formats it: the reproduction must match
// the original file byte for byte.
func TestTraceRoundTripRealRun(t *testing.T) {
	eng := sim.NewEngine(7)
	net, a, b, ab := line(eng, 8e6, sim.Millisecond, 3)
	var buf bytes.Buffer
	NewTracer(&buf).Attach(ab)
	b.AttachFlow(1, &sink{})
	for i := 0; i < 8; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID,
			Size: 1000, Seq: int64(i), CE: i%3 == 0, Retrans: i == 5})
	}
	eng.Run(sim.Second)

	evs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	var re strings.Builder
	for _, ev := range evs {
		re.WriteString(ev.Format())
		re.WriteByte('\n')
	}
	if re.String() != buf.String() {
		t.Fatalf("re-formatted trace differs from Tracer output:\n--- tracer ---\n%s--- reformat ---\n%s",
			buf.String(), re.String())
	}
}
