package netem

import (
	"testing"

	"pert/internal/sim"
)

// buildChain makes a 4-node chain a-b-c-d with duplex links, suitable for
// cutting into two domains at the b-c link.
func buildChain(eng *sim.Engine, delay sim.Duration) (*Network, []*Node) {
	net := NewNetwork(eng)
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, net.AddNode())
	}
	for i := 0; i < 3; i++ {
		net.AddDuplexLink(nodes[i], nodes[i+1], 8e6, delay, &tail{limit: 100}, &tail{limit: 100})
	}
	net.ComputeRoutes()
	return net, nodes
}

type countHandler struct {
	n   int
	at  []sim.Time
	ids []uint64
}

func (h *countHandler) Receive(p *Packet, now sim.Time) {
	h.n++
	h.at = append(h.at, now)
	h.ids = append(h.ids, p.ID)
}

// TestPartitionCrossDelivery: packets routed across a partition cut arrive
// with the same timing a serial run produces, and the summed conservation
// ledger balances after the run.
func TestPartitionCrossDelivery(t *testing.T) {
	const delay = 5 * sim.Millisecond
	run := func(shards int) (*countHandler, Conservation) {
		g := sim.NewShardGroup(shards, 1)
		net, nodes := buildChain(g.Engine(0), delay)
		h := &countHandler{}
		nodes[3].AttachFlow(1, h)
		if shards > 1 {
			if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
				t.Fatal(err)
			}
		}
		src := nodes[0]
		for i := 0; i < 20; i++ {
			i := i
			src.Engine().At(sim.Time(i)*sim.Millisecond, func() {
				p := src.NewPacket()
				p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
				net.SendFrom(src, p)
			})
		}
		g.Run(sim.Second)
		if err := net.Audit(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return h, net.Conservation()
	}

	serial, cs := run(1)
	sharded, cp := run(2)
	if serial.n != 20 || sharded.n != serial.n {
		t.Fatalf("deliveries: serial=%d sharded=%d", serial.n, sharded.n)
	}
	for i := range serial.at {
		if serial.at[i] != sharded.at[i] {
			t.Fatalf("delivery %d at %v sharded vs %v serial", i, sharded.at[i], serial.at[i])
		}
	}
	if cs.Delivered != cp.Delivered || cs.Injected != cp.Injected || cs.Dropped != cp.Dropped {
		t.Fatalf("ledgers differ: serial %+v, sharded %+v", cs, cp)
	}
	if cp.Queued != 0 || cp.Transmitting != 0 || cp.InFlight != 0 {
		t.Fatalf("sharded run left packets in flight: %+v", cp)
	}
}

// TestPartitionPacketIDsDisjoint: packets minted by different domains can
// never collide, and domain 0 mints the exact IDs a serial network does.
func TestPartitionPacketIDsDisjoint(t *testing.T) {
	g := sim.NewShardGroup(2, 1)
	net, nodes := buildChain(g.Engine(0), sim.Millisecond)
	if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	p0 := nodes[0].NewPacket()
	p1 := nodes[3].NewPacket()
	if p0.ID != 1 {
		t.Fatalf("domain 0 first ID = %d, want 1 (serial-identical)", p0.ID)
	}
	if p1.ID != uint64(1)<<domainPktShift|1 {
		t.Fatalf("domain 1 first ID = %#x", p1.ID)
	}
	if nodes[0].Domain() != 0 || nodes[2].Domain() != 1 {
		t.Fatalf("domains = %d, %d", nodes[0].Domain(), nodes[2].Domain())
	}
}

// TestPartitionImpairedBoundary: wire loss, duplication, and reorder on a
// boundary link keep the summed ledger balanced and stay deterministic
// across repeated sharded runs.
func TestPartitionImpairedBoundary(t *testing.T) {
	run := func() (Conservation, ImpairStats) {
		g := sim.NewShardGroup(2, 3)
		net, nodes := buildChain(g.Engine(0), 2*sim.Millisecond)
		h := &countHandler{}
		nodes[3].AttachFlow(1, h)
		if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
			t.Fatal(err)
		}
		bc := nodes[1].LinkTo(nodes[2].ID)
		if bc.xport == nil {
			t.Fatal("b->c is not a boundary link")
		}
		imp := NewImpairment(7)
		imp.Loss, imp.Dup, imp.Reorder, imp.ReorderMax = 0.1, 0.1, 0.2, sim.Millisecond
		bc.SetImpairment(imp)
		src := nodes[0]
		for i := 0; i < 200; i++ {
			i := i
			src.Engine().At(sim.Time(i)*sim.Millisecond, func() {
				p := src.NewPacket()
				p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
				net.SendFrom(src, p)
			})
		}
		g.Run(sim.Second)
		if err := net.Audit(); err != nil {
			t.Fatal(err)
		}
		return net.Conservation(), bc.Impairments()
	}
	c1, s1 := run()
	c2, s2 := run()
	if s1.WireLost == 0 || s1.Duplicated == 0 || s1.Reordered == 0 {
		t.Fatalf("impairments never fired: %+v", s1)
	}
	if c1 != c2 || s1 != s2 {
		t.Fatalf("sharded impaired run not deterministic:\n%+v vs %+v\n%+v vs %+v", c1, c2, s1, s2)
	}
}

// TestPartitionValidation: the partitioner rejects malformed assignments.
func TestPartitionValidation(t *testing.T) {
	mk := func() (*sim.ShardGroup, *Network) {
		g := sim.NewShardGroup(2, 1)
		net, _ := buildChain(g.Engine(0), sim.Millisecond)
		return g, net
	}
	if g, net := mk(); net.Partition(g, []int{0, 0, 1}) == nil {
		t.Error("wrong assignment length accepted")
	}
	if g, net := mk(); net.Partition(g, []int{0, 0, 1, 2}) == nil {
		t.Error("out-of-range shard accepted")
	}
	g, net := mk()
	if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if net.Partition(g, []int{0, 0, 1, 1}) == nil {
		t.Error("double partition accepted")
	}
	// Zero-delay boundary: no conservative lookahead exists.
	g2 := sim.NewShardGroup(2, 1)
	net2, _ := buildChain(g2.Engine(0), 0)
	if net2.Partition(g2, []int{0, 0, 1, 1}) == nil {
		t.Error("zero-delay boundary accepted")
	}
	// The same zero-delay links entirely inside one domain are fine.
	if err := net2.Partition(g2, []int{0, 0, 0, 0}); err != nil {
		t.Errorf("all-in-one-domain partition rejected: %v", err)
	}
}

// TestDomainAudit: a domain-scoped auditor checks only its own links and
// runs safely while the group is active.
func TestDomainAudit(t *testing.T) {
	g := sim.NewShardGroup(2, 1)
	net, nodes := buildChain(g.Engine(0), 2*sim.Millisecond)
	h := &countHandler{}
	nodes[3].AttachFlow(1, h)
	if err := net.Partition(g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < net.Domains(); d++ {
		StartDomainAudit(net, d, AuditConfig{Seed: 1, Scenario: "domain-audit", Interval: sim.Millisecond})
	}
	src := nodes[0]
	for i := 0; i < 50; i++ {
		i := i
		src.Engine().At(sim.Time(i)*sim.Millisecond, func() {
			p := src.NewPacket()
			p.Flow, p.Src, p.Dst, p.Size = 1, src.ID, nodes[3].ID, 1000
			net.SendFrom(src, p)
		})
	}
	g.Run(200 * sim.Millisecond)
	if h.n != 50 {
		t.Fatalf("delivered %d of 50", h.n)
	}
	if err := net.Audit(); err != nil {
		t.Fatal(err)
	}
}
