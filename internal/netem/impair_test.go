package netem

import (
	"testing"

	"pert/internal/sim"
)

// flood pushes n packets of 1000 B into the link back to back and runs the
// engine to completion.
func flood(eng *sim.Engine, net *Network, a, b *Node, n int) *sink {
	s := &sink{}
	b.AttachFlow(1, s)
	for i := 0; i < n; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID,
			Size: 1000, Seq: int64(i)})
	}
	eng.Run(10 * sim.Second)
	return s
}

func TestImpairmentZeroRatesAreInvisible(t *testing.T) {
	// A zero-probability impairment must leave the run bit-identical to an
	// unimpaired one: its RNG paths draw nothing.
	run := func(attach bool) []sim.Time {
		eng := sim.NewEngine(3)
		net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 50)
		if attach {
			ab.SetImpairment(NewImpairment(99))
		}
		return flood(eng, net, a, b, 20).at
	}
	plain, impaired := run(false), run(true)
	if len(plain) != len(impaired) {
		t.Fatalf("delivery counts differ: %d vs %d", len(plain), len(impaired))
	}
	for i := range plain {
		if plain[i] != impaired[i] {
			t.Fatalf("arrival %d: %v vs %v", i, plain[i], impaired[i])
		}
	}
}

func TestImpairmentLossDeterministic(t *testing.T) {
	run := func(seed int64) (int, ImpairStats) {
		eng := sim.NewEngine(3)
		net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 600)
		imp := NewImpairment(seed)
		imp.Loss = 0.2
		ab.SetImpairment(imp)
		s := flood(eng, net, a, b, 500)
		return len(s.got), ab.Impairments()
	}
	got1, st1 := run(7)
	got2, st2 := run(7)
	if got1 != got2 || st1 != st2 {
		t.Fatalf("same seed, different faults: %d/%+v vs %d/%+v", got1, st1, got2, st2)
	}
	if st1.WireLost == 0 || got1 == 500 {
		t.Fatalf("no loss injected: delivered=%d stats=%+v", got1, st1)
	}
	if got1+int(st1.WireLost) != 500 {
		t.Fatalf("delivered %d + lost %d != 500", got1, st1.WireLost)
	}
	got3, _ := run(8)
	if got3 == got1 {
		t.Logf("note: different seeds gave equal delivery counts (possible, just unlikely)")
	}
}

func TestImpairmentDuplication(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 300)
	imp := NewImpairment(1)
	imp.Dup = 1 // every packet echoes
	ab.SetImpairment(imp)
	s := flood(eng, net, a, b, 50)
	if len(s.got) != 100 {
		t.Fatalf("delivered %d, want 100 (every packet twice)", len(s.got))
	}
	if st := ab.Impairments(); st.Duplicated != 50 {
		t.Fatalf("stats: %+v", st)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("conservation with duplicates: %v", err)
	}
	c := net.Conservation()
	if c.Injected != 50 || c.Duplicated != 50 || c.Delivered != 100 {
		t.Fatalf("ledger: %+v", c)
	}
}

func TestImpairmentReorderOvertakes(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 300)
	imp := NewImpairment(1)
	imp.Reorder = 0.3
	imp.ReorderMax = 20 * sim.Millisecond
	ab.SetImpairment(imp)
	s := flood(eng, net, a, b, 200)
	if len(s.got) != 200 {
		t.Fatalf("delivered %d, want 200 (reordering must not lose packets)", len(s.got))
	}
	if st := ab.Impairments(); st.Reordered == 0 {
		t.Fatalf("stats: %+v", st)
	}
	overtaken := false
	for i := 1; i < len(s.got); i++ {
		if s.got[i].Seq < s.got[i-1].Seq {
			overtaken = true
			break
		}
	}
	if !overtaken {
		t.Fatal("no packet was overtaken despite 30% reorder probability")
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("conservation after reordering: %v", err)
	}
}

func TestImpairmentReorderNeedsBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reorder without ReorderMax accepted")
		}
	}()
	eng := sim.NewEngine(1)
	_, _, _, ab := line(eng, 8e6, 0, 10)
	imp := NewImpairment(1)
	imp.Reorder = 0.5
	ab.SetImpairment(imp)
}

func TestDownLinkBlackholesOfferedPackets(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 5*sim.Millisecond, 50)
	ab.SetUp(false)
	if ab.Up() {
		t.Fatal("link still up")
	}
	s := flood(eng, net, a, b, 10)
	if len(s.got) != 0 {
		t.Fatalf("down link delivered %d packets", len(s.got))
	}
	if st := ab.Impairments(); st.Blackholed != 10 {
		t.Fatalf("stats: %+v", st)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("conservation across blackhole: %v", err)
	}
	// Revive and verify traffic flows again.
	ab.SetUp(true)
	net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	eng.Run(20 * sim.Second)
	if len(s.got) != 1 {
		t.Fatalf("revived link delivered %d packets", len(s.got))
	}
}

func TestDownLinkLosesPacketInTransmission(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 10*sim.Millisecond, 50) // 1 ms tx time
	s := &sink{}
	b.AttachFlow(1, s)
	net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	// Kill the carrier halfway through serialization: the bits go nowhere.
	eng.At(500*sim.Microsecond, func() { ab.SetUp(false) })
	eng.Run(sim.Second)
	if len(s.got) != 0 {
		t.Fatal("packet survived a mid-transmission link failure")
	}
	if st := ab.Impairments(); st.Blackholed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := net.Audit(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

func TestDownLinkDoesNotKillPropagatingPacket(t *testing.T) {
	eng := sim.NewEngine(3)
	net, a, b, ab := line(eng, 8e6, 10*sim.Millisecond, 50)
	s := &sink{}
	b.AttachFlow(1, s)
	net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	// Transmission finishes at 1 ms; the packet is then on the wire until
	// 11 ms. A flap at 5 ms must not destroy it.
	eng.At(5*sim.Millisecond, func() { ab.SetUp(false) })
	eng.Run(sim.Second)
	if len(s.got) != 1 {
		t.Fatal("propagating packet was retroactively destroyed by a flap")
	}
}

func TestLinkScheduleDrivesCapacityDelayAndFlaps(t *testing.T) {
	eng := sim.NewEngine(3)
	_, _, _, ab := line(eng, 8e6, 10*sim.Millisecond, 50)
	LinkSchedule{
		{At: 10 * sim.Millisecond, Capacity: 16e6},
		{At: 20 * sim.Millisecond, Delay: 30 * sim.Millisecond},
		{At: 30 * sim.Millisecond, Down: true},
		{At: 40 * sim.Millisecond, Up: true},
	}.Apply(ab)

	type state struct {
		cap   float64
		delay sim.Duration
		up    bool
	}
	probe := map[sim.Time]state{}
	for _, at := range []sim.Time{5, 15, 25, 35, 45} {
		at := at * sim.Millisecond
		eng.At(at, func() { probe[at] = state{ab.Capacity, ab.Delay, ab.Up()} })
	}
	eng.Run(sim.Second)

	want := map[sim.Time]state{
		5 * sim.Millisecond:  {8e6, 10 * sim.Millisecond, true},
		15 * sim.Millisecond: {16e6, 10 * sim.Millisecond, true},
		25 * sim.Millisecond: {16e6, 30 * sim.Millisecond, true},
		35 * sim.Millisecond: {16e6, 30 * sim.Millisecond, false},
		45 * sim.Millisecond: {16e6, 30 * sim.Millisecond, true},
	}
	for at, w := range want {
		if probe[at] != w {
			t.Errorf("at %v: %+v, want %+v", at, probe[at], w)
		}
	}
}

func TestLinkScheduleRejectsContradictions(t *testing.T) {
	eng := sim.NewEngine(1)
	_, _, _, ab := line(eng, 8e6, 0, 10)
	for name, sched := range map[string]LinkSchedule{
		"down and up":       {{At: 0, Down: true, Up: true}},
		"negative capacity": {{At: 0, Capacity: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted", name)
				}
			}()
			sched.Apply(ab)
		}()
	}
}
