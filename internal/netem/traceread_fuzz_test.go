package netem

import (
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser: arbitrary input must either be
// rejected with an error or parse into events whose Format output re-parses
// to an identical rendering (one normalization pass reaches a fixed point).
// No input may panic.
func FuzzReadTrace(f *testing.F) {
	f.Add("+ 0.001000 0 1 tcp 1000 1 0 1 -\n")
	f.Add("- 1.500000 2 3 ack 40 7 42 9 CE\n")
	f.Add("d 0.000000 0 1 tcp 1000 1 3 4 CEWR\n")
	f.Add("")
	f.Add("\n\n  \n")
	f.Add("x 0.1 0 1 tcp 1 1 1 1 -\n")
	f.Add("+ NaN 0 1 tcp 1 1 1 1 -\n")
	f.Add("+ 1e300 0 1 tcp 1 1 1 1 -\n")
	f.Add("+ -0.5 0 1 tcp 1 1 1 1 -\n")
	f.Add("+ 0.1 0 1 udp 1 1 1 1 -\n")
	f.Add("+ 0.1 0 1 tcp 1 1 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		evs, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, ev := range evs {
			line := ev.Format()
			again, err := ReadTrace(strings.NewReader(line + "\n"))
			if err != nil {
				t.Fatalf("accepted event does not re-parse: %v\nline: %s", err, line)
			}
			if len(again) != 1 || again[0].Format() != line {
				t.Fatalf("format not a fixed point:\nfirst  %s\nsecond %s", line, again[0].Format())
			}
		}
	})
}
