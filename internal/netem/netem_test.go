package netem

import (
	"testing"

	"pert/internal/sim"
)

// sink records packets delivered to a node.
type sink struct {
	got []*Packet
	at  []sim.Time
}

func (s *sink) Receive(p *Packet, now sim.Time) {
	s.got = append(s.got, p)
	s.at = append(s.at, now)
}

// tail is a minimal DropTail used to avoid importing internal/queue (which
// would create an import cycle in tests only, but keeps layering clean).
type tail struct {
	limit int
	pkts  []*Packet
	bytes int
}

func (t *tail) Enqueue(p *Packet, _ sim.Time) bool {
	if len(t.pkts) >= t.limit {
		return false
	}
	t.pkts = append(t.pkts, p)
	t.bytes += p.Size
	return true
}
func (t *tail) Dequeue(_ sim.Time) *Packet {
	if len(t.pkts) == 0 {
		return nil
	}
	p := t.pkts[0]
	t.pkts = t.pkts[1:]
	t.bytes -= p.Size
	return p
}
func (t *tail) Len() int   { return len(t.pkts) }
func (t *tail) Bytes() int { return t.bytes }

func line(eng *sim.Engine, capacity float64, delay sim.Duration, limit int) (*Network, *Node, *Node, *Link) {
	net := NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	ab := net.AddLink(a, b, capacity, delay, &tail{limit: limit})
	net.AddLink(b, a, capacity, delay, &tail{limit: limit})
	net.ComputeRoutes()
	return net, a, b, ab
}

func TestLinkTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, _ := line(eng, 8e6, 10*sim.Millisecond, 100) // 8 Mbps: 1000 B = 1 ms tx
	s := &sink{}
	b.AttachFlow(1, s)
	p := &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000}
	net.SendFrom(a, p)
	eng.Run(sim.Second)
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets", len(s.got))
	}
	// 1 ms serialization + 10 ms propagation.
	if want := 11 * sim.Millisecond; s.at[0] != want {
		t.Fatalf("arrival at %v, want %v", s.at[0], want)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, 0, 100)
	s := &sink{}
	b.AttachFlow(1, s)
	for i := 0; i < 5; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	eng.Run(sim.Second)
	if len(s.got) != 5 {
		t.Fatalf("delivered %d packets", len(s.got))
	}
	for i, at := range s.at {
		if want := sim.Time(i+1) * sim.Millisecond; at != want {
			t.Fatalf("packet %d at %v, want %v (back-to-back serialization)", i, at, want)
		}
	}
	if ab.Stats.TxPackets != 5 || ab.Stats.TxBytes != 5000 {
		t.Fatalf("stats: %+v", ab.Stats)
	}
	if got := ab.Stats.BusyTime; got != 5*sim.Millisecond {
		t.Fatalf("busy time %v", got)
	}
}

func TestLinkDropsWhenFull(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, 0, 3)
	var droppedAt []sim.Time
	ab.OnDrop = func(p *Packet, now sim.Time) { droppedAt = append(droppedAt, now) }
	s := &sink{}
	b.AttachFlow(1, s)
	// One packet in service + 3 queued fit; the 5th and 6th drop.
	for i := 0; i < 6; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	eng.Run(sim.Second)
	if len(s.got) != 4 {
		t.Fatalf("delivered %d, want 4", len(s.got))
	}
	if ab.Stats.Drops != 2 || len(droppedAt) != 2 {
		t.Fatalf("drops=%d hook=%d", ab.Stats.Drops, len(droppedAt))
	}
	if got := ab.Stats.DropRate(); got != 2.0/6 {
		t.Fatalf("drop rate %v", got)
	}
}

func TestRoutingChain(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)
	// a - r1 - r2 - b chain.
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = net.AddNode()
	}
	for i := 0; i < 3; i++ {
		net.AddDuplexLink(nodes[i], nodes[i+1], 1e9, sim.Millisecond, &tail{limit: 10}, &tail{limit: 10})
	}
	net.ComputeRoutes()
	s := &sink{}
	nodes[3].AttachFlow(7, s)
	net.SendFrom(nodes[0], &Packet{ID: 1, Flow: 7, Src: nodes[0].ID, Dst: nodes[3].ID, Size: 125})
	eng.Run(sim.Second)
	if len(s.got) != 1 {
		t.Fatal("packet not delivered across chain")
	}
	// 3 hops: 3 * (1 us serialization + 1 ms propagation).
	want := 3 * (sim.Microsecond + sim.Millisecond)
	if s.at[0] != want {
		t.Fatalf("arrival %v, want %v", s.at[0], want)
	}
}

func TestRoutingPicksShortestPath(t *testing.T) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)
	// Square with a diagonal: a-b-d is 2 hops, a-c-e-d is 3.
	a, b, c, e, d := net.AddNode(), net.AddNode(), net.AddNode(), net.AddNode(), net.AddNode()
	q := func() Discipline { return &tail{limit: 100} }
	net.AddDuplexLink(a, b, 1e9, sim.Millisecond, q(), q())
	net.AddDuplexLink(b, d, 1e9, sim.Millisecond, q(), q())
	net.AddDuplexLink(a, c, 1e9, sim.Millisecond, q(), q())
	net.AddDuplexLink(c, e, 1e9, sim.Millisecond, q(), q())
	net.AddDuplexLink(e, d, 1e9, sim.Millisecond, q(), q())
	net.ComputeRoutes()
	if a.next[d.ID] == nil || a.next[d.ID].To != b {
		t.Fatal("route a->d should go via b (2 hops)")
	}
}

func TestDetachFlowDiscardsQuietly(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, _ := line(eng, 1e9, 0, 10)
	s := &sink{}
	b.AttachFlow(1, s)
	b.DetachFlow(1)
	net.SendFrom(a, &Packet{ID: 1, Flow: 1, Src: a.ID, Dst: b.ID, Size: 100})
	eng.Run(sim.Second)
	if len(s.got) != 0 {
		t.Fatal("detached flow still received packets")
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, 0, 1000)
	b.AttachFlow(1, &sink{})
	start := ab.Stats.TxBytes
	// 50 packets of 1000 B at 8 Mbps = 50 ms busy in a 100 ms window.
	for i := 0; i < 50; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	eng.Run(100 * sim.Millisecond)
	u := ab.Utilization(start, 100*sim.Millisecond)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}
