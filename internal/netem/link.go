package netem

import (
	"fmt"

	"pert/internal/sim"
)

// LinkStats are cumulative counters for one unidirectional link. Drops and
// Marks are attributed to the link's queue discipline; Arrivals counts every
// packet offered to the queue.
type LinkStats struct {
	Arrivals  uint64
	Drops     uint64
	Marks     uint64
	TxPackets uint64
	TxBytes   uint64
	BusyTime  sim.Duration
}

// DropRate returns the fraction of offered packets that were dropped.
func (s LinkStats) DropRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.Arrivals)
}

// Link is a unidirectional link with an output queue, a transmission rate,
// and a propagation delay. It models a single server: one packet transmits at
// a time; propagation overlaps with the next transmission.
type Link struct {
	From, To *Node
	Capacity float64 // bits per second
	Delay    sim.Duration
	Queue    Discipline

	// JitterMax adds a uniform random extra propagation delay in
	// [0, JitterMax) per packet, modeling non-queueing delay variation
	// (wireless links, cross-traffic on unmodeled hops) — the noise source
	// the Section 2 robustness concerns are about. Delivery order is
	// preserved (a jittered packet never overtakes its predecessor).
	JitterMax sim.Duration

	lastDelivery sim.Time

	// OnDrop, if set, observes every packet the queue rejects. Used by the
	// Section 2 study to record queue-level loss events.
	OnDrop func(p *Packet, now sim.Time)
	// OnEnqueue, if set, observes every packet the queue accepts (called
	// after the enqueue, so Queue.Len includes the packet).
	OnEnqueue func(p *Packet, now sim.Time)
	// OnDepart, if set, observes every packet as it finishes transmission.
	OnDepart func(p *Packet, now sim.Time)

	Stats LinkStats

	eng  *sim.Engine
	busy bool

	// Fault-injection state (impair.go): wire loss/dup/reorder, and the
	// up/down flag driven by LinkSchedule.
	impair      *Impairment
	impairStats ImpairStats
	down        bool
}

// Send offers a packet to the link's queue and starts the transmitter if it
// is idle. A down link blackholes the packet instead (see SetUp).
func (l *Link) Send(p *Packet) {
	now := l.eng.Now()
	l.Stats.Arrivals++
	acct := &l.From.net.acct
	if l.down {
		l.impairStats.Blackholed++
		l.Stats.Drops++
		acct.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		return
	}
	ce := p.CE
	if !l.Queue.Enqueue(p, now) {
		l.Stats.Drops++
		acct.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		return
	}
	// Disciplines mark only at enqueue time (the Discipline contract), so
	// comparing CE across the call counts every mark.
	if p.CE && !ce {
		l.Stats.Marks++
	}
	acct.Queued++
	if l.OnEnqueue != nil {
		l.OnEnqueue(p, now)
	}
	if !l.busy {
		l.serve()
	}
}

// serve dequeues the next packet and schedules its transmission completion.
func (l *Link) serve() {
	p := l.Queue.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	acct := &l.From.net.acct
	acct.Queued--
	acct.Transmitting++
	tx := l.txTime(p.Size)
	l.eng.After(tx, func() {
		l.Stats.TxPackets++
		l.Stats.TxBytes += uint64(p.Size)
		l.Stats.BusyTime += tx
		acct.Transmitting--
		if l.OnDepart != nil {
			l.OnDepart(p, l.eng.Now())
		}
		delay := l.Delay
		if l.JitterMax > 0 {
			delay += sim.Duration(l.eng.Rand().Int63n(int64(l.JitterMax)))
		}
		l.deliver(p, delay)
		l.serve()
	})
}

// txTime returns the serialization delay of size bytes at the link rate.
func (l *Link) txTime(size int) sim.Duration {
	return sim.Seconds(float64(size) * 8 / l.Capacity)
}

// Utilization returns the fraction of the window [from, to] the link spent
// transmitting, computed from a snapshot of TxBytes taken at the start of the
// window.
func (l *Link) Utilization(txBytesAtStart uint64, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	bits := float64(l.Stats.TxBytes-txBytesAtStart) * 8
	return bits / (l.Capacity * window.Seconds())
}

func (l *Link) String() string {
	return fmt.Sprintf("link %d->%d %.0fbps %v", l.From.ID, l.To.ID, l.Capacity, l.Delay)
}
