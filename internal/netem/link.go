package netem

import (
	"fmt"
	"sort"

	"pert/internal/sim"
)

// LinkStats are cumulative counters for one unidirectional link. Drops and
// Marks are attributed to the link's queue discipline; Arrivals counts every
// packet offered to the queue.
type LinkStats struct {
	Arrivals  uint64
	Drops     uint64
	Marks     uint64
	TxPackets uint64
	TxBytes   uint64
	BusyTime  sim.Duration
}

// DropRate returns the fraction of offered packets that were dropped.
func (s LinkStats) DropRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.Arrivals)
}

// Link is a unidirectional link with an output queue, a transmission rate,
// and a propagation delay. It models a single server: one packet transmits at
// a time; propagation overlaps with the next transmission.
type Link struct {
	From, To *Node
	Capacity float64 // bits per second; change mid-run via SetCapacity
	Delay    sim.Duration
	Queue    Discipline

	// JitterMax adds a uniform random extra propagation delay in
	// [0, JitterMax) per packet, modeling non-queueing delay variation
	// (wireless links, cross-traffic on unmodeled hops) — the noise source
	// the Section 2 robustness concerns are about. Delivery order is
	// preserved (a jittered packet never overtakes its predecessor).
	JitterMax sim.Duration

	lastDelivery sim.Time

	// OnDrop, if set, observes every packet the queue rejects. Used by the
	// Section 2 study to record queue-level loss events.
	OnDrop func(p *Packet, now sim.Time)
	// OnEnqueue, if set, observes every packet the queue accepts (called
	// after the enqueue, so Queue.Len includes the packet).
	OnEnqueue func(p *Packet, now sim.Time)
	// OnDepart, if set, observes every packet as it finishes transmission.
	OnDepart func(p *Packet, now sim.Time)

	Stats LinkStats

	eng  *sim.Engine
	dom  *domain // shard domain owning this link (its From node's domain)
	busy bool

	// Boundary-link state (domain.go): when the link's endpoints live in
	// different shard domains, deliveries cross through xport instead of
	// being posted on the local engine, and arrive on the receiving shard
	// via remoteArriveFn. Nil for intra-domain links — the serial path.
	xport          *sim.Port
	remoteArriveFn func(any)

	// Transmit-loop state. The link is a single server, so one persistent
	// timer plus a stashed in-flight packet replaces the per-transmission
	// closure the old serve loop allocated: a saturated link schedules its
	// completion and the packet's arrival with zero allocations per packet.
	txDone     *sim.Timer   // fires completeTx for the in-flight packet
	inFlight   *Packet      // packet currently occupying the server
	inFlightTx sim.Duration // its serialization delay
	arriveFn   func(any)    // bound arrival thunk reused by every delivery

	// capHist records capacity changes (SetCapacity) as breakpoints of the
	// running integral of capacity over time, so utilization windows that
	// span a LinkSchedule rate change divide by the true deliverable bits
	// rather than the instantaneous rate.
	capHist []capPoint

	// Fault-injection state (impair.go): wire loss/dup/reorder, and the
	// up/down flag driven by LinkSchedule.
	impair      *Impairment
	impairStats ImpairStats
	down        bool

	// Hybrid substrate state (fluidsource.go): a modeled background
	// aggregate sharing this link's queue. Nil on pure packet links —
	// every hook below is a nil check on that path.
	fluid *FluidSource

	// Schedule state (impair.go): the applied LinkSchedule plus the pending
	// event handles, kept so Partition can migrate the change events onto
	// the link's owning domain's engine (and reject Delay changes on
	// boundary links, whose lookahead is fixed at Connect time).
	sched       LinkSchedule
	schedEvents []*sim.Event
}

// capPoint is one breakpoint of the capacity integral: from at onward the
// link runs at rate bits/s, having accumulated bits of capacity over [0, at].
type capPoint struct {
	at   sim.Time
	bits float64
	rate float64
}

// Send offers a packet to the link's queue and starts the transmitter if it
// is idle. A down link blackholes the packet instead (see SetUp).
func (l *Link) Send(p *Packet) {
	now := l.eng.Now()
	l.Stats.Arrivals++
	acct := &l.dom.acct
	if l.down {
		l.impairStats.Blackholed++
		l.Stats.Drops++
		acct.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		l.dom.releasePacket(p)
		return
	}
	if l.fluid != nil && !l.fluid.admit(p) {
		// Shared-queue overflow: the modeled backlog plus the packet
		// queue has filled the buffer, so the packet is lost exactly as
		// a queue reject would lose it.
		l.Stats.Drops++
		acct.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		l.dom.releasePacket(p)
		return
	}
	ce := p.CE
	if !l.Queue.Enqueue(p, now) {
		l.Stats.Drops++
		acct.Dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		l.dom.releasePacket(p)
		return
	}
	// Disciplines mark only at enqueue time (the Discipline contract), so
	// comparing CE across the call counts every mark.
	if p.CE && !ce {
		l.Stats.Marks++
	}
	acct.Queued++
	if l.OnEnqueue != nil {
		l.OnEnqueue(p, now)
	}
	if !l.busy {
		l.serve()
	}
}

// serve dequeues the next packet and schedules its transmission completion
// on the link's persistent timer.
func (l *Link) serve() {
	p := l.Queue.Dequeue(l.eng.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	acct := &l.dom.acct
	acct.Queued--
	acct.Transmitting++
	tx := l.txTime(p.Size)
	l.inFlight, l.inFlightTx = p, tx
	l.txDone.ResetAfter(tx)
}

// completeTx finishes the in-flight packet's transmission and serves the
// next one. It is the hoisted body of the per-packet closure the transmit
// loop used to allocate.
func (l *Link) completeTx() {
	p, tx := l.inFlight, l.inFlightTx
	l.inFlight = nil
	l.Stats.TxPackets++
	l.Stats.TxBytes += uint64(p.Size)
	l.Stats.BusyTime += tx
	l.dom.acct.Transmitting--
	if l.OnDepart != nil {
		l.OnDepart(p, l.eng.Now())
	}
	delay := l.Delay
	if l.fluid != nil {
		// Real packets wait behind the modeled backlog: the fluid share
		// of the queueing delay rides on the propagation delay (the
		// FIFO floor in deliver preserves ordering as it shrinks).
		delay += l.fluid.extra
	}
	if l.JitterMax > 0 {
		delay += sim.Duration(l.eng.Rand().Int63n(int64(l.JitterMax)))
	}
	if l.xport != nil {
		l.deliverCross(p, delay)
	} else {
		l.deliver(p, delay)
	}
	l.serve()
}

// txTime returns the serialization delay of size bytes at the link rate.
func (l *Link) txTime(size int) sim.Duration {
	return sim.Seconds(float64(size) * 8 / l.Capacity)
}

// SetCapacity changes the link rate at the current simulation time,
// recording a breakpoint so utilization windows spanning the change stay
// exact. Mid-run capacity changes must go through here (LinkSchedule does);
// writing the Capacity field directly would silently skew Utilization over
// any window containing the change.
func (l *Link) SetCapacity(c float64) {
	if c <= 0 {
		panic("netem: non-positive link capacity")
	}
	now := l.eng.Now()
	if len(l.capHist) == 0 {
		// Seed the history with the construction-time rate so the
		// integral before the first change uses the original capacity.
		l.capHist = append(l.capHist, capPoint{at: 0, bits: 0, rate: l.Capacity})
	}
	l.capHist = append(l.capHist, capPoint{at: now, bits: l.capacityBits(now), rate: c})
	l.Capacity = c
}

// capacityBits returns the integral of link capacity over [0, t] in bits.
func (l *Link) capacityBits(t sim.Time) float64 {
	h := l.capHist
	if len(h) == 0 {
		return l.Capacity * t.Seconds()
	}
	i := sort.Search(len(h), func(i int) bool { return h[i].at > t }) - 1
	if i < 0 {
		i = 0
	}
	return h[i].bits + h[i].rate*(t-h[i].at).Seconds()
}

// UtilizationOver returns the fraction of the window [from, to] the link
// spent transmitting, given a snapshot of TxBytes taken at the start of the
// window. The denominator integrates the link rate over the window, so a
// SetCapacity change (e.g. an ext-flap LinkSchedule halving the rate
// mid-window) is weighted by how long each rate was in effect.
func (l *Link) UtilizationOver(txBytesAtStart uint64, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	capBits := l.capacityBits(to) - l.capacityBits(from)
	if capBits <= 0 {
		return 0
	}
	return float64(l.Stats.TxBytes-txBytesAtStart) * 8 / capBits
}

// Utilization returns the fraction of the most recent window of the given
// length the link spent transmitting, computed from a snapshot of TxBytes
// taken at the start of the window. The window ends at the current
// simulation time; links without an engine (hand-constructed in tests) are
// treated as constant-capacity.
func (l *Link) Utilization(txBytesAtStart uint64, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	if l.eng == nil || len(l.capHist) == 0 {
		bits := float64(l.Stats.TxBytes-txBytesAtStart) * 8
		return bits / (l.Capacity * window.Seconds())
	}
	now := l.eng.Now()
	return l.UtilizationOver(txBytesAtStart, now-window, now)
}

func (l *Link) String() string {
	return fmt.Sprintf("link %d->%d %.0fbps %v", l.From.ID, l.To.ID, l.Capacity, l.Delay)
}
