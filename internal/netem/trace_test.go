package netem

import (
	"bytes"
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, sim.Millisecond, 2)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Attach(ab)
	b.AttachFlow(1, &sink{})
	// 4 packets into a 2-packet queue + 1 in service: 1 drop.
	for i := 0; i < 4; i++ {
		p := &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000, Seq: int64(i)}
		net.SendFrom(a, p)
	}
	eng.Run(sim.Second)

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var enq, deq, drop int
	for _, l := range lines {
		switch l[0] {
		case '+':
			enq++
		case '-':
			deq++
		case 'd':
			drop++
		}
	}
	if enq != 3 || deq != 3 || drop != 1 {
		t.Fatalf("events: +%d -%d d%d\n%s", enq, deq, drop, out)
	}
	if tr.Events != 7 {
		t.Fatalf("event count = %d", tr.Events)
	}
	// Format spot check: "d <time> 0 1 tcp 1000 1 3 4 -".
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) != 10 {
			t.Fatalf("field count %d in %q", len(fields), l)
		}
		if fields[4] != "tcp" {
			t.Fatalf("kind = %q", fields[4])
		}
	}
}

func TestTracerFilter(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, 0, 100)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Filter = func(p *Packet) bool { return p.Flow == 2 }
	tr.Attach(ab)
	b.AttachFlow(1, &sink{})
	b.AttachFlow(2, &sink{})
	for i := 0; i < 3; i++ {
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 100})
		net.SendFrom(a, &Packet{ID: net.NewPacketID(), Flow: 2, Src: a.ID, Dst: b.ID, Size: 100})
	}
	eng.Run(sim.Second)
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(l, " 2 ") {
			t.Fatalf("filtered trace contains %q", l)
		}
	}
	if tr.Events != 6 { // 3 enqueues + 3 departs for flow 2
		t.Fatalf("events = %d", tr.Events)
	}
}

func TestTracerFlagsAndAckKind(t *testing.T) {
	eng := sim.NewEngine(1)
	net, a, b, ab := line(eng, 8e6, 0, 10)
	var buf bytes.Buffer
	NewTracer(&buf).Attach(ab)
	b.AttachFlow(1, &sink{})
	p := &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 40,
		IsAck: true, AckNo: 42, ECE: true}
	net.SendFrom(a, p)
	d := &Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1040,
		Seq: 7, CE: true, Retrans: true}
	net.SendFrom(a, d)
	eng.Run(sim.Second)
	out := buf.String()
	if !strings.Contains(out, "ack 40 1 42") {
		t.Fatalf("ack line missing: %s", out)
	}
	if !strings.Contains(out, " E\n") {
		t.Fatalf("ECE flag missing: %s", out)
	}
	if !strings.Contains(out, " CR\n") {
		t.Fatalf("CE+Retrans flags missing: %s", out)
	}
}
