package trafficgen

import (
	"testing"

	"pert/internal/sim"
)

func TestParallelConnsFetchConcurrently(t *testing.T) {
	eng, d := bed(21)
	ids := NewIDs()
	var maxOutstanding int
	s := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{
		MeanThink:      200 * sim.Millisecond,
		ObjectsPerPage: 6,
		ParallelConns:  3,
	}, 0)
	eng.Every(0, sim.Millisecond, func(sim.Time) {
		if s.outstanding > maxOutstanding {
			maxOutstanding = s.outstanding
		}
	})
	eng.Run(60 * sim.Second)
	if s.Pages < 10 {
		t.Fatalf("pages = %d", s.Pages)
	}
	if maxOutstanding != 3 {
		t.Fatalf("max outstanding = %d, want 3 (parallelism bound)", maxOutstanding)
	}
}

func TestParallelConnsFasterPages(t *testing.T) {
	run := func(par int) uint64 {
		eng, d := bed(22)
		ids := NewIDs()
		s := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{
			MeanThink:      100 * sim.Millisecond,
			ObjectsPerPage: 6,
			ParallelConns:  par,
		}, 0)
		eng.Run(120 * sim.Second)
		return s.Pages
	}
	seq := run(1)
	par := run(4)
	if par <= seq {
		t.Fatalf("parallel fetching completed %d pages vs %d sequential", par, seq)
	}
}

func TestSequentialDefaultUnchanged(t *testing.T) {
	// ParallelConns default 1 must behave sequentially: never more than one
	// transfer in flight.
	eng, d := bed(23)
	ids := NewIDs()
	s := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{MeanThink: 100 * sim.Millisecond}, 0)
	bad := false
	eng.Every(0, sim.Millisecond, func(sim.Time) {
		if s.outstanding > 1 {
			bad = true
		}
	})
	eng.Run(30 * sim.Second)
	if bad {
		t.Fatal("default config had concurrent transfers")
	}
	if s.Objects == 0 {
		t.Fatal("no progress")
	}
}
