package trafficgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

func TestParetoMeanAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var sum float64
	big := 0
	for i := 0; i < n; i++ {
		x := Pareto(rng, 1.5, 12)
		if x <= 0 {
			t.Fatal("non-positive Pareto draw")
		}
		if x > 120 {
			big++
		}
		sum += x
	}
	mean := sum / n
	if mean < 10 || mean > 14 {
		t.Fatalf("Pareto mean = %v, want ~12", mean)
	}
	// Heavy tail: P(X > 10*mean) = (xm/120)^1.5 = (4/120)^1.5 ~ 0.6%.
	frac := float64(big) / n
	if frac < 0.002 || frac > 0.02 {
		t.Fatalf("tail fraction = %v", frac)
	}
}

func TestParetoMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xm := 12.0 * (1.2 - 1) / 1.2
	for i := 0; i < 10000; i++ {
		if x := Pareto(rng, 1.2, 12); x < xm-1e-9 {
			t.Fatalf("draw %v below scale parameter %v", x, xm)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(Exponential(rng, sim.Second))
	}
	mean := sum / n
	if math.Abs(mean-float64(sim.Second)) > 0.02*float64(sim.Second) {
		t.Fatalf("mean = %v", sim.Duration(mean))
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		k := Geometric(rng, 3)
		if k < 1 {
			t.Fatal("geometric draw below 1")
		}
		sum += float64(k)
	}
	mean := sum / n
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
	if Geometric(rng, 1) != 1 || Geometric(rng, 0.5) != 1 {
		t.Fatal("degenerate mean must return 1")
	}
}

// Property: Uniform stays in range and IDs are unique and increasing.
func TestUniformAndIDsProperty(t *testing.T) {
	f := func(maxRaw uint32, n uint8) bool {
		rng := rand.New(rand.NewSource(9))
		max := sim.Duration(maxRaw)
		u := Uniform(rng, max)
		if max <= 0 {
			if u != 0 {
				return false
			}
		} else if u < 0 || u >= max {
			return false
		}
		ids := NewIDs()
		prev := 0
		for i := 0; i < int(n); i++ {
			id := ids.Next()
			if id <= prev {
				return false
			}
			prev = id
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func bed(seed int64) (*sim.Engine, *topo.Dumbbell) {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 20e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     4,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	return eng, d
}

func TestFTPFleetRunsAndShares(t *testing.T) {
	eng, d := bed(11)
	ids := NewIDs()
	flows := FTPFleet(d.Net, ids, d.Left, d.Right, 4, FTPConfig{
		CC:          func() tcp.CongestionControl { return tcp.Reno{} },
		StartWindow: 2 * sim.Second,
	})
	eng.Run(10 * sim.Second)
	snap := GoodputSnapshot(flows)
	eng.Run(40 * sim.Second)
	gps := Goodputs(flows, snap)
	var total float64
	for i, g := range gps {
		if g == 0 {
			t.Fatalf("flow %d moved no data", i)
		}
		total += g
	}
	// 30 s at 20 Mbps = 75 MB ceiling; flows should achieve most of it.
	if total < 0.6*75e6 {
		t.Fatalf("aggregate goodput = %v bytes", total)
	}
}

func TestWebSessionLifecycle(t *testing.T) {
	eng, d := bed(12)
	ids := NewIDs()
	cfg := WebConfig{MeanThink: 200 * sim.Millisecond}
	sessions := WebFleet(d.Net, ids, d.Left, d.Right, 8, cfg, sim.Second)
	eng.Run(60 * sim.Second)
	var pages, objects uint64
	for _, s := range sessions {
		pages += s.Pages
		objects += s.Objects
	}
	if pages < 100 {
		t.Fatalf("only %d pages in 60 s across 8 sessions", pages)
	}
	if objects < pages {
		t.Fatalf("objects %d < pages %d", objects, pages)
	}
	// Transfers complete and detach: the demux tables must not grow without
	// bound (each node hosts at most one in-flight flow per session).
	for _, s := range sessions {
		s.Stop()
	}
}

func TestWebSessionStopsCleanly(t *testing.T) {
	eng, d := bed(13)
	ids := NewIDs()
	s := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{MeanThink: 100 * sim.Millisecond}, 0)
	eng.Run(5 * sim.Second)
	s.Stop()
	pagesAtStop := s.Pages
	eng.Run(30 * sim.Second)
	if s.Pages > pagesAtStop+1 {
		t.Fatalf("session kept fetching after Stop: %d -> %d", pagesAtStop, s.Pages)
	}
}

func TestWebTrafficIsBursty(t *testing.T) {
	// Sanity-check the heavy tail reaches the wire: object sizes requested
	// over a long run should include some far above the mean.
	eng, d := bed(14)
	ids := NewIDs()
	s := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{MeanThink: 50 * sim.Millisecond}, 0)
	eng.Run(120 * sim.Second)
	if s.Objects < 50 {
		t.Fatalf("only %d objects", s.Objects)
	}
	meanSegs := float64(s.SegsRequested) / float64(s.Objects)
	if meanSegs < 5 || meanSegs > 60 {
		t.Fatalf("mean object = %v segs", meanSegs)
	}
}
