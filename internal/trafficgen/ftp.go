package trafficgen

import (
	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
)

// FTPConfig describes a fleet of long-term flows.
type FTPConfig struct {
	// CC builds one congestion controller per flow. Required.
	CC func() tcp.CongestionControl
	// Conn is the base connection config (ECN, payload, hooks); TotalSegs
	// is forced to 0 (unbounded).
	Conn tcp.Config
	// StartWindow staggers flow starts uniformly over [0, StartWindow),
	// the paper's (0, 50 s) rule scaled per experiment.
	StartWindow sim.Duration
	// StartAt offsets all starts (cohort arrivals in the Figure 12
	// experiment).
	StartAt sim.Time
}

// FTPFleet creates n unbounded flows from srcs[i%len] to dsts[i%len] with
// randomized start times and returns them.
func FTPFleet(net *netem.Network, ids *IDs, srcs, dsts []*netem.Node, n int, cfg FTPConfig) []*tcp.Flow {
	if cfg.CC == nil {
		panic("trafficgen: FTPConfig.CC is required")
	}
	rng := net.Engine().Rand()
	flows := make([]*tcp.Flow, 0, n)
	for i := 0; i < n; i++ {
		conn := cfg.Conn
		conn.TotalSegs = 0
		f := tcp.NewFlow(net, srcs[i%len(srcs)], dsts[i%len(dsts)], ids.Next(), cfg.CC(), conn)
		f.Start(cfg.StartAt + Uniform(rng, cfg.StartWindow))
		flows = append(flows, f)
	}
	return flows
}

// Goodputs returns each flow's delivered payload bytes since the given
// snapshot (use with GoodputSnapshot to window the measurement).
func Goodputs(flows []*tcp.Flow, since []uint64) []float64 {
	out := make([]float64, len(flows))
	for i, f := range flows {
		var base uint64
		if since != nil {
			base = since[i]
		}
		out[i] = float64(f.Sink.BytesGoodput - base)
	}
	return out
}

// GoodputSnapshot records each flow's delivered bytes for later windowing.
func GoodputSnapshot(flows []*tcp.Flow) []uint64 {
	out := make([]uint64, len(flows))
	for i, f := range flows {
		out[i] = f.Sink.BytesGoodput
	}
	return out
}
