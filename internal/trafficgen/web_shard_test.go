package trafficgen

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/topo"
)

// shardBed builds the test dumbbell on a two-shard group and cuts it at the
// bottleneck, so left hosts live in domain 0 and right hosts in domain 1.
func shardBed(t *testing.T, seed int64) (*sim.ShardGroup, *topo.Dumbbell) {
	t.Helper()
	g := sim.NewShardGroup(2, seed)
	net := netem.NewNetwork(g.Engine(0))
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 20e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     4,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	if err := net.Partition(g, d.PartitionHint(2)); err != nil {
		t.Fatal(err)
	}
	return g, d
}

// TestShardWebCrossDomain: web sessions whose source and destination live in
// different domains fetch pages through the lazy sink acceptor — sender-side
// state armed on the source's engine, sinks created on the destination's
// arrival path — and the run is deterministic at a fixed shard count. The
// -race run of this test covers the cross-domain arming paths end to end.
func TestShardWebCrossDomain(t *testing.T) {
	run := func() (pages, objects, segs uint64, c netem.Conservation) {
		g, d := shardBed(t, 21)
		ids := NewIDs()
		cfg := WebConfig{MeanThink: 100 * sim.Millisecond}
		sessions := WebFleet(d.Net, ids, d.Left, d.Right, 6, cfg, sim.Second)
		for _, s := range sessions {
			if s.src.Domain() == s.dst.Domain() {
				t.Fatal("fleet endpoints landed in one domain; the cut is wrong")
			}
		}
		g.Run(30 * sim.Second)
		if err := d.Net.Audit(); err != nil {
			t.Fatal(err)
		}
		for _, s := range sessions {
			pages += s.Pages
			objects += s.Objects
			segs += s.SegsRequested
		}
		return pages, objects, segs, d.Net.Conservation()
	}
	p1, o1, s1, c1 := run()
	if p1 < 20 {
		t.Fatalf("only %d pages in 30 s across 6 cross-domain sessions", p1)
	}
	if o1 < p1 {
		t.Fatalf("objects %d < pages %d", o1, p1)
	}
	p2, o2, s2, c2 := run()
	if p1 != p2 || o1 != o2 || s1 != s2 {
		t.Fatalf("cross-domain web run not deterministic: %d/%d/%d vs %d/%d/%d", p1, o1, s1, p2, o2, s2)
	}
	if c1.Injected != c2.Injected || c1.Delivered != c2.Delivered || c1.Dropped != c2.Dropped {
		t.Fatalf("ledgers differ across reps: %+v vs %+v", c1, c2)
	}
}

// TestShardWebNamespacedIDs: cross-domain sessions carve disjoint flow-ID
// namespaces at construction, so mid-run sink creation never touches the
// shared allocator and IDs cannot collide across sessions or with serial
// allocations from the parent.
func TestShardWebNamespacedIDs(t *testing.T) {
	_, d := shardBed(t, 22)
	ids := NewIDs()
	a := StartWebSession(d.Net, ids, d.Left[0], d.Right[0], WebConfig{}, 0)
	b := StartWebSession(d.Net, ids, d.Left[1], d.Right[1], WebConfig{}, 0)
	if !a.crossDomain || !b.crossDomain {
		t.Fatal("sessions are not cross-domain")
	}
	if a.ids == ids || b.ids == ids || a.ids == b.ids {
		t.Fatal("cross-domain sessions share an ID allocator")
	}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		for _, id := range []int{a.ids.Next(), b.ids.Next(), ids.Next()} {
			if seen[id] {
				t.Fatalf("flow ID %d allocated twice", id)
			}
			seen[id] = true
		}
	}
}
