package trafficgen

import (
	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
)

// WebConfig parameterizes a web session per the guidelines of Feldmann et
// al. [11]: pages arrive after exponential think times, each page carries a
// geometric number of objects, and object sizes are heavy-tailed (Pareto).
// Objects within a page are fetched sequentially over fresh TCP connections.
type WebConfig struct {
	MeanThink      sim.Duration // default 1 s
	ObjectsPerPage float64      // geometric mean; default 2
	ParetoShape    float64      // default 1.2
	MeanObjectSegs float64      // mean object size in segments; default 12
	// ParallelConns is how many objects of a page are fetched concurrently
	// (browsers use 2-6 connections per host). Default 1 (sequential, the
	// conservative classic model).
	ParallelConns int

	// CC builds the controller for each transfer; default Reno (web
	// background traffic is standard TCP in all the paper's experiments).
	CC func() tcp.CongestionControl
	// Conn is the base connection configuration for transfers.
	Conn tcp.Config

	// OnObject, when set, observes every completed object transfer with
	// its size and flow completion time — the user-facing web-latency
	// metric (see the ext-fct experiment).
	OnObject func(segs int64, fct sim.Duration)
}

func (c *WebConfig) applyDefaults() {
	if c.MeanThink == 0 {
		c.MeanThink = sim.Second
	}
	if c.ObjectsPerPage == 0 {
		c.ObjectsPerPage = 2
	}
	if c.ParetoShape == 0 {
		c.ParetoShape = 1.2
	}
	if c.MeanObjectSegs == 0 {
		c.MeanObjectSegs = 12
	}
	if c.ParallelConns == 0 {
		c.ParallelConns = 1
	}
	if c.CC == nil {
		c.CC = func() tcp.CongestionControl { return tcp.Reno{} }
	}
}

// WebSession alternates think times and page fetches between a client and a
// server node for the lifetime of the simulation.
type WebSession struct {
	net  *netem.Network
	eng  *sim.Engine
	ids  *IDs
	src  *netem.Node
	dst  *netem.Node
	cfg  WebConfig
	stop bool

	// crossDomain marks a session whose server lives in another shard
	// domain: transfers build only the sender side and let the server's
	// SinkAcceptor create the receiver lazily on its own shard.
	crossDomain bool

	// Stats.
	Pages         uint64
	Objects       uint64
	SegsRequested uint64

	remaining   int // objects left on the current page
	outstanding int // transfers currently in flight
}

// StartWebSession begins a session at time at. The session's timers and
// random draws run on the client node's owning engine, so on a partitioned
// network each session's randomness is shard-local (for an unpartitioned
// network src.Engine() is the network engine, as before). When client and
// server live in different domains the session switches to cross-domain
// mode at construction: it carves a private flow-ID namespace (the shared
// allocator cannot be touched mid-run from several shards) and installs a
// SinkAcceptor on the server so receive-side state is created lazily on the
// server's own shard.
func StartWebSession(net *netem.Network, ids *IDs, src, dst *netem.Node, cfg WebConfig, at sim.Time) *WebSession {
	cfg.applyDefaults()
	w := &WebSession{net: net, eng: src.Engine(), ids: ids, src: src, dst: dst, cfg: cfg}
	if src.Domain() != dst.Domain() {
		w.ids = ids.Namespace()
		w.crossDomain = true
		tcp.AcceptSinks(net, dst, cfg.Conn.Payload, cfg.Conn.DelAck)
	}
	w.eng.At(at, w.think)
	return w
}

// Stop ends the session after the in-flight object completes.
func (w *WebSession) Stop() { w.stop = true }

func (w *WebSession) think() {
	if w.stop {
		return
	}
	delay := Exponential(w.eng.Rand(), w.cfg.MeanThink)
	w.eng.After(delay, func() {
		if w.stop {
			return
		}
		w.Pages++
		w.remaining = Geometric(w.eng.Rand(), w.cfg.ObjectsPerPage)
		w.pump()
	})
}

// pump launches object transfers until the page's parallelism budget is
// filled, and returns to thinking when the page completes.
func (w *WebSession) pump() {
	if w.stop {
		return
	}
	if w.remaining == 0 && w.outstanding == 0 {
		w.think()
		return
	}
	for w.remaining > 0 && w.outstanding < w.cfg.ParallelConns {
		w.remaining--
		w.outstanding++
		w.fetchOne()
	}
}

// fetchOne transfers a single object over a fresh connection.
func (w *WebSession) fetchOne() {
	segs := int64(Pareto(w.eng.Rand(), w.cfg.ParetoShape, w.cfg.MeanObjectSegs))
	if segs < 1 {
		segs = 1
	}
	w.Objects++
	w.SegsRequested += uint64(segs)
	conn := w.cfg.Conn
	conn.TotalSegs = segs
	var f *tcp.Flow
	started := w.eng.Now()
	conn.OnComplete = func(done sim.Time) {
		if f.Sink != nil {
			f.Sink.Close()
		}
		w.outstanding--
		if w.cfg.OnObject != nil {
			w.cfg.OnObject(segs, done-started)
		}
		w.pump()
	}
	if w.crossDomain {
		// Sender side only: attaching a Sink to the remote node here would
		// race its shard. The server's SinkAcceptor builds the receiver
		// when the first data segment arrives.
		c := tcp.NewConn(w.net, w.src, w.dst.ID, w.ids.Next(), w.cfg.CC(), conn)
		f = &tcp.Flow{Conn: c}
	} else {
		f = tcp.NewFlow(w.net, w.src, w.dst, w.ids.Next(), w.cfg.CC(), conn)
	}
	f.Start(w.eng.Now())
}

// WebFleet starts n sessions between alternating (src, dst) pairs, each with
// a start time uniform in [0, startWindow).
func WebFleet(net *netem.Network, ids *IDs, srcs, dsts []*netem.Node, n int, cfg WebConfig, startWindow sim.Duration) []*WebSession {
	rng := net.Engine().Rand()
	out := make([]*WebSession, 0, n)
	for i := 0; i < n; i++ {
		s := StartWebSession(net, ids, srcs[i%len(srcs)], dsts[i%len(dsts)], cfg, Uniform(rng, startWindow))
		out = append(out, s)
	}
	return out
}
