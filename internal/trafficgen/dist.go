// Package trafficgen generates the paper's workloads: long-term FTP flows
// (infinite-backlog TCP) and bursty web sessions in the style of Feldmann et
// al. [11] — alternating exponential think times and heavy-tailed (Pareto)
// object transfers carried over real short TCP connections.
package trafficgen

import (
	"math"
	"math/rand"

	"pert/internal/sim"
)

// Pareto draws from a Pareto distribution with the given shape and mean
// (shape must exceed 1 for the mean to exist). Web object sizes are
// classically Pareto with shape 1.1-1.5.
func Pareto(rng *rand.Rand, shape, mean float64) float64 {
	if shape <= 1 {
		panic("trafficgen: Pareto shape must exceed 1")
	}
	xm := mean * (shape - 1) / shape
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/shape)
}

// Exponential draws a duration with the given mean.
func Exponential(rng *rand.Rand, mean sim.Duration) sim.Duration {
	return sim.Duration(rng.ExpFloat64() * float64(mean))
}

// Geometric draws a positive integer with the given mean (>= 1) via
// inversion: the number of objects on a web page.
func Geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	k := 1 + int(math.Floor(math.Log(u)/math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Uniform draws a duration uniformly from [0, max).
func Uniform(rng *rand.Rand, max sim.Duration) sim.Duration {
	if max <= 0 {
		return 0
	}
	return sim.Duration(rng.Int63n(int64(max)))
}

// IDs hands out unique flow identifiers across all generators in a scenario.
// The allocator is not goroutine-safe: on a sharded run, generators that
// allocate IDs mid-run (web sessions) must carve out a private Namespace at
// construction time instead of sharing this counter across shards.
type IDs struct {
	next int
	ns   int
}

// NewIDs returns an allocator starting at 1.
func NewIDs() *IDs { return &IDs{next: 1} }

// Next returns a fresh flow ID.
func (i *IDs) Next() int {
	id := i.next
	i.next++
	return id
}

// Namespace returns a fresh allocator whose IDs are disjoint from this one
// and from every other namespace carved from it: namespace k hands out IDs
// starting at k<<32, while the parent stays below 1<<32. Carve namespaces
// during single-threaded construction; the returned allocator is then owned
// by one shard goroutine.
func (i *IDs) Namespace() *IDs {
	i.ns++
	return &IDs{next: i.ns << 32}
}
