// Package topo builds the evaluation topologies of the paper: the single-
// bottleneck dumbbell used throughout Section 4, the six-router parking-lot
// of Figure 10, and the Section 2 trace-collection topology. Builders create
// nodes, links, and queues only; traffic (internal/tcp, internal/trafficgen)
// is attached by the caller.
package topo

import (
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
)

// QueueFactory builds one queue-discipline instance per link direction. The
// capacityPPS argument is the serving link's rate in packets per second
// (needed by RED/PI parameter rules); limit is the requested buffer size in
// packets.
type QueueFactory func(limit int, capacityPPS float64) netem.Discipline

// DumbbellConfig describes a single-bottleneck dumbbell: Hosts source hosts
// on the left, Hosts destination hosts on the right, two routers in the
// middle.
//
//	L0 ─┐                   ┌─ R0
//	L1 ─┤── R1 ══════ R2 ───├─ R1'
//	LN ─┘   (bottleneck)    └─ RN'
type DumbbellConfig struct {
	Bandwidth float64      // bottleneck rate, bits/s
	Delay     sim.Duration // bottleneck one-way propagation delay

	Hosts int // host pairs

	// RTTs lists the end-to-end (two-way) propagation delay per host pair;
	// access-link delays are derived to realize them. A single-element
	// slice applies to every pair. Each RTT must be at least 2*Delay.
	RTTs []sim.Duration

	AccessBandwidth float64 // per-host access rate; default 500 Mbps (paper Sec. 2)
	AccessBuffer    int     // access queue size in packets; default generous
	// AccessJitter adds uniform per-packet delay jitter in [0, AccessJitter)
	// on every access link (order-preserving), modeling the non-queueing
	// delay noise real paths have.
	AccessJitter sim.Duration

	// BufferPkts is the bottleneck buffer in packets. Zero applies the
	// paper's rule: bandwidth-delay product with a floor of 2*Hosts.
	BufferPkts int
	// MeanRTT is used for the BDP buffer rule when BufferPkts is zero;
	// defaults to the mean of RTTs.
	MeanRTT sim.Duration

	PktSize int // wire packet size for BDP accounting; default 1040

	// Queue builds the bottleneck queue (both directions). Required.
	Queue QueueFactory
}

// Dumbbell is a built single-bottleneck topology.
type Dumbbell struct {
	Net         *netem.Network
	Left, Right []*netem.Node
	R1, R2      *netem.Node
	Forward     *netem.Link // R1 -> R2, the instrumented bottleneck
	Reverse     *netem.Link // R2 -> R1
	BufferPkts  int
	CapacityPPS float64
}

// BDPPackets returns the bandwidth-delay product in packets for the given
// rate, two-way propagation delay, and packet size.
func BDPPackets(bandwidth float64, rtt sim.Duration, pktSize int) int {
	return int(bandwidth * rtt.Seconds() / (8 * float64(pktSize)))
}

// NewDumbbell builds the topology.
func NewDumbbell(net *netem.Network, cfg DumbbellConfig) *Dumbbell {
	if cfg.Queue == nil {
		panic("topo: DumbbellConfig.Queue is required")
	}
	if cfg.Hosts <= 0 {
		panic("topo: dumbbell needs at least one host pair")
	}
	if len(cfg.RTTs) == 0 {
		cfg.RTTs = []sim.Duration{60 * sim.Millisecond}
	}
	if cfg.AccessBandwidth == 0 {
		cfg.AccessBandwidth = 500e6
	}
	if cfg.PktSize == 0 {
		cfg.PktSize = 1040
	}
	if cfg.MeanRTT == 0 {
		var sum sim.Duration
		for _, r := range cfg.RTTs {
			sum += r
		}
		cfg.MeanRTT = sum / sim.Duration(len(cfg.RTTs))
	}
	if cfg.BufferPkts == 0 {
		bdp := BDPPackets(cfg.Bandwidth, cfg.MeanRTT, cfg.PktSize)
		cfg.BufferPkts = bdp
		if min := 2 * cfg.Hosts; cfg.BufferPkts < min {
			cfg.BufferPkts = min
		}
	}
	if cfg.AccessBuffer == 0 {
		cfg.AccessBuffer = 10000
	}

	pps := cfg.Bandwidth / (8 * float64(cfg.PktSize))
	d := &Dumbbell{Net: net, BufferPkts: cfg.BufferPkts, CapacityPPS: pps}
	d.R1, d.R2 = net.AddNode(), net.AddNode()
	d.Forward = net.AddLink(d.R1, d.R2, cfg.Bandwidth, cfg.Delay, cfg.Queue(cfg.BufferPkts, pps))
	d.Reverse = net.AddLink(d.R2, d.R1, cfg.Bandwidth, cfg.Delay, cfg.Queue(cfg.BufferPkts, pps))

	accessQ := func() netem.Discipline { return queue.NewDropTail(cfg.AccessBuffer) }
	for i := 0; i < cfg.Hosts; i++ {
		rtt := cfg.RTTs[i%len(cfg.RTTs)]
		access := accessDelay(rtt, cfg.Delay)
		l, r := net.AddNode(), net.AddNode()
		la, lb := net.AddDuplexLink(l, d.R1, cfg.AccessBandwidth, access, accessQ(), accessQ())
		ra, rb := net.AddDuplexLink(r, d.R2, cfg.AccessBandwidth, access, accessQ(), accessQ())
		for _, lk := range []*netem.Link{la, lb, ra, rb} {
			lk.JitterMax = cfg.AccessJitter
		}
		d.Left = append(d.Left, l)
		d.Right = append(d.Right, r)
	}
	net.ComputeRoutes()
	return d
}

// PartitionHint maps every node to one of shards domains for parallel
// simulation: R1 with the left hosts, R2 with the right hosts. A dumbbell
// has a single useful cut — the bottleneck itself — so any request above 2
// clamps to 2.
func (d *Dumbbell) PartitionHint(shards int) []int {
	assign := make([]int, len(d.Net.Nodes))
	if shards < 2 {
		return assign
	}
	assign[d.R2.ID] = 1
	for _, h := range d.Right {
		assign[h.ID] = 1
	}
	return assign
}

// accessDelay derives the per-side access-link delay that realizes the given
// end-to-end RTT across a bottleneck with one-way delay bd: each direction
// crosses two access links and the bottleneck.
func accessDelay(rtt sim.Duration, bd sim.Duration) sim.Duration {
	oneWay := rtt / 2
	a := (oneWay - bd) / 2
	if a < 0 {
		a = 0
	}
	return a
}
