package topo

import (
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
)

// ParkingLotConfig describes the Figure 10 multi-bottleneck topology: a chain
// of routers R1..Routers, each with a cloud of CloudSize hosts. Hosts in
// cloud i send to hosts in cloud i+1 (hop-by-hop traffic), and cloud 1
// additionally sends to the last cloud (through traffic crossing every core
// link).
type ParkingLotConfig struct {
	Routers   int          // number of core routers; the paper uses 6
	CloudSize int          // hosts per cloud; the paper uses 20
	CoreBW    float64      // core link rate; paper: 150 Mbps
	CoreDelay sim.Duration // core link one-way delay; paper: 5 ms
	EdgeBW    float64      // cloud attachment rate; paper: 1 Gbps
	EdgeDelay sim.Duration // cloud attachment delay; paper: 5 ms

	// EdgeDelays, when non-empty, overrides EdgeDelay per cloud: cloud i
	// attaches at EdgeDelays[i % len(EdgeDelays)]. This is how the
	// multi-bottleneck extension gives each cloud a different RTT without
	// perturbing the core chain.
	EdgeDelays []sim.Duration

	BufferPkts int // core queue size; zero = BDP of core link with 60 ms RTT
	PktSize    int // default 1040

	Queue QueueFactory // core queues (both directions). Required.
}

// ParkingLot is the built Figure 10 topology.
type ParkingLot struct {
	Net     *netem.Network
	Routers []*netem.Node
	Clouds  [][]*netem.Node
	// Forward[i] is the instrumented core link Routers[i] -> Routers[i+1].
	Forward []*netem.Link
	Reverse []*netem.Link

	BufferPkts  int
	CapacityPPS float64
}

// NewParkingLot builds the topology.
func NewParkingLot(net *netem.Network, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Queue == nil {
		panic("topo: ParkingLotConfig.Queue is required")
	}
	if cfg.Routers < 2 {
		panic("topo: parking lot needs at least two routers")
	}
	if cfg.CloudSize <= 0 {
		panic("topo: parking lot needs hosts in each cloud")
	}
	if cfg.CoreBW == 0 {
		cfg.CoreBW = 150e6
	}
	if cfg.CoreDelay == 0 {
		cfg.CoreDelay = 5 * sim.Millisecond
	}
	if cfg.EdgeBW == 0 {
		cfg.EdgeBW = 1e9
	}
	if cfg.EdgeDelay == 0 {
		cfg.EdgeDelay = 5 * sim.Millisecond
	}
	if cfg.PktSize == 0 {
		cfg.PktSize = 1040
	}
	if cfg.BufferPkts == 0 {
		cfg.BufferPkts = BDPPackets(cfg.CoreBW, 60*sim.Millisecond, cfg.PktSize)
	}

	pps := cfg.CoreBW / (8 * float64(cfg.PktSize))
	p := &ParkingLot{Net: net, BufferPkts: cfg.BufferPkts, CapacityPPS: pps}

	for i := 0; i < cfg.Routers; i++ {
		p.Routers = append(p.Routers, net.AddNode())
	}
	for i := 0; i+1 < cfg.Routers; i++ {
		fwd := net.AddLink(p.Routers[i], p.Routers[i+1], cfg.CoreBW, cfg.CoreDelay, cfg.Queue(cfg.BufferPkts, pps))
		rev := net.AddLink(p.Routers[i+1], p.Routers[i], cfg.CoreBW, cfg.CoreDelay, cfg.Queue(cfg.BufferPkts, pps))
		p.Forward = append(p.Forward, fwd)
		p.Reverse = append(p.Reverse, rev)
	}
	for i := 0; i < cfg.Routers; i++ {
		edgeDelay := cfg.EdgeDelay
		if len(cfg.EdgeDelays) > 0 {
			edgeDelay = cfg.EdgeDelays[i%len(cfg.EdgeDelays)]
		}
		cloud := make([]*netem.Node, cfg.CloudSize)
		for j := range cloud {
			h := net.AddNode()
			net.AddDuplexLink(h, p.Routers[i], cfg.EdgeBW, edgeDelay,
				queue.NewDropTail(10000), queue.NewDropTail(10000))
			cloud[j] = h
		}
		p.Clouds = append(p.Clouds, cloud)
	}
	net.ComputeRoutes()
	return p
}

// PartitionHint maps every node to one of shards domains for parallel
// simulation: router i and its cloud share a domain, and consecutive
// routers spread evenly across shards, so every partition cut falls on a
// core link — whose propagation delay is the lookahead bound. Requesting
// more shards than routers clamps to one router per shard.
func (p *ParkingLot) PartitionHint(shards int) []int {
	routers := len(p.Routers)
	if shards > routers {
		shards = routers
	}
	if shards < 1 {
		shards = 1
	}
	assign := make([]int, len(p.Net.Nodes))
	for i, r := range p.Routers {
		s := i * shards / routers
		assign[r.ID] = s
		for _, h := range p.Clouds[i] {
			assign[h.ID] = s
		}
	}
	return assign
}
