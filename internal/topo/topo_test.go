package topo

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
)

func dt(limit int, _ float64) netem.Discipline { return queue.NewDropTail(limit) }

func TestBDPPackets(t *testing.T) {
	// 100 Mbps * 60 ms / (8 * 1040 B) = 721 packets.
	got := BDPPackets(100e6, 60*sim.Millisecond, 1040)
	if got != 721 {
		t.Fatalf("BDP = %d, want 721", got)
	}
	if BDPPackets(1e6, 10*sim.Millisecond, 1040) != 1 {
		t.Fatalf("small BDP = %d", BDPPackets(1e6, 10*sim.Millisecond, 1040))
	}
}

func TestDumbbellStructure(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	d := NewDumbbell(net, DumbbellConfig{
		Bandwidth: 100e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     3,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue:     dt,
	})
	if len(d.Left) != 3 || len(d.Right) != 3 {
		t.Fatalf("hosts: %d/%d", len(d.Left), len(d.Right))
	}
	// 2 routers + 6 hosts.
	if len(net.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(net.Nodes))
	}
	if d.Forward.From != d.R1 || d.Forward.To != d.R2 {
		t.Fatal("forward link endpoints wrong")
	}
	if d.BufferPkts != 721 {
		t.Fatalf("BDP buffer = %d, want 721", d.BufferPkts)
	}
	if d.CapacityPPS < 12019 || d.CapacityPPS > 12020 {
		t.Fatalf("pps = %v", d.CapacityPPS)
	}
}

func TestDumbbellRealizesRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	rtts := []sim.Duration{60 * sim.Millisecond, 100 * sim.Millisecond}
	d := NewDumbbell(net, DumbbellConfig{
		Bandwidth: 1e9, // fast link: serialization negligible
		Delay:     20 * sim.Millisecond,
		Hosts:     2,
		RTTs:      rtts,
		Queue:     dt,
	})
	for i, want := range rtts {
		i, want := i, want
		// Ping: send a packet right and have a handler reflect it.
		var rtt sim.Duration
		sent := eng.Now()
		reflect := handlerFunc(func(p *netem.Packet, now sim.Time) {
			p.Src, p.Dst = p.Dst, p.Src
			net.SendFrom(d.Right[i], p)
		})
		catch := handlerFunc(func(p *netem.Packet, now sim.Time) { rtt = now - sent })
		d.Right[i].AttachFlow(100+i, reflect)
		d.Left[i].AttachFlow(100+i, catch)
		net.SendFrom(d.Left[i], &netem.Packet{ID: uint64(i), Flow: 100 + i, Src: d.Left[i].ID, Dst: d.Right[i].ID, Size: 40})
		eng.Run(eng.Now() + sim.Second)
		// Propagation RTT plus a few microseconds of serialization.
		if rtt < want || rtt > want+sim.Millisecond {
			t.Fatalf("pair %d: rtt = %v, want ~%v", i, rtt, want)
		}
	}
}

type handlerFunc func(p *netem.Packet, now sim.Time)

func (f handlerFunc) Receive(p *netem.Packet, now sim.Time) { f(p, now) }

func TestDumbbellBufferFloor(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	d := NewDumbbell(net, DumbbellConfig{
		Bandwidth: 1e6, // BDP ~7 packets
		Delay:     20 * sim.Millisecond,
		Hosts:     20,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue:     dt,
	})
	if d.BufferPkts < 40 {
		t.Fatalf("buffer %d below 2*hosts floor", d.BufferPkts)
	}
}

func TestDumbbellExplicitBuffer(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	d := NewDumbbell(net, DumbbellConfig{
		Bandwidth: 100e6, Delay: 20 * sim.Millisecond, Hosts: 1,
		RTTs: []sim.Duration{60 * sim.Millisecond}, BufferPkts: 123, Queue: dt,
	})
	if d.BufferPkts != 123 {
		t.Fatalf("buffer = %d", d.BufferPkts)
	}
}

func TestDumbbellValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	for name, cfg := range map[string]DumbbellConfig{
		"no queue": {Bandwidth: 1e6, Hosts: 1},
		"no hosts": {Bandwidth: 1e6, Queue: dt},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewDumbbell(net, cfg)
		}()
	}
}

func TestParkingLotStructure(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	p := NewParkingLot(net, ParkingLotConfig{
		Routers:   6,
		CloudSize: 4,
		Queue:     dt,
	})
	if len(p.Routers) != 6 || len(p.Clouds) != 6 {
		t.Fatalf("routers=%d clouds=%d", len(p.Routers), len(p.Clouds))
	}
	if len(p.Forward) != 5 || len(p.Reverse) != 5 {
		t.Fatalf("core links fwd=%d rev=%d", len(p.Forward), len(p.Reverse))
	}
	for i, l := range p.Forward {
		if l.From != p.Routers[i] || l.To != p.Routers[i+1] {
			t.Fatalf("core link %d endpoints wrong", i)
		}
	}
	// 6 routers + 24 hosts.
	if len(net.Nodes) != 30 {
		t.Fatalf("nodes = %d", len(net.Nodes))
	}
}

func TestParkingLotEndToEndPath(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	p := NewParkingLot(net, ParkingLotConfig{Routers: 6, CloudSize: 2, Queue: dt})
	src := p.Clouds[0][0]
	dst := p.Clouds[5][1]
	var arrived sim.Time
	dst.AttachFlow(1, handlerFunc(func(_ *netem.Packet, now sim.Time) { arrived = now }))
	net.SendFrom(src, &netem.Packet{ID: 1, Flow: 1, Src: src.ID, Dst: dst.ID, Size: 40})
	eng.Run(sim.Second)
	if arrived == 0 {
		t.Fatal("through packet never arrived")
	}
	// 2 edge hops (5 ms each) + 5 core hops (5 ms each) = 35 ms plus
	// serialization.
	want := 35 * sim.Millisecond
	if arrived < want || arrived > want+sim.Millisecond {
		t.Fatalf("arrival %v, want ~%v", arrived, want)
	}
}

func TestParkingLotValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	for name, cfg := range map[string]ParkingLotConfig{
		"no queue":    {Routers: 3, CloudSize: 2},
		"one router":  {Routers: 1, CloudSize: 2, Queue: dt},
		"empty cloud": {Routers: 3, CloudSize: 0, Queue: dt},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewParkingLot(net, cfg)
		}()
	}
}
