// Package harness orchestrates experiment runs: it executes registered
// experiments under a context, streams progress events (run lifecycle,
// sim-seconds per wallclock second, events processed, ETA) to a pluggable
// sink, recovers a panicking scenario into a per-run error instead of
// killing the whole sweep, and serializes every result table together with
// run metadata (scale, wall time, sim-event throughput, build version) into
// a stable JSON report.
//
// The CLIs (cmd/pertbench, cmd/pertsim) are thin wrappers over this
// package; programmatic users call Run directly:
//
//	rep, err := harness.Run(ctx, experiments.Experiments, experiments.Quick,
//		harness.Options{Workers: 4, Sink: harness.NewWriterSink(os.Stderr)})
//	if err != nil { ... }            // cancelled or timed out overall
//	for _, f := range rep.Failed() { // per-run failures don't abort the sweep
//		log.Printf("%s: %s", f.ID, f.Error)
//	}
//	rep.WriteJSON(os.Stdout)
//
// Experiments run sequentially (so per-run throughput deltas are
// attributable); scenarios inside one experiment fan out over
// Options.Workers. Results are bit-identical at any worker count because
// each scenario owns its engine and RNG.
package harness
