// Package harness orchestrates experiment runs: it executes registered
// experiments under a context, streams progress events (run lifecycle,
// sim-seconds per wallclock second, events processed, ETA) to a pluggable
// sink, recovers a panicking scenario into a per-run error instead of
// killing the whole sweep, and serializes every result table together with
// run metadata (scale, wall time, sim-event throughput, build version) into
// a stable JSON report.
//
// A sweep is described by a single RunSpec — the canonical serialized
// object that cmd/pertbench flags, cmd/pertsim flags, and scenario schema
// v2 files all compile into, and the object whose identity fields the
// content-addressed result cache (internal/cache) hashes. With a cache
// directory configured, the sweep partitions into hits (replayed without
// re-simulating, marked `cached` in the report) and misses (executed under
// a lockfile claim and committed atomically), so killed sweeps resume
// where they stopped and concurrent worker processes sharing the directory
// split the work between them.
//
// The CLIs (cmd/pertbench, cmd/pertsim) are thin wrappers over this
// package; programmatic users call Run directly:
//
//	rep, err := harness.Run(ctx, harness.RunSpec{
//		Experiments: []string{"fig5", "fig13"}, // empty = the whole registry
//		Scale:       string(experiments.Quick),
//		Workers:     4,
//		Sink:        harness.NewWriterSink(os.Stderr),
//		Cache:       harness.CachePolicy{Dir: "results/cache"},
//	})
//	if err != nil { ... }            // cancelled or invalid spec
//	for _, f := range rep.Failed() { // per-run failures don't abort the sweep
//		log.Printf("%s: %s", f.ID, f.Error)
//	}
//	rep.WriteJSON(os.Stdout)
//
// Experiments run sequentially (so per-run throughput deltas are
// attributable); scenarios inside one experiment fan out over
// RunSpec.Workers. Results are bit-identical at any worker count because
// each scenario owns its engine and RNG — which is also why worker counts
// and timeouts stay out of the cache key.
package harness
