package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"pert/internal/experiments"
)

// DecodeRunRecord parses a cached record.json blob strictly. Cache replay
// and fsck both route through it: anything a crash, a partial write, or a
// hand edit could plausibly produce — truncation, trailing garbage, NaN/Inf
// smuggled through a lenient reader, a missing identity — yields an error so
// the cell is evicted and recomputed instead of poisoning a report. It must
// never panic; FuzzDecodeRunRecord pins that.
func DecodeRunRecord(blob []byte) (RunRecord, error) {
	var rec RunRecord
	dec := json.NewDecoder(bytes.NewReader(blob))
	if err := dec.Decode(&rec); err != nil {
		return RunRecord{}, fmt.Errorf("decode record: %w", err)
	}
	// A committed record is exactly one JSON object; trailing bytes mean a
	// torn write that happened to leave a parsable prefix.
	if dec.More() {
		return RunRecord{}, errors.New("decode record: trailing data after JSON object")
	}
	if err := checkRecord(&rec); err != nil {
		return RunRecord{}, err
	}
	if rec.Tables == nil {
		rec.Tables = []*experiments.Table{}
	}
	return rec, nil
}

// ValidateRecord adapts DecodeRunRecord to the cache.Store.Fsck signature.
func ValidateRecord(blob []byte) error {
	_, err := DecodeRunRecord(blob)
	return err
}

func checkRecord(rec *RunRecord) error {
	if rec.ID == "" {
		return errors.New("record has no experiment id")
	}
	switch rec.Status {
	case StatusOK, StatusError, StatusTimeout, StatusStalled, StatusCrashed, StatusCanceled:
	case "":
		// Legacy pre-status records: health is derived from Error.
	default:
		return fmt.Errorf("record has unknown status %q", rec.Status)
	}
	if rec.Attempts < 0 {
		return fmt.Errorf("record has negative attempts %d", rec.Attempts)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"wall_seconds", rec.WallSeconds},
		{"events_per_second", rec.EventsPerSecond},
		{"sim_seconds", rec.SimSeconds},
		{"allocs_per_event", rec.AllocsPerEvent},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("record field %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("record field %s is negative", f.name)
		}
	}
	for _, t := range rec.Tables {
		if t == nil {
			return errors.New("record contains a null table")
		}
	}
	return nil
}
