package harness

import (
	"math/rand"
	"time"
)

// Retry defaults, used when a RetryPolicy enables retries but leaves the
// backoff knobs zero.
const (
	DefaultRetryBackoff    = 500 * time.Millisecond
	DefaultRetryMaxBackoff = 30 * time.Second
)

// RetryPolicy bounds how the supervisor re-runs failed cells. It is a
// mechanics field on RunSpec: it never participates in cache keys, so the
// same sweep with and without retries resolves to identical cells.
//
// Only transient verdicts are retried — error, timeout, stalled and crashed.
// A canceled cell (the user hit Ctrl-C) is never retried, and ok never
// re-runs.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed per cell,
	// including the first. 0 and 1 both mean "no retries".
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Backoff is the delay before the first retry; each subsequent retry
	// doubles it, capped at MaxBackoff. Zero means DefaultRetryBackoff.
	Backoff time.Duration `json:"backoff,omitempty"`
	// MaxBackoff caps the exponential growth. Zero means
	// DefaultRetryMaxBackoff.
	MaxBackoff time.Duration `json:"max_backoff,omitempty"`
}

// enabled reports whether the policy allows any retry at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// retryable reports whether a run verdict is worth re-running.
func retryable(status string) bool {
	switch status {
	case StatusError, StatusTimeout, StatusStalled, StatusCrashed:
		return true
	}
	return false
}

// backoff returns the jittered delay before retry attempt `attempt`
// (attempt 2 = first retry). Full-jitter-lite: uniform in [d/2, d] where d
// doubles per retry, so colliding workers decorrelate without ever retrying
// immediately.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = DefaultRetryMaxBackoff
	}
	d := base
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
