package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"pert/internal/experiments"
)

// EventKind discriminates sink events.
type EventKind string

// The lifecycle a sink observes for every run, in order: one RunStarted,
// zero or more Progress ticks, one RunFinished. When the retry policy
// re-runs a failed cell, a RunRetried event separates the attempts (so a
// cell may see several RunStarted/RunFinished pairs).
const (
	RunStarted  EventKind = "run_started"
	RunFinished EventKind = "run_finished"
	Progress    EventKind = "progress"
	RunRetried  EventKind = "run_retried"
)

// Event is one observation streamed to a Sink. Index/Total locate the run
// within the sweep; the measurement fields are populated for Progress and
// RunFinished events.
type Event struct {
	Kind  EventKind
	ID    string // experiment ID, e.g. "fig6"
	Index int    // 0-based position in the sweep
	Total int    // number of runs in the sweep

	Err          error                // RunFinished only; nil on success
	Status       string               // RunFinished only; a report Status* value
	Cached       bool                 // RunFinished only; replayed from the result cache
	Wall         time.Duration        // elapsed wallclock for this run so far
	SimEvents    uint64               // sim events attributed to this run so far
	EventsPerSec float64              // SimEvents / Wall
	SimSeconds   float64              // simulated seconds advanced by this run
	SimPerWall   float64              // SimSeconds per wallclock second
	ETA          time.Duration        // Progress only; estimated sweep time left, 0 if unknown
	Tables       []*experiments.Table // RunFinished only; nil on failure
	Attempt      int                  // RunRetried only; the attempt that just failed (1-based)
	Backoff      time.Duration        // RunRetried only; delay before the next attempt
}

// Sink receives events. The harness serializes calls through an internal
// mutex, so implementations need not be safe for concurrent use.
type Sink interface {
	Event(Event)
}

// lockedSink serializes Event calls: the harness emits from both the run
// goroutine and the progress ticker.
type lockedSink struct {
	mu sync.Mutex
	s  Sink
}

func (l *lockedSink) Event(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Event(e)
}

// WriterSink renders events as human-readable progress lines, one per
// event — the -progress output of cmd/pertbench.
type WriterSink struct {
	w io.Writer
}

// NewWriterSink returns a sink writing to w (typically os.Stderr).
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Event implements Sink.
func (s *WriterSink) Event(e Event) {
	pos := fmt.Sprintf("[%d/%d] %s", e.Index+1, e.Total, e.ID)
	switch e.Kind {
	case RunStarted:
		fmt.Fprintf(s.w, "%s: started\n", pos)
	case Progress:
		line := fmt.Sprintf("%s: %s, %s events (%s/s), sim %.1fs (%.1fx real time)",
			pos, e.Wall.Round(time.Second), count(e.SimEvents), count(uint64(e.EventsPerSec)),
			e.SimSeconds, e.SimPerWall)
		if e.ETA > 0 {
			line += fmt.Sprintf(", ETA %s", e.ETA.Round(time.Second))
		}
		fmt.Fprintln(s.w, line)
	case RunFinished:
		if e.Cached {
			if e.Err != nil {
				fmt.Fprintf(s.w, "%s: cached (FAILED: %v)\n", pos, e.Err)
				return
			}
			fmt.Fprintf(s.w, "%s: cached (%s events)\n", pos, count(e.SimEvents))
			return
		}
		if e.Status == StatusStalled {
			fmt.Fprintf(s.w, "%s: STALLED after %s: %v\n", pos, e.Wall.Round(time.Millisecond), e.Err)
			return
		}
		if e.Status == StatusCrashed {
			fmt.Fprintf(s.w, "%s: CRASHED after %s: %v\n", pos, e.Wall.Round(time.Millisecond), e.Err)
			return
		}
		if e.Status == StatusCanceled {
			fmt.Fprintf(s.w, "%s: canceled after %s\n", pos, e.Wall.Round(time.Millisecond))
			return
		}
		if e.Err != nil {
			fmt.Fprintf(s.w, "%s: FAILED after %s: %v\n", pos, e.Wall.Round(time.Millisecond), e.Err)
			return
		}
		fmt.Fprintf(s.w, "%s: done in %s (%s events, %s/s)\n",
			pos, e.Wall.Round(time.Millisecond), count(e.SimEvents), count(uint64(e.EventsPerSec)))
	case RunRetried:
		fmt.Fprintf(s.w, "%s: attempt %d ended %s, retrying in %s\n",
			pos, e.Attempt, e.Status, e.Backoff.Round(time.Millisecond))
	}
}

// count renders large event counts compactly (1234567 -> "1.2M").
func count(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}
