package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"pert/internal/cache"
	"pert/internal/experiments"
)

// TestMain makes the test binary triple-duty: a normal test runner, an
// isolated-cell worker (MaybeWorker, exactly like the real binaries), and —
// with PERT_TEST_MODE=sweep — a standalone sweep process the chaos tests can
// SIGKILL at random points.
func TestMain(m *testing.M) {
	workerResolveHook = chaosResolve
	MaybeWorker()
	if os.Getenv("PERT_TEST_MODE") == "sweep" {
		os.Exit(chaosSweepMain())
	}
	os.Exit(m.Run())
}

// chaosCells is the deterministic three-cell sweep the chaos suite runs:
// pure-Go LCG work with small sleeps, so every cell takes tens of
// milliseconds (a wide window for the killer) and produces byte-identical
// tables on every execution in any process.
func chaosCells() []experiments.Experiment {
	return []experiments.Experiment{
		chaosCell("chaos-a", 17),
		chaosCell("chaos-b", 23),
		chaosCell("chaos-c", 13),
	}
}

func chaosCell(id string, iters int) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "chaos harness cell",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			maybeCrashCell(id)
			v := uint64(len(id))
			for i := 0; i < iters; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				time.Sleep(2 * time.Millisecond)
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			tab := &experiments.Table{ID: id, Title: "chaos", Header: []string{"iters", "value"}}
			tab.AddRow(fmt.Sprint(iters), fmt.Sprint(v))
			return []*experiments.Table{tab}, nil
		},
	}
}

// chaosResolve lets re-exec'd workers find the chaos cells, which live in
// this test binary rather than the experiments registry.
func chaosResolve(id string) (experiments.Experiment, bool) {
	switch id {
	case "chaos-a":
		return chaosCell("chaos-a", 17), true
	case "chaos-b":
		return chaosCell("chaos-b", 23), true
	case "chaos-c":
		return chaosCell("chaos-c", 13), true
	case "chaos-hang":
		return experiments.Experiment{
			ID: "chaos-hang", Title: "ignores its context",
			Run: func(context.Context, experiments.Scale) ([]*experiments.Table, error) {
				time.Sleep(30 * time.Second) // deliberately uncancellable
				return nil, nil
			},
		}, true
	case "chaos-crash":
		return experiments.Experiment{
			ID: "chaos-crash", Title: "always dies",
			Run: func(context.Context, experiments.Scale) ([]*experiments.Table, error) {
				os.Exit(cache.CrashExitCode)
				return nil, nil
			},
		}, true
	}
	return experiments.Experiment{}, false
}

// maybeCrashCell implements PERT_TEST_CRASH_CELL="<id>:<marker>": the first
// process to run cell <id> writes the marker and dies abruptly; later
// attempts (the retry) run normally. Worker processes inherit the variable.
func maybeCrashCell(id string) {
	v := os.Getenv("PERT_TEST_CRASH_CELL")
	if v == "" {
		return
	}
	cellID, marker, ok := strings.Cut(v, ":")
	if !ok || cellID != id {
		return
	}
	if _, err := os.Stat(marker); err == nil {
		return
	}
	os.WriteFile(marker, []byte(id), 0o644)
	fmt.Fprintf(os.Stderr, "chaos: injected cell crash in %s\n", id)
	os.Exit(cache.CrashExitCode)
}

// chaosSweepMain is the re-exec'd sweep process: it runs the chaos cells
// against the cache named by PERT_TEST_CACHE and writes the report
// atomically to PERT_TEST_REPORT, so a SIGKILL can never leave a truncated
// report for the test to misread.
func chaosSweepMain() int {
	spec := RunSpec{
		Scale:   string(experiments.Quick),
		Cache:   CachePolicy{Dir: os.Getenv("PERT_TEST_CACHE")},
		Isolate: os.Getenv("PERT_TEST_ISOLATE") == "1",
	}
	if n, _ := strconv.Atoi(os.Getenv("PERT_TEST_RETRIES")); n > 0 {
		spec.Retry = RetryPolicy{MaxAttempts: n + 1, Backoff: time.Millisecond}
	}
	rep, runErr := RunExperiments(context.Background(), chaosCells(), spec)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	path := os.Getenv("PERT_TEST_REPORT")
	if path == "" {
		return 2
	}
	tmp := fmt.Sprintf("%s.%d.tmp", path, os.Getpid())
	f, err := os.Create(tmp)
	if err != nil {
		return 1
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		return 1
	}
	if runErr != nil {
		return 1
	}
	return 0
}

// sweepCmd builds the re-exec'd sweep process command.
func sweepCmd(cacheDir, reportPath string, isolate bool, extraEnv ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	env := append(os.Environ(),
		"PERT_TEST_MODE=sweep",
		"PERT_TEST_CACHE="+cacheDir,
		"PERT_TEST_REPORT="+reportPath,
	)
	if isolate {
		env = append(env, "PERT_TEST_ISOLATE=1")
	}
	cmd.Env = append(env, extraEnv...)
	cmd.Stderr = os.Stderr
	return cmd
}

// countCommitted walks the cache directory counting committed cells.
func countCommitted(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && d.Name() == "record.json" {
			n++
		}
		return nil
	})
	return n
}

// ownerAlive reports whether s (a lockfile body or the PID suffix of a
// staging dir name) names a live process.
func ownerAlive(s string) bool {
	pid, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || pid <= 0 {
		return false
	}
	return syscall.Kill(pid, 0) == nil
}

// waitQuiesce waits until no LIVE process holds a claim or staging dir in
// the cache and the committed count is stable — orphaned isolated workers
// outlive a SIGKILLed parent by design (they commit their cell harmlessly),
// and the test must not count cells while one is still running. Dead
// owners' debris (stale locks, orphaned tmp dirs) is exactly what resume
// and fsck exist to clean up, so it does not count as busy.
func waitQuiesce(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	stable, last := 0, -1
	for time.Now().Before(deadline) {
		busy := 0
		filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return nil
			}
			if strings.HasSuffix(path, ".lock") {
				if blob, err := os.ReadFile(path); err == nil && ownerAlive(string(blob)) {
					busy++
				}
			}
			if d.IsDir() && filepath.Dir(path) == filepath.Join(dir, "tmp") {
				if dot := strings.LastIndexByte(d.Name(), '.'); dot >= 0 && ownerAlive(d.Name()[dot+1:]) {
					busy++
				}
			}
			return nil
		})
		n := countCommitted(t, dir)
		if busy == 0 && n == last {
			stable++
			if stable >= 3 {
				return
			}
		} else {
			stable = 0
		}
		last = n
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("cache never quiesced after kill")
}

// chaosBaseline runs one uninterrupted sweep in a subprocess and returns its
// normalized report bytes.
func chaosBaseline(t *testing.T) []byte {
	t.Helper()
	report := filepath.Join(t.TempDir(), "report.json")
	cmd := sweepCmd(t.TempDir(), report, false)
	if err := cmd.Run(); err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	return normalizedReportFile(t, report)
}

func normalizedReportFile(t *testing.T, path string) []byte {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report %s: %v", path, err)
	}
	normalizeReport(&rep)
	return reportJSON(t, &rep)
}

func readReportFile(t *testing.T, path string) *Report {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestChaosKillResumeLoop is the ISSUE's headline acceptance test: a sweep
// process is killed at 20 random points — SIGKILL at a random delay, or an
// injected crash at one of the cache protocol sites, alternating process
// isolation on and off — and every time, fsck finds no corrupt committed
// cell and a clean rerun converges to a report byte-identical to the
// uninterrupted baseline, replaying every committed cell instead of
// re-simulating it.
func TestChaosKillResumeLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos loop is slow; skipped with -short")
	}
	baseline := chaosBaseline(t)
	// Every site a healthy sweep actually reaches; the release site only
	// fires on failure paths and is exercised by the cache package's own
	// crash tests.
	sites := []string{cache.CrashSiteClaim, cache.CrashSiteStage,
		cache.CrashSiteCommitStage, cache.CrashSiteCommitRename}
	rng := rand.New(rand.NewSource(7))
	total := len(chaosCells())

	for i := 0; i < 20; i++ {
		i := i
		t.Run(fmt.Sprintf("iter%02d", i), func(t *testing.T) {
			cacheDir := t.TempDir()
			report := filepath.Join(t.TempDir(), "report.json")
			isolate := i%2 == 1

			// Interrupt the sweep: every third iteration dies via an
			// injected crash at a cache protocol site, the rest by SIGKILL
			// at a random point of the sweep's lifetime.
			if i%3 == 2 {
				site := sites[(i/3)%len(sites)]
				cmd := sweepCmd(cacheDir, report, isolate, cache.CrashEnv+"="+site)
				err := cmd.Run()
				if !isolate {
					// The sweep process itself dies at the injected site.
					if code := cmd.ProcessState.ExitCode(); err == nil || code != cache.CrashExitCode {
						t.Fatalf("crash at %s: exit=%d err=%v, want %d", site, code, err, cache.CrashExitCode)
					}
				}
				// With isolation, the workers die instead and the parent
				// finishes with crashed cells — either way the cache must be
				// repairable and the rerun must converge.
			} else {
				delay := time.Duration(5+rng.Intn(250)) * time.Millisecond
				cmd := sweepCmd(cacheDir, report, isolate)
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				timer := time.AfterFunc(delay, func() { cmd.Process.Kill() })
				cmd.Wait()
				timer.Stop()
			}

			waitQuiesce(t, cacheDir)

			// No crash may ever leave a corrupt committed cell.
			store, err := cache.Open(cacheDir)
			if err != nil {
				t.Fatal(err)
			}
			fsck, err := store.Fsck(ValidateRecord)
			if err != nil {
				t.Fatal(err)
			}
			if fsck.Evicted != 0 {
				t.Fatalf("fsck evicted %d committed cells:\n%s",
					fsck.Evicted, strings.Join(fsck.Problems, "\n"))
			}
			committed := countCommitted(t, cacheDir)

			// A clean rerun must replay every committed cell, compute only
			// the rest, and match the uninterrupted baseline byte-for-byte.
			if err := sweepCmd(cacheDir, report, false).Run(); err != nil {
				t.Fatalf("resume sweep failed: %v", err)
			}
			rep := readReportFile(t, report)
			if rep.CacheHits != committed {
				t.Fatalf("resume replayed %d cells, %d were committed (re-simulated a warm cell)",
					rep.CacheHits, committed)
			}
			if rep.CacheHits+rep.CacheMisses != total {
				t.Fatalf("hits+misses = %d+%d, want %d", rep.CacheHits, rep.CacheMisses, total)
			}
			got := normalizedReportFile(t, report)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("resumed report differs from baseline:\n--- baseline\n%s\n--- resumed\n%s",
					baseline, got)
			}
		})
	}
}

// TestChaosCrashInjectedFsck is the single crash-injected fsck round CI's
// chaos-smoke job runs even under -short: die mid-commit, verify the debris
// (a stale claim and an orphaned staging dir, never a corrupt cell), repair
// with fsck, and converge on rerun.
func TestChaosCrashInjectedFsck(t *testing.T) {
	cacheDir := t.TempDir()
	report := filepath.Join(t.TempDir(), "report.json")
	cmd := sweepCmd(cacheDir, report, false, cache.CrashEnv+"="+cache.CrashSiteCommitStage)
	err := cmd.Run()
	if code := cmd.ProcessState.ExitCode(); err == nil || code != cache.CrashExitCode {
		t.Fatalf("exit=%d err=%v, want %d", code, err, cache.CrashExitCode)
	}
	store, err := cache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	fsck, err := store.Fsck(ValidateRecord)
	if err != nil {
		t.Fatal(err)
	}
	if fsck.Evicted != 0 {
		t.Fatalf("corrupt committed cell after mid-commit crash:\n%s", strings.Join(fsck.Problems, "\n"))
	}
	if fsck.ClaimsBroken != 1 || fsck.TmpReaped != 1 {
		t.Fatalf("fsck = %s, want 1 claim broken and 1 staging dir reaped", fsck.Summary())
	}
	if err := sweepCmd(cacheDir, report, false).Run(); err != nil {
		t.Fatalf("resume after fsck failed: %v", err)
	}
	got := normalizedReportFile(t, report)
	if want := chaosBaseline(t); !bytes.Equal(got, want) {
		t.Fatalf("post-fsck report differs from baseline:\n--- baseline\n%s\n--- got\n%s", want, got)
	}
}

// TestIsolatedSweepMatchesInProcess pins the acceptance criterion that
// isolation changes mechanics only: the same sweep with -isolate on and off
// produces byte-identical normalized reports (and identical cache cells,
// since mechanics never join the cache key).
func TestIsolatedSweepMatchesInProcess(t *testing.T) {
	spec := RunSpec{Scale: string(experiments.Quick), Cache: CachePolicy{Dir: t.TempDir()}}
	inproc, err := RunExperiments(context.Background(), chaosCells(), spec)
	if err != nil {
		t.Fatal(err)
	}
	iso := RunSpec{Scale: string(experiments.Quick), Cache: CachePolicy{Dir: t.TempDir()}, Isolate: true}
	isolated, err := RunExperiments(context.Background(), chaosCells(), iso)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range isolated.Runs {
		if r.Status != StatusOK {
			t.Fatalf("isolated run %s: %+v", r.ID, r)
		}
		if r.Attempts != 1 {
			t.Fatalf("isolated run %s attempts = %d, want 1", r.ID, r.Attempts)
		}
	}
	normalizeReport(inproc)
	normalizeReport(isolated)
	a, b := reportJSON(t, inproc), reportJSON(t, isolated)
	if !bytes.Equal(a, b) {
		t.Fatalf("isolated sweep differs from in-process:\n--- in-process\n%s\n--- isolated\n%s", a, b)
	}
}

// TestCrashOnceCellRetriesToBitIdentical is the other acceptance criterion:
// a cell that crashes its worker exactly once completes via retry, records
// the attempt count, and the sweep's results are bit-identical to a no-fault
// run.
func TestCrashOnceCellRetriesToBitIdentical(t *testing.T) {
	clean := RunSpec{Scale: string(experiments.Quick), Cache: CachePolicy{Dir: t.TempDir()}}
	baseline, err := RunExperiments(context.Background(), chaosCells(), clean)
	if err != nil {
		t.Fatal(err)
	}

	marker := filepath.Join(t.TempDir(), "crashed-once")
	t.Setenv("PERT_TEST_CRASH_CELL", "chaos-b:"+marker)
	spec := RunSpec{
		Scale:   string(experiments.Quick),
		Cache:   CachePolicy{Dir: t.TempDir()},
		Isolate: true,
		Retry:   RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	}
	rep, err := RunExperiments(context.Background(), chaosCells(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatal("injected crash never fired")
	}
	for _, r := range rep.Runs {
		if r.Status != StatusOK {
			t.Fatalf("run %s = %+v, want ok", r.ID, r)
		}
		want := 1
		if r.ID == "chaos-b" {
			want = 2
		}
		if r.Attempts != want {
			t.Fatalf("run %s attempts = %d, want %d", r.ID, r.Attempts, want)
		}
	}
	if rep.Retries != 1 {
		t.Fatalf("report retries = %d, want 1", rep.Retries)
	}
	normalizeReport(baseline)
	normalizeReport(rep)
	a, b := reportJSON(t, baseline), reportJSON(t, rep)
	if !bytes.Equal(a, b) {
		t.Fatalf("retried sweep differs from no-fault run:\n--- no-fault\n%s\n--- retried\n%s", a, b)
	}
}

// TestIsolationContainsWorkerCrash: a cell that always kills its process
// must cost exactly that cell, with the sweep carrying on.
func TestIsolationContainsWorkerCrash(t *testing.T) {
	crash, _ := chaosResolve("chaos-crash")
	exps := []experiments.Experiment{chaosCell("chaos-a", 17), crash, chaosCell("chaos-c", 13)}
	spec := RunSpec{Scale: string(experiments.Quick), Isolate: true}
	rep, err := RunExperiments(context.Background(), exps, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(rep.Runs))
	}
	if rep.Runs[1].Status != StatusCrashed {
		t.Fatalf("crashing cell status = %q, want %q (%+v)", rep.Runs[1].Status, StatusCrashed, rep.Runs[1])
	}
	if !strings.Contains(rep.Runs[1].Error, "died") {
		t.Fatalf("crash error not recorded: %q", rep.Runs[1].Error)
	}
	for _, i := range []int{0, 2} {
		if rep.Runs[i].Status != StatusOK {
			t.Fatalf("sweep did not survive the crash: run %d = %+v", i, rep.Runs[i])
		}
	}
}
