package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pert/internal/cache"
	"pert/internal/experiments"
)

// workerEnv marks a process as a cell worker: when set, MaybeWorker hijacks
// the process before flag parsing, runs the one cell described on stdin, and
// exits. The value is irrelevant; presence triggers worker mode.
const workerEnv = "PERT_WORKER_CELL"

// workerInput is the parent→worker handshake: the sweep spec (mechanics
// pre-cleared by forWorker), the single cell to run, and which attempt this
// is (recorded in the committed RunRecord).
type workerInput struct {
	Spec       RunSpec `json:"spec"`
	Experiment string  `json:"experiment"`
	Attempt    int     `json:"attempt"`
}

// workerResolveHook lets tests supply cells that are not in the experiments
// registry (the registry is a fixed slice; chaos-test cells live in the test
// binary). Consulted only after registry and scenario resolution fail.
var workerResolveHook func(id string) (experiments.Experiment, bool)

// MaybeWorker turns the process into a cell worker if workerEnv is set, and
// never returns in that case. Both binaries (and any test binary that wants
// isolated sweeps) must call it first thing in main, before flag parsing:
// the supervisor re-execs os.Executable with this variable set.
func MaybeWorker() {
	if os.Getenv(workerEnv) == "" {
		return
	}
	os.Exit(workerMain(os.Stdin, os.Stdout, os.Stderr))
}

// workerMain runs one cell: workerInput JSON on stdin, RunRecord JSON on
// stdout, human noise on stderr. Exit 0 means "the record on stdout is the
// verdict" — including error/timeout records; a non-zero exit means the
// worker itself broke and the supervisor should record the cell as crashed.
func workerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	var in workerInput
	if err := json.NewDecoder(stdin).Decode(&in); err != nil {
		fmt.Fprintf(stderr, "worker: bad input: %v\n", err)
		return 3
	}
	rec := runWorkerCell(context.Background(), in)
	if err := json.NewEncoder(stdout).Encode(rec); err != nil {
		fmt.Fprintf(stderr, "worker: encoding record: %v\n", err)
		return 3
	}
	return 0
}

// runWorkerCell executes the cell exactly like an in-process sweep would —
// same cache resolution, claim protocol, and commit — so the parent's only
// special handling is reading the record back instead of computing it.
func runWorkerCell(ctx context.Context, in workerInput) RunRecord {
	spec := in.Spec
	exp, ok := resolveCell(spec, in.Experiment)
	if !ok {
		return RunRecord{
			ID: in.Experiment, Title: "unknown experiment", Scale: string(spec.scale()),
			Status: StatusError, Attempts: in.Attempt,
			Error:  fmt.Sprintf("worker: cannot resolve cell %q", in.Experiment),
			Tables: []*experiments.Table{},
		}
	}
	var store *cache.Store
	if spec.Cache.enabled() {
		if s, err := cache.Open(spec.Cache.Dir); err == nil {
			if spec.Cache.StaleClaim > 0 {
				s.StaleClaim = spec.Cache.StaleClaim
			}
			store = s
		}
	}
	workers := spec.Workers
	if workers < 1 {
		workers = experiments.Workers(ctx)
	}
	ctx = experiments.WithWorkers(ctx, workers)
	return runCell(ctx, exp, spec, store, nil, 0, 1, 0, in.Attempt)
}

// resolveCell maps a cell ID back to a runnable experiment inside the worker
// process: the spec's inline scenario, the registry, then the test hook.
func resolveCell(spec RunSpec, id string) (experiments.Experiment, bool) {
	if spec.Scenario != nil && id == ScenarioCellID(spec.Scenario) {
		return scenarioExperiment(spec.Scenario), true
	}
	if exp, ok := experiments.ByID(id); ok {
		return exp, true
	}
	if workerResolveHook != nil {
		return workerResolveHook(id)
	}
	return experiments.Experiment{}, false
}

// forWorker derives the spec a worker receives: same identity and mechanics,
// but no recursion (a worker never isolates or retries — the parent owns
// both) and no runtime wiring (sinks don't serialize).
func (s RunSpec) forWorker() RunSpec {
	s.Isolate = false
	s.Retry = RetryPolicy{}
	s.Sink = nil
	s.ProgressInterval = 0
	return s
}
