package cliconfig

import (
	"flag"
	"io"
	"testing"
	"time"

	"pert/internal/harness"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSharedFlagsCompileToSpec(t *testing.T) {
	fs := newFS()
	b := New(fs)
	b.ScaleFlag()
	b.ExpFlag()
	b.MetricsDirFlag()
	b.SeedFlag(0)
	err := fs.Parse([]string{
		"-scale", "paper", "-exp", "fig5, fig13", "-parallel", "4",
		"-timeout", "2m", "-stall-window", "30s", "-seed", "9",
		"-metrics", "mdir", "-metrics-interval", "250ms",
		"-cache-dir", "cdir", "-cache", "read",
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := harness.RunSpec{
		Experiments:     []string{"fig5", "fig13"},
		Scale:           "paper",
		Seed:            9,
		MetricsInterval: 250 * time.Millisecond,
		Workers:         4,
		Timeout:         2 * time.Minute,
		StallWindow:     30 * time.Second,
		MetricsDir:      "mdir",
		Cache:           harness.CachePolicy{Dir: "cdir", Mode: harness.CacheRead},
	}
	if spec.Scale != want.Scale || spec.Seed != want.Seed || spec.Workers != want.Workers ||
		spec.Timeout != want.Timeout || spec.StallWindow != want.StallWindow ||
		spec.MetricsDir != want.MetricsDir || spec.MetricsInterval != want.MetricsInterval ||
		spec.Cache != want.Cache {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if len(spec.Experiments) != 2 || spec.Experiments[0] != "fig5" || spec.Experiments[1] != "fig13" {
		t.Fatalf("experiments = %v (whitespace not trimmed?)", spec.Experiments)
	}
	if !b.CacheRequested() {
		t.Fatal("CacheRequested = false")
	}
	if b.Seed() != 9 {
		t.Fatalf("Seed() = %d", b.Seed())
	}
}

func TestDefaultsAndAllExpansion(t *testing.T) {
	fs := newFS()
	b := New(fs)
	b.ScaleFlag()
	b.ExpFlag()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	spec, err := b.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Experiments != nil {
		t.Fatalf("-exp all must leave Experiments nil (whole registry), got %v", spec.Experiments)
	}
	if spec.Scale != "quick" || spec.Workers != 0 || spec.Cache.Dir != "" {
		t.Fatalf("defaults: %+v", spec)
	}
	if b.CacheRequested() {
		t.Fatal("CacheRequested without -cache-dir")
	}
	if b.Seed() != 0 {
		t.Fatalf("Seed() without SeedFlag = %d", b.Seed())
	}
}

func TestSpecValidates(t *testing.T) {
	fs := newFS()
	b := New(fs)
	b.ScaleFlag()
	if err := fs.Parse([]string{"-scale", "huge"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spec(); err == nil {
		t.Fatal("bad scale accepted")
	}

	fs = newFS()
	b = New(fs)
	if err := fs.Parse([]string{"-cache-dir", "d", "-cache", "sometimes"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Spec(); err == nil {
		t.Fatal("bad cache mode accepted")
	}
}

func TestCacheOffMode(t *testing.T) {
	fs := newFS()
	b := New(fs)
	if err := fs.Parse([]string{"-cache-dir", "d", "-cache", "off"}); err != nil {
		t.Fatal(err)
	}
	if b.CacheRequested() {
		t.Fatal("CacheRequested with -cache off")
	}
}
