// Package cliconfig is the shared flag-to-RunSpec builder for the CLIs:
// cmd/pertbench and cmd/pertsim register the same sweep-mechanics and cache
// flags here instead of duplicating the definitions, and both compile their
// parsed flags into the one canonical harness.RunSpec. Binary-specific
// flags (output formats, trace files) stay in the binaries.
package cliconfig

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"pert/internal/cache"
	"pert/internal/harness"
)

// Builder registers the shared harness flags on a FlagSet and, after
// parsing, compiles them into a harness.RunSpec. The optional *Flag methods
// opt a binary into flags it supports; they must be called before Parse.
type Builder struct {
	fs *flag.FlagSet

	parallel        *int
	shards          *int
	timeout         *time.Duration
	stallWindow     *time.Duration
	cacheDir        *string
	cacheMode       *string
	cacheFsck       *bool
	isolate         *bool
	retries         *int
	retryBackoff    *time.Duration
	metricsInterval *time.Duration
	cpuprofile      *string
	memprofile      *string

	scale      *string
	exp        *string
	metricsDir *string
	seed       *int64
}

// New registers the flags every harness CLI shares: sweep mechanics
// (-parallel, -timeout, -stall-window), the result cache (-cache-dir,
// -cache), -metrics-interval, and the profilers.
func New(fs *flag.FlagSet) *Builder {
	b := &Builder{fs: fs}
	b.parallel = fs.Int("parallel", 0, "simulation worker count for sweeps (0 = all cores)")
	b.shards = fs.Int("shards", 0, "shard count for the parallel in-scenario engine where supported (0/1 = serial); unlike -parallel this changes per-shard RNG streams, so shards>1 runs cache separately from serial runs")
	b.timeout = fs.Duration("timeout", 0, "per-run timeout (0 = none); a timed-out run fails, the sweep continues")
	b.stallWindow = fs.Duration("stall-window", 0, "no-progress watchdog window (0 = off); a run whose sim counters stop advancing this long is marked stalled, the sweep continues")
	b.cacheDir = fs.String("cache-dir", "", "content-addressed result cache: hits replay without simulating, misses commit atomically; killed sweeps resume, concurrent processes share the directory")
	b.cacheMode = fs.String("cache", "", "cache policy with -cache-dir: readwrite (default), read, write, or off")
	b.cacheFsck = fs.Bool("cache-fsck", false, "with -cache-dir: check and repair the cache (orphaned staging dirs, stale claims, corrupt record.json), print a summary, and exit instead of running a sweep")
	b.isolate = fs.Bool("isolate", false, "run each cell in its own worker process, so a crash (OOM kill, runtime fatal) loses one cell instead of the sweep")
	b.retries = fs.Int("retries", 0, "re-run cells that end error/timeout/stalled/crashed up to this many extra times, with exponential backoff")
	b.retryBackoff = fs.Duration("retry-backoff", 0, "base delay before the first retry (0 = 500ms); doubles per retry with jitter")
	b.metricsInterval = fs.Duration("metrics-interval", 0, "sampling period in sim time for -metrics (0 = 100ms)")
	b.cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	b.memprofile = fs.String("memprofile", "", "write an allocation profile to this file (go tool pprof)")
	return b
}

// ScaleFlag opts into -scale (quick/paper sweeps).
func (b *Builder) ScaleFlag() {
	b.scale = b.fs.String("scale", "quick", "experiment scale: quick or paper")
}

// ExpFlag opts into -exp (registry experiment selection).
func (b *Builder) ExpFlag() {
	b.exp = b.fs.String("exp", "all", "comma-separated experiment IDs (fig2..fig14, table1, ext-*) or 'all'")
}

// MetricsDirFlag opts into the directory form of -metrics (per-cell series
// trees). Binaries with a file-based -metrics of their own must not call it.
func (b *Builder) MetricsDirFlag() {
	b.metricsDir = b.fs.String("metrics", "", "write per-cell JSONL time series under this directory (DIR/<exp>/<cell>.jsonl, or the cache's series/ trees with -cache-dir); schema in EXPERIMENTS.md")
}

// SeedFlag opts into -seed with the binary's default.
func (b *Builder) SeedFlag(def int64) {
	b.seed = b.fs.Int64("seed", def, "RNG seed")
}

// Spec compiles the parsed flags into a validated RunSpec. Call after
// fs.Parse; the error is user-facing (bad scale, bad cache mode).
func (b *Builder) Spec() (harness.RunSpec, error) {
	spec := harness.RunSpec{
		Workers:         *b.parallel,
		Shards:          *b.shards,
		Timeout:         *b.timeout,
		StallWindow:     *b.stallWindow,
		MetricsInterval: *b.metricsInterval,
		Cache:           harness.CachePolicy{Dir: *b.cacheDir, Mode: *b.cacheMode},
		Isolate:         *b.isolate,
	}
	if *b.retries > 0 {
		spec.Retry = harness.RetryPolicy{
			MaxAttempts: *b.retries + 1,
			Backoff:     *b.retryBackoff,
		}
	}
	if b.scale != nil {
		spec.Scale = *b.scale
	}
	if b.seed != nil {
		spec.Seed = *b.seed
	}
	if b.metricsDir != nil {
		spec.MetricsDir = *b.metricsDir
	}
	if b.exp != nil && *b.exp != "all" {
		for _, id := range strings.Split(*b.exp, ",") {
			spec.Experiments = append(spec.Experiments, strings.TrimSpace(id))
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// StartProfiles starts the profilers the flags requested; the returned stop
// function writes and closes them (see harness.StartProfiles).
func (b *Builder) StartProfiles() (func() error, error) {
	return harness.StartProfiles(*b.cpuprofile, *b.memprofile)
}

// Seed returns the parsed -seed value (the binary's default when the flag
// was not opted into).
func (b *Builder) Seed() int64 {
	if b.seed == nil {
		return 0
	}
	return *b.seed
}

// MetricsInterval returns the parsed -metrics-interval value for binaries
// that also consume it outside the harness (pertsim's file-based -metrics).
func (b *Builder) MetricsInterval() time.Duration { return *b.metricsInterval }

// CacheRequested reports whether the user pointed the run at a cache
// directory (regardless of mode), so binaries whose code path cannot cache
// can reject the combination loudly instead of ignoring it.
func (b *Builder) CacheRequested() bool { return *b.cacheDir != "" && *b.cacheMode != harness.CacheOff }

// IsolateRequested reports whether -isolate was set, for binaries whose
// non-harness code paths cannot honor it.
func (b *Builder) IsolateRequested() bool { return *b.isolate }

// FsckRequested reports whether this invocation is a -cache-fsck repair run
// rather than a sweep.
func (b *Builder) FsckRequested() bool { return *b.cacheFsck }

// RunFsck opens the cache named by -cache-dir, repairs it with the harness's
// strict record validator, and prints the summary (plus one line per repair)
// to stdout. Returns the process exit code.
func (b *Builder) RunFsck(stdout, stderr io.Writer) int {
	if *b.cacheDir == "" {
		fmt.Fprintln(stderr, "-cache-fsck requires -cache-dir")
		return 2
	}
	store, err := cache.Open(*b.cacheDir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep, err := store.Fsck(harness.ValidateRecord)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, p := range rep.Problems {
		fmt.Fprintln(stdout, p)
	}
	fmt.Fprintf(stdout, "cache %s: %s\n", store.Dir(), rep.Summary())
	return 0
}
