package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"pert/internal/cache"
	"pert/internal/experiments"
)

// workerKillGrace pads the supervisor's per-cell deadline budget beyond the
// spec's own per-run Timeout: the worker enforces Timeout itself and reports
// a clean timeout record, so the parent only SIGKILLs workers that are too
// wedged to do even that. Overridable in tests.
var workerKillGrace = 10 * time.Second

// hardCancelKey carries a second, harsher cancellation context through the
// sweep context: soft cancel (the ctx passed to Run) drains in-flight
// workers, hard cancel SIGKILLs them. A context value rather than a
// parameter so Run's signature — and every test calling it — stays put.
type hardCancelKey struct{}

// WithHardCancel attaches hard as ctx's emergency-stop companion. When hard
// is canceled, isolated workers are SIGKILLed instead of drained.
func WithHardCancel(ctx, hard context.Context) context.Context {
	return context.WithValue(ctx, hardCancelKey{}, hard)
}

// hardDone returns the hard-cancel channel, or nil (blocks forever in a
// select) when no hard context is attached.
func hardDone(ctx context.Context) <-chan struct{} {
	if h, ok := ctx.Value(hardCancelKey{}).(context.Context); ok {
		return h.Done()
	}
	return nil
}

// NotifyShutdown wires SIGINT/SIGTERM into the two-stage shutdown protocol:
// the first signal cancels the returned context softly (the sweep drains the
// in-flight cell, flushes a partial report, and leaves the cache resumable),
// a second signal escalates to hard cancel (in-flight workers are SIGKILLed;
// their cache claims break by PID-death). The returned stop releases the
// signal handler; call it when the sweep finishes.
func NotifyShutdown(parent context.Context) (context.Context, context.CancelFunc) {
	soft, softCancel := context.WithCancel(parent)
	hard, hardCancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "interrupted: finishing in-flight cell, then writing a partial report (interrupt again to kill)")
			softCancel()
		case <-soft.Done():
			return
		}
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "interrupted again: killing in-flight workers")
			hardCancel()
		case <-hard.Done():
		}
	}()
	stop := func() {
		signal.Stop(ch)
		softCancel()
		hardCancel()
	}
	return WithHardCancel(soft, hard), stop
}

// runCellAttempts wraps one cell in the retry policy: execute (isolated or
// in-process), and while the verdict is transient — error, timeout, stalled,
// crashed — and attempts remain, back off with jitter and re-run. Cached
// replays and canceled cells never retry; cancellation during backoff
// returns the last verdict without burning the remaining attempts.
func runCellAttempts(ctx context.Context, exp experiments.Experiment, spec RunSpec,
	store *cache.Store, sink Sink, index, total int, doneWall time.Duration) RunRecord {

	maxAttempts := 1
	if spec.Retry.enabled() {
		maxAttempts = spec.Retry.MaxAttempts
	}
	for attempt := 1; ; attempt++ {
		var rec RunRecord
		if spec.Isolate {
			rec = runCellIsolated(ctx, exp, spec, store, sink, index, total, attempt)
		} else {
			rec = runCell(ctx, exp, spec, store, sink, index, total, doneWall, attempt)
		}
		if !rec.Cached && rec.Attempts == 0 {
			rec.Attempts = attempt
		}
		if rec.Cached || !retryable(rec.Status) || attempt >= maxAttempts {
			return rec
		}
		backoff := spec.Retry.backoff(attempt + 1)
		if sink != nil {
			sink.Event(Event{Kind: RunRetried, ID: exp.ID, Index: index, Total: total,
				Status: rec.Status, Err: errors.New(rec.Error), Attempt: attempt, Backoff: backoff})
		}
		select {
		case <-ctx.Done():
			return rec
		case <-time.After(backoff):
		}
	}
}

// runCellIsolated resolves one cell through a re-exec'd worker process.
// Replay still happens parent-side — warm sweeps never pay a process spawn,
// and a cache read cannot crash anything worth isolating — but claim,
// compute and commit all run in the child, so the claim's lockfile PID is
// the child's and a SIGKILLed cell breaks its own claim by PID-death.
func runCellIsolated(ctx context.Context, exp experiments.Experiment, spec RunSpec,
	store *cache.Store, sink Sink, index, total, attempt int) RunRecord {

	key := cellKey(spec, exp)
	if store != nil && key != "" && spec.Cache.reads() {
		if rec, ok := replayCell(store, key, exp, sink, index, total); ok {
			return rec
		}
	}
	if sink != nil {
		sink.Event(Event{Kind: RunStarted, ID: exp.ID, Index: index, Total: total})
	}
	start := time.Now()
	rec := superviseWorker(ctx, exp, spec, attempt)
	if rec.CacheKey == "" {
		rec.CacheKey = key
	}
	if sink != nil {
		var err error
		if rec.Error != "" {
			err = errors.New(rec.Error)
		}
		sink.Event(Event{
			Kind: RunFinished, ID: exp.ID, Index: index, Total: total,
			Err: err, Status: rec.Status, Wall: time.Since(start),
			SimEvents: rec.SimEvents, SimSeconds: rec.SimSeconds, Tables: rec.Tables,
		})
	}
	return rec
}

// superviseWorker spawns one worker process for the cell and adjudicates its
// exit: a clean exit yields the worker's own RunRecord; a death (OOM kill,
// fatal runtime error, injected crash) yields StatusCrashed; exceeding the
// deadline budget (spec.Timeout + workerKillGrace) yields StatusTimeout; a
// hard cancel SIGKILLs the worker's process group and yields StatusCanceled.
// Soft cancellation deliberately does not kill — the sweep loop stops
// starting new cells while the in-flight one drains.
func superviseWorker(ctx context.Context, exp experiments.Experiment, spec RunSpec, attempt int) RunRecord {
	fail := func(status, msg string) RunRecord {
		return RunRecord{ID: exp.ID, Title: exp.Title, Scale: string(spec.scale()),
			Status: status, Error: msg, Attempts: attempt, Tables: []*experiments.Table{}}
	}
	exe, err := os.Executable()
	if err != nil {
		return fail(StatusCrashed, fmt.Sprintf("harness: cannot locate worker executable: %v", err))
	}
	input, err := json.Marshal(workerInput{Spec: spec.forWorker(), Experiment: exp.ID, Attempt: attempt})
	if err != nil {
		return fail(StatusError, fmt.Sprintf("harness: cannot serialize worker input: %v", err))
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	cmd.Stdin = bytes.NewReader(input)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	// Own process group: a terminal Ctrl-C must reach only the parent (which
	// drains), and a hard kill can take the worker's whole subtree at once.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return fail(StatusCrashed, fmt.Sprintf("harness: starting worker: %v", err))
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()

	var budget <-chan time.Time
	if spec.Timeout > 0 {
		t := time.NewTimer(spec.Timeout + workerKillGrace)
		defer t.Stop()
		budget = t.C
	}
	hard := hardDone(ctx)
	kill := func() {
		syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		<-waitCh
	}
	select {
	case err := <-waitCh:
		wall := time.Since(start)
		if err != nil {
			rec := fail(StatusCrashed, fmt.Sprintf("harness: worker for %s died: %v", exp.ID, err))
			rec.WallSeconds = wall.Seconds()
			return rec
		}
		rec, derr := DecodeRunRecord(out.Bytes())
		if derr != nil {
			r := fail(StatusCrashed, fmt.Sprintf("harness: worker for %s returned garbage: %v", exp.ID, derr))
			r.WallSeconds = wall.Seconds()
			return r
		}
		return rec
	case <-budget:
		kill()
		rec := fail(StatusTimeout, fmt.Sprintf("harness: worker for %s exceeded deadline budget %s; killed",
			exp.ID, spec.Timeout+workerKillGrace))
		rec.WallSeconds = time.Since(start).Seconds()
		return rec
	case <-hard:
		kill()
		rec := fail(StatusCanceled, "harness: sweep killed while cell was in flight")
		rec.WallSeconds = time.Since(start).Seconds()
		return rec
	}
}
