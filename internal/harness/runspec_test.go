package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pert/internal/experiments"
	"pert/internal/scenario"
	"pert/internal/sim"
)

// goldenCodeVersion pins the code-version component so the digests below
// survive commits; live keys use Version() instead.
const goldenCodeVersion = "test"

// goldenCellKeys pins the cache key of every registry experiment at quick
// scale (seed 0, metrics off) under cacheKeySchema 1. A mismatch means the
// identity layout changed: bump cacheKeySchema and regenerate, or the field
// change was accidental — never silently update a digest without knowing
// which.
var goldenCellKeys = map[string]string{
	"fig2":              "c48a76caf0687419d047fd628a1042e0373b6a419ade360474f26175efd316f7",
	"fig3":              "d85e61078fa6283016b161c2575d88e51317eac43c63ebe57378fd61564f9dad",
	"fig4":              "414d6422a3b2816385c3e585fbf0424b7b7d203130573f123bbbc7c28d8a2cb1",
	"fig5":              "923b7ef2da3905ffd1d6879ffecca76b855dc6b77fc2bfc1ec880db5bd7693b2",
	"fig6":              "951f7f7d6b9ef5d308b89329fd6f1bd952778cee67e798d1fc3ac2100985d067",
	"fig7":              "fb912b57bc6b72c0b55d2bf072c67090ac46c10da8a860217423a0ce31bd6f74",
	"fig8":              "0d03c21b6719948744fcf1f924ee05ad5c18be87ea76af5b7b998730712a56cf",
	"fig9":              "b4233bc1cb6be3f7853a4fe92f8edef45b5c405093b9ff393f94f0bd783114d1",
	"fig11":             "3dd6e1e8b1aa323c763b54afcee6aacb8c25e6253b5926178130fe5063e064af",
	"fig12":             "cea06806dfeb4cb36749dabefa87c8f5de023124386bf7ffcecc7fb660eec3e8",
	"fig13":             "48f925defcdf51d2209cb35b7bedee8bd29fb5e73ed3b663732f2e01e2b1ed26",
	"fig14":             "64439967e2c73be9085c1dff9005c77883eed92d6519e9ca9949e11e3a24b67e",
	"ext-aqm":           "9b021083c83f45ba687ac8276232ecfe057fa7acda54bc48f528e2857f31a51f",
	"ext-coexist":       "6479ca32da67fd73e0b032cdab071b1817aac942ffa199536acb5a105f538057",
	"ext-delaycc":       "ab42fce10682afc0e665c629b2198247ceeebd7f5fd94a95c80ff7e98ce6bf14",
	"ext-fct":           "2768f9ea3371930175c86d387ea7d6a7754ad97388faf4170fc2f6198b8f2c1f",
	"ext-flap":          "0fe16bcecc05bd25a2871090ba901ef8b762934d047ff320c1d081d6bddc3998",
	"ext-highspeed":     "f657c15d19e258cd457dfe6d397badcacb9b9ea3043fcaab72a9c138931496ee",
	"ext-hybrid":        "16f20c684795d3702117338603a3b2023409879f9fe9c2dfc0fff4072506ab17",
	"ext-jitter":        "4af8917a19e0315116aee477e7c74daf511e3bf0fd5e1cbec71e86868cf55a3f",
	"ext-lossy":         "5018aabf3e40e96d05002e31508429db6b16e6cd70fcd0d829fcfa153972eacc",
	"ext-parkinglot-xl": "ac295134ee23ee5fd55f2b26ae1c0ac840618fd810cf2dd42f9fa528a333337a",
	"ext-replicated":    "33ab693d378f5579005cc92708626dcb3169ee0f4cdaeb0cf50eb439a1683959",
	"ext-stability":     "23c086c3d7c904218b3f080b21d53c19506df66196b791a8834737c69bf2e0d4",
	"ext-threshold":     "f89d51cb3fad5c8a8b38d3fc1d9d3307f2da39e656c835e76c70a504d43de0be",
	"ext-validation":    "1bfea074012168569a1a912ecb21981d47715455c259b44a5e822285ed0fedce",
	"table1":            "705213a2cb6dc5415f866f1c96a2268cafa7958fd469b4d67190433e31dd815a",
}

func TestGoldenCellKeys(t *testing.T) {
	spec := RunSpec{Scale: string(experiments.Quick)}
	ids := experiments.IDs()
	if len(ids) != len(goldenCellKeys) {
		t.Errorf("registry has %d experiments, golden map has %d — regenerate", len(ids), len(goldenCellKeys))
	}
	for _, id := range ids {
		got, err := spec.CellKey(id, goldenCodeVersion)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		want, ok := goldenCellKeys[id]
		if !ok {
			t.Errorf("%s: no golden key — regenerate the map", id)
			continue
		}
		if got != want {
			t.Errorf("%s: key %s, golden %s (identity layout changed? bump cacheKeySchema)", id, got, want)
		}
	}
}

func TestCellKeyIgnoresMechanics(t *testing.T) {
	base := RunSpec{Scale: string(experiments.Quick)}
	baseKey, err := base.CellKey("fig6", goldenCodeVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Mechanics and runtime wiring must not move the key: results are
	// bit-identical across all of these by the engine's determinism contract.
	same := []RunSpec{
		{Scale: "quick"}, // explicit quick == default
		{Scale: "quick", Workers: 7},
		{Scale: "quick", Timeout: time.Minute, StallWindow: time.Second},
		{Scale: "quick", Sink: NewWriterSink(nil), ProgressInterval: time.Second},
		{Scale: "quick", Cache: CachePolicy{Dir: "/elsewhere", Mode: CacheRead}},
		{Scale: "quick", MetricsInterval: time.Second}, // interval without metrics on
	}
	for i, s := range same {
		k, err := s.CellKey("fig6", goldenCodeVersion)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if k != baseKey {
			t.Errorf("spec %d moved the key: %s vs %s", i, k, baseKey)
		}
	}
	// Identity fields must move it.
	different := []RunSpec{
		{Scale: string(experiments.Paper)},
		{Scale: "quick", Seed: 42},
		{Scale: "quick", MetricsDir: "m"},
		{Scale: "quick", MetricsDir: "m", MetricsInterval: time.Second},
	}
	seen := map[string]int{baseKey: -1}
	for i, s := range different {
		k, err := s.CellKey("fig6", goldenCodeVersion)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %d and %d share a key", i, prev)
		}
		seen[k] = i
	}
	// The metrics *location* is not identity — only the on/off switch is.
	a, _ := RunSpec{Scale: "quick", MetricsDir: "m1"}.CellKey("fig6", goldenCodeVersion)
	b, _ := RunSpec{Scale: "quick", MetricsDir: "m2"}.CellKey("fig6", goldenCodeVersion)
	if a != b {
		t.Error("metrics directory location moved the key")
	}
	// Different experiments and code versions never collide.
	if k, _ := base.CellKey("fig7", goldenCodeVersion); k == baseKey {
		t.Error("fig6 and fig7 share a key")
	}
	if k, _ := base.CellKey("fig6", "other-version"); k == baseKey {
		t.Error("code version not in the key")
	}
}

// TestShardsCellKeys: shards 0 and 1 are both the serial engine and must
// share cells (with each other and with pre-shards specs); shards > 1 is a
// different execution — per-shard RNG streams — and must never collide with
// serial cells or with other shard counts. Same contract for inline
// scenarios, where the count lives in the spec.
func TestShardsCellKeys(t *testing.T) {
	key := func(s RunSpec) string {
		k, err := s.CellKey("ext-parkinglot-xl", goldenCodeVersion)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	serial := key(RunSpec{Scale: "quick"})
	if k := key(RunSpec{Scale: "quick", Shards: 1}); k != serial {
		t.Error("shards=1 forked the serial cell key")
	}
	k4, k8 := key(RunSpec{Scale: "quick", Shards: 4}), key(RunSpec{Scale: "quick", Shards: 8})
	if k4 == serial || k8 == serial {
		t.Error("sharded run shares a cell with the serial run")
	}
	if k4 == k8 {
		t.Error("shards=4 and shards=8 share a cell")
	}

	scen := func(shards int) string {
		sp := scenario.Spec{
			Name: "xl",
			Seed: 1,
			Topology: scenario.TopologySpec{
				Template: scenario.ParkingLotTemplate, Routers: 4, CloudSize: 4,
			},
			Groups: []scenario.FlowGroupSpec{
				{Scheme: "PERT", Count: 2, From: "cloud1", To: "cloud4"},
			},
			Duration: 10 * sim.Second,
			Shards:   shards,
		}
		k, err := RunSpec{Scale: "quick", Scenario: &sp}.ScenarioKey(goldenCodeVersion)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if scen(0) != scen(1) {
		t.Error("scenario shards=0 and shards=1 hash differently")
	}
	if scen(0) == scen(4) {
		t.Error("sharded scenario shares a cell with the serial scenario")
	}
}

// TestScenarioKeyCanonicalJSON is the property test of the ISSUE: two
// semantically identical v2 documents — fields reordered, defaults elided,
// durations spelled differently — must hash to the same cell.
func TestScenarioKeyCanonicalJSON(t *testing.T) {
	// docA leans on defaults: aqm from the first group's scheme, traffic
	// kind ftp, measure_until = duration.
	docA := `{
		"name": "prop",
		"seed": 7,
		"duration": "20s",
		"measure_from": "5s",
		"topology": {"template": "dumbbell", "bandwidth_bps": 10e6},
		"groups": [{"scheme": "PERT", "count": 4, "from": "left", "to": "right"}]
	}`
	// Same scenario with everything explicit: keys reordered, durations
	// spelled in milliseconds, numeric literal style changed, every default
	// docA elides written out.
	docB := `{
		"groups": [{"count": 4, "to": "right", "from": "left", "scheme": "PERT", "traffic": "ftp", "start_at": "0s"}],
		"topology": {"aqm": "PERT", "bandwidth_bps": 10000000, "template": "dumbbell"},
		"measure_from": "5000ms",
		"measure_until": "20000ms",
		"duration": "20000ms",
		"seed": 7,
		"name": "prop"
	}`
	keyOf := func(doc string) string {
		t.Helper()
		sp, err := scenario.Load(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		k, err := RunSpec{Scenario: &sp}.ScenarioKey(goldenCodeVersion)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	if keyOf(docA) != keyOf(docB) {
		t.Fatal("semantically identical v2 documents hashed differently")
	}
	// A real semantic change must move the key.
	docC := strings.Replace(docA, `"count": 4`, `"count": 5`, 1)
	if keyOf(docA) == keyOf(docC) {
		t.Fatal("different scenarios share a key")
	}
}

func TestScenarioKeyRejectsGoOnlyOverrides(t *testing.T) {
	sp := &scenario.Spec{
		Duration: 20 * 1e9,
		Topology: scenario.TopologySpec{Template: scenario.DumbbellTemplate, Bandwidth: 10e6},
		Groups:   []scenario.FlowGroupSpec{{Scheme: "PERT", Count: 2, From: "left", To: "right"}},
		Env:      &scenario.Env{},
	}
	if _, err := (RunSpec{Scenario: sp}).ScenarioKey(goldenCodeVersion); err == nil {
		t.Fatal("Env override produced a key")
	}
	if _, err := (RunSpec{}).ScenarioKey(goldenCodeVersion); err == nil {
		t.Fatal("nil scenario produced a key")
	}
}

func TestRunSpecJSONRoundTripOmitsWiring(t *testing.T) {
	spec := RunSpec{
		Experiments:      []string{"fig5"},
		Scale:            "quick",
		Workers:          3,
		Sink:             NewWriterSink(nil),
		ProgressInterval: time.Second,
		Cache:            CachePolicy{Dir: "d", StaleClaim: time.Minute},
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, banned := range []string{"Sink", "sink", "ProgressInterval", "progress", "StaleClaim", "stale"} {
		if strings.Contains(s, banned) {
			t.Errorf("serialized spec leaked runtime wiring %q: %s", banned, s)
		}
	}
	var back RunSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale != "quick" || back.Workers != 3 || back.Cache.Dir != "d" || len(back.Experiments) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestRunSpecValidate(t *testing.T) {
	if err := (RunSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if err := (RunSpec{Scale: "huge"}).Validate(); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := (RunSpec{Cache: CachePolicy{Dir: "d", Mode: "sometimes"}}).Validate(); err == nil {
		t.Fatal("bad cache mode accepted")
	}
	if err := (RunSpec{Scenario: &scenario.Spec{}}).Validate(); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestCachePolicyModes(t *testing.T) {
	cases := []struct {
		p             CachePolicy
		enabled, r, w bool
	}{
		{CachePolicy{}, false, false, false},
		{CachePolicy{Dir: "d"}, true, true, true},
		{CachePolicy{Dir: "d", Mode: CacheReadWrite}, true, true, true},
		{CachePolicy{Dir: "d", Mode: CacheRead}, true, true, false},
		{CachePolicy{Dir: "d", Mode: CacheWrite}, true, false, true},
		{CachePolicy{Dir: "d", Mode: CacheOff}, false, false, false},
		{CachePolicy{Mode: CacheReadWrite}, false, false, false},
	}
	for i, c := range cases {
		if c.p.enabled() != c.enabled || c.p.reads() != c.r || c.p.writes() != c.w {
			t.Errorf("case %d (%+v): enabled=%v reads=%v writes=%v",
				i, c.p, c.p.enabled(), c.p.reads(), c.p.writes())
		}
	}
}
