package harness

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pert/internal/cache"
	"pert/internal/experiments"
	"pert/internal/scenario"
	"pert/internal/sim"
)

// Cache policy modes. The zero value ("") behaves as CacheReadWrite.
const (
	CacheReadWrite = "readwrite" // replay hits, commit misses (default)
	CacheRead      = "read"      // replay hits, never commit
	CacheWrite     = "write"     // always recompute, commit results
	CacheOff       = "off"       // ignore the cache directory entirely
)

// CachePolicy selects how a sweep uses the content-addressed result store.
// An empty Dir disables caching regardless of Mode.
type CachePolicy struct {
	// Dir is the cache root directory, shared freely between concurrent
	// worker processes (cells are claimed via lockfiles).
	Dir string `json:"dir,omitempty"`
	// Mode is one of "", "readwrite", "read", "write", "off".
	Mode string `json:"mode,omitempty"`
	// StaleClaim overrides cache.DefaultStaleClaim for in-flight cell
	// claims; 0 keeps the default. Runtime tuning, not serialized.
	StaleClaim time.Duration `json:"-"`
}

func (p CachePolicy) enabled() bool { return p.Dir != "" && p.Mode != CacheOff }
func (p CachePolicy) reads() bool {
	return p.enabled() && (p.Mode == "" || p.Mode == CacheReadWrite || p.Mode == CacheRead)
}
func (p CachePolicy) writes() bool {
	return p.enabled() && (p.Mode == "" || p.Mode == CacheReadWrite || p.Mode == CacheWrite)
}

func (p CachePolicy) validate() error {
	switch p.Mode {
	case "", CacheReadWrite, CacheRead, CacheWrite, CacheOff:
		return nil
	}
	return fmt.Errorf("harness: unknown cache mode %q (want %s, %s, %s or %s)",
		p.Mode, CacheReadWrite, CacheRead, CacheWrite, CacheOff)
}

// RunSpec is the single canonical description of one harness invocation —
// the struct that pertbench flags, pertsim flags, and scenario schema v2
// files all compile into, replacing the old Options struct and per-binary
// flag plumbing. Its serialized form (plain encoding/json) is also the
// object the result cache hashes: the "cell identity" fields below are
// folded into every cell's cache key, while the "mechanics" fields only
// shape how cells execute (results are bit-identical across them, a
// determinism contract the engine tests pin) and the "runtime wiring"
// fields never serialize at all.
type RunSpec struct {
	// Cell identity — hashed into cache keys.

	// Experiments lists registry experiment IDs to run, in order. Empty
	// means the whole registry when Scenario is nil, and no registry cells
	// otherwise.
	Experiments []string `json:"experiments,omitempty"`
	// Scenario is an optional inline declarative cell (schema v2): the
	// validated spec runs through experiments.RunScenario as the sweep's
	// final cell. Its cache key hashes the whole canonicalized spec.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Scale selects experiment sizing; "" means quick.
	Scale string `json:"scale,omitempty"`
	// Seed is the sweep's base RNG seed. Registry experiments use fixed
	// internal seeds today, so for them it only distinguishes cache cells;
	// inline scenarios carry their own seed inside the spec.
	Seed int64 `json:"seed,omitempty"`
	// MetricsInterval overrides the time-series sampling period (0 = the
	// experiments package default, 100 ms of sim time). Part of the cell
	// identity because it changes the series files a cell produces.
	MetricsInterval time.Duration `json:"metrics_interval,omitempty"`
	// Shards requests the sharded parallel engine for cells that support
	// it (experiments that consult experiments.ShardsFrom, and inline
	// scenarios — pertsim folds the flag into the scenario spec instead).
	// Unlike Workers, sharding is a *different execution* — each shard has
	// its own RNG stream — so values above 1 join the cell identity; 0 and
	// 1 are both the serial engine and hash identically.
	Shards int `json:"shards,omitempty"`

	// Mechanics — how cells execute; never hashed.

	// Workers bounds in-experiment scenario parallelism; <1 means the
	// context's worker count (GOMAXPROCS unless overridden).
	Workers int `json:"workers,omitempty"`
	// Timeout bounds each individual run; 0 means none. A timed-out run
	// records an error and the sweep continues.
	Timeout time.Duration `json:"timeout,omitempty"`
	// StallWindow arms the no-progress watchdog: if the process-wide sim
	// event counters do not advance for this much wallclock time, the run
	// is marked StatusStalled and abandoned, and the sweep continues. 0
	// disables. See the watchdog notes on watchRun.
	StallWindow time.Duration `json:"stall_window,omitempty"`
	// MetricsDir, when non-empty, enables time-series collection for every
	// cell. Without a cache the files land under
	// MetricsDir/<experiment>/<cell>.jsonl as before; with a cache enabled
	// the directory's *location* is superseded — series stream into each
	// cell's cache-addressable series/ subtree (so hits replay them) and
	// the report's series_paths point there. Only the on/off switch (and
	// MetricsInterval) joins the cell identity.
	MetricsDir string `json:"metrics_dir,omitempty"`
	// Cache selects the content-addressed result store, if any.
	Cache CachePolicy `json:"cache,omitempty"`
	// Isolate runs each cell in a re-exec'd worker process, so an OOM kill
	// or fatal runtime error loses one cell instead of the sweep. Requires
	// an enabled Cache (the worker commits its result there) and a binary
	// that calls MaybeWorker early in main.
	Isolate bool `json:"isolate,omitempty"`
	// Retry re-runs cells that end error/timeout/stalled/crashed, with
	// exponential backoff + jitter. The zero value disables retries.
	Retry RetryPolicy `json:"retry,omitempty"`

	// Runtime wiring — excluded from the serialized form.

	// Sink observes run lifecycle and progress events; nil disables.
	Sink Sink `json:"-"`
	// ProgressInterval is the Progress event period; 0 disables progress
	// ticks (lifecycle events are still emitted).
	ProgressInterval time.Duration `json:"-"`
}

// scale returns the effective scale with the quick default applied.
func (s RunSpec) scale() experiments.Scale {
	if s.Scale == "" {
		return experiments.Quick
	}
	return experiments.Scale(s.Scale)
}

// metricsOn reports whether time-series collection is enabled.
func (s RunSpec) metricsOn() bool { return s.MetricsDir != "" }

// Validate checks the spec's enumerated fields. Unknown experiment IDs are
// deliberately not validated here — they become per-run error records so a
// sweep survives a typo (see Run).
func (s RunSpec) Validate() error {
	if !s.scale().Valid() {
		return fmt.Errorf("harness: unknown scale %q (want %q or %q)",
			s.Scale, experiments.Quick, experiments.Paper)
	}
	if s.Shards < 0 || s.Shards > sim.MaxShards {
		return fmt.Errorf("harness: shards %d outside [0, %d]", s.Shards, sim.MaxShards)
	}
	if err := s.Cache.validate(); err != nil {
		return err
	}
	if s.Scenario != nil {
		if err := s.Scenario.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// cacheKeySchema versions the cell-identity layout below. Bump it whenever
// the identity object or the meaning of any hashed field changes, so stale
// caches miss instead of replaying wrong results.
const cacheKeySchema = 1

// cellIdentity is the canonical object a cell's cache key hashes: the
// semantic subset of the RunSpec plus the cell's own spec and the code
// version. Mechanics (workers, timeouts, sinks) are absent by construction.
type cellIdentity struct {
	KeySchema       int            `json:"key_schema"`
	CodeVersion     string         `json:"code_version"`
	Scale           string         `json:"scale"`
	Seed            int64          `json:"seed,omitempty"`
	Metrics         bool           `json:"metrics,omitempty"`
	MetricsInterval int64          `json:"metrics_interval,omitempty"` // nanoseconds
	Shards          int            `json:"shards,omitempty"`           // only when > 1
	Experiment      string         `json:"experiment,omitempty"`
	Scenario        *scenario.Spec `json:"scenario,omitempty"`
}

// identity builds the shared (cell-independent) part of the key.
// MetricsInterval joins only when metrics are on — with them off it cannot
// affect results, so two such specs must share cells.
func (s RunSpec) identity(codeVersion string) cellIdentity {
	id := cellIdentity{
		KeySchema:   cacheKeySchema,
		CodeVersion: codeVersion,
		Scale:       string(s.scale()),
		Seed:        s.Seed,
	}
	if s.metricsOn() {
		id.Metrics = true
		id.MetricsInterval = int64(s.MetricsInterval)
	}
	// Shards ≤ 1 is the serial engine and must share cells with pre-shards
	// specs (and with each other); only a real parallel request forks the
	// key space.
	if s.Shards > 1 {
		id.Shards = s.Shards
	}
	return id
}

// CellKey returns the cache key of the registry-experiment cell expID under
// this spec, hashed with the given code version. Pass Version() for live
// keys; tests pin a fixed version so golden digests survive commits.
func (s RunSpec) CellKey(expID, codeVersion string) (string, error) {
	if expID == "" {
		return "", errors.New("harness: empty experiment ID")
	}
	id := s.identity(codeVersion)
	id.Experiment = expID
	return cache.Key(id)
}

// ScenarioKey returns the cache key of the spec's inline scenario cell. A
// scenario carrying Go-only overrides (an explicit Queue factory or Env) is
// not content-addressable and returns an error — the harness runs such
// cells uncached.
func (s RunSpec) ScenarioKey(codeVersion string) (string, error) {
	if s.Scenario == nil {
		return "", errors.New("harness: no inline scenario")
	}
	if s.Scenario.Topology.Queue != nil || s.Scenario.Env != nil {
		return "", errors.New("harness: scenario with Go-only overrides (Queue/Env) is not cacheable")
	}
	id := s.identity(codeVersion)
	id.Experiment = ScenarioCellID(s.Scenario)
	canon := s.Scenario.Canonical()
	id.Scenario = &canon
	return cache.Key(id)
}

// ScenarioCellID names the inline scenario cell in reports and sink events.
func ScenarioCellID(sp *scenario.Spec) string {
	if sp == nil || sp.Name == "" {
		return "scenario"
	}
	return "scenario:" + sp.Name
}

// cells expands the spec into the ordered experiment list Run executes:
// registry cells (unknown IDs become always-failing placeholders so report
// mode records them without stopping the sweep) followed by the inline
// scenario cell, if any.
func (s RunSpec) cells() []experiments.Experiment {
	ids := s.Experiments
	if len(ids) == 0 && s.Scenario == nil {
		ids = experiments.IDs()
	}
	out := make([]experiments.Experiment, 0, len(ids)+1)
	for _, id := range ids {
		exp, ok := experiments.ByID(id)
		if !ok {
			exp = failingExperiment(id)
		}
		out = append(out, exp)
	}
	if s.Scenario != nil {
		out = append(out, scenarioExperiment(s.Scenario))
	}
	return out
}

// scenarioExperiment adapts an inline declarative scenario to the
// experiment interface; scale does not apply (the spec is already sized).
func scenarioExperiment(sp *scenario.Spec) experiments.Experiment {
	return experiments.Experiment{
		ID:    ScenarioCellID(sp),
		Title: "declarative scenario (schema v2)",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			t, err := experiments.RunScenario(*sp)
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		},
	}
}

// failingExperiment is a placeholder whose run always errors — how unknown
// experiment IDs are recorded without aborting the rest of the sweep.
func failingExperiment(id string) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "unknown experiment",
		Run: func(context.Context, experiments.Scale) ([]*experiments.Table, error) {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		},
	}
}
