package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pert/internal/experiments"
)

// cacheSpec returns a RunSpec pointing at dir with a deterministic identity.
func cacheSpec(dir string) RunSpec {
	return RunSpec{Scale: string(experiments.Quick), Cache: CachePolicy{Dir: dir}}
}

// normalizeReport zeroes every field that legitimately differs between two
// executions of the same deterministic sweep — wallclock timings,
// allocation counts, build/version stamps, and the cache metadata itself —
// leaving exactly the payload the cache promises to reproduce byte-for-byte.
func normalizeReport(rep *Report) {
	rep.Version = ""
	rep.StartedAt = time.Time{}
	rep.WallSeconds = 0
	rep.EventsPerSecond = 0
	rep.Mallocs = 0
	rep.AllocsPerEvent = 0
	rep.SimEvents = 0 // sweep-wide counter excludes replayed cells by design
	rep.CacheDir = ""
	rep.CacheHits = 0
	rep.CacheMisses = 0
	rep.Retries = 0
	for i := range rep.Runs {
		r := &rep.Runs[i]
		r.WallSeconds = 0
		r.EventsPerSecond = 0
		r.Mallocs = 0
		r.AllocsPerEvent = 0
		r.Cached = false
		r.CacheKey = ""
		r.Attempts = 0
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKillAndResumeByteIdentical is the ISSUE's acceptance scenario: a sweep
// killed mid-run and restarted into the same cache completes by simulating
// only the unfinished cells, and the final report — minus cache metadata
// and wallclock noise — is byte-identical to an uninterrupted run's.
func TestKillAndResumeByteIdentical(t *testing.T) {
	exps := []experiments.Experiment{simExperiment("a"), simExperiment("b"), simExperiment("c")}

	// Uninterrupted baseline into its own cache directory.
	base, err := RunExperiments(context.Background(), exps, cacheSpec(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	// Kill the second sweep after its first cell completes.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := cacheSpec(dir)
	spec.Sink = sinkFunc(func(e Event) {
		if e.Kind == RunFinished {
			cancel()
		}
	})
	partial, err := RunExperiments(ctx, exps, spec)
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if len(partial.Runs) != 1 {
		t.Fatalf("partial runs = %d, want 1", len(partial.Runs))
	}

	// Resume with the same spec: the finished cell must replay, the rest
	// must simulate.
	resumed, err := RunExperiments(context.Background(), exps, cacheSpec(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Runs) != 3 {
		t.Fatalf("resumed runs = %d", len(resumed.Runs))
	}
	if !resumed.Runs[0].Cached {
		t.Fatalf("first cell not replayed: %+v", resumed.Runs[0])
	}
	for i := 1; i < 3; i++ {
		if resumed.Runs[i].Cached {
			t.Fatalf("cell %d replayed but was never committed", i)
		}
	}
	if resumed.CacheHits != 1 || resumed.CacheMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", resumed.CacheHits, resumed.CacheMisses)
	}
	for i := range resumed.Runs {
		if resumed.Runs[i].CacheKey == "" {
			t.Fatalf("run %d has no cache key", i)
		}
	}

	normalizeReport(base)
	normalizeReport(resumed)
	a, b := reportJSON(t, base), reportJSON(t, resumed)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", a, b)
	}
}

// TestWarmRunSimulatesNothing pins the other acceptance criterion: a
// fully-warm second run performs zero simulations.
func TestWarmRunSimulatesNothing(t *testing.T) {
	exps := []experiments.Experiment{simExperiment("x"), simExperiment("y")}
	dir := t.TempDir()

	cold, err := RunExperiments(context.Background(), exps, cacheSpec(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheMisses != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold hits/misses = %d/%d", cold.CacheHits, cold.CacheMisses)
	}

	var buf bytes.Buffer
	spec := cacheSpec(dir)
	spec.Sink = NewWriterSink(&buf)
	warm, err := RunExperiments(context.Background(), exps, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SimEvents != 0 {
		t.Fatalf("warm run simulated %d events", warm.SimEvents)
	}
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("warm hits/misses = %d/%d", warm.CacheHits, warm.CacheMisses)
	}
	for i, r := range warm.Runs {
		if !r.Cached || r.Status != StatusOK || len(r.Tables) != 1 {
			t.Fatalf("warm run %d: %+v", i, r)
		}
		// Replay preserves the original record verbatim, timings included.
		if r.SimEvents != cold.Runs[i].SimEvents || r.WallSeconds != cold.Runs[i].WallSeconds {
			t.Fatalf("warm run %d rewrote the stored record: %+v vs %+v", i, r, cold.Runs[i])
		}
		if r.Tables[0].Rows[0][0] != cold.Runs[i].Tables[0].Rows[0][0] {
			t.Fatalf("warm run %d table differs", i)
		}
	}
	if !strings.Contains(buf.String(), "cached") {
		t.Fatalf("sink did not render the replay:\n%s", buf.String())
	}
}

// TestFailedRunsAreNotCommitted: only StatusOK cells enter the cache, so a
// failing experiment re-runs on every sweep instead of replaying its error.
func TestFailedRunsAreNotCommitted(t *testing.T) {
	exps := []experiments.Experiment{panicExperiment("boom")}
	dir := t.TempDir()
	for attempt := 0; attempt < 2; attempt++ {
		rep, err := RunExperiments(context.Background(), exps, cacheSpec(dir))
		if err != nil {
			t.Fatal(err)
		}
		r := rep.Runs[0]
		if r.Cached || r.Status != StatusError {
			t.Fatalf("attempt %d: %+v", attempt, r)
		}
		if rep.CacheMisses != 1 {
			t.Fatalf("attempt %d: misses = %d", attempt, rep.CacheMisses)
		}
	}
}

// TestCacheModes: read never commits, write never replays, off ignores the
// directory entirely.
func TestCacheModes(t *testing.T) {
	exps := []experiments.Experiment{simExperiment("m")}
	dir := t.TempDir()

	spec := cacheSpec(dir)
	spec.Cache.Mode = CacheRead
	rep, err := RunExperiments(context.Background(), exps, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Cached {
		t.Fatal("read mode replayed from an empty cache")
	}
	// Nothing was committed, so a readwrite run still misses.
	rep, err = RunExperiments(context.Background(), exps, cacheSpec(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Cached || rep.CacheMisses != 1 {
		t.Fatalf("read mode committed: %+v", rep.Runs[0])
	}

	// Write mode recomputes despite the now-committed cell, and re-commits.
	spec.Cache.Mode = CacheWrite
	rep, err = RunExperiments(context.Background(), exps, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Cached {
		t.Fatal("write mode replayed")
	}

	// Off mode reports no cache activity at all.
	spec.Cache.Mode = CacheOff
	rep, err = RunExperiments(context.Background(), exps, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheDir != "" || rep.Runs[0].CacheKey != "" {
		t.Fatalf("off mode touched the cache: %+v", rep)
	}
}

// TestConcurrentWorkersShareCache: two sweeps over the same cells and cache
// directory compute each cell exactly once between them — the claim loser
// waits for the winner's commit and replays it.
func TestConcurrentWorkersShareCache(t *testing.T) {
	exps := []experiments.Experiment{simExperiment("c1"), simExperiment("c2"), simExperiment("c3")}
	dir := t.TempDir()

	var wg sync.WaitGroup
	reps := make([]*Report, 2)
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reps[w], errs[w] = RunExperiments(context.Background(), exps, cacheSpec(dir))
		}(w)
	}
	wg.Wait()

	misses := 0
	for w, rep := range reps {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		misses += rep.CacheMisses
		for i, r := range rep.Runs {
			if r.Status != StatusOK || len(r.Tables) != 1 {
				t.Fatalf("worker %d run %d: %+v", w, i, r)
			}
		}
	}
	if misses != len(exps) {
		t.Fatalf("cells computed %d times across workers, want %d", misses, len(exps))
	}
	for i := range exps {
		a, b := reps[0].Runs[i], reps[1].Runs[i]
		if a.Tables[0].Rows[0][0] != b.Tables[0].Rows[0][0] {
			t.Fatalf("workers disagree on cell %d", i)
		}
	}
}

// TestCachedSeriesRelocate: with metrics and a cache both enabled, series
// files stage under the claim and are published under the committed cell's
// series/ tree — and the recorded paths survive a warm replay.
func TestCachedSeriesRelocate(t *testing.T) {
	writeSeries := experiments.Experiment{
		ID:    "met",
		Title: "writes one series file",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			cfg, ok := experiments.MetricsFrom(ctx)
			if !ok {
				return nil, fmt.Errorf("metrics config missing from context")
			}
			dir := filepath.Join(cfg.Dir, "met")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			if err := os.WriteFile(filepath.Join(dir, "cell0.jsonl"), []byte("{}\n"), 0o644); err != nil {
				return nil, err
			}
			tab := &experiments.Table{ID: "met", Title: "t", Header: []string{"ok"}}
			tab.AddRow("1")
			return []*experiments.Table{tab}, nil
		},
	}
	cacheDir := t.TempDir()
	spec := cacheSpec(cacheDir)
	spec.MetricsDir = t.TempDir() // location superseded by the cache tree

	cold, err := RunExperiments(context.Background(), []experiments.Experiment{writeSeries}, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := cold.Runs[0]
	if r.Status != StatusOK || len(r.SeriesPaths) != 1 {
		t.Fatalf("cold run: %+v", r)
	}
	if !strings.HasPrefix(r.SeriesPaths[0], cacheDir) {
		t.Fatalf("series path %q not under the cache", r.SeriesPaths[0])
	}
	if _, err := os.Stat(r.SeriesPaths[0]); err != nil {
		t.Fatalf("recorded series path missing: %v", err)
	}

	warm, err := RunExperiments(context.Background(), []experiments.Experiment{writeSeries}, spec)
	if err != nil {
		t.Fatal(err)
	}
	w := warm.Runs[0]
	if !w.Cached || len(w.SeriesPaths) != 1 || w.SeriesPaths[0] != r.SeriesPaths[0] {
		t.Fatalf("warm run series: %+v (cold %+v)", w.SeriesPaths, r.SeriesPaths)
	}
}

// TestCorruptRecordRecomputes: a committed cell whose record no longer
// parses is evicted and recomputed instead of failing the sweep.
func TestCorruptRecordRecomputes(t *testing.T) {
	exps := []experiments.Experiment{simExperiment("z")}
	dir := t.TempDir()
	rep, err := RunExperiments(context.Background(), exps, cacheSpec(dir))
	if err != nil {
		t.Fatal(err)
	}
	key := rep.Runs[0].CacheKey
	record := filepath.Join(dir, key[:2], key, "record.json")
	if err := os.WriteFile(record, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = RunExperiments(context.Background(), exps, cacheSpec(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Cached || rep.Runs[0].Status != StatusOK {
		t.Fatalf("corrupt cell not recomputed: %+v", rep.Runs[0])
	}
}

// TestRunResolvesRegistryAndScenario: the spec-driven Run entry point
// expands experiment IDs (unknown ones become error records) and appends
// the inline scenario cell.
func TestRunResolvesRegistryAndScenario(t *testing.T) {
	rep, err := Run(context.Background(), RunSpec{Experiments: []string{"fig5", "nope"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	if rep.Runs[0].Status != StatusOK {
		t.Fatalf("fig5: %+v", rep.Runs[0])
	}
	if rep.Runs[1].Status != StatusError || !strings.Contains(rep.Runs[1].Error, "unknown experiment") {
		t.Fatalf("nope: %+v", rep.Runs[1])
	}
}
