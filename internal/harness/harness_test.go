package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pert/internal/experiments"
	"pert/internal/sim"
)

// simExperiment drives a real engine so runs accrue sim events and sim time.
func simExperiment(id string) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "synthetic simulation",
		Run: func(ctx context.Context, scale experiments.Scale) ([]*experiments.Table, error) {
			eng := sim.NewEngine(1)
			n := 0
			for i := 1; i <= 1000; i++ {
				eng.At(sim.Time(i)*sim.Millisecond, func() { n++ })
			}
			eng.Run(2 * sim.Second)
			tab := &experiments.Table{ID: id, Title: "synthetic", Header: []string{"events"}}
			tab.AddRow(fmt.Sprint(n))
			return []*experiments.Table{tab}, nil
		},
	}
}

func panicExperiment(id string) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "always panics",
		Run: func(context.Context, experiments.Scale) ([]*experiments.Table, error) {
			panic("deliberate failure")
		},
	}
}

func TestRunRecoversPanicAndContinues(t *testing.T) {
	exps := []experiments.Experiment{
		simExperiment("ok1"),
		panicExperiment("bad"),
		simExperiment("ok2"),
	}
	rep, err := RunExperiments(context.Background(), exps, RunSpec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	bad := rep.Runs[1]
	if !strings.Contains(bad.Error, "panicked: deliberate failure") {
		t.Fatalf("panic not recorded: %+v", bad)
	}
	if bad.Status != StatusError {
		t.Fatalf("panicked run status = %q", bad.Status)
	}
	if len(bad.Tables) != 0 || bad.Tables == nil {
		t.Fatalf("failed run tables: %+v", bad.Tables)
	}
	for _, i := range []int{0, 2} {
		r := rep.Runs[i]
		if r.Error != "" || len(r.Tables) != 1 || r.Status != StatusOK {
			t.Fatalf("run %d: %+v", i, r)
		}
		if r.SimEvents == 0 || r.SimSeconds <= 0 || r.WallSeconds <= 0 || r.EventsPerSecond <= 0 {
			t.Fatalf("run %d missing throughput metadata: %+v", i, r)
		}
	}
	if failed := rep.Failed(); len(failed) != 1 || failed[0].ID != "bad" {
		t.Fatalf("Failed() = %+v", failed)
	}
	if rep.SimEvents < rep.Runs[0].SimEvents+rep.Runs[2].SimEvents {
		t.Fatalf("sweep events %d < sum of runs", rep.SimEvents)
	}
}

func TestRunPanicInsideForEachWorker(t *testing.T) {
	// A panic deep inside a parallel sweep (e.g. an unknown scheme reaching
	// a scenario builder) must surface as this run's error, not kill the
	// process. RunDumbbell panics on unknown schemes; forEach recovers.
	exp := experiments.Experiment{
		ID: "bad-sweep",
		Run: func(ctx context.Context, scale experiments.Scale) ([]*experiments.Table, error) {
			tab, err := experiments.Fig5(ctx, scale) // cheap, analytic
			if err != nil {
				return nil, err
			}
			experiments.RunDumbbell(experiments.DumbbellSpec{}, experiments.Scheme("nonsense"))
			return []*experiments.Table{tab}, nil
		},
	}
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{exp}, RunSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Error == "" || !strings.Contains(rep.Runs[0].Error, "panicked") {
		t.Fatalf("run: %+v", rep.Runs[0])
	}
}

func TestRunCancellationReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancelSink := sinkFunc(func(e Event) {
		if e.Kind == RunFinished {
			cancel()
		}
	})
	exps := []experiments.Experiment{simExperiment("a"), simExperiment("b"), simExperiment("c")}
	rep, err := RunExperiments(ctx, exps, RunSpec{Sink: cancelSink})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].ID != "a" {
		t.Fatalf("partial runs: %+v", rep.Runs)
	}
}

func TestRunPerRunTimeout(t *testing.T) {
	hang := experiments.Experiment{
		ID: "hang",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	exps := []experiments.Experiment{hang, simExperiment("after")}
	rep, err := RunExperiments(context.Background(), exps, RunSpec{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Runs[0].Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("timeout not recorded: %+v", rep.Runs[0])
	}
	if rep.Runs[0].Status != StatusTimeout {
		t.Fatalf("timed-out run status = %q", rep.Runs[0].Status)
	}
	if rep.Runs[1].Error != "" {
		t.Fatalf("sweep did not continue: %+v", rep.Runs[1])
	}
}

func TestRunWatchdogMarksStalledAndContinues(t *testing.T) {
	// A run that blocks without advancing the sim counters must be marked
	// stalled by the watchdog — and the sweep must go on to the next run.
	// The blocker is cooperative (exits on ctx.Done) so the abandoned
	// goroutine does not outlive the test.
	stall := experiments.Experiment{
		ID:    "wedged",
		Title: "blocks forever",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	var buf bytes.Buffer
	exps := []experiments.Experiment{stall, simExperiment("after")}
	rep, err := RunExperiments(context.Background(), exps,
		RunSpec{StallWindow: 50 * time.Millisecond, Sink: NewWriterSink(&buf)})
	if err != nil {
		t.Fatal(err)
	}
	wedged := rep.Runs[0]
	if wedged.Status != StatusStalled {
		t.Fatalf("status = %q, want stalled: %+v", wedged.Status, wedged)
	}
	if !strings.Contains(wedged.Error, "no sim progress") || !strings.Contains(wedged.Error, "stalled") {
		t.Fatalf("stall error: %q", wedged.Error)
	}
	if len(wedged.Tables) != 0 || wedged.Tables == nil {
		t.Fatalf("stalled run tables: %+v", wedged.Tables)
	}
	after := rep.Runs[1]
	if after.Status != StatusOK || len(after.Tables) != 1 {
		t.Fatalf("sweep did not continue past the stall: %+v", after)
	}
	if !strings.Contains(buf.String(), "STALLED after") {
		t.Fatalf("sink did not render the stall:\n%s", buf.String())
	}
}

func TestRunWatchdogToleratesProgressingRun(t *testing.T) {
	// A healthy simulation that keeps the counters moving must never be
	// flagged, even with a stall window shorter than its total runtime.
	busy := experiments.Experiment{
		ID:    "busy",
		Title: "keeps simulating",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			deadline := time.Now().Add(200 * time.Millisecond)
			for time.Now().Before(deadline) {
				eng := sim.NewEngine(1)
				for i := 1; i <= 100; i++ {
					eng.At(sim.Time(i), func() {})
				}
				eng.Run(sim.Second)
				time.Sleep(5 * time.Millisecond)
			}
			tab := &experiments.Table{ID: "busy", Title: "busy", Header: []string{"ok"}}
			tab.AddRow("1")
			return []*experiments.Table{tab}, nil
		},
	}
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{busy},
		RunSpec{StallWindow: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Status != StatusOK {
		t.Fatalf("healthy run flagged: %+v", rep.Runs[0])
	}
}

func TestRunBadScaleRejectedUpfront(t *testing.T) {
	rep, err := Run(context.Background(), RunSpec{Scale: "bogus", Experiments: []string{"fig5"}})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("err = %v", err)
	}
	if rep == nil || len(rep.Runs) != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestReportJSONSchema(t *testing.T) {
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{simExperiment("s")}, RunSpec{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"schema_version", "version", "scale", "workers",
		"started_at", "wall_seconds", "sim_events", "events_per_second", "runs"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
	runs := decoded["runs"].([]any)
	run := runs[0].(map[string]any)
	for _, key := range []string{"id", "title", "scale", "status", "wall_seconds",
		"sim_events", "events_per_second", "sim_seconds", "tables"} {
		if _, ok := run[key]; !ok {
			t.Errorf("run missing %q", key)
		}
	}
	if run["status"] != StatusOK {
		t.Errorf("status = %v", run["status"])
	}
	if _, ok := run["error"]; ok {
		t.Error("successful run serialized an error field")
	}
	if decoded["workers"].(float64) != 3 {
		t.Errorf("workers = %v", decoded["workers"])
	}
	// Tables must be an array (never null) using the stable table schema.
	tables := run["tables"].([]any)
	tab := tables[0].(map[string]any)
	for _, key := range []string{"id", "columns", "rows"} {
		if _, ok := tab[key]; !ok {
			t.Errorf("table missing %q", key)
		}
	}
}

func TestWriterSinkLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(&buf)
	exps := []experiments.Experiment{simExperiment("x"), panicExperiment("y")}
	if _, err := RunExperiments(context.Background(), exps, RunSpec{Sink: sink}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[1/2] x: started", "[1/2] x: done in", "[2/2] y: FAILED after"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestVersionNeverEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("empty version")
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(Event)

func (f sinkFunc) Event(e Event) { f(e) }
