package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pert/internal/experiments"
)

// flakyExperiment fails its first failures runs, then succeeds.
func flakyExperiment(id string, failures int) experiments.Experiment {
	var calls int32
	return experiments.Experiment{
		ID: id, Title: "transiently failing",
		Run: func(_ context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			if int(atomic.AddInt32(&calls, 1)) <= failures {
				return nil, errors.New("transient failure")
			}
			tab := &experiments.Table{ID: id, Title: "flaky", Header: []string{"ok"}}
			tab.AddRow("1")
			return []*experiments.Table{tab}, nil
		},
	}
}

func TestRetryTransientErrorSucceeds(t *testing.T) {
	var retried []Event
	spec := RunSpec{
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
		Sink: sinkFunc(func(e Event) {
			if e.Kind == RunRetried {
				retried = append(retried, e)
			}
		}),
	}
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{flakyExperiment("flaky", 2)}, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if r.Status != StatusOK || r.Error != "" {
		t.Fatalf("run after retries = %+v, want ok", r)
	}
	if r.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", r.Attempts)
	}
	if rep.Retries != 2 {
		t.Fatalf("report retries = %d, want 2", rep.Retries)
	}
	if len(retried) != 2 {
		t.Fatalf("RunRetried events = %d, want 2", len(retried))
	}
	for i, e := range retried {
		if e.Attempt != i+1 || e.Status != StatusError || e.Backoff <= 0 {
			t.Fatalf("retry event %d = %+v", i, e)
		}
	}
}

func TestRetryExhaustionKeepsLastVerdict(t *testing.T) {
	spec := RunSpec{Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}}
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{flakyExperiment("doomed", 99)}, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if r.Status != StatusError {
		t.Fatalf("status = %q, want error", r.Status)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", r.Attempts)
	}
	if rep.Retries != 1 {
		t.Fatalf("report retries = %d, want 1", rep.Retries)
	}
}

// TestCanceledCellNotRetried pins the satellite requirement: a Ctrl-C'd cell
// reports canceled — not timeout, not error — and never burns retry
// attempts.
func TestCanceledCellNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int32
	victim := experiments.Experiment{
		ID: "victim", Title: "canceled mid-run",
		Run: func(runCtx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			atomic.AddInt32(&calls, 1)
			cancel() // the user hits Ctrl-C while this cell runs
			<-runCtx.Done()
			return nil, runCtx.Err()
		},
	}
	// A generous per-run Timeout guarantees the deadline is NOT what fired.
	spec := RunSpec{
		Timeout: time.Hour,
		Retry:   RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond},
	}
	rep, _ := RunExperiments(ctx, []experiments.Experiment{victim}, spec)
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	r := rep.Runs[0]
	if r.Status != StatusCanceled {
		t.Fatalf("status = %q, want %q (%+v)", r.Status, StatusCanceled, r)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("canceled cell ran %d times, want 1 (retry attempts burned)", got)
	}
	if r.Attempts != 1 || rep.Retries != 0 {
		t.Fatalf("attempts/retries = %d/%d, want 1/0", r.Attempts, rep.Retries)
	}
}

// TestPerRunTimeoutStillTimeout: the canceled status must not swallow real
// per-run deadline expiries when the sweep context is healthy.
func TestPerRunTimeoutStillTimeout(t *testing.T) {
	hang := experiments.Experiment{
		ID: "hang",
		Run: func(ctx context.Context, _ experiments.Scale) ([]*experiments.Table, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{hang},
		RunSpec{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Status != StatusTimeout {
		t.Fatalf("status = %q, want %q", rep.Runs[0].Status, StatusTimeout)
	}
}

// TestSupervisorKillsWedgedWorker: a worker whose cell ignores its context
// entirely must be SIGKILLed once the deadline budget (Timeout + grace)
// expires, and recorded as a timeout the retry policy may act on.
func TestSupervisorKillsWedgedWorker(t *testing.T) {
	oldGrace := workerKillGrace
	workerKillGrace = 100 * time.Millisecond
	defer func() { workerKillGrace = oldGrace }()

	hang, _ := chaosResolve("chaos-hang")
	spec := RunSpec{Isolate: true, Timeout: 50 * time.Millisecond}
	start := time.Now()
	rep, err := RunExperiments(context.Background(), []experiments.Experiment{hang}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("supervisor took %s to kill a wedged worker", wall)
	}
	r := rep.Runs[0]
	if r.Status != StatusTimeout {
		t.Fatalf("status = %q, want %q (%+v)", r.Status, StatusTimeout, r)
	}
	if !strings.Contains(r.Error, "deadline budget") {
		t.Fatalf("error = %q", r.Error)
	}
}

// TestHardCancelKillsWorker: hard cancellation (the second Ctrl-C) SIGKILLs
// the in-flight worker and records the cell as canceled.
func TestHardCancelKillsWorker(t *testing.T) {
	soft, softCancel := context.WithCancel(context.Background())
	defer softCancel()
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	ctx := WithHardCancel(soft, hard)

	time.AfterFunc(50*time.Millisecond, hardCancel)
	hang, _ := chaosResolve("chaos-hang")
	start := time.Now()
	rep, err := RunExperiments(ctx, []experiments.Experiment{hang}, RunSpec{Isolate: true})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("hard cancel took %s to kill the worker", wall)
	}
	if rep.Runs[0].Status != StatusCanceled {
		t.Fatalf("status = %q, want %q", rep.Runs[0].Status, StatusCanceled)
	}
}

// TestNotifyShutdownTwoStage: first signal cancels softly, second hardly.
func TestNotifyShutdownTwoStage(t *testing.T) {
	ctx, stop := NotifyShutdown(context.Background())
	defer stop()
	hard := hardDone(ctx)
	if hard == nil {
		t.Fatal("no hard-cancel context attached")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGINT did not cancel the soft context")
	}
	select {
	case <-hard:
		t.Fatal("first SIGINT already hard-canceled")
	default:
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hard:
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not hard-cancel")
	}
}

// TestRetryBackoffSchedule pins the exponential-doubling-with-jitter shape:
// each delay lands in [d/2, d] where d doubles per retry, capped.
func TestRetryBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	for attempt, wantMax := range map[int]time.Duration{
		2: 100 * time.Millisecond,
		3: 200 * time.Millisecond,
		4: 400 * time.Millisecond,
		5: 400 * time.Millisecond, // capped
		9: 400 * time.Millisecond, // still capped
	} {
		for i := 0; i < 20; i++ {
			d := p.backoff(attempt)
			if d < wantMax/2 || d > wantMax {
				t.Fatalf("backoff(%d) = %s, want in [%s, %s]", attempt, d, wantMax/2, wantMax)
			}
		}
	}
	if !(RetryPolicy{MaxAttempts: 2}).enabled() {
		t.Fatal("MaxAttempts 2 should enable retries")
	}
	for _, n := range []int{0, 1} {
		if (RetryPolicy{MaxAttempts: n}).enabled() {
			t.Fatalf("MaxAttempts %d should not enable retries", n)
		}
	}
	for _, status := range []string{StatusError, StatusTimeout, StatusStalled, StatusCrashed} {
		if !retryable(status) {
			t.Fatalf("%s should be retryable", status)
		}
	}
	for _, status := range []string{StatusOK, StatusCanceled, ""} {
		if retryable(status) {
			t.Fatalf("%s should not be retryable", status)
		}
	}
}

// TestWorkerRejectsGarbageInput: a worker fed garbage exits non-zero rather
// than fabricating a record.
func TestWorkerRejectsGarbageInput(t *testing.T) {
	var stderr strings.Builder
	if code := workerMain(strings.NewReader("not json"), &strings.Builder{}, &stderr); code == 0 {
		t.Fatal("worker accepted garbage input")
	}
	if !strings.Contains(stderr.String(), "bad input") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

// TestWorkerRunsCellEndToEnd drives workerMain directly: input in, strict
// record out.
func TestWorkerRunsCellEndToEnd(t *testing.T) {
	in := workerInput{
		Spec:       RunSpec{Scale: string(experiments.Quick)},
		Experiment: "chaos-a",
		Attempt:    4,
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := workerMain(strings.NewReader(string(blob)), &out, os.Stderr); code != 0 {
		t.Fatalf("worker exit = %d", code)
	}
	rec, err := DecodeRunRecord([]byte(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "chaos-a" || rec.Status != StatusOK || rec.Attempts != 4 {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(rec.Tables))
	}
}
