package harness

import (
	"encoding/json"
	"io"
	"runtime/debug"
	"time"

	"pert/internal/experiments"
)

// SchemaVersion identifies the report JSON layout. Bump only on
// incompatible changes; additions are allowed within a version.
const SchemaVersion = 1

// Run-health states recorded in RunRecord.Status. Exactly one applies to
// every finished run; anything other than StatusOK also fills Error.
const (
	StatusOK       = "ok"       // tables produced, invariants held
	StatusError    = "error"    // runner returned an error or panicked (incl. auditor violations)
	StatusTimeout  = "timeout"  // per-run Timeout expired (or the supervisor's deadline budget)
	StatusStalled  = "stalled"  // watchdog saw no sim progress within StallWindow
	StatusCrashed  = "crashed"  // isolated worker process died (OOM kill, fatal runtime error, injected crash)
	StatusCanceled = "canceled" // the sweep's context was canceled mid-run (Ctrl-C); never retried
)

// RunRecord is the outcome of one experiment run. Exactly one of Error and
// a non-trivial Tables slice is meaningful: a failed run keeps its timing
// metadata but carries no tables.
type RunRecord struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Scale string `json:"scale"`
	// Status is the run-health verdict: "ok", "error", "timeout" or
	// "stalled" (an additive schema-version-1 field; absent in old reports
	// means "ok" when Error is empty, "error" otherwise).
	Status string `json:"status"`
	// WallSeconds is the run's wallclock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// SimEvents counts discrete-event executions attributed to this run.
	SimEvents uint64 `json:"sim_events"`
	// EventsPerSecond is SimEvents / WallSeconds.
	EventsPerSecond float64 `json:"events_per_second"`
	// SimSeconds is simulated time advanced during this run (summed across
	// scenarios, so it can exceed WallSeconds * workers).
	SimSeconds float64 `json:"sim_seconds"`
	// Mallocs counts heap objects allocated in the process during this run
	// (runtime.MemStats delta; additive schema-version-1 field). Runs are
	// sequential, so the delta is attributable to this run, but within-run
	// worker goroutines and background GC are included — compare numbers
	// only across reports produced with the same worker count.
	Mallocs uint64 `json:"mallocs"`
	// AllocsPerEvent is Mallocs / SimEvents, the perf-regression harness's
	// primary allocation metric: the event loop's pooled hot paths keep it
	// well under one allocation per simulated event.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Error is the failure (panic, cancellation, bad spec), empty on success.
	Error string `json:"error,omitempty"`
	// Attempts is how many times the cell executed before this record was
	// produced (1 = first try; >1 means RunSpec.Retry re-ran it). Replayed
	// records keep the count of the run that committed them. Additive
	// schema-version-1 field; absent in old reports means 1.
	Attempts int `json:"attempts,omitempty"`
	// Cached marks a run replayed from the result cache instead of being
	// simulated; its timing fields are the original run's (additive
	// schema-version-1 field).
	Cached bool `json:"cached,omitempty"`
	// CacheKey is the run's content address in the result cache, set whenever
	// caching was enabled and the cell was keyable — on misses too, so
	// reports identify the cells they populated (additive field).
	CacheKey string `json:"cache_key,omitempty"`
	// SeriesPaths lists the time-series files this run wrote under
	// RunSpec.MetricsDir — or, when caching is enabled, under the cell's
	// cache-addressable series/ directory (additive schema-version-1 field;
	// absent when metrics were disabled or the experiment wrote none).
	SeriesPaths []string `json:"series_paths,omitempty"`
	// Tables holds the run's result tables; never null, empty on failure.
	Tables []*experiments.Table `json:"tables"`
}

// Report aggregates a whole sweep. It serializes to the stable JSON schema
// documented in EXPERIMENTS.md ("JSON output").
type Report struct {
	SchemaVersion int       `json:"schema_version"`
	Version       string    `json:"version"` // build VCS revision, or "unknown"
	Scale         string    `json:"scale"`
	Workers       int       `json:"workers"`
	StartedAt     time.Time `json:"started_at"`
	// WallSeconds, SimEvents, EventsPerSecond, Mallocs and AllocsPerEvent
	// cover the whole sweep (same caveats as the per-run fields).
	WallSeconds     float64 `json:"wall_seconds"`
	SimEvents       uint64  `json:"sim_events"`
	EventsPerSecond float64 `json:"events_per_second"`
	Mallocs         uint64  `json:"mallocs"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	// CacheDir, CacheHits and CacheMisses describe the sweep's use of the
	// content-addressed result cache (additive schema-version-1 fields;
	// absent when caching was disabled).
	CacheDir    string `json:"cache_dir,omitempty"`
	CacheHits   int    `json:"cache_hits,omitempty"`
	CacheMisses int    `json:"cache_misses,omitempty"`
	// Retries counts extra cell executions the retry policy spent across
	// the sweep (sum of attempts-1; additive schema-version-1 field).
	Retries int         `json:"retries,omitempty"`
	Runs    []RunRecord `json:"runs"`
}

// Failed returns the runs that ended in an error, in sweep order.
func (r *Report) Failed() []RunRecord {
	var out []RunRecord
	for _, run := range r.Runs {
		if run.Error != "" {
			out = append(out, run)
		}
	}
	return out
}

// WriteJSON writes the indented report followed by a newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Version reports the build's VCS revision (shortened, "-dirty" suffixed
// when the tree was modified), the module version for released builds, or
// "unknown". It never shells out to git.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
