package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeRunRecord(t *testing.T) {
	valid := `{"id":"fig6","title":"t","scale":"quick","status":"ok","wall_seconds":1.5,` +
		`"sim_events":10,"events_per_second":6.6,"sim_seconds":2,"mallocs":3,` +
		`"allocs_per_event":0.3,"attempts":2,"tables":[]}`
	cases := []struct {
		name    string
		blob    string
		wantErr string
	}{
		{"valid", valid, ""},
		{"legacy no status", `{"id":"fig6","tables":[]}`, ""},
		{"null tables normalized", `{"id":"fig6","status":"ok"}`, ""},
		{"empty", ``, "decode record"},
		{"truncated", valid[:len(valid)/2], "decode record"},
		{"trailing garbage", valid + `{"id":"evil"}`, "trailing data"},
		{"not an object", `[1,2,3]`, "decode record"},
		{"missing id", `{"status":"ok","tables":[]}`, "no experiment id"},
		{"unknown status", `{"id":"fig6","status":"mostly-ok","tables":[]}`, "unknown status"},
		{"negative attempts", `{"id":"fig6","attempts":-3,"tables":[]}`, "negative attempts"},
		{"negative wall", `{"id":"fig6","wall_seconds":-1,"tables":[]}`, "negative"},
		{"huge exponent inf", `{"id":"fig6","wall_seconds":1e999,"tables":[]}`, "decode record"},
		{"null table entry", `{"id":"fig6","tables":[null]}`, "null table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := DecodeRunRecord([]byte(tc.blob))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if rec.Tables == nil {
					t.Fatal("Tables not normalized to empty slice")
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %s", tc.blob)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateRecordMatchesDecoder(t *testing.T) {
	if err := ValidateRecord([]byte(`{"id":"x","tables":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateRecord([]byte(`{"id":`)); err == nil {
		t.Fatal("validated a truncated record")
	}
}

// FuzzDecodeRunRecord pins the evict-and-recompute contract: whatever bytes
// a crash or corruption leaves in record.json, the loader returns an error
// or a well-formed record — it never panics and never accepts a record
// without an identity.
func FuzzDecodeRunRecord(f *testing.F) {
	f.Add([]byte(`{"id":"fig6","status":"ok","tables":[]}`))
	f.Add([]byte(`{"id":"fig6","status":"ok","tables":[]}{"id":"evil"}`))
	f.Add([]byte(`{"id":"fig6","status":"`))
	f.Add([]byte(`{"id":"fig6","wall_seconds":-1}`))
	f.Add([]byte(`{"id":"fig6","attempts":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\x01\x02"))
	rec := RunRecord{ID: "fig6", Status: StatusOK, WallSeconds: 1.25, Attempts: 3}
	if blob, err := json.Marshal(rec); err == nil {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRunRecord(data)
		if err != nil {
			return
		}
		if rec.ID == "" {
			t.Fatalf("accepted record without id: %q", data)
		}
		if rec.Tables == nil {
			t.Fatalf("accepted record with nil tables: %q", data)
		}
		// A record the loader accepts must round-trip through the same
		// loader (the committed form is exactly re-marshaled JSON).
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-marshal: %v", err)
		}
		if _, err := DecodeRunRecord(blob); err != nil {
			t.Fatalf("round-trip rejected: %v (from %q)", err, data)
		}
	})
}
