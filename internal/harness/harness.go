package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"pert/internal/experiments"
	"pert/internal/obs"
	"pert/internal/sim"
)

// maxStallDumpLines bounds the flight-recorder text appended to a
// stalled-run error, keeping report entries readable when many recorders are
// active.
const maxStallDumpLines = 400

// mallocCount reads the process's cumulative heap-object allocation count.
// Deltas across a sequential run attribute its allocations (see
// RunRecord.Mallocs for the caveats).
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Options configures a sweep. The zero value is usable: all cores, no
// timeout, no observer.
type Options struct {
	// Workers bounds in-experiment scenario parallelism; <1 means the
	// context's worker count (GOMAXPROCS unless overridden).
	Workers int
	// Timeout bounds each individual run; 0 means none. A timed-out run
	// records an error and the sweep continues.
	Timeout time.Duration
	// StallWindow arms the no-progress watchdog: if the process-wide sim
	// event counters do not advance for this much wallclock time, the run is
	// marked StatusStalled and abandoned, and the sweep continues. 0
	// disables. Runs are sequential, so a flat counter means the current run
	// is stuck (deadlock, blocked I/O, runaway non-sim loop). Choose a
	// window longer than any legitimate non-simulating stretch (analytic
	// phases, table formatting); live engines refresh the counters at least
	// every 2^16 events, so tens of seconds is a safe floor.
	StallWindow time.Duration
	// Sink observes run lifecycle and progress events; nil disables.
	Sink Sink
	// ProgressInterval is the Progress event period; 0 disables progress
	// ticks (lifecycle events are still emitted).
	ProgressInterval time.Duration
	// MetricsDir, when non-empty, enables time-series collection: every
	// dumbbell cell run under the sweep streams JSONL series to
	// MetricsDir/<experiment>/<cell>.jsonl, and each RunRecord lists the
	// files its experiment produced (SeriesPaths).
	MetricsDir string
	// MetricsInterval overrides the sampling period (0 = the experiments
	// package default, 100 ms of sim time).
	MetricsInterval time.Duration
}

// Run executes the experiments in order at the given scale and returns the
// aggregated report. Per-run failures — panics, bad specs, per-run
// timeouts — become RunRecord.Error entries and the sweep continues; only
// cancellation of ctx stops the sweep early, returning the partial report
// alongside ctx's error. The report is never nil.
func Run(ctx context.Context, exps []experiments.Experiment, scale experiments.Scale, opts Options) (*Report, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = experiments.Workers(ctx)
	}
	ctx = experiments.WithWorkers(ctx, workers)
	if opts.MetricsDir != "" {
		ctx = experiments.WithMetrics(ctx, experiments.MetricsConfig{
			Dir:      opts.MetricsDir,
			Interval: sim.Duration(opts.MetricsInterval),
		})
	}

	var sink Sink
	if opts.Sink != nil {
		sink = &lockedSink{s: opts.Sink}
	}

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Version:       Version(),
		Scale:         string(scale),
		Workers:       workers,
		StartedAt:     time.Now().UTC(),
	}
	start := time.Now()
	ev0, _ := sim.Counters()
	m0 := mallocCount()

	var doneWall time.Duration
	for i, exp := range exps {
		if err := ctx.Err(); err != nil {
			finish(rep, start, ev0, m0)
			return rep, err
		}
		rec := runOne(ctx, exp, scale, i, len(exps), opts, sink, doneWall)
		doneWall += time.Duration(rec.WallSeconds * float64(time.Second))
		rep.Runs = append(rep.Runs, rec)
	}
	finish(rep, start, ev0, m0)
	return rep, nil
}

// finish fills the report's sweep-wide timing and allocation fields.
func finish(rep *Report, start time.Time, ev0, m0 uint64) {
	ev1, _ := sim.Counters()
	rep.WallSeconds = time.Since(start).Seconds()
	rep.SimEvents = ev1 - ev0
	if rep.WallSeconds > 0 {
		rep.EventsPerSecond = float64(rep.SimEvents) / rep.WallSeconds
	}
	rep.Mallocs = mallocCount() - m0
	if rep.SimEvents > 0 {
		rep.AllocsPerEvent = float64(rep.Mallocs) / float64(rep.SimEvents)
	}
}

// runOne executes one experiment with panic recovery, an optional per-run
// timeout, and a progress ticker sampling the sim event counters.
func runOne(ctx context.Context, exp experiments.Experiment, scale experiments.Scale,
	index, total int, opts Options, sink Sink, doneWall time.Duration) RunRecord {

	emit := func(e Event) {
		if sink != nil {
			sink.Event(e)
		}
	}
	rec := RunRecord{ID: exp.ID, Title: exp.Title, Scale: string(scale), Tables: []*experiments.Table{}}
	emit(Event{Kind: RunStarted, ID: exp.ID, Index: index, Total: total})

	runCtx, cancel := context.WithCancel(ctx)
	if opts.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
	}
	defer cancel()

	ev0, st0 := sim.Counters()
	m0 := mallocCount()
	start := time.Now()

	var stopProgress chan struct{}
	if sink != nil && opts.ProgressInterval > 0 {
		stopProgress = make(chan struct{})
		go func() {
			tick := time.NewTicker(opts.ProgressInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					emit(progressEvent(exp.ID, index, total, start, ev0, st0, doneWall))
				}
			}
		}()
	}

	tables, err, stalled := watchRun(runCtx, cancel, exp, scale, opts.StallWindow)
	wall := time.Since(start)
	if stopProgress != nil {
		close(stopProgress)
	}

	ev1, st1 := sim.Counters()
	rec.WallSeconds = wall.Seconds()
	rec.SimEvents = ev1 - ev0
	rec.SimSeconds = (st1 - st0).Seconds()
	if rec.WallSeconds > 0 {
		rec.EventsPerSecond = float64(rec.SimEvents) / rec.WallSeconds
	}
	rec.Mallocs = mallocCount() - m0
	if rec.SimEvents > 0 {
		rec.AllocsPerEvent = float64(rec.Mallocs) / float64(rec.SimEvents)
	}
	switch {
	case stalled:
		rec.Status = StatusStalled
	case err != nil && (errors.Is(err, context.DeadlineExceeded) || runCtx.Err() == context.DeadlineExceeded):
		rec.Status = StatusTimeout
	case err != nil:
		rec.Status = StatusError
	default:
		rec.Status = StatusOK
	}
	if err != nil {
		rec.Error = err.Error()
	} else if tables != nil {
		rec.Tables = tables
	}
	rec.SeriesPaths = experiments.SeriesPaths(opts.MetricsDir, exp.ID)
	emit(Event{
		Kind: RunFinished, ID: exp.ID, Index: index, Total: total,
		Err: err, Status: rec.Status, Wall: wall, SimEvents: rec.SimEvents,
		EventsPerSec: rec.EventsPerSecond, SimSeconds: rec.SimSeconds,
		SimPerWall: rec.SimSeconds / wall.Seconds(), Tables: tables,
	})
	return rec
}

// watchRun executes the experiment in its own goroutine and, when a
// stall window is set, polls the process-wide sim counters; a window with no
// advance abandons the run (the goroutine is left behind — runCtx is
// canceled so a cooperative runner exits at its next checkpoint, but a truly
// wedged one leaks until process exit, which is the graceful-degradation
// trade the watchdog makes to keep the sweep alive).
func watchRun(runCtx context.Context, cancel context.CancelFunc, exp experiments.Experiment,
	scale experiments.Scale, window time.Duration) (tables []*experiments.Table, err error, stalled bool) {

	type runResult struct {
		tables []*experiments.Table
		err    error
	}
	done := make(chan runResult, 1) // buffered: an abandoned run must not block sending
	go func() {
		t, e := safeRun(runCtx, exp, scale)
		done <- runResult{t, e}
	}()

	if window <= 0 {
		r := <-done
		return r.tables, r.err, false
	}

	poll := window / 8
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	lastEv, _ := sim.Counters()
	lastAdvance := time.Now()
	for {
		select {
		case r := <-done:
			return r.tables, r.err, false
		case <-tick.C:
			if ev, _ := sim.Counters(); ev != lastEv {
				lastEv, lastAdvance = ev, time.Now()
			} else if time.Since(lastAdvance) >= window {
				cancel()
				msg := fmt.Sprintf("harness: %s made no sim progress for %s; run abandoned as stalled",
					exp.ID, window)
				// A metrics-enabled run leaves active flight recorders; their
				// trailing series window is the stall's repro bundle.
				if dump := obs.ActiveFlightDumps(maxStallDumpLines); dump != "" {
					msg += "\n" + dump
				}
				return nil, errors.New(msg), true
			}
		}
	}
}

// progressEvent samples the process-wide sim counters and estimates the
// sweep's remaining time from the average wall time of completed runs.
func progressEvent(id string, index, total int, start time.Time, ev0 uint64, st0 sim.Time, doneWall time.Duration) Event {
	ev, st := sim.Counters()
	wall := time.Since(start)
	e := Event{
		Kind: Progress, ID: id, Index: index, Total: total,
		Wall: wall, SimEvents: ev - ev0, SimSeconds: (st - st0).Seconds(),
	}
	if ws := wall.Seconds(); ws > 0 {
		e.EventsPerSec = float64(e.SimEvents) / ws
		e.SimPerWall = e.SimSeconds / ws
	}
	if index > 0 {
		avg := doneWall / time.Duration(index)
		remaining := avg * time.Duration(total-index-1)
		if avg > wall {
			remaining += avg - wall
		}
		e.ETA = remaining
	}
	return e
}

// safeRun invokes the experiment's runner, converting a panic anywhere in
// the scenario (bad scheme deep inside a topology builder, for example)
// into an error attributed to this run.
func safeRun(ctx context.Context, exp experiments.Experiment, scale experiments.Scale) (tables []*experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: %s panicked: %v", exp.ID, r)
		}
	}()
	if exp.Run == nil {
		return nil, fmt.Errorf("harness: experiment %q has no runner", exp.ID)
	}
	return exp.Run(ctx, scale)
}
