package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pert/internal/cache"
	"pert/internal/experiments"
	"pert/internal/obs"
	"pert/internal/sim"
)

// maxStallDumpLines bounds the flight-recorder text appended to a
// stalled-run error, keeping report entries readable when many recorders are
// active.
const maxStallDumpLines = 400

// mallocCount reads the process's cumulative heap-object allocation count.
// Deltas across a sequential run attribute its allocations (see
// RunRecord.Mallocs for the caveats).
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Run executes the sweep the spec describes — its registry experiments in
// order, then its inline scenario cell — and returns the aggregated report.
// Per-run failures (panics, bad specs, unknown IDs, per-run timeouts) become
// RunRecord.Error entries and the sweep continues; only cancellation of ctx
// stops the sweep early, returning the partial report alongside ctx's
// error. The report is never nil.
//
// With spec.Cache enabled, the sweep partitions into cache hits and misses:
// hits replay their committed RunRecord without simulating (marked
// `cached` in the report), misses run under a lockfile claim and commit
// atomically on success — so a killed sweep resumes exactly where it
// stopped, and concurrent worker processes sharing the cache directory
// split the sweep between them (a loser of a claim race waits for the
// winner's commit instead of recomputing).
func Run(ctx context.Context, spec RunSpec) (*Report, error) {
	return RunExperiments(ctx, spec.cells(), spec)
}

// RunExperiments is Run for a caller-supplied experiment list (tests and
// custom sweeps); spec.Experiments and spec.Scenario are ignored. Cached
// cells are keyed by experiment ID, so custom runners must be deterministic
// functions of (ID, scale, seed, code version) to share a cache directory.
func RunExperiments(ctx context.Context, exps []experiments.Experiment, spec RunSpec) (*Report, error) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Version:       Version(),
		Scale:         string(spec.scale()),
		StartedAt:     time.Now().UTC(),
	}
	if err := spec.Validate(); err != nil {
		return rep, err
	}
	workers := spec.Workers
	if workers < 1 {
		workers = experiments.Workers(ctx)
	}
	ctx = experiments.WithWorkers(ctx, workers)
	ctx = experiments.WithShards(ctx, spec.Shards) // no-op when < 1
	rep.Workers = workers

	var store *cache.Store
	if spec.Cache.enabled() {
		s, err := cache.Open(spec.Cache.Dir)
		if err != nil {
			return rep, err
		}
		if spec.Cache.StaleClaim > 0 {
			s.StaleClaim = spec.Cache.StaleClaim
		}
		store = s
		rep.CacheDir = s.Dir()
	}

	var sink Sink
	if spec.Sink != nil {
		sink = &lockedSink{s: spec.Sink}
	}

	start := time.Now()
	ev0, _ := sim.Counters()
	m0 := mallocCount()

	var doneWall time.Duration
	for i, exp := range exps {
		if err := ctx.Err(); err != nil {
			finish(rep, start, ev0, m0)
			return rep, err
		}
		rec := runCellAttempts(ctx, exp, spec, store, sink, i, len(exps), doneWall)
		if rec.Cached {
			rep.CacheHits++
		} else if store != nil {
			rep.CacheMisses++
		}
		if rec.Attempts > 1 {
			rep.Retries += rec.Attempts - 1
		}
		doneWall += time.Duration(rec.WallSeconds * float64(time.Second))
		rep.Runs = append(rep.Runs, rec)
	}
	finish(rep, start, ev0, m0)
	return rep, nil
}

// finish fills the report's sweep-wide timing and allocation fields.
func finish(rep *Report, start time.Time, ev0, m0 uint64) {
	ev1, _ := sim.Counters()
	rep.WallSeconds = time.Since(start).Seconds()
	rep.SimEvents = ev1 - ev0
	if rep.WallSeconds > 0 {
		rep.EventsPerSecond = float64(rep.SimEvents) / rep.WallSeconds
	}
	rep.Mallocs = mallocCount() - m0
	if rep.SimEvents > 0 {
		rep.AllocsPerEvent = float64(rep.Mallocs) / float64(rep.SimEvents)
	}
}

// runCell resolves one sweep cell against the cache — replay a committed
// entry, wait out another worker's claim, or execute and commit — falling
// back to a plain uncached run when the cell has no stable key or the
// policy forbids the needed side.
func runCell(ctx context.Context, exp experiments.Experiment, spec RunSpec,
	store *cache.Store, sink Sink, index, total int, doneWall time.Duration, attempt int) RunRecord {

	key := cellKey(spec, exp)
	if store == nil || key == "" {
		return runOne(ctx, exp, spec, spec.MetricsDir, sink, index, total, doneWall, attempt)
	}
	for {
		if spec.Cache.reads() {
			if rec, ok := replayCell(store, key, exp, sink, index, total); ok {
				return rec
			}
		}
		if !spec.Cache.writes() {
			// Read-only policy and no committed entry: plain run.
			rec := runOne(ctx, exp, spec, spec.MetricsDir, sink, index, total, doneWall, attempt)
			rec.CacheKey = key
			return rec
		}
		claim, err := store.Claim(key)
		if err != nil {
			// A broken cache directory degrades to uncached execution
			// rather than failing the sweep.
			rec := runOne(ctx, exp, spec, spec.MetricsDir, sink, index, total, doneWall, attempt)
			rec.CacheKey = key
			return rec
		}
		if claim == nil {
			// Another live worker owns this cell. Wait for its commit when
			// we may read it; otherwise compute our own uncommitted copy.
			if !spec.Cache.reads() {
				rec := runOne(ctx, exp, spec, spec.MetricsDir, sink, index, total, doneWall, attempt)
				rec.CacheKey = key
				return rec
			}
			entry, err := store.Wait(ctx, key, 0)
			if err != nil {
				status := StatusError
				if ctx.Err() != nil {
					status = StatusCanceled // the sweep was interrupted, not the cell
				}
				rec := RunRecord{ID: exp.ID, Title: exp.Title, Scale: string(spec.scale()),
					Status: status, Error: err.Error(), Attempts: attempt,
					CacheKey: key, Tables: []*experiments.Table{}}
				return rec
			}
			if entry != nil {
				continue // committed: replay on the next pass
			}
			continue // owner released without committing: retry the claim
		}
		return computeAndCommit(ctx, exp, spec, key, claim, sink, index, total, doneWall, attempt)
	}
}

// cellKey returns the cell's content address, or "" when the spec or cell
// is not cacheable (no cache configured, Go-only scenario overrides).
func cellKey(spec RunSpec, exp experiments.Experiment) string {
	if !spec.Cache.enabled() {
		return ""
	}
	var key string
	var err error
	if spec.Scenario != nil && exp.ID == ScenarioCellID(spec.Scenario) {
		key, err = spec.ScenarioKey(Version())
	} else {
		key, err = spec.CellKey(exp.ID, Version())
	}
	if err != nil {
		return ""
	}
	return key
}

// replayCell replays a committed cache entry as this sweep's record for the
// cell: the stored RunRecord byte-for-byte (timings included) plus the
// cached/cache_key markers, with series paths re-discovered under the cell
// so vanished files never surface as errors. A corrupt record is evicted
// and reported as a miss so the cell recomputes.
func replayCell(store *cache.Store, key string, exp experiments.Experiment,
	sink Sink, index, total int) (RunRecord, bool) {

	entry, ok, err := store.Get(key)
	if err != nil || !ok {
		return RunRecord{}, false
	}
	rec, err := DecodeRunRecord(entry.Record)
	if err != nil {
		store.Evict(key)
		return RunRecord{}, false
	}
	rec.Cached = true
	rec.CacheKey = key
	rec.SeriesPaths = experiments.SeriesPaths(filepath.Join(entry.Dir, cache.SeriesDirName), exp.ID)
	if rec.Tables == nil {
		rec.Tables = []*experiments.Table{}
	}
	if sink != nil {
		sink.Event(Event{Kind: RunStarted, ID: exp.ID, Index: index, Total: total})
		var err error
		if rec.Error != "" {
			err = errors.New(rec.Error)
		}
		sink.Event(Event{
			Kind: RunFinished, ID: exp.ID, Index: index, Total: total,
			Err: err, Status: rec.Status, Cached: true,
			SimEvents: rec.SimEvents, SimSeconds: rec.SimSeconds, Tables: rec.Tables,
		})
	}
	return rec, true
}

// computeAndCommit runs a claimed cell and publishes the result. Only
// healthy runs commit: errors, timeouts, and stalls release the claim so
// the cell recomputes on the next attempt. A StatusOK run commits even when
// the sweep was cancelled right after it — the cell is complete and
// deterministic, and keeping it is what makes a killed sweep resume from
// the exact cell that was in flight instead of one earlier.
func computeAndCommit(ctx context.Context, exp experiments.Experiment, spec RunSpec,
	key string, claim *cache.Claim, sink Sink, index, total int, doneWall time.Duration, attempt int) RunRecord {

	metricsRoot := ""
	if spec.metricsOn() {
		metricsRoot = claim.SeriesDir()
	}
	rec := runOne(ctx, exp, spec, metricsRoot, sink, index, total, doneWall, attempt)
	rec.CacheKey = key
	if rec.Status != StatusOK {
		claim.Release()
		rec.SeriesPaths = nil // staged series are discarded with the claim
		return rec
	}
	// Series were staged under the claim; the committed cell is their
	// canonical address.
	finalSeries := filepath.Join(claim.Dir(), cache.SeriesDirName)
	for i, p := range rec.SeriesPaths {
		if rel, err := filepath.Rel(claim.SeriesDir(), p); err == nil && !strings.HasPrefix(rel, "..") {
			rec.SeriesPaths[i] = filepath.Join(finalSeries, rel)
		}
	}
	blob, err := json.Marshal(rec)
	if err == nil {
		_, err = claim.Commit(blob)
	}
	if err != nil {
		// The result is still valid for this sweep; only the cache write
		// failed. Release is idempotent if Commit already cleaned up.
		claim.Release()
		rec.SeriesPaths = nil
	}
	return rec
}

// runOne executes one experiment with panic recovery, an optional per-run
// timeout, and a progress ticker sampling the sim event counters. When
// metricsRoot is non-empty the run's time series stream under it.
func runOne(ctx context.Context, exp experiments.Experiment, spec RunSpec,
	metricsRoot string, sink Sink, index, total int, doneWall time.Duration, attempt int) RunRecord {

	emit := func(e Event) {
		if sink != nil {
			sink.Event(e)
		}
	}
	scale := spec.scale()
	rec := RunRecord{ID: exp.ID, Title: exp.Title, Scale: string(scale),
		Attempts: attempt, Tables: []*experiments.Table{}}
	emit(Event{Kind: RunStarted, ID: exp.ID, Index: index, Total: total})

	if metricsRoot != "" {
		ctx = experiments.WithMetrics(ctx, experiments.MetricsConfig{
			Dir:      metricsRoot,
			Interval: sim.Duration(spec.MetricsInterval),
		})
	}
	runCtx, cancel := context.WithCancel(ctx)
	if spec.Timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, spec.Timeout)
	}
	defer cancel()

	ev0, st0 := sim.Counters()
	m0 := mallocCount()
	start := time.Now()

	var stopProgress chan struct{}
	if sink != nil && spec.ProgressInterval > 0 {
		stopProgress = make(chan struct{})
		go func() {
			tick := time.NewTicker(spec.ProgressInterval)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					emit(progressEvent(exp.ID, index, total, start, ev0, st0, doneWall))
				}
			}
		}()
	}

	tables, err, stalled := watchRun(runCtx, cancel, exp, scale, spec.StallWindow)
	wall := time.Since(start)
	if stopProgress != nil {
		close(stopProgress)
	}

	ev1, st1 := sim.Counters()
	rec.WallSeconds = wall.Seconds()
	rec.SimEvents = ev1 - ev0
	rec.SimSeconds = (st1 - st0).Seconds()
	if rec.WallSeconds > 0 {
		rec.EventsPerSecond = float64(rec.SimEvents) / rec.WallSeconds
	}
	rec.Mallocs = mallocCount() - m0
	if rec.SimEvents > 0 {
		rec.AllocsPerEvent = float64(rec.Mallocs) / float64(rec.SimEvents)
	}
	switch {
	case stalled:
		rec.Status = StatusStalled
	case err != nil && ctx.Err() != nil:
		// The sweep's own context died, not the per-run deadline: the cell
		// was interrupted, and retrying it against a dead context is futile.
		rec.Status = StatusCanceled
	case err != nil && (errors.Is(err, context.DeadlineExceeded) || runCtx.Err() == context.DeadlineExceeded):
		rec.Status = StatusTimeout
	case err != nil:
		rec.Status = StatusError
	default:
		rec.Status = StatusOK
	}
	if err != nil {
		rec.Error = err.Error()
	} else if tables != nil {
		rec.Tables = tables
	}
	rec.SeriesPaths = experiments.SeriesPaths(metricsRoot, exp.ID)
	emit(Event{
		Kind: RunFinished, ID: exp.ID, Index: index, Total: total,
		Err: err, Status: rec.Status, Wall: wall, SimEvents: rec.SimEvents,
		EventsPerSec: rec.EventsPerSecond, SimSeconds: rec.SimSeconds,
		SimPerWall: rec.SimSeconds / wall.Seconds(), Tables: tables,
	})
	return rec
}

// watchRun executes the experiment in its own goroutine and, when a
// stall window is set, polls the process-wide sim counters; a window with no
// advance abandons the run (the goroutine is left behind — runCtx is
// canceled so a cooperative runner exits at its next checkpoint, but a truly
// wedged one leaks until process exit, which is the graceful-degradation
// trade the watchdog makes to keep the sweep alive).
func watchRun(runCtx context.Context, cancel context.CancelFunc, exp experiments.Experiment,
	scale experiments.Scale, window time.Duration) (tables []*experiments.Table, err error, stalled bool) {

	type runResult struct {
		tables []*experiments.Table
		err    error
	}
	done := make(chan runResult, 1) // buffered: an abandoned run must not block sending
	go func() {
		t, e := safeRun(runCtx, exp, scale)
		done <- runResult{t, e}
	}()

	if window <= 0 {
		r := <-done
		return r.tables, r.err, false
	}

	poll := window / 8
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	lastEv, _ := sim.Counters()
	lastAdvance := time.Now()
	for {
		select {
		case r := <-done:
			return r.tables, r.err, false
		case <-tick.C:
			if ev, _ := sim.Counters(); ev != lastEv {
				lastEv, lastAdvance = ev, time.Now()
			} else if time.Since(lastAdvance) >= window {
				cancel()
				msg := fmt.Sprintf("harness: %s made no sim progress for %s; run abandoned as stalled",
					exp.ID, window)
				// A metrics-enabled run leaves active flight recorders; their
				// trailing series window is the stall's repro bundle.
				if dump := obs.ActiveFlightDumps(maxStallDumpLines); dump != "" {
					msg += "\n" + dump
				}
				return nil, errors.New(msg), true
			}
		}
	}
}

// progressEvent samples the process-wide sim counters and estimates the
// sweep's remaining time from the average wall time of completed runs.
func progressEvent(id string, index, total int, start time.Time, ev0 uint64, st0 sim.Time, doneWall time.Duration) Event {
	ev, st := sim.Counters()
	wall := time.Since(start)
	e := Event{
		Kind: Progress, ID: id, Index: index, Total: total,
		Wall: wall, SimEvents: ev - ev0, SimSeconds: (st - st0).Seconds(),
	}
	if ws := wall.Seconds(); ws > 0 {
		e.EventsPerSec = float64(e.SimEvents) / ws
		e.SimPerWall = e.SimSeconds / ws
	}
	if index > 0 {
		avg := doneWall / time.Duration(index)
		remaining := avg * time.Duration(total-index-1)
		if avg > wall {
			remaining += avg - wall
		}
		e.ETA = remaining
	}
	return e
}

// safeRun invokes the experiment's runner, converting a panic anywhere in
// the scenario (bad scheme deep inside a topology builder, for example)
// into an error attributed to this run.
func safeRun(ctx context.Context, exp experiments.Experiment, scale experiments.Scale) (tables []*experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: %s panicked: %v", exp.ID, r)
		}
	}()
	if exp.Run == nil {
		return nil, fmt.Errorf("harness: experiment %q has no runner", exp.ID)
	}
	return exp.Run(ctx, scale)
}
