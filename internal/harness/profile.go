package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile at cpuPath and arranges for an
// allocation profile at memPath; either path may be empty to skip that
// profile. The returned stop function ends the CPU profile and writes the
// allocation profile; commands wire the pair straight to their -cpuprofile
// and -memprofile flags and call stop on the way out. Profiles are the
// intended companion to BENCH_quick.json: the report says how much time and
// allocation a sweep cost, the profiles say where.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the live set so inuse numbers are exact
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("writing allocation profile: %w", err)
			}
		}
		return nil
	}, nil
}
