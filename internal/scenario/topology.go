package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"pert/internal/netem"
	"pert/internal/topo"
)

// NamedLink is one measurable core link of a built topology.
type NamedLink struct {
	Name string
	Link *netem.Link
}

// Built is a compiled topology: endpoint sets and core links addressable by
// the same selector strings the Spec uses.
type Built interface {
	// Nodes resolves an endpoint selector ("left", "cloud3[0:4]", ...).
	Nodes(sel string) ([]*netem.Node, error)
	// Link resolves a link selector ("forward", "core2", "rcore2", ...).
	Link(sel string) (*netem.Link, error)
	// Measured lists the primary-direction core links in order — the links
	// generic runs meter for the standard panels.
	Measured() []NamedLink
	// BufferPkts is the realized core queue size in packets.
	BufferPkts() int
	// CapacityPPS is the core capacity in packets/second.
	CapacityPPS() float64
	// PartitionHint maps every node ID to a shard for a parallel run with
	// the given shard count (clamped to the template's useful maximum).
	// Every cut the hint makes falls on a positive-delay core link, so the
	// assignment is always valid for netem.Partition.
	PartitionHint(shards int) []int
}

// selector is a parsed endpoint/link selector: a base name plus an optional
// half-open index range.
type selector struct {
	base     string
	lo, hi   int
	hasRange bool
}

// parseSelector splits "name[lo:hi]" into its parts.
func parseSelector(s string) (selector, error) {
	out := selector{base: s}
	i := strings.IndexByte(s, '[')
	if i < 0 {
		return out, nil
	}
	if !strings.HasSuffix(s, "]") {
		return out, fmt.Errorf("bad selector %q: unterminated range", s)
	}
	out.base = s[:i]
	r := s[i+1 : len(s)-1]
	j := strings.IndexByte(r, ':')
	if j < 0 {
		return out, fmt.Errorf("bad selector %q: range must be lo:hi", s)
	}
	lo, err := strconv.Atoi(r[:j])
	if err != nil {
		return out, fmt.Errorf("bad selector %q: %v", s, err)
	}
	hi, err := strconv.Atoi(r[j+1:])
	if err != nil {
		return out, fmt.Errorf("bad selector %q: %v", s, err)
	}
	if lo < 0 || hi < lo {
		return out, fmt.Errorf("bad selector %q: range [%d:%d) is invalid", s, lo, hi)
	}
	out.lo, out.hi, out.hasRange = lo, hi, true
	return out, nil
}

// slice applies the selector's range to a node set.
func (s selector) slice(nodes []*netem.Node) ([]*netem.Node, error) {
	if !s.hasRange {
		return nodes, nil
	}
	if s.hi > len(nodes) {
		return nil, fmt.Errorf("selector %q[%d:%d) exceeds the %d available hosts", s.base, s.lo, s.hi, len(nodes))
	}
	return nodes[s.lo:s.hi], nil
}

// need reports how many hosts the selector requires on its side when the
// group has the given flow count (used to derive dumbbell Hosts).
func (s selector) need(count int) int {
	if s.hasRange {
		return s.hi
	}
	return count
}

// validate checks the template and its parameters without building.
func (t TopologySpec) validate() error {
	switch t.Template {
	case DumbbellTemplate:
		if t.Bandwidth <= 0 {
			return fmt.Errorf("scenario: dumbbell needs a positive bandwidth")
		}
		for _, r := range t.RTTs {
			if r <= 0 {
				return fmt.Errorf("scenario: non-positive rtt %v", r)
			}
		}
	case ParkingLotTemplate:
		if t.Routers == 1 {
			return fmt.Errorf("scenario: parking lot needs at least two routers")
		}
		if t.Routers < 0 || t.CloudSize < 0 {
			return fmt.Errorf("scenario: negative parking-lot size")
		}
		if t.CoreBW < 0 {
			return fmt.Errorf("scenario: negative core bandwidth")
		}
		for _, d := range t.EdgeDelays {
			if d < 0 {
				return fmt.Errorf("scenario: negative edge delay %v", d)
			}
		}
	default:
		return fmt.Errorf("scenario: unknown topology template %q (want %q or %q)", t.Template, DumbbellTemplate, ParkingLotTemplate)
	}
	if t.BufferPkts < 0 || t.PktSize < 0 || t.Hosts < 0 {
		return fmt.Errorf("scenario: negative topology size field")
	}
	if t.AccessJitter < 0 || t.Delay < 0 || t.CoreDelay < 0 {
		return fmt.Errorf("scenario: negative topology delay field")
	}
	return nil
}

// routers returns the parking-lot router count with the paper default.
func (t TopologySpec) routers() int {
	if t.Routers == 0 {
		return 6
	}
	return t.Routers
}

// cloudSize returns the parking-lot cloud size with the paper default.
func (t TopologySpec) cloudSize() int {
	if t.CloudSize == 0 {
		return 20
	}
	return t.CloudSize
}

// checkNodeSelector verifies an endpoint selector fits the template.
func (t TopologySpec) checkNodeSelector(s string) error {
	sel, err := parseSelector(s)
	if err != nil {
		return err
	}
	switch t.Template {
	case DumbbellTemplate:
		if sel.base != "left" && sel.base != "right" {
			return fmt.Errorf("bad endpoint %q: a dumbbell has %q and %q", s, "left", "right")
		}
		if sel.hasRange && t.Hosts > 0 && sel.hi > t.Hosts {
			return fmt.Errorf("endpoint %q exceeds the %d host pairs", s, t.Hosts)
		}
	case ParkingLotTemplate:
		i, err := cloudIndex(sel.base)
		if err != nil {
			return fmt.Errorf("bad endpoint %q: %w", s, err)
		}
		if i < 1 || i > t.routers() {
			return fmt.Errorf("endpoint %q: cloud index outside 1..%d", s, t.routers())
		}
		if sel.hasRange && sel.hi > t.cloudSize() {
			return fmt.Errorf("endpoint %q exceeds the %d hosts per cloud", s, t.cloudSize())
		}
	}
	return nil
}

// checkLinkSelector verifies a link selector fits the template.
func (t TopologySpec) checkLinkSelector(s string) error {
	switch t.Template {
	case DumbbellTemplate:
		if s != "forward" && s != "reverse" {
			return fmt.Errorf("bad link %q: a dumbbell has %q and %q", s, "forward", "reverse")
		}
	case ParkingLotTemplate:
		i, err := coreIndex(s)
		if err != nil {
			return fmt.Errorf("bad link %q: %w", s, err)
		}
		if i < 1 || i >= t.routers() {
			return fmt.Errorf("link %q: core index outside 1..%d", s, t.routers()-1)
		}
	}
	return nil
}

// cloudIndex parses "cloudN" (1-based).
func cloudIndex(base string) (int, error) {
	if !strings.HasPrefix(base, "cloud") {
		return 0, fmt.Errorf("a parking lot has clouds %q..%q", "cloud1", "cloudN")
	}
	return strconv.Atoi(base[len("cloud"):])
}

// coreIndex parses "coreN" or "rcoreN" (1-based; rcore is the reverse
// direction of core link N).
func coreIndex(s string) (int, error) {
	s = strings.TrimPrefix(s, "r")
	if !strings.HasPrefix(s, "core") {
		return 0, fmt.Errorf("a parking lot has links %q/%q..", "core1", "rcore1")
	}
	return strconv.Atoi(s[len("core"):])
}

// dumbbellBuilt adapts topo.Dumbbell to the Built interface.
type dumbbellBuilt struct{ d *topo.Dumbbell }

func (b dumbbellBuilt) Nodes(s string) ([]*netem.Node, error) {
	sel, err := parseSelector(s)
	if err != nil {
		return nil, err
	}
	switch sel.base {
	case "left":
		return sel.slice(b.d.Left)
	case "right":
		return sel.slice(b.d.Right)
	}
	return nil, fmt.Errorf("bad endpoint %q: a dumbbell has %q and %q", s, "left", "right")
}

func (b dumbbellBuilt) Link(s string) (*netem.Link, error) {
	switch s {
	case "forward":
		return b.d.Forward, nil
	case "reverse":
		return b.d.Reverse, nil
	}
	return nil, fmt.Errorf("bad link %q: a dumbbell has %q and %q", s, "forward", "reverse")
}

func (b dumbbellBuilt) Measured() []NamedLink {
	return []NamedLink{{Name: "forward", Link: b.d.Forward}}
}

func (b dumbbellBuilt) BufferPkts() int           { return b.d.BufferPkts }
func (b dumbbellBuilt) CapacityPPS() float64      { return b.d.CapacityPPS }
func (b dumbbellBuilt) PartitionHint(n int) []int { return b.d.PartitionHint(n) }

// parkinglotBuilt adapts topo.ParkingLot to the Built interface.
type parkinglotBuilt struct{ p *topo.ParkingLot }

func (b parkinglotBuilt) Nodes(s string) ([]*netem.Node, error) {
	sel, err := parseSelector(s)
	if err != nil {
		return nil, err
	}
	i, err := cloudIndex(sel.base)
	if err != nil {
		return nil, fmt.Errorf("bad endpoint %q: %w", s, err)
	}
	if i < 1 || i > len(b.p.Clouds) {
		return nil, fmt.Errorf("endpoint %q: cloud index outside 1..%d", s, len(b.p.Clouds))
	}
	return sel.slice(b.p.Clouds[i-1])
}

func (b parkinglotBuilt) Link(s string) (*netem.Link, error) {
	i, err := coreIndex(s)
	if err != nil {
		return nil, fmt.Errorf("bad link %q: %w", s, err)
	}
	if i < 1 || i > len(b.p.Forward) {
		return nil, fmt.Errorf("link %q: core index outside 1..%d", s, len(b.p.Forward))
	}
	if strings.HasPrefix(s, "r") {
		return b.p.Reverse[i-1], nil
	}
	return b.p.Forward[i-1], nil
}

func (b parkinglotBuilt) Measured() []NamedLink {
	out := make([]NamedLink, len(b.p.Forward))
	for i, l := range b.p.Forward {
		out[i] = NamedLink{Name: fmt.Sprintf("core%d", i+1), Link: l}
	}
	return out
}

func (b parkinglotBuilt) BufferPkts() int           { return b.p.BufferPkts }
func (b parkinglotBuilt) CapacityPPS() float64      { return b.p.CapacityPPS }
func (b parkinglotBuilt) PartitionHint(n int) []int { return b.p.PartitionHint(n) }
