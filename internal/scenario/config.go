package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pert/internal/netem"
	"pert/internal/sim"
)

// Config is the JSON form of a Spec — scenario schema v2, documented in
// EXPERIMENTS.md ("Scenario schema v2"). Durations are Go duration strings
// ("60ms", "50s"); empty strings take the documented defaults. Unlike the
// legacy single-scheme dumbbell schema (v1), a v2 file names a topology
// template and any number of per-scheme flow groups, so mixed-scheme runs on
// arbitrary templates need no Go code.
type Config struct {
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed"`

	Topology TopologyConfig `json:"topology"`
	Groups   []GroupConfig  `json:"groups"`
	Links    []LinkConfig   `json:"links,omitempty"`

	Duration     string `json:"duration"`
	MeasureFrom  string `json:"measure_from,omitempty"`  // default duration/4
	MeasureUntil string `json:"measure_until,omitempty"` // default duration
	TargetDelay  string `json:"target_delay,omitempty"`

	// Shards > 1 requests the parallel engine (see Spec.Shards).
	Shards int `json:"shards,omitempty"`
}

// TopologyConfig is the JSON form of a TopologySpec.
type TopologyConfig struct {
	Template string `json:"template"`

	// Dumbbell.
	BandwidthBps float64  `json:"bandwidth_bps,omitempty"`
	Delay        string   `json:"delay,omitempty"`
	Hosts        int      `json:"hosts,omitempty"`
	RTTs         []string `json:"rtts,omitempty"`
	AccessJitter string   `json:"access_jitter,omitempty"`

	// Parking lot.
	Routers    int      `json:"routers,omitempty"`
	CloudSize  int      `json:"cloud_size,omitempty"`
	CoreBwBps  float64  `json:"core_bw_bps,omitempty"`
	CoreDelay  string   `json:"core_delay,omitempty"`
	EdgeDelays []string `json:"edge_delays,omitempty"` // per-cloud, round-robin

	// Shared.
	BufferPkts int    `json:"buffer_pkts,omitempty"`
	PktSize    int    `json:"pkt_size,omitempty"`
	AQM        string `json:"aqm,omitempty"`
}

// GroupConfig is the JSON form of a FlowGroupSpec.
type GroupConfig struct {
	Label       string `json:"label,omitempty"`
	Scheme      string `json:"scheme"`
	Count       int    `json:"count"`
	From        string `json:"from"`
	To          string `json:"to"`
	Traffic     string `json:"traffic,omitempty"`      // "ftp" (default) or "web"
	StartWindow string `json:"start_window,omitempty"` // default measure_from/2
	StartAt     string `json:"start_at,omitempty"`

	// Model: "packet" (default) spawns one tcp.Conn per flow; "fluid" runs
	// the group as one modeled PERT/RED aggregate on the bottleneck — the
	// hybrid substrate's background traffic, with counts up to 10^6.
	Model string `json:"model,omitempty"`
	// RTT is the modeled round-trip time of a fluid group ("60ms");
	// default: the topology's first RTT. Fluid groups only.
	RTT string `json:"rtt,omitempty"`
}

// LinkConfig is the JSON form of a LinkRule.
type LinkConfig struct {
	Link string `json:"link"`

	LossRate     float64 `json:"loss_rate,omitempty"`
	DupRate      float64 `json:"dup_rate,omitempty"`
	ReorderRate  float64 `json:"reorder_rate,omitempty"`
	ReorderExtra string  `json:"reorder_extra,omitempty"`

	Schedule []ChangeConfig `json:"schedule,omitempty"`
}

// ChangeConfig is the JSON form of one netem.LinkChange.
type ChangeConfig struct {
	At          string  `json:"at"`
	CapacityBps float64 `json:"capacity_bps,omitempty"`
	Delay       string  `json:"delay,omitempty"`
	Down        bool    `json:"down,omitempty"`
	Up          bool    `json:"up,omitempty"`
}

// Load parses and validates a v2 JSON scenario.
func Load(r io.Reader) (Spec, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	return c.Spec()
}

// Spec converts the config to a validated Spec.
func (c Config) Spec() (Spec, error) {
	fail := func(err error) (Spec, error) { return Spec{}, err }
	dur, err := parseDur(c.Duration, 0)
	if err != nil || dur <= 0 {
		return fail(fmt.Errorf("scenario: bad duration %q", c.Duration))
	}
	from, err := parseDur(c.MeasureFrom, dur/4)
	if err != nil {
		return fail(fmt.Errorf("scenario: bad measure_from %q", c.MeasureFrom))
	}
	until, err := parseDur(c.MeasureUntil, dur)
	if err != nil {
		return fail(fmt.Errorf("scenario: bad measure_until %q", c.MeasureUntil))
	}
	target, err := parseDur(c.TargetDelay, 0)
	if err != nil {
		return fail(fmt.Errorf("scenario: bad target_delay %q", c.TargetDelay))
	}

	topoSpec, err := c.Topology.spec()
	if err != nil {
		return fail(err)
	}
	s := Spec{
		Name:         c.Name,
		Seed:         c.Seed,
		Topology:     topoSpec,
		Duration:     dur,
		MeasureFrom:  from,
		MeasureUntil: until,
		TargetDelay:  target,
		Shards:       c.Shards,
	}
	for i, g := range c.Groups {
		sw, err := parseDur(g.StartWindow, from/2)
		if err != nil || sw < 0 {
			return fail(fmt.Errorf("scenario: group %d: bad start_window %q", i, g.StartWindow))
		}
		at, err := parseDur(g.StartAt, 0)
		if err != nil {
			return fail(fmt.Errorf("scenario: group %d: bad start_at %q", i, g.StartAt))
		}
		if g.Scheme == "" {
			return fail(fmt.Errorf("scenario: group %d needs a scheme (known: %v)", i, Names()))
		}
		rtt, err := parseDur(g.RTT, 0)
		if err != nil || rtt < 0 {
			return fail(fmt.Errorf("scenario: group %d: bad rtt %q", i, g.RTT))
		}
		s.Groups = append(s.Groups, FlowGroupSpec{
			Label:       g.Label,
			Scheme:      g.Scheme,
			Count:       g.Count,
			From:        g.From,
			To:          g.To,
			Traffic:     TrafficKind(g.Traffic),
			StartWindow: sw,
			StartAt:     sim.Time(at),
			Model:       FlowModel(g.Model),
			RTT:         rtt,
		})
	}
	for i, l := range c.Links {
		extra, err := parseDur(l.ReorderExtra, 0)
		if err != nil || extra < 0 {
			return fail(fmt.Errorf("scenario: link rule %d: bad reorder_extra %q", i, l.ReorderExtra))
		}
		rule := LinkRule{
			Link:         l.Link,
			LossRate:     l.LossRate,
			DupRate:      l.DupRate,
			ReorderRate:  l.ReorderRate,
			ReorderExtra: extra,
		}
		if rule.Schedule, err = ParseSchedule(l.Schedule, dur); err != nil {
			return fail(fmt.Errorf("scenario: link rule %d: %w", i, err))
		}
		s.Links = append(s.Links, rule)
	}
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	return s, nil
}

// spec converts the topology config.
func (t TopologyConfig) spec() (TopologySpec, error) {
	out := TopologySpec{
		Template:   Template(t.Template),
		Bandwidth:  t.BandwidthBps,
		Hosts:      t.Hosts,
		Routers:    t.Routers,
		CloudSize:  t.CloudSize,
		CoreBW:     t.CoreBwBps,
		BufferPkts: t.BufferPkts,
		PktSize:    t.PktSize,
		AQM:        t.AQM,
	}
	var err error
	if out.Delay, err = parseDur(t.Delay, 0); err != nil || out.Delay < 0 {
		return out, fmt.Errorf("scenario: bad topology delay %q", t.Delay)
	}
	if out.AccessJitter, err = parseDur(t.AccessJitter, 0); err != nil || out.AccessJitter < 0 {
		return out, fmt.Errorf("scenario: bad access_jitter %q", t.AccessJitter)
	}
	if out.CoreDelay, err = parseDur(t.CoreDelay, 0); err != nil || out.CoreDelay < 0 {
		return out, fmt.Errorf("scenario: bad core_delay %q", t.CoreDelay)
	}
	for _, s := range t.RTTs {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			return out, fmt.Errorf("scenario: bad rtt %q", s)
		}
		out.RTTs = append(out.RTTs, sim.Time(d))
	}
	for _, s := range t.EdgeDelays {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return out, fmt.Errorf("scenario: bad edge delay %q", s)
		}
		out.EdgeDelays = append(out.EdgeDelays, sim.Time(d))
	}
	return out, nil
}

// ParseSchedule converts JSON change configs into a link schedule, rejecting
// changes outside [0, dur] and contradictory flap states at load time (the
// netem layer panics on them at apply time). Both the v2 loader and the
// legacy flat dumbbell schema share it.
func ParseSchedule(changes []ChangeConfig, dur sim.Duration) (netem.LinkSchedule, error) {
	var out netem.LinkSchedule
	for j, ch := range changes {
		at, err := parseDur(ch.At, -1)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("schedule change %d: bad time %q", j, ch.At)
		}
		if at > dur {
			return nil, fmt.Errorf("schedule change %d at %v exceeds the %v duration", j, at, dur)
		}
		delay, err := parseDur(ch.Delay, 0)
		if err != nil || delay < 0 {
			return nil, fmt.Errorf("schedule change %d: bad delay %q", j, ch.Delay)
		}
		if ch.CapacityBps < 0 {
			return nil, fmt.Errorf("schedule change %d: negative capacity", j)
		}
		if ch.Down && ch.Up {
			return nil, fmt.Errorf("schedule change %d is both down and up", j)
		}
		out = append(out, netem.LinkChange{
			At:       sim.Time(at),
			Capacity: ch.CapacityBps,
			Delay:    delay,
			Down:     ch.Down,
			Up:       ch.Up,
		})
	}
	return out, nil
}

// parseDur parses a Go duration string, returning def for "".
func parseDur(s string, def sim.Duration) (sim.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(d), nil
}

// IsV2 sniffs whether raw JSON uses schema v2 (a "topology" or "groups"
// key) rather than the legacy flat dumbbell schema — how pertsim decides
// which loader to hand a -config file to.
func IsV2(raw []byte) bool {
	var probe struct {
		Topology *json.RawMessage `json:"topology"`
		Groups   *json.RawMessage `json:"groups"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return false
	}
	return probe.Topology != nil || probe.Groups != nil
}
