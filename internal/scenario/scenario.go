package scenario

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/topo"
)

// TrafficKind selects a flow group's generator.
type TrafficKind string

// FTP is a fleet of unbounded long-term transfers (the paper's long flows);
// Web is a fleet of think/fetch web sessions per Feldmann et al. [11].
const (
	FTP TrafficKind = "ftp"
	Web TrafficKind = "web"
)

// Template names a built-in topology shape.
type Template string

// DumbbellTemplate is the single-bottleneck Section 4 workhorse;
// ParkingLotTemplate is the Figure 10 multi-bottleneck router chain.
const (
	DumbbellTemplate   Template = "dumbbell"
	ParkingLotTemplate Template = "parkinglot"
)

// TopologySpec describes the node/link graph by template. Fields not used by
// the selected template are ignored; zero values take the template defaults
// documented on internal/topo's config structs.
type TopologySpec struct {
	Template Template

	// Dumbbell parameters.
	Bandwidth    float64        // bottleneck rate, bits/s
	Delay        sim.Duration   // bottleneck one-way delay; 0 = RTTs[0]/3
	Hosts        int            // host pairs; 0 = derived from the flow groups
	RTTs         []sim.Duration // end-to-end RTTs, round-robin; 0 = [60ms]
	AccessJitter sim.Duration   // per-packet access-link delay noise bound

	// Parking-lot parameters.
	Routers   int          // core routers; 0 = the paper's 6
	CloudSize int          // hosts per cloud; 0 = the paper's 20
	CoreBW    float64      // core link rate; 0 = the paper's 150 Mbps
	CoreDelay sim.Duration // core one-way delay; 0 = the paper's 5 ms
	// EdgeDelays gives cloud i the attachment delay EdgeDelays[i % len],
	// overriding the paper's uniform 5 ms — heterogeneous RTTs per cloud
	// without perturbing the core chain. Empty keeps the uniform default.
	EdgeDelays []sim.Duration

	// Shared parameters.
	BufferPkts int // core queue size; 0 = the template's BDP rule
	PktSize    int // wire packet size for BDP accounting; 0 = 1040

	// AQM names the registered scheme whose Queue factory builds the core
	// queues (both directions). Empty = the first flow group's scheme.
	AQM string
	// Queue overrides AQM with an explicit factory (Go callers only; the
	// JSON loader always goes through AQM). Excluded from the serialized
	// form — a spec carrying one is not content-addressable.
	Queue topo.QueueFactory `json:"-"`
}

// FlowModel selects how a group's flows are simulated.
type FlowModel string

// PacketModel (the "" default) spawns one real tcp.Conn per flow. FluidModel
// runs the whole group as one PERT/RED fluid aggregate sharing the
// bottleneck queue with the packet traffic — the hybrid substrate, whose
// per-flow cost is zero (counts up to 10^6 are fine). Fluid groups are
// dumbbell-only, scheme "PERT", FTP traffic between unranged "left"/"right"
// endpoints, and serial-only (validateShardable rejects them at shards > 1).
const (
	PacketModel FlowModel = ""
	FluidModel  FlowModel = "fluid"
)

// FlowGroupSpec is one homogeneous traffic population: Count flows of one
// scheme between two endpoint sets. Groups attach in spec order, which fixes
// the RNG draw order of their start times.
type FlowGroupSpec struct {
	Label  string // optional display name; default "<scheme>:<from>-><to>"
	Scheme string // registered scheme; "" = the caller sets Group.CC directly
	Count  int

	// From and To are endpoint selectors: "left" / "right" on a dumbbell,
	// "cloud1".."cloudN" on a parking lot, each with an optional half-open
	// host range suffix "[lo:hi]" (e.g. "left[0:4]"). Flows round-robin
	// over the selected hosts.
	From, To string

	Traffic     TrafficKind  // "" = FTP
	StartWindow sim.Duration // starts uniform in [StartAt, StartAt+StartWindow)
	StartAt     sim.Time

	// Model selects packet simulation ("" — one tcp.Conn per flow) or the
	// fluid aggregate ("fluid"). The JSON loader also accepts the explicit
	// alias "packet", normalized back to "".
	Model FlowModel `json:"Model,omitempty"`

	// RTT is the modeled round-trip time of a fluid group's flows.
	// 0 derives the topology's first configured RTT. Packet groups must
	// leave it unset (their RTTs come from the topology).
	RTT sim.Duration `json:"RTT,omitempty"`
}

// model returns the group's flow model with the "packet" alias normalized.
func (g FlowGroupSpec) model() FlowModel {
	if g.Model == "packet" {
		return PacketModel
	}
	return g.Model
}

// IsFluid reports whether the group runs as a modeled fluid aggregate.
func (g FlowGroupSpec) IsFluid() bool { return g.model() == FluidModel }

// kind returns the group's traffic kind with the FTP default applied.
func (g FlowGroupSpec) kind() TrafficKind {
	if g.Traffic == "" {
		return FTP
	}
	return g.Traffic
}

// label returns the group's display name.
func (g FlowGroupSpec) label() string {
	if g.Label != "" {
		return g.Label
	}
	scheme := g.Scheme
	if scheme == "" {
		scheme = "custom"
	}
	return fmt.Sprintf("%s:%s->%s", scheme, g.From, g.To)
}

// LinkRule attaches impairments and a change schedule to one named link.
// Fault probabilities draw from a dedicated RNG seeded from the scenario
// seed, so all-zero rules leave the run bit-identical to having no rule.
type LinkRule struct {
	Link string // link selector: "forward"/"reverse" or "core1".."coreN"/"rcore1"..

	LossRate     float64      // non-congestive wire-loss probability, [0,1)
	DupRate      float64      // duplication probability, [0,1)
	ReorderRate  float64      // reordering probability, [0,1)
	ReorderExtra sim.Duration // holding-delay bound; 0 with ReorderRate>0 = 5ms

	// Schedule drives mid-run capacity/delay changes and up/down flaps.
	Schedule netem.LinkSchedule
}

// Spec is a complete declarative scenario: topology, per-link rules, traffic
// populations, and the measurement window.
type Spec struct {
	Name string // optional; used in titles and audit bundles
	Seed int64

	Topology TopologySpec
	Links    []LinkRule
	Groups   []FlowGroupSpec

	Duration     sim.Duration // total simulated time
	MeasureFrom  sim.Duration // start of the measurement window
	MeasureUntil sim.Duration // end of the window; 0 = Duration
	TargetDelay  sim.Duration // PI/REM delay reference (default 3 ms)

	// Shards > 1 requests the parallel engine: the topology is cut into
	// that many domains (clamped to the template's useful maximum) and run
	// under conservative-lookahead synchronization. 0 and 1 both mean the
	// serial engine; they produce byte-identical results and hash to the
	// same cache cell. Shards > 1 is a different execution (its own RNG
	// streams per shard) and therefore a different cell.
	Shards int

	// Env overrides the derived scheme environment (capacity, flow count,
	// RTT bound). Experiments that historically hand-picked these values
	// set it to stay bit-identical; leave nil to derive from the spec.
	// Excluded from the serialized form (see Topology.Queue).
	Env *Env `json:"-"`
}

// measureUntil returns the effective window end.
func (s Spec) measureUntil() sim.Duration {
	if s.MeasureUntil == 0 {
		return s.Duration
	}
	return s.MeasureUntil
}

// Validate checks the spec without building anything: unknown schemes, bad
// selectors, inconsistent windows, and schedule entries outside the run are
// all load-time errors rather than mid-run panics.
func (s Spec) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	until := s.measureUntil()
	if s.MeasureFrom < 0 || s.MeasureFrom >= until {
		return fmt.Errorf("scenario: measure window [%v, %v) is empty or negative", s.MeasureFrom, until)
	}
	if until > s.Duration {
		return fmt.Errorf("scenario: measure_until %v exceeds duration %v", until, s.Duration)
	}
	if s.TargetDelay < 0 {
		return fmt.Errorf("scenario: negative target_delay")
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario: negative shards")
	}
	if s.Shards > sim.MaxShards {
		return fmt.Errorf("scenario: shards %d exceeds the engine maximum %d", s.Shards, sim.MaxShards)
	}
	if err := s.Topology.validate(); err != nil {
		return err
	}
	if s.Topology.Queue == nil {
		if aqm := s.queueScheme(); aqm == "" {
			return fmt.Errorf("scenario: no queue discipline: set topology.aqm or give the first group a scheme")
		} else if !Known(aqm) {
			return fmt.Errorf("scenario: unknown aqm scheme %q", aqm)
		}
	}
	traffic := 0
	for i, g := range s.Groups {
		if g.Count < 0 {
			return fmt.Errorf("scenario: group %d has negative count", i)
		}
		traffic += g.Count
		if g.Scheme != "" && !Known(g.Scheme) {
			return fmt.Errorf("scenario: group %d: unknown scheme %q", i, g.Scheme)
		}
		switch g.kind() {
		case FTP, Web:
		default:
			return fmt.Errorf("scenario: group %d: unknown traffic kind %q", i, g.Traffic)
		}
		if g.StartWindow < 0 {
			return fmt.Errorf("scenario: group %d has negative start_window", i)
		}
		if g.StartAt < 0 || sim.Duration(g.StartAt) > s.Duration {
			return fmt.Errorf("scenario: group %d starts at %v, outside the %v run", i, g.StartAt, s.Duration)
		}
		if g.kind() == Web && g.StartAt != 0 {
			return fmt.Errorf("scenario: group %d: web groups cannot set start_at (sessions start inside the start window)", i)
		}
		for _, sel := range []string{g.From, g.To} {
			if err := s.Topology.checkNodeSelector(sel); err != nil {
				return fmt.Errorf("scenario: group %d: %w", i, err)
			}
		}
		switch g.model() {
		case PacketModel:
			if g.RTT != 0 {
				return fmt.Errorf("scenario: group %d: rtt is a fluid-group field; packet groups take their RTTs from the topology", i)
			}
		case FluidModel:
			if err := s.validateFluidGroup(i, g); err != nil {
				return err
			}
		default:
			return fmt.Errorf("scenario: group %d: unknown model %q (use \"packet\" or \"fluid\")", i, g.Model)
		}
	}
	if traffic == 0 {
		return fmt.Errorf("scenario: no traffic: every group has count 0")
	}
	for i, r := range s.Links {
		if err := s.Topology.checkLinkSelector(r.Link); err != nil {
			return fmt.Errorf("scenario: link rule %d: %w", i, err)
		}
		for _, p := range []struct {
			name string
			v    float64
		}{{"loss_rate", r.LossRate}, {"dup_rate", r.DupRate}, {"reorder_rate", r.ReorderRate}} {
			if p.v < 0 || p.v >= 1 {
				return fmt.Errorf("scenario: link rule %d: %s %g outside [0,1)", i, p.name, p.v)
			}
		}
		if r.ReorderExtra < 0 {
			return fmt.Errorf("scenario: link rule %d: negative reorder_extra", i)
		}
		for j, c := range r.Schedule {
			if c.At < 0 || sim.Duration(c.At) > s.Duration {
				return fmt.Errorf("scenario: link rule %d: schedule change %d at %v is outside the %v run", i, j, c.At, s.Duration)
			}
			if c.Capacity < 0 {
				return fmt.Errorf("scenario: link rule %d: schedule change %d has negative capacity", i, j)
			}
			if c.Delay < 0 {
				return fmt.Errorf("scenario: link rule %d: schedule change %d has negative delay", i, j)
			}
			if c.Down && c.Up {
				return fmt.Errorf("scenario: link rule %d: schedule change %d is both down and up", i, j)
			}
		}
	}
	if s.Shards > 1 {
		if err := s.validateShardable(); err != nil {
			return err
		}
	}
	return nil
}

// validateFluidGroup checks the extra constraints on "model": "fluid"
// background groups: the hybrid substrate couples one aggregate to one
// dumbbell bottleneck link, so the template, scheme, traffic kind, and
// endpoint selectors are all pinned.
func (s Spec) validateFluidGroup(i int, g FlowGroupSpec) error {
	if s.Topology.Template != DumbbellTemplate {
		return fmt.Errorf("scenario: group %d: fluid groups need the dumbbell template (the aggregate couples to its bottleneck)", i)
	}
	if g.Scheme != "PERT" {
		return fmt.Errorf("scenario: group %d: fluid groups model the PERT/RED aggregate; set scheme \"PERT\", not %q", i, g.Scheme)
	}
	if g.kind() != FTP {
		return fmt.Errorf("scenario: group %d: fluid groups model long-lived flows; traffic must be ftp, not %q", i, g.Traffic)
	}
	if (g.From != "left" || g.To != "right") && (g.From != "right" || g.To != "left") {
		return fmt.Errorf("scenario: group %d: fluid groups run between the whole \"left\" and \"right\" host sets, got %q -> %q", i, g.From, g.To)
	}
	if g.StartAt != 0 {
		return fmt.Errorf("scenario: group %d: fluid groups start at t=0 (start_at is a packet-group field)", i)
	}
	// The DDE integrates at a 1 ms step and lags must exceed it; 2 ms is
	// the floor that keeps the delayed-state interpolation meaningful.
	rtt := g.RTT
	if rtt == 0 && len(s.Topology.RTTs) > 0 {
		rtt = s.Topology.RTTs[0] // the attach-time default
	}
	if rtt != 0 && rtt < 2*sim.Millisecond {
		return fmt.Errorf("scenario: group %d: fluid rtt %v is below the 2 ms integration floor", i, rtt)
	}
	return nil
}

// validateShardable rejects spec features the parallel engine cannot run.
// After the domain-ownership work (queue RNGs rebound per domain, web
// sessions and link schedules armed on the owning engine) the remaining
// restrictions are the ones with no mechanical fix: schemes must opt in via
// SchemeDef.ShardSafe — a custom CC factory or a scheme that captures the
// global engine cannot be verified — and schedules may not change a link's
// propagation delay, because a boundary link's conservative lookahead is
// fixed when the partition is cut. (The check is conservative: it applies to
// every scheduled link, since which links become boundaries depends on the
// runtime partition hint. netem.Partition enforces the precise
// boundary-only rule.)
func (s Spec) validateShardable() error {
	if aqm := s.queueScheme(); aqm != "" && Known(aqm) {
		if !registry[aqm].ShardSafe {
			return fmt.Errorf("scenario: shards=%d: aqm scheme %q is not shard-safe; shard-safe schemes: %v", s.Shards, aqm, shardSafeNames())
		}
	}
	for i, g := range s.Groups {
		if g.IsFluid() {
			return fmt.Errorf("scenario: shards=%d: group %d models background traffic as a fluid aggregate; the hybrid fluid/packet substrate is serial-only until cross-domain fluid coupling exists — drop shards or the fluid group", s.Shards, i)
		}
		if g.Scheme == "" {
			return fmt.Errorf("scenario: shards=%d: group %d has no registered scheme; custom CC factories cannot be verified shard-safe", s.Shards, i)
		}
		if !registry[g.Scheme].ShardSafe {
			return fmt.Errorf("scenario: shards=%d: group %d scheme %q is not shard-safe; shard-safe schemes: %v", s.Shards, i, g.Scheme, shardSafeNames())
		}
	}
	for i, r := range s.Links {
		if r.Schedule.HasDelayChange() {
			return fmt.Errorf("scenario: shards=%d: link rule %d schedules a delay change; boundary lookahead is fixed at partition time, so sharded runs take capacity changes and up/down flaps only", s.Shards, i)
		}
	}
	return nil
}

// Canonical returns a copy of the spec with its alias defaults made
// explicit — the zero-value spellings the spec's own accessors define:
// traffic kind ("" ≡ "ftp"), measure_until (0 ≡ duration), and the queue
// scheme ("" ≡ the first group's scheme). Semantically identical documents
// that differ only in eliding these serialize identically, which is what
// the content-addressed result cache hashes. Topology zeros that the
// compiler *derives* (buffer from BDP, delay from RTT) are deliberately not
// expanded: those rules live in the compiler and an explicit value equal to
// the derivation is a coincidence, not an alias.
func (s Spec) Canonical() Spec {
	out := s
	out.Groups = append([]FlowGroupSpec(nil), s.Groups...)
	for i := range out.Groups {
		out.Groups[i].Traffic = out.Groups[i].kind()
		// "" is the canonical packet-model spelling (so pre-hybrid specs
		// keep their serialized form and cache keys); the explicit
		// "packet" alias normalizes back to it. Fluid groups ignore start
		// scheduling, so the loader's start_window default is noise —
		// zero it rather than fork cache cells over an unused field.
		out.Groups[i].Model = out.Groups[i].model()
		if out.Groups[i].IsFluid() {
			out.Groups[i].StartWindow = 0
		}
	}
	out.MeasureUntil = s.measureUntil()
	out.Topology.AQM = s.queueScheme()
	// 0 and 1 shards are the same serial execution; canonicalize to 0 so
	// they hash to the same cache cell. Counts above 1 are kept verbatim
	// (NOT clamped to the topology maximum): the clamp happens at run time,
	// and collapsing, say, shards=8 and shards=6 on a 6-router lot into one
	// cell would be correct but surprising — the spec author asked for
	// different things and can diff the cells.
	if out.Shards <= 1 {
		out.Shards = 0
	}
	return out
}

// EffectiveShards returns the shard count a run of this spec actually uses:
// the requested count clamped to the topology's useful maximum (a dumbbell
// has one cut; a parking lot has one domain per router). Always ≥ 1.
func (s Spec) EffectiveShards() int {
	eff, _, _ := s.ShardClamp()
	return eff
}

// ShardClamp resolves the requested shard count against the topology: it
// returns the effective count, whether the request was clamped down, and
// the topology's useful maximum. Runners surface clamping through their
// progress sink / table notes so a `-shards 8` request silently running at
// 2 is visible in the output rather than only in the wall clock.
func (s Spec) ShardClamp() (effective int, clamped bool, max int) {
	max = 2 // dumbbell: the bottleneck is the only useful cut
	if s.Topology.Template == ParkingLotTemplate {
		max = s.Topology.routers()
	}
	if s.Shards <= 1 {
		return 1, false, max
	}
	if s.Shards > max {
		return max, true, max
	}
	return s.Shards, false, max
}

// queueScheme resolves the scheme name whose Queue factory builds the core
// queues: the explicit AQM, falling back to the first group with a scheme.
func (s Spec) queueScheme() string {
	if s.Topology.AQM != "" {
		return s.Topology.AQM
	}
	for _, g := range s.Groups {
		if g.Scheme != "" {
			return g.Scheme
		}
	}
	return ""
}

// deriveEnv computes the scheme environment from the spec: total long-flow
// count, core capacity, and the largest configured RTT.
func (s Spec) deriveEnv() Env {
	env := Env{TargetDelay: s.TargetDelay}
	for _, g := range s.Groups {
		// Fluid groups do not spawn connections; the scheme environment
		// (per-conn parameter scaling) sees only the packet population.
		if g.kind() == FTP && !g.IsFluid() {
			env.NFlows += g.Count
		}
	}
	pkt := s.Topology.PktSize
	if pkt == 0 {
		pkt = 1040
	}
	switch s.Topology.Template {
	case ParkingLotTemplate:
		bw := s.Topology.CoreBW
		if bw == 0 {
			bw = 150e6
		}
		env.CapacityPPS = bw / (8 * float64(pkt))
		// The parking lot's buffer rule assumes a 60 ms end-to-end RTT;
		// the PI design bound uses the same figure.
		env.MaxRTT = 60 * sim.Millisecond
	default:
		env.CapacityPPS = s.Topology.Bandwidth / (8 * float64(pkt))
		rtts := s.Topology.RTTs
		if len(rtts) == 0 {
			rtts = []sim.Duration{60 * sim.Millisecond}
		}
		env.MaxRTT = rtts[0]
		for _, r := range rtts {
			if r > env.MaxRTT {
				env.MaxRTT = r
			}
		}
	}
	return env
}

// env returns the effective environment: the override if set, else derived.
func (s Spec) env() Env {
	if s.Env != nil {
		return *s.Env
	}
	return s.deriveEnv()
}
