package scenario

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// Group is one compiled flow group: resolved endpoints plus the attach-time
// configuration. Between Compile and Spawn a caller may override CC and Conn
// (custom controllers, RTT-sampling hooks); after Spawn, Flows/Webs hold the
// measurement handles.
type Group struct {
	Spec FlowGroupSpec

	// CC builds one congestion controller per flow. Compile resolves it
	// from the group's scheme; groups with an empty Scheme leave it nil for
	// the caller to set before Spawn.
	CC func() tcp.CongestionControl
	// Conn is the per-connection base config (ECN from the scheme; callers
	// may chain hooks onto it before Spawn).
	Conn tcp.Config
	// Web carries extra web-session parameters for Web groups; CC and Conn
	// above are copied into it at Spawn.
	Web trafficgen.WebConfig

	Src, Dst []*netem.Node

	Flows []*tcp.Flow              // FTP groups, after Spawn
	Webs  []*trafficgen.WebSession // Web groups, after Spawn
	Fluid *netem.FluidSource       // fluid groups, after Spawn
}

// Label returns the group's display name.
func (g *Group) Label() string { return g.Spec.label() }

// Instance is a compiled scenario: the built topology with impairments and
// schedules attached, and the flow groups resolved but not yet spawned.
// The two-phase Compile/Spawn split leaves a hook point where experiment
// code wires observers (auditor, metrics registry, delay monitors) exactly
// where the hand-written scenarios did, preserving event-scheduling order.
type Instance struct {
	Spec Spec
	Eng  *sim.Engine
	Net  *netem.Network
	Topo Built
	Env  Env

	Groups []*Group

	spawned bool
}

// Compile builds the scenario's network on the given engine: topology first,
// then per-link impairments and change schedules in rule order, then group
// resolution (no traffic yet — call Spawn). The construction order is a
// compatibility contract: it consumes engine event sequence numbers and RNG
// draws at the same program points as the hand-wired experiment scenarios,
// keeping committed tables bit-identical.
func Compile(eng *sim.Engine, net *netem.Network, spec Spec) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	env := spec.env()

	qf := spec.Topology.Queue
	if qf == nil {
		def := MustLookup(spec.queueScheme()) // Validate checked it
		qf = def.Queue(net, env)
	}

	inst := &Instance{Spec: spec, Eng: eng, Net: net, Env: env}
	switch spec.Topology.Template {
	case DumbbellTemplate:
		inst.Topo = dumbbellBuilt{buildDumbbell(net, spec, qf)}
	case ParkingLotTemplate:
		inst.Topo = parkinglotBuilt{topo.NewParkingLot(net, topo.ParkingLotConfig{
			Routers:    spec.Topology.routers(),
			CloudSize:  spec.Topology.cloudSize(),
			CoreBW:     spec.Topology.CoreBW,
			CoreDelay:  spec.Topology.CoreDelay,
			EdgeDelays: spec.Topology.EdgeDelays,
			BufferPkts: spec.Topology.BufferPkts,
			PktSize:    spec.Topology.PktSize,
			Queue:      qf,
		})}
	}

	for i, rule := range spec.Links {
		link, err := inst.Topo.Link(rule.Link)
		if err != nil {
			return nil, fmt.Errorf("scenario: link rule %d: %w", i, err)
		}
		if rule.LossRate > 0 || rule.DupRate > 0 || rule.ReorderRate > 0 {
			imp := netem.NewImpairment(impairSeed(spec.Seed, i))
			imp.Loss, imp.Dup, imp.Reorder = rule.LossRate, rule.DupRate, rule.ReorderRate
			imp.ReorderMax = rule.ReorderExtra
			if imp.Reorder > 0 && imp.ReorderMax <= 0 {
				imp.ReorderMax = 5 * sim.Millisecond
			}
			link.SetImpairment(imp)
		}
		rule.Schedule.Apply(link)
	}

	for i := range spec.Groups {
		g := &Group{Spec: spec.Groups[i]}
		if g.Spec.IsFluid() {
			// Fluid groups spawn no connections: no endpoints to
			// resolve, no CC factory, no RNG draws. Spawn attaches the
			// aggregate to the bottleneck link directly.
			inst.Groups = append(inst.Groups, g)
			continue
		}
		var err error
		if g.Src, err = inst.Topo.Nodes(g.Spec.From); err != nil {
			return nil, fmt.Errorf("scenario: group %d: %w", i, err)
		}
		if g.Dst, err = inst.Topo.Nodes(g.Spec.To); err != nil {
			return nil, fmt.Errorf("scenario: group %d: %w", i, err)
		}
		if g.Spec.Count > 0 && (len(g.Src) == 0 || len(g.Dst) == 0) {
			return nil, fmt.Errorf("scenario: group %d (%s): empty endpoint set", i, g.Spec.label())
		}
		if g.Spec.Scheme != "" {
			def := MustLookup(g.Spec.Scheme) // Validate checked it
			g.Conn = tcp.Config{ECN: def.ECN}
			if g.Spec.kind() == Web && !def.ProactiveWeb {
				// Background web traffic stays on standard TCP unless the
				// scheme runs on every end host (the all-PERT scenarios).
				g.CC = func() tcp.CongestionControl { return tcp.Reno{} }
			} else {
				g.CC = def.CC(net, env)
			}
		}
		inst.Groups = append(inst.Groups, g)
	}
	return inst, nil
}

// buildDumbbell maps the spec onto topo.NewDumbbell, deriving the host count
// from the flow groups when the spec leaves it open.
func buildDumbbell(net *netem.Network, spec Spec, qf topo.QueueFactory) *topo.Dumbbell {
	t := spec.Topology
	hosts := t.Hosts
	if hosts == 0 {
		for _, g := range spec.Groups {
			if g.IsFluid() {
				// A million modeled flows need zero hosts; only packet
				// groups size the topology.
				continue
			}
			for _, s := range []string{g.From, g.To} {
				sel, err := parseSelector(s)
				if err != nil {
					continue // Validate already rejected it
				}
				if n := sel.need(g.Count); n > hosts {
					hosts = n
				}
			}
		}
		if hosts < 1 {
			hosts = 1
		}
		// Hosts are shared round-robin; cap the node count so huge groups
		// do not build thousands of nodes needlessly.
		if hosts > 256 {
			hosts = 256
		}
	}
	rtts := t.RTTs
	if len(rtts) == 0 {
		rtts = []sim.Duration{60 * sim.Millisecond}
	}
	delay := t.Delay
	if delay == 0 {
		delay = rtts[0] / 3
	}
	return topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth:    t.Bandwidth,
		Delay:        delay,
		Hosts:        hosts,
		RTTs:         rtts,
		BufferPkts:   t.BufferPkts,
		AccessJitter: t.AccessJitter,
		PktSize:      t.PktSize,
		Queue:        qf,
	})
}

// impairSeed derives the dedicated fault-RNG seed for link rule i. Rule 0
// uses the historical constant so single-rule scenarios reproduce the exact
// fault sequences of the original DumbbellSpec path; later rules mix in the
// rule index so each link gets an independent stream.
func impairSeed(seed int64, i int) int64 {
	return seed ^ 0xfa017 ^ int64(uint64(i)*0x9e3779b97f4a7c15)
}

// Dumbbell returns the underlying dumbbell topology, or nil for other
// templates — the handle Instrument-style hooks and dumbbell-specific
// measurement code use.
func (inst *Instance) Dumbbell() *topo.Dumbbell {
	if b, ok := inst.Topo.(dumbbellBuilt); ok {
		return b.d
	}
	return nil
}

// ParkingLot returns the underlying parking-lot topology, or nil.
func (inst *Instance) ParkingLot() *topo.ParkingLot {
	if b, ok := inst.Topo.(parkinglotBuilt); ok {
		return b.p
	}
	return nil
}

// Spawn attaches every flow group's traffic in spec order, drawing start
// times from the engine RNG exactly as the hand-wired scenarios did, and
// fills in the per-group measurement handles. Call it once, after wiring
// any observers, before running the engine.
func (inst *Instance) Spawn() {
	if inst.spawned {
		panic("scenario: Spawn called twice")
	}
	inst.spawned = true
	ids := trafficgen.NewIDs()
	for i, g := range inst.Groups {
		if g.Spec.IsFluid() {
			if g.Spec.Count > 0 {
				g.Fluid = inst.attachFluid(i, g.Spec)
			}
			continue
		}
		switch g.Spec.kind() {
		case Web:
			if g.Spec.Count > 0 || g.CC != nil {
				cfg := g.Web
				cfg.CC = g.CC
				cfg.Conn = g.Conn
				g.Webs = trafficgen.WebFleet(inst.Net, ids, g.Src, g.Dst, g.Spec.Count, cfg, g.Spec.StartWindow)
			}
		default:
			if g.Spec.Count > 0 || g.CC != nil {
				g.Flows = trafficgen.FTPFleet(inst.Net, ids, g.Src, g.Dst, g.Spec.Count, trafficgen.FTPConfig{
					CC:          g.CC,
					Conn:        g.Conn,
					StartWindow: g.Spec.StartWindow,
					StartAt:     g.Spec.StartAt,
				})
			}
		}
	}
}

// attachFluid couples one fluid background group to the dumbbell bottleneck:
// left->right rides the forward link, right->left the reverse. The modeled
// RTT defaults to the topology's first configured RTT, and the shared-queue
// bound is the same buffer the packet queue uses, so overflow loss treats
// both traffic kinds alike.
func (inst *Instance) attachFluid(i int, g FlowGroupSpec) *netem.FluidSource {
	sel := "forward"
	if g.From == "right" {
		sel = "reverse"
	}
	link, err := inst.Topo.Link(sel)
	if err != nil {
		panic(fmt.Sprintf("scenario: fluid group %d: %v", i, err)) // unreachable: dumbbell always has both
	}
	rtt := g.RTT
	if rtt == 0 {
		if rtts := inst.Spec.Topology.RTTs; len(rtts) > 0 {
			rtt = rtts[0]
		} else {
			rtt = 60 * sim.Millisecond
		}
	}
	fs, err := netem.AttachFluid(link, netem.FluidConfig{
		Flows:      float64(g.Count),
		RTT:        rtt.Seconds(),
		PktSize:    inst.Spec.Topology.PktSize, // 0 = AttachFluid's 1040 default
		BufferPkts: inst.Topo.BufferPkts(),
		Seed:       impairSeed(inst.Spec.Seed, 0x7f1d+i),
	})
	if err != nil {
		panic(fmt.Sprintf("scenario: fluid group %d: %v", i, err)) // Validate pinned the preconditions
	}
	return fs
}

// MustCompile is Compile for specs the caller has already validated (the
// refactored experiment entry points, whose inputs were checked at their
// own boundaries). It panics on error.
func MustCompile(eng *sim.Engine, net *netem.Network, spec Spec) *Instance {
	inst, err := Compile(eng, net, spec)
	if err != nil {
		panic(err)
	}
	return inst
}
