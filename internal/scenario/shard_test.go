package scenario

import (
	"strings"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

// shardedSpec is a minimal parking-lot spec requesting the parallel engine.
func shardedSpec() Spec {
	return Spec{
		Seed:     1,
		Topology: TopologySpec{Template: ParkingLotTemplate, Routers: 4, CloudSize: 4},
		Groups: []FlowGroupSpec{
			{Scheme: "PERT", Count: 2, From: "cloud1", To: "cloud4"},
		},
		Duration:    seconds(10),
		MeasureFrom: seconds(2),
		Shards:      4,
	}
}

func TestValidateShardsAccepts(t *testing.T) {
	if err := shardedSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	// Every registered shard-safe scheme must actually validate.
	for _, name := range shardSafeNames() {
		s := shardedSpec()
		s.Groups[0].Scheme = name
		if err := s.Validate(); err != nil {
			t.Errorf("shard-safe scheme %q rejected: %v", name, err)
		}
	}
	// Sharded dumbbells are fine too.
	d := validSpec()
	d.Shards = 2
	if err := d.Validate(); err != nil {
		t.Errorf("sharded dumbbell rejected: %v", err)
	}
	// The features this PR made shard-safe all validate together: a router
	// AQM (marking RNG rebound at partition time), a PERT-PI group (lazy
	// per-connection responder), web traffic (armed on the source node's
	// engine), and a capacity/flap schedule (re-armed on the owning domain;
	// only delay changes stay out of bounds).
	s := shardedSpec()
	s.Topology.AQM = "Sack/RED-ECN"
	s.Groups[0].Scheme = "PERT-PI"
	s.Groups = append(s.Groups, FlowGroupSpec{
		Scheme: "PERT", Count: 1, From: "cloud2", To: "cloud3",
		Traffic: Web, StartWindow: seconds(1),
	})
	s.Links = []LinkRule{{Link: "core1", Schedule: netem.LinkSchedule{
		{At: sim.Time(seconds(1)), Capacity: 1e6},
		{At: sim.Time(seconds(2)), Down: true},
		{At: sim.Time(seconds(3)), Up: true},
	}}}
	if err := s.Validate(); err != nil {
		t.Errorf("sharded router AQM + PERT-PI + web + capacity schedule rejected: %v", err)
	}
}

func TestValidateShardsRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"negative shards": func(s *Spec) { s.Shards = -1 },
		"too many shards": func(s *Spec) { s.Shards = sim.MaxShards + 1 },
		// An empty group scheme is legal serially when the topology AQM
		// supplies one, but a sharded run cannot verify an inherited
		// factory's shard-safety mechanically.
		"implicit group scheme": func(s *Spec) {
			s.Topology.AQM = "PERT"
			s.Groups[0].Scheme = ""
		},
		// Delay changes stay rejected: boundary lookahead is fixed when the
		// partition is created.
		"delay schedule": func(s *Spec) {
			s.Links = []LinkRule{{Link: "core1", Schedule: netem.LinkSchedule{
				{At: sim.Time(seconds(1)), Delay: ms(5)},
			}}}
		},
	}
	for name, mutate := range cases {
		s := shardedSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// The same features are fine when the run is serial.
	s := shardedSpec()
	s.Shards = 0
	s.Topology.AQM = "Sack/RED-ECN"
	s.Links = []LinkRule{{Link: "core1", Schedule: netem.LinkSchedule{
		{At: sim.Time(seconds(1)), Delay: ms(5)},
	}}}
	if err := s.Validate(); err != nil {
		t.Errorf("serial spec with router AQM + delay schedule rejected: %v", err)
	}
}

// TestCanonicalShards: 0 and 1 shards are the same serial execution and must
// hash identically; counts above 1 are preserved verbatim.
func TestCanonicalShards(t *testing.T) {
	s := validSpec()
	s.Shards = 1
	if got := s.Canonical().Shards; got != 0 {
		t.Errorf("shards=1 canonicalized to %d, want 0", got)
	}
	s.Shards = 0
	if got := s.Canonical().Shards; got != 0 {
		t.Errorf("shards=0 canonicalized to %d, want 0", got)
	}
	s.Shards = 8
	if got := s.Canonical().Shards; got != 8 {
		t.Errorf("shards=8 canonicalized to %d, want 8", got)
	}
}

func TestEffectiveShards(t *testing.T) {
	for _, tc := range []struct {
		mutate func(*Spec)
		want   int
	}{
		{func(s *Spec) { s.Shards = 0 }, 1},
		{func(s *Spec) { s.Shards = 1 }, 1},
		{func(s *Spec) { s.Shards = 3 }, 3},
		{func(s *Spec) { s.Shards = 4 }, 4},
		{func(s *Spec) { s.Shards = 9 }, 4}, // clamped to the 4 routers
	} {
		s := shardedSpec()
		tc.mutate(&s)
		if got := s.EffectiveShards(); got != tc.want {
			t.Errorf("parkinglot shards=%d: effective %d, want %d", s.Shards, got, tc.want)
		}
	}
	d := validSpec()
	d.Shards = 8
	if got := d.EffectiveShards(); got != 2 { // a dumbbell has one cut
		t.Errorf("dumbbell shards=8: effective %d, want 2", got)
	}
}

// TestShardClamp covers the (effective, clamped, max) triple behind
// EffectiveShards — the source of the clamp note sharded tables emit.
func TestShardClamp(t *testing.T) {
	for _, tc := range []struct {
		shards    int
		effective int
		clamped   bool
	}{
		{0, 1, false},
		{1, 1, false},
		{4, 4, false}, // exactly the router count
		{5, 4, true},  // one past the boundary
		{64, 4, true}, // far more shards than the lot has nodes
	} {
		s := shardedSpec()
		s.Shards = tc.shards
		eff, clamped, max := s.ShardClamp()
		if eff != tc.effective || clamped != tc.clamped || max != 4 {
			t.Errorf("parkinglot shards=%d: ShardClamp() = (%d, %v, %d), want (%d, %v, 4)",
				tc.shards, eff, clamped, max, tc.effective, tc.clamped)
		}
	}
	d := validSpec()
	d.Shards = 8
	if eff, clamped, max := d.ShardClamp(); eff != 2 || !clamped || max != 2 {
		t.Errorf("dumbbell shards=8: ShardClamp() = (%d, %v, %d), want (2, true, 2)", eff, clamped, max)
	}
	d.Shards = 2
	if eff, clamped, _ := d.ShardClamp(); eff != 2 || clamped {
		t.Errorf("dumbbell shards=2: ShardClamp() = (%d, %v), want (2, false)", eff, clamped)
	}
}

// TestCompilePartitionHint: the hint a compiled topology returns is a valid
// netem.Partition assignment — full length, in range, and cutting only
// positive-delay core links.
func TestCompilePartitionHint(t *testing.T) {
	g := sim.NewShardGroup(4, 1)
	net := netem.NewNetwork(g.Engine(0))
	spec := shardedSpec()
	inst, err := Compile(g.Engine(0), net, spec)
	if err != nil {
		t.Fatal(err)
	}
	assign := inst.Topo.PartitionHint(spec.EffectiveShards())
	if len(assign) != len(net.Nodes) {
		t.Fatalf("hint length %d, want %d", len(assign), len(net.Nodes))
	}
	if err := net.Partition(g, assign); err != nil {
		t.Fatalf("hint rejected by Partition: %v", err)
	}
	if n := len(net.BoundaryLinks()); n != 6 { // 3 cut core links, both directions
		t.Fatalf("boundary links = %d, want 6", n)
	}
}

// TestLoadV2Shards: the JSON loader round-trips shards and edge_delays.
func TestLoadV2Shards(t *testing.T) {
	const doc = `{
		"seed": 7,
		"topology": {"template": "parkinglot", "routers": 4, "cloud_size": 4,
		             "edge_delays": ["2ms", "8ms"]},
		"groups": [{"scheme": "PERT", "count": 2, "from": "cloud1", "to": "cloud4"}],
		"duration": "10s",
		"shards": 4
	}`
	spec, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 4 {
		t.Errorf("shards = %d, want 4", spec.Shards)
	}
	want := []sim.Duration{2 * sim.Millisecond, 8 * sim.Millisecond}
	if len(spec.Topology.EdgeDelays) != 2 || spec.Topology.EdgeDelays[0] != want[0] || spec.Topology.EdgeDelays[1] != want[1] {
		t.Errorf("edge delays = %v, want %v", spec.Topology.EdgeDelays, want)
	}
	// Router AQMs are shard-safe (marking RNG rebound at partition time), so
	// the loader accepts them under shards now.
	aqm := strings.Replace(doc, `"PERT"`, `"Sack/RED-ECN"`, 1)
	if _, err := Load(strings.NewReader(aqm)); err != nil {
		t.Errorf("sharded router-AQM scenario rejected by loader: %v", err)
	}
	// A delay change in a sharded schedule is still a load-time error.
	bad := strings.Replace(doc, `"shards": 4`,
		`"shards": 4,
		"links": [{"link": "core1", "schedule": [{"at": "1s", "delay": "5ms"}]}]`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("sharded delay-schedule scenario accepted by loader")
	}
}
