package scenario

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

func ms(n int) sim.Duration      { return sim.Duration(n) * sim.Millisecond }
func seconds(n int) sim.Duration { return sim.Duration(n) * sim.Second }

// validSpec returns a minimal spec that passes Validate; tests mutate one
// field at a time to probe each rejection.
func validSpec() Spec {
	return Spec{
		Seed: 1,
		Topology: TopologySpec{
			Template:  DumbbellTemplate,
			Bandwidth: 10e6,
		},
		Groups: []FlowGroupSpec{
			{Scheme: "PERT", Count: 2, From: "left", To: "right", StartWindow: seconds(1)},
		},
		Duration:    seconds(10),
		MeasureFrom: seconds(2),
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"zero duration":      func(s *Spec) { s.Duration = 0 },
		"empty window":       func(s *Spec) { s.MeasureFrom = s.Duration },
		"until > duration":   func(s *Spec) { s.MeasureUntil = s.Duration + 1 },
		"until <= from":      func(s *Spec) { s.MeasureUntil = s.MeasureFrom },
		"negative target":    func(s *Spec) { s.TargetDelay = -1 },
		"bad template":       func(s *Spec) { s.Topology.Template = "ring" },
		"no bandwidth":       func(s *Spec) { s.Topology.Bandwidth = 0 },
		"unknown aqm":        func(s *Spec) { s.Topology.AQM = "TURBO" },
		"unknown scheme":     func(s *Spec) { s.Groups[0].Scheme = "TURBO" },
		"no scheme anywhere": func(s *Spec) { s.Groups[0].Scheme = "" },
		"negative count":     func(s *Spec) { s.Groups[0].Count = -1 },
		"no traffic":         func(s *Spec) { s.Groups[0].Count = 0 },
		"bad traffic kind":   func(s *Spec) { s.Groups[0].Traffic = "voip" },
		"negative window":    func(s *Spec) { s.Groups[0].StartWindow = -1 },
		"start_at outside":   func(s *Spec) { s.Groups[0].StartAt = sim.Time(s.Duration + 1) },
		"web with start_at": func(s *Spec) {
			s.Groups[0].Traffic = Web
			s.Groups[0].StartAt = sim.Time(seconds(1))
		},
		"bad endpoint":     func(s *Spec) { s.Groups[0].From = "cloud1" },
		"bad range":        func(s *Spec) { s.Groups[0].From = "left[2:" },
		"inverted range":   func(s *Spec) { s.Groups[0].From = "left[3:1]" },
		"range past hosts": func(s *Spec) { s.Topology.Hosts = 2; s.Groups[0].To = "right[0:5]" },
		"bad link":         func(s *Spec) { s.Links = []LinkRule{{Link: "core1"}} },
		"loss >= 1":        func(s *Spec) { s.Links = []LinkRule{{Link: "forward", LossRate: 1}} },
		"negative dup":     func(s *Spec) { s.Links = []LinkRule{{Link: "forward", DupRate: -0.1}} },
		"negative extra":   func(s *Spec) { s.Links = []LinkRule{{Link: "forward", ReorderExtra: -1}} },
		"schedule outside": func(s *Spec) {
			s.Links = []LinkRule{{Link: "forward", Schedule: netem.LinkSchedule{
				{At: sim.Time(s.Duration + 1), Capacity: 1e6},
			}}}
		},
		"schedule down+up": func(s *Spec) {
			s.Links = []LinkRule{{Link: "forward", Schedule: netem.LinkSchedule{
				{At: sim.Time(seconds(1)), Down: true, Up: true},
			}}}
		},
	}
	for name, mutate := range cases {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateParkingLot(t *testing.T) {
	s := Spec{
		Seed:     1,
		Topology: TopologySpec{Template: ParkingLotTemplate, Routers: 4, CloudSize: 4},
		Groups: []FlowGroupSpec{
			{Scheme: "PERT", Count: 2, From: "cloud1", To: "cloud4"},
		},
		Duration:    seconds(10),
		MeasureFrom: seconds(2),
		Links:       []LinkRule{{Link: "core2"}, {Link: "rcore3"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Spec){
		"cloud index high": func(s *Spec) { s.Groups[0].To = "cloud5" },
		"cloud index zero": func(s *Spec) { s.Groups[0].From = "cloud0" },
		"not a cloud":      func(s *Spec) { s.Groups[0].From = "left" },
		"core index high":  func(s *Spec) { s.Links = []LinkRule{{Link: "core4"}} },
		"one router":       func(s *Spec) { s.Topology.Routers = 1 },
		"range past cloud": func(s *Spec) { s.Groups[0].From = "cloud1[0:9]" },
	} {
		bad := s
		bad.Groups = append([]FlowGroupSpec(nil), s.Groups...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSelector(t *testing.T) {
	for _, tc := range []struct {
		in       string
		base     string
		lo, hi   int
		hasRange bool
	}{
		{"left", "left", 0, 0, false},
		{"cloud12", "cloud12", 0, 0, false},
		{"left[0:4]", "left", 0, 4, true},
		{"cloud3[2:2]", "cloud3", 2, 2, true},
	} {
		sel, err := parseSelector(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if sel.base != tc.base || sel.lo != tc.lo || sel.hi != tc.hi || sel.hasRange != tc.hasRange {
			t.Fatalf("%s parsed as %+v", tc.in, sel)
		}
	}
	for _, bad := range []string{"left[", "left[1]", "left[a:2]", "left[1:b]", "left[-1:2]", "left[3:1]"} {
		if _, err := parseSelector(bad); err == nil {
			t.Errorf("%q: accepted", bad)
		}
	}
}

func TestQueueSchemeFallback(t *testing.T) {
	s := validSpec()
	if s.queueScheme() != "PERT" {
		t.Fatalf("queueScheme = %q", s.queueScheme())
	}
	s.Topology.AQM = "Sack/RED-ECN"
	if s.queueScheme() != "Sack/RED-ECN" {
		t.Fatal("explicit AQM ignored")
	}
}

func TestDeriveEnv(t *testing.T) {
	s := validSpec()
	s.Topology.RTTs = []sim.Duration{ms(60), ms(100)}
	s.Groups = append(s.Groups, FlowGroupSpec{
		Scheme: "PERT", Count: 3, From: "left", To: "right", Traffic: Web,
	})
	env := s.env()
	if env.NFlows != 2 { // web groups don't count toward the long-flow bound
		t.Fatalf("NFlows = %d", env.NFlows)
	}
	if env.MaxRTT != ms(100) {
		t.Fatalf("MaxRTT = %v", env.MaxRTT)
	}
	if want := 10e6 / (8 * 1040.0); env.CapacityPPS != want {
		t.Fatalf("CapacityPPS = %v, want %v", env.CapacityPPS, want)
	}
	override := Env{CapacityPPS: 1, NFlows: 1, MaxRTT: ms(1)}
	s.Env = &override
	if s.env() != override {
		t.Fatal("Env override ignored")
	}
}

func TestImpairSeed(t *testing.T) {
	if impairSeed(42, 0) != 42^0xfa017 {
		t.Fatal("rule 0 must keep the historical seed")
	}
	if impairSeed(42, 1) == impairSeed(42, 2) {
		t.Fatal("rules share a fault stream")
	}
}

func TestCompileResolvesEndpoints(t *testing.T) {
	eng := sim.NewEngine(7)
	net := netem.NewNetwork(eng)
	s := validSpec()
	s.Topology.Hosts = 8
	s.Groups = []FlowGroupSpec{
		{Scheme: "PERT", Count: 3, From: "left[0:4]", To: "right[0:4]"},
		{Scheme: "Sack/Droptail", Count: 2, From: "left[4:8]", To: "right[4:8]"},
	}
	inst, err := Compile(eng, net, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Groups) != 2 {
		t.Fatalf("groups = %d", len(inst.Groups))
	}
	for i, g := range inst.Groups {
		if len(g.Src) != 4 || len(g.Dst) != 4 {
			t.Fatalf("group %d endpoints = %d/%d", i, len(g.Src), len(g.Dst))
		}
		if g.CC == nil {
			t.Fatalf("group %d: no controller resolved", i)
		}
	}
	if inst.Groups[1].Conn.ECN {
		t.Fatal("Sack/Droptail negotiated ECN")
	}
	if inst.Dumbbell() == nil || inst.ParkingLot() != nil {
		t.Fatal("template handles wrong")
	}
	if got := inst.Topo.Measured(); len(got) != 1 || got[0].Name != "forward" {
		t.Fatalf("Measured = %+v", got)
	}
	inst.Spawn()
	if len(inst.Groups[0].Flows) != 3 || len(inst.Groups[1].Flows) != 2 {
		t.Fatalf("spawn handles = %d/%d", len(inst.Groups[0].Flows), len(inst.Groups[1].Flows))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Spawn accepted")
		}
	}()
	inst.Spawn()
}

func TestCompileRejectsInvalid(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	s := validSpec()
	s.Duration = 0
	if _, err := Compile(eng, net, s); err == nil {
		t.Fatal("invalid spec compiled")
	}
}

func TestWebGroupUsesRenoUnlessProactive(t *testing.T) {
	eng := sim.NewEngine(7)
	net := netem.NewNetwork(eng)
	s := validSpec()
	s.Groups = append(s.Groups, FlowGroupSpec{
		Scheme: "Sack/RED-ECN", Count: 2, From: "left", To: "right",
		Traffic: Web, StartWindow: seconds(1),
	})
	inst, err := Compile(eng, net, s)
	if err != nil {
		t.Fatal(err)
	}
	// Sack/RED-ECN is not ProactiveWeb: its web sessions run standard TCP.
	if MustLookup("Sack/RED-ECN").ProactiveWeb {
		t.Fatal("test premise broken: Sack/RED-ECN became ProactiveWeb")
	}
	if inst.Groups[1].CC == nil {
		t.Fatal("web group has no controller")
	}
}
