package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

// hybridSpec returns a valid dumbbell spec with one packet group and one
// fluid background group.
func hybridSpec(bg int) Spec {
	return Spec{
		Name: "hybrid-test",
		Seed: 42,
		Topology: TopologySpec{
			Template:   DumbbellTemplate,
			Bandwidth:  100e6,
			RTTs:       []sim.Duration{60 * sim.Millisecond},
			BufferPkts: 5000,
		},
		Groups: []FlowGroupSpec{
			{Scheme: "PERT", Count: 4, From: "left", To: "right"},
			{Scheme: "PERT", Count: bg, From: "left", To: "right", Model: FluidModel, RTT: 60 * sim.Millisecond},
		},
		Duration:    10 * sim.Second,
		MeasureFrom: 2 * sim.Second,
	}
}

func TestFluidGroupValidation(t *testing.T) {
	base := hybridSpec(100000)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid hybrid spec rejected: %v", err)
	}
	bad := func(mutate func(*Spec), wantSub string) {
		t.Helper()
		s := hybridSpec(100000)
		mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("spec mutated for %q passed validation", wantSub)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error %q does not mention %q", err, wantSub)
		}
	}
	bad(func(s *Spec) { s.Groups[1].Scheme = "Sack/Droptail" }, "PERT")
	bad(func(s *Spec) { s.Groups[1].Traffic = Web }, "ftp")
	bad(func(s *Spec) { s.Groups[1].From = "left[0:2]" }, "left")
	bad(func(s *Spec) { s.Groups[1].StartAt = sim.Time(sim.Second) }, "start_at")
	bad(func(s *Spec) { s.Groups[1].RTT = sim.Millisecond }, "integration floor")
	bad(func(s *Spec) { s.Groups[1].Model = "plasma" }, "unknown model")
	bad(func(s *Spec) { s.Groups[0].RTT = 60 * sim.Millisecond }, "fluid-group field")
	bad(func(s *Spec) {
		s.Topology.Template = ParkingLotTemplate
		s.Topology.Routers = 2
		s.Groups[0].From, s.Groups[0].To = "cloud1", "cloud2"
		s.Groups[1].From, s.Groups[1].To = "cloud1", "cloud2"
	}, "dumbbell")
}

func TestFluidGroupShardsRejected(t *testing.T) {
	s := hybridSpec(100000)
	s.Shards = 2
	err := s.Validate()
	if err == nil {
		t.Fatal("sharded hybrid spec passed validation")
	}
	if !strings.Contains(err.Error(), "serial-only") {
		t.Fatalf("rejection does not explain the restriction: %v", err)
	}
}

// TestFluidCanonicalAliases pins the cache-key compatibility contract: the
// packet model's canonical spelling is "" (pre-hybrid specs keep their
// serialized form), "packet" normalizes to it, and fluid groups shed their
// unused start_window default.
func TestFluidCanonicalAliases(t *testing.T) {
	s := hybridSpec(1000)
	s.Groups[0].Model = "packet"
	s.Groups[1].StartWindow = 3 * sim.Second
	c := s.Canonical()
	if c.Groups[0].Model != PacketModel {
		t.Errorf("explicit packet model canonicalized to %q, want \"\"", c.Groups[0].Model)
	}
	if c.Groups[1].StartWindow != 0 {
		t.Errorf("fluid group kept start_window %v; it is unused and forks cache cells", c.Groups[1].StartWindow)
	}

	// A packet-only spec must serialize byte-identically whether it was
	// built before or after the hybrid fields existed (Model and RTT are
	// omitempty zeros).
	p := hybridSpec(0)
	p.Groups = p.Groups[:1]
	blob, err := json.Marshal(p.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"Model":`, `"RTT":`} {
		if strings.Contains(string(blob), banned) {
			t.Errorf("packet-only canonical spec serializes %q: %s", banned, blob)
		}
	}
}

func TestFluidJSONRoundTrip(t *testing.T) {
	doc := `{
		"name": "hybrid-json",
		"seed": 7,
		"topology": {"template": "dumbbell", "bandwidth_bps": 100e6, "rtts": ["60ms"], "buffer_pkts": 5000},
		"groups": [
			{"scheme": "PERT", "count": 4, "from": "left", "to": "right"},
			{"scheme": "PERT", "count": 500000, "from": "left", "to": "right", "model": "fluid", "rtt": "80ms"}
		],
		"duration": "10s",
		"measure_from": "2s"
	}`
	spec, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Groups[1]
	if !g.IsFluid() || g.Count != 500000 || g.RTT != 80*sim.Millisecond {
		t.Fatalf("fluid group loaded as %+v", g)
	}
	if spec.Groups[0].IsFluid() {
		t.Fatal("packet group loaded as fluid")
	}
}

// TestFluidSpawnAttaches compiles and spawns a hybrid spec and checks the
// aggregate landed on the bottleneck with the spec's parameters, while a
// count-0 fluid group attaches nothing (the metamorphic no-op).
func TestFluidSpawnAttaches(t *testing.T) {
	for _, bg := range []int{200000, 0} {
		eng := sim.NewEngine(42)
		net := netem.NewNetwork(eng)
		inst, err := Compile(eng, net, hybridSpec(bg))
		if err != nil {
			t.Fatal(err)
		}
		inst.Spawn()
		d := inst.Dumbbell()
		fs := d.Forward.Fluid()
		if bg == 0 {
			if fs != nil || inst.Groups[1].Fluid != nil {
				t.Fatal("count-0 fluid group attached an aggregate")
			}
			continue
		}
		if fs == nil {
			t.Fatal("no fluid source on the bottleneck after Spawn")
		}
		if fs != inst.Groups[1].Fluid {
			t.Fatal("group handle is not the attached source")
		}
		if got := fs.Flows(); got != float64(bg) {
			t.Fatalf("aggregate models %v flows, want %d", got, bg)
		}
		if got := fs.Params().R; got != 0.06 {
			t.Fatalf("aggregate RTT %v, want 0.06", got)
		}
		// 100 Mbps at the default 1040 B -> 12019.23 pkt/s.
		if c := fs.Params().C; c < 12000 || c > 12040 {
			t.Fatalf("aggregate capacity %v pkt/s, want ~12019", c)
		}
		eng.Run(sim.Second) // the ticker must advance without packets
		if fs.State()[0] <= 1 {
			t.Fatal("fluid window did not grow from the cold state")
		}
	}
}

// TestFluidOffByteIdentity is the substrate-level metamorphic guarantee: a
// spec with a count-0 fluid group runs the packet simulation event-for-event
// identically to the same spec without the group.
func TestFluidOffByteIdentity(t *testing.T) {
	run := func(withGroup bool) string {
		s := hybridSpec(0)
		if !withGroup {
			s.Groups = s.Groups[:1]
		}
		eng := sim.NewEngine(42)
		net := netem.NewNetwork(eng)
		inst, err := Compile(eng, net, s)
		if err != nil {
			t.Fatal(err)
		}
		inst.Spawn()
		eng.Run(10 * sim.Second)
		d := inst.Dumbbell()
		b, _ := json.Marshal(struct {
			Stats netem.LinkStats
			Now   sim.Time
		}{d.Forward.Stats, eng.Now()})
		return string(b)
	}
	with, without := run(true), run(false)
	if with != without {
		t.Fatalf("count-0 fluid group perturbed the run\nwith:    %s\nwithout: %s", with, without)
	}
}
