package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestLoadV2(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
		"name": "mix", "seed": 9,
		"topology": {
			"template": "dumbbell", "bandwidth_bps": 30e6, "delay": "20ms",
			"hosts": 8, "rtts": ["60ms", "100ms"], "aqm": "Sack/Droptail"
		},
		"groups": [
			{"label": "p", "scheme": "PERT", "count": 4, "from": "left[0:4]", "to": "right[0:4]", "start_window": "2s"},
			{"label": "w", "scheme": "Sack/Droptail", "count": 3, "from": "left[4:8]", "to": "right[4:8]", "traffic": "web"}
		],
		"links": [
			{"link": "forward", "loss_rate": 0.001, "schedule": [{"at": "20s", "capacity_bps": 15e6}]}
		],
		"duration": "40s", "measure_from": "10s", "measure_until": "35s"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "mix" || spec.Seed != 9 {
		t.Fatalf("header = %q/%d", spec.Name, spec.Seed)
	}
	if spec.Topology.Template != DumbbellTemplate || spec.Topology.AQM != "Sack/Droptail" {
		t.Fatalf("topology = %+v", spec.Topology)
	}
	if len(spec.Topology.RTTs) != 2 || spec.Topology.RTTs[1] != ms(100) {
		t.Fatalf("rtts = %v", spec.Topology.RTTs)
	}
	if len(spec.Groups) != 2 || spec.Groups[0].StartWindow != seconds(2) {
		t.Fatalf("groups = %+v", spec.Groups)
	}
	if spec.Groups[1].kind() != Web {
		t.Fatalf("group 1 kind = %v", spec.Groups[1].kind())
	}
	// start_window default is measure_from/2.
	if spec.Groups[1].StartWindow != seconds(5) {
		t.Fatalf("default start_window = %v", spec.Groups[1].StartWindow)
	}
	if spec.MeasureUntil != seconds(35) {
		t.Fatalf("measure_until = %v", spec.MeasureUntil)
	}
	if len(spec.Links) != 1 || len(spec.Links[0].Schedule) != 1 {
		t.Fatalf("links = %+v", spec.Links)
	}
	if spec.Links[0].Schedule[0].At != sim.Time(seconds(20)) || spec.Links[0].Schedule[0].Capacity != 15e6 {
		t.Fatalf("change = %+v", spec.Links[0].Schedule[0])
	}
}

func TestLoadV2Rejects(t *testing.T) {
	topoOK := `"topology": {"template": "dumbbell", "bandwidth_bps": 1e6}`
	groupOK := `"groups": [{"scheme": "PERT", "count": 1, "from": "left", "to": "right"}]`
	cases := map[string]string{
		"garbage":           `nope`,
		"unknown field":     `{` + topoOK + `,` + groupOK + `,"duration":"10s","bogus":1}`,
		"no duration":       `{` + topoOK + `,` + groupOK + `}`,
		"bad duration":      `{` + topoOK + `,` + groupOK + `,"duration":"xyz"}`,
		"bad measure_from":  `{` + topoOK + `,` + groupOK + `,"duration":"10s","measure_from":"x"}`,
		"until > duration":  `{` + topoOK + `,` + groupOK + `,"duration":"10s","measure_until":"12s"}`,
		"until <= from":     `{` + topoOK + `,` + groupOK + `,"duration":"10s","measure_from":"5s","measure_until":"5s"}`,
		"bad target":        `{` + topoOK + `,` + groupOK + `,"duration":"10s","target_delay":"-1ms"}`,
		"no scheme":         `{` + topoOK + `,"groups":[{"count":1,"from":"left","to":"right"}],"duration":"10s"}`,
		"unknown scheme":    `{` + topoOK + `,"groups":[{"scheme":"TURBO","count":1,"from":"left","to":"right"}],"duration":"10s"}`,
		"bad start_window":  `{` + topoOK + `,"groups":[{"scheme":"PERT","count":1,"from":"left","to":"right","start_window":"-1s"}],"duration":"10s"}`,
		"bad rtt":           `{"topology":{"template":"dumbbell","bandwidth_bps":1e6,"rtts":["abc"]},` + groupOK + `,"duration":"10s"}`,
		"bad template":      `{"topology":{"template":"ring","bandwidth_bps":1e6},` + groupOK + `,"duration":"10s"}`,
		"bad delay":         `{"topology":{"template":"dumbbell","bandwidth_bps":1e6,"delay":"-1ms"},` + groupOK + `,"duration":"10s"}`,
		"bad endpoint":      `{` + topoOK + `,"groups":[{"scheme":"PERT","count":1,"from":"cloud1","to":"right"}],"duration":"10s"}`,
		"bad link":          `{` + topoOK + `,` + groupOK + `,"links":[{"link":"core1"}],"duration":"10s"}`,
		"schedule late":     `{` + topoOK + `,` + groupOK + `,"links":[{"link":"forward","schedule":[{"at":"11s"}]}],"duration":"10s"}`,
		"schedule down+up":  `{` + topoOK + `,` + groupOK + `,"links":[{"link":"forward","schedule":[{"at":"5s","down":true,"up":true}]}],"duration":"10s"}`,
		"bad reorder_extra": `{` + topoOK + `,` + groupOK + `,"links":[{"link":"forward","reorder_extra":"-1ms"}],"duration":"10s"}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestIsV2(t *testing.T) {
	for raw, want := range map[string]bool{
		`{"topology":{"template":"dumbbell"}}`:         true,
		`{"groups":[]}`:                                true,
		`{"scheme":"PERT","bandwidth_bps":1e6}`:        false,
		`not json`:                                     false,
		`{"bandwidth_bps":1e6,"flows":1,"duration":1}`: false,
	} {
		if IsV2([]byte(raw)) != want {
			t.Errorf("IsV2(%s) != %v", raw, want)
		}
	}
}

// Every committed example scenario must load cleanly — the same gate `make
// check` runs via pertsim -validate.
func TestExampleScenariosLoad(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least the two documented example scenarios, found %v", paths)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !IsV2(raw) {
			t.Errorf("%s: not schema v2", p)
			continue
		}
		if _, err := Load(strings.NewReader(string(raw))); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// FuzzLoadSpec hardens the v2 JSON loader: no panics, and every accepted spec
// must satisfy its own Validate contract.
func FuzzLoadSpec(f *testing.F) {
	f.Add(`{"topology":{"template":"dumbbell","bandwidth_bps":1e6},"groups":[{"scheme":"PERT","count":1,"from":"left","to":"right"}],"duration":"10s"}`)
	f.Add(`{"topology":{"template":"parkinglot","routers":4},"groups":[{"scheme":"PERT","count":2,"from":"cloud1","to":"cloud4"}],"duration":"20s"}`)
	f.Add(`{"topology":{"template":"dumbbell","bandwidth_bps":1e6},"groups":[{"scheme":"PERT","count":1,"from":"left[0:2]","to":"right[0:2]","traffic":"web"}],"duration":"10s","measure_until":"8s"}`)
	f.Add(`{"topology":{"template":"dumbbell","bandwidth_bps":1e6},"groups":[{"scheme":"PERT","count":1,"from":"left","to":"right"}],"links":[{"link":"forward","loss_rate":0.01,"schedule":[{"at":"5s","down":true}]}],"duration":"10s"}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"topology":{"template":"ring"},"duration":"10s"}`)

	f.Fuzz(func(t *testing.T, data string) {
		spec, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Load promises a validated spec: re-validating must agree.
		if err := spec.Validate(); err != nil {
			t.Fatalf("Load accepted a spec Validate rejects: %v\n%s", err, data)
		}
		if spec.Duration <= 0 || spec.MeasureFrom < 0 || spec.measureUntil() > spec.Duration {
			t.Fatalf("inconsistent window: %+v", spec)
		}
	})
}
