package scenario

import (
	"strings"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// The builtin registration order is the paper's presentation order; CLI usage
// strings and table layouts depend on it, so pin it.
func TestNamesRegistrationOrder(t *testing.T) {
	want := []string{
		"PERT", "Sack/Droptail", "Sack/RED-ECN", "Vegas",
		"PERT-PI", "Sack/PI-ECN", "PERT-REM", "Sack/REM-ECN", "Sack/AVQ-ECN",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSection4Names(t *testing.T) {
	for _, n := range Section4Names() {
		if !MustLookup(n).Section4 {
			t.Fatalf("%s listed but not marked Section4", n)
		}
	}
	if len(Section4Names()) == 0 {
		t.Fatal("empty Section 4 set")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("TURBO"); err == nil {
		t.Fatal("unknown scheme accepted")
	} else if !strings.Contains(err.Error(), "PERT") {
		t.Fatalf("error should list known schemes: %v", err)
	}
	if Known("TURBO") {
		t.Fatal("Known(TURBO)")
	}
	if !Known("PERT") {
		t.Fatal("!Known(PERT)")
	}
}

func TestSortedNames(t *testing.T) {
	s := SortedNames()
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
}

// Register's sanity checks all fire before the registry mutates, so probing
// them against the live registry is safe.
func TestRegisterRejects(t *testing.T) {
	cc := func(*netem.Network, Env) func() tcp.CongestionControl { return nil }
	qf := func(*netem.Network, Env) topo.QueueFactory { return nil }
	cases := map[string]SchemeDef{
		"empty name": {},
		"missing CC": {Name: "X", Queue: qf},
		"missing qf": {Name: "X", CC: cc},
		"duplicate":  {Name: "PERT", CC: cc, Queue: qf},
	}
	for name, def := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", name)
				}
			}()
			Register(def)
		}()
	}
	if len(Names()) != len(registry) {
		t.Fatal("failed registration mutated the registry")
	}
}

func TestEnvTargetDefault(t *testing.T) {
	if (Env{}).Target() != 3*sim.Millisecond {
		t.Fatalf("default target = %v", (Env{}).Target())
	}
	if (Env{TargetDelay: 7 * sim.Millisecond}).Target() != 7*sim.Millisecond {
		t.Fatal("explicit target ignored")
	}
}
