// Package scenario is the declarative layer between experiment code and the
// simulation substrate. It has two halves:
//
//   - a pluggable scheme registry: every end-to-end congestion-control +
//     queue-management combination is a SchemeDef registered by name, carrying
//     factories for its congestion controller and bottleneck queue plus its
//     capabilities (ECN negotiation, whether background web traffic also runs
//     the scheme). New schemes plug in with Register and become usable from
//     every experiment, CLI flag, and JSON scenario without touching them.
//
//   - a topology-agnostic scenario compiler (compile.go): a Spec names a
//     topology (dumbbell or parking-lot template), per-link impairments and
//     schedules, and per-flow-group traffic {scheme, count, endpoints, start
//     window}; Compile builds the netem network and Spawn attaches the
//     traffic, returning measurement handles. The compiler reproduces the
//     exact construction order (and therefore the seeded RNG draw points) of
//     the hand-wired experiment code it replaced, so committed result tables
//     stay bit-identical.
package scenario

import (
	"fmt"
	"sort"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// Env captures what a scheme needs from its scenario to build its pieces:
// the bottleneck capacity in packets/second, a flow-count bound, and an RTT
// bound (PI design rules), plus the target queueing delay for the
// delay-reference AQMs (PI, REM).
type Env struct {
	CapacityPPS float64
	NFlows      int
	MaxRTT      sim.Duration
	TargetDelay sim.Duration // zero = the Section 6.1 default of 3 ms
}

// Target returns the configured target delay, defaulting to 3 ms
// (Section 6.1's PI reference).
func (e Env) Target() sim.Duration {
	if e.TargetDelay == 0 {
		return 3 * sim.Millisecond
	}
	return e.TargetDelay
}

// SchemeDef is one registered scheme: the factories and capabilities that
// used to live in three switch statements. CC and Queue receive the network
// (for its engine RNG) and the scenario Env; both must be side-effect-free
// until the returned factory is invoked, so that resolving a scheme never
// perturbs the simulation state.
type SchemeDef struct {
	// Name is the registry key, e.g. "PERT" or "Sack/RED-ECN".
	Name string
	// CC builds a per-flow congestion-controller factory.
	CC func(net *netem.Network, env Env) func() tcp.CongestionControl
	// Queue builds the bottleneck queue factory (applies to both directions
	// of a template's core links).
	Queue func(net *netem.Network, env Env) topo.QueueFactory
	// ECN reports whether endpoints negotiate ECN under this scheme.
	ECN bool
	// ProactiveWeb marks schemes whose background web traffic also runs the
	// scheme's controller (the paper's all-PERT and all-Vegas scenarios);
	// loss-based router schemes leave web transfers on standard TCP.
	ProactiveWeb bool
	// Section4 marks members of the paper's Section 4 comparison set
	// (Figures 6-9, 11, 12 and Table 1).
	Section4 bool
	// ShardSafe marks schemes whose per-connection controllers draw only
	// from their own connection's engine and whose queues either draw
	// nothing or implement netem.RandBinder, so netem.Partition can rebind
	// their marking RNG to the owning domain's engine. Every built-in
	// scheme qualifies today — end-host responders are lazy (constructed
	// per connection from c.Engine().Rand()) and the router AQMs (RED, PI,
	// REM, AVQ) are rebound at partition time. Only shard-safe schemes may
	// appear in a Spec with Shards > 1: the flag is the opt-in gate for
	// custom registrations, which cannot be verified mechanically.
	ShardSafe bool
}

// registry holds defs by name plus the registration order (the presentation
// order of the paper's comparison tables).
var (
	registry = map[string]SchemeDef{}
	order    []string
)

// Register adds a scheme definition. Registering an incomplete def or a
// duplicate name panics: registration happens at init time and a bad def is
// a programming error, not an input error.
func Register(def SchemeDef) {
	if def.Name == "" {
		panic("scenario: Register with empty scheme name")
	}
	if def.CC == nil || def.Queue == nil {
		panic(fmt.Sprintf("scenario: scheme %q needs both CC and Queue factories", def.Name))
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("scenario: scheme %q registered twice", def.Name))
	}
	registry[def.Name] = def
	order = append(order, def.Name)
}

// Lookup returns the registered definition for name. Unknown names are an
// error — callers validate at load time instead of panicking mid-run.
func Lookup(name string) (SchemeDef, error) {
	def, ok := registry[name]
	if !ok {
		return SchemeDef{}, fmt.Errorf("scenario: unknown scheme %q (known: %v)", name, Names())
	}
	return def, nil
}

// MustLookup is Lookup for callers that have already validated the name
// (experiment entry points running a scheme the registry reported Known).
func MustLookup(name string) SchemeDef {
	def, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return def
}

// Known reports whether name is a registered scheme.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns every registered scheme name in registration order — the
// source for CLI usage strings and -scheme validation.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Section4Names returns the registered Section 4 comparison set in
// registration order.
func Section4Names() []string {
	var out []string
	for _, n := range order {
		if registry[n].Section4 {
			out = append(out, n)
		}
	}
	return out
}

// SortedNames returns the scheme names sorted lexically (stable output for
// error messages regardless of registration order).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// shardSafeNames returns the registered shard-safe schemes in registration
// order, for validation error messages.
func shardSafeNames() []string {
	var out []string
	for _, n := range order {
		if registry[n].ShardSafe {
			out = append(out, n)
		}
	}
	return out
}
