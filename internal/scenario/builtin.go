package scenario

import (
	"pert/internal/core"
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// The paper's comparison set (Section 4) plus the Section 6 PI pair, and —
// beyond the paper — the remaining AQMs from its citation list (REM [2],
// AVQ [19]) as router baselines and REM as an end-host emulation. The
// registration order is the presentation order of the committed tables.
func init() {
	droptail := func(net *netem.Network, env Env) topo.QueueFactory {
		return func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		}
	}
	reno := func(net *netem.Network, env Env) func() tcp.CongestionControl {
		return func() tcp.CongestionControl { return tcp.Reno{} }
	}

	Register(SchemeDef{
		Name: "PERT", Section4: true, ProactiveWeb: true, ShardSafe: true,
		CC: func(net *netem.Network, env Env) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewPERTRed() }
		},
		Queue: droptail,
	})
	Register(SchemeDef{
		Name: "Sack/Droptail", Section4: true, ShardSafe: true,
		CC:    reno,
		Queue: droptail,
	})
	Register(SchemeDef{
		Name: "Sack/RED-ECN", Section4: true, ECN: true, ShardSafe: true,
		CC: reno,
		Queue: func(net *netem.Network, env Env) topo.QueueFactory {
			return func(limit int, pps float64) netem.Discipline {
				return queue.NewAdaptiveRED(queue.AdaptiveREDConfig{
					Limit:       limit,
					CapacityPPS: pps,
					ECN:         true,
				}, net.Engine().Rand())
			}
		},
	})
	Register(SchemeDef{
		Name: "Vegas", Section4: true, ProactiveWeb: true, ShardSafe: true,
		CC: func(net *netem.Network, env Env) func() tcp.CongestionControl {
			return func() tcp.CongestionControl { return tcp.NewVegas() }
		},
		Queue: droptail,
	})
	Register(SchemeDef{
		Name: "PERT-PI", ProactiveWeb: true, ShardSafe: true,
		CC: func(net *netem.Network, env Env) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				n := env.NFlows
				if n < 1 {
					n = 1
				}
				params := core.DesignPERTPI(env.CapacityPPS, n, 2*env.MaxRTT)
				// Mean per-flow sampling interval: N packets share C pkt/s.
				delta := sim.Seconds(float64(n) / env.CapacityPPS)
				// Lazy responder: probabilistic responses draw from the
				// connection's own engine, so a flow landing on shard k
				// draws from shard k's stream (and from the usual global
				// stream when serial — same generator, same order, since
				// NewPIResponder draws nothing at construction).
				return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
					return core.NewPIResponder(c.Engine().Rand(), params, delta, env.Target())
				})
			}
		},
		Queue: droptail,
	})
	Register(SchemeDef{
		Name: "Sack/PI-ECN", ECN: true, ShardSafe: true,
		CC: reno,
		Queue: func(net *netem.Network, env Env) topo.QueueFactory {
			return func(limit int, pps float64) netem.Discipline {
				n := env.NFlows
				if n < 1 {
					n = 1
				}
				rmax := 2 * env.MaxRTT
				gains := queue.DesignPI(pps, n, rmax, 170)
				qref := env.Target().Seconds() * pps
				return queue.NewPI(limit, qref, gains, true, net.Engine().Rand())
			}
		},
	})
	Register(SchemeDef{
		Name: "PERT-REM", ProactiveWeb: true, ShardSafe: true,
		CC: func(net *netem.Network, env Env) func() tcp.CongestionControl {
			return func() tcp.CongestionControl {
				return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
					return core.NewREMResponder(c.Engine().Rand(), 0, 0, env.Target())
				})
			}
		},
		Queue: droptail,
	})
	Register(SchemeDef{
		Name: "Sack/REM-ECN", ECN: true, ShardSafe: true,
		CC: reno,
		Queue: func(net *netem.Network, env Env) topo.QueueFactory {
			return func(limit int, pps float64) netem.Discipline {
				return queue.NewREM(limit, pps, true, net.Engine().Rand())
			}
		},
	})
	Register(SchemeDef{
		Name: "Sack/AVQ-ECN", ECN: true, ShardSafe: true,
		CC: reno,
		Queue: func(net *netem.Network, env Env) topo.QueueFactory {
			return func(limit int, pps float64) netem.Discipline {
				return queue.NewAVQ(limit, pps, true, net.Engine().Rand())
			}
		},
	})
}
