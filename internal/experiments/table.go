package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a paper-style result table: one per reproduced figure or table.
type Table struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string // sweep variable of the figure's x axis, if any
	Header []string
	Rows   [][]string
	Units  map[string]string // column name -> unit, where not in the name
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// tableJSON is the stable serialization schema for tables, documented in
// EXPERIMENTS.md ("JSON output"). Field set and names are a compatibility
// contract for plotting pipelines; extend it, never rename.
type tableJSON struct {
	ID      string            `json:"id"`
	Title   string            `json:"title"`
	XLabel  string            `json:"xlabel,omitempty"`
	Columns []string          `json:"columns"`
	Rows    [][]string        `json:"rows"`
	Units   map[string]string `json:"units,omitempty"`
	Notes   []string          `json:"notes,omitempty"`
}

// MarshalJSON emits the stable schema: {"id","title","xlabel","columns",
// "rows","units","notes"}. Columns and rows are always present (empty
// arrays, never null); xlabel, units and notes are omitted when empty.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := tableJSON{
		ID:      t.ID,
		Title:   t.Title,
		XLabel:  t.XLabel,
		Columns: t.Header,
		Rows:    t.Rows,
		Units:   t.Units,
		Notes:   t.Notes,
	}
	if j.Columns == nil {
		j.Columns = []string{}
	}
	if j.Rows == nil {
		j.Rows = [][]string{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON parses the schema emitted by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*t = Table{
		ID:     j.ID,
		Title:  j.Title,
		XLabel: j.XLabel,
		Header: j.Columns,
		Rows:   j.Rows,
		Units:  j.Units,
		Notes:  j.Notes,
	}
	return nil
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintJSON renders the table as a JSON object (machine-readable output for
// plotting pipelines).
func (t *Table) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// FprintCSV renders the table as CSV: a header row then the data rows.
// Cells never contain commas or quotes (they are numeric or identifiers).
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// f3 formats a float with three significant decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// sci formats a small rate in scientific notation (the paper's drop-rate
// style, e.g. 3.98E-06).
func sci(x float64) string {
	if x == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2E", x)
}

// pct formats a fraction as percent with two decimals.
func pct(x float64) string { return fmt.Sprintf("%.2f", 100*x) }
