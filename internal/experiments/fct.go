package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// ExtFCT measures what the paper's queue-length panels imply for users: web
// object flow-completion times. Short transfers spend most of their life in
// slow start, where every RTT of standing queue is pure added latency — so
// schemes that keep the bottleneck queue short (PERT, router AQM) should
// complete small objects much faster than DropTail even at equal link
// utilization.
func ExtFCT(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows, webs := 30.0, 10, 60
	if scale == Paper {
		bwMbps, flows, webs = 150, 50, 300
	}
	t := &Table{
		ID:    "ext-fct",
		Title: fmt.Sprintf("Extension: web-object flow completion times (%g Mbps, %d long flows + %d sessions)", bwMbps, flows, webs),
		Header: []string{"scheme", "small_fct_p50_ms", "small_fct_p95_ms",
			"large_fct_p50_ms", "objects", "avg_queue_pkts", "utilization"},
	}
	for i, s := range []Scheme{PERT, SackDroptail, SackRED, Vegas} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := runFCT(9600+int64(i), s, bwMbps*1e6, flows, webs, dur, from, until, sw)
		t.AddRow(string(s), f2(r.smallP50*1000), f2(r.smallP95*1000),
			f2(r.largeP50*1000), fmt.Sprint(r.objects), f2(r.avgQueue), f3(r.util))
	}
	t.Notes = append(t.Notes,
		"small = objects of at most 12 segments (the distribution mean); large = the rest",
		"FCTs measured only for objects completing inside the measurement window")
	return t, nil
}

type fctResult struct {
	smallP50, smallP95 float64
	largeP50           float64
	objects            uint64
	avgQueue, util     float64
}

func runFCT(seed int64, scheme Scheme, bw float64, flows, webs int, dur, from, until, sw sim.Duration) fctResult {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	env := schemeEnv{capacityPPS: bw / (8 * 1040), nFlows: flows, maxRTT: 60 * sim.Millisecond}
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: bw,
		Delay:     20 * sim.Millisecond,
		Hosts:     64,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue:     scheme.queueFor(net, env),
	})
	ids := trafficgen.NewIDs()
	ccf := scheme.ccFor(net, env)
	trafficgen.FTPFleet(net, ids, d.Left, d.Right, flows, trafficgen.FTPConfig{
		CC: ccf, Conn: tcp.Config{ECN: scheme.ecn()}, StartWindow: sw,
	})

	small := stats.NewReservoir(4096, rand.New(rand.NewSource(seed^0xfc7)))
	large := stats.NewReservoir(4096, rand.New(rand.NewSource(seed^0xfc8)))
	var objects uint64
	trafficgen.WebFleet(net, ids, d.Left, d.Right, webs, trafficgen.WebConfig{
		Conn: tcp.Config{ECN: scheme.ecn()},
		CC:   webCC(scheme, ccf),
		OnObject: func(segs int64, fct sim.Duration) {
			if eng.Now() < from {
				return
			}
			objects++
			if segs <= 12 {
				small.Add(fct.Seconds())
			} else {
				large.Add(fct.Seconds())
			}
		},
	}, sw)

	eng.Run(from)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	eng.Run(until)
	res := fctResult{
		smallP50: small.Quantile(0.5),
		smallP95: small.Quantile(0.95),
		largeP50: large.Quantile(0.5),
		objects:  objects,
		avgQueue: qmon.Series.Mean(),
		util:     meter.Utilization(eng.Now()),
	}
	qmon.Stop()
	_ = dur
	return res
}
