package experiments

import (
	"context"
	"fmt"

	"pert/internal/scenario"
	"pert/internal/sim"
)

// extParkingLotXLSpec builds the multi-bottleneck benchmark scenario: a
// 9-router parking lot (8 core bottlenecks — beyond the paper's Figure 10
// five), heterogeneous per-cloud attachment delays so every hop population
// has a different RTT, hop-by-hop traffic on every core link plus through
// traffic crossing all of them. This is the workload the sharded engine is
// sized for: 8 roughly-equal event populations separated by 5 ms lookahead.
func extParkingLotXLSpec(scale Scale, scheme Scheme, shards int) scenario.Spec {
	const routers = 9
	coreBW, cloud, perHop := 150e6, 20, 20
	dur, from, until, sw := scale.window()
	if scale == Quick {
		coreBW, cloud, perHop = 30e6, 6, 6
		// The quick window shrinks further: this scenario is ~8x fig11's
		// event volume and runs on every `make bench`.
		dur, from, until, sw = seconds(20), seconds(6), seconds(18), seconds(3)
	}
	var groups []scenario.FlowGroupSpec
	for hop := 1; hop < routers; hop++ {
		groups = append(groups, scenario.FlowGroupSpec{
			Label:  fmt.Sprintf("R%d-R%d", hop, hop+1),
			Scheme: string(scheme), Count: perHop,
			From: fmt.Sprintf("cloud%d", hop), To: fmt.Sprintf("cloud%d", hop+1),
			StartWindow: sw,
		})
	}
	groups = append(groups, scenario.FlowGroupSpec{
		Label:  "through",
		Scheme: string(scheme), Count: perHop,
		From: "cloud1", To: fmt.Sprintf("cloud%d", routers),
		StartWindow: sw,
	})
	return scenario.Spec{
		Name: "ext-parkinglot-xl:" + string(scheme),
		Seed: 9900,
		Topology: scenario.TopologySpec{
			Template:  scenario.ParkingLotTemplate,
			Routers:   routers,
			CloudSize: cloud,
			CoreBW:    coreBW,
			// Heterogeneous RTTs: cloud i attaches at 1/3/6/10 ms round-
			// robin, so each hop's flow population sees a different
			// end-to-end delay and the bottlenecks desynchronize.
			EdgeDelays: []sim.Duration{ms(1), ms(3), ms(6), ms(10)},
			AQM:        string(scheme),
		},
		Groups:   groups,
		Duration: dur, MeasureFrom: from, MeasureUntil: until,
		Shards: shards,
	}
}

// ExtParkingLotXL is the sharded-engine showcase and benchmark: the
// extra-large parking lot above run under the parallel engine (default 8
// shards, one per bottleneck-feeding router pair; override with
// WithShards/-shards, 1 = serial). Every built-in scheme — router AQMs
// included — is shard-safe: netem.Partition rebinds each queue's marking RNG
// to its owning domain's engine (see DESIGN.md §9); the PERT/Sack pair here
// stays fixed for benchmark comparability with committed golden tables.
// The per-link panels read as usual; the table notes
// carry the shard count and per-shard event totals, which is what
// `make bench` surfaces in BENCH_quick.json and what the speedup harness
// (`make bench-shards`) compares across shard counts.
func ExtParkingLotXL(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	shards := ShardsFrom(ctx, 8)
	t := &Table{
		ID:     "ext-parkinglot-xl",
		Title:  fmt.Sprintf("Extension: 8-bottleneck parking lot on the sharded engine (shards=%d)", shards),
		XLabel: "row",
	}
	for _, scheme := range []Scheme{PERT, SackDroptail} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := extParkingLotXLSpec(scale, scheme, shards)
		sub, err := RunScenario(spec)
		if err != nil {
			return nil, err
		}
		if t.Header == nil {
			t.Header = append([]string{"scheme"}, sub.Header...)
		}
		for _, row := range sub.Rows {
			t.AddRow(append([]string{string(scheme)}, row...)...)
		}
		for _, n := range sub.Notes {
			t.Notes = append(t.Notes, string(scheme)+": "+n)
		}
	}
	t.Notes = append(t.Notes,
		"8 core bottlenecks, heterogeneous 1/3/6/10 ms cloud attachment delays (different RTT per hop)")
	if shards > 1 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("run with the conservative-lookahead sharded engine, shards=%d (see DESIGN.md §9)", shards))
	} else {
		t.Notes = append(t.Notes, "run serially (shards=1); use -shards to engage the parallel engine")
	}
	return t, nil
}
