package experiments

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/trafficgen"
)

// RunScenario executes a general declarative scenario (schema v2) end to end
// and renders the standard panels as one table: a row per measured core link
// (time-averaged queue, drop and mark rates, utilization) followed by a row
// per flow group (per-flow goodput share of core capacity, Jain fairness;
// page/object counts for web groups). This is the engine behind
// `pertsim -config` for v2 files — mixed-scheme, multi-bottleneck runs need
// no Go code.
func RunScenario(spec scenario.Spec) (*Table, error) {
	if spec.EffectiveShards() > 1 {
		return runScenarioSharded(spec)
	}
	eng := sim.NewEngine(spec.Seed)
	net := netem.NewNetwork(eng)
	inst, err := scenario.Compile(eng, net, spec)
	if err != nil {
		return nil, err
	}

	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	measured := inst.Topo.Measured()

	// Every scenario run carries the invariant auditor on its core links,
	// like the built-in experiments do.
	aud := netem.StartAudit(net, netem.AuditConfig{
		Seed:     spec.Seed,
		Scenario: fmt.Sprintf("scenario %s template=%s groups=%d", name, spec.Topology.Template, len(spec.Groups)),
	})
	for _, ml := range measured {
		aud.Watch(ml.Link)
		aud.BoundQueue(ml.Link, inst.Topo.BufferPkts())
	}

	inst.Spawn()

	until := spec.MeasureUntil
	if until == 0 {
		until = spec.Duration
	}
	eng.Run(spec.MeasureFrom)
	meters := make([]*stats.Meter, len(measured))
	qmons := make([]*stats.QueueMonitor, len(measured))
	for i, ml := range measured {
		meters[i] = stats.NewMeter(ml.Link)
		meters[i].Start(eng.Now())
		qmons[i] = stats.MonitorQueue(eng, ml.Link, eng.Now(), 10*sim.Millisecond)
	}
	snaps := make([][]uint64, len(inst.Groups))
	for i, g := range inst.Groups {
		snaps[i] = trafficgen.GoodputSnapshot(g.Flows)
	}

	// Fluid background groups: sample the modeled backlog and arrival rate
	// over the window on the same cadence as the queue monitors. Scenarios
	// without fluid groups create no ticker here — the fluid-off path must
	// stay event-identical to the pre-hybrid runner.
	type fluidSample struct {
		backlog, rate stats.Series
	}
	fmons := map[int]*fluidSample{}
	for i, g := range inst.Groups {
		if g.Fluid != nil {
			fmons[i] = &fluidSample{}
		}
	}
	if len(fmons) > 0 {
		eng.Every(eng.Now(), 10*sim.Millisecond, func(sim.Time) {
			for i, m := range fmons {
				m.backlog.Add(inst.Groups[i].Fluid.Backlog())
				m.rate.Add(inst.Groups[i].Fluid.Rate())
			}
		})
	}

	eng.Run(until)
	t := &Table{
		ID:    name,
		Title: fmt.Sprintf("Scenario %s (%s, %d groups, buffer %d pkts)", name, spec.Topology.Template, len(spec.Groups), inst.Topo.BufferPkts()),
		Header: []string{"row", "avg_queue_pkts", "drop_rate", "mark_rate", "utilization",
			"goodput_share_per_flow", "jain"},
	}
	window := (until - spec.MeasureFrom).Seconds()
	pkt := spec.Topology.PktSize
	if pkt == 0 {
		pkt = 1040
	}
	capacityBytes := inst.Topo.CapacityPPS() * float64(pkt) * window
	for i, ml := range measured {
		t.AddRow("link "+ml.Name, f2(qmons[i].Series.Mean()), sci(meters[i].DropRate()),
			sci(meters[i].MarkRate()), f3(meters[i].Utilization(eng.Now())), "-", "-")
		qmons[i].Stop()
	}
	for i, g := range inst.Groups {
		label := "group " + g.Label()
		if m, ok := fmons[i]; ok {
			// Modeled aggregate: its queue share, rate as a utilization
			// fraction, and per-flow share of core capacity.
			cpps := g.Fluid.Params().C
			t.AddRow(label, f2(m.backlog.Mean()), "-", "-",
				f3(m.rate.Mean()/cpps), sci(m.rate.Mean()/cpps/g.Fluid.Flows()), "-")
			continue
		}
		if len(g.Flows) > 0 {
			goodputs := trafficgen.Goodputs(g.Flows, snaps[i])
			var sum float64
			for _, b := range goodputs {
				sum += b
			}
			share := sum / capacityBytes / float64(len(g.Flows))
			t.AddRow(label, "-", "-", "-", "-", f3(share), f3(stats.Jain(goodputs)))
		} else if len(g.Webs) > 0 {
			var pages, objects uint64
			for _, w := range g.Webs {
				pages += w.Pages
				objects += w.Objects
			}
			t.AddRow(label, "-", "-", "-", "-",
				fmt.Sprintf("%d pages", pages), fmt.Sprintf("%d objects", objects))
		}
	}
	eng.Run(spec.Duration)
	t.Notes = append(t.Notes,
		"goodput_share_per_flow = mean per-flow goodput as a fraction of core capacity over the window")
	return t, nil
}
