package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// ExtLossy probes the robustness claim behind the paper's Section 2 and 4.4:
// an end-host controller must tell congestion from noise, and non-congestive
// loss is the noise the trace studies [21],[26] worried about most. Seeded
// random wire loss (0-5%) is injected on the bottleneck and PERT is compared
// with Sack/Droptail and Sack/RED-ECN: every scheme loses goodput to
// retransmissions, but a delay-based early responder should keep its queue
// advantage rather than collapse, because its congestion signal never sees
// the random losses.
func ExtLossy(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 12
	if scale == Paper {
		bwMbps, flows = 150, 50
	}
	t := &Table{
		ID:     "ext-lossy",
		Title:  fmt.Sprintf("Extension: robustness to non-congestive random loss (%g Mbps, %d flows)", bwMbps, flows),
		XLabel: "loss_pct",
		Header: []string{"loss_pct", "scheme", "avg_queue_pkts", "queue_drop_rate", "retrans_overhead", "utilization", "jain"},
	}
	for i, loss := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		for _, s := range []Scheme{PERT, SackDroptail, SackRED} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r := RunDumbbell(DumbbellSpec{
				Seed:      9500 + int64(i),
				Bandwidth: bwMbps * 1e6,
				RTTs:      []sim.Duration{ms(60)},
				Flows:     flows,
				Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
				LossRate: loss,
				Shards:   ShardsFrom(ctx, 0),
			}, s)
			t.AddRow(fmt.Sprintf("%g", loss*100), string(s), f2(r.AvgQueue),
				sci(r.DropRate), sci(r.RetransOverhead), f3(r.Utilization), f3(r.Jain))
		}
	}
	t.Notes = append(t.Notes,
		"wire loss is injected on the forward bottleneck after transmission (capacity is consumed)",
		"queue_drop_rate counts only congestive (queue) drops, not the injected wire loss",
		"all schemes pay goodput for random loss; the delay-based queue advantage should survive it")
	return t, nil
}

// extFlapPhases returns the per-phase schedule of the ext-flap experiment:
// full capacity, a halving, recovery, and a blackhole flap, each observed for
// one phase length L.
func extFlapPhases(bw float64, L sim.Duration) (netem.LinkSchedule, []struct {
	label string
	capac float64
}) {
	sched := netem.LinkSchedule{
		{At: 1 * L, Capacity: bw / 2},
		{At: 3 * L, Capacity: bw},
		{At: 4*L + L/5, Down: true},
		{At: 4*L + 2*L/5, Up: true},
	}
	phases := []struct {
		label string
		capac float64
	}{
		{"full", bw},
		{"half", bw / 2},
		{"half2", bw / 2},
		{"restored", bw},
		{"flap", bw}, // down for L/5 within this phase
		{"recovery", bw},
	}
	return sched, phases
}

// ExtFlap measures response to mid-run path changes: the bottleneck halves
// its capacity, restores it, then blacks out entirely for a fifth of a phase
// (a link flap — packets in the queue and on the wire are lost). The paper's
// Figure 12 covers demand changes; this covers supply changes, the "sudden
// path change" robustness concern. Each scheme's aggregate goodput per phase
// shows how fast it re-converges to the new capacity and how it survives the
// outage.
func ExtFlap(ctx context.Context, scale Scale) ([]*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	bw, flows, L := 30e6, 12, seconds(10)
	if scale == Paper {
		bw, flows, L = 150e6, 50, seconds(40)
	}
	schemes := []Scheme{PERT, SackDroptail, SackRED}
	_, phases := extFlapPhases(bw, L)

	t := &Table{
		ID:     "ext-flap",
		Title:  fmt.Sprintf("Extension: capacity changes and link flaps (%g Mbps nominal, %d flows)", bw/1e6, flows),
		XLabel: "interval",
		Header: []string{"interval", "phase", "capacity_mbps"},
	}
	for _, s := range schemes {
		t.Header = append(t.Header, fmt.Sprintf("%s_mbps", s))
	}

	// goodput[scheme][phase], blackholed[scheme]
	goodput := make([][]float64, len(schemes))
	blackholed := make([]uint64, len(schemes))
	for si, s := range schemes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gp, bh := runFlap(s, bw, flows, L, 9600+int64(si), ShardsFrom(ctx, 0))
		goodput[si], blackholed[si] = gp, bh
	}
	for pi, ph := range phases {
		row := []string{
			fmt.Sprintf("%g-%gs", (sim.Time(pi) * L).Seconds(), (sim.Time(pi+1) * L).Seconds()),
			ph.label, fmt.Sprintf("%g", ph.capac/1e6),
		}
		for si := range schemes {
			row = append(row, f2(goodput[si][pi]))
		}
		t.AddRow(row...)
	}
	for si, s := range schemes {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %d packets blackholed during the flap", s, blackholed[si]))
	}
	t.Notes = append(t.Notes,
		"the flap phase takes the link down for L/5 (packets queued and in flight are lost)",
		"per-phase goodput should track the capacity column; the gap is the re-convergence cost")
	return []*Table{t}, nil
}

// runFlap runs one scheme through the flap schedule and returns aggregate
// forward goodput (Mbps) per phase plus the blackholed-packet count. With
// shards > 1 the dumbbell is cut at the bottleneck into two domains; the flap
// schedule stays legal on the boundary because it changes only capacity and
// up/down state, never delay (the partition would reject a delay change).
func runFlap(scheme Scheme, bw float64, flows int, L sim.Duration, seed int64, shards int) ([]float64, uint64) {
	var g *sim.ShardGroup
	var eng *sim.Engine
	if shards > 1 {
		g = sim.NewShardGroup(2, seed)
		eng = g.Engine(0)
	} else {
		eng = sim.NewEngine(seed)
	}
	net := netem.NewNetwork(eng)
	env := schemeEnv{capacityPPS: bw / (8 * 1040), nFlows: flows, maxRTT: ms(60)}
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: bw,
		Delay:     ms(20),
		Hosts:     flows,
		RTTs:      []sim.Duration{ms(60)},
		Queue:     scheme.queueFor(net, env),
	})
	sched, phases := extFlapPhases(bw, L)
	sched.Apply(d.Forward)
	if g != nil {
		if err := net.Partition(g, d.PartitionHint(g.N())); err != nil {
			panic(fmt.Sprintf("experiments: ext-flap scheme=%s shards=%d: %v", scheme, g.N(), err))
		}
	}

	scen := fmt.Sprintf("ext-flap scheme=%s bw=%g flows=%d", scheme, bw, flows)
	var auds []*netem.Auditor
	if g == nil {
		aud := netem.StartAudit(net, netem.AuditConfig{Seed: seed, Scenario: scen})
		aud.Watch(d.Forward)
		aud.BoundQueue(d.Forward, d.BufferPkts)
		auds = []*netem.Auditor{aud}
	} else {
		auds = make([]*netem.Auditor, net.Domains())
		for dom := range auds {
			auds[dom] = netem.StartDomainAudit(net, dom, netem.AuditConfig{Seed: seed, Scenario: scen})
		}
		auds[d.Forward.From.Domain()].Watch(d.Forward)
		auds[d.Forward.From.Domain()].BoundQueue(d.Forward, d.BufferPkts)
	}

	ids := trafficgen.NewIDs()
	fleet := trafficgen.FTPFleet(net, ids, d.Left, d.Right, flows, trafficgen.FTPConfig{
		CC:          scheme.ccFor(net, env),
		Conn:        tcp.Config{ECN: scheme.ecn()},
		StartWindow: L / 5,
	})

	run := func(until sim.Time) {
		if g != nil {
			g.Run(until)
		} else {
			eng.Run(until)
		}
	}
	out := make([]float64, len(phases))
	prev := trafficgen.GoodputSnapshot(fleet)
	for pi := range phases {
		run(sim.Time(pi+1) * L)
		var sum float64
		for _, gp := range trafficgen.Goodputs(fleet, prev) {
			sum += gp
		}
		prev = trafficgen.GoodputSnapshot(fleet)
		out[pi] = sum * 8 / L.Seconds() / 1e6
	}
	if g != nil {
		for _, aud := range auds {
			aud.Stop()
		}
		if err := net.Audit(); err != nil {
			panic(fmt.Sprintf("experiments: ext-flap scheme=%s shards=%d: %v", scheme, g.N(), err))
		}
	}
	return out, d.Forward.Impairments().Blackholed
}
