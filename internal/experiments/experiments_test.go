package experiments

import (
	"context"
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	// Every evaluation artifact in the paper must be registered.
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig11", "fig12", "fig13", "fig14", "table1",
		"ext-aqm", "ext-validation", "ext-jitter", "ext-delaycc", "ext-highspeed", "ext-hybrid", "ext-coexist", "ext-fct", "ext-threshold", "ext-stability", "ext-replicated",
		"ext-lossy", "ext-flap", "ext-parkinglot-xl"}
	for _, id := range want {
		exp, ok := ByID(id)
		if !ok || exp.Run == nil {
			t.Errorf("experiment %q not registered", id)
		}
		if ok && exp.Title == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
	if len(Experiments) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Experiments), len(want))
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Experiments) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Experiments))
	}
	if ids[0] != "fig2" || ids[len(ids)-1] != "table1" {
		t.Fatalf("ordering: %v", ids)
	}
	// fig11 must come after fig9 (numeric, not lexicographic).
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if pos["fig11"] < pos["fig9"] {
		t.Fatalf("numeric ordering broken: %v", ids)
	}
}

func TestScaleValid(t *testing.T) {
	if !Quick.Valid() || !Paper.Valid() {
		t.Fatal("standard scales invalid")
	}
	if Scale("bogus").Valid() {
		t.Fatal("bogus scale accepted")
	}
}

func TestScaleWindows(t *testing.T) {
	dur, from, until, sw := Paper.window()
	if dur != seconds(400) || from != seconds(100) || until != seconds(300) || sw != seconds(50) {
		t.Fatalf("paper window: %v %v %v %v", dur, from, until, sw)
	}
	dur, from, until, _ = Quick.window()
	if from >= until || until > dur {
		t.Fatalf("quick window inconsistent: %v %v %v", dur, from, until)
	}
	// Quick still measures hundreds of 60 ms RTTs.
	if (until - from) < 300*60*sim.Millisecond {
		t.Fatalf("quick window too short: %v", until-from)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "long_header", "c"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2", "3")
	tab.AddRow("wide-cell", "x", "y")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t: demo ==", "long_header", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and separator align with the widest cell.
	if len(lines) < 5 {
		t.Fatalf("lines: %v", lines)
	}
}

func TestFormatters(t *testing.T) {
	if f3(0.12345) != "0.123" || f2(1.567) != "1.57" {
		t.Fatal("float formatters wrong")
	}
	if sci(0) != "0" {
		t.Fatalf("sci(0) = %q", sci(0))
	}
	if got := sci(3.98e-6); got != "3.98E-06" {
		t.Fatalf("sci = %q", got)
	}
	if pct(0.935) != "93.50" {
		t.Fatalf("pct = %q", pct(0.935))
	}
}

func TestFig5CurveTable(t *testing.T) {
	tab, err := Fig5(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Spot-check the three regions: 0 below Tmin, Pmax at Tmax, 1 beyond.
	byDelay := map[string]string{}
	for _, r := range tab.Rows {
		byDelay[r[0]] = r[1]
	}
	if byDelay["2.50"] != "0.000" {
		t.Fatalf("p(2.5ms) = %s", byDelay["2.50"])
	}
	if byDelay["10.00"] != "0.050" {
		t.Fatalf("p(10ms) = %s", byDelay["10.00"])
	}
	if byDelay["25.00"] != "1.000" {
		t.Fatalf("p(25ms) = %s", byDelay["25.00"])
	}
}

func TestFig13Tables(t *testing.T) {
	ctx := context.Background()
	a, err := Fig13a(ctx, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 8 {
		t.Fatalf("fig13a rows = %d", len(a.Rows))
	}
	bcd, err := Fig13bcd(ctx, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(bcd.Rows) != 4 {
		t.Fatalf("fig13bcd rows = %d", len(bcd.Rows))
	}
	// The verdict column must flip from stable to oscillating across the
	// 171 ms boundary.
	verdicts := map[string]string{}
	for _, r := range bcd.Rows {
		verdicts[r[0]] = r[len(r)-1]
	}
	if verdicts["100"] != "stable" || verdicts["160"] != "stable" {
		t.Fatalf("pre-boundary verdicts: %v", verdicts)
	}
	if verdicts["171"] != "oscillating" || verdicts["190"] != "oscillating" {
		t.Fatalf("post-boundary verdicts: %v", verdicts)
	}
}

func TestSchemeFactoriesCoverAll(t *testing.T) {
	for _, s := range []Scheme{PERT, SackDroptail, SackRED, Vegas, PERTPI, SackPI} {
		spec := quickSpec(50)
		spec.Duration = seconds(5)
		spec.MeasureFrom = seconds(1)
		spec.MeasureUntil = seconds(5)
		r := RunDumbbell(spec, s) // must not panic and must move traffic
		if r.Utilization <= 0 {
			t.Errorf("%s: no traffic", s)
		}
	}
}

func TestSchemeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme did not panic")
		}
	}()
	RunDumbbell(quickSpec(51), Scheme("nonsense"))
}

func TestAblationRunner(t *testing.T) {
	v := DefaultVariant("test")
	r := RunAblation(v, 52)
	if r.Utilization < 0.5 {
		t.Fatalf("ablation utilization = %v", r.Utilization)
	}
	if !strings.Contains(string(r.Scheme), "test") {
		t.Fatalf("scheme label = %q", r.Scheme)
	}
}

func TestRunDumbbellDeterministic(t *testing.T) {
	a := RunDumbbell(quickSpec(60), PERT)
	b := RunDumbbell(quickSpec(60), PERT)
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}
