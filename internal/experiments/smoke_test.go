package experiments

import (
	"testing"

	"pert/internal/sim"
)

func quickSpec(seed int64) DumbbellSpec {
	return DumbbellSpec{
		Seed:      seed,
		Bandwidth: 10e6,
		RTTs:      []sim.Duration{ms(60)},
		Flows:     5, ReverseFlows: 1,
		Duration: seconds(30), MeasureFrom: seconds(8), MeasureUntil: seconds(28),
		StartWindow: seconds(3),
	}
}

func TestRunDumbbellAllSchemes(t *testing.T) {
	for _, s := range []Scheme{PERT, SackDroptail, SackRED, Vegas, PERTPI, SackPI} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			r := RunDumbbell(quickSpec(99), s)
			if r.Utilization < 0.5 || r.Utilization > 1.02 {
				t.Fatalf("%s utilization = %v", s, r.Utilization)
			}
			if r.Jain < 0.3 || r.Jain > 1.0001 {
				t.Fatalf("%s jain = %v", s, r.Jain)
			}
			if r.NormQueue < 0 || r.NormQueue > 1 {
				t.Fatalf("%s norm queue = %v", s, r.NormQueue)
			}
			if r.BufferPkts <= 0 {
				t.Fatalf("%s buffer = %d", s, r.BufferPkts)
			}
		})
	}
}

func TestPERTBeatsDroptailOnQueueAndDrops(t *testing.T) {
	pert := RunDumbbell(quickSpec(7), PERT)
	sack := RunDumbbell(quickSpec(7), SackDroptail)
	if pert.AvgQueue >= sack.AvgQueue {
		t.Fatalf("PERT queue %v >= Sack/Droptail %v", pert.AvgQueue, sack.AvgQueue)
	}
	if pert.DropRate > sack.DropRate {
		t.Fatalf("PERT drops %v > Sack/Droptail %v", pert.DropRate, sack.DropRate)
	}
}

func TestRunDumbbellWithWebTraffic(t *testing.T) {
	spec := quickSpec(11)
	spec.WebSessions = 10
	r := RunDumbbell(spec, PERT)
	if r.Utilization < 0.5 {
		t.Fatalf("utilization with web = %v", r.Utilization)
	}
}
