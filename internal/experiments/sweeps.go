package experiments

import (
	"context"
	"fmt"

	"pert/internal/sim"
)

// sweepPoint is one x-axis value of a Section 4 figure.
type sweepPoint struct {
	label string
	spec  DumbbellSpec
}

// sweepUnits annotates the shared four-panel columns for the JSON schema.
func sweepUnits() map[string]string {
	return map[string]string{
		"avg_queue_pkts": "packets",
		"norm_queue":     "fraction of buffer",
		"drop_rate":      "fraction",
		"mark_rate":      "fraction",
		"utilization":    "fraction",
		"jain":           "index",
	}
}

// runSweep executes every (point, scheme) cell and formats the four panels
// the paper plots: average queue (normalized), drop rate, utilization, Jain
// index. Cells run on Workers(ctx) workers; each owns its engine and RNG, so
// rows are bit-identical at any worker count.
func runSweep(ctx context.Context, id, title, xlabel string, points []sweepPoint, schemes []Scheme) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		Header: []string{xlabel, "scheme", "avg_queue_pkts", "norm_queue", "drop_rate", "mark_rate", "utilization", "jain"},
		Units:  sweepUnits(),
	}
	type cell struct {
		label string
		s     Scheme
		spec  DumbbellSpec
	}
	// A -shards request propagates into every cell; RunDumbbell clamps it
	// to the dumbbell's one useful cut and falls back to serial for cells
	// it cannot shard (metrics-streaming runs below).
	shards := ShardsFrom(ctx, 0)
	cells := make([]cell, 0, len(points)*len(schemes))
	for _, pt := range points {
		for _, s := range schemes {
			spec := pt.spec
			spec.Shards = shards
			cells = append(cells, cell{pt.label, s, spec})
		}
	}
	// When the context carries a metrics config, each cell streams its time
	// series to <dir>/<id>/<label>_<scheme>.jsonl. Files are opened up front
	// (forEach workers cannot return errors) and closed after the sweep.
	var closers []func() error
	if cfg, ok := MetricsFrom(ctx); ok {
		for i := range cells {
			ms, closeFn, err := cfg.open(id, cells[i].label+"_"+string(cells[i].s))
			if err != nil {
				for _, c := range closers {
					_ = c()
				}
				return nil, fmt.Errorf("%s: %w", id, err)
			}
			cells[i].spec.Metrics = ms
			closers = append(closers, closeFn)
		}
	}
	results := make([]DumbbellResult, len(cells))
	runErr := forEach(ctx, len(cells), func(i int) {
		results[i] = RunDumbbell(cells[i].spec, cells[i].s)
	})
	for _, closeFn := range closers {
		if err := closeFn(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("%s: %w", id, runErr)
	}
	for i, r := range results {
		t.AddRow(cells[i].label, string(cells[i].s), f2(r.AvgQueue), f3(r.NormQueue),
			sci(r.DropRate), sci(r.MarkRate), f3(r.Utilization), f3(r.Jain))
	}
	if shards > 1 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("cells run on the sharded engine (requested shards=%d, clamped to a dumbbell's 2 domains; see DESIGN.md §9)", shards))
	}
	return t, nil
}

// Fig6 reproduces "Impact of bottleneck link bandwidth": bandwidth sweep at
// 60 ms RTT, flow count scaled with bandwidth so the link can be driven to
// full utilization at every point.
func Fig6(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	type bw struct {
		mbps  float64
		flows int
	}
	var sweep []bw
	if scale == Paper {
		sweep = []bw{{1, 2}, {10, 5}, {100, 50}, {500, 250}, {1000, 500}}
	} else {
		sweep = []bw{{1, 2}, {5, 3}, {20, 10}, {80, 40}}
	}
	var points []sweepPoint
	for i, b := range sweep {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%gMbps", b.mbps),
			spec: DumbbellSpec{
				Seed:      1000 + int64(i),
				Bandwidth: b.mbps * 1e6,
				RTTs:      []sim.Duration{ms(60)},
				Flows:     b.flows,
				Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			},
		})
	}
	t, err := runSweep(ctx, "fig6", "Impact of bottleneck link bandwidth (RTT 60 ms)", "bandwidth", points, AllSection4Schemes)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "flows scale with bandwidth as in the paper")
	return t, nil
}

// Fig7 reproduces "Impact of round trip delays": RTT sweep at fixed
// bandwidth and 50 flows (paper: 150 Mbps).
func Fig7(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 10
	rtts := []float64{10, 30, 60, 150, 400}
	if scale == Paper {
		bwMbps, flows = 150, 50
		rtts = []float64{10, 30, 60, 100, 300, 1000}
	}
	var points []sweepPoint
	for i, r := range rtts {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%gms", r),
			spec: DumbbellSpec{
				Seed:      2000 + int64(i),
				Bandwidth: bwMbps * 1e6,
				RTTs:      []sim.Duration{ms(r)},
				Flows:     flows,
				Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			},
		})
	}
	return runSweep(ctx, "fig7", fmt.Sprintf("Impact of end-to-end RTT (%g Mbps, %d flows)", bwMbps, flows), "rtt", points, AllSection4Schemes)
}

// Fig8 reproduces "Impact of varying the number of long-term flows" (paper:
// 500 Mbps, 60 ms, 1..1000 flows).
func Fig8(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps := 50.0
	counts := []int{1, 4, 16, 64, 256}
	if scale == Paper {
		bwMbps = 500
		counts = []int{1, 10, 100, 400, 1000}
	}
	var points []sweepPoint
	for i, n := range counts {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%d", n),
			spec: DumbbellSpec{
				Seed:      3000 + int64(i),
				Bandwidth: bwMbps * 1e6,
				RTTs:      []sim.Duration{ms(60)},
				Flows:     n,
				Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			},
		})
	}
	return runSweep(ctx, "fig8", fmt.Sprintf("Impact of number of long-term flows (%g Mbps, 60 ms)", bwMbps), "flows", points, AllSection4Schemes)
}

// Fig9 reproduces "Impact of web traffic": web-session sweep over a base of
// long-term flows (paper: 150 Mbps, 50 flows, 10..1000 sessions).
func Fig9(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 10
	webs := []int{10, 50, 100, 200}
	if scale == Paper {
		bwMbps, flows = 150, 50
		webs = []int{10, 100, 500, 1000}
	}
	var points []sweepPoint
	for i, w := range webs {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%d", w),
			spec: DumbbellSpec{
				Seed:      4000 + int64(i),
				Bandwidth: bwMbps * 1e6,
				RTTs:      []sim.Duration{ms(60)},
				Flows:     flows, WebSessions: w,
				Duration: dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			},
		})
	}
	return runSweep(ctx, "fig9", fmt.Sprintf("Impact of web traffic (%g Mbps, %d long flows)", bwMbps, flows), "web_sessions", points, AllSection4Schemes)
}

// Table1 reproduces "Impact of different RTTs": ten flows with RTTs
// 12..120 ms sharing one bottleneck with background web sessions; per-scheme
// normalized queue, drop rate, utilization and fairness.
func Table1(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, webs := 30.0, 20
	if scale == Paper {
		bwMbps, webs = 150, 100
	}
	rtts := make([]sim.Duration, 10)
	for i := range rtts {
		rtts[i] = ms(float64(12 * (i + 1)))
	}
	t := &Table{
		ID:     "table1",
		Title:  fmt.Sprintf("Flows with different RTTs (%g Mbps, 10 flows, RTTs 12..120 ms, %d web sessions)", bwMbps, webs),
		Header: []string{"scheme", "Q(norm)", "p", "U(%)", "F"},
		Units:  map[string]string{"Q(norm)": "fraction of buffer", "p": "fraction", "U(%)": "percent", "F": "index"},
	}
	for i, s := range []Scheme{PERT, SackDroptail, SackRED, Vegas} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := RunDumbbell(DumbbellSpec{
			Seed:      5000 + int64(i),
			Bandwidth: bwMbps * 1e6,
			RTTs:      rtts,
			Flows:     10, WebSessions: webs,
			Duration: dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			Shards: ShardsFrom(ctx, 0),
		}, s)
		t.AddRow(string(s), f2(r.NormQueue), sci(r.DropRate), f2(100*r.Utilization), f2(r.Jain))
	}
	return t, nil
}

// Fig14 reproduces "Emulating PI at end-hosts": the Fig7 RTT sweep run with
// PERT/PI against router PI with ECN (plus PERT/RED for context).
func Fig14(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 10
	rtts := []float64{10, 30, 60, 150, 400}
	if scale == Paper {
		bwMbps, flows = 150, 50
		rtts = []float64{10, 30, 60, 100, 300, 1000}
	}
	var points []sweepPoint
	for i, r := range rtts {
		points = append(points, sweepPoint{
			label: fmt.Sprintf("%gms", r),
			spec: DumbbellSpec{
				Seed:      6000 + int64(i),
				Bandwidth: bwMbps * 1e6,
				RTTs:      []sim.Duration{ms(r)},
				Flows:     flows,
				Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			},
		})
	}
	return runSweep(ctx, "fig14", fmt.Sprintf("Emulating PI at end hosts (%g Mbps, %d flows, target delay 3 ms)", bwMbps, flows), "rtt", points, []Scheme{PERTPI, SackPI, PERT})
}
