package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// Fig11 reproduces "Impact of multiple bottleneck links": the Figure 10
// parking lot (six routers, 150 Mbps / 5 ms core links, 20-host clouds),
// hop-by-hop traffic between adjacent clouds plus through traffic from cloud
// 1 to cloud 6; per-core-link queue, drops, utilization and per-hop fairness.
func Fig11(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	coreBW, cloud, perHop := 150e6, 20, 20
	if scale == Quick {
		coreBW, cloud, perHop = 30e6, 8, 8
	}

	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("Multiple bottlenecks (parking lot, %g Mbps core links)", coreBW/1e6),
		Header: []string{"scheme", "link", "avg_queue_pkts", "drop_rate", "utilization", "jain_hop_flows"},
	}

	for si, scheme := range AllSection4Schemes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng := sim.NewEngine(7000 + int64(si))
		net := netem.NewNetwork(eng)
		env := schemeEnv{capacityPPS: coreBW / (8 * 1040), nFlows: perHop, maxRTT: ms(60)}
		p := topo.NewParkingLot(net, topo.ParkingLotConfig{
			Routers:   6,
			CloudSize: cloud,
			CoreBW:    coreBW,
			Queue:     scheme.queueFor(net, env),
		})

		ids := trafficgen.NewIDs()
		ccf := scheme.ccFor(net, env)
		conn := tcp.Config{ECN: scheme.ecn()}

		// Hop-by-hop traffic: cloud i -> cloud i+1.
		hopFlows := make([][]*tcp.Flow, len(p.Forward))
		for hop := 0; hop+1 < len(p.Clouds); hop++ {
			hopFlows[hop] = trafficgen.FTPFleet(net, ids, p.Clouds[hop], p.Clouds[hop+1], perHop,
				trafficgen.FTPConfig{CC: ccf, Conn: conn, StartWindow: sw})
		}
		// Through traffic: cloud 1 -> cloud 6 crossing every core link.
		through := trafficgen.FTPFleet(net, ids, p.Clouds[0], p.Clouds[len(p.Clouds)-1], perHop,
			trafficgen.FTPConfig{CC: ccf, Conn: conn, StartWindow: sw})

		eng.Run(from)
		meters := make([]*stats.Meter, len(p.Forward))
		qmons := make([]*stats.QueueMonitor, len(p.Forward))
		for i, l := range p.Forward {
			meters[i] = stats.NewMeter(l)
			meters[i].Start(eng.Now())
			qmons[i] = stats.MonitorQueue(eng, l, eng.Now(), 10*sim.Millisecond)
		}
		snaps := make([][]uint64, len(hopFlows))
		for i, fs := range hopFlows {
			snaps[i] = trafficgen.GoodputSnapshot(fs)
		}
		throughSnap := trafficgen.GoodputSnapshot(through)

		eng.Run(until)
		for i := range p.Forward {
			jain := stats.Jain(trafficgen.Goodputs(hopFlows[i], snaps[i]))
			t.AddRow(string(scheme), fmt.Sprintf("R%d-R%d", i+1, i+2),
				f2(qmons[i].Series.Mean()), sci(meters[i].DropRate()),
				f3(meters[i].Utilization(eng.Now())), f3(jain))
			qmons[i].Stop()
		}
		t.AddRow(string(scheme), "through", "-", "-", "-",
			f3(stats.Jain(trafficgen.Goodputs(through, throughSnap))))
		_ = dur
	}
	t.Notes = append(t.Notes, "through = fairness among cloud1->cloud6 flows crossing all core links")
	return t, nil
}
