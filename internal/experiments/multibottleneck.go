package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/trafficgen"
)

// Fig11 reproduces "Impact of multiple bottleneck links": the Figure 10
// parking lot (six routers, 150 Mbps / 5 ms core links, 20-host clouds),
// hop-by-hop traffic between adjacent clouds plus through traffic from cloud
// 1 to cloud 6; per-core-link queue, drops, utilization and per-hop fairness.
func Fig11(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	coreBW, cloud, perHop := 150e6, 20, 20
	if scale == Quick {
		coreBW, cloud, perHop = 30e6, 8, 8
	}

	t := &Table{
		ID:     "fig11",
		Title:  fmt.Sprintf("Multiple bottlenecks (parking lot, %g Mbps core links)", coreBW/1e6),
		Header: []string{"scheme", "link", "avg_queue_pkts", "drop_rate", "utilization", "jain_hop_flows"},
	}

	const routers = 6
	for si, scheme := range AllSection4Schemes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng := sim.NewEngine(7000 + int64(si))
		net := netem.NewNetwork(eng)

		// Hop-by-hop groups cloud i -> cloud i+1, then through traffic
		// crossing every core link — attach order fixes the start-time draws.
		var groups []scenario.FlowGroupSpec
		for hop := 1; hop < routers; hop++ {
			groups = append(groups, scenario.FlowGroupSpec{
				Label:  fmt.Sprintf("R%d-R%d", hop, hop+1),
				Scheme: string(scheme), Count: perHop,
				From: fmt.Sprintf("cloud%d", hop), To: fmt.Sprintf("cloud%d", hop+1),
				StartWindow: sw,
			})
		}
		groups = append(groups, scenario.FlowGroupSpec{
			Label:  "through",
			Scheme: string(scheme), Count: perHop,
			From: "cloud1", To: fmt.Sprintf("cloud%d", routers),
			StartWindow: sw,
		})
		inst := scenario.MustCompile(eng, net, scenario.Spec{
			Name: "fig11",
			Seed: 7000 + int64(si),
			Topology: scenario.TopologySpec{
				Template:  scenario.ParkingLotTemplate,
				Routers:   routers,
				CloudSize: cloud,
				CoreBW:    coreBW,
				AQM:       string(scheme),
			},
			Groups:   groups,
			Duration: dur, MeasureFrom: from, MeasureUntil: until,
			// The historical environment: PI design rules sized for one hop's
			// flow population at the paper's 60 ms RTT bound, not the derived
			// all-groups total.
			Env: &scenario.Env{CapacityPPS: coreBW / (8 * 1040), NFlows: perHop, MaxRTT: ms(60)},
		})
		inst.Spawn()
		p := inst.ParkingLot()
		hopFlows := make([][]*tcp.Flow, len(p.Forward))
		for i := range hopFlows {
			hopFlows[i] = inst.Groups[i].Flows
		}
		through := inst.Groups[len(inst.Groups)-1].Flows

		eng.Run(from)
		meters := make([]*stats.Meter, len(p.Forward))
		qmons := make([]*stats.QueueMonitor, len(p.Forward))
		for i, l := range p.Forward {
			meters[i] = stats.NewMeter(l)
			meters[i].Start(eng.Now())
			qmons[i] = stats.MonitorQueue(eng, l, eng.Now(), 10*sim.Millisecond)
		}
		snaps := make([][]uint64, len(hopFlows))
		for i, fs := range hopFlows {
			snaps[i] = trafficgen.GoodputSnapshot(fs)
		}
		throughSnap := trafficgen.GoodputSnapshot(through)

		eng.Run(until)
		for i := range p.Forward {
			jain := stats.Jain(trafficgen.Goodputs(hopFlows[i], snaps[i]))
			t.AddRow(string(scheme), fmt.Sprintf("R%d-R%d", i+1, i+2),
				f2(qmons[i].Series.Mean()), sci(meters[i].DropRate()),
				f3(meters[i].Utilization(eng.Now())), f3(jain))
			qmons[i].Stop()
		}
		t.AddRow(string(scheme), "through", "-", "-", "-",
			f3(stats.Jain(trafficgen.Goodputs(through, throughSnap))))
	}
	t.Notes = append(t.Notes, "through = fairness among cloud1->cloud6 flows crossing all core links")
	return t, nil
}
