package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pert/internal/scenario"
	"pert/internal/sim"
)

// xlTestSpec is a small multi-bottleneck scenario for runner tests: chain of
// routers with hop-by-hop PERT traffic, sized to finish in well under a
// second of wall clock.
func xlTestSpec(seed int64, routers int, edgeDelays []sim.Duration) scenario.Spec {
	var groups []scenario.FlowGroupSpec
	for hop := 1; hop < routers; hop++ {
		groups = append(groups, scenario.FlowGroupSpec{
			Scheme: "PERT", Count: 2,
			From: fmt.Sprintf("cloud%d", hop), To: fmt.Sprintf("cloud%d", hop+1),
			StartWindow: seconds(1),
		})
	}
	return scenario.Spec{
		Name: "shard-determinism",
		Seed: seed,
		Topology: scenario.TopologySpec{
			Template:   scenario.ParkingLotTemplate,
			Routers:    routers,
			CloudSize:  2,
			CoreBW:     8e6,
			EdgeDelays: edgeDelays,
		},
		Groups:   groups,
		Duration: seconds(6), MeasureFrom: seconds(2),
	}
}

// tableFingerprint renders the parts of a table the determinism contract
// covers: header and every cell, byte for byte.
func tableFingerprint(t *Table) string {
	b, _ := json.Marshal(struct {
		H []string
		R [][]string
	}{t.Header, t.Rows})
	return string(b)
}

// TestShardedRunnerSerialIdentity: the sharded code path with a group of one
// shard produces the same table, byte for byte, as the serial RunScenario
// path, across a randomized sample of scenario shapes. This pins the whole
// chain — domain-0 packet IDs, auditor event sequence, instrumentation
// attach order — not just the engine layer.
func TestShardedRunnerSerialIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	delayPool := []sim.Duration{ms(1), ms(2), ms(4), ms(8)}
	for trial := 0; trial < 4; trial++ {
		routers := 3 + rng.Intn(3)
		edges := make([]sim.Duration, 1+rng.Intn(3))
		for i := range edges {
			edges[i] = delayPool[rng.Intn(len(delayPool))]
		}
		spec := xlTestSpec(100+int64(trial), routers, edges)

		serial, err := RunScenario(spec) // Shards=0: serial path
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		spec.Shards = 1
		sharded, err := runScenarioSharded(spec) // forced through the group path
		if err != nil {
			t.Fatalf("trial %d sharded: %v", trial, err)
		}
		if got, want := tableFingerprint(sharded), tableFingerprint(serial); got != want {
			t.Errorf("trial %d (routers=%d edges=%v): one-shard table diverged from serial\nserial:  %s\nsharded: %s",
				trial, routers, edges, want, got)
		}
	}
}

// TestShardedRunnerDeterminism: at a fixed shard count the parallel runner
// is deterministic — three runs, identical tables including the per-shard
// event counts in the notes.
func TestShardedRunnerDeterminism(t *testing.T) {
	spec := xlTestSpec(7, 4, []sim.Duration{ms(1), ms(5)})
	spec.Shards = 4
	var first *Table
	for rep := 0; rep < 3; rep++ {
		tab, err := RunScenario(spec)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if rep == 0 {
			first = tab
			continue
		}
		if !reflect.DeepEqual(tab.Rows, first.Rows) || !reflect.DeepEqual(tab.Notes, first.Notes) {
			t.Fatalf("rep %d diverged:\nfirst: %v %v\nthis:  %v %v",
				rep, first.Rows, first.Notes, tab.Rows, tab.Notes)
		}
	}
	// The notes must carry the shard evidence the benchmark reads.
	found := false
	for _, n := range first.Notes {
		if len(n) >= 8 && n[:7] == "shards=" {
			found = true
		}
	}
	if !found {
		t.Errorf("no shards= note in %v", first.Notes)
	}
}

// TestShardedRunnerClampsToTopology: asking for more shards than routers
// clamps rather than failing, and still balances the ledger.
func TestShardedRunnerClampsToTopology(t *testing.T) {
	spec := xlTestSpec(3, 3, nil)
	spec.Shards = 16
	tab, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if n == "shards=16" {
			t.Error("shard count not clamped to router count")
		}
	}
}
