package experiments

import (
	"context"
	"fmt"
	"math"

	"pert/internal/fluid"
)

// ExtStability tabulates Section 5.4's analytic claims. For matched
// configurations (RED thresholds = PERT delay thresholds expressed in
// packets, so L_RED = L_PERT/C), the Theorem 1 left-hand sides coincide; the
// schemes differ only through the sampling interval entering K: a PERT user
// samples once per own packet (delta = N/C) while router RED samples every
// packet (delta = 1/C). The table sweeps the flow count and reports each
// scheme's certified stability boundary in RTT.
func ExtStability(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-stability",
		Title: "Extension: certified stability boundary in RTT, PERT vs router RED (Section 5.4)",
		Header: []string{"flows", "pert_delta_ms", "red_delta_ms",
			"pert_boundary_ms", "red_boundary_ms", "ratio"},
	}
	const C = 1000.0 // packets/second
	for _, n := range []float64{2, 5, 10, 20, 40} {
		pertDelta := n / C
		redDelta := 1 / C

		pert := fluid.PERTParams{
			C: C, N: n, Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
			Alpha: 0.99, Delta: pertDelta,
		}
		// Matched RED: same thresholds in packets, same per-sample weight.
		redWq := 1 - pert.Alpha

		pertBoundary := boundaryR(func(r float64) bool {
			p := pert
			p.R = r
			_, _, ok := fluid.StableTheorem1(p, n, r)
			return ok
		})
		redBoundary := boundaryR(func(r float64) bool {
			p := fluid.REDParams{
				C: C, N: n, R: r,
				MinTh: 0.05 * C, MaxTh: 0.1 * C, Pmax: 0.1, Wq: redWq,
			}
			_, _, ok := fluid.StableRED(p, n, r)
			return ok
		})
		ratio := "-"
		if redBoundary > 0 {
			ratio = f2(pertBoundary / redBoundary)
		}
		t.AddRow(fmt.Sprintf("%g", n), f2(pertDelta*1000), f2(redDelta*1000),
			f2(pertBoundary*1000), f2(redBoundary*1000), ratio)
	}
	t.Notes = append(t.Notes,
		"identical lhs by L_PERT = L_RED*C (Section 5.4); the per-flow sampling interval inflates",
		"PERT's rhs, enlarging the certified region — more so as the flow count grows")
	return t, nil
}

// boundaryR finds the largest RTT (within [1 ms, 5 s]) for which stable(r)
// holds, by scan plus bisection refinement.
func boundaryR(stable func(r float64) bool) float64 {
	lo, hi := 0.001, 5.0
	if !stable(lo) {
		return 0
	}
	// Exponential scan for the first unstable point.
	r := lo
	for r < hi && stable(r) {
		r *= 1.3
	}
	if r >= hi {
		return hi
	}
	lo2, hi2 := r/1.3, r
	for i := 0; i < 40; i++ {
		mid := (lo2 + hi2) / 2
		if stable(mid) {
			lo2 = mid
		} else {
			hi2 = mid
		}
	}
	return math.Round(lo2*1e5) / 1e5
}
