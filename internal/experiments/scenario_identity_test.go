package experiments

import (
	"bytes"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/topo"
)

// identitySpec is a quick-scale dumbbell exercising both directions, web
// traffic, faults, and a link schedule — every construction path whose RNG
// draw order the scenario compiler must reproduce.
func identitySpec(seed int64) DumbbellSpec {
	return DumbbellSpec{
		Seed:      seed,
		Bandwidth: 10e6,
		RTTs:      []sim.Duration{40 * sim.Millisecond, 80 * sim.Millisecond},
		Flows:     5, ReverseFlows: 2, WebSessions: 3,
		Duration: 12 * sim.Second, MeasureFrom: 4 * sim.Second, MeasureUntil: 11 * sim.Second,
		StartWindow: 2 * sim.Second,
		LossRate:    0.005, ReorderRate: 0.002,
		Schedule: netem.LinkSchedule{
			{At: 6 * sim.Second, Capacity: 6e6},
			{At: 9 * sim.Second, Capacity: 10e6},
		},
	}
}

// TestScenarioCompilerBitIdentity is the metamorphic contract of the
// scenario-compiler refactor: running a dumbbell through the declarative
// layer must be indistinguishable — measured result AND full packet trace —
// from the frozen hand-wired path (legacyRunDumbbell), for representative
// schemes covering DropTail, router AQM with ECN, and designed-parameter
// controllers.
func TestScenarioCompilerBitIdentity(t *testing.T) {
	for _, s := range []Scheme{PERT, SackRED, PERTPI} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			spec := identitySpec(424200)

			var legacyTrace bytes.Buffer
			lspec := spec
			lspec.Instrument = func(d *topo.Dumbbell) {
				netem.NewTracer(&legacyTrace).Attach(d.Forward)
			}
			want := legacyRunDumbbellScheme(lspec, s)

			var gotTrace bytes.Buffer
			nspec := spec
			nspec.Instrument = func(d *topo.Dumbbell) {
				netem.NewTracer(&gotTrace).Attach(d.Forward)
			}
			got := RunDumbbell(nspec, s)

			if want != got {
				t.Errorf("compiler path diverged from legacy:\n  legacy:   %+v\n  compiler: %+v", want, got)
			}
			if !bytes.Equal(legacyTrace.Bytes(), gotTrace.Bytes()) {
				t.Errorf("packet traces differ (legacy %d bytes, compiler %d bytes)",
					legacyTrace.Len(), gotTrace.Len())
			}
		})
	}
}

// TestScenarioCompilerBitIdentityPlain covers the no-fault, single-direction
// shape the committed sweeps use (no impairment object must be constructed).
func TestScenarioCompilerBitIdentityPlain(t *testing.T) {
	spec := DumbbellSpec{
		Seed:      7,
		Bandwidth: 10e6,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Flows:     6,
		Duration:  10 * sim.Second, MeasureFrom: 3 * sim.Second, MeasureUntil: 10 * sim.Second,
		StartWindow: sim.Second,
	}
	want := legacyRunDumbbellScheme(spec, SackDroptail)
	got := RunDumbbell(spec, SackDroptail)
	if want != got {
		t.Errorf("compiler path diverged from legacy:\n  legacy:   %+v\n  compiler: %+v", want, got)
	}
}
