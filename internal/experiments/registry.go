package experiments

import "context"

// Runner produces the tables for one paper figure or table at a scale. Most
// experiments yield one table; Fig12 yields one per scheme. Runners observe
// ctx between scenario launches and return an error instead of panicking on
// bad specs or cancellation.
type Runner func(ctx context.Context, scale Scale) ([]*Table, error)

// Experiment describes one registered evaluation artifact: a stable ID
// (fig2..fig14, table1, ext-*), a human title, the scales it supports, and
// its runner. The ordered Experiments slice is the registry the harness and
// CLIs iterate.
type Experiment struct {
	ID     string
	Title  string
	Scales []Scale
	Run    Runner
}

// allScales marks experiments meaningful at both quick and paper scale
// (every current experiment; analytic ones accept either and ignore it).
var allScales = []Scale{Quick, Paper}

// one adapts a single-table entry point to a Runner.
func one(f func(context.Context, Scale) (*Table, error)) Runner {
	return func(ctx context.Context, s Scale) ([]*Table, error) {
		t, err := f(ctx, s)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiments is the ordered registry of every reproduced figure/table plus
// the extension experiments documented in EXPERIMENTS.md. The order is the
// presentation order: paper figures numerically, extensions alphabetically,
// table1 last (matching the committed results files).
var Experiments = []Experiment{
	{ID: "fig2", Title: "High-RTT to loss transition fractions (flow vs queue losses)", Scales: allScales, Run: one(Fig2)},
	{ID: "fig3", Title: "Predictor comparison vs queue-level losses", Scales: allScales, Run: one(Fig3)},
	{ID: "fig4", Title: "PDF of queue length at false positives", Scales: allScales, Run: one(Fig4)},
	{ID: "fig5", Title: "PERT probabilistic response curve", Scales: allScales, Run: one(Fig5)},
	{ID: "fig6", Title: "Impact of bottleneck link bandwidth", Scales: allScales, Run: one(Fig6)},
	{ID: "fig7", Title: "Impact of round trip delays", Scales: allScales, Run: one(Fig7)},
	{ID: "fig8", Title: "Impact of the number of long-term flows", Scales: allScales, Run: one(Fig8)},
	{ID: "fig9", Title: "Impact of web traffic", Scales: allScales, Run: one(Fig9)},
	{ID: "fig11", Title: "Multiple bottleneck links (parking lot)", Scales: allScales, Run: one(Fig11)},
	{ID: "fig12", Title: "Response to sudden changes in responsive traffic", Scales: allScales, Run: runFig12},
	{ID: "fig13", Title: "Fluid-model stability (sampling bound and trajectories)", Scales: allScales, Run: runFig13},
	{ID: "fig14", Title: "Emulating PI at end hosts", Scales: allScales, Run: one(Fig14)},
	{ID: "ext-aqm", Title: "Extension: end-host AQM emulations vs router AQMs", Scales: allScales, Run: one(ExtAQM)},
	{ID: "ext-coexist", Title: "Extension: co-existence with loss-based SACK", Scales: allScales, Run: one(ExtCoexist)},
	{ID: "ext-delaycc", Title: "Extension: delay-based congestion-avoidance lineage", Scales: allScales, Run: one(ExtDelayCC)},
	{ID: "ext-fct", Title: "Extension: web-object flow completion times", Scales: allScales, Run: one(ExtFCT)},
	{ID: "ext-flap", Title: "Extension: response to capacity changes and link flaps", Scales: allScales, Run: ExtFlap},
	{ID: "ext-highspeed", Title: "Extension: PERT over aggressive probing", Scales: allScales, Run: one(ExtHighSpeed)},
	{ID: "ext-hybrid", Title: "Extension: hybrid fluid/packet substrate at ISP scale", Scales: allScales, Run: one(ExtHybrid)},
	{ID: "ext-jitter", Title: "Extension: robustness to access-link delay jitter", Scales: allScales, Run: one(ExtJitter)},
	{ID: "ext-lossy", Title: "Extension: robustness to non-congestive random loss", Scales: allScales, Run: one(ExtLossy)},
	{ID: "ext-parkinglot-xl", Title: "Extension: 8-bottleneck parking lot on the sharded engine", Scales: allScales, Run: one(ExtParkingLotXL)},
	{ID: "ext-replicated", Title: "Extension: seed sensitivity with confidence intervals", Scales: allScales, Run: one(ExtReplicated)},
	{ID: "ext-stability", Title: "Extension: certified stability boundaries, PERT vs RED", Scales: allScales, Run: one(ExtStability)},
	{ID: "ext-threshold", Title: "Extension: detection-margin sweep", Scales: allScales, Run: one(ExtThreshold)},
	{ID: "ext-validation", Title: "Extension: packet simulation vs fluid equilibrium", Scales: allScales, Run: one(ExtValidation)},
	{ID: "table1", Title: "Flows with different RTTs", Scales: allScales, Run: one(Table1)},
}

// runFig12 produces one table per Section 4 scheme.
func runFig12(ctx context.Context, s Scale) ([]*Table, error) {
	var out []*Table
	for _, scheme := range AllSection4Schemes {
		t, err := Fig12(ctx, s, scheme)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// runFig13 produces the sampling-bound table and the trajectory table.
func runFig13(ctx context.Context, s Scale) ([]*Table, error) {
	a, err := Fig13a(ctx, s)
	if err != nil {
		return nil, err
	}
	bcd, err := Fig13bcd(ctx, s)
	if err != nil {
		return nil, err
	}
	return []*Table{a, bcd}, nil
}

// ByID returns the registered experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment IDs in registry (presentation)
// order.
func IDs() []string {
	out := make([]string, len(Experiments))
	for i, e := range Experiments {
		out[i] = e.ID
	}
	return out
}
