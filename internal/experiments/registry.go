package experiments

import (
	"fmt"
	"sort"
)

// Runner produces the tables for one paper figure or table at a scale. Most
// experiments yield one table; Fig12 yields one per scheme.
type Runner func(scale Scale) []*Table

// Registry maps experiment IDs (fig2..fig14, table1) to runners.
var Registry = map[string]Runner{
	"fig2":   func(s Scale) []*Table { return []*Table{Fig2(s)} },
	"fig3":   func(s Scale) []*Table { return []*Table{Fig3(s)} },
	"fig4":   func(s Scale) []*Table { return []*Table{Fig4(s)} },
	"fig5":   func(s Scale) []*Table { return []*Table{Fig5()} },
	"fig6":   func(s Scale) []*Table { return []*Table{Fig6(s)} },
	"fig7":   func(s Scale) []*Table { return []*Table{Fig7(s)} },
	"fig8":   func(s Scale) []*Table { return []*Table{Fig8(s)} },
	"fig9":   func(s Scale) []*Table { return []*Table{Fig9(s)} },
	"table1": func(s Scale) []*Table { return []*Table{Table1(s)} },
	"fig11":  func(s Scale) []*Table { return []*Table{Fig11(s)} },
	"fig12": func(s Scale) []*Table {
		var out []*Table
		for _, scheme := range AllSection4Schemes {
			out = append(out, Fig12(s, scheme))
		}
		return out
	},
	"fig13":          func(Scale) []*Table { return []*Table{Fig13a(), Fig13bcd()} },
	"ext-aqm":        func(s Scale) []*Table { return []*Table{ExtAQM(s)} },
	"ext-jitter":     func(s Scale) []*Table { return []*Table{ExtJitter(s)} },
	"ext-delaycc":    func(s Scale) []*Table { return []*Table{ExtDelayCC(s)} },
	"ext-highspeed":  func(s Scale) []*Table { return []*Table{ExtHighSpeed(s)} },
	"ext-coexist":    func(s Scale) []*Table { return []*Table{ExtCoexist(s)} },
	"ext-fct":        func(s Scale) []*Table { return []*Table{ExtFCT(s)} },
	"ext-threshold":  func(s Scale) []*Table { return []*Table{ExtThreshold(s)} },
	"ext-stability":  func(s Scale) []*Table { return []*Table{ExtStability(s)} },
	"ext-replicated": func(s Scale) []*Table { return []*Table{ExtReplicated(s)} },
	"ext-validation": func(s Scale) []*Table { return []*Table{ExtValidation(s)} },
	"fig14":          func(s Scale) []*Table { return []*Table{Fig14(s)} },
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// figN numerically, table1 last.
		return key(out[i]) < key(out[j])
	})
	return out
}

func key(id string) string {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("a%02d", n)
	}
	return "z" + id
}
