package experiments

import (
	"runtime"
	"sync"
)

// Parallelism controls how many independent simulations the sweep runners
// execute concurrently. Each scenario owns its engine and RNG, so results
// are bit-identical at any setting; only wall-clock time changes. Default:
// all cores.
var parallelism = runtime.GOMAXPROCS(0)

// SetParallelism sets the sweep worker count (minimum 1) and returns the
// previous value.
func SetParallelism(n int) int {
	old := parallelism
	if n < 1 {
		n = 1
	}
	parallelism = n
	return old
}

// forEach runs fn(i) for i in [0, n) on the configured number of workers and
// waits for completion. Order of execution is unspecified; callers must
// write results into per-index slots.
func forEach(n int, fn func(i int)) {
	workers := parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
