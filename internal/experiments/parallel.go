package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workersKey carries an explicit sweep worker count in a context.
type workersKey struct{}

// WithWorkers returns a context that carries an explicit sweep worker count
// for this run. The harness threads harness.RunSpec.Workers through here so
// every forEach under the run uses it; n < 1 leaves ctx unchanged.
func WithWorkers(ctx context.Context, n int) context.Context {
	if n < 1 {
		return ctx
	}
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers reports the sweep worker count carried by ctx, falling back to
// all cores. Each scenario owns its engine and RNG, so results are
// bit-identical at any setting; only wall-clock time changes.
func Workers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// shardsKey carries a requested per-scenario shard count in a context.
type shardsKey struct{}

// WithShards returns a context carrying a shard-count override for the
// experiments that support the parallel engine (currently the sharded
// scenario runner behind ext-parkinglot-xl). Unlike Workers — which
// parallelizes *across* independent scenarios and never changes results —
// shards parallelize *within* one scenario and select different per-shard
// RNG streams, so a run at shards=N is a different (deterministic) execution
// from serial. n < 1 leaves ctx unchanged.
func WithShards(ctx context.Context, n int) context.Context {
	if n < 1 {
		return ctx
	}
	return context.WithValue(ctx, shardsKey{}, n)
}

// ShardsFrom reports the shard count carried by ctx, or def when none is.
func ShardsFrom(ctx context.Context, def int) int {
	if n, ok := ctx.Value(shardsKey{}).(int); ok && n >= 1 {
		return n
	}
	return def
}

// forEach runs fn(i) for i in [0, n) on Workers(ctx) workers and waits for
// completion. Order of execution is unspecified; callers must write results
// into per-index slots. Cancellation is observed between scenario launches:
// once ctx is done no further index is dispatched, in-flight scenarios run
// to completion, and ctx.Err() is returned. A panic inside fn is recovered
// into an error (poisoning one scenario must not kill a whole sweep) and
// stops the dispatch of further indices.
func forEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Workers(ctx)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		once     sync.Once
		firstErr error
		failed   atomic.Bool
	)
	fail := func(err error) {
		once.Do(func() { firstErr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := safeCall(i, fn); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// safeCall invokes fn(i), converting a panic into an error.
func safeCall(i int, fn func(int)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: scenario %d panicked: %v", i, r)
		}
	}()
	fn(i)
	return nil
}
