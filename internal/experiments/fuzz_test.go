package experiments

import (
	"strings"
	"testing"

	"pert/internal/sim"
)

// FuzzLoadScenario hardens the JSON scenario parser: no panics, and accepted
// scenarios must produce internally consistent specs.
func FuzzLoadScenario(f *testing.F) {
	f.Add(`{"scheme":"PERT","bandwidth_bps":1e6,"flows":1,"duration":"10s"}`)
	f.Add(`{"bandwidth_bps":30e6,"flows":8,"web_sessions":5,"duration":"40s","measure_from":"10s","rtts":["60ms","100ms"],"access_jitter":"2ms"}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"bandwidth_bps":-1,"flows":1,"duration":"10s"}`)
	f.Add(`{"bandwidth_bps":1e6,"flows":1,"duration":"-5s"}`)
	f.Add(`{"bandwidth_bps":1e6,"flows":1,"duration":"10s","measure_until":"8s"}`)
	f.Add(`{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"5s","capacity_bps":5e5}]}`)
	f.Add(`{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"15s"}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		spec, scheme, err := LoadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		if spec.Bandwidth <= 0 {
			t.Fatal("accepted non-positive bandwidth")
		}
		if spec.Duration <= 0 || spec.MeasureFrom < 0 ||
			spec.MeasureUntil <= spec.MeasureFrom || spec.MeasureUntil > spec.Duration {
			t.Fatalf("inconsistent window: %+v", spec)
		}
		for _, ch := range spec.Schedule {
			if ch.At < 0 || sim.Duration(ch.At) > spec.Duration {
				t.Fatalf("accepted schedule change outside the run: %+v", ch)
			}
			if ch.Down && ch.Up {
				t.Fatalf("accepted contradictory flap: %+v", ch)
			}
		}
		if len(spec.RTTs) == 0 {
			t.Fatal("accepted scenario without RTTs")
		}
		if scheme == "" {
			t.Fatal("empty scheme returned without error")
		}
	})
}
