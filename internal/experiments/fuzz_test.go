package experiments

import (
	"strings"
	"testing"
)

// FuzzLoadScenario hardens the JSON scenario parser: no panics, and accepted
// scenarios must produce internally consistent specs.
func FuzzLoadScenario(f *testing.F) {
	f.Add(`{"scheme":"PERT","bandwidth_bps":1e6,"flows":1,"duration":"10s"}`)
	f.Add(`{"bandwidth_bps":30e6,"flows":8,"web_sessions":5,"duration":"40s","measure_from":"10s","rtts":["60ms","100ms"],"access_jitter":"2ms"}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"bandwidth_bps":-1,"flows":1,"duration":"10s"}`)
	f.Add(`{"bandwidth_bps":1e6,"flows":1,"duration":"-5s"}`)

	f.Fuzz(func(t *testing.T, data string) {
		spec, scheme, err := LoadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		if spec.Bandwidth <= 0 {
			t.Fatal("accepted non-positive bandwidth")
		}
		if spec.Duration <= 0 || spec.MeasureFrom < 0 || spec.MeasureUntil != spec.Duration {
			t.Fatalf("inconsistent window: %+v", spec)
		}
		if len(spec.RTTs) == 0 {
			t.Fatal("accepted scenario without RTTs")
		}
		if scheme == "" {
			t.Fatal("empty scheme returned without error")
		}
	})
}
