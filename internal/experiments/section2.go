package experiments

import (
	"context"
	"fmt"
	"sync"

	"pert/internal/core"
	"pert/internal/netem"
	"pert/internal/predictors"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// Section2Case is one of the paper's six trace-collection loads: 50 or 100
// long-term flows in both directions crossed with 100, 500 or 1000 web
// sessions over a 100 Mbps / 20 ms bottleneck with a 750-packet queue.
type Section2Case struct {
	Name      string
	LongFlows int
	Web       int
}

// Section2Cases returns case1..case6 at the given scale. Quick scale halves
// the link, queue, and loads together, preserving per-flow shares and the
// queue's drain time; keeping the flow count high (25-50) preserves the
// paper's key property that the bottleneck can lose packets without the
// tagged flow being among the victims.
func Section2Cases(scale Scale) (cases []Section2Case, bandwidth float64, buffer int, dur, warm sim.Duration) {
	if scale == Paper {
		return []Section2Case{
			{"case1", 50, 100}, {"case2", 50, 500}, {"case3", 50, 1000},
			{"case4", 100, 100}, {"case5", 100, 500}, {"case6", 100, 1000},
		}, 100e6, 750, seconds(1000), seconds(20)
	}
	return []Section2Case{
		{"case1", 25, 50}, {"case2", 25, 250}, {"case3", 25, 500},
		{"case4", 50, 50}, {"case5", 50, 250}, {"case6", 50, 500},
	}, 50e6, 375, seconds(150), seconds(10)
}

// traceCache memoizes Section 2 traces so Figures 2, 3 and 4 share one
// simulation per case instead of re-running it. Guarded by traceMu: the
// harness worker pool may run section 2 figures concurrently with other
// experiments' sweeps.
var (
	traceMu    sync.Mutex
	traceCache = map[string]*predictors.Trace{}
)

func section2Trace(c Section2Case, seed int64, bandwidth float64, buffer int, dur, warm sim.Duration) *predictors.Trace {
	key := fmt.Sprintf("%s-%d-%g-%d-%d", c.Name, seed, bandwidth, buffer, dur)
	traceMu.Lock()
	tr, ok := traceCache[key]
	traceMu.Unlock()
	if ok {
		return tr
	}
	tr = section2Run(c, seed, bandwidth, buffer, dur, warm)
	traceMu.Lock()
	traceCache[key] = tr
	traceMu.Unlock()
	return tr
}

// CollectTrace runs one Section 2 trace-collection case and returns the
// tagged flow's trace (exported for cmd/pertpredict and custom studies).
func CollectTrace(c Section2Case, seed int64, bandwidth float64, buffer int, dur, warm sim.Duration) *predictors.Trace {
	return section2Run(c, seed, bandwidth, buffer, dur, warm)
}

// section2Run simulates one case on the Section 2.2 topology with standard
// TCP everywhere, a tagged 60 ms flow, and returns the collected trace.
func section2Run(c Section2Case, seed int64, bandwidth float64, buffer int, dur, warm sim.Duration) *predictors.Trace {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	// Flows have different RTTs (varying access delays); the tagged flow's
	// end-to-end delay is 60 ms as in the paper.
	rtts := []sim.Duration{ms(60), ms(40), ms(80), ms(100), ms(52), ms(68), ms(90), ms(30)}
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth:  bandwidth,
		Delay:      ms(20),
		Hosts:      32,
		RTTs:       rtts,
		BufferPkts: buffer,
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})

	collector := predictors.NewCollector(d.Forward, buffer, warm)
	ids := trafficgen.NewIDs()
	reno := func() tcp.CongestionControl { return tcp.Reno{} }

	// ns-2's Agent/TCP defaults to a 20-packet receiver window; the Section
	// 2 traces inherit it. The cap matters: capped long flows cannot
	// saturate the link alone, so congestion arrives in web-driven
	// episodes with loss-free lulls between them — the regime in which
	// smoothed-signal false positives occur at all.
	const ns2Window = 20
	base := tcp.Config{MaxCwnd: ns2Window}

	// The tagged flow: first host pair, whose RTT is 60 ms.
	tagged := tcp.NewFlow(net, d.Left[0], d.Right[0], ids.Next(), tcp.Reno{}, collector.Config(base))
	collector.Bind(tagged.Conn)
	tagged.Start(0)

	// Long-term flows run in both directions (the paper's load description);
	// the reverse direction carries half the long flows plus half the web
	// sessions, making reverse-path delay episodic rather than constant —
	// the round-trip signal then sees congestion the forward queue does not
	// have, the paper's source of prediction uncertainty.
	trafficgen.FTPFleet(net, ids, d.Left[1:], d.Right[1:], c.LongFlows-1, trafficgen.FTPConfig{
		CC: reno, Conn: base, StartWindow: warm / 2,
	})
	trafficgen.FTPFleet(net, ids, d.Right[1:], d.Left[1:], c.LongFlows/2, trafficgen.FTPConfig{
		CC: reno, Conn: base, StartWindow: warm / 2,
	})
	trafficgen.WebFleet(net, ids, d.Left[1:], d.Right[1:], c.Web, trafficgen.WebConfig{Conn: base}, warm)
	trafficgen.WebFleet(net, ids, d.Right[1:], d.Left[1:], c.Web/2, trafficgen.WebConfig{Conn: base}, warm)

	eng.Run(dur)
	return &collector.Trace
}

// lossCoalesceGap merges queue-drop bursts into single congestion episodes on
// the scale of the tagged flow's RTT.
const lossCoalesceGap = 60 * sim.Millisecond

// Fig2 reproduces "fraction of transitions from high-RTT to loss when losses
// are measured within a flow vs at the bottleneck queue": the fixed 65 ms
// threshold predictor evaluated against both loss series.
func Fig2(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	cases, bw, buf, dur, warm := Section2Cases(scale)
	t := &Table{
		ID:     "fig2",
		Title:  "High-RTT -> loss transition fraction: flow-level vs queue-level losses (65 ms threshold)",
		Header: []string{"case", "long_flows", "web", "frac_flow_losses", "frac_queue_losses", "samples"},
	}
	for i, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tr := section2Trace(c, 100+int64(i), bw, buf, dur, warm)
		// The paper's 65 ms threshold is its tagged flow's propagation
		// delay (60 ms) plus 5 ms; we apply the same P+5ms rule with P
		// estimated as the flow's minimum observed RTT, which also absorbs
		// any standing reverse-path delay.
		flow := predictors.Evaluate(predictors.NewRelativeThreshold("inst-rtt", ms(5), nil), tr,
			predictors.CoalesceLosses(tr.FlowLosses, lossCoalesceGap))
		queueL := predictors.Evaluate(predictors.NewRelativeThreshold("inst-rtt", ms(5), nil), tr,
			predictors.CoalesceLosses(tr.QueueLosses, lossCoalesceGap))
		t.AddRow(c.Name, fmt.Sprint(c.LongFlows), fmt.Sprint(c.Web),
			f3(flow.Efficiency()), f3(queueL.Efficiency()), fmt.Sprint(len(tr.Samples)))
	}
	t.Notes = append(t.Notes, "threshold = P+5ms (the paper's 65 ms for its 60 ms path)",
		"paper finding: queue-level fraction is significantly higher than flow-level")
	return t, nil
}

// Fig3 reproduces "prediction efficiency, false positives and false
// negatives for different predictors", evaluated against queue-level losses
// and averaged over the six cases.
func Fig3(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	cases, bw, buf, dur, warm := Section2Cases(scale)
	t := &Table{
		ID:     "fig3",
		Title:  "Predictor comparison vs queue-level losses (mean over the six cases)",
		Header: []string{"predictor", "efficiency", "false_pos", "false_neg"},
	}
	traces := make([]*predictors.Trace, len(cases))
	for i, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		traces[i] = section2Trace(c, 100+int64(i), bw, buf, dur, warm)
	}
	// Fresh predictor instances per trace: they are stateful.
	names := []string{}
	for _, p := range predictors.Suite(ms(5), buf) {
		names = append(names, p.Name())
	}
	for idx, name := range names {
		var e, fp, fn float64
		for _, tr := range traces {
			p := predictors.Suite(ms(5), buf)[idx]
			res := predictors.Evaluate(p, tr, predictors.CoalesceLosses(tr.QueueLosses, lossCoalesceGap))
			e += res.Efficiency()
			fp += res.FalsePositives()
			fn += res.FalseNegatives()
		}
		n := float64(len(traces))
		t.AddRow(name, f3(e/n), f3(fp/n), f3(fn/n))
	}
	t.Notes = append(t.Notes, "paper finding: ewma-0.99 achieves high efficiency with low FP and FN; Vegas best among prior schemes")
	return t, nil
}

// Fig4 reproduces the "probability distribution of normalized queue length
// when false positives occur": for each signal in the per-ACK family
// (instantaneous, EWMA 7/8, EWMA 0.99) the bottleneck queue occupancy at
// every false-positive instant is histogrammed. The heavier the smoothing,
// the fewer false positives exist at all (the paper measured only 0.7-1.5%
// for srtt_0.99; at reduced scale this rounds to zero events), so the
// distribution is reported across the family.
func Fig4(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	cases, bw, buf, dur, warm := Section2Cases(scale)
	signals := []struct {
		name     string
		smoother func() predictors.Smoother
	}{
		{"inst-rtt", func() predictors.Smoother { return nil }},
		{"ewma-0.875", func() predictors.Smoother { return &predictors.EWMASmoother{W: 0.875} }},
		{"ewma-0.99", func() predictors.Smoother { return &predictors.EWMASmoother{W: 0.99} }},
	}
	hists := make([]*stats.Histogram, len(signals))
	for i := range hists {
		hists[i] = stats.NewHistogram(1, 10)
	}
	for i, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tr := section2Trace(c, 100+int64(i), bw, buf, dur, warm)
		losses := predictors.CoalesceLosses(tr.QueueLosses, lossCoalesceGap)
		for si, sig := range signals {
			p := predictors.NewRelativeThreshold(sig.name, ms(5), sig.smoother())
			res := predictors.Evaluate(p, tr, losses)
			for _, f := range res.FalsePositiveQueueFracs {
				hists[si].Add(f)
			}
		}
	}
	t := &Table{
		ID:     "fig4",
		Title:  "PDF of normalized queue length at false positives (all six cases)",
		Header: []string{"queue_fraction"},
	}
	for _, sig := range signals {
		t.Header = append(t.Header, "pdf_"+sig.name)
	}
	for b := 0; b < 10; b++ {
		row := []string{f2(hists[0].BucketCenter(b))}
		for si := range signals {
			row = append(row, f3(hists[si].PDF()[b]))
		}
		t.AddRow(row...)
	}
	for si, sig := range signals {
		t.Notes = append(t.Notes, fmt.Sprintf("%s false positives observed: %d", sig.name, hists[si].Total()))
	}
	t.Notes = append(t.Notes, "paper finding: false positives concentrate at low queue occupancy (< 50%)")
	return t, nil
}

// ExtThreshold sweeps the detection margin of the per-ACK signal family over
// the Section 2 traces, charting the aggressiveness tradeoff Figure 1's
// state machine frames: small margins predict early but cry wolf (transition
// 5), large margins miss losses entirely (transition 4). This is the
// operating-point analysis behind the paper's choice of P+5 ms.
func ExtThreshold(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	cases, bw, buf, dur, warm := Section2Cases(scale)
	t := &Table{
		ID:     "ext-threshold",
		Title:  "Extension: detection-margin sweep for the per-ACK signal family (mean over six cases)",
		Header: []string{"margin_ms", "signal", "efficiency", "false_pos", "false_neg"},
	}
	traces := make([]*predictors.Trace, len(cases))
	for i, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		traces[i] = section2Trace(c, 100+int64(i), bw, buf, dur, warm)
	}
	signals := []struct {
		name     string
		smoother func() predictors.Smoother
	}{
		{"inst-rtt", func() predictors.Smoother { return nil }},
		{"ewma-0.99", func() predictors.Smoother { return &predictors.EWMASmoother{W: 0.99} }},
	}
	for _, marginMs := range []float64{1, 2, 5, 10, 20} {
		for _, sig := range signals {
			var e, fp, fn float64
			for _, tr := range traces {
				p := predictors.NewRelativeThreshold(sig.name, ms(marginMs), sig.smoother())
				res := predictors.Evaluate(p, tr, predictors.CoalesceLosses(tr.QueueLosses, lossCoalesceGap))
				e += res.Efficiency()
				fp += res.FalsePositives()
				fn += res.FalseNegatives()
			}
			n := float64(len(traces))
			t.AddRow(fmt.Sprintf("%g", marginMs), sig.name, f3(e/n), f3(fp/n), f3(fn/n))
		}
	}
	t.Notes = append(t.Notes,
		"in loss-rich traces a small margin keeps the detector armed through every loss episode;",
		"pushing the margin past the typical queue excursion both raises false positives",
		"(episodes that peak below the margin end unconfirmed) and explodes false negatives",
		"the smoothed signal dominates the instantaneous one at every operating point (Fig. 3's finding)")
	return t, nil
}

// Fig5 tabulates the PERT response curve (an analytic figure in the paper;
// both scales produce the same table).
func Fig5(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5",
		Title:  "PERT probabilistic response curve (Tmin=5ms, Tmax=10ms, pmax=0.05, gentle)",
		XLabel: "queueing_delay_ms",
		Header: []string{"queueing_delay_ms", "response_prob"},
		Units:  map[string]string{"queueing_delay_ms": "ms", "response_prob": "probability"},
	}
	curve := core.DefaultCurve()
	for _, q := range []float64{0, 2.5, 5, 6, 7.5, 9, 10, 12.5, 15, 17.5, 20, 25} {
		t.AddRow(f2(q), f3(curve.Prob(ms(q))))
	}
	return t, nil
}
