package experiments

import (
	"context"
	"fmt"
	"math"

	"pert/internal/stats"
)

// Replicated aggregates one metric across replicated runs.
type Replicated struct {
	Mean float64
	Std  float64
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean.
	CI95 float64
	N    int
}

func replicated(s *stats.Series) Replicated {
	n := s.N()
	r := Replicated{Mean: s.Mean(), Std: s.Std(), N: n}
	if n > 1 {
		r.CI95 = 1.96 * r.Std / math.Sqrt(float64(n))
	}
	return r
}

// ReplicatedResult carries the across-seed distribution of every headline
// metric of a dumbbell scenario.
type ReplicatedResult struct {
	Scheme      Scheme
	AvgQueue    Replicated
	DropRate    Replicated
	Utilization Replicated
	Jain        Replicated
}

// ExtReplicated attaches error bars to the headline comparison: the standard
// dumbbell scenario run with several seeds per scheme, reporting mean ± 95%
// confidence interval for each panel. With deterministic simulations the
// only variance source is the seeded randomness (start times, web draws,
// marking decisions), so tight intervals here certify that single-seed
// tables elsewhere are representative.
func ExtReplicated(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	replicas := 5
	spec := AblationSpec(9700)
	spec.Shards = ShardsFrom(ctx, 0)
	if scale == Paper {
		replicas = 10
		spec.Bandwidth = 150e6
		spec.Flows = 50
		spec.Duration = seconds(400)
		spec.MeasureFrom = seconds(100)
		spec.MeasureUntil = seconds(300)
	}
	t := &Table{
		ID:    "ext-replicated",
		Title: fmt.Sprintf("Extension: seed sensitivity (%d replicas per scheme, mean ± 95%% CI)", replicas),
		Header: []string{"scheme", "queue_pkts", "queue_ci", "utilization",
			"util_ci", "jain", "jain_ci"},
	}
	for _, s := range []Scheme{PERT, SackDroptail, SackRED, Vegas} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := RunReplicated(spec, s, replicas)
		t.AddRow(string(s), f2(r.AvgQueue.Mean), "±"+f2(r.AvgQueue.CI95),
			f3(r.Utilization.Mean), "±"+f3(r.Utilization.CI95),
			f3(r.Jain.Mean), "±"+f3(r.Jain.CI95))
	}
	return t, nil
}

// RunReplicated executes the scenario n times with consecutive seeds and
// aggregates the metrics — the standard way to attach error bars to any
// experiment in this package (simulations are deterministic per seed, so the
// only variance is the seeded randomness itself).
func RunReplicated(spec DumbbellSpec, scheme Scheme, n int) ReplicatedResult {
	if n < 1 {
		panic("experiments: replication count must be positive")
	}
	var q, d, u, j stats.Series
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)
		r := RunDumbbell(s, scheme)
		q.Add(r.AvgQueue)
		d.Add(r.DropRate)
		u.Add(r.Utilization)
		j.Add(r.Jain)
	}
	return ReplicatedResult{
		Scheme:      scheme,
		AvgQueue:    replicated(&q),
		DropRate:    replicated(&d),
		Utilization: replicated(&u),
		Jain:        replicated(&j),
	}
}
