package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pert/internal/netem"
	"pert/internal/obs"
	"pert/internal/sim"
	"pert/internal/topo"
)

// metricsTestSpec is a small PERT dumbbell that saturates its bottleneck in a
// couple of simulated seconds — big enough for every instrument to move,
// small enough to run many times per test.
func metricsTestSpec() DumbbellSpec {
	return DumbbellSpec{
		Seed:      7,
		Bandwidth: 5e6,
		RTTs:      []sim.Duration{40 * sim.Millisecond},
		Flows:     4,
		Duration:  4 * sim.Second, MeasureFrom: sim.Second, MeasureUntil: 4 * sim.Second,
		StartWindow: 500 * sim.Millisecond,
	}
}

// TestMetricsMetamorphic pins rule 2 of the observability layer: enabling
// metrics must not change the simulation. The same spec runs with and without
// a metrics registry, with a packet tracer attached both times; the measured
// result rows and the full packet traces must be bit-identical.
func TestMetricsMetamorphic(t *testing.T) {
	run := func(withMetrics bool) (DumbbellResult, string, string) {
		spec := metricsTestSpec()
		var trace bytes.Buffer
		spec.Instrument = func(d *topo.Dumbbell) {
			netem.NewTracer(&trace).Attach(d.Forward)
		}
		var series bytes.Buffer
		if withMetrics {
			spec.Metrics = &MetricsSpec{Sink: obs.NewJSONLWriter(&series)}
		}
		res := RunDumbbell(spec, PERT)
		return res, trace.String(), series.String()
	}

	base, baseTrace, _ := run(false)
	withM, withTrace, series := run(true)

	if base != withM {
		t.Errorf("metrics changed the measured result:\n  off: %+v\n  on:  %+v", base, withM)
	}
	if baseTrace != withTrace {
		t.Errorf("metrics changed the packet trace (lengths %d vs %d)", len(baseTrace), len(withTrace))
	}
	if series == "" {
		t.Fatalf("metrics-enabled run emitted no series")
	}

	// Determinism of the observation itself: a second metrics-enabled run
	// produces byte-identical series output.
	_, _, series2 := run(true)
	if series != series2 {
		t.Errorf("two identical metrics runs produced different series output")
	}
}

// TestMetricsSeriesRoundTrip checks the acceptance-level contract: a
// PERT run with metrics enabled emits queue, cwnd, and PERT-probability
// series that parse back cleanly.
func TestMetricsSeriesRoundTrip(t *testing.T) {
	spec := metricsTestSpec()
	var buf bytes.Buffer
	spec.Metrics = &MetricsSpec{Sink: obs.NewJSONLWriter(&buf)}
	RunDumbbell(spec, PERT)

	pts, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("emitted series do not re-parse: %v", err)
	}
	count := map[string]int{}
	for _, p := range pts {
		count[p.Series]++
		if p.T < 0 || p.T > spec.Duration.Seconds() {
			t.Fatalf("sample outside the run window: %+v", p)
		}
	}
	for _, series := range []string{
		"queue.len", "queue.util", "queue.drops",
		"tcp/0.cwnd", "tcp/0.srtt", "tcp/0.pert.qdelay", "tcp/0.pert.prob",
		"tcp.rtt.count", "tcp.rtt.p50", "tcp.rtt.p99",
	} {
		if count[series] == 0 {
			t.Errorf("series %q missing from a PERT run (got: %v)", series, keys(count))
		}
	}
	// Sampling at the default 100 ms over 4 s gives 41 ticks; the queue
	// gauge fires on every one.
	if got := count["queue.len"]; got != 41 {
		t.Errorf("queue.len has %d samples, want 41 (100 ms over 4 s)", got)
	}
	// The PERT probability series only appears once the responder has RTT
	// samples, so it is allowed to start late but must be present and valid.
	for _, p := range pts {
		if p.Series == "tcp/0.pert.prob" && (p.Value < 0 || p.Value > 1) {
			t.Fatalf("PERT probability outside [0,1]: %+v", p)
		}
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestAuditAbortIncludesFlightDump: when the invariant auditor aborts a
// metrics-enabled run, the panic's repro bundle must carry the flight
// recorder's trailing series window.
func TestAuditAbortIncludesFlightDump(t *testing.T) {
	spec := metricsTestSpec()
	spec.Metrics = &MetricsSpec{} // no sink: flight recorder only
	// Corrupt the bottleneck's bookkeeping mid-run the way a lost-packet bug
	// would: an arrival that never reaches any other column. Pure accounting
	// corruption — packet flow is unaffected, only the audit sees it.
	spec.Instrument = func(d *topo.Dumbbell) {
		d.Net.Engine().Do(1500*sim.Millisecond, func() {
			d.Forward.Stats.Arrivals++
		})
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted run did not abort")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic payload is %T, want the bundle string", r)
		}
		for _, want := range []string{
			"invariant violated", "link accounting", "repro bundle", "seed=7",
			"flight recorder:", `flight "dumbbell scheme=PERT`, "points retained",
			"queue.len=",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("repro bundle missing %q:\n%s", want, msg)
			}
		}
	}()
	RunDumbbell(spec, PERT)
}

// TestSweepMetricsParallelRegistries runs a metrics-enabled sweep on four
// workers. Registries are engine-local by design; under -race this proves no
// sampling state is shared across concurrently running cells, and afterwards
// every cell's file must exist and parse.
func TestSweepMetricsParallelRegistries(t *testing.T) {
	dir := t.TempDir()
	ctx := WithWorkers(context.Background(), 4)
	ctx = WithMetrics(ctx, MetricsConfig{Dir: dir})

	base := metricsTestSpec()
	base.Duration, base.MeasureFrom, base.MeasureUntil = 2*sim.Second, sim.Second, 2*sim.Second
	var points []sweepPoint
	for i := 0; i < 2; i++ {
		spec := base
		spec.Seed = int64(10 + i)
		points = append(points, sweepPoint{label: fmt.Sprintf("pt%d", i), spec: spec})
	}
	table, err := runSweep(ctx, "race-sweep", "metrics race check", "pt", points, []Scheme{PERT, SackDroptail})
	if err != nil {
		t.Fatalf("runSweep: %v", err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(table.Rows))
	}

	paths := SeriesPaths(dir, "race-sweep")
	if len(paths) != 4 {
		t.Fatalf("got %d series files, want 4: %v", len(paths), paths)
	}
	for _, path := range paths {
		pts := readSeriesFile(t, path)
		if len(pts) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	// The sweep rows must match a serial, metrics-free run bit-for-bit
	// (engine-local registries cannot leak across cells).
	serialTable, err := runSweep(context.Background(), "race-sweep-serial", "serial control", "pt", points, []Scheme{PERT, SackDroptail})
	if err != nil {
		t.Fatalf("serial control sweep: %v", err)
	}
	for i := range table.Rows {
		// Column 0 is the point label; compare the measured columns.
		got := strings.Join(table.Rows[i][1:], ",")
		want := strings.Join(serialTable.Rows[i][1:], ",")
		if got != want {
			t.Errorf("row %d differs between parallel+metrics and serial runs:\n  %s\n  %s", i, got, want)
		}
	}
}

func readSeriesFile(t *testing.T, path string) []obs.Point {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	pts, err := obs.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("%s does not parse: %v", path, err)
	}
	return pts
}

func TestCellFileName(t *testing.T) {
	for in, want := range map[string]string{
		"10Mbps_PERT":       "10Mbps_PERT",
		"Sack/RED-ECN":      "Sack-RED-ECN",
		"a b:c":             "a-b-c",
		"pt0_Sack/Droptail": "pt0_Sack-Droptail",
	} {
		if got := cellFileName(in); got != want {
			t.Errorf("cellFileName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesPathsEmpty(t *testing.T) {
	if got := SeriesPaths("", "fig2"); got != nil {
		t.Errorf("SeriesPaths with no dir = %v, want nil", got)
	}
	if got := SeriesPaths(t.TempDir(), "missing"); got != nil {
		t.Errorf("SeriesPaths for absent experiment = %v, want nil", got)
	}
}

func TestWithMetricsContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := MetricsFrom(ctx); ok {
		t.Fatal("bare context carries metrics")
	}
	if got := WithMetrics(ctx, MetricsConfig{}); got != ctx {
		t.Fatal("empty Dir should leave ctx unchanged")
	}
	ctx2 := WithMetrics(ctx, MetricsConfig{Dir: filepath.Join(t.TempDir(), "m")})
	cfg, ok := MetricsFrom(ctx2)
	if !ok || cfg.Dir == "" {
		t.Fatalf("metrics config lost: %+v ok=%v", cfg, ok)
	}
}
