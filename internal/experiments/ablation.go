package experiments

import (
	"pert/internal/core"
	"pert/internal/sim"
	"pert/internal/tcp"
)

// PERTVariant describes a modified PERT for ablation studies of the design
// choices Section 3 fixes: the decrease factor (eq. 1's 35%), the signal
// smoothing weight (0.99), the once-per-RTT response limit, the gentle upper
// ramp of the response curve, and the threshold offsets (P+5 ms / P+10 ms).
type PERTVariant struct {
	Name           string
	Curve          core.ResponseCurve
	HistoryWeight  float64
	DecreaseFactor float64
	Unlimited      bool // disable the once-per-RTT response limit
}

// DefaultVariant returns the paper's standard configuration.
func DefaultVariant(name string) PERTVariant {
	return PERTVariant{
		Name:           name,
		Curve:          core.DefaultCurve(),
		HistoryWeight:  core.DefaultHistoryWeight,
		DecreaseFactor: core.DefaultDecreaseFactor,
	}
}

// CC returns a congestion-control factory realizing the variant.
func (v PERTVariant) CC() func() tcp.CongestionControl {
	return func() tcp.CongestionControl {
		return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
			r := core.NewREDResponderWith(c.Engine().Rand(), v.Curve, v.HistoryWeight, v.DecreaseFactor)
			r.Unlimited = v.Unlimited
			return r
		})
	}
}

// AblationSpec is the standard small scenario ablations run on: a moderately
// multiplexed DropTail dumbbell where PERT's early response is the only
// queue-management mechanism.
func AblationSpec(seed int64) DumbbellSpec {
	return DumbbellSpec{
		Seed:         seed,
		Bandwidth:    30e6,
		RTTs:         []sim.Duration{ms(60)},
		Flows:        12,
		WebSessions:  10,
		Duration:     seconds(40),
		MeasureFrom:  seconds(10),
		MeasureUntil: seconds(40),
		StartWindow:  seconds(4),
	}
}

// RunAblation executes the variant on the standard ablation scenario.
func RunAblation(v PERTVariant, seed int64) DumbbellResult {
	res := RunDumbbellWith(AblationSpec(seed), v.CC())
	res.Scheme = Scheme("PERT[" + v.Name + "]")
	return res
}
