package experiments

import (
	"context"
	"fmt"
	"math"

	"pert/internal/fluid"
)

// fig13Base returns the paper's Figure 13(b)-(d) fluid configuration.
func fig13Base(r float64) fluid.PERTParams {
	return fluid.PERTParams{
		C: 100, N: 5, R: r,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
	}
}

// Fig13a reproduces the minimum sampling interval delta as a function of the
// minimum number of flows (equation 13; C = 10 Mbps = 1000 pkt/s at 1250 B,
// R = 200 ms).
func Fig13a(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	p := fluid.PERTParams{
		C: 1000, N: 1, R: 0.2,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1, Alpha: 0.99, Delta: 0.1,
	}
	t := &Table{
		ID:     "fig13a",
		Title:  "Minimum stable sampling interval delta vs minimum flow count (eq. 13)",
		Header: []string{"N_min", "min_delta_s"},
	}
	for _, n := range []float64{1, 2, 5, 10, 20, 30, 40, 50} {
		t.AddRow(fmt.Sprintf("%g", n), fmt.Sprintf("%.4f", fluid.MinDelta(p, n, p.R)))
	}
	t.Notes = append(t.Notes, "paper reads ~0.1 s near N=40; delta shrinks monotonically with N")
	return t, nil
}

// Fig13bcd reproduces the fluid-model trajectories at R = 100, 160 and
// 171 ms: stable monotone, stable with decaying oscillations, and unstable
// persistent oscillations respectively. For each R the table reports the
// Theorem 1 verdict, the equilibrium, and the trajectory's late-time
// deviation and oscillation amplitude.
func Fig13bcd(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13bcd",
		Title:  "PERT fluid model (14) trajectories (C=100 pkt/s, N=5)",
		Header: []string{"R_ms", "theorem1", "W*", "late_dev_frac", "osc_amp_frac", "verdict"},
	}
	for _, rMs := range []float64{100, 160, 171, 190} {
		p := fig13Base(rMs / 1000)
		_, _, ok := fluid.StableTheorem1(p, p.N, p.R)
		wStar, _, _ := p.Equilibrium()

		var lateMin, lateMax float64 = math.Inf(1), math.Inf(-1)
		horizon := 400.0
		p.Trajectory(horizon, 1e-3, func(tt float64, x []float64) {
			if tt > horizon*0.85 {
				if x[0] < lateMin {
					lateMin = x[0]
				}
				if x[0] > lateMax {
					lateMax = x[0]
				}
			}
		})
		amp := (lateMax - lateMin) / wStar
		dev := math.Max(math.Abs(lateMax-wStar), math.Abs(lateMin-wStar)) / wStar
		verdict := "stable"
		if amp > 0.1 {
			verdict = "oscillating"
		}
		t.AddRow(fmt.Sprintf("%g", rMs), fmt.Sprint(ok), f2(wStar), f3(dev), f3(amp), verdict)
	}
	t.Notes = append(t.Notes,
		"paper: stable at 100 ms, decaying oscillations at 160 ms, persistent oscillation at/beyond the 171 ms boundary")
	return t, nil
}
