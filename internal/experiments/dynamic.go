package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// Fig12 reproduces "response to sudden changes in responsive traffic":
// cohorts of flows arrive at fixed intervals and later depart; the table
// reports each cohort's aggregate throughput in every interval, showing how
// fast the scheme converges to the new fair share. The paper shows PERT (its
// Figure 12) with SACK/RED-ECN and Vegas in the companion thesis; we run all
// four schemes.
func Fig12(ctx context.Context, scale Scale, scheme Scheme) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	if !scheme.Known() {
		return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
	cohortSize := 25
	phase := seconds(100) // paper: +25 flows every 100 s, then -25 every 100 s
	bw := 150e6
	if scale == Quick {
		cohortSize, phase, bw = 8, seconds(20), 30e6
	}
	nCohorts := 4 // arrivals for the first half, departures for the second

	eng := sim.NewEngine(8000)
	net := netem.NewNetwork(eng)
	env := schemeEnv{capacityPPS: bw / (8 * 1040), nFlows: cohortSize * nCohorts, maxRTT: ms(60)}
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: bw,
		Delay:     ms(20),
		Hosts:     64,
		RTTs:      []sim.Duration{ms(60)},
		Queue:     scheme.queueFor(net, env),
	})

	ids := trafficgen.NewIDs()
	ccf := scheme.ccFor(net, env)

	cohorts := make([][]*tcp.Flow, nCohorts)
	for c := 0; c < nCohorts; c++ {
		cohorts[c] = trafficgen.FTPFleet(net, ids, d.Left, d.Right, cohortSize, trafficgen.FTPConfig{
			CC:      ccf,
			Conn:    tcp.Config{ECN: scheme.ecn()},
			StartAt: sim.Time(c) * phase,
			// Stagger within 5% of the phase to avoid a synchronized blast.
			StartWindow: phase / 20,
		})
	}
	// Departures: cohort c leaves at (2*nCohorts - 1 - c) * phase, i.e.
	// first-in last-out as in the paper (flows leave 25 at a time).
	for c := 0; c < nCohorts; c++ {
		c := c
		leave := sim.Time(2*nCohorts-1-c) * phase
		eng.At(leave, func() {
			for _, f := range cohorts[c] {
				f.Close()
			}
		})
	}

	t := &Table{
		ID:     "fig12",
		Title:  fmt.Sprintf("Dynamic behaviour under cohort arrivals/departures (%s, %d flows per cohort)", scheme, cohortSize),
		XLabel: "interval",
		Header: []string{"interval", "active"},
	}
	for c := 0; c < nCohorts; c++ {
		t.Header = append(t.Header, fmt.Sprintf("cohort%d_Mbps", c+1))
	}

	prev := make([][]uint64, nCohorts)
	for c := range prev {
		prev[c] = trafficgen.GoodputSnapshot(cohorts[c])
	}
	for step := 0; step < 2*nCohorts; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng.Run(sim.Time(step+1) * phase)
		active := 0
		row := []string{
			fmt.Sprintf("%d-%ds", step*int(phase/sim.Second), (step+1)*int(phase/sim.Second)),
			"",
		}
		for c := 0; c < nCohorts; c++ {
			g := trafficgen.Goodputs(cohorts[c], prev[c])
			prev[c] = trafficgen.GoodputSnapshot(cohorts[c])
			var sum float64
			for _, x := range g {
				sum += x
			}
			mbps := sum * 8 / phase.Seconds() / 1e6
			if mbps > 0.05 {
				active += cohortSize
			}
			row = append(row, f2(mbps))
		}
		row[1] = fmt.Sprint(active)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "cohort shares should converge to bandwidth/active_cohorts within each interval")
	return t, nil
}
