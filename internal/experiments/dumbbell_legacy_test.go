package experiments

import (
	"fmt"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// legacyRunDumbbell is a frozen copy of the hand-wired dumbbell scenario body
// from before the scenario-compiler refactor. It exists only as the oracle
// for the metamorphic bit-identity test: the compiler path must consume
// engine sequence numbers and RNG draws at exactly the same program points,
// so every result field and packet trace must match this byte for byte.
// Do not "fix" or modernize it — its value is that it does not change.
func legacyRunDumbbell(eng *sim.Engine, net *netem.Network, spec DumbbellSpec, scheme string,
	qf topo.QueueFactory, ccf func() tcp.CongestionControl, ecn bool,
	webccf func() tcp.CongestionControl) DumbbellResult {

	if spec.BufferPkts == 0 {
		var sum sim.Duration
		for _, r := range spec.RTTs {
			sum += r
		}
		mean := sum / sim.Duration(len(spec.RTTs))
		spec.BufferPkts = topo.BDPPackets(spec.Bandwidth, mean, 1040)
		if min := 2 * spec.Flows; spec.BufferPkts < min {
			spec.BufferPkts = min
		}
	}

	hosts := spec.Flows + spec.ReverseFlows + spec.WebSessions
	if hosts < 1 {
		hosts = 1
	}
	if hosts > 256 {
		hosts = 256
	}
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth:    spec.Bandwidth,
		Delay:        spec.RTTs[0] / 3,
		Hosts:        hosts,
		RTTs:         spec.RTTs,
		BufferPkts:   spec.BufferPkts,
		AccessJitter: spec.AccessJitter,
		Queue:        qf,
	})

	if spec.LossRate > 0 || spec.DupRate > 0 || spec.ReorderRate > 0 {
		imp := netem.NewImpairment(spec.Seed ^ 0xfa017)
		imp.Loss, imp.Dup, imp.Reorder = spec.LossRate, spec.DupRate, spec.ReorderRate
		imp.ReorderMax = spec.ReorderExtra
		if imp.Reorder > 0 && imp.ReorderMax <= 0 {
			imp.ReorderMax = 5 * sim.Millisecond
		}
		d.Forward.SetImpairment(imp)
	}
	spec.Schedule.Apply(d.Forward)

	scenario := legacyScenarioString(spec, scheme)

	reg := spec.Metrics.newRegistry(eng, scenario)

	if !spec.NoAudit {
		cfg := netem.AuditConfig{Seed: spec.Seed, Scenario: scenario}
		if fl := reg.Flight(); fl != nil {
			cfg.MetricsDump = fl.Dump
		}
		aud := netem.StartAudit(net, cfg)
		aud.Watch(d.Forward)
		aud.BoundQueue(d.Forward, d.BufferPkts)
		aud.BoundQueue(d.Reverse, d.BufferPkts)
	}

	if spec.Instrument != nil {
		spec.Instrument(d)
	}
	delayMon := stats.MonitorDelay(d.Forward, spec.MeasureFrom, rand.New(rand.NewSource(spec.Seed^0x5eed)))

	ids := trafficgen.NewIDs()
	conn := tcp.Config{ECN: ecn}
	observeRTT(reg, &conn)

	fwd := trafficgen.FTPFleet(net, ids, d.Left, d.Right, spec.Flows, trafficgen.FTPConfig{
		CC: ccf, Conn: conn, StartWindow: spec.StartWindow,
	})
	trafficgen.FTPFleet(net, ids, d.Right, d.Left, spec.ReverseFlows, trafficgen.FTPConfig{
		CC: ccf, Conn: conn, StartWindow: spec.StartWindow,
	})
	if spec.WebSessions > 0 {
		trafficgen.WebFleet(net, ids, d.Left, d.Right, spec.WebSessions,
			trafficgen.WebConfig{Conn: tcp.Config{ECN: ecn}, CC: webccf}, spec.StartWindow)
	}
	spec.Metrics.instrumentDumbbell(reg, d, fwd)

	eng.Run(spec.MeasureFrom)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	snap := trafficgen.GoodputSnapshot(fwd)

	eng.Run(spec.MeasureUntil)
	var sent, retrans uint64
	for _, f := range fwd {
		sent += f.Conn.Stats.SegsSent
		retrans += f.Conn.Stats.Retransmits
	}
	var overhead float64
	if sent > 0 {
		overhead = float64(retrans) / float64(sent)
	}
	p50, p95, p99 := delayMon.P50P95P99()
	res := DumbbellResult{
		RetransOverhead: overhead,
		DelayP50:        p50,
		DelayP95:        p95,
		DelayP99:        p99,
		AvgQueue:        qmon.Series.Mean(),
		NormQueue:       qmon.Series.Mean() / float64(d.BufferPkts),
		DropRate:        meter.DropRate(),
		MarkRate:        meter.MarkRate(),
		Utilization:     meter.Utilization(eng.Now()),
		Jain:            stats.Jain(trafficgen.Goodputs(fwd, snap)),
		BufferPkts:      d.BufferPkts,
	}
	qmon.Stop()
	eng.Run(spec.Duration)
	_ = reg.Close()
	return res
}

// legacyScenarioString is the frozen audit-bundle scenario line.
func legacyScenarioString(spec DumbbellSpec, scheme string) string {
	return fmt.Sprintf("dumbbell scheme=%s bw=%g flows=%d rev=%d web=%d loss=%g dup=%g reorder=%g changes=%d",
		scheme, spec.Bandwidth, spec.Flows, spec.ReverseFlows, spec.WebSessions,
		spec.LossRate, spec.DupRate, spec.ReorderRate, len(spec.Schedule))
}

// legacyRunDumbbellScheme mirrors the old RunDumbbell entry point.
func legacyRunDumbbellScheme(spec DumbbellSpec, scheme Scheme) DumbbellResult {
	eng := sim.NewEngine(spec.Seed)
	net := netem.NewNetwork(eng)

	maxRTT := spec.RTTs[0]
	for _, r := range spec.RTTs {
		if r > maxRTT {
			maxRTT = r
		}
	}
	env := schemeEnv{
		capacityPPS: spec.Bandwidth / (8 * 1040),
		nFlows:      spec.Flows + spec.ReverseFlows,
		maxRTT:      maxRTT,
		targetDelay: spec.TargetDelay,
	}
	res := legacyRunDumbbell(eng, net, spec, string(scheme), scheme.queueFor(net, env), scheme.ccFor(net, env), scheme.ecn(), webCC(scheme, scheme.ccFor(net, env)))
	res.Scheme = scheme
	return res
}
