package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// ExtCoexist quantifies the open issue of the paper's Section 7
// ("Co-existence with Non-Proactive Flows"): PERT flows back off on delay
// while loss-based SACK flows push until the buffer overflows, so in a mixed
// population PERT should lose throughput share. The sweep varies the PERT
// fraction of a fixed flow population and reports each group's mean per-flow
// goodput share and the usual link panels.
func ExtCoexist(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, total := 30.0, 16
	if scale == Paper {
		bwMbps, total = 150, 48
	}
	t := &Table{
		ID:    "ext-coexist",
		Title: fmt.Sprintf("Extension: PERT co-existing with loss-based SACK (%g Mbps, %d flows total)", bwMbps, total),
		Header: []string{"pert_fraction", "pert_share_per_flow", "sack_share_per_flow",
			"share_ratio", "avg_queue_pkts", "drop_rate", "utilization"},
	}
	for i, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nPert := int(frac * float64(total))
		nSack := total - nPert
		r := runCoexist(9500+int64(i), bwMbps*1e6, nPert, nSack, dur, from, until, sw)
		ratio := "-"
		if nSack > 0 && r.sackShare > 0 {
			ratio = f2(r.pertShare / r.sackShare)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), f3(r.pertShare), f3(r.sackShare),
			ratio, f2(r.avgQueue), sci(r.dropRate), f3(r.util))
	}
	t.Notes = append(t.Notes,
		"shares are mean per-flow goodput fractions of link capacity",
		"the paper's Section 7 open issue: proactive flows concede bandwidth to loss-based ones;",
		"the adaptive pro-activeness mechanisms (core.AdaptiveResponder) are its sketched mitigations")
	return t, nil
}

type coexistResult struct {
	pertShare, sackShare float64
	avgQueue, dropRate   float64
	util                 float64
}

func runCoexist(seed int64, bw float64, nPert, nSack int, dur, from, until, sw sim.Duration) coexistResult {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: bw,
		Delay:     20 * sim.Millisecond,
		Hosts:     nPert + nSack,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	ids := trafficgen.NewIDs()
	pertFlows := trafficgen.FTPFleet(net, ids, d.Left[:max(nPert, 1)], d.Right[:max(nPert, 1)], nPert,
		trafficgen.FTPConfig{CC: func() tcp.CongestionControl { return tcp.NewPERTRed() }, StartWindow: sw})
	var sackFlows []*tcp.Flow
	if nSack > 0 {
		sackFlows = trafficgen.FTPFleet(net, ids, d.Left[nPert:], d.Right[nPert:], nSack,
			trafficgen.FTPConfig{CC: func() tcp.CongestionControl { return tcp.Reno{} }, StartWindow: sw})
	}

	eng.Run(from)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	pertSnap := trafficgen.GoodputSnapshot(pertFlows)
	sackSnap := trafficgen.GoodputSnapshot(sackFlows)
	eng.Run(until)

	window := (until - from).Seconds()
	capacityBytes := bw / 8 * window
	share := func(flows []*tcp.Flow, snap []uint64) float64 {
		if len(flows) == 0 {
			return 0
		}
		var sum float64
		for _, g := range trafficgen.Goodputs(flows, snap) {
			sum += g
		}
		return sum / capacityBytes / float64(len(flows))
	}
	res := coexistResult{
		pertShare: share(pertFlows, pertSnap),
		sackShare: share(sackFlows, sackSnap),
		avgQueue:  qmon.Series.Mean(),
		dropRate:  meter.DropRate(),
		util:      meter.Utilization(eng.Now()),
	}
	qmon.Stop()
	_ = dur
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
