package experiments

import (
	"context"
	"fmt"

	"pert/internal/netem"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/trafficgen"
)

// ExtCoexist quantifies the open issue of the paper's Section 7
// ("Co-existence with Non-Proactive Flows"): PERT flows back off on delay
// while loss-based SACK flows push until the buffer overflows, so in a mixed
// population PERT should lose throughput share. The sweep varies the PERT
// fraction of a fixed flow population and reports each group's mean per-flow
// goodput share and the usual link panels.
func ExtCoexist(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, total := 30.0, 16
	if scale == Paper {
		bwMbps, total = 150, 48
	}
	t := &Table{
		ID:    "ext-coexist",
		Title: fmt.Sprintf("Extension: PERT co-existing with loss-based SACK (%g Mbps, %d flows total)", bwMbps, total),
		Header: []string{"pert_fraction", "pert_share_per_flow", "sack_share_per_flow",
			"share_ratio", "avg_queue_pkts", "drop_rate", "utilization"},
	}
	for i, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nPert := int(frac * float64(total))
		nSack := total - nPert
		r := runCoexist(9500+int64(i), bwMbps*1e6, nPert, nSack, dur, from, until, sw)
		ratio := "-"
		if nSack > 0 && r.sackShare > 0 {
			ratio = f2(r.pertShare / r.sackShare)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), f3(r.pertShare), f3(r.sackShare),
			ratio, f2(r.avgQueue), sci(r.dropRate), f3(r.util))
	}
	t.Notes = append(t.Notes,
		"shares are mean per-flow goodput fractions of link capacity",
		"the paper's Section 7 open issue: proactive flows concede bandwidth to loss-based ones;",
		"the adaptive pro-activeness mechanisms (core.AdaptiveResponder) are its sketched mitigations")
	return t, nil
}

type coexistResult struct {
	pertShare, sackShare float64
	avgQueue, dropRate   float64
	util                 float64
}

// runCoexist runs one mixed PERT/SACK population over a DropTail dumbbell —
// the same two-group scenario shape examples/scenarios/mixed_dumbbell.json
// expresses in JSON. PERT hosts occupy the low host indices, SACK the rest.
func runCoexist(seed int64, bw float64, nPert, nSack int, dur, from, until, sw sim.Duration) coexistResult {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	inst := scenario.MustCompile(eng, net, scenario.Spec{
		Name: "ext-coexist",
		Seed: seed,
		Topology: scenario.TopologySpec{
			Template:  scenario.DumbbellTemplate,
			Bandwidth: bw,
			Delay:     20 * sim.Millisecond,
			Hosts:     nPert + nSack,
			RTTs:      []sim.Duration{60 * sim.Millisecond},
			AQM:       string(SackDroptail), // plain DropTail bottleneck
		},
		Groups: []scenario.FlowGroupSpec{
			{
				Label: "pert", Scheme: string(PERT), Count: nPert,
				From: fmt.Sprintf("left[0:%d]", max(nPert, 1)), To: fmt.Sprintf("right[0:%d]", max(nPert, 1)),
				StartWindow: sw,
			},
			{
				Label: "sack", Scheme: string(SackDroptail), Count: nSack,
				From: fmt.Sprintf("left[%d:%d]", nPert, nPert+nSack), To: fmt.Sprintf("right[%d:%d]", nPert, nPert+nSack),
				StartWindow: sw,
			},
		},
		Duration: dur, MeasureFrom: from, MeasureUntil: until,
	})
	inst.Spawn()
	d := inst.Dumbbell()
	pertFlows := inst.Groups[0].Flows
	sackFlows := inst.Groups[1].Flows

	eng.Run(from)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	pertSnap := trafficgen.GoodputSnapshot(pertFlows)
	sackSnap := trafficgen.GoodputSnapshot(sackFlows)
	eng.Run(until)

	window := (until - from).Seconds()
	capacityBytes := bw / 8 * window
	share := func(flows []*tcp.Flow, snap []uint64) float64 {
		if len(flows) == 0 {
			return 0
		}
		var sum float64
		for _, g := range trafficgen.Goodputs(flows, snap) {
			sum += g
		}
		return sum / capacityBytes / float64(len(flows))
	}
	res := coexistResult{
		pertShare: share(pertFlows, pertSnap),
		sackShare: share(sackFlows, sackSnap),
		avgQueue:  qmon.Series.Mean(),
		dropRate:  meter.DropRate(),
		util:      meter.Utilization(eng.Now()),
	}
	qmon.Stop()
	_ = dur
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
