package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pert/internal/netem"
	"pert/internal/obs"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// DefaultMetricsInterval is the sampling period used when a MetricsSpec does
// not set one: 100 ms of sim time matches the paper's figure resolution and
// costs well under 1% of run time on a saturated quick-scale bottleneck.
const DefaultMetricsInterval = 100 * sim.Millisecond

// DefaultMetricsFlows caps how many forward flows get per-flow series when a
// MetricsSpec does not set MaxFlows: the paper's per-flow plots show a
// handful of flows, and instrumenting all 256 flows of a fig8 point would
// multiply series count for no figure.
const DefaultMetricsFlows = 8

// MetricsSpec enables time-series collection for one dumbbell run. A nil
// *MetricsSpec (the zero DumbbellSpec) disables the whole layer: no
// registry is built and every instrument call in the model compiles to a
// nil-check no-op.
type MetricsSpec struct {
	// Sink receives every sampled point, typically an *obs.SeriesWriter
	// streaming JSONL to a file. The caller owns flushing/closing the
	// underlying file; Registry.Close (called at end of run) flushes the
	// writer, whose errors are sticky. A nil Sink still runs the flight
	// recorder.
	Sink obs.Sink
	// Interval between samples (default DefaultMetricsInterval).
	Interval sim.Duration
	// MaxFlows bounds per-flow instrumentation of forward long-term flows
	// (default DefaultMetricsFlows).
	MaxFlows int
	// FlightDepth sizes the flight-recorder ring (default
	// obs.DefaultFlightDepth).
	FlightDepth int
}

func (m *MetricsSpec) interval() sim.Duration {
	if m.Interval > 0 {
		return m.Interval
	}
	return DefaultMetricsInterval
}

func (m *MetricsSpec) maxFlows() int {
	if m.MaxFlows > 0 {
		return m.MaxFlows
	}
	return DefaultMetricsFlows
}

// newRegistry builds the run's registry and flight recorder before traffic
// (and the auditor) exist, so the auditor can reference the flight in its
// repro bundle. Returns nil when metrics are disabled.
func (m *MetricsSpec) newRegistry(eng *sim.Engine, scenario string) *obs.Registry {
	if m == nil {
		return nil
	}
	reg := obs.NewRegistry(eng)
	if m.Sink != nil {
		reg.AddSink(m.Sink)
	}
	reg.EnableFlight(scenario, m.FlightDepth)
	return reg
}

// instrumentDumbbell wires the standard dumbbell series: the bottleneck
// link/queue under "queue.*", per-flow sender series under "tcp/<i>.*" for
// the first maxFlows forward flows, and starts the sampler from t=0.
func (m *MetricsSpec) instrumentDumbbell(reg *obs.Registry, d *topo.Dumbbell, fwd []*tcp.Flow) {
	if reg == nil {
		return
	}
	d.Forward.Instrument(reg, "queue")
	n := m.maxFlows()
	if n > len(fwd) {
		n = len(fwd)
	}
	for i := 0; i < n; i++ {
		tcp.InstrumentConn(reg, fwd[i].Conn, fmt.Sprintf("tcp/%d", i))
	}
	reg.Start(0, m.interval())
}

// observeRTT chains an RTT histogram onto the shared sender Config: every
// valid per-ACK RTT sample across the run's long-term flows feeds
// "tcp.rtt", summarized (count/p50/p95/p99) at registry close.
func observeRTT(reg *obs.Registry, conn *tcp.Config) {
	if reg == nil {
		return
	}
	hist := reg.NewHistogram("tcp.rtt")
	prev := conn.OnRTTSample
	conn.OnRTTSample = func(now sim.Time, rtt sim.Duration, ack *netem.Packet) {
		hist.Observe(rtt.Seconds())
		if prev != nil {
			prev(now, rtt, ack)
		}
	}
}

// MetricsConfig is the sweep-level metrics switch carried by a context (see
// WithMetrics): when present, every dumbbell cell run under runSweep-style
// experiments streams its series to Dir/<experiment>/<cell>.jsonl.
type MetricsConfig struct {
	Dir      string       // root output directory (required)
	Interval sim.Duration // per-run sampling period (0 = default)
}

type metricsKey struct{}

// WithMetrics returns a context that enables per-cell series collection for
// experiments run under it. An empty Dir leaves ctx unchanged.
func WithMetrics(ctx context.Context, cfg MetricsConfig) context.Context {
	if cfg.Dir == "" {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, cfg)
}

// MetricsFrom reports the metrics configuration carried by ctx, if any.
func MetricsFrom(ctx context.Context) (MetricsConfig, bool) {
	cfg, ok := ctx.Value(metricsKey{}).(MetricsConfig)
	return cfg, ok
}

// cellFileName sanitizes a cell label into a filename component: characters
// outside [a-zA-Z0-9._-] become '-'.
func cellFileName(label string) string {
	var b strings.Builder
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// open creates Dir/<expID>/<cell>.jsonl and returns a MetricsSpec streaming
// to it plus a closer that flushes and reports any sticky write error. Files
// are created before scenarios run (forEach workers cannot return errors)
// and closed after the sweep completes.
func (cfg MetricsConfig) open(expID, cell string) (*MetricsSpec, func() error, error) {
	dir := filepath.Join(cfg.Dir, expID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("metrics: %w", err)
	}
	path := filepath.Join(dir, cellFileName(cell)+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics: %w", err)
	}
	sw := obs.NewJSONLWriter(f)
	closer := func() error {
		ferr := sw.Flush()
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		if ferr != nil {
			return fmt.Errorf("metrics: %s: %w", path, ferr)
		}
		return nil
	}
	return &MetricsSpec{Sink: sw, Interval: cfg.Interval}, closer, nil
}

// SeriesPaths lists the series files an experiment wrote under the metrics
// root, name-sorted, or nil when the experiment produced none. A missing or
// unreadable directory is "no series", never an error: metrics may be
// disabled, the experiment may not support them, or (for cached cells) the
// series may have been pruned since the record was committed. The harness
// records these in each RunRecord.
func SeriesPaths(dir, expID string) []string {
	if dir == "" {
		return nil
	}
	entries, err := os.ReadDir(filepath.Join(dir, expID))
	if err != nil {
		return nil
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		paths = append(paths, filepath.Join(dir, expID, e.Name()))
	}
	return paths // ReadDir returns name-sorted entries
}
