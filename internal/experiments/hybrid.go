package experiments

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"pert/internal/fluid"
	"pert/internal/scenario"
	"pert/internal/sim"
)

// extHybridFlows returns the modeled background population and the core
// capacity (pkt/s) for a scale. Quick models 10^5 flows on a 10^7 pkt/s
// (83 Gbps at 1040 B) bottleneck; paper scales both by 10x to the million
// flows a packet simulation cannot touch. Holding C/N fixed keeps the
// per-flow equilibrium identical across scales: W* = RC/N = 6,
// p* = 2/W*^2 ~ 0.056, Tq* = Tmin + p*/L ~ 60.6 ms.
func extHybridFlows(scale Scale) (bg int, pps float64) {
	if scale == Paper {
		return 1_000_000, 1e8
	}
	return 100_000, 1e7
}

// extHybridSpec is the ISP-scale hybrid scenario: one fluid PERT aggregate
// (the modeled background) sharing the bottleneck with 10 real packet
// foreground connections of the given scheme. The buffer is ~3x the modeled
// equilibrium backlog (Tq*·C ~ 0.06·C) so overflow does not distort the
// equilibrium check, and the 60 ms modeled RTT matches the packet flows'
// path RTT.
func extHybridSpec(scale Scale, scheme Scheme) scenario.Spec {
	bg, pps := extHybridFlows(scale)
	// Custom windows, much shorter than scale.window(): the fluid substrate
	// settles in ~10 s at any population (its dynamics are set by the 60 ms
	// RTT, not the flow count), while the packet cost of the loss-based
	// foreground grows with everything it grabs at an ISP-scale bottleneck —
	// Sack sees no loss until the shared buffer fills, so longer horizons
	// only buy more foreground packet events, not a different equilibrium.
	dur, from, until, sw := seconds(25), seconds(10), seconds(23), seconds(3)
	if scale == Paper {
		dur, from, until, sw = seconds(60), seconds(25), seconds(55), seconds(8)
	}
	return scenario.Spec{
		Name: "ext-hybrid:" + string(scheme),
		Seed: 9700,
		Topology: scenario.TopologySpec{
			Template:  scenario.DumbbellTemplate,
			Bandwidth: pps * 8 * 1040,
			// Two hosts per side: the ten foreground flows share two 500 Mbps
			// access links (heavy households behind an ISP core), which caps
			// the loss-based foreground at ~1% of the core and keeps the
			// packet-event bill bounded at any horizon.
			Hosts:      2,
			RTTs:       []sim.Duration{60 * sim.Millisecond},
			BufferPkts: int(0.2 * pps), // ~3.3x the modeled equilibrium backlog
		},
		Groups: []scenario.FlowGroupSpec{
			{Label: "fg-" + string(scheme), Scheme: string(scheme), Count: 10,
				From: "left", To: "right", StartWindow: sw},
			{Label: "bg-fluid", Scheme: string(PERT), Count: bg,
				From: "left", To: "right",
				Model: scenario.FluidModel, RTT: 60 * sim.Millisecond},
		},
		Duration: dur, MeasureFrom: from, MeasureUntil: until,
	}
}

// extHybridFluidOnly returns the background aggregate's fluid parameters as
// netem.AttachFluid resolves them for the spec above (its documented
// defaults: Tmin 5 ms, Tmax 105 ms, Pmax 0.1, so L = 1; Delta pins the EWMA
// lag to RTT/6), which is what the equilibrium conformance check compares
// the measured shared queue against.
func extHybridFluidOnly(scale Scale) fluid.PERTParams {
	bg, pps := extHybridFlows(scale)
	return fluid.PERTParams{
		C: pps, N: float64(bg), R: 0.06,
		Tmin: 0.005, Tmax: 0.105, Pmax: 0.1,
		Alpha: 0.99, Delta: (1 - 0.99) * 0.06 / 6,
	}
}

// ExtHybrid is the hybrid fluid/packet showcase: background traffic far past
// packet-simulation scale (10^5 modeled flows at quick, 10^6 at paper) drives
// the bottleneck's shared queue while ~10 real foreground connections — PERT,
// then loss-based Sack — live in the delay and loss that queue imposes. The
// run is serial by construction (the substrate has no cross-domain fluid
// coupling; scenario validation rejects fluid groups at shards > 1), so
// -shards is a no-op here. Each scheme's panel carries an equilibrium
// conformance note: the window-averaged shared queue against the fluid-only
// eq. (9) prediction Tq*·C, which the hybrid must track because ten packet
// flows are a vanishing fraction of the modeled load.
func ExtHybrid(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	bg, pps := extHybridFlows(scale)
	_, _, tqStar := extHybridFluidOnly(scale).Equilibrium()
	qStar := tqStar * pps
	t := &Table{
		ID: "ext-hybrid",
		Title: fmt.Sprintf("Extension: hybrid fluid/packet substrate (%d modeled background flows, 10 packet foreground)",
			bg),
		XLabel: "row",
	}
	for _, scheme := range []Scheme{PERT, SackDroptail} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub, err := RunScenario(extHybridSpec(scale, scheme))
		if err != nil {
			return nil, err
		}
		if t.Header == nil {
			t.Header = append([]string{"scheme"}, sub.Header...)
		}
		for _, row := range sub.Rows {
			t.AddRow(append([]string{string(scheme)}, row...)...)
		}
		if q, ok := hybridQueueCell(sub); ok {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: eq. (9) conformance — shared queue %s pkts vs fluid-only %s pkts (%.1f%% off)",
				scheme, f2(q), f2(qStar), 100*math.Abs(q-qStar)/qStar))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fluid-only equilibrium: W* = RC/N = %.1f, p* = %.4f, Tq* = %.1f ms", 0.06*pps/float64(bg), 2*math.Pow(float64(bg)/(0.06*pps), 2), tqStar*1000),
		// Machine-greppable scale marker for BENCH_quick.json: `make bench`
		// records this run's events/s alongside it.
		fmt.Sprintf("hybrid scale: flows_modeled=%d per panel, core_pps=%.0f", bg, pps),
		"serial by construction: the hybrid substrate has no cross-domain fluid coupling, so -shards is a no-op")
	return t, nil
}

// hybridQueueCell pulls the forward bottleneck's window-averaged shared
// queue (packet + modeled backlog) out of a scenario panel.
func hybridQueueCell(sub *Table) (float64, bool) {
	for _, row := range sub.Rows {
		if len(row) > 1 && row[0] == "link forward" {
			q, err := strconv.ParseFloat(row[1], 64)
			return q, err == nil
		}
	}
	return 0, false
}
