package experiments

import (
	"context"
	"fmt"
	"math"

	"pert/internal/fluid"
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// ExtAQM is an extension experiment beyond the paper: the full AQM
// cross-comparison. Every end-host emulation (PERT/RED, PERT/PI, PERT/REM,
// all over plain DropTail) against every router AQM from the paper's
// citation list (Adaptive RED, PI, REM, AVQ, all with ECN), on the standard
// dumbbell workload. The paper's thesis predicts the end-host column should
// track its router counterpart.
func ExtAQM(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows, webs := 30.0, 12, 25
	if scale == Paper {
		bwMbps, flows, webs = 150, 50, 100
	}
	t := &Table{
		ID:     "ext-aqm",
		Title:  fmt.Sprintf("Extension: end-host AQM emulations vs router AQMs (%g Mbps, %d flows + %d web)", bwMbps, flows, webs),
		Header: []string{"scheme", "kind", "avg_queue_pkts", "delay_p99_ms", "drop_rate", "mark_rate", "utilization", "jain"},
	}
	rows := []struct {
		s    Scheme
		kind string
	}{
		{PERT, "end-host (RED emu)"},
		{SackRED, "router RED"},
		{PERTPI, "end-host (PI emu)"},
		{SackPI, "router PI"},
		{PERTREM, "end-host (REM emu)"},
		{SackREM, "router REM"},
		{SackAVQ, "router AVQ"},
		{SackDroptail, "no AQM"},
	}
	mcfg, metricsOn := MetricsFrom(ctx)
	for i, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := DumbbellSpec{
			Seed:      9000 + int64(i),
			Bandwidth: bwMbps * 1e6,
			RTTs:      []sim.Duration{ms(60)},
			Flows:     flows, WebSessions: webs,
			Duration: dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			Shards: ShardsFrom(ctx, 0),
		}
		var closeSeries func() error
		if metricsOn {
			ms, closeFn, err := mcfg.open("ext-aqm", string(row.s))
			if err != nil {
				return nil, err
			}
			spec.Metrics, closeSeries = ms, closeFn
		}
		r := RunDumbbell(spec, row.s)
		if closeSeries != nil {
			if err := closeSeries(); err != nil {
				return nil, err
			}
		}
		t.AddRow(string(row.s), row.kind, f2(r.AvgQueue), f2(r.DelayP99*1000),
			sci(r.DropRate), sci(r.MarkRate), f3(r.Utilization), f3(r.Jain))
	}
	t.Notes = append(t.Notes, "extension beyond the paper: REM and AVQ complete its cited AQM list")
	return t, nil
}

// ExtJitter probes the robustness question behind the paper's Section 2:
// the trace studies [21],[26] argued delay noise makes end-host prediction
// unreliable. Uniform per-packet delay jitter is injected on every access
// link and PERT is compared with Sack/Droptail across jitter magnitudes — if
// the srtt_0.99 smoothing does its job, PERT's queue/loss advantage must
// survive noise comparable to its own thresholds (5-10 ms).
func ExtJitter(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 12
	if scale == Paper {
		bwMbps, flows = 150, 50
	}
	t := &Table{
		ID:     "ext-jitter",
		Title:  fmt.Sprintf("Extension: robustness to access-link delay jitter (%g Mbps, %d flows)", bwMbps, flows),
		Header: []string{"jitter_ms", "scheme", "avg_queue_pkts", "drop_rate", "utilization", "jain"},
	}
	for i, jMs := range []float64{0, 2, 5, 10} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := DumbbellSpec{
			Seed:      9200 + int64(i),
			Bandwidth: bwMbps * 1e6,
			RTTs:      []sim.Duration{ms(60)},
			Flows:     flows,
			Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
			AccessJitter: ms(jMs),
			// The RunDumbbellWith row below ignores Shards (custom
			// controllers always run serial); the registered schemes shard.
			Shards: ShardsFrom(ctx, 0),
		}
		for _, s := range []Scheme{PERT, SackDroptail} {
			r := RunDumbbell(spec, s)
			t.AddRow(fmt.Sprintf("%g", jMs), string(s), f2(r.AvgQueue),
				sci(r.DropRate), f3(r.Utilization), f3(r.Jain))
		}
		// The remedy the paper's future work points at: thresholds scaled
		// above the noise floor (here 4x: 20/40 ms).
		wide := DefaultVariant("wide-thresh")
		wide.Curve.Tmin, wide.Curve.Tmax = ms(20), ms(40)
		rw := RunDumbbellWith(spec, wide.CC())
		t.AddRow(fmt.Sprintf("%g", jMs), "PERT[20/40ms]", f2(rw.AvgQueue),
			sci(rw.DropRate), f3(rw.Utilization), f3(rw.Jain))
	}
	t.Notes = append(t.Notes,
		"jitter is uniform per packet on all four access links of each path (order-preserving)",
		"fixed 5/10 ms thresholds starve once noise reaches their scale — the [21]/[26] critique;",
		"thresholds above the noise floor restore PERT's behaviour at the cost of a longer queue")
	return t, nil
}

// ExtDelayCC compares the full lineage of delay-based congestion avoidance
// the paper's Section 2 surveys — CARD (1989), DUAL (1992), Vegas (1994) —
// against PERT, all as complete congestion controllers over the same
// DropTail bottleneck. The paper evaluates these schemes only as predictors
// (Figure 3); this extension closes the loop and shows how prediction
// quality translates into queue/loss/fairness behaviour.
func ExtDelayCC(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bwMbps, flows := 30.0, 12
	if scale == Paper {
		bwMbps, flows = 150, 50
	}
	t := &Table{
		ID:     "ext-delaycc",
		Title:  fmt.Sprintf("Extension: delay-based congestion-avoidance lineage (%g Mbps, %d flows)", bwMbps, flows),
		Header: []string{"scheme", "year", "avg_queue_pkts", "delay_p99_ms", "drop_rate", "utilization", "jain"},
	}
	spec := func(seed int64) DumbbellSpec {
		return DumbbellSpec{
			Seed:      seed,
			Bandwidth: bwMbps * 1e6,
			RTTs:      []sim.Duration{ms(60)},
			Flows:     flows,
			Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
		}
	}
	rows := []struct {
		name string
		year string
		cc   func() tcp.CongestionControl
	}{
		{"CARD", "1989", func() tcp.CongestionControl { return tcp.NewCARD() }},
		{"DUAL", "1992", func() tcp.CongestionControl { return tcp.NewDUAL() }},
		{"Vegas", "1994", func() tcp.CongestionControl { return tcp.NewVegas() }},
		{"PERT", "2007", func() tcp.CongestionControl { return tcp.NewPERTRed() }},
		{"Sack (loss-based)", "-", func() tcp.CongestionControl { return tcp.Reno{} }},
	}
	for i, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := RunDumbbellWith(spec(9300+int64(i)), row.cc)
		t.AddRow(row.name, row.year, f2(r.AvgQueue), f2(r.DelayP99*1000),
			sci(r.DropRate), f3(r.Utilization), f3(r.Jain))
	}
	t.Notes = append(t.Notes, "all schemes over plain DropTail; homogeneous populations (no co-existence)")
	return t, nil
}

// ExtHighSpeed tests the paper's footnote 1: PERT's early response is argued
// to compose with any loss-based probing, including aggressive high-speed
// variants. On a large-BDP dumbbell, HighSpeed TCP (RFC 3649) runs bare and
// with PERT layered on top of its growth engine.
func ExtHighSpeed(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	dur, from, until, sw := scale.window()
	bw, rtt, flows := 100e6, ms(100), 4
	if scale == Paper {
		bw = 622e6 // OC-12, the classic HSTCP setting
	}
	t := &Table{
		ID:     "ext-highspeed",
		Title:  fmt.Sprintf("Extension: PERT over aggressive probing (footnote 1; %g Mbps x %v)", bw/1e6, "100ms"),
		Header: []string{"scheme", "avg_queue_pkts", "delay_p99_ms", "drop_rate", "utilization", "jain"},
	}
	rows := []struct {
		name string
		cc   func() tcp.CongestionControl
	}{
		{"HSTCP", func() tcp.CongestionControl { return tcp.NewHSTCP() }},
		{"PERT over HSTCP", func() tcp.CongestionControl { return &tcp.PERT{Base: tcp.NewHSTCP()} }},
		{"Reno", func() tcp.CongestionControl { return tcp.Reno{} }},
		{"PERT over Reno", func() tcp.CongestionControl { return tcp.NewPERTRed() }},
	}
	for i, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := RunDumbbellWith(DumbbellSpec{
			Seed:      9400 + int64(i),
			Bandwidth: bw,
			RTTs:      []sim.Duration{rtt},
			Flows:     flows,
			Duration:  dur, MeasureFrom: from, MeasureUntil: until, StartWindow: sw,
		}, row.cc)
		t.AddRow(row.name, f2(r.AvgQueue), f2(r.DelayP99*1000), sci(r.DropRate),
			f3(r.Utilization), f3(r.Jain))
	}
	t.Notes = append(t.Notes, "footnote 1: the early-response argument holds for any loss-based probing")
	return t, nil
}

// ExtValidation cross-validates the packet-level simulator against the
// Section 5 fluid model: N identical PERT flows on a dumbbell sized so the
// fluid equilibrium (9) predicts the stationary window W* = RC/N and the
// queueing delay Tq* = Tmin + p*/L; the packet simulation's time-averaged
// cwnd and srtt-derived queueing delay are compared against the prediction.
func ExtValidation(ctx context.Context, scale Scale) (*Table, error) {
	if err := checkRun(ctx, scale); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext-validation",
		Title:  "Extension: packet-level simulation vs fluid-model equilibrium (eq. 9)",
		Header: []string{"flows", "W*_fluid", "W_sim", "W_err_%", "Tq*_fluid_ms", "Tq_sim_ms"},
	}
	dur := seconds(60)
	measureFrom := seconds(20)
	if scale == Paper {
		dur, measureFrom = seconds(300), seconds(100)
	}
	for _, n := range []int{4, 8, 16} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bw := 20e6
		rtt := 60 * sim.Millisecond
		pps := bw / (8 * 1040)

		eng := sim.NewEngine(9100 + int64(n))
		net := netem.NewNetwork(eng)
		d := topo.NewDumbbell(net, topo.DumbbellConfig{
			Bandwidth: bw, Delay: rtt / 3, Hosts: n, RTTs: []sim.Duration{rtt},
			BufferPkts: 4 * topo.BDPPackets(bw, rtt, 1040), // deep buffer: losses negligible
			Queue: func(limit int, _ float64) netem.Discipline {
				return queue.NewDropTail(limit)
			},
		})
		ids := trafficgen.NewIDs()
		var flows []*tcp.Flow
		for i := 0; i < n; i++ {
			f := tcp.NewFlow(net, d.Left[i], d.Right[i], ids.Next(), tcp.NewPERTRed(), tcp.Config{})
			f.Start(trafficgen.Uniform(eng.Rand(), seconds(2)))
			flows = append(flows, f)
		}

		eng.Run(sim.Time(measureFrom))
		var wSum, tqSum float64
		var samples int
		eng.Every(eng.Now(), 50*sim.Millisecond, func(sim.Time) {
			for _, f := range flows {
				wSum += f.Conn.Cwnd()
			}
			tqSum += float64(d.Forward.Queue.Len()) / pps // seconds of queueing
			samples++
		})
		eng.Run(sim.Time(dur))

		wSim := wSum / float64(samples) / float64(n)
		tqSim := tqSum / float64(samples)

		p := fluid.PERTParams{
			C: pps, N: float64(n), R: rtt.Seconds() + tqSim,
			Tmin: 0.005, Tmax: 0.010, Pmax: 0.05, Alpha: 0.99,
			Delta: float64(n) / pps,
		}
		wStar, _, tqStar := p.Equilibrium()
		errPct := 100 * math.Abs(wSim-wStar) / wStar
		t.AddRow(fmt.Sprint(n), f2(wStar), f2(wSim), f2(errPct),
			f2(tqStar*1000), f2(tqSim*1000))
	}
	t.Notes = append(t.Notes,
		"W* = RC/N with R = propagation + measured queueing delay",
		"Tq* = Tmin + p*/L from the linear response region (eq. 9)")
	return t, nil
}
