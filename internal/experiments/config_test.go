package experiments

import (
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestLoadScenario(t *testing.T) {
	in := `{
		"scheme": "PERT",
		"seed": 7,
		"bandwidth_bps": 30e6,
		"rtts": ["60ms", "100ms"],
		"flows": 8,
		"web_sessions": 5,
		"duration": "40s",
		"measure_from": "10s",
		"access_jitter": "2ms"
	}`
	spec, scheme, err := LoadScenario(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if scheme != PERT {
		t.Fatalf("scheme = %v", scheme)
	}
	if spec.Bandwidth != 30e6 || spec.Flows != 8 || spec.WebSessions != 5 {
		t.Fatalf("spec = %+v", spec)
	}
	if len(spec.RTTs) != 2 || spec.RTTs[0] != 60*sim.Millisecond || spec.RTTs[1] != 100*sim.Millisecond {
		t.Fatalf("rtts = %v", spec.RTTs)
	}
	if spec.Duration != seconds(40) || spec.MeasureFrom != seconds(10) || spec.MeasureUntil != seconds(40) {
		t.Fatalf("window = %v %v %v", spec.Duration, spec.MeasureFrom, spec.MeasureUntil)
	}
	if spec.AccessJitter != ms(2) {
		t.Fatalf("jitter = %v", spec.AccessJitter)
	}
	if spec.StartWindow != seconds(5) { // default measure_from/2
		t.Fatalf("start window = %v", spec.StartWindow)
	}
}

func TestLoadScenarioDefaults(t *testing.T) {
	spec, scheme, err := LoadScenario(strings.NewReader(`{"bandwidth_bps": 1e6, "flows": 1, "duration": "10s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if scheme != PERT {
		t.Fatalf("default scheme = %v", scheme)
	}
	if len(spec.RTTs) != 1 || spec.RTTs[0] != 60*sim.Millisecond {
		t.Fatalf("default rtts = %v", spec.RTTs)
	}
	if spec.MeasureFrom != spec.Duration/4 {
		t.Fatalf("default measure_from = %v", spec.MeasureFrom)
	}
}

func TestLoadScenarioRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":                       `nope`,
		"unknown field":                 `{"bandwidth_bps":1e6,"flows":1,"duration":"1s","bogus":1}`,
		"no bandwidth":                  `{"flows":1,"duration":"10s"}`,
		"no traffic":                    `{"bandwidth_bps":1e6,"duration":"10s"}`,
		"no duration":                   `{"bandwidth_bps":1e6,"flows":1}`,
		"bad rtt":                       `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","rtts":["abc"]}`,
		"bad jitter":                    `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","access_jitter":"xyz"}`,
		"negative duration":             `{"bandwidth_bps":1e6,"flows":1,"duration":"-5s"}`,
		"negative jitter":               `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","access_jitter":"-2ms"}`,
		"negative start window":         `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","start_window":"-1s"}`,
		"measure_from at end":           `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","measure_from":"10s"}`,
		"bad target_delay":              `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","target_delay":"-3ms"}`,
		"unknown scheme":                `{"scheme":"TURBO","bandwidth_bps":1e6,"flows":1,"duration":"10s"}`,
		"loss_rate >= 1":                `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","loss_rate":1.0}`,
		"negative dup_rate":             `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","dup_rate":-0.1}`,
		"reorder_rate >= 1":             `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","reorder_rate":2}`,
		"bad reorder_extra":             `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","reorder_extra":"-1ms"}`,
		"measure_until beyond duration": `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","measure_until":"12s"}`,
		"measure_until before from":     `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","measure_from":"5s","measure_until":"4s"}`,
		"schedule beyond duration":      `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"11s","capacity_bps":5e5}]}`,
		"schedule negative capacity":    `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"5s","capacity_bps":-1}]}`,
		"schedule down and up":          `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"5s","down":true,"up":true}]}`,
		"schedule bad time":             `{"bandwidth_bps":1e6,"flows":1,"duration":"10s","schedule":[{"at":"wat"}]}`,
	}
	for name, in := range cases {
		if _, _, err := LoadScenario(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadScenarioFaultFields(t *testing.T) {
	spec, _, err := LoadScenario(strings.NewReader(`{
		"bandwidth_bps": 1e6, "flows": 1, "duration": "10s",
		"loss_rate": 0.01, "dup_rate": 0.002, "reorder_rate": 0.005,
		"reorder_extra": "3ms"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.LossRate != 0.01 || spec.DupRate != 0.002 || spec.ReorderRate != 0.005 {
		t.Fatalf("fault rates = %+v", spec)
	}
	if spec.ReorderExtra != ms(3) {
		t.Fatalf("reorder_extra = %v", spec.ReorderExtra)
	}
}

func TestLoadScenarioMeasureUntilAndSchedule(t *testing.T) {
	spec, _, err := LoadScenario(strings.NewReader(`{
		"bandwidth_bps": 1e6, "flows": 1, "duration": "20s",
		"measure_from": "5s", "measure_until": "15s",
		"schedule": [
			{"at": "8s", "capacity_bps": 5e5, "delay": "10ms"},
			{"at": "12s", "down": true},
			{"at": "14s", "up": true}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.MeasureUntil != seconds(15) {
		t.Fatalf("measure_until = %v", spec.MeasureUntil)
	}
	if len(spec.Schedule) != 3 {
		t.Fatalf("schedule = %+v", spec.Schedule)
	}
	if spec.Schedule[0].Capacity != 5e5 || spec.Schedule[0].Delay != ms(10) {
		t.Fatalf("change 0 = %+v", spec.Schedule[0])
	}
	if !spec.Schedule[1].Down || !spec.Schedule[2].Up {
		t.Fatalf("flaps = %+v", spec.Schedule[1:])
	}
}

func TestLoadScenarioRuns(t *testing.T) {
	spec, scheme, err := LoadScenario(strings.NewReader(
		`{"scheme":"Vegas","bandwidth_bps":10e6,"flows":2,"duration":"8s","measure_from":"2s"}`))
	if err != nil {
		t.Fatal(err)
	}
	r := RunDumbbell(spec, scheme)
	if r.Utilization <= 0.3 {
		t.Fatalf("config-driven run idle: %+v", r)
	}
}

func TestRunReplicated(t *testing.T) {
	spec := quickSpec(100)
	spec.Duration = seconds(15)
	spec.MeasureFrom = seconds(5)
	spec.MeasureUntil = seconds(15)
	res := RunReplicated(spec, PERT, 4)
	if res.Utilization.N != 4 {
		t.Fatalf("n = %d", res.Utilization.N)
	}
	if res.Utilization.Mean < 0.5 || res.Utilization.Mean > 1.01 {
		t.Fatalf("mean util = %v", res.Utilization.Mean)
	}
	if res.Utilization.CI95 < 0 {
		t.Fatalf("ci = %v", res.Utilization.CI95)
	}
	// Different seeds must actually differ (std > 0) for a stochastic
	// scenario with web-less but staggered flows... start times are drawn
	// from the seeded RNG, so some variance is expected.
	if res.AvgQueue.Std == 0 && res.Jain.Std == 0 && res.Utilization.Std == 0 {
		t.Fatal("replicas identical across seeds")
	}
}

func TestRunReplicatedValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	RunReplicated(quickSpec(1), PERT, 0)
}
