// Package experiments maps every table and figure of the paper's evaluation
// to runnable code: scenario construction, parameter sweeps, measurement
// windows, and paper-style result tables. Each experiment runs at either
// "quick" scale (reduced bandwidth/duration with dimensionless quantities —
// buffer in BDPs, measurement window in RTTs — preserved, suitable for
// go test -bench) or "paper" scale (the paper's exact parameters).
package experiments

import (
	"pert/internal/netem"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// Scheme is one end-to-end congestion-control + queue-management combination
// from the paper's comparison set. The definitions live in the scenario
// package's scheme registry (internal/scenario); this type is the
// experiment-side handle for them.
type Scheme string

// The paper's comparison set (Section 4) plus the Section 6 PI pair, and —
// beyond the paper — the remaining AQMs from its citation list (REM [2],
// AVQ [19]) as router baselines and REM as an end-host emulation.
const (
	PERT         Scheme = "PERT"          // PERT over DropTail
	SackDroptail Scheme = "Sack/Droptail" // SACK over DropTail
	SackRED      Scheme = "Sack/RED-ECN"  // ECN-enabled SACK over Adaptive RED
	Vegas        Scheme = "Vegas"         // Vegas over DropTail
	PERTPI       Scheme = "PERT-PI"       // PERT emulating PI, over DropTail
	SackPI       Scheme = "Sack/PI-ECN"   // ECN-enabled SACK over router PI
	PERTREM      Scheme = "PERT-REM"      // PERT emulating REM, over DropTail
	SackREM      Scheme = "Sack/REM-ECN"  // ECN-enabled SACK over router REM
	SackAVQ      Scheme = "Sack/AVQ-ECN"  // ECN-enabled SACK over router AVQ
)

// AllSection4Schemes is the comparison set used in Figures 6-9, 11, 12 and
// Table 1, in the registry's presentation order.
var AllSection4Schemes = toSchemes(scenario.Section4Names())

// AllSchemes is every registered scheme, in presentation order. Schemes
// registered by other packages (scenario.Register) appear here too.
var AllSchemes = toSchemes(scenario.Names())

// toSchemes converts registry names to experiment-side handles.
func toSchemes(names []string) []Scheme {
	out := make([]Scheme, len(names))
	for i, n := range names {
		out[i] = Scheme(n)
	}
	return out
}

// Known reports whether s names a registered scheme; callers should check it
// (or use scenario.Lookup for an error) before handing s to scenario
// builders, which panic on unknown schemes.
func (s Scheme) Known() bool {
	return scenario.Known(string(s))
}

// def resolves the registered definition; unknown schemes panic, so callers
// on error paths must gate on Known first.
func (s Scheme) def() scenario.SchemeDef {
	return scenario.MustLookup(string(s))
}

// schemeEnv captures what a scheme needs from the scenario to build its
// pieces: link capacity in packets/second, a flow-count bound, and an RTT
// bound (for PI design rules). It mirrors scenario.Env for the experiment
// bodies that still assemble environments by hand.
type schemeEnv struct {
	capacityPPS float64
	nFlows      int
	maxRTT      sim.Duration
	targetDelay sim.Duration // PI reference; default 3 ms per Section 6.1
}

// env converts to the registry's environment type.
func (e schemeEnv) env() scenario.Env {
	return scenario.Env{
		CapacityPPS: e.capacityPPS,
		NFlows:      e.nFlows,
		MaxRTT:      e.maxRTT,
		TargetDelay: e.targetDelay,
	}
}

// queueFor returns the bottleneck queue factory for the scheme.
func (s Scheme) queueFor(net *netem.Network, env schemeEnv) topo.QueueFactory {
	return s.def().Queue(net, env.env())
}

// ccFor returns a congestion-controller factory for the scheme.
func (s Scheme) ccFor(net *netem.Network, env schemeEnv) func() tcp.CongestionControl {
	return s.def().CC(net, env.env())
}

// ecn reports whether endpoints negotiate ECN under this scheme.
func (s Scheme) ecn() bool {
	return s.def().ECN
}

// webCC picks the controller for web transfers: the paper's background web
// traffic is standard TCP except under schemes every end host runs (the
// all-PERT and all-Vegas scenarios), per the registry's ProactiveWeb flag.
func webCC(s Scheme, ccf func() tcp.CongestionControl) func() tcp.CongestionControl {
	if s.def().ProactiveWeb {
		return ccf
	}
	return func() tcp.CongestionControl { return tcp.Reno{} }
}
