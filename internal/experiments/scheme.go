// Package experiments maps every table and figure of the paper's evaluation
// to runnable code: scenario construction, parameter sweeps, measurement
// windows, and paper-style result tables. Each experiment runs at either
// "quick" scale (reduced bandwidth/duration with dimensionless quantities —
// buffer in BDPs, measurement window in RTTs — preserved, suitable for
// go test -bench) or "paper" scale (the paper's exact parameters).
package experiments

import (
	"fmt"

	"pert/internal/core"
	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
)

// Scheme is one end-to-end congestion-control + queue-management combination
// from the paper's comparison set.
type Scheme string

// The paper's comparison set (Section 4) plus the Section 6 PI pair, and —
// beyond the paper — the remaining AQMs from its citation list (REM [2],
// AVQ [19]) as router baselines and REM as an end-host emulation.
const (
	PERT         Scheme = "PERT"          // PERT over DropTail
	SackDroptail Scheme = "Sack/Droptail" // SACK over DropTail
	SackRED      Scheme = "Sack/RED-ECN"  // ECN-enabled SACK over Adaptive RED
	Vegas        Scheme = "Vegas"         // Vegas over DropTail
	PERTPI       Scheme = "PERT-PI"       // PERT emulating PI, over DropTail
	SackPI       Scheme = "Sack/PI-ECN"   // ECN-enabled SACK over router PI
	PERTREM      Scheme = "PERT-REM"      // PERT emulating REM, over DropTail
	SackREM      Scheme = "Sack/REM-ECN"  // ECN-enabled SACK over router REM
	SackAVQ      Scheme = "Sack/AVQ-ECN"  // ECN-enabled SACK over router AVQ
)

// AllSection4Schemes is the comparison set used in Figures 6-9, 11, 12 and
// Table 1.
var AllSection4Schemes = []Scheme{PERT, SackDroptail, SackRED, Vegas}

// AllSchemes is every scheme this package can run.
var AllSchemes = []Scheme{PERT, SackDroptail, SackRED, Vegas, PERTPI, SackPI, PERTREM, SackREM, SackAVQ}

// Known reports whether s names a runnable scheme; callers should check it
// before handing s to scenario builders, which panic on unknown schemes.
func (s Scheme) Known() bool {
	for _, k := range AllSchemes {
		if s == k {
			return true
		}
	}
	return false
}

// schemeEnv captures what a scheme needs from the scenario to build its
// pieces: link capacity in packets/second, a flow-count bound, and an RTT
// bound (for PI design rules).
type schemeEnv struct {
	capacityPPS float64
	nFlows      int
	maxRTT      sim.Duration
	targetDelay sim.Duration // PI reference; default 3 ms per Section 6.1
}

func (e schemeEnv) target() sim.Duration {
	if e.targetDelay == 0 {
		return 3 * sim.Millisecond
	}
	return e.targetDelay
}

// queueFor returns the bottleneck queue factory for the scheme.
func (s Scheme) queueFor(net *netem.Network, env schemeEnv) topo.QueueFactory {
	switch s {
	case PERT, SackDroptail, Vegas, PERTPI, PERTREM:
		return func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		}
	case SackREM:
		return func(limit int, pps float64) netem.Discipline {
			return queue.NewREM(limit, pps, true, net.Engine().Rand())
		}
	case SackAVQ:
		return func(limit int, pps float64) netem.Discipline {
			return queue.NewAVQ(limit, pps, true, net.Engine().Rand())
		}
	case SackRED:
		return func(limit int, pps float64) netem.Discipline {
			return queue.NewAdaptiveRED(queue.AdaptiveREDConfig{
				Limit:       limit,
				CapacityPPS: pps,
				ECN:         true,
			}, net.Engine().Rand())
		}
	case SackPI:
		return func(limit int, pps float64) netem.Discipline {
			n := env.nFlows
			if n < 1 {
				n = 1
			}
			rmax := 2 * env.maxRTT
			gains := queue.DesignPI(pps, n, rmax, 170)
			qref := env.target().Seconds() * pps
			return queue.NewPI(limit, qref, gains, true, net.Engine().Rand())
		}
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", s))
	}
}

// ccFor returns a congestion-controller factory for the scheme.
func (s Scheme) ccFor(net *netem.Network, env schemeEnv) func() tcp.CongestionControl {
	switch s {
	case PERT:
		return func() tcp.CongestionControl { return tcp.NewPERTRed() }
	case PERTREM:
		return func() tcp.CongestionControl {
			return tcp.NewPERTLazy(func(c *tcp.Conn) core.Responder {
				return core.NewREMResponder(c.Engine().Rand(), 0, 0, env.target())
			})
		}
	case SackDroptail, SackRED, SackPI, SackREM, SackAVQ:
		return func() tcp.CongestionControl { return tcp.Reno{} }
	case Vegas:
		return func() tcp.CongestionControl { return tcp.NewVegas() }
	case PERTPI:
		return func() tcp.CongestionControl {
			n := env.nFlows
			if n < 1 {
				n = 1
			}
			params := core.DesignPERTPI(env.capacityPPS, n, 2*env.maxRTT)
			// Mean per-flow sampling interval: N packets share C pkt/s.
			delta := sim.Seconds(float64(n) / env.capacityPPS)
			r := core.NewPIResponder(net.Engine().Rand(), params, delta, env.target())
			return tcp.NewPERTWith(r)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", s))
	}
}

// ecn reports whether endpoints negotiate ECN under this scheme.
func (s Scheme) ecn() bool {
	switch s {
	case SackRED, SackPI, SackREM, SackAVQ:
		return true
	default:
		return false
	}
}
