package experiments

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/trafficgen"
)

// runScenarioSharded is RunScenario's parallel path: it cuts the topology
// into spec.EffectiveShards() domains along the template's partition hint and
// runs them under conservative-lookahead synchronization (sim.ShardGroup).
// The run is windowed exactly like the serial path — group runs to the
// measurement start, to the window end, and to the duration — and all
// instrumentation is created and read on the caller's goroutine at those
// quiescent points, so the assembled table needs no locking.
//
// Three things differ from the serial path, all forced by concurrency:
//
//   - auditing is per domain (StartDomainAudit), each ticking on its own
//     shard's engine; the whole-network conservation equation is checked once
//     by Audit() after the group stops. Domain 0's auditor consumes the same
//     engine-0 event sequence a serial StartAudit would, so a group of one
//     shard reproduces the serial table byte for byte.
//   - queue monitors attach to the engine owning each measured link
//     (link.From's domain), never to engine 0.
//   - the table notes record the shard count and per-shard event totals, the
//     load-balance evidence the benchmark reads.
func runScenarioSharded(spec scenario.Spec) (*Table, error) {
	shards := spec.EffectiveShards()
	g := sim.NewShardGroup(shards, spec.Seed)
	net := netem.NewNetwork(g.Engine(0))
	inst, err := scenario.Compile(g.Engine(0), net, spec)
	if err != nil {
		return nil, err
	}
	if err := net.Partition(g, inst.Topo.PartitionHint(shards)); err != nil {
		return nil, err
	}

	name := spec.Name
	if name == "" {
		name = "scenario"
	}
	measured := inst.Topo.Measured()

	auds := make([]*netem.Auditor, net.Domains())
	for d := range auds {
		auds[d] = netem.StartDomainAudit(net, d, netem.AuditConfig{
			Seed:     spec.Seed,
			Scenario: fmt.Sprintf("scenario %s template=%s groups=%d", name, spec.Topology.Template, len(spec.Groups)),
		})
	}
	for _, ml := range measured {
		aud := auds[ml.Link.From.Domain()]
		aud.Watch(ml.Link)
		aud.BoundQueue(ml.Link, inst.Topo.BufferPkts())
	}

	inst.Spawn()

	until := spec.MeasureUntil
	if until == 0 {
		until = spec.Duration
	}
	g.Run(sim.Time(spec.MeasureFrom))
	now := g.Engine(0).Now()
	meters := make([]*stats.Meter, len(measured))
	qmons := make([]*stats.QueueMonitor, len(measured))
	for i, ml := range measured {
		meters[i] = stats.NewMeter(ml.Link)
		meters[i].Start(now)
		// The monitor's sampling events must run on the engine that owns
		// the link, or they would race with the owning shard.
		qmons[i] = stats.MonitorQueue(ml.Link.From.Engine(), ml.Link, now, 10*sim.Millisecond)
	}
	snaps := make([][]uint64, len(inst.Groups))
	for i, grp := range inst.Groups {
		snaps[i] = trafficgen.GoodputSnapshot(grp.Flows)
	}

	g.Run(sim.Time(until))
	now = g.Engine(0).Now()
	t := &Table{
		ID:    name,
		Title: fmt.Sprintf("Scenario %s (%s, %d groups, buffer %d pkts)", name, spec.Topology.Template, len(spec.Groups), inst.Topo.BufferPkts()),
		Header: []string{"row", "avg_queue_pkts", "drop_rate", "mark_rate", "utilization",
			"goodput_share_per_flow", "jain"},
	}
	window := (until - spec.MeasureFrom).Seconds()
	pkt := spec.Topology.PktSize
	if pkt == 0 {
		pkt = 1040
	}
	capacityBytes := inst.Topo.CapacityPPS() * float64(pkt) * window
	for i, ml := range measured {
		t.AddRow("link "+ml.Name, f2(qmons[i].Series.Mean()), sci(meters[i].DropRate()),
			sci(meters[i].MarkRate()), f3(meters[i].Utilization(now)), "-", "-")
		qmons[i].Stop()
	}
	for i, grp := range inst.Groups {
		label := "group " + grp.Label()
		if len(grp.Flows) > 0 {
			goodputs := trafficgen.Goodputs(grp.Flows, snaps[i])
			var sum float64
			for _, b := range goodputs {
				sum += b
			}
			share := sum / capacityBytes / float64(len(grp.Flows))
			t.AddRow(label, "-", "-", "-", "-", f3(share), f3(stats.Jain(goodputs)))
		} else if len(grp.Webs) > 0 {
			// Session counters are owned by each session's shard; reading
			// them here is safe because the group is quiescent between Run
			// windows.
			var pages, objects uint64
			for _, w := range grp.Webs {
				pages += w.Pages
				objects += w.Objects
			}
			t.AddRow(label, "-", "-", "-", "-",
				fmt.Sprintf("%d pages", pages), fmt.Sprintf("%d objects", objects))
		}
	}
	g.Run(sim.Time(spec.Duration))
	for _, aud := range auds {
		aud.Stop()
	}
	// The group has stopped: the summed cross-domain ledger must balance.
	if err := net.Audit(); err != nil {
		return nil, fmt.Errorf("scenario %s shards=%d: %w", name, shards, err)
	}
	t.Notes = append(t.Notes,
		"goodput_share_per_flow = mean per-flow goodput as a fraction of core capacity over the window",
		fmt.Sprintf("shards=%d events_per_shard=%v", shards, g.EventCounts()))
	if _, clamped, max := spec.ShardClamp(); clamped {
		t.Notes = append(t.Notes,
			fmt.Sprintf("requested shards=%d clamped to the topology maximum %d", spec.Shards, max))
	}
	return t, nil
}
