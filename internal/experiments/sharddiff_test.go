package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pert/internal/scenario"
)

// The serial↔sharded differential suite. Every registered experiment falls in
// one of two contract classes:
//
//   - byteIdentical: the experiment never engages the sharded engine (analytic
//     tables, custom-instrumented studies, hand-built engines, custom CC
//     factories). A -shards request must be a perfect no-op: the tables match
//     the serial run byte for byte, notes included.
//   - deterministicPerN: the experiment runs on the sharded engine when
//     -shards > 1. Results may legitimately differ from the serial run (domain
//     engines draw from per-shard RNG streams), but at a fixed shard count
//     repeated runs must produce identical tables — rows, notes, and per-shard
//     event counts.
//
// A third guarantee holds for both classes: -shards 1 is the serial engine
// (sharding engages only above one shard), so a shards=1 run must match the
// default run byte for byte. ext-parkinglot-xl is the one exception — its
// default is shards=8, so shards=1 is a different (serial) run.
//
// The fast subset below runs on every `go test`; `make shard-diff` (and the CI
// shard-smoke job) sets PERT_SHARDDIFF=full to sweep all experiments at
// shards ∈ {2, 4} with three repetitions each.
type shardDiffClass int

const (
	byteIdentical shardDiffClass = iota
	deterministicPerN
)

// shardDiffExpectations must cover every registry ID — the exhaustiveness
// test below fails when an experiment is added without classifying it.
var shardDiffExpectations = map[string]shardDiffClass{
	"fig2":              byteIdentical, // Section 2 loss study, hand-built engine
	"fig3":              byteIdentical, // predictor comparison, hand-built engine
	"fig4":              byteIdentical, // false-positive PDF, hand-built engine
	"fig5":              byteIdentical, // analytic response curve
	"fig6":              deterministicPerN,
	"fig7":              deterministicPerN,
	"fig8":              deterministicPerN,
	"fig9":              deterministicPerN, // web traffic crosses the cut
	"fig11":             byteIdentical,     // hand-built parking-lot engines
	"fig12":             byteIdentical,     // per-interval instrumentation forces serial
	"fig13":             byteIdentical,     // fluid model, no packet engine
	"fig14":             deterministicPerN, // PERT-PI + router PI sharded
	"ext-aqm":           deterministicPerN, // RED/PI/REM/AVQ marking RNG rebound per domain
	"ext-coexist":       byteIdentical,     // hand-built engine
	"ext-delaycc":       byteIdentical,     // custom CC factories run serial
	"ext-fct":           byteIdentical,     // hand-built engine
	"ext-flap":          deterministicPerN, // capacity changes + flaps on the boundary link
	"ext-highspeed":     byteIdentical,     // custom CC factories run serial
	"ext-hybrid":        byteIdentical,     // fluid substrate is serial-only; spec never sets shards
	"ext-jitter":        deterministicPerN, // registered-scheme rows shard; custom rows serial
	"ext-lossy":         deterministicPerN, // wire-loss impairment on the boundary link
	"ext-parkinglot-xl": deterministicPerN, // scenario path, shards by default
	"ext-replicated":    deterministicPerN,
	"ext-stability":     byteIdentical, // certified boundaries, no packet engine
	"ext-threshold":     byteIdentical, // custom CC variants run serial
	"ext-validation":    byteIdentical, // hand-built engine vs fluid model
	"table1":            deterministicPerN,
}

// shardDiffQuickSet is the representative subset the default test run covers:
// one member per newly shard-safe feature (router AQMs, web traffic, link
// schedules, impairments, the scenario path) plus one member of the
// byte-identical class from each serial-fallback reason.
var shardDiffQuickSet = map[string]bool{
	"table1":            true, // web sessions + heterogeneous RTTs across the cut
	"ext-flap":          true, // boundary-link capacity halving and up/down flaps
	"ext-parkinglot-xl": true, // scenario runner, 8 bottlenecks, AQM option
	"fig5":              true, // analytic byte-identity representative
	"ext-delaycc":       true, // custom-CC serial-fallback representative
}

func shardDiffFull() bool { return os.Getenv("PERT_SHARDDIFF") == "full" }

// runForDiff executes one experiment and fingerprints its complete output:
// every table's identity, header, rows, and notes.
func runForDiff(t *testing.T, id string, shards int) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	ctx := context.Background()
	if shards > 0 {
		ctx = WithShards(ctx, shards)
	}
	tabs, err := e.Run(ctx, Quick)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", id, shards, err)
	}
	type tp struct {
		ID     string
		Header []string
		Rows   [][]string
		Notes  []string
	}
	out := make([]tp, len(tabs))
	for i, tab := range tabs {
		out[i] = tp{tab.ID, tab.Header, tab.Rows, tab.Notes}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardDiffExpectationsExhaustive pins the expectation table to the
// registry: every experiment is classified, no stale entries linger, and the
// quick subset names real experiments.
func TestShardDiffExpectationsExhaustive(t *testing.T) {
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
		if _, ok := shardDiffExpectations[id]; !ok {
			t.Errorf("experiment %q has no shard-diff expectation; classify it", id)
		}
	}
	for id := range shardDiffExpectations {
		if !ids[id] {
			t.Errorf("shard-diff expectation for unknown experiment %q", id)
		}
	}
	for id := range shardDiffQuickSet {
		if !ids[id] {
			t.Errorf("quick subset names unknown experiment %q", id)
		}
	}
}

// TestShardDiff is the differential harness. For each covered experiment it
// runs the serial baseline, checks the shards=1 no-op, and then checks the
// class contract at shards=2 (and shards=4 with 3 reps under PERT_SHARDDIFF=full).
func TestShardDiff(t *testing.T) {
	full := shardDiffFull()
	shardCounts := []int{2}
	reps := 2
	if full {
		shardCounts = []int{2, 4}
		reps = 3
	}
	for _, id := range IDs() {
		if !full && !shardDiffQuickSet[id] {
			continue
		}
		id := id
		class := shardDiffExpectations[id]
		t.Run(id, func(t *testing.T) {
			serial := runForDiff(t, id, 0)
			// shards=1 is the serial engine; only ext-parkinglot-xl defaults
			// to a different shard count.
			if id != "ext-parkinglot-xl" {
				if one := runForDiff(t, id, 1); one != serial {
					t.Errorf("shards=1 diverged from the serial run\nserial: %s\nshards=1: %s", serial, one)
				}
			}
			for _, n := range shardCounts {
				first := runForDiff(t, id, n)
				if class == byteIdentical && first != serial {
					t.Errorf("shards=%d diverged from serial but the experiment never shards\nserial: %s\nsharded: %s", n, serial, first)
				}
				for rep := 1; rep < reps; rep++ {
					if got := runForDiff(t, id, n); got != first {
						t.Errorf("shards=%d rep %d diverged — sharded run is not deterministic\nfirst: %s\nthis:  %s", n, rep, first, got)
					}
				}
			}
		})
	}
}

// TestShardDiffExampleScenarios runs every example scenario document through
// the serial runner and the sharded runner at shards ∈ {2, 4}: the documents
// must validate and complete at any shard count, shards=1 must match the
// serial table byte for byte, and fixed-N reruns must be identical. Documents
// with a fluid background group are the exception above one shard: the hybrid
// substrate is serial-only, so the runner must reject them with the
// validation error rather than run or panic.
func TestShardDiffExampleScenarios(t *testing.T) {
	docs, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(docs) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	reps := 2
	if shardDiffFull() {
		reps = 3
	}
	for _, path := range docs {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			load := func() scenario.Spec {
				f, err := os.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				spec, err := scenario.Load(f)
				if err != nil {
					t.Fatal(err)
				}
				return spec
			}
			fluid := false
			for _, g := range load().Groups {
				if g.IsFluid() {
					fluid = true
				}
			}
			run := func(shards int) string {
				spec := load()
				spec.Shards = shards
				tab, err := RunScenario(spec)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				b, _ := json.Marshal(struct {
					H []string
					R [][]string
				}{tab.Header, tab.Rows})
				return string(b)
			}
			serial := run(0)
			if one := run(1); one != serial {
				t.Errorf("shards=1 diverged from serial\nserial: %s\nshards=1: %s", serial, one)
			}
			for _, n := range []int{2, 4} {
				if fluid {
					spec := load()
					spec.Shards = n
					if _, err := RunScenario(spec); err == nil || !strings.Contains(err.Error(), "serial-only") {
						t.Errorf("shards=%d: fluid scenario must be rejected as serial-only, got %v", n, err)
					}
					continue
				}
				first := run(n)
				for rep := 1; rep < reps; rep++ {
					if got := run(n); got != first {
						t.Errorf("shards=%d rep %d diverged\nfirst: %s\nthis:  %s", n, rep, first, got)
					}
				}
			}
		})
	}
}
