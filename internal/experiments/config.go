package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pert/internal/scenario"
	"pert/internal/sim"
)

// ScenarioConfig is the JSON form of a single-bottleneck scenario, so runs
// can be defined in files and shared (cmd/pertsim -config). Durations are
// Go duration strings ("60ms", "50s").
type ScenarioConfig struct {
	Scheme       string   `json:"scheme"`
	Seed         int64    `json:"seed"`
	BandwidthBps float64  `json:"bandwidth_bps"`
	RTTs         []string `json:"rtts"`
	Flows        int      `json:"flows"`
	ReverseFlows int      `json:"reverse_flows"`
	WebSessions  int      `json:"web_sessions"`
	BufferPkts   int      `json:"buffer_pkts"`
	Duration     string   `json:"duration"`
	MeasureFrom  string   `json:"measure_from"`
	MeasureUntil string   `json:"measure_until,omitempty"` // default duration
	StartWindow  string   `json:"start_window"`
	TargetDelay  string   `json:"target_delay,omitempty"`
	AccessJitter string   `json:"access_jitter,omitempty"`

	// Fault injection on the forward bottleneck (DumbbellSpec impairments);
	// probabilities in [0,1), ReorderExtra a duration string.
	LossRate     float64 `json:"loss_rate,omitempty"`
	DupRate      float64 `json:"dup_rate,omitempty"`
	ReorderRate  float64 `json:"reorder_rate,omitempty"`
	ReorderExtra string  `json:"reorder_extra,omitempty"`

	// Schedule drives mid-run capacity/delay changes and up/down flaps on
	// the forward bottleneck; change times must lie within the duration.
	Schedule []scenario.ChangeConfig `json:"schedule,omitempty"`
}

// LoadScenario parses a JSON scenario and returns the spec and scheme.
func LoadScenario(r io.Reader) (DumbbellSpec, Scheme, error) {
	var c ScenarioConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return DumbbellSpec{}, "", fmt.Errorf("experiments: decoding scenario: %w", err)
	}
	return c.Spec()
}

// Spec validates the config and converts it to a runnable spec.
func (c ScenarioConfig) Spec() (DumbbellSpec, Scheme, error) {
	fail := func(err error) (DumbbellSpec, Scheme, error) { return DumbbellSpec{}, "", err }
	if c.BandwidthBps <= 0 {
		return fail(fmt.Errorf("experiments: bandwidth_bps must be positive"))
	}
	if c.Flows <= 0 && c.WebSessions <= 0 {
		return fail(fmt.Errorf("experiments: scenario has no traffic"))
	}
	dur, err := parseDur(c.Duration, 0)
	if err != nil || dur <= 0 {
		return fail(fmt.Errorf("experiments: bad duration %q", c.Duration))
	}
	from, err := parseDur(c.MeasureFrom, dur/4)
	if err != nil || from < 0 || from >= dur {
		return fail(fmt.Errorf("experiments: bad measure_from %q", c.MeasureFrom))
	}
	until, err := parseDur(c.MeasureUntil, dur)
	if err != nil || until <= from || until > dur {
		return fail(fmt.Errorf("experiments: bad measure_until %q (window [%v, ?] must end inside the %v run)", c.MeasureUntil, from, dur))
	}
	startWin, err := parseDur(c.StartWindow, from/2)
	if err != nil || startWin < 0 {
		return fail(fmt.Errorf("experiments: bad start_window %q", c.StartWindow))
	}
	target, err := parseDur(c.TargetDelay, 0)
	if err != nil || target < 0 {
		return fail(fmt.Errorf("experiments: bad target_delay %q", c.TargetDelay))
	}
	jitter, err := parseDur(c.AccessJitter, 0)
	if err != nil || jitter < 0 {
		return fail(fmt.Errorf("experiments: bad access_jitter %q", c.AccessJitter))
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"loss_rate", c.LossRate}, {"dup_rate", c.DupRate}, {"reorder_rate", c.ReorderRate}} {
		if p.v < 0 || p.v >= 1 {
			return fail(fmt.Errorf("experiments: %s %g outside [0,1)", p.name, p.v))
		}
	}
	reorderExtra, err := parseDur(c.ReorderExtra, 0)
	if err != nil || reorderExtra < 0 {
		return fail(fmt.Errorf("experiments: bad reorder_extra %q", c.ReorderExtra))
	}
	schedule, err := scenario.ParseSchedule(c.Schedule, dur)
	if err != nil {
		return fail(fmt.Errorf("experiments: %w", err))
	}
	spec := DumbbellSpec{
		Seed:         c.Seed,
		Bandwidth:    c.BandwidthBps,
		Flows:        c.Flows,
		ReverseFlows: c.ReverseFlows,
		WebSessions:  c.WebSessions,
		BufferPkts:   c.BufferPkts,
		Duration:     dur,
		MeasureFrom:  from,
		MeasureUntil: until,
		StartWindow:  startWin,
		TargetDelay:  target,
		AccessJitter: jitter,
		LossRate:     c.LossRate,
		DupRate:      c.DupRate,
		ReorderRate:  c.ReorderRate,
		ReorderExtra: reorderExtra,
		Schedule:     schedule,
	}
	if len(c.RTTs) == 0 {
		spec.RTTs = []sim.Duration{60 * sim.Millisecond}
	}
	for _, s := range c.RTTs {
		d, err := time.ParseDuration(s)
		if err != nil {
			return fail(fmt.Errorf("experiments: bad rtt %q: %w", s, err))
		}
		spec.RTTs = append(spec.RTTs, sim.Time(d))
	}
	scheme := Scheme(c.Scheme)
	if c.Scheme == "" {
		scheme = PERT
	}
	if !scheme.Known() {
		return fail(fmt.Errorf("experiments: unknown scheme %q (known: %v)", c.Scheme, scenario.Names()))
	}
	return spec, scheme, nil
}

func parseDur(s string, def sim.Duration) (sim.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(d), nil
}
