package experiments

import (
	"reflect"
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

// TestShardDumbbellRouterAQMWebSchedule exercises every feature this PR made
// shard-safe through the real dumbbell runner at shards=2: router AQMs
// (marking RNG rebound to the bottleneck's domain), web sessions crossing the
// cut (lazy sink acceptance on the remote arrival path), and a boundary-link
// schedule with a capacity change and an up/down flap. Each scheme runs
// twice; fixed-N determinism means identical results. The shard-smoke -race
// run of this test is the concurrency assertion for the new arming paths.
func TestShardDumbbellRouterAQMWebSchedule(t *testing.T) {
	spec := DumbbellSpec{
		Seed:      77,
		Bandwidth: 10e6,
		RTTs:      []sim.Duration{ms(60)},
		Flows:     6, WebSessions: 8,
		Duration: seconds(20), MeasureFrom: seconds(5), MeasureUntil: seconds(18),
		StartWindow: seconds(2),
		Schedule: netem.LinkSchedule{
			{At: 8 * sim.Second, Capacity: 5e6},
			{At: 12 * sim.Second, Down: true},
			{At: 12*sim.Second + 300*sim.Millisecond, Up: true},
			{At: 14 * sim.Second, Capacity: 10e6},
		},
		Shards: 2,
	}
	for _, s := range []Scheme{SackRED, SackPI, SackREM, SackAVQ, PERTPI} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			first := RunDumbbell(spec, s)
			if first.Utilization <= 0 {
				t.Fatalf("%s moved no traffic", s)
			}
			if again := RunDumbbell(spec, s); !reflect.DeepEqual(first, again) {
				t.Fatalf("%s not deterministic at shards=2:\nfirst: %+v\nagain: %+v", s, first, again)
			}
		})
	}
}

// TestShardDumbbellSerialFallback pins the shardable gate: shards<=1, custom
// metrics, an unregistered scheme, or a delay-changing schedule all fall back
// to the serial engine, and a shards=1 run is byte-identical to shards=0.
func TestShardDumbbellSerialFallback(t *testing.T) {
	base := quickSpec(31)
	if base.shardable(string(PERT)) {
		t.Fatal("shards=0 spec reported shardable")
	}
	sharded := base
	sharded.Shards = 2
	if !sharded.shardable(string(PERT)) {
		t.Fatal("plain sharded spec not shardable")
	}
	if sharded.shardable("not-a-registered-scheme") {
		t.Fatal("unregistered scheme reported shardable")
	}
	delayed := sharded
	delayed.Schedule = netem.LinkSchedule{{At: sim.Second, Delay: ms(5)}}
	if delayed.shardable(string(PERT)) {
		t.Fatal("delay-changing schedule reported shardable")
	}

	serial := RunDumbbell(base, PERT)
	one := base
	one.Shards = 1
	if got := RunDumbbell(one, PERT); !reflect.DeepEqual(serial, got) {
		t.Fatalf("shards=1 diverged from serial:\nserial: %+v\nshards=1: %+v", serial, got)
	}
}
