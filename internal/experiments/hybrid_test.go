package experiments

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestExtHybridEquilibriumConformance is the acceptance gate of the hybrid
// substrate: at quick scale (10^5 modeled background flows over a 10^7 pkt/s
// bottleneck) the window-averaged shared queue must match the fluid-only
// eq. (9) prediction Tq*·C within 10% for both foreground schemes — the ten
// packet flows are a vanishing fraction of the modeled load, so the packet
// coupling must not disturb the analytic equilibrium.
func TestExtHybridEquilibriumConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-scale hybrid scenario; skipped with -short")
	}
	_, pps := extHybridFlows(Quick)
	_, _, tqStar := extHybridFluidOnly(Quick).Equilibrium()
	qStar := tqStar * pps
	for _, scheme := range []Scheme{PERT, SackDroptail} {
		sub, err := RunScenario(extHybridSpec(Quick, scheme))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		q, ok := hybridQueueCell(sub)
		if !ok {
			t.Fatalf("%s: no forward-link queue cell in %+v", scheme, sub.Rows)
		}
		if off := math.Abs(q-qStar) / qStar; off > 0.10 {
			t.Errorf("%s: shared queue %.0f pkts is %.1f%% off the fluid-only equilibrium %.0f pkts (limit 10%%)",
				scheme, q, 100*off, qStar)
		}
	}
}

// TestExtHybridFluidOffByteIdentity is the experiments-level metamorphic
// guarantee: zeroing the background population must leave a table identical
// byte for byte to the same scenario with the fluid group deleted — the
// hybrid plumbing may not perturb packet-only runs.
func TestExtHybridFluidOffByteIdentity(t *testing.T) {
	run := func(drop bool) string {
		spec := extHybridSpec(Quick, PERT)
		if drop {
			spec.Groups = spec.Groups[:1]
		} else {
			spec.Groups[1].Count = 0
		}
		tab, err := RunScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Compare every measured cell and note; the title legitimately
		// differs (it describes the spec's group count, not the run).
		b, err := json.Marshal(struct {
			H []string
			R [][]string
			N []string
		}{tab.Header, tab.Rows, tab.Notes})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	zeroed, dropped := run(false), run(true)
	if zeroed != dropped {
		t.Errorf("count-0 fluid group perturbed the run\nzeroed:  %s\ndropped: %s", zeroed, dropped)
	}
}

// TestExtHybridSerialOnly pins the sharding contract at the experiment
// level: the scenario behind ext-hybrid must be rejected with a clear error
// — not a panic, not a wrong answer — the moment shards exceed one.
func TestExtHybridSerialOnly(t *testing.T) {
	spec := extHybridSpec(Quick, PERT)
	spec.Shards = 4
	_, err := RunScenario(spec)
	if err == nil {
		t.Fatal("sharded hybrid scenario ran; it must be rejected")
	}
	if !strings.Contains(err.Error(), "serial-only") {
		t.Fatalf("rejection does not explain the restriction: %v", err)
	}
	if testing.Short() {
		return
	}
	// A -shards request on the experiment itself is a documented no-op: the
	// spec never sets Shards, so the registry run must succeed regardless.
	if _, err := ExtHybrid(WithShards(context.Background(), 4), Quick); err != nil {
		t.Fatalf("ext-hybrid with -shards must be a no-op, got %v", err)
	}
}
