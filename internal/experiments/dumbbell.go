package experiments

import (
	"fmt"
	"math/rand"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// DumbbellSpec describes one single-bottleneck scenario (the Section 4
// workhorse): long-term flows in both directions plus optional web sessions,
// measured over a steady-state window.
type DumbbellSpec struct {
	Seed int64

	Bandwidth float64        // bottleneck, bits/s
	RTTs      []sim.Duration // end-to-end propagation RTTs (round-robin)

	Flows        int // forward long-term flows
	ReverseFlows int // reverse long-term flows
	WebSessions  int // forward web sessions

	BufferPkts int // 0 = paper rule (BDP, floor 2*flows)

	Duration     sim.Duration // total simulated time
	MeasureFrom  sim.Duration // start of the measurement window
	MeasureUntil sim.Duration // end of the measurement window
	StartWindow  sim.Duration // flow starts uniform in [0, StartWindow)

	TargetDelay sim.Duration // PI schemes' delay reference (default 3 ms)

	// AccessJitter adds per-packet delay noise on access links (see
	// topo.DumbbellConfig.AccessJitter); the ext-jitter experiment uses it
	// to probe predictor robustness.
	AccessJitter sim.Duration

	// Fault injection on the forward bottleneck link (internal/netem
	// impairments). The impairment draws from its own RNG seeded by Seed,
	// so zero rates leave the run bit-identical to an unimpaired one.
	LossRate     float64      // non-congestive wire-loss probability
	DupRate      float64      // duplication probability
	ReorderRate  float64      // reordering probability
	ReorderExtra sim.Duration // extra holding delay bound for reordered packets

	// Schedule drives mid-run capacity/delay changes and link flaps on the
	// forward bottleneck (down links blackhole traffic).
	Schedule netem.LinkSchedule

	// NoAudit disables the invariant auditor every dumbbell run otherwise
	// carries (tests that deliberately corrupt state use it).
	NoAudit bool

	// Instrument, when set, is invoked with the built topology before
	// traffic starts — the hook for attaching tracers or custom samplers.
	Instrument func(d *topo.Dumbbell)

	// Metrics, when set, enables the observability layer for this run:
	// periodic sampling of the bottleneck queue, per-flow sender state and
	// PERT signal into Metrics.Sink, plus a flight recorder the auditor
	// dumps on invariant violations. Nil disables everything (the sampled
	// state is read-only, so results are bit-identical either way).
	Metrics *MetricsSpec

	// Shards > 1 asks for the parallel engine: the dumbbell is cut at the
	// bottleneck into two domains (the topology's only useful cut, so any
	// request above 2 clamps). Sharding engages only for registered schemes
	// with no Metrics or Instrument hook — those attach cross-domain
	// observers the parallel runner cannot isolate — and no delay-changing
	// schedule (the boundary cut's lookahead is fixed); everything else
	// silently runs serial, exactly as before. 0 and 1 are the serial
	// engine, byte-identical to the historical path.
	Shards int
}

// DumbbellResult is one row of a Section 4 figure: the four panels the paper
// plots for every sweep point.
type DumbbellResult struct {
	Scheme      Scheme
	AvgQueue    float64 // packets, time-averaged over the window
	NormQueue   float64 // AvgQueue / buffer size
	DropRate    float64 // fraction of offered packets dropped at bottleneck
	MarkRate    float64 // fraction ECN-marked (router AQM schemes)
	Utilization float64 // bottleneck utilization in [0,1]
	Jain        float64 // fairness of forward long-flow goodputs
	BufferPkts  int

	// Per-packet sojourn time through the bottleneck (queueing plus
	// transmission) over the measurement window, in seconds.
	DelayP50, DelayP95, DelayP99 float64

	// RetransOverhead is the fraction of forward long-flow segments that
	// were retransmissions (wasted capacity), cumulative over the run.
	RetransOverhead float64
}

// shardable reports whether this spec may take the parallel path for the
// given scheme: the caller asked for shards, the scheme is registered (so
// its shard-safety flag is checkable), no cross-domain observers are
// attached, and no schedule step changes the bottleneck's delay (the
// boundary cut's lookahead is fixed at partition time). Everything else
// falls back to the serial engine.
func (spec DumbbellSpec) shardable(scheme string) bool {
	return spec.Shards > 1 && spec.Metrics == nil && spec.Instrument == nil &&
		scenario.Known(scheme) && !spec.Schedule.HasDelayChange()
}

// RunDumbbell executes the scenario under one scheme and returns the
// measured row.
func RunDumbbell(spec DumbbellSpec, scheme Scheme) DumbbellResult {
	var g *sim.ShardGroup
	var eng *sim.Engine
	if spec.shardable(string(scheme)) {
		// A dumbbell has exactly one useful cut (the bottleneck), so any
		// larger request clamps to two domains.
		g = sim.NewShardGroup(2, spec.Seed)
		eng = g.Engine(0)
	} else {
		eng = sim.NewEngine(spec.Seed)
	}
	net := netem.NewNetwork(eng)

	maxRTT := spec.RTTs[0]
	for _, r := range spec.RTTs {
		if r > maxRTT {
			maxRTT = r
		}
	}
	env := schemeEnv{
		capacityPPS: spec.Bandwidth / (8 * 1040),
		nFlows:      spec.Flows + spec.ReverseFlows,
		maxRTT:      maxRTT,
		targetDelay: spec.TargetDelay,
	}
	res := runDumbbell(g, eng, net, spec, string(scheme), scheme.queueFor(net, env), scheme.ccFor(net, env), scheme.ecn(), webCC(scheme, scheme.ccFor(net, env)))
	res.Scheme = scheme
	return res
}

// RunDumbbellWith executes the scenario with an explicit congestion-control
// factory over DropTail bottlenecks — the entry point for PERT ablation
// studies (custom response curves, signal weights, rate limits). Custom
// factories cannot be verified shard-safe, so this path is always serial.
func RunDumbbellWith(spec DumbbellSpec, cc func() tcp.CongestionControl) DumbbellResult {
	eng := sim.NewEngine(spec.Seed)
	net := netem.NewNetwork(eng)
	qf := func(limit int, _ float64) netem.Discipline { return queue.NewDropTail(limit) }
	return runDumbbell(nil, eng, net, spec, "custom-cc", qf, cc, false, cc)
}

// scenarioSpec translates the legacy flat DumbbellSpec into a declarative
// scenario.Spec. Buffer size and host count are resolved here (not left to
// the compiler's derivation rules) because the historical formulas differ:
// the buffer floor is twice the *forward* flow count and hosts count web
// sessions, both of which the committed tables depend on.
func (spec DumbbellSpec) scenarioSpec(qf topo.QueueFactory) scenario.Spec {
	hosts := spec.Flows + spec.ReverseFlows + spec.WebSessions
	if hosts < 1 {
		hosts = 1
	}
	// Hosts are shared round-robin; cap the node count so huge sweeps
	// (1000 web sessions) do not build 2000+ nodes needlessly.
	if hosts > 256 {
		hosts = 256
	}
	return scenario.Spec{
		Seed: spec.Seed,
		Topology: scenario.TopologySpec{
			Template:     scenario.DumbbellTemplate,
			Bandwidth:    spec.Bandwidth,
			Delay:        spec.RTTs[0] / 3,
			Hosts:        hosts,
			RTTs:         spec.RTTs,
			BufferPkts:   spec.BufferPkts,
			AccessJitter: spec.AccessJitter,
			Queue:        qf,
		},
		Links: []scenario.LinkRule{{
			Link:         "forward",
			LossRate:     spec.LossRate,
			DupRate:      spec.DupRate,
			ReorderRate:  spec.ReorderRate,
			ReorderExtra: spec.ReorderExtra,
			Schedule:     spec.Schedule,
		}},
		Groups: []scenario.FlowGroupSpec{
			{Label: "fwd", Count: spec.Flows, From: "left", To: "right", StartWindow: spec.StartWindow},
			{Label: "rev", Count: spec.ReverseFlows, From: "right", To: "left", StartWindow: spec.StartWindow},
			{Label: "web", Count: spec.WebSessions, From: "left", To: "right", Traffic: scenario.Web, StartWindow: spec.StartWindow},
		},
		Duration:     spec.Duration,
		MeasureFrom:  spec.MeasureFrom,
		MeasureUntil: spec.MeasureUntil,
		TargetDelay:  spec.TargetDelay,
	}
}

// runDumbbell is the shared scenario body, expressed on the scenario
// compiler. Construction order is a bit-identity contract with the committed
// tables: compile (topology, impairments, schedule), then observers in the
// historical order (metrics registry, auditor, Instrument hook, delay
// monitor), then traffic.
//
// g selects the execution mode: nil runs the serial engine exactly as
// always; a shard group partitions the dumbbell at the bottleneck (left
// side plus R1 on shard 0, R2 plus right side on shard 1) and runs the same
// windows under conservative-lookahead synchronization. Instrumentation is
// created and read only at the quiescent points between windows, and the
// auditors become per-domain, each ticking on its own shard's engine.
func runDumbbell(g *sim.ShardGroup, eng *sim.Engine, net *netem.Network, spec DumbbellSpec, scheme string,
	qf topo.QueueFactory, ccf func() tcp.CongestionControl, ecn bool,
	webccf func() tcp.CongestionControl) DumbbellResult {

	if spec.BufferPkts == 0 {
		// The paper's rule: buffer = BDP with a floor of twice the number
		// of flows.
		var sum sim.Duration
		for _, r := range spec.RTTs {
			sum += r
		}
		mean := sum / sim.Duration(len(spec.RTTs))
		spec.BufferPkts = topo.BDPPackets(spec.Bandwidth, mean, 1040)
		if min := 2 * spec.Flows; spec.BufferPkts < min {
			spec.BufferPkts = min
		}
	}

	sspec := spec.scenarioSpec(qf)
	if g != nil {
		// Declare the sharded execution so the spec-level shard-safety
		// validation runs, and name the groups' scheme so it can: the
		// compiled CC/Conn are overwritten below either way, so naming the
		// scheme changes no construction draws.
		sspec.Shards = g.N()
		for i := range sspec.Groups {
			sspec.Groups[i].Scheme = scheme
		}
	}
	inst := scenario.MustCompile(eng, net, sspec)
	d := inst.Dumbbell()
	if g != nil {
		if err := net.Partition(g, inst.Topo.PartitionHint(g.N())); err != nil {
			panic(fmt.Sprintf("experiments: dumbbell partition: %v", err))
		}
	}
	run := func(until sim.Duration) {
		if g != nil {
			g.Run(sim.Time(until))
		} else {
			eng.Run(until)
		}
	}

	scenarioLine := fmt.Sprintf("dumbbell scheme=%s bw=%g flows=%d rev=%d web=%d loss=%g dup=%g reorder=%g changes=%d",
		scheme, spec.Bandwidth, spec.Flows, spec.ReverseFlows, spec.WebSessions,
		spec.LossRate, spec.DupRate, spec.ReorderRate, len(spec.Schedule))

	// The observability registry (nil when spec.Metrics is nil) is built
	// before the auditor so a violation's repro bundle can include the
	// flight-recorder dump.
	reg := spec.Metrics.newRegistry(eng, scenarioLine)

	var auds []*netem.Auditor
	if !spec.NoAudit {
		// Every dumbbell run carries the invariant auditor: packet
		// conservation, link accounting, and bottleneck queue bounds checked
		// periodically, with the bottleneck's trailing trace kept for the
		// repro bundle. A violation panics; the run harness converts that
		// into a per-run error carrying the bundle.
		cfg := netem.AuditConfig{Seed: spec.Seed, Scenario: scenarioLine}
		if fl := reg.Flight(); fl != nil {
			cfg.MetricsDump = fl.Dump
		}
		if g == nil {
			aud := netem.StartAudit(net, cfg)
			aud.Watch(d.Forward)
			aud.BoundQueue(d.Forward, d.BufferPkts)
			aud.BoundQueue(d.Reverse, d.BufferPkts)
		} else {
			// Per-domain auditors, each on its own shard's engine; each
			// watched link registers with the auditor of the domain owning
			// it (the forward bottleneck is shard 0's, the reverse shard
			// 1's). The summed cross-domain ledger is checked by Audit()
			// after the run.
			auds = make([]*netem.Auditor, net.Domains())
			for dom := range auds {
				auds[dom] = netem.StartDomainAudit(net, dom, cfg)
			}
			auds[d.Forward.From.Domain()].Watch(d.Forward)
			auds[d.Forward.From.Domain()].BoundQueue(d.Forward, d.BufferPkts)
			auds[d.Reverse.From.Domain()].BoundQueue(d.Reverse, d.BufferPkts)
		}
	}

	if spec.Instrument != nil {
		spec.Instrument(d)
	}
	// The monitor gets its own RNG: instrumentation must never perturb the
	// simulation's random stream (results stay identical with or without).
	delayMon := stats.MonitorDelay(d.Forward, spec.MeasureFrom, rand.New(rand.NewSource(spec.Seed^0x5eed)))

	// One shared connection config for both long-flow directions: the RTT
	// observer must chain onto a single histogram, as the hand-wired
	// scenario did.
	conn := tcp.Config{ECN: ecn}
	observeRTT(reg, &conn)
	inst.Groups[0].CC, inst.Groups[0].Conn = ccf, conn
	inst.Groups[1].CC, inst.Groups[1].Conn = ccf, conn
	inst.Groups[2].CC, inst.Groups[2].Conn = webccf, tcp.Config{ECN: ecn}
	inst.Spawn()
	fwd := inst.Groups[0].Flows
	spec.Metrics.instrumentDumbbell(reg, d, fwd)

	// Warm up, then measure.
	run(spec.MeasureFrom)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	// The queue monitor samples on the engine owning the bottleneck — the
	// same engine either way (R1 lives on shard 0), spelled through the
	// node so the ownership rule is explicit.
	qmon := stats.MonitorQueue(d.Forward.From.Engine(), d.Forward, eng.Now(), 10*sim.Millisecond)
	snap := trafficgen.GoodputSnapshot(fwd)

	run(spec.MeasureUntil)
	var sent, retrans uint64
	for _, f := range fwd {
		sent += f.Conn.Stats.SegsSent
		retrans += f.Conn.Stats.Retransmits
	}
	var overhead float64
	if sent > 0 {
		overhead = float64(retrans) / float64(sent)
	}
	p50, p95, p99 := delayMon.P50P95P99()
	res := DumbbellResult{
		RetransOverhead: overhead,
		DelayP50:        p50,
		DelayP95:        p95,
		DelayP99:        p99,
		AvgQueue:        qmon.Series.Mean(),
		NormQueue:       qmon.Series.Mean() / float64(d.BufferPkts),
		DropRate:        meter.DropRate(),
		MarkRate:        meter.MarkRate(),
		Utilization:     meter.Utilization(eng.Now()),
		Jain:            stats.Jain(trafficgen.Goodputs(fwd, snap)),
		BufferPkts:      d.BufferPkts,
	}
	qmon.Stop()
	run(spec.Duration)
	if g != nil {
		for _, aud := range auds {
			aud.Stop()
		}
		// The group has stopped: the summed cross-domain ledger must
		// balance. The serial auditor enforces the same invariant by
		// panicking mid-run, so a violation here is equally fatal.
		if err := net.Audit(); err != nil {
			panic(fmt.Sprintf("experiments: dumbbell scheme=%s shards=%d: %v", scheme, g.N(), err))
		}
	}
	// Close flushes the metrics sink; write errors are sticky on the
	// caller-owned writer, so the caller's own flush/close reports them.
	_ = reg.Close()
	return res
}
