package experiments

import (
	"context"
	"fmt"

	"pert/internal/sim"
)

// Scale selects experiment sizing.
type Scale string

// Quick shrinks bandwidth and duration while preserving dimensionless shape
// (buffer in BDPs, flow shares, measurement windows of hundreds of RTTs);
// Paper uses the publication's exact parameters and takes correspondingly
// long.
const (
	Quick Scale = "quick"
	Paper Scale = "paper"
)

// Valid reports whether s names a known scale.
func (s Scale) Valid() bool { return s == Quick || s == Paper }

// checkRun is the shared entry-point guard: cancelled contexts and unknown
// scales become errors before any scenario is built.
func checkRun(ctx context.Context, scale Scale) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !scale.Valid() {
		return fmt.Errorf("experiments: unknown scale %q (want %q or %q)", scale, Quick, Paper)
	}
	return nil
}

// seconds is shorthand for durations in experiment specs.
func seconds(x float64) sim.Duration { return sim.Seconds(x) }

// ms is shorthand for millisecond durations in experiment specs.
func ms(x float64) sim.Duration { return sim.Milliseconds(x) }

// window returns (duration, measureFrom, measureUntil, startWindow) for the
// standard steady-state methodology: the paper runs 400 s and measures
// 100-300 s with starts in (0, 50 s); quick runs shrink this 8x.
func (s Scale) window() (dur, from, until, startWin sim.Duration) {
	if s == Paper {
		return seconds(400), seconds(100), seconds(300), seconds(50)
	}
	return seconds(50), seconds(15), seconds(45), seconds(6)
}
