package experiments

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		old := SetParallelism(workers)
		var hits [100]int32
		forEach(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		SetParallelism(old)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	forEach(0, func(int) { t.Fatal("called for empty range") })
}

func TestSetParallelismClamps(t *testing.T) {
	old := SetParallelism(-5)
	if got := SetParallelism(old); got != 1 {
		t.Fatalf("negative parallelism stored as %d", got)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	points := []sweepPoint{
		{"a", quickSpecShort(301)},
		{"b", quickSpecShort(302)},
	}
	run := func(workers int) [][]string {
		old := SetParallelism(workers)
		defer SetParallelism(old)
		return runSweep("t", "t", "x", points, []Scheme{PERT, SackDroptail}).Rows
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatal("row counts differ")
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("row %d col %d: %q vs %q", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

func quickSpecShort(seed int64) DumbbellSpec {
	s := quickSpec(seed)
	s.Duration = seconds(10)
	s.MeasureFrom = seconds(3)
	s.MeasureUntil = seconds(10)
	return s
}
