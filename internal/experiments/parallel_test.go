package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctx := WithWorkers(context.Background(), workers)
		var hits [100]int32
		if err := forEach(ctx, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := forEach(context.Background(), 0, func(int) { t.Fatal("called for empty range") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(WithWorkers(context.Background(), workers))
		var calls atomic.Int32
		err := forEach(ctx, 1000, func(i int) {
			if calls.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if n := calls.Load(); n >= 1000 {
			t.Fatalf("workers=%d: cancellation dispatched all %d indices", workers, n)
		}
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx := WithWorkers(context.Background(), workers)
		err := forEach(ctx, 50, func(i int) {
			if i == 7 {
				panic("boom")
			}
		})
		if err == nil || !strings.Contains(err.Error(), "panicked: boom") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestWorkersContextAndDefault(t *testing.T) {
	ctx := context.Background()
	if got := Workers(WithWorkers(ctx, 3)); got != 3 {
		t.Fatalf("context workers = %d", got)
	}
	// n < 1 leaves the context unchanged.
	if got := Workers(WithWorkers(ctx, 0)); got != Workers(ctx) {
		t.Fatalf("zero workers overrode default: %d", got)
	}
	if got := Workers(ctx); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS", got)
	}
	// An explicit context count always wins.
	if got := Workers(WithWorkers(ctx, 2)); got != 2 {
		t.Fatalf("context workers = %d", got)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	points := []sweepPoint{
		{"a", quickSpecShort(301)},
		{"b", quickSpecShort(302)},
	}
	run := func(workers int) [][]string {
		ctx := WithWorkers(context.Background(), workers)
		tab, err := runSweep(ctx, "t", "t", "x", points, []Scheme{PERT, SackDroptail})
		if err != nil {
			t.Fatal(err)
		}
		return tab.Rows
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatal("row counts differ")
	}
	for i := range serial {
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("row %d col %d: %q vs %q", i, j, serial[i][j], parallel[i][j])
			}
		}
	}
}

func quickSpecShort(seed int64) DumbbellSpec {
	s := quickSpec(seed)
	s.Duration = seconds(10)
	s.MeasureFrom = seconds(3)
	s.MeasureUntil = seconds(10)
	return s
}
