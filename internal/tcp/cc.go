package tcp

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

// CongestionControl is the per-flavor policy plugged into a Conn. The Conn
// owns the mechanics (sequencing, SACK scoreboard, retransmission, timers);
// the flavor owns the window: how it grows on ACKs and how it shrinks on the
// three congestion signals (fast retransmit, retransmission timeout, ECN
// echo).
type CongestionControl interface {
	// Init is called once when the connection starts.
	Init(c *Conn)
	// OnAck is called for every arriving ACK. newlyAcked is the number of
	// segments the cumulative ACK point advanced (0 for duplicate ACKs);
	// rtt is the RTT sample carried by this ACK, or 0 if none (Karn); ack
	// is the ACK packet itself (echoed instrumentation, OWD), read-only.
	OnAck(c *Conn, newlyAcked int, rtt sim.Duration, ack *netem.Packet)
	// OnDupAckLoss is called when loss is inferred from duplicate
	// ACKs/SACK, just before fast retransmit. It must set ssthresh/cwnd.
	OnDupAckLoss(c *Conn)
	// OnRTO is called on a retransmission timeout. It must set
	// ssthresh/cwnd.
	OnRTO(c *Conn)
	// OnECNEcho is called at most once per window when the receiver echoes
	// an ECN congestion mark.
	OnECNEcho(c *Conn)
}

// Reno implements the standard NewReno/SACK window policy: slow start to
// ssthresh, then additive increase; halving on loss or ECN; window collapse
// to one segment on RTO. This is the "SACK" baseline in the paper's
// evaluation.
type Reno struct{}

// Init implements CongestionControl.
func (Reno) Init(*Conn) {}

// OnAck implements CongestionControl: slow start below ssthresh, AIMD above.
func (Reno) OnAck(c *Conn, newlyAcked int, _ sim.Duration, _ *netem.Packet) {
	if newlyAcked <= 0 || c.InRecovery() {
		return
	}
	if c.Cwnd() < c.Ssthresh() {
		c.SetCwnd(c.Cwnd() + float64(newlyAcked))
	} else {
		c.SetCwnd(c.Cwnd() + float64(newlyAcked)/c.Cwnd())
	}
}

// OnDupAckLoss implements CongestionControl: halve into fast recovery.
func (Reno) OnDupAckLoss(c *Conn) {
	ss := math.Max(2, c.Cwnd()/2)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}

// OnRTO implements CongestionControl.
func (Reno) OnRTO(c *Conn) {
	c.SetSsthresh(math.Max(2, c.Cwnd()/2))
	c.SetCwnd(1)
}

// OnECNEcho implements CongestionControl: treated like a fast-retransmit
// signal (RFC 3168), without retransmission.
func (Reno) OnECNEcho(c *Conn) {
	ss := math.Max(2, c.Cwnd()/2)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}
