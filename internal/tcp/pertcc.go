package tcp

import (
	"math"

	"pert/internal/core"
	"pert/internal/netem"
	"pert/internal/sim"
)

// PERT adapts a core.Responder (RED or PI emulation) onto the TCP sender: on
// every ACK the per-packet RTT sample feeds the congestion predictor, and
// when the responder fires the window is reduced multiplicatively — the
// proactive, probabilistic early response that lets end hosts obtain
// AQM/ECN-like queue behaviour from plain DropTail bottlenecks. Packet losses
// still get the full standard SACK response.
type PERT struct {
	Responder core.Responder
	// UseOWD feeds the responder forward one-way delays (echoed on ACKs by
	// an OWD-measuring sink, see NewOWDFlow) instead of round-trip times.
	UseOWD bool
	// Build, if set and Responder is nil, constructs the responder at Init
	// time with access to the live connection (and hence the engine's
	// deterministic RNG). Used by ablation variants.
	Build func(c *Conn) core.Responder
	// Base supplies window growth and loss/ECN response; default Reno.
	// The paper's footnote 1 observes that its argument applies to any
	// loss-based probing — plugging in an aggressive high-speed base (see
	// NewHSTCP) tests exactly that.
	Base CongestionControl
}

// NewPERTRed builds the paper's standard PERT: RED emulation with srtt_0.99,
// thresholds P+5 ms / P+10 ms, pmax 0.05, gentle curve, and 35% decrease. The
// responder is created lazily in Init so it draws from the connection's
// deterministic RNG.
func NewPERTRed() *PERT { return &PERT{} }

// NewPERTWith builds PERT around an explicit responder (PI emulation or
// ablation variants).
func NewPERTWith(r core.Responder) *PERT { return &PERT{Responder: r} }

// NewPERTLazy builds PERT whose responder is constructed per-connection at
// Init time (ablation variants that need the connection's RNG).
func NewPERTLazy(build func(c *Conn) core.Responder) *PERT {
	return &PERT{Build: build}
}

// Init implements CongestionControl.
func (p *PERT) Init(c *Conn) {
	if p.Base == nil {
		p.Base = Reno{}
	}
	p.Base.Init(c)
	if p.Responder != nil {
		return
	}
	if p.Build != nil {
		p.Responder = p.Build(c)
		return
	}
	p.Responder = core.NewREDResponder(c.Engine().Rand())
}

// Probe reports the responder's current congestion view for instrumentation:
// the perceived queueing delay in seconds and the response probability in
// effect. ok is false before Init has constructed the responder (no ACK has
// been processed yet), or when the responder cannot report a probability.
// Pure read — probing never advances the signal, the rate limiter, or any
// RNG.
func (p *PERT) Probe() (qdelay, prob float64, ok bool) {
	r := p.Responder
	if r == nil {
		return 0, 0, false
	}
	pr, isProber := r.(core.Prober)
	if !isProber {
		return 0, 0, false
	}
	return r.Signal().QueueingDelay().Seconds(), pr.P(), true
}

// OnAck implements CongestionControl: Reno-style growth plus the PERT early
// response. With UseOWD set, the responder consumes the ACK's echoed forward
// one-way delay instead of the RTT, excluding reverse-path queueing from the
// congestion signal (Section 7).
func (p *PERT) OnAck(c *Conn, newlyAcked int, rtt sim.Duration, ack *netem.Packet) {
	if p.UseOWD && ack != nil && ack.OWD > 0 && !ack.Retrans {
		rtt = ack.OWD
	}
	if rtt > 0 {
		d := p.Responder.OnRTT(c.Now(), rtt)
		if d.Respond && !c.InRecovery() {
			c.noteEarlyResponse()
			w := math.Max(2, c.Cwnd()*(1-d.Factor))
			c.SetCwnd(w)
			c.SetSsthresh(w)
			return // no growth on the reducing ACK
		}
	}
	p.Base.OnAck(c, newlyAcked, rtt, ack)
}

// OnDupAckLoss implements CongestionControl: losses get the base's standard
// response.
func (p *PERT) OnDupAckLoss(c *Conn) { p.Base.OnDupAckLoss(c) }

// OnRTO implements CongestionControl.
func (p *PERT) OnRTO(c *Conn) { p.Base.OnRTO(c) }

// OnECNEcho implements CongestionControl (PERT normally runs over DropTail;
// the base handles ECN if it is enabled anyway).
func (p *PERT) OnECNEcho(c *Conn) { p.Base.OnECNEcho(c) }
