package tcp

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

// Vegas implements TCP Vegas congestion avoidance (Brakmo et al., SIGCOMM
// 1994): once per RTT the sender compares its expected throughput
// (cwnd/baseRTT) with its actual throughput (cwnd/RTT) and nudges the window
// by one packet to keep between Alpha and Beta packets queued in the network.
// Slow start doubles every other RTT and exits when the queue estimate
// crosses Gamma. Loss response is the standard halving machinery of the Conn.
type Vegas struct {
	Alpha float64 // lower bound on estimated queued packets (default 1)
	Beta  float64 // upper bound (default 3)
	Gamma float64 // slow-start exit threshold (default 1)

	epochEnd  int64
	rttSum    sim.Duration
	rttCount  int
	slowStart bool
	growEpoch bool // slow start doubles every other RTT
}

// NewVegas returns a Vegas controller with the canonical alpha=1, beta=3,
// gamma=1 parameters.
func NewVegas() *Vegas {
	return &Vegas{Alpha: 1, Beta: 3, Gamma: 1}
}

// Init implements CongestionControl.
func (v *Vegas) Init(c *Conn) {
	v.slowStart = true
	v.epochEnd = 0
}

// OnAck implements CongestionControl.
func (v *Vegas) OnAck(c *Conn, newlyAcked int, rtt sim.Duration, _ *netem.Packet) {
	if rtt > 0 {
		v.rttSum += rtt
		v.rttCount++
	}
	if newlyAcked <= 0 || c.InRecovery() {
		return
	}
	// Slow start grows per ACK on alternating RTTs (cwnd doubles every
	// other round trip, Vegas's cautious version of Reno slow start). This
	// includes the epoch-boundary ACK so that tiny windows, where every
	// ACK is a boundary, still grow.
	if v.slowStart && v.growEpoch {
		c.SetCwnd(c.Cwnd() + float64(newlyAcked))
	}
	if c.SndUna() < v.epochEnd {
		return
	}

	// One epoch (~one RTT) completed: run the Vegas estimator.
	diff, ok := v.diff(c)
	v.epochEnd = c.SndMax()
	v.rttSum, v.rttCount = 0, 0
	v.growEpoch = !v.growEpoch
	if !ok {
		return
	}

	if v.slowStart {
		if diff > v.Gamma {
			v.slowStart = false
			// Back off the overshoot before entering avoidance.
			c.SetCwnd(math.Max(2, c.Cwnd()*7/8))
			c.SetSsthresh(c.Cwnd())
		}
		return
	}
	switch {
	case diff < v.Alpha:
		c.SetCwnd(c.Cwnd() + 1)
	case diff > v.Beta:
		c.SetCwnd(c.Cwnd() - 1)
	}
}

// diff estimates the number of packets this flow keeps queued at the
// bottleneck: cwnd * (RTT - baseRTT) / RTT, using the average RTT observed
// over the ending epoch.
func (v *Vegas) diff(c *Conn) (float64, bool) {
	if v.rttCount == 0 || !c.RTT().HasSample() {
		return 0, false
	}
	avgRTT := float64(v.rttSum) / float64(v.rttCount)
	base := float64(c.RTT().Min)
	if base <= 0 || avgRTT <= 0 {
		return 0, false
	}
	return c.Cwnd() * (avgRTT - base) / avgRTT, true
}

// OnDupAckLoss implements CongestionControl. Brakmo's Vegas reduces less
// aggressively than Reno on fast retransmit (the loss was likely found
// early); ns-2 uses a 3/4 reduction.
func (v *Vegas) OnDupAckLoss(c *Conn) {
	v.slowStart = false
	ss := math.Max(2, c.Cwnd()*3/4)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}

// OnRTO implements CongestionControl.
func (v *Vegas) OnRTO(c *Conn) {
	v.slowStart = true
	v.growEpoch = false
	c.SetSsthresh(math.Max(2, c.Cwnd()/2))
	c.SetCwnd(1)
}

// OnECNEcho implements CongestionControl (Vegas is normally run without ECN;
// behave like Reno if it is enabled).
func (v *Vegas) OnECNEcho(c *Conn) {
	ss := math.Max(2, c.Cwnd()/2)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}
