// Package tcp implements packet-granularity TCP endpoints for the simulator:
// a sender with slow start, congestion avoidance, fast retransmit/recovery
// with a SACK scoreboard, RFC 6298 retransmission timing, and RFC 3168 ECN
// response; a receiver generating cumulative ACKs with SACK blocks; and
// pluggable congestion-control flavors (NewReno/SACK, Vegas, and the paper's
// PERT via internal/core). The abstraction level deliberately matches ns-2's
// Agent/TCP: sequence numbers count segments, not bytes.
package tcp

import "pert/internal/sim"

// RTTEstimator tracks smoothed RTT and RTO per RFC 6298, plus the running
// minimum RTT used by delay-based congestion control as the propagation-delay
// estimate.
type RTTEstimator struct {
	SRTT   sim.Duration
	RTTVar sim.Duration
	Min    sim.Duration
	Latest sim.Duration

	MinRTO sim.Duration
	MaxRTO sim.Duration

	rto     sim.Duration
	backoff uint
	init    bool
}

// NewRTTEstimator returns an estimator with conventional simulator bounds:
// initial RTO 1 s, clamped to [200 ms, 60 s].
func NewRTTEstimator() *RTTEstimator {
	return &RTTEstimator{
		MinRTO: 200 * sim.Millisecond,
		MaxRTO: 60 * sim.Second,
		rto:    sim.Second,
		Min:    sim.MaxTime,
	}
}

// Sample folds one RTT measurement into the estimator and resets any
// exponential backoff.
func (e *RTTEstimator) Sample(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	e.Latest = rtt
	if rtt < e.Min {
		e.Min = rtt
	}
	if !e.init {
		e.init = true
		e.SRTT = rtt
		e.RTTVar = rtt / 2
	} else {
		// RFC 6298: alpha = 1/8, beta = 1/4.
		diff := e.SRTT - rtt
		if diff < 0 {
			diff = -diff
		}
		e.RTTVar = (3*e.RTTVar + diff) / 4
		e.SRTT = (7*e.SRTT + rtt) / 8
	}
	e.rto = e.SRTT + 4*e.RTTVar
	e.backoff = 0
}

// RTO returns the current retransmission timeout including backoff, clamped
// to [MinRTO, MaxRTO].
func (e *RTTEstimator) RTO() sim.Duration {
	rto := e.rto << e.backoff
	if rto < e.MinRTO || rto <= 0 { // <=0 guards shift overflow
		rto = e.MinRTO
	}
	if rto > e.MaxRTO {
		rto = e.MaxRTO
	}
	return rto
}

// Backoff doubles the RTO after a retransmission timeout (Karn).
func (e *RTTEstimator) Backoff() {
	if e.backoff < 16 {
		e.backoff++
	}
}

// HasSample reports whether at least one RTT measurement has been folded in.
func (e *RTTEstimator) HasSample() bool { return e.init }
