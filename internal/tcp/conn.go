package tcp

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

const (
	// DefaultPayload is the data payload per segment in bytes; with the
	// 40-byte header this gives the 1040-byte wire segments used throughout
	// the experiments (the paper's Section 5 examples use 1250-byte packets;
	// both are configurable).
	DefaultPayload = 1000
	headerSize     = 40
	ackSize        = headerSize
)

// LossKind distinguishes how the sender inferred a loss, for flow-level loss
// instrumentation (the Section 2 study records these).
type LossKind int

const (
	// LossFastRetransmit is loss inferred from duplicate ACKs / SACK.
	LossFastRetransmit LossKind = iota
	// LossTimeout is loss inferred from a retransmission timeout.
	LossTimeout
)

// Config parameterizes a connection. Zero values select sensible defaults.
type Config struct {
	Payload     int     // payload bytes per segment (default 1000)
	InitialCwnd float64 // default 2 segments
	MaxCwnd     float64 // receiver-window stand-in; default effectively unbounded
	ECN         bool    // negotiate ECN: set ECT, respond to ECE
	// LimitedTransmit enables RFC 3042: on the first two duplicate ACKs
	// the sender transmits one new segment beyond the window, keeping the
	// ACK clock alive so small windows can still trigger fast retransmit
	// instead of timing out.
	LimitedTransmit bool
	// SlowStartRestart collapses the window back to the initial window
	// after the connection has been idle longer than one RTO (the
	// ns-2/RFC 2861 behaviour), so a burst after idle cannot blast a full
	// stale window into the network.
	SlowStartRestart bool
	// DelAck enables RFC 1122-style delayed ACKs at the receiver (ack
	// every second in-order segment or after 200 ms). Off by default,
	// matching ns-2's TCPSink.
	DelAck bool
	// MaxBurst caps the segments transmitted in response to one ACK
	// (ns-2's maxburst), preventing stretch ACKs — e.g. after ACK loss on
	// a congested reverse path — from blasting line-rate bursts into the
	// bottleneck. Default 4; negative disables.
	MaxBurst int

	// TotalSegs ends the transfer after this many segments are acked;
	// 0 means unbounded (an FTP source).
	TotalSegs int64
	// OnComplete fires once when TotalSegs are all acknowledged.
	OnComplete func(now sim.Time)

	// OnRTTSample observes every valid RTT measurement (per-ACK), feeding
	// the Section 2 predictor traces. ack is the ACK packet that carried
	// the sample (including any echoed instrumentation); treat as
	// read-only.
	OnRTTSample func(now sim.Time, rtt sim.Duration, ack *netem.Packet)
	// OnLoss observes every flow-level loss inference.
	OnLoss func(now sim.Time, kind LossKind)
}

// ConnStats are cumulative sender-side counters.
type ConnStats struct {
	SegsSent       uint64
	Retransmits    uint64
	FastRecoveries uint64
	RTOs           uint64
	ECNResponses   uint64
	AckedSegs      uint64
	EarlyResponses uint64 // PERT proactive window reductions
}

// Conn is a TCP sender. It transmits a segment stream to a Sink at the
// destination node and reacts to the returned ACK/SACK stream. Create
// connected pairs with NewFlow.
type Conn struct {
	eng  *sim.Engine
	net  *netem.Network
	node *netem.Node
	flow int
	dst  netem.NodeID
	cc   CongestionControl
	cfg  Config

	rtt *RTTEstimator

	cwnd     float64
	ssthresh float64

	sndUna int64 // lowest unacknowledged segment
	sndNxt int64 // next segment to transmit (pulled back on RTO)
	sndMax int64 // highest segment ever transmitted + 1

	dupacks    int
	inRecovery bool
	recover    int64

	// Retransmission bookkeeping for the current recovery episode. Holes
	// are retransmitted in ascending order, so a sorted list plus two
	// monotone cursors replaces a per-segment set and keeps every
	// per-ACK operation O(1) amortized even with thousands of losses.
	rtxList  []int64 // seqs retransmitted this episode, ascending
	rtxAcked int     // prefix of rtxList below sndUna (no longer in flight)
	rtxScan  int64   // next position for the hole scan

	sb Scoreboard

	// rtxTimer is a persistent timer rearmed on every ACK; the old
	// cancel-and-reallocate pattern cost one event allocation per ACK.
	rtxTimer *sim.Timer

	ecnRecover int64 // ignore ECE until sndUna passes this
	cwrPending bool

	started   bool
	completed bool

	lastTx sim.Time // time of the most recent transmission (idle detection)

	Stats ConnStats
}

// NewConn creates a sender on node addressed to dst under the given flow ID.
// The caller must also create a Sink for the flow at the destination (or use
// NewFlow, which does both).
func NewConn(net *netem.Network, node *netem.Node, dst netem.NodeID, flow int, cc CongestionControl, cfg Config) *Conn {
	if cfg.Payload == 0 {
		cfg.Payload = DefaultPayload
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = 2
	}
	if cfg.MaxCwnd == 0 {
		cfg.MaxCwnd = math.MaxInt32
	}
	if cfg.MaxBurst == 0 {
		cfg.MaxBurst = 4
	}
	c := &Conn{
		// The node's engine, not the network's: after a Partition the two
		// differ, and every timer and transmission of this connection must
		// run on the shard owning its node.
		eng:      node.Engine(),
		net:      net,
		node:     node,
		flow:     flow,
		dst:      dst,
		cc:       cc,
		cfg:      cfg,
		rtt:      NewRTTEstimator(),
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.MaxCwnd,
	}
	c.rtxTimer = c.eng.NewTimer(c.onRTO)
	return c
}

// Flow is a connected sender/receiver pair.
type Flow struct {
	Conn *Conn
	Sink *Sink
}

// NewFlow wires a sender at src to a sink at dst and returns both. Call
// Start on the returned flow (or Conn.Start) to begin transmitting.
func NewFlow(net *netem.Network, src, dst *netem.Node, flow int, cc CongestionControl, cfg Config) *Flow {
	c := NewConn(net, src, dst.ID, flow, cc, cfg)
	payload := c.cfg.Payload
	s := NewSink(net, dst, flow, src.ID, payload)
	if cfg.DelAck {
		s.EnableDelAck(0)
	}
	return &Flow{Conn: c, Sink: s}
}

// Start attaches the sender and begins transmitting at time at.
func (f *Flow) Start(at sim.Time) { f.Conn.Start(at) }

// Close detaches both endpoints.
func (f *Flow) Close() {
	f.Conn.Close()
	f.Sink.Close()
}

// Start schedules the connection to begin transmitting at time at.
func (c *Conn) Start(at sim.Time) {
	c.eng.At(at, func() {
		if c.started {
			return
		}
		c.started = true
		c.node.AttachFlow(c.flow, c)
		c.cc.Init(c)
		c.trySend()
	})
}

// Close detaches the sender and cancels its timer.
func (c *Conn) Close() {
	c.completed = true
	c.rtxTimer.Stop()
	c.node.DetachFlow(c.flow)
}

// Accessors used by CongestionControl implementations and instrumentation.

// Cwnd returns the congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// SetCwnd sets the congestion window, clamped to [1, MaxCwnd].
func (c *Conn) SetCwnd(w float64) {
	c.cwnd = math.Max(1, math.Min(w, c.cfg.MaxCwnd))
}

// Ssthresh returns the slow-start threshold in segments.
func (c *Conn) Ssthresh() float64 { return c.ssthresh }

// SetSsthresh sets the slow-start threshold (floor 2 segments).
func (c *Conn) SetSsthresh(s float64) { c.ssthresh = math.Max(2, s) }

// RTT exposes the connection's RTT estimator.
func (c *Conn) RTT() *RTTEstimator { return c.rtt }

// InRecovery reports whether the sender is in SACK-based loss recovery.
func (c *Conn) InRecovery() bool { return c.inRecovery }

// Now returns current virtual time.
func (c *Conn) Now() sim.Time { return c.eng.Now() }

// Engine returns the simulation engine (for RNG access in stochastic CC).
func (c *Conn) Engine() *sim.Engine { return c.eng }

// SndUna returns the lowest unacknowledged segment number.
func (c *Conn) SndUna() int64 { return c.sndUna }

// SndMax returns one past the highest segment ever sent.
func (c *Conn) SndMax() int64 { return c.sndMax }

// Completed reports whether a bounded transfer has finished.
func (c *Conn) Completed() bool { return c.completed }

// noteEarlyResponse records a PERT proactive reduction (see pertcc.go).
func (c *Conn) noteEarlyResponse() { c.Stats.EarlyResponses++ }

// dataLimit returns one past the last segment the application will send.
func (c *Conn) dataLimit() int64 {
	if c.cfg.TotalSegs <= 0 {
		return math.MaxInt64
	}
	return c.cfg.TotalSegs
}

// effCwnd returns the integer window used for transmission decisions.
func (c *Conn) effCwnd() int64 {
	w := math.Floor(c.cwnd)
	if w < 1 {
		w = 1
	}
	return int64(w)
}

// sendSeg transmits one segment.
func (c *Conn) sendSeg(seq int64) {
	retrans := seq < c.sndMax
	p := c.node.NewPacket()
	p.Flow = c.flow
	p.Src = c.node.ID
	p.Dst = c.dst
	p.Size = c.cfg.Payload + headerSize
	p.Seq = seq
	p.ECT = c.cfg.ECN
	p.CWR = c.cwrPending
	p.SentAt = c.eng.Now()
	p.Retrans = retrans
	p.QueueSample = -1 // unset until an instrumented queue stamps it
	c.cwrPending = false
	c.Stats.SegsSent++
	if retrans {
		c.Stats.Retransmits++
	}
	if seq >= c.sndMax {
		c.sndMax = seq + 1
	}
	c.lastTx = c.eng.Now()
	c.net.SendFrom(c.node, p)
	c.armTimerIfNeeded()
}

// trySend transmits as much as the window currently allows, bounded by the
// per-ACK burst cap.
func (c *Conn) trySend() {
	if c.completed || !c.started {
		return
	}
	c.maybeSlowStartRestart()
	burst := 0
	allowed := func() bool { return c.cfg.MaxBurst < 0 || burst < c.cfg.MaxBurst }
	if c.inRecovery {
		for allowed() && c.sendRecoveryStep() {
			burst++
		}
		return
	}
	limit := c.dataLimit()
	for allowed() && c.sndNxt-c.sndUna < c.effCwnd() && c.sndNxt < limit {
		seq := c.sndNxt
		c.sndNxt++
		c.sendSeg(seq)
		burst++
	}
}

// maybeSlowStartRestart applies the idle-restart rule before transmitting
// new data.
func (c *Conn) maybeSlowStartRestart() {
	if !c.cfg.SlowStartRestart || c.lastTx == 0 {
		return
	}
	if c.sndMax > c.sndUna {
		return // data in flight: not idle
	}
	if c.eng.Now()-c.lastTx > c.rtt.RTO() {
		c.SetSsthresh(c.cwnd)
		c.SetCwnd(c.cfg.InitialCwnd)
	}
}

// pipe estimates the number of segments currently in flight during recovery,
// per RFC 6675: segments above the highest SACK (sent, unsacked, presumed in
// flight) plus retransmissions not yet cumulatively acknowledged. Holes below
// the highest SACK that were never retransmitted are presumed lost. O(1).
func (c *Conn) pipe() int64 {
	base := c.sb.HighestSacked()
	if base < c.sndUna {
		base = c.sndUna
	}
	p := (c.sndNxt - base) + int64(len(c.rtxList)-c.rtxAcked)
	if p < 0 {
		p = 0
	}
	return p
}

// sendRecoveryStep sends one segment during loss recovery if the pipe allows:
// first unretransmitted holes below the highest SACK, then new data. Returns
// whether a segment was sent. The hole scan is monotone within an episode:
// positions behind rtxScan are sacked, retransmitted, or acknowledged.
func (c *Conn) sendRecoveryStep() bool {
	if c.pipe() >= c.effCwnd() {
		return false
	}
	if c.rtxScan < c.sndUna {
		c.rtxScan = c.sndUna
	}
	limit := c.sb.HighestSacked()
	if limit > c.recover {
		limit = c.recover
	}
	if hole := c.sb.NextHole(c.rtxScan, limit); hole >= 0 {
		c.rtxScan = hole + 1
		c.rtxList = append(c.rtxList, hole)
		c.sendSeg(hole)
		return true
	}
	// Otherwise send new data if the application has any.
	if c.sndNxt < c.dataLimit() {
		seq := c.sndNxt
		c.sndNxt++
		c.sendSeg(seq)
		return true
	}
	return false
}

// enterRecovery begins SACK-based fast recovery with a retransmission of the
// first unacknowledged segment.
func (c *Conn) enterRecovery(now sim.Time) {
	c.inRecovery = true
	c.recover = c.sndMax
	c.rtxList = c.rtxList[:0]
	c.rtxAcked = 0
	c.rtxScan = c.sndUna + 1
	c.dupacks = 0
	c.Stats.FastRecoveries++
	c.cc.OnDupAckLoss(c)
	if c.cfg.OnLoss != nil {
		c.cfg.OnLoss(now, LossFastRetransmit)
	}
	c.rtxList = append(c.rtxList, c.sndUna)
	c.sendSeg(c.sndUna)
}

// exitRecovery completes fast recovery after the recovery point is acked.
func (c *Conn) exitRecovery() {
	c.inRecovery = false
	c.rtxList = c.rtxList[:0]
	c.rtxAcked = 0
	c.SetCwnd(c.ssthresh)
}

// Receive implements netem.Handler for the ACK stream.
func (c *Conn) Receive(p *netem.Packet, now sim.Time) {
	if !p.IsAck || c.completed {
		return
	}
	for _, b := range p.Sack {
		c.sb.Add(b)
	}

	// RTT sampling: every ACK echoing an unambiguous (non-retransmitted)
	// segment timestamp yields a sample — the per-ACK sampling Section 2.4
	// of the paper builds its predictor on.
	var sample sim.Duration
	if p.Echo > 0 && !p.Retrans {
		sample = now - p.Echo
		c.rtt.Sample(sample)
		if c.cfg.OnRTTSample != nil {
			c.cfg.OnRTTSample(now, sample, p)
		}
	}

	// ECN echo: respond at most once per window.
	if p.ECE && c.cfg.ECN && c.sndUna >= c.ecnRecover {
		c.Stats.ECNResponses++
		c.ecnRecover = c.sndMax
		c.cwrPending = true
		c.cc.OnECNEcho(c)
	}

	newly := 0
	switch {
	case p.AckNo > c.sndUna:
		newly = int(p.AckNo - c.sndUna)
		c.Stats.AckedSegs += uint64(newly)
		c.sndUna = p.AckNo
		if c.sndNxt < c.sndUna {
			c.sndNxt = c.sndUna
		}
		c.sb.AckedUpTo(c.sndUna)
		for c.rtxAcked < len(c.rtxList) && c.rtxList[c.rtxAcked] < c.sndUna {
			c.rtxAcked++
		}
		c.dupacks = 0
		if c.inRecovery && c.sndUna >= c.recover {
			c.exitRecovery()
		}
		c.resetTimer()
	case p.AckNo == c.sndUna && c.sndMax > c.sndUna:
		c.dupacks++
		if !c.inRecovery && (c.dupacks >= 3 || c.sb.SackedCount() >= 3) {
			c.enterRecovery(now)
		} else if !c.inRecovery && c.cfg.LimitedTransmit && c.dupacks <= 2 && c.sndNxt < c.dataLimit() {
			// RFC 3042: each of the first two dupacks releases one new
			// segment beyond the window.
			seq := c.sndNxt
			c.sndNxt++
			c.sendSeg(seq)
		}
	}

	c.cc.OnAck(c, newly, sample, p)

	if c.cfg.TotalSegs > 0 && c.sndUna >= c.cfg.TotalSegs {
		c.complete(now)
		return
	}
	c.trySend()
}

// complete finishes a bounded transfer.
func (c *Conn) complete(now sim.Time) {
	c.Close()
	if c.cfg.OnComplete != nil {
		c.cfg.OnComplete(now)
	}
}

// Retransmission timer management.

func (c *Conn) armTimerIfNeeded() {
	if !c.rtxTimer.Scheduled() {
		c.rtxTimer.ResetAfter(c.rtt.RTO())
	}
}

func (c *Conn) resetTimer() {
	if c.sndMax > c.sndUna {
		c.rtxTimer.ResetAfter(c.rtt.RTO())
	} else {
		c.rtxTimer.Stop()
	}
}

// onRTO handles a retransmission timeout: collapse the window, discard SACK
// state (conservatively, as ns-2 does), and go back to the cumulative ACK
// point.
func (c *Conn) onRTO() {
	if c.completed || c.sndMax <= c.sndUna {
		return
	}
	c.Stats.RTOs++
	c.rtt.Backoff()
	c.cc.OnRTO(c)
	c.sb.Reset()
	c.inRecovery = false
	c.rtxList = c.rtxList[:0]
	c.rtxAcked = 0
	c.dupacks = 0
	c.sndNxt = c.sndUna
	if c.cfg.OnLoss != nil {
		c.cfg.OnLoss(c.eng.Now(), LossTimeout)
	}
	c.rtxTimer.ResetAfter(c.rtt.RTO())
	c.trySend()
}
