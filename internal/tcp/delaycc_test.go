package tcp

import (
	"testing"

	"pert/internal/sim"
)

// runCC drives three flows of a controller and reports steady-state queue,
// drops and utilization on a BDP-buffered dumbbell.
func runCC(t *testing.T, seed int64, mk func() CongestionControl) (avgQ float64, drops uint64, util float64) {
	t.Helper()
	eng, d := testbed(t, seed, 20e6, 60*sim.Millisecond, 3, 0)
	for i := 0; i < 3; i++ {
		f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, mk(), Config{})
		f.Start(sim.Time(i) * 300 * sim.Millisecond)
	}
	eng.Run(10 * sim.Second)
	drops0 := d.Forward.Stats.Drops
	tx0 := d.Forward.Stats.TxBytes
	var sum float64
	var n int
	eng.Every(eng.Now(), 50*sim.Millisecond, func(sim.Time) {
		sum += float64(d.Forward.Queue.Len())
		n++
	})
	eng.Run(50 * sim.Second)
	return sum / float64(n), d.Forward.Stats.Drops - drops0, d.Forward.Utilization(tx0, 40*sim.Second)
}

func TestDUALKeepsQueueBelowDroptail(t *testing.T) {
	dualQ, _, dualU := runCC(t, 41, func() CongestionControl { return NewDUAL() })
	renoQ, _, _ := runCC(t, 41, func() CongestionControl { return Reno{} })
	if dualQ >= renoQ {
		t.Fatalf("DUAL queue %v >= Reno %v: midpoint rule ineffective", dualQ, renoQ)
	}
	if dualU < 0.85 {
		t.Fatalf("DUAL utilization = %v", dualU)
	}
}

func TestDUALReducesLosses(t *testing.T) {
	_, dualDrops, _ := runCC(t, 42, func() CongestionControl { return NewDUAL() })
	_, renoDrops, _ := runCC(t, 42, func() CongestionControl { return Reno{} })
	if renoDrops == 0 {
		t.Skip("baseline had no drops")
	}
	if dualDrops > renoDrops {
		t.Fatalf("DUAL drops %d > Reno %d", dualDrops, renoDrops)
	}
}

func TestCARDCompletesAndUtilizes(t *testing.T) {
	q, _, util := runCC(t, 43, func() CongestionControl { return NewCARD() })
	if util < 0.7 {
		t.Fatalf("CARD utilization = %v", util)
	}
	if q <= 0 {
		t.Fatalf("CARD queue = %v", q)
	}
}

func TestCARDOscillatesAroundKnee(t *testing.T) {
	// Single CARD flow on an empty link: the window must oscillate (grow
	// then shrink), not grow unboundedly or collapse.
	eng, d := testbed(t, 44, 10e6, 60*sim.Millisecond, 1, 500)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, NewCARD(), Config{})
	f.Start(0)
	eng.Run(10 * sim.Second)
	var minW, maxW = 1e18, 0.0
	eng.Every(eng.Now(), 100*sim.Millisecond, func(sim.Time) {
		w := f.Conn.Cwnd()
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	})
	eng.Run(60 * sim.Second)
	if maxW <= minW {
		t.Fatalf("window did not move: [%v, %v]", minW, maxW)
	}
	// The gradient rule must actually fire multiplicative decreases: the
	// trough must sit well below the peak. (CARD is historically known to
	// miss *stable* standing queues — the gradient is zero there, one of
	// the weaknesses the paper's Figure 3 quantifies — so we assert the
	// mechanism oscillates, not that the queue stays small.)
	if minW > maxW*7.0/8 {
		t.Fatalf("no multiplicative decreases visible: window in [%v, %v]", minW, maxW)
	}
}

func TestDelayCCTransfersComplete(t *testing.T) {
	for name, mk := range map[string]func() CongestionControl{
		"dual": func() CongestionControl { return NewDUAL() },
		"card": func() CongestionControl { return NewCARD() },
	} {
		eng, d := testbed(t, 45, 10e6, 60*sim.Millisecond, 1, 50)
		f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, mk(), Config{TotalSegs: 3000})
		f.Start(0)
		eng.Run(120 * sim.Second)
		if !f.Conn.Completed() {
			t.Fatalf("%s: transfer incomplete", name)
		}
		if f.Sink.UniqueSegs != 3000 {
			t.Fatalf("%s: delivered %d", name, f.Sink.UniqueSegs)
		}
	}
}
