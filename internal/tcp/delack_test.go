package tcp

import (
	"testing"

	"pert/internal/sim"
)

func TestDelAckHalvesAckVolume(t *testing.T) {
	run := func(delack bool) (acks, segs uint64) {
		eng, d := testbed(t, 1, 10e6, 60*sim.Millisecond, 1, 1000)
		f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
			TotalSegs: 1000, DelAck: delack,
		})
		f.Start(0)
		eng.Run(60 * sim.Second)
		if !f.Conn.Completed() {
			t.Fatal("transfer incomplete")
		}
		return f.Sink.AcksSent, f.Sink.UniqueSegs
	}
	acksOn, _ := run(true)
	acksOff, segs := run(false)
	if acksOff != segs {
		t.Fatalf("per-packet acking sent %d acks for %d segments", acksOff, segs)
	}
	// Delayed ACKs should send roughly half as many.
	if acksOn > acksOff*2/3 {
		t.Fatalf("delack sent %d acks vs %d without", acksOn, acksOff)
	}
	if acksOn < acksOff/3 {
		t.Fatalf("delack sent suspiciously few acks: %d", acksOn)
	}
}

func TestDelAckTimerFlushesLoneSegment(t *testing.T) {
	// A single segment with nothing following must still get acked (after
	// the 200 ms delack timeout), or the sender would RTO.
	eng, d := testbed(t, 1, 10e6, 60*sim.Millisecond, 1, 1000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs: 1, DelAck: true, InitialCwnd: 1,
	})
	f.Start(0)
	eng.Run(sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("lone segment never acked")
	}
	if f.Conn.Stats.RTOs != 0 {
		t.Fatalf("delack starvation caused %d RTOs", f.Conn.Stats.RTOs)
	}
}

func TestDelAckImmediateOnOutOfOrder(t *testing.T) {
	// Loss recovery must not be slowed: dupacks fire immediately.
	eng, d, _ := lossyBed(1, 50)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs: 300, DelAck: true,
	})
	f.Start(0)
	eng.Run(30 * sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("did not complete")
	}
	if f.Conn.Stats.RTOs != 0 {
		t.Fatalf("delack delayed dupacks: %d RTOs", f.Conn.Stats.RTOs)
	}
	if f.Conn.Stats.FastRecoveries != 1 {
		t.Fatalf("fast recoveries = %d", f.Conn.Stats.FastRecoveries)
	}
}

func TestDelAckThroughputUnharmed(t *testing.T) {
	run := func(delack bool) uint64 {
		eng, d := testbed(t, 4, 10e6, 60*sim.Millisecond, 1, 0)
		f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{DelAck: delack})
		f.Start(0)
		eng.Run(30 * sim.Second)
		return f.Sink.UniqueSegs
	}
	on, off := run(true), run(false)
	if float64(on) < 0.85*float64(off) {
		t.Fatalf("delack goodput %d vs %d without: too costly", on, off)
	}
}
