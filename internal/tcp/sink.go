package tcp

import (
	"pert/internal/netem"
	"pert/internal/sim"
)

// Sink is a TCP receiver at segment granularity: it reassembles the sequence
// space, returns one cumulative ACK (with up to 3 SACK blocks) per arriving
// data segment, and implements the receiver half of ECN (echoing CE via ECE
// until the sender's CWR arrives). Like ns-2's TCPSink, ACKs are immediate;
// delayed ACKs are not modeled.
type Sink struct {
	node *netem.Node
	net  *netem.Network
	flow int
	peer netem.NodeID

	cum     int64 // next expected segment
	ooo     Scoreboard
	ecnEcho bool

	// Delayed-ACK state (RFC 1122 style: ack every second segment or after
	// DelAckTimeout, immediately on out-of-order data). Disabled by
	// default, matching ns-2's TCPSink. The metadata of the most recent
	// unacked segment is copied rather than the packet retained: data
	// packets go back to the network's free list as soon as Receive
	// returns. The timer is persistent and rearmed in place.
	delAck        bool
	delAckTimeout sim.Duration
	pendingAcks   int
	pendingEcho   ackEcho // echo metadata of the most recent unacked segment
	delAckTimer   *sim.Timer

	// Stats.
	SegsReceived  uint64 // all data segments, including duplicates
	UniqueSegs    uint64 // first-time segments (goodput)
	BytesGoodput  uint64
	AcksSent      uint64
	LastArrival   sim.Time
	payloadPerSeg int
}

// EnableDelAck turns on delayed ACKs with the given timeout (0 selects the
// conventional 200 ms).
func (s *Sink) EnableDelAck(timeout sim.Duration) {
	if timeout == 0 {
		timeout = 200 * sim.Millisecond
	}
	s.delAck = true
	s.delAckTimeout = timeout
}

// ackEcho is the slice of a data segment's metadata an ACK echoes back to
// the sender; the delayed-ACK path copies it so the segment itself need not
// outlive Receive.
type ackEcho struct {
	seq         int64
	sentAt      sim.Time
	retrans     bool
	queueSample float64
	owd         sim.Duration
}

func echoOf(p *netem.Packet) ackEcho {
	return ackEcho{seq: p.Seq, sentAt: p.SentAt, retrans: p.Retrans, queueSample: p.QueueSample, owd: p.OWD}
}

// NewSink creates a receiver for the given flow, attached to node, acking
// back to peer.
func NewSink(net *netem.Network, node *netem.Node, flow int, peer netem.NodeID, payloadPerSeg int) *Sink {
	s := &Sink{node: node, net: net, flow: flow, peer: peer, payloadPerSeg: payloadPerSeg}
	// Node engine, not network engine: the sink's timers belong to the
	// shard owning its node (see netem.Node.Engine).
	s.delAckTimer = node.Engine().NewTimer(s.flushAck)
	node.AttachFlow(flow, s)
	return s
}

// CumAck returns the receiver's next expected segment.
func (s *Sink) CumAck() int64 { return s.cum }

// Node returns the node the sink is attached to. Sharded runners use it to
// find the shard that owns the sink's counters.
func (s *Sink) Node() *netem.Node { return s.node }

// Receive implements netem.Handler for data segments.
func (s *Sink) Receive(p *netem.Packet, now sim.Time) {
	if p.IsAck {
		return // stray; sinks only consume data
	}
	s.SegsReceived++
	s.LastArrival = now

	if p.CE {
		s.ecnEcho = true
	}
	if p.CWR {
		s.ecnEcho = false
		if p.CE { // CE and CWR on the same segment: CE wins for later ACKs
			s.ecnEcho = true
		}
	}

	fresh := false
	advanced := false
	hadGap := s.ooo.SackedCount() > 0
	switch {
	case p.Seq == s.cum:
		fresh = true
		advanced = true
		s.cum++
		// Swallow any contiguous out-of-order run.
		blocks := s.ooo.Blocks()
		if len(blocks) > 0 && blocks[0].Start <= s.cum {
			s.cum = blocks[0].End
		}
		s.ooo.AckedUpTo(s.cum)
	case p.Seq > s.cum:
		if !s.ooo.IsSacked(p.Seq) {
			fresh = true
		}
		s.ooo.Add(netem.SackBlock{Start: p.Seq, End: p.Seq + 1})
	default:
		// Below cum: duplicate of something already delivered.
	}
	if fresh {
		s.UniqueSegs++
		s.BytesGoodput += uint64(s.payloadPerSeg)
	}

	// Delayed ACKs: in-order data may wait for a second segment or the
	// timer; out-of-order or duplicate data is acked immediately (fast
	// retransmit depends on prompt duplicate ACKs).
	// An ACK that fills a gap must go out immediately (RFC 5681), as must
	// duplicate ACKs for out-of-order data.
	inOrder := advanced && !hadGap
	if s.delAck && inOrder {
		s.pendingAcks++
		s.pendingEcho = echoOf(p)
		if s.pendingAcks < 2 {
			if !s.delAckTimer.Scheduled() {
				s.delAckTimer.ResetAfter(s.delAckTimeout)
			}
			return
		}
	}
	s.sendAck(echoOf(p))
}

// flushAck fires the delayed-ACK timer.
func (s *Sink) flushAck() {
	if s.pendingAcks == 0 {
		return
	}
	s.sendAck(s.pendingEcho)
}

// sendAck emits a cumulative ACK echoing the given data segment's metadata.
// The ACK is drawn from the network's packet pool and its SACK blocks live
// in the packet's inline array, so a steady ACK stream allocates nothing.
func (s *Sink) sendAck(m ackEcho) {
	s.pendingAcks = 0
	s.delAckTimer.Stop()
	ack := s.node.NewPacket()
	ack.Flow = s.flow
	ack.Src = s.node.ID
	ack.Dst = s.peer
	ack.Size = ackSize
	ack.IsAck = true
	ack.AckNo = s.cum
	ack.Echo = m.sentAt
	ack.ECE = s.ecnEcho
	ack.Retrans = m.retrans         // propagate so the sender can apply Karn's rule
	ack.QueueSample = m.queueSample // echo instrumentation back to the sender
	ack.OWD = m.owd                 // echo any measured forward one-way delay
	// Advertise up to 3 SACK blocks; the block containing the segment that
	// just arrived goes first, per RFC 2018.
	blocks := s.ooo.Blocks()
	if len(blocks) > 0 {
		ack.ResetSack()
		first := -1
		for i, b := range blocks {
			if m.seq >= b.Start && m.seq < b.End {
				first = i
				break
			}
		}
		if first >= 0 {
			ack.Sack = append(ack.Sack, blocks[first])
		}
		for i := len(blocks) - 1; i >= 0 && len(ack.Sack) < netem.MaxSackBlocks; i-- {
			if i != first {
				ack.Sack = append(ack.Sack, blocks[i])
			}
		}
	}
	s.AcksSent++
	s.net.SendFrom(s.node, ack)
}

// Close detaches the sink from its node.
func (s *Sink) Close() { s.node.DetachFlow(s.flow) }

// SinkAcceptor lazily creates receive-side Sinks for flows whose sender
// lives in another shard domain. A generator starting a connection mid-run
// cannot attach the Sink to a remote node directly — that would mutate the
// destination shard's demux table and engine from the sender's goroutine —
// so instead the destination node carries an acceptor: when the first data
// segment of an unknown flow arrives, the acceptor builds the Sink on the
// arrival goroutine, domain-locally, and the node re-dispatches the segment
// to it.
//
// Accepted sinks are never detached. Closing them from the sender's
// completion callback would be the same cross-domain race in reverse, and a
// self-closing sink can deadlock a flow whose final ACK is lost. The cost is
// one idle Sink per completed accepted flow, bounded by the number of
// transfers in the run.
type SinkAcceptor struct {
	net     *netem.Network
	node    *netem.Node
	payload int
	delAck  bool

	// Accepted counts sinks created, exported for tests.
	Accepted uint64
}

// AcceptSinks installs a SinkAcceptor on node (idempotent: a second call
// with the same payload/delAck configuration returns the existing acceptor;
// a conflicting configuration panics, since one node cannot sort arriving
// flows by which generator meant them). Call before the run starts.
func AcceptSinks(net *netem.Network, node *netem.Node, payload int, delAck bool) *SinkAcceptor {
	if payload <= 0 {
		payload = DefaultPayload
	}
	if owner := node.ListenerOwner(); owner != nil {
		a, ok := owner.(*SinkAcceptor)
		if !ok {
			panic("tcp: node already has a non-acceptor listener")
		}
		if a.payload != payload || a.delAck != delAck {
			panic("tcp: conflicting AcceptSinks configurations on one node")
		}
		return a
	}
	a := &SinkAcceptor{net: net, node: node, payload: payload, delAck: delAck}
	node.SetListener(a.accept, a)
	return a
}

// accept builds the Sink for a newly seen flow; the node re-dispatches the
// triggering segment immediately after.
func (a *SinkAcceptor) accept(p *netem.Packet, _ sim.Time) {
	s := NewSink(a.net, a.node, p.Flow, p.Src, a.payload)
	if a.delAck {
		s.EnableDelAck(0)
	}
	a.Accepted++
}
