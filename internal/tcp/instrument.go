package tcp

import (
	"math"

	"pert/internal/obs"
)

// InstrumentConn registers the per-flow time series the paper's figures are
// built from on reg, all named <prefix>.<field>:
//
//	cwnd      congestion window, segments
//	ssthresh  slow-start threshold, segments (suppressed while unset/huge)
//	srtt      smoothed RTT estimate, seconds (suppressed before first sample)
//	state     0 = open, 1 = loss recovery
//	retrans   cumulative retransmitted segments
//	pert.qdelay / pert.prob  (PERT senders only) perceived queueing delay in
//	          seconds and response-curve probability, via PERT.Probe
//
// Everything is registered as pull-style gauges reading live connection
// state at sampling ticks, so an uninstrumented connection carries zero
// observability cost.
func InstrumentConn(reg *obs.Registry, c *Conn, prefix string) {
	if reg == nil || c == nil {
		return
	}
	reg.GaugeFunc(prefix+".cwnd", func() float64 { return c.Cwnd() })
	reg.GaugeFunc(prefix+".ssthresh", func() float64 {
		// The initial "unbounded" threshold is noise on a plot; suppress it
		// until the first window reduction sets a real value.
		if v := c.Ssthresh(); v < c.cfg.MaxCwnd {
			return v
		}
		return math.NaN()
	})
	reg.GaugeFunc(prefix+".srtt", func() float64 {
		est := c.RTT()
		if est == nil || est.SRTT == 0 {
			return math.NaN()
		}
		return est.SRTT.Seconds()
	})
	reg.GaugeFunc(prefix+".state", func() float64 {
		if c.InRecovery() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc(prefix+".retrans", func() float64 { return float64(c.Stats.Retransmits) })

	if pert, ok := c.cc.(*PERT); ok {
		reg.GaugeFunc(prefix+".pert.qdelay", func() float64 {
			qd, _, ok := pert.Probe()
			if !ok {
				return math.NaN()
			}
			return qd
		})
		reg.GaugeFunc(prefix+".pert.prob", func() float64 {
			_, p, ok := pert.Probe()
			if !ok {
				return math.NaN()
			}
			return p
		})
	}
}
