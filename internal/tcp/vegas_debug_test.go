package tcp

import (
	"testing"

	"pert/internal/sim"
)

func TestVegasDebugTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug trace; run with -v")
	}
	eng, d := testbed(t, 5, 10e6, 60*sim.Millisecond, 1, 500)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, NewVegas(), Config{})
	f.Start(0)
	v := f.Conn.cc.(*Vegas)
	eng.Every(0, sim.Second, func(now sim.Time) {
		t.Logf("t=%v cwnd=%.1f ss=%v grow=%v minRTT=%v srtt=%v q=%d drops=%d rtos=%d fr=%d una=%d",
			now, f.Conn.Cwnd(), v.slowStart, v.growEpoch, f.Conn.RTT().Min, f.Conn.RTT().SRTT,
			d.Forward.Queue.Len(), d.Forward.Stats.Drops, f.Conn.Stats.RTOs, f.Conn.Stats.FastRecoveries, f.Conn.SndUna())
	})
	eng.Run(20 * sim.Second)
}
