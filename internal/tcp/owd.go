package tcp

import (
	"pert/internal/netem"
	"pert/internal/sim"
)

// One-way-delay support (the paper's Section 7): round-trip time conflates
// forward and reverse queueing, so reverse-path congestion can trigger PERT's
// early response even when the forward path is clear. The paper notes PERT
// "can be used with one-way delays to achieve similar benefits", citing
// TCP-LP and Sync-TCP for OWD estimation techniques.
//
// In the simulator both endpoints share the virtual clock, so the receiver
// measures the forward one-way delay exactly as OWD = arrival - SentAt and
// echoes it on the ACK; a real implementation would substitute the
// clock-offset-tolerant estimators of [20]/[31], which track *changes* in
// OWD and therefore need no synchronization for PERT's purposes (the signal
// is OWD minus its observed minimum).

// owdSink wraps the standard Sink to stamp the measured forward one-way
// delay onto each data segment before the Sink builds the ACK (which echoes
// the packet's OWD field back to the sender).
type owdSink struct {
	*Sink
}

// Receive implements netem.Handler: measure, then delegate.
func (s owdSink) Receive(p *netem.Packet, now sim.Time) {
	if !p.IsAck {
		p.OWD = now - p.SentAt
	}
	s.Sink.Receive(p, now)
}

// NewOWDFlow wires a sender and an OWD-measuring sink: ACKs carry the
// forward one-way delay of the segment they acknowledge, and the sender's
// OnOWDSample (if set in cfg) observes it. Combine with a PERT controller
// whose responder consumes OWD samples (see PERTOWD).
func NewOWDFlow(net *netem.Network, src, dst *netem.Node, flow int, cc CongestionControl, cfg Config) *Flow {
	c := NewConn(net, src, dst.ID, flow, cc, cfg)
	s := NewSink(net, dst, flow, src.ID, c.cfg.Payload)
	dst.AttachFlow(flow, owdSink{s})
	return &Flow{Conn: c, Sink: s}
}
