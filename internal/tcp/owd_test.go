package tcp

import (
	"testing"

	"pert/internal/sim"
)

func TestOWDFlowMeasuresForwardDelayOnly(t *testing.T) {
	eng, d := testbed(t, 1, 10e6, 60*sim.Millisecond, 1, 1000)
	cc := NewPERTRed()
	cc.UseOWD = true
	f := NewOWDFlow(d.Net, d.Left[0], d.Right[0], 1, cc, Config{})
	f.Start(0)
	eng.Run(5 * sim.Second)
	sig := cc.Responder.Signal()
	if !sig.Ready() {
		t.Fatal("OWD signal never fed")
	}
	// Forward one-way propagation is ~30 ms; the signal's minimum must be
	// near that, not near the 60 ms RTT.
	p := sig.PropDelay()
	if p < 25*sim.Millisecond || p > 40*sim.Millisecond {
		t.Fatalf("OWD propagation estimate = %v, want ~30 ms", p)
	}
}

// TestOWDIgnoresReverseCongestion is the Section 7 claim: with reverse-path
// congestion, RTT-based PERT responds to queueing its own packets never
// experience, while OWD-based PERT does not.
func TestOWDIgnoresReverseCongestion(t *testing.T) {
	run := func(useOWD bool) (early uint64, goodput uint64) {
		eng, d := testbed(t, 9, 10e6, 60*sim.Millisecond, 3, 0)
		cc := NewPERTRed()
		cc.UseOWD = useOWD
		var f *Flow
		if useOWD {
			f = NewOWDFlow(d.Net, d.Left[0], d.Right[0], 1, cc, Config{})
		} else {
			f = NewFlow(d.Net, d.Left[0], d.Right[0], 1, cc, Config{})
		}
		f.Start(0)
		// Two Reno flows congest the REVERSE path only.
		for i := 1; i < 3; i++ {
			r := NewFlow(d.Net, d.Right[i], d.Left[i], i+1, Reno{}, Config{})
			r.Start(0)
		}
		eng.Run(40 * sim.Second)
		return f.Conn.Stats.EarlyResponses, f.Sink.UniqueSegs
	}
	rttEarly, rttGoodput := run(false)
	owdEarly, owdGoodput := run(true)
	if rttEarly == 0 {
		t.Fatal("premise: RTT-based PERT should respond to reverse congestion")
	}
	if owdEarly >= rttEarly/2 {
		t.Fatalf("OWD variant responded %d times vs RTT's %d: reverse congestion not excluded", owdEarly, rttEarly)
	}
	if owdGoodput <= rttGoodput {
		t.Fatalf("OWD goodput %d <= RTT goodput %d: no benefit from ignoring reverse congestion", owdGoodput, rttGoodput)
	}
}

func TestOWDStillRespondsToForwardCongestion(t *testing.T) {
	eng, d := testbed(t, 10, 10e6, 60*sim.Millisecond, 3, 0)
	var flows []*Flow
	for i := 0; i < 3; i++ {
		cc := NewPERTRed()
		cc.UseOWD = true
		f := NewOWDFlow(d.Net, d.Left[i], d.Right[i], i+1, cc, Config{})
		f.Start(sim.Time(i) * 100 * sim.Millisecond)
		flows = append(flows, f)
	}
	eng.Run(10 * sim.Second) // slow-start convergence transient
	drops0 := d.Forward.Stats.Drops
	eng.Run(40 * sim.Second)
	var early uint64
	for _, f := range flows {
		early += f.Conn.Stats.EarlyResponses
	}
	if early == 0 {
		t.Fatal("OWD PERT never responded to genuine forward congestion")
	}
	if got := d.Forward.Stats.Drops - drops0; got > 20 {
		t.Fatalf("OWD PERT allowed %d steady-state forward drops", got)
	}
}
