package tcp

import (
	"testing"

	"pert/internal/core"
	"pert/internal/sim"
)

// runVariant drives three flows of the given PERT flavor over a DropTail
// dumbbell and returns steady-state queue, drops, and utilization.
func runVariant(t *testing.T, seed int64, build func(c *Conn) core.Responder) (avgQ float64, drops uint64, util float64) {
	t.Helper()
	eng, d := testbed(t, seed, 20e6, 60*sim.Millisecond, 3, 0)
	for i := 0; i < 3; i++ {
		f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, NewPERTLazy(build), Config{})
		f.Start(sim.Time(i) * 200 * sim.Millisecond)
	}
	eng.Run(10 * sim.Second)
	drops0 := d.Forward.Stats.Drops
	tx0 := d.Forward.Stats.TxBytes
	var sum float64
	var n int
	eng.Every(eng.Now(), 50*sim.Millisecond, func(sim.Time) {
		sum += float64(d.Forward.Queue.Len())
		n++
	})
	eng.Run(50 * sim.Second)
	return sum / float64(n), d.Forward.Stats.Drops - drops0, d.Forward.Utilization(tx0, 40*sim.Second)
}

func TestREMVariantEndToEnd(t *testing.T) {
	q, drops, util := runVariant(t, 31, func(c *Conn) core.Responder {
		return core.NewREMResponder(c.Engine().Rand(), 0, 0, 3*sim.Millisecond)
	})
	if drops > 20 {
		t.Fatalf("PERT/REM steady-state drops = %d", drops)
	}
	if util < 0.8 {
		t.Fatalf("PERT/REM utilization = %v", util)
	}
	if q > 60 {
		t.Fatalf("PERT/REM queue = %v packets", q)
	}
}

func TestAdaptiveVariantEndToEnd(t *testing.T) {
	q, drops, util := runVariant(t, 32, func(c *Conn) core.Responder {
		return core.NewAdaptiveResponder(c.Engine().Rand())
	})
	if util < 0.8 {
		t.Fatalf("adaptive PERT utilization = %v", util)
	}
	// The escalating spacing trades a somewhat longer queue for fewer
	// responses; it must still avoid sustained loss.
	if drops > 100 {
		t.Fatalf("adaptive PERT steady-state drops = %d", drops)
	}
	_ = q
}

func TestVariantsComparableToStandardPERT(t *testing.T) {
	qStd, dropsStd, utilStd := runVariant(t, 33, func(c *Conn) core.Responder {
		return core.NewREDResponder(c.Engine().Rand())
	})
	if dropsStd > 20 || utilStd < 0.8 {
		t.Fatalf("standard PERT baseline off: drops=%d util=%v", dropsStd, utilStd)
	}
	qREM, _, _ := runVariant(t, 33, func(c *Conn) core.Responder {
		return core.NewREMResponder(c.Engine().Rand(), 0, 0, 3*sim.Millisecond)
	})
	// Same order of magnitude of queueing: both are delay-targeting.
	if qREM > 10*qStd+20 {
		t.Fatalf("REM queue %v wildly above RED emulation %v", qREM, qStd)
	}
}
