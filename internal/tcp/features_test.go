package tcp

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

func TestLimitedTransmitAvoidsRTOAtSmallWindow(t *testing.T) {
	// Window of ~4 segments with one drop: without limited transmit there
	// are too few dupacks to trigger fast retransmit and the sender RTOs;
	// with it, new segments keep the ACK clock alive.
	run := func(lt bool) (rtos, frs uint64) {
		eng := sim.NewEngine(1)
		net := netem.NewNetwork(eng)
		dropped := false
		a, b := net.AddNode(), net.AddNode()
		q := func() netem.Discipline { return &sinkTail{} }
		net.AddLink(a, b, 1e9, 30*sim.Millisecond, dropFunc{q(), func(p *netem.Packet) bool {
			if !p.IsAck && !p.Retrans && p.Seq == 20 && !dropped {
				dropped = true
				return true
			}
			return false
		}})
		net.AddLink(b, a, 1e9, 30*sim.Millisecond, q())
		net.ComputeRoutes()
		f := NewFlow(net, a, b, 1, Reno{}, Config{
			MaxCwnd:         3, // receiver-limited: too few dupacks without RFC 3042
			LimitedTransmit: lt,
			TotalSegs:       60,
		})
		f.Start(0)
		eng.Run(30 * sim.Second)
		if !f.Conn.Completed() {
			t.Fatalf("lt=%v: transfer incomplete", lt)
		}
		return f.Conn.Stats.RTOs, f.Conn.Stats.FastRecoveries
	}
	rtosOff, _ := run(false)
	rtosOn, frsOn := run(true)
	if rtosOff == 0 {
		t.Skip("baseline did not RTO; topology premise broken")
	}
	if rtosOn != 0 {
		t.Fatalf("limited transmit still hit %d RTOs", rtosOn)
	}
	if frsOn != 1 {
		t.Fatalf("limited transmit: fast recoveries = %d", frsOn)
	}
}

func TestSlowStartRestartCollapsesIdleWindow(t *testing.T) {
	eng, d := testbed(t, 2, 10e6, 60*sim.Millisecond, 1, 1000)
	// Application-limited: send 200 segments, go idle, then more. Model by
	// two bounded transfers on one connection is not supported; instead
	// use an unbounded flow and verify via direct state: grow the window,
	// drain, idle past RTO, and check the next trySend collapses cwnd.
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		SlowStartRestart: true,
		TotalSegs:        200,
	})
	f.Start(0)
	eng.Run(30 * sim.Second) // transfer completes; window ended large
	if !f.Conn.Completed() {
		t.Fatal("transfer incomplete")
	}

	// Second connection pattern: bursty application via web-like reuse is
	// modeled by a fresh conn; here verify the state transition directly.
	f2 := NewFlow(d.Net, d.Left[0], d.Right[0], 2, Reno{}, Config{SlowStartRestart: true})
	f2.Start(eng.Now())
	eng.Run(eng.Now() + 5*sim.Second)
	grown := f2.Conn.Cwnd()
	if grown < 10 {
		t.Fatalf("premise: window did not grow (%v)", grown)
	}
	// Let everything drain (stop acking by detaching the sink), wait far
	// beyond the RTO, then reattach and send.
	f2.Sink.Close()
	eng.Run(eng.Now() + 10*sim.Second)
	// All in-flight data is lost with the sink gone; RTOs collapse cwnd
	// anyway in that case. Use conn with nothing outstanding instead:
	if f2.Conn.Cwnd() > grown {
		t.Fatalf("window grew while starved: %v", f2.Conn.Cwnd())
	}
}

func TestSlowStartRestartStateRule(t *testing.T) {
	// Unit-level check of the restart rule itself.
	eng, d := testbed(t, 3, 10e6, 60*sim.Millisecond, 1, 1000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		SlowStartRestart: true, TotalSegs: 300,
	})
	f.Start(0)
	eng.Run(20 * sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("incomplete")
	}
	c := f.Conn
	c.SetCwnd(40)
	c.completed = false // re-open for the rule check
	c.lastTx = eng.Now()
	eng.Run(eng.Now() + 10*sim.Second) // idle >> RTO
	c.maybeSlowStartRestart()
	if c.Cwnd() != c.cfg.InitialCwnd {
		t.Fatalf("cwnd = %v after idle, want initial %v", c.Cwnd(), c.cfg.InitialCwnd)
	}
	if c.Ssthresh() != 40 {
		t.Fatalf("ssthresh = %v, want previous cwnd", c.Ssthresh())
	}
}

func TestSlowStartRestartDisabledByDefault(t *testing.T) {
	eng, d := testbed(t, 4, 10e6, 60*sim.Millisecond, 1, 1000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{TotalSegs: 300})
	f.Start(0)
	eng.Run(20 * sim.Second)
	c := f.Conn
	c.SetCwnd(40)
	c.lastTx = eng.Now()
	eng.Run(eng.Now() + 10*sim.Second)
	c.maybeSlowStartRestart()
	if c.Cwnd() != 40 {
		t.Fatalf("restart applied despite being disabled: cwnd = %v", c.Cwnd())
	}
}
