package tcp

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

// ackCatcher builds a 2-node network where the test plays the sender and
// inspects every ACK the sink returns.
type ackCatcher struct {
	acks []*netem.Packet
}

func (a *ackCatcher) Receive(p *netem.Packet, _ sim.Time) {
	if p.IsAck {
		a.acks = append(a.acks, p)
	}
}

func sinkBed(t *testing.T) (*sim.Engine, *netem.Network, *netem.Node, *Sink, *ackCatcher) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	q := func() netem.Discipline { return &sinkTail{} }
	net.AddDuplexLink(a, b, 1e9, sim.Millisecond, q(), q())
	net.ComputeRoutes()
	catcher := &ackCatcher{}
	a.AttachFlow(1, catcher)
	s := NewSink(net, b, 1, a.ID, 1000)
	return eng, net, a, s, catcher
}

// sinkTail is an unbounded FIFO for test links.
type sinkTail struct {
	pkts  []*netem.Packet
	bytes int
}

func (t *sinkTail) Enqueue(p *netem.Packet, _ sim.Time) bool {
	t.pkts = append(t.pkts, p)
	t.bytes += p.Size
	return true
}
func (t *sinkTail) Dequeue(_ sim.Time) *netem.Packet {
	if len(t.pkts) == 0 {
		return nil
	}
	p := t.pkts[0]
	t.pkts = t.pkts[1:]
	t.bytes -= p.Size
	return p
}
func (t *sinkTail) Len() int   { return len(t.pkts) }
func (t *sinkTail) Bytes() int { return t.bytes }

func seg(net *netem.Network, a *netem.Node, seq int64) *netem.Packet {
	return &netem.Packet{
		ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: netem.NodeID(1),
		Size: 1040, Seq: seq, SentAt: net.Engine().Now(), QueueSample: -1,
	}
}

func TestSinkCumulativeAck(t *testing.T) {
	eng, net, a, s, catcher := sinkBed(t)
	for i := int64(0); i < 3; i++ {
		net.SendFrom(a, seg(net, a, i))
	}
	eng.Run(sim.Second)
	if s.CumAck() != 3 {
		t.Fatalf("cum = %d", s.CumAck())
	}
	if len(catcher.acks) != 3 {
		t.Fatalf("acks = %d", len(catcher.acks))
	}
	for i, ack := range catcher.acks {
		if ack.AckNo != int64(i+1) {
			t.Fatalf("ack %d carries %d", i, ack.AckNo)
		}
		if len(ack.Sack) != 0 {
			t.Fatalf("in-order ack %d carries SACK %v", i, ack.Sack)
		}
	}
	if s.UniqueSegs != 3 || s.BytesGoodput != 3000 {
		t.Fatalf("goodput: %d segs %d bytes", s.UniqueSegs, s.BytesGoodput)
	}
}

func TestSinkOutOfOrderSack(t *testing.T) {
	eng, net, a, s, catcher := sinkBed(t)
	net.SendFrom(a, seg(net, a, 0))
	net.SendFrom(a, seg(net, a, 2)) // hole at 1
	net.SendFrom(a, seg(net, a, 4)) // hole at 3
	eng.Run(sim.Second)
	if s.CumAck() != 1 {
		t.Fatalf("cum = %d", s.CumAck())
	}
	last := catcher.acks[len(catcher.acks)-1]
	if last.AckNo != 1 {
		t.Fatalf("dup ack carries %d", last.AckNo)
	}
	if len(last.Sack) != 2 {
		t.Fatalf("sack blocks = %v", last.Sack)
	}
	// Most recent block ([4,5)) first per RFC 2018.
	if last.Sack[0] != (netem.SackBlock{Start: 4, End: 5}) {
		t.Fatalf("first block = %v", last.Sack[0])
	}
	// Filling the first hole advances cum through the contiguous run.
	net.SendFrom(a, seg(net, a, 1))
	eng.Run(eng.Now() + sim.Second)
	if s.CumAck() != 3 {
		t.Fatalf("cum after fill = %d", s.CumAck())
	}
	// Duplicate delivery does not recount goodput.
	before := s.UniqueSegs
	net.SendFrom(a, seg(net, a, 2))
	eng.Run(eng.Now() + sim.Second)
	if s.UniqueSegs != before {
		t.Fatal("duplicate counted as goodput")
	}
}

func TestSinkEchoesTimestampAndQueueSample(t *testing.T) {
	eng, net, a, _, catcher := sinkBed(t)
	p := seg(net, a, 0)
	p.SentAt = 123 * sim.Millisecond
	p.QueueSample = 0.42
	net.SendFrom(a, p)
	eng.Run(sim.Second)
	ack := catcher.acks[0]
	if ack.Echo != 123*sim.Millisecond {
		t.Fatalf("echo = %v", ack.Echo)
	}
	if ack.QueueSample != 0.42 {
		t.Fatalf("queue sample = %v", ack.QueueSample)
	}
}

func TestSinkECNEchoPersistsUntilCWR(t *testing.T) {
	eng, net, a, _, catcher := sinkBed(t)
	p := seg(net, a, 0)
	p.CE = true
	net.SendFrom(a, p)
	net.SendFrom(a, seg(net, a, 1)) // no CE: ECE must persist
	eng.Run(sim.Second)
	if !catcher.acks[0].ECE || !catcher.acks[1].ECE {
		t.Fatal("ECE not echoed persistently")
	}
	// CWR clears the echo.
	cwr := seg(net, a, 2)
	cwr.CWR = true
	net.SendFrom(a, cwr)
	net.SendFrom(a, seg(net, a, 3))
	eng.Run(eng.Now() + sim.Second)
	if catcher.acks[2].ECE || catcher.acks[3].ECE {
		t.Fatal("ECE survived CWR")
	}
}

func TestSinkRetransFlagPropagates(t *testing.T) {
	eng, net, a, _, catcher := sinkBed(t)
	p := seg(net, a, 0)
	p.Retrans = true
	net.SendFrom(a, p)
	eng.Run(sim.Second)
	if !catcher.acks[0].Retrans {
		t.Fatal("Karn flag lost")
	}
}

func TestSinkIgnoresStrayAcks(t *testing.T) {
	eng, net, a, s, _ := sinkBed(t)
	ack := &netem.Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: 1, Size: 40, IsAck: true, AckNo: 99}
	net.SendFrom(a, ack)
	eng.Run(sim.Second)
	if s.CumAck() != 0 || s.SegsReceived != 0 {
		t.Fatal("sink consumed a stray ACK")
	}
}
