package tcp

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/topo"
)

// testbed builds a dumbbell with the given bottleneck and returns it.
func testbed(t *testing.T, seed int64, bw float64, rtt sim.Duration, hosts, buf int) (*sim.Engine, *topo.Dumbbell) {
	t.Helper()
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth:  bw,
		Delay:      rtt / 3, // some delay at the bottleneck, rest on access
		Hosts:      hosts,
		RTTs:       []sim.Duration{rtt},
		BufferPkts: buf,
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	return eng, d
}

func TestSingleFlowCleanTransfer(t *testing.T) {
	eng, d := testbed(t, 1, 10e6, 60*sim.Millisecond, 1, 1000)
	done := sim.Time(0)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs:  200,
		OnComplete: func(now sim.Time) { done = now },
	})
	f.Start(0)
	eng.Run(60 * sim.Second)

	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	if f.Conn.Stats.Retransmits != 0 {
		t.Fatalf("clean path retransmitted %d segments", f.Conn.Stats.Retransmits)
	}
	if f.Sink.UniqueSegs != 200 {
		t.Fatalf("sink got %d unique segments", f.Sink.UniqueSegs)
	}
	if got := f.Conn.RTT().Min; got < 60*sim.Millisecond || got > 70*sim.Millisecond {
		t.Fatalf("min RTT = %v, want ~60 ms + serialization", got)
	}
	// 200 segs of 1000 B at 10 Mbps is ~0.17 s of serialization; with slow
	// start the transfer must finish within a couple of seconds.
	if done > 5*sim.Second {
		t.Fatalf("transfer took %v", done)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	eng, d := testbed(t, 1, 100e6, 100*sim.Millisecond, 1, 10000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{})
	f.Start(0)
	// After ~3 RTTs of slow start from IW=2 the window should be >= 8.
	eng.Run(400 * sim.Millisecond)
	if f.Conn.Cwnd() < 8 {
		t.Fatalf("cwnd = %v after 4 RTTs of slow start", f.Conn.Cwnd())
	}
}

func TestUtilizationHighWithSingleFlow(t *testing.T) {
	eng, d := testbed(t, 1, 10e6, 40*sim.Millisecond, 1, 100)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{})
	f.Start(0)
	eng.Run(5 * sim.Second)
	start := d.Forward.Stats.TxBytes
	eng.Run(25 * sim.Second)
	u := d.Forward.Utilization(start, 20*sim.Second)
	if u < 0.85 {
		t.Fatalf("bottleneck utilization = %v, want >= 0.85", u)
	}
	if f.Conn.Stats.RTOs != 0 {
		t.Fatalf("steady AIMD hit %d RTOs", f.Conn.Stats.RTOs)
	}
}

func TestLossRecoveryViaSack(t *testing.T) {
	// Tiny buffer forces overflow during slow start; SACK recovery must
	// retransmit without an RTO and the transfer must complete.
	eng, d := testbed(t, 1, 5e6, 60*sim.Millisecond, 1, 10)
	var losses int
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs: 2000,
		OnLoss:    func(_ sim.Time, k LossKind) { losses++ },
	})
	f.Start(0)
	eng.Run(60 * sim.Second)

	if !f.Conn.Completed() {
		t.Fatal("transfer did not complete despite SACK recovery")
	}
	if d.Forward.Stats.Drops == 0 {
		t.Fatal("test premise broken: no drops at 10-packet buffer")
	}
	if f.Conn.Stats.FastRecoveries == 0 {
		t.Fatal("drops never triggered fast recovery")
	}
	if losses == 0 {
		t.Fatal("OnLoss hook never fired")
	}
	if f.Sink.UniqueSegs != 2000 {
		t.Fatalf("sink got %d unique segments", f.Sink.UniqueSegs)
	}
}

func TestFastRecoveryAvoidsRTOMostly(t *testing.T) {
	eng, d := testbed(t, 2, 10e6, 60*sim.Millisecond, 1, 30)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{})
	f.Start(0)
	eng.Run(60 * sim.Second)
	if f.Conn.Stats.FastRecoveries < 5 {
		t.Fatalf("only %d fast recoveries in 60 s of sawtooth", f.Conn.Stats.FastRecoveries)
	}
	// SACK should keep timeouts rare relative to recoveries.
	if f.Conn.Stats.RTOs > f.Conn.Stats.FastRecoveries/2 {
		t.Fatalf("RTOs %d vs recoveries %d: SACK recovery not effective",
			f.Conn.Stats.RTOs, f.Conn.Stats.FastRecoveries)
	}
}

// lossy wraps a discipline and deterministically drops the n-th..m-th data
// segments once each, to exercise precise recovery paths.
type lossy struct {
	netem.Discipline
	dropSeqs map[int64]bool
}

func (l *lossy) Enqueue(p *netem.Packet, now sim.Time) bool {
	if !p.IsAck && !p.Retrans && l.dropSeqs[p.Seq] {
		delete(l.dropSeqs, p.Seq)
		return false
	}
	return l.Discipline.Enqueue(p, now)
}

func lossyBed(seed int64, drops ...int64) (*sim.Engine, *topo.Dumbbell, *lossy) {
	eng := sim.NewEngine(seed)
	net := netem.NewNetwork(eng)
	set := map[int64]bool{}
	for _, s := range drops {
		set[s] = true
	}
	var ly *lossy
	first := true
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth:  10e6,
		Delay:      20 * sim.Millisecond,
		Hosts:      1,
		RTTs:       []sim.Duration{60 * sim.Millisecond},
		BufferPkts: 1000,
		Queue: func(limit int, _ float64) netem.Discipline {
			q := netem.Discipline(queue.NewDropTail(limit))
			if first { // instrument only the forward direction
				first = false
				ly = &lossy{Discipline: q, dropSeqs: set}
				return ly
			}
			return q
		},
	})
	return eng, d, ly
}

func TestSingleDropFastRetransmit(t *testing.T) {
	eng, d, _ := lossyBed(1, 50)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{TotalSegs: 500})
	f.Start(0)
	eng.Run(30 * sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("did not complete")
	}
	if f.Conn.Stats.RTOs != 0 {
		t.Fatalf("single drop caused %d RTOs", f.Conn.Stats.RTOs)
	}
	if f.Conn.Stats.FastRecoveries != 1 {
		t.Fatalf("fast recoveries = %d, want 1", f.Conn.Stats.FastRecoveries)
	}
	if f.Conn.Stats.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want exactly 1", f.Conn.Stats.Retransmits)
	}
	if f.Sink.UniqueSegs != 500 {
		t.Fatalf("unique segs = %d", f.Sink.UniqueSegs)
	}
}

func TestBurstDropSackRecovery(t *testing.T) {
	// Drop a burst of 4 segments in one window: SACK should recover all in
	// (usually) one recovery episode without timeout.
	eng, d, _ := lossyBed(1, 60, 62, 64, 66)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{TotalSegs: 500})
	f.Start(0)
	eng.Run(30 * sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("did not complete")
	}
	if f.Conn.Stats.RTOs != 0 {
		t.Fatalf("burst drop caused %d RTOs", f.Conn.Stats.RTOs)
	}
	if f.Conn.Stats.Retransmits != 4 {
		t.Fatalf("retransmits = %d, want 4", f.Conn.Stats.Retransmits)
	}
	if f.Sink.UniqueSegs != 500 {
		t.Fatalf("unique segs = %d", f.Sink.UniqueSegs)
	}
}

func TestRetransmitDropCausesRTOAndStillCompletes(t *testing.T) {
	// Drop segment 10, and when it is retransmitted drop it again via a
	// discipline that kills the first retransmission too.
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	killRetrans := 1
	var first = true
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 10e6, Delay: 20 * sim.Millisecond, Hosts: 1,
		RTTs: []sim.Duration{60 * sim.Millisecond}, BufferPkts: 1000,
		Queue: func(limit int, _ float64) netem.Discipline {
			q := netem.Discipline(queue.NewDropTail(limit))
			if first {
				first = false
				return dropFunc{q, func(p *netem.Packet) bool {
					if p.IsAck || p.Seq != 10 {
						return false
					}
					if !p.Retrans {
						return true // original
					}
					if killRetrans > 0 {
						killRetrans--
						return true
					}
					return false
				}}
			}
			return q
		},
	})
	var rtoSeen, frSeen bool
	f := NewFlow(net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs: 300,
		OnLoss: func(_ sim.Time, k LossKind) {
			if k == LossTimeout {
				rtoSeen = true
			} else {
				frSeen = true
			}
		},
	})
	f.Start(0)
	eng.Run(60 * sim.Second)
	if !f.Conn.Completed() {
		t.Fatal("did not complete after lost retransmission")
	}
	if !frSeen {
		t.Fatal("no fast retransmit")
	}
	if !rtoSeen || f.Conn.Stats.RTOs == 0 {
		t.Fatal("lost retransmission should force an RTO")
	}
	if f.Sink.UniqueSegs != 300 {
		t.Fatalf("unique segs = %d", f.Sink.UniqueSegs)
	}
}

type dropFunc struct {
	netem.Discipline
	drop func(*netem.Packet) bool
}

func (d dropFunc) Enqueue(p *netem.Packet, now sim.Time) bool {
	if d.drop(p) {
		return false
	}
	return d.Discipline.Enqueue(p, now)
}

func TestECNFlowOverREDAvoidsDrops(t *testing.T) {
	eng := sim.NewEngine(3)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 10e6, Delay: 20 * sim.Millisecond, Hosts: 2,
		RTTs: []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, pps float64) netem.Discipline {
			return queue.NewAdaptiveRED(queue.AdaptiveREDConfig{
				Limit: limit, CapacityPPS: pps, ECN: true,
			}, eng.Rand())
		},
	})
	var flows []*Flow
	for i := 0; i < 2; i++ {
		f := NewFlow(net, d.Left[i], d.Right[i], i+1, Reno{}, Config{ECN: true})
		f.Start(sim.Time(i) * 100 * sim.Millisecond)
		flows = append(flows, f)
	}
	// Let slow start's initial overshoot settle, then measure steady state.
	eng.Run(5 * sim.Second)
	arrivals0, drops0 := d.Forward.Stats.Arrivals, d.Forward.Stats.Drops
	eng.Run(35 * sim.Second)
	if d.Forward.Stats.Marks == 0 {
		t.Fatal("RED/ECN never marked")
	}
	var responses uint64
	for _, f := range flows {
		responses += f.Conn.Stats.ECNResponses
	}
	if responses == 0 {
		t.Fatal("senders never responded to ECE")
	}
	arr := d.Forward.Stats.Arrivals - arrivals0
	drops := d.Forward.Stats.Drops - drops0
	if rate := float64(drops) / float64(arr); rate > 0.002 {
		t.Fatalf("steady-state drop rate %v with ECN, want ~0", rate)
	}
}

func TestTwoFlowsFairShare(t *testing.T) {
	eng, d := testbed(t, 4, 10e6, 60*sim.Millisecond, 2, 0)
	f1 := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{})
	f2 := NewFlow(d.Net, d.Left[1], d.Right[1], 2, Reno{}, Config{})
	f1.Start(0)
	f2.Start(sim.Second)
	eng.Run(20 * sim.Second)
	g1, g2 := f1.Sink.UniqueSegs, f2.Sink.UniqueSegs
	eng.Run(80 * sim.Second)
	d1 := float64(f1.Sink.UniqueSegs - g1)
	d2 := float64(f2.Sink.UniqueSegs - g2)
	ratio := d1 / d2
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("long-run share ratio = %v, want near 1", ratio)
	}
}

func TestVegasKeepsQueueSmall(t *testing.T) {
	eng, d := testbed(t, 5, 10e6, 60*sim.Millisecond, 1, 500)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, NewVegas(), Config{})
	f.Start(0)
	eng.Run(10 * sim.Second)
	// Steady state: sample the bottleneck queue over 20 s.
	var sum float64
	var n int
	eng.Every(eng.Now(), 100*sim.Millisecond, func(sim.Time) {
		sum += float64(d.Forward.Queue.Len())
		n++
	})
	eng.Run(30 * sim.Second)
	avgQ := sum / float64(n)
	if avgQ > 10 {
		t.Fatalf("Vegas steady queue = %v packets, want small (alpha..beta band)", avgQ)
	}
	if d.Forward.Stats.Drops != 0 {
		t.Fatalf("Vegas dropped %d packets on an uncontended link", d.Forward.Stats.Drops)
	}
	// And it should still use the link well.
	start := d.Forward.Stats.TxBytes
	eng.Run(40 * sim.Second)
	if u := d.Forward.Utilization(start, 10*sim.Second); u < 0.8 {
		t.Fatalf("Vegas utilization = %v", u)
	}
}

func TestPERTKeepsQueueLowerThanReno(t *testing.T) {
	run := func(cc func() CongestionControl) (avgQ float64, drops uint64) {
		eng, d := testbed(t, 6, 20e6, 60*sim.Millisecond, 4, 0)
		for i := 0; i < 4; i++ {
			f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, cc(), Config{})
			f.Start(sim.Time(i) * 200 * sim.Millisecond)
		}
		eng.Run(10 * sim.Second)
		var sum float64
		var n int
		eng.Every(eng.Now(), 50*sim.Millisecond, func(sim.Time) {
			sum += float64(d.Forward.Queue.Len())
			n++
		})
		dropsBefore := d.Forward.Stats.Drops
		eng.Run(50 * sim.Second)
		return sum / float64(n), d.Forward.Stats.Drops - dropsBefore
	}
	renoQ, renoDrops := run(func() CongestionControl { return Reno{} })
	pertQ, pertDrops := run(func() CongestionControl { return NewPERTRed() })
	if pertQ >= renoQ*0.7 {
		t.Fatalf("PERT avg queue %v vs Reno %v: expected clear reduction", pertQ, renoQ)
	}
	if pertDrops > renoDrops/4 {
		t.Fatalf("PERT drops %d vs Reno %d: expected near-elimination", pertDrops, renoDrops)
	}
}

func TestPERTEarlyResponsesHappen(t *testing.T) {
	eng, d := testbed(t, 7, 10e6, 60*sim.Millisecond, 2, 0)
	var flows []*Flow
	for i := 0; i < 2; i++ {
		f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, NewPERTRed(), Config{})
		f.Start(sim.Time(i) * 100 * sim.Millisecond)
		flows = append(flows, f)
	}
	eng.Run(30 * sim.Second)
	var early uint64
	for _, f := range flows {
		early += f.Conn.Stats.EarlyResponses
	}
	if early == 0 {
		t.Fatal("PERT never responded early on a saturated link")
	}
}

func TestBoundedTransferCompletionDetaches(t *testing.T) {
	eng, d := testbed(t, 8, 10e6, 60*sim.Millisecond, 1, 100)
	completions := 0
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{
		TotalSegs:  10,
		OnComplete: func(sim.Time) { completions++ },
	})
	f.Start(0)
	eng.Run(10 * sim.Second)
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	if !f.Conn.Completed() {
		t.Fatal("conn not marked complete")
	}
	if pend := eng.Pending(); pend != 0 {
		t.Fatalf("%d events still pending after completion (timer leak?)", pend)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		eng, d := testbed(t, 42, 10e6, 60*sim.Millisecond, 3, 0)
		var fs []*Flow
		for i := 0; i < 3; i++ {
			f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, NewPERTRed(), Config{})
			f.Start(sim.Time(i) * 50 * sim.Millisecond)
			fs = append(fs, f)
		}
		eng.Run(20 * sim.Second)
		return fs[0].Sink.UniqueSegs, fs[1].Sink.UniqueSegs, d.Forward.Stats.TxPackets
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, a2, a3, b1, b2, b3)
	}
}

func TestReverseTrafficDoesNotDeadlock(t *testing.T) {
	eng, d := testbed(t, 9, 10e6, 60*sim.Millisecond, 2, 0)
	fwd := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{})
	rev := NewFlow(d.Net, d.Right[1], d.Left[1], 2, Reno{}, Config{})
	fwd.Start(0)
	rev.Start(0)
	eng.Run(30 * sim.Second)
	if fwd.Sink.UniqueSegs == 0 || rev.Sink.UniqueSegs == 0 {
		t.Fatalf("progress: fwd=%d rev=%d", fwd.Sink.UniqueSegs, rev.Sink.UniqueSegs)
	}
}
