package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/sim"
)

// Property: for any pattern of single-shot data drops, a bounded transfer
// always completes, the cumulative ACK point only moves forward, and the
// window never collapses below one segment. This is the recovery machinery's
// robustness contract.
func TestRecoveryCompletesUnderArbitraryDrops(t *testing.T) {
	f := func(dropRaw []uint16, seed int64) bool {
		const total = 400
		drops := map[int64]bool{}
		for _, d := range dropRaw {
			drops[int64(d)%total] = true
		}
		eng := sim.NewEngine(seed)
		net := netem.NewNetwork(eng)
		a, b := net.AddNode(), net.AddNode()
		q := func() netem.Discipline { return &sinkTail{} }
		net.AddLink(a, b, 20e6, 20*sim.Millisecond, dropFunc{q(), func(p *netem.Packet) bool {
			if p.IsAck || p.Retrans {
				return false
			}
			if drops[p.Seq] {
				delete(drops, p.Seq) // drop each listed segment once
				return true
			}
			return false
		}})
		net.AddLink(b, a, 20e6, 20*sim.Millisecond, q())
		net.ComputeRoutes()

		f := NewFlow(net, a, b, 1, Reno{}, Config{TotalSegs: total})
		f.Start(0)
		prevUna := int64(-1)
		bad := false
		eng.Every(0, 10*sim.Millisecond, func(sim.Time) {
			if f.Conn.SndUna() < prevUna {
				bad = true
			}
			prevUna = f.Conn.SndUna()
			if f.Conn.Cwnd() < 1 {
				bad = true
			}
		})
		eng.Run(120 * sim.Second)
		return !bad && f.Conn.Completed() && f.Sink.UniqueSegs == total
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with random ACK loss on the reverse path, the transfer still
// completes (cumulative ACKs make ACK loss recoverable) and the burst cap
// bounds the resulting send bursts.
func TestRecoveryUnderAckLoss(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		p := float64(lossPct%30) / 100 // up to 29% ack loss
		eng := sim.NewEngine(seed)
		net := netem.NewNetwork(eng)
		rng := rand.New(rand.NewSource(seed ^ 0xacc))
		a, b := net.AddNode(), net.AddNode()
		q := func() netem.Discipline { return &sinkTail{} }
		net.AddLink(a, b, 20e6, 20*sim.Millisecond, q())
		net.AddLink(b, a, 20e6, 20*sim.Millisecond, dropFunc{q(), func(pk *netem.Packet) bool {
			return pk.IsAck && rng.Float64() < p
		}})
		net.ComputeRoutes()
		f := NewFlow(net, a, b, 1, Reno{}, Config{TotalSegs: 300})
		f.Start(0)
		eng.Run(180 * sim.Second)
		return f.Conn.Completed() && f.Sink.UniqueSegs == 300
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(18))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
