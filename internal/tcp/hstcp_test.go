package tcp

import (
	"math"
	"testing"

	"pert/internal/sim"
)

func TestHSTCPParameterTables(t *testing.T) {
	h := NewHSTCP()
	// RFC 3649 endpoints.
	if h.b(38) != 0.5 || h.b(10) != 0.5 {
		t.Fatalf("b at low window: %v", h.b(38))
	}
	if got := h.b(83000); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("b at high window: %v", got)
	}
	if h.a(38) != 1 {
		t.Fatalf("a at low window: %v", h.a(38))
	}
	// Hand-computed from the RFC formulas at w=10000: p = 0.078/w^1.2 =
	// 1.236e-6, b = 0.5 - 0.4*0.725 = 0.210, a = w^2*p*2b/(2-b) = 29.0.
	if got := h.a(10000); math.Abs(got-29.0) > 0.5 {
		t.Fatalf("a(10000) = %v, want ~29.0", got)
	}
	if got := h.b(10000); math.Abs(got-0.210) > 0.005 {
		t.Fatalf("b(10000) = %v, want ~0.210", got)
	}
	// Monotonicity: a grows with w, b falls with w.
	prevA, prevB := 0.0, 1.0
	for w := 50.0; w < 90000; w *= 1.7 {
		a, b := h.a(w), h.b(w)
		if a < prevA || b > prevB {
			t.Fatalf("a/b not monotone at w=%v", w)
		}
		prevA, prevB = a, b
	}
}

func TestHSTCPFillsLargeBDPFasterThanReno(t *testing.T) {
	run := func(cc CongestionControl) float64 {
		eng, d := testbed(t, 51, 100e6, 100*sim.Millisecond, 1, 0)
		f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, cc, Config{})
		f.Start(0)
		// Measure utilization over 15-45 s (post slow start, recovering
		// from the first loss).
		eng.Run(15 * sim.Second)
		tx0 := d.Forward.Stats.TxBytes
		eng.Run(45 * sim.Second)
		return d.Forward.Utilization(tx0, 30*sim.Second)
	}
	uReno := run(Reno{})
	uHS := run(NewHSTCP())
	if uHS <= uReno {
		t.Fatalf("HSTCP %v <= Reno %v on a 200 Mbps x 100 ms path", uHS, uReno)
	}
	if uHS < 0.8 {
		t.Fatalf("HSTCP utilization = %v", uHS)
	}
}

func TestPERTOverHSTCPReducesLosses(t *testing.T) {
	// Footnote 1: PERT's early response composes with aggressive loss-based
	// probing. HSTCP alone saws through the buffer; with PERT on top the
	// same growth engine backs off before overflow.
	run := func(cc func() CongestionControl) (drops uint64, util float64) {
		eng, d := testbed(t, 52, 100e6, 100*sim.Millisecond, 2, 0)
		for i := 0; i < 2; i++ {
			f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, cc(), Config{})
			f.Start(sim.Time(i) * 500 * sim.Millisecond)
		}
		eng.Run(15 * sim.Second)
		drops0 := d.Forward.Stats.Drops
		tx0 := d.Forward.Stats.TxBytes
		eng.Run(60 * sim.Second)
		return d.Forward.Stats.Drops - drops0, d.Forward.Utilization(tx0, 45*sim.Second)
	}
	hsDrops, hsUtil := run(func() CongestionControl { return NewHSTCP() })
	pertDrops, pertUtil := run(func() CongestionControl { return &PERT{Base: NewHSTCP()} })
	if hsDrops == 0 {
		t.Skip("HSTCP baseline lossless; premise broken")
	}
	if pertDrops > hsDrops/4 {
		t.Fatalf("PERT-over-HSTCP drops %d vs HSTCP alone %d", pertDrops, hsDrops)
	}
	if pertUtil < hsUtil-0.15 {
		t.Fatalf("PERT-over-HSTCP utilization %v vs %v: early response too costly", pertUtil, hsUtil)
	}
}
