package tcp

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

// HSTCP implements HighSpeed TCP (RFC 3649): above a window of LowWindow
// segments the AIMD parameters scale with the window so large-BDP paths can
// be filled without absurd loss-rate requirements. It is the "aggressive
// probing mechanism for high-speed networks" of the paper's footnote 1 —
// still loss-based, so PERT's early response composes with it (use
// PERT{Base: NewHSTCP()}).
type HSTCP struct {
	LowWindow  float64 // below this, behave exactly like Reno (default 38)
	HighWindow float64 // calibration point (default 83000)
	HighP      float64 // loss rate at HighWindow (default 1e-7)
	HighDecr   float64 // decrease factor at HighWindow (default 0.1)
}

// NewHSTCP returns HighSpeed TCP with the RFC 3649 constants.
func NewHSTCP() *HSTCP {
	return &HSTCP{LowWindow: 38, HighWindow: 83000, HighP: 1e-7, HighDecr: 0.1}
}

// b returns the multiplicative-decrease fraction b(w) of RFC 3649 (0.5 at
// LowWindow shading to HighDecr at HighWindow, log-linear in w).
func (h *HSTCP) b(w float64) float64 {
	if w <= h.LowWindow {
		return 0.5
	}
	if w >= h.HighWindow {
		return h.HighDecr
	}
	frac := (math.Log(w) - math.Log(h.LowWindow)) / (math.Log(h.HighWindow) - math.Log(h.LowWindow))
	return (h.HighDecr-0.5)*frac + 0.5
}

// a returns the per-RTT additive increase a(w) of RFC 3649:
//
//	a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))
//
// with the deterministic response function p(w) = 0.078 / w^1.2.
func (h *HSTCP) a(w float64) float64 {
	if w <= h.LowWindow {
		return 1
	}
	p := 0.078 / math.Pow(w, 1.2)
	b := h.b(w)
	a := w * w * p * 2 * b / (2 - b)
	if a < 1 {
		a = 1
	}
	return a
}

// Init implements CongestionControl.
func (h *HSTCP) Init(*Conn) {}

// OnAck implements CongestionControl: slow start below ssthresh, then a(w)
// per RTT (a(w)/w per acked segment).
func (h *HSTCP) OnAck(c *Conn, newlyAcked int, _ sim.Duration, _ *netem.Packet) {
	if newlyAcked <= 0 || c.InRecovery() {
		return
	}
	w := c.Cwnd()
	if w < c.Ssthresh() {
		c.SetCwnd(w + float64(newlyAcked))
		return
	}
	c.SetCwnd(w + float64(newlyAcked)*h.a(w)/w)
}

// OnDupAckLoss implements CongestionControl: w <- (1-b(w))*w.
func (h *HSTCP) OnDupAckLoss(c *Conn) {
	w := c.Cwnd()
	nw := math.Max(2, w*(1-h.b(w)))
	c.SetSsthresh(nw)
	c.SetCwnd(nw)
}

// OnRTO implements CongestionControl.
func (h *HSTCP) OnRTO(c *Conn) {
	c.SetSsthresh(math.Max(2, c.Cwnd()/2))
	c.SetCwnd(1)
}

// OnECNEcho implements CongestionControl.
func (h *HSTCP) OnECNEcho(c *Conn) { h.OnDupAckLoss(c) }
