package tcp

import (
	"testing"

	"pert/internal/netem"
	"pert/internal/sim"
)

func acceptorBed(t *testing.T) (*sim.Engine, *netem.Network, *netem.Node, *netem.Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	q := func() netem.Discipline { return &sinkTail{} }
	net.AddDuplexLink(a, b, 1e9, sim.Millisecond, q(), q())
	net.ComputeRoutes()
	return eng, net, a, b
}

// TestShardSinkAcceptorCreatesSinkOnDemand: a data packet for an unknown flow
// conjures a sink on the receiving node, which acks it like a pre-attached
// one — the mechanism cross-domain web sessions rely on.
func TestShardSinkAcceptorCreatesSinkOnDemand(t *testing.T) {
	eng, net, a, b := acceptorBed(t)
	acc := AcceptSinks(net, b, 1000, false)
	catcher := &ackCatcher{}
	a.AttachFlow(7, catcher)
	for i := int64(0); i < 3; i++ {
		p := seg(net, a, i)
		p.Flow, p.Dst = 7, b.ID
		net.SendFrom(a, p)
	}
	eng.Run(sim.Second)
	if acc.Accepted != 1 {
		t.Fatalf("accepted %d sinks, want 1 (one per flow, not per packet)", acc.Accepted)
	}
	if len(catcher.acks) != 3 {
		t.Fatalf("got %d acks, want 3", len(catcher.acks))
	}
	if last := catcher.acks[len(catcher.acks)-1]; last.AckNo != 3 {
		t.Fatalf("final cumulative ack = %d, want 3", last.AckNo)
	}
}

// TestShardSinkAcceptorIgnoresAcks: stray ACKs for unknown flows must not
// create sinks — only forward data does.
func TestShardSinkAcceptorIgnoresAcks(t *testing.T) {
	eng, net, a, b := acceptorBed(t)
	acc := AcceptSinks(net, b, 1000, false)
	ack := &netem.Packet{ID: net.NewPacketID(), Flow: 9, Src: a.ID, Dst: b.ID, Size: 40, IsAck: true, AckNo: 5}
	net.SendFrom(a, ack)
	eng.Run(sim.Second)
	if acc.Accepted != 0 {
		t.Fatalf("a stray ACK created %d sinks", acc.Accepted)
	}
}

// TestShardSinkAcceptorIdempotent: repeated installation with the same
// configuration returns the existing acceptor; a conflicting configuration
// or a foreign listener is a programming error and panics.
func TestShardSinkAcceptorIdempotent(t *testing.T) {
	_, net, _, b := acceptorBed(t)
	first := AcceptSinks(net, b, 1000, false)
	if again := AcceptSinks(net, b, 1000, false); again != first {
		t.Fatal("same-config reinstall did not return the existing acceptor")
	}
	// Zero payload aliases DefaultPayload; still the same config.
	if again := AcceptSinks(net, b, 0, false); again != first || DefaultPayload != 1000 {
		t.Fatalf("zero-payload reinstall did not alias DefaultPayload=%d", DefaultPayload)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting payload accepted")
			}
		}()
		AcceptSinks(net, b, 512, false)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting delayed-ack setting accepted")
			}
		}()
		AcceptSinks(net, b, 1000, true)
	}()
}

// TestShardSinkAcceptorDelAck: the delayed-ack option propagates to accepted
// sinks — three segments produce fewer than three ACKs.
func TestShardSinkAcceptorDelAck(t *testing.T) {
	eng, net, a, b := acceptorBed(t)
	AcceptSinks(net, b, 1000, true)
	catcher := &ackCatcher{}
	a.AttachFlow(7, catcher)
	for i := int64(0); i < 4; i++ {
		p := seg(net, a, i)
		p.Flow, p.Dst = 7, b.ID
		net.SendFrom(a, p)
	}
	eng.Run(sim.Second)
	if len(catcher.acks) >= 4 {
		t.Fatalf("delayed acks off: %d acks for 4 segments", len(catcher.acks))
	}
	if last := catcher.acks[len(catcher.acks)-1]; last.AckNo != 4 {
		t.Fatalf("final cumulative ack = %d, want 4", last.AckNo)
	}
}
