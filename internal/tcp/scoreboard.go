package tcp

import (
	"sort"

	"pert/internal/netem"
)

// Scoreboard tracks which segments above the cumulative ACK point have been
// selectively acknowledged, as disjoint sorted ranges. It answers the
// questions SACK-based loss recovery needs: how many segments are sacked, is
// a given segment sacked, and where is the next unsacked hole.
type Scoreboard struct {
	blocks []netem.SackBlock // sorted, disjoint, non-adjacent
	floor  int64             // cumulative ACK point; blocks never extend below
	count  int64             // total sacked segments (kept incrementally)
}

// Reset clears all SACK information (used after a retransmission timeout,
// matching ns-2's conservative behaviour). The cumulative floor is kept.
func (s *Scoreboard) Reset() {
	s.blocks = s.blocks[:0]
	s.count = 0
}

// Add merges one advertised SACK block into the scoreboard. Ranges at or
// below the cumulative ACK point are ignored — they carry no new information.
func (s *Scoreboard) Add(b netem.SackBlock) {
	if b.Start < s.floor {
		b.Start = s.floor
	}
	if b.End <= b.Start {
		return
	}
	// Find insertion window [i, j) of blocks overlapping or adjacent to b.
	i := sort.Search(len(s.blocks), func(k int) bool { return s.blocks[k].End >= b.Start })
	j := i
	for j < len(s.blocks) && s.blocks[j].Start <= b.End {
		if s.blocks[j].Start < b.Start {
			b.Start = s.blocks[j].Start
		}
		if s.blocks[j].End > b.End {
			b.End = s.blocks[j].End
		}
		s.count -= s.blocks[j].End - s.blocks[j].Start
		j++
	}
	s.count += b.End - b.Start
	s.blocks = append(s.blocks[:i], append([]netem.SackBlock{b}, s.blocks[j:]...)...)
}

// AckedUpTo discards scoreboard state below the new cumulative ACK point.
func (s *Scoreboard) AckedUpTo(cum int64) {
	if cum > s.floor {
		s.floor = cum
	}
	i := 0
	for i < len(s.blocks) && s.blocks[i].End <= cum {
		s.count -= s.blocks[i].End - s.blocks[i].Start
		i++
	}
	s.blocks = s.blocks[i:]
	if len(s.blocks) > 0 && s.blocks[0].Start < cum {
		s.count -= cum - s.blocks[0].Start
		s.blocks[0].Start = cum
	}
}

// IsSacked reports whether segment seq has been selectively acknowledged.
func (s *Scoreboard) IsSacked(seq int64) bool {
	i := sort.Search(len(s.blocks), func(k int) bool { return s.blocks[k].End > seq })
	return i < len(s.blocks) && s.blocks[i].Start <= seq
}

// SackedCount returns the total number of sacked segments. O(1).
func (s *Scoreboard) SackedCount() int64 { return s.count }

// SackedAbove returns the number of sacked segments at or above seq.
func (s *Scoreboard) SackedAbove(seq int64) int64 {
	var n int64
	for _, b := range s.blocks {
		if b.End <= seq {
			continue
		}
		start := b.Start
		if start < seq {
			start = seq
		}
		n += b.End - start
	}
	return n
}

// HighestSacked returns one past the highest sacked segment, or 0 if none.
func (s *Scoreboard) HighestSacked() int64 {
	if len(s.blocks) == 0 {
		return 0
	}
	return s.blocks[len(s.blocks)-1].End
}

// NextHole returns the first segment >= from that is not sacked and is below
// limit, or -1 if there is none.
func (s *Scoreboard) NextHole(from, limit int64) int64 {
	seq := from
	// Skip blocks wholly below seq, then walk the few that matter.
	i := sort.Search(len(s.blocks), func(k int) bool { return s.blocks[k].End > seq })
	for ; i < len(s.blocks); i++ {
		b := s.blocks[i]
		if seq >= limit {
			return -1
		}
		if seq < b.Start {
			return seq // hole before this block
		}
		if seq < b.End {
			seq = b.End // skip over the sacked block
		}
	}
	if seq < limit {
		return seq
	}
	return -1
}

// Blocks returns the scoreboard's ranges (read-only view for tests).
func (s *Scoreboard) Blocks() []netem.SackBlock { return s.blocks }
