package tcp

import (
	"testing"

	"pert/internal/core"
	"pert/internal/netem"
	"pert/internal/sim"
)

func TestMaxBurstCapsSendsPerAck(t *testing.T) {
	// A stretch-ACK situation: force a large window, then deliver one ACK
	// covering many segments and count the immediate transmissions.
	eng, d := testbed(t, 1, 100e6, 60*sim.Millisecond, 1, 10000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{MaxBurst: 4})
	f.Start(0)
	eng.Run(2 * sim.Second) // slow start opens the window wide

	sent := f.Conn.Stats.SegsSent
	// Synthesize a stretch ACK covering 20 new segments.
	una := f.Conn.SndUna()
	f.Conn.Receive(&netem.Packet{IsAck: true, AckNo: una + 20, Flow: 1}, eng.Now())
	burst := f.Conn.Stats.SegsSent - sent
	if burst > 4 {
		t.Fatalf("burst of %d segments after one ACK, cap is 4", burst)
	}
}

func TestMaxBurstDisabled(t *testing.T) {
	eng, d := testbed(t, 1, 100e6, 60*sim.Millisecond, 1, 10000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{MaxBurst: -1})
	f.Start(0)
	eng.Run(2 * sim.Second)
	sent := f.Conn.Stats.SegsSent
	una := f.Conn.SndUna()
	f.Conn.Receive(&netem.Packet{IsAck: true, AckNo: una + 20, Flow: 1}, eng.Now())
	if burst := f.Conn.Stats.SegsSent - sent; burst < 10 {
		t.Fatalf("burst = %d with cap disabled, expected a large burst", burst)
	}
}

func TestECNResponseOncePerWindow(t *testing.T) {
	eng, d := testbed(t, 1, 50e6, 60*sim.Millisecond, 1, 10000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{ECN: true})
	f.Start(0)
	eng.Run(2 * sim.Second)
	cwnd0 := f.Conn.Cwnd()
	// Two back-to-back ECE ACKs: only the first halves within the window.
	una := f.Conn.SndUna()
	f.Conn.Receive(&netem.Packet{IsAck: true, AckNo: una + 1, ECE: true, Flow: 1}, eng.Now())
	afterFirst := f.Conn.Cwnd()
	f.Conn.Receive(&netem.Packet{IsAck: true, AckNo: una + 2, ECE: true, Flow: 1}, eng.Now())
	afterSecond := f.Conn.Cwnd()
	if afterFirst >= cwnd0 {
		t.Fatalf("first ECE did not reduce: %v -> %v", cwnd0, afterFirst)
	}
	if afterSecond < afterFirst-1 {
		t.Fatalf("second ECE in the same window reduced again: %v -> %v", afterFirst, afterSecond)
	}
	if f.Conn.Stats.ECNResponses != 1 {
		t.Fatalf("ECN responses = %d", f.Conn.Stats.ECNResponses)
	}
}

func TestCWRSetOnNextSegmentAfterECE(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	q := func() netem.Discipline { return &sinkTail{} }
	ab := net.AddLink(a, b, 1e9, sim.Millisecond, q())
	net.AddLink(b, a, 1e9, sim.Millisecond, q())
	net.ComputeRoutes()
	var cwrSeen bool
	ab.OnDepart = func(p *netem.Packet, _ sim.Time) {
		if p.CWR {
			cwrSeen = true
		}
	}
	f := NewFlow(net, a, b, 1, Reno{}, Config{ECN: true})
	f.Start(0)
	eng.Run(sim.Second)
	una := f.Conn.SndUna()
	f.Conn.Receive(&netem.Packet{IsAck: true, AckNo: una + 1, ECE: true, Flow: 1}, eng.Now())
	eng.Run(eng.Now() + sim.Second)
	if !cwrSeen {
		t.Fatal("CWR never transmitted after ECN response")
	}
}

func TestPERTPIFlowRuns(t *testing.T) {
	eng, d := testbed(t, 13, 10e6, 60*sim.Millisecond, 2, 0)
	params := core.DesignPERTPI(10e6/(8*1040), 2, 120*sim.Millisecond)
	for i := 0; i < 2; i++ {
		cc := NewPERTLazy(func(c *Conn) core.Responder {
			return core.NewPIResponder(c.Engine().Rand(), params, sim.Milliseconds(1.7), 3*sim.Millisecond)
		})
		f := NewFlow(d.Net, d.Left[i], d.Right[i], i+1, cc, Config{})
		f.Start(sim.Time(i) * 100 * sim.Millisecond)
	}
	eng.Run(40 * sim.Second) // the slow PI integrator needs a long warm-up
	start := d.Forward.Stats.TxBytes
	drops0 := d.Forward.Stats.Drops
	eng.Run(50 * sim.Second)
	if u := d.Forward.Utilization(start, 10*sim.Second); u < 0.7 {
		t.Fatalf("PERT/PI utilization = %v", u)
	}
	if d.Forward.Stats.Drops-drops0 > 50 {
		t.Fatalf("PERT/PI dropped %d packets in steady state", d.Forward.Stats.Drops-drops0)
	}
}

func TestInitialCwndRespected(t *testing.T) {
	eng, d := testbed(t, 1, 10e6, 60*sim.Millisecond, 1, 1000)
	f := NewFlow(d.Net, d.Left[0], d.Right[0], 1, Reno{}, Config{InitialCwnd: 5})
	f.Start(0)
	eng.Run(20 * sim.Millisecond) // before any ACK returns
	if f.Conn.Stats.SegsSent != 4 {
		// MaxBurst (4) caps the initial blast below IW=5.
		t.Fatalf("initial burst = %d segments", f.Conn.Stats.SegsSent)
	}
}

func TestRTOBackoffSequence(t *testing.T) {
	// Black-hole the forward path after slow start begins: repeated RTOs
	// must back off exponentially and keep the connection alive.
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	blackhole := false
	a, b := net.AddNode(), net.AddNode()
	q := func() netem.Discipline { return &sinkTail{} }
	net.AddLink(a, b, 1e9, sim.Millisecond, dropFunc{q(), func(p *netem.Packet) bool { return blackhole && !p.IsAck }})
	net.AddLink(b, a, 1e9, sim.Millisecond, q())
	net.ComputeRoutes()
	f := NewFlow(net, a, b, 1, Reno{}, Config{})
	f.Start(0)
	eng.Run(sim.Second)
	blackhole = true
	eng.Run(30 * sim.Second)
	if f.Conn.Stats.RTOs < 3 {
		t.Fatalf("RTOs = %d, want several", f.Conn.Stats.RTOs)
	}
	if f.Conn.Cwnd() != 1 {
		t.Fatalf("cwnd = %v during blackhole", f.Conn.Cwnd())
	}
	// Heal the path: the flow must recover and make progress.
	blackhole = false
	got := f.Sink.UniqueSegs
	eng.Run(eng.Now() + 90*sim.Second)
	if f.Sink.UniqueSegs <= got {
		t.Fatal("no progress after the path healed")
	}
}

func TestVegasRTOResetsToSlowStart(t *testing.T) {
	eng := sim.NewEngine(2)
	net := netem.NewNetwork(eng)
	blackhole := false
	a, b := net.AddNode(), net.AddNode()
	q := func() netem.Discipline { return &sinkTail{} }
	net.AddLink(a, b, 1e9, sim.Millisecond, dropFunc{q(), func(p *netem.Packet) bool { return blackhole && !p.IsAck }})
	net.AddLink(b, a, 1e9, sim.Millisecond, q())
	net.ComputeRoutes()
	v := NewVegas()
	f := NewFlow(net, a, b, 1, v, Config{})
	f.Start(0)
	eng.Run(2 * sim.Second)
	blackhole = true
	eng.Run(eng.Now() + 5*sim.Second)
	blackhole = false
	eng.Run(eng.Now() + 20*sim.Second)
	if !v.slowStart && f.Conn.Cwnd() < 2 {
		t.Fatalf("Vegas stuck after RTO: ss=%v cwnd=%v", v.slowStart, f.Conn.Cwnd())
	}
	if f.Sink.UniqueSegs < 1000 {
		t.Fatalf("Vegas made little progress: %d segs", f.Sink.UniqueSegs)
	}
}
