package tcp

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

// Classic delay-based congestion-avoidance schemes from the paper's Section
// 2 lineage, implemented as full controllers so they can be compared head to
// head with PERT and Vegas (the ext-delaycc experiment). Both predate Vegas:
// they keep standard slow start and loss handling and modify only congestion
// avoidance.

// DUAL implements Wang & Crowcroft 1992: every Interval round trips, if the
// latest RTT exceeds the midpoint of the minimum and maximum observed RTTs
// (the queue is more than ~half full), the window is reduced multiplicatively
// by Beta; otherwise it grows by one segment per RTT.
type DUAL struct {
	Beta     float64 // multiplicative decrease (paper: 7/8)
	Interval int     // epochs between delay checks (paper: every other RTT)

	epochEnd int64
	epochs   int
	min, max sim.Duration
	latest   sim.Duration
}

// NewDUAL returns DUAL with the published parameters.
func NewDUAL() *DUAL { return &DUAL{Beta: 7.0 / 8, Interval: 2} }

// Init implements CongestionControl.
func (d *DUAL) Init(*Conn) {}

// OnAck implements CongestionControl.
func (d *DUAL) OnAck(c *Conn, newlyAcked int, rtt sim.Duration, _ *netem.Packet) {
	if rtt > 0 {
		d.latest = rtt
		if d.min == 0 || rtt < d.min {
			d.min = rtt
		}
		if rtt > d.max {
			d.max = rtt
		}
	}
	if newlyAcked <= 0 || c.InRecovery() {
		return
	}
	if c.Cwnd() < c.Ssthresh() {
		c.SetCwnd(c.Cwnd() + float64(newlyAcked))
		return
	}
	c.SetCwnd(c.Cwnd() + float64(newlyAcked)/c.Cwnd())
	if c.SndUna() < d.epochEnd {
		return
	}
	d.epochEnd = c.SndMax()
	d.epochs++
	if d.epochs%d.Interval != 0 || d.min == 0 {
		return
	}
	if d.latest > (d.min+d.max)/2 {
		c.SetCwnd(math.Max(2, c.Cwnd()*d.Beta))
	}
}

// OnDupAckLoss implements CongestionControl (standard halving).
func (d *DUAL) OnDupAckLoss(c *Conn) {
	ss := math.Max(2, c.Cwnd()/2)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}

// OnRTO implements CongestionControl.
func (d *DUAL) OnRTO(c *Conn) {
	c.SetSsthresh(math.Max(2, c.Cwnd()/2))
	c.SetCwnd(1)
	// A timeout invalidates the max estimate (the path changed).
	d.max = d.latest
}

// OnECNEcho implements CongestionControl.
func (d *DUAL) OnECNEcho(c *Conn) { d.OnDupAckLoss(c) }

// CARD implements Jain 1989 (Congestion Avoidance using Round-trip Delay):
// every other window's worth of ACKs, the normalized delay gradient
// (RTT-RTT')/(RTT+RTT') decides the direction: positive gradient shrinks the
// window by 1/8, otherwise it grows by one segment. The scheme oscillates
// around the knee of the delay-throughput curve.
type CARD struct {
	epochEnd int64
	epochs   int
	prevRTT  sim.Duration
	sumRTT   sim.Duration
	nRTT     int
}

// NewCARD returns the CARD controller.
func NewCARD() *CARD { return &CARD{} }

// Init implements CongestionControl.
func (cd *CARD) Init(*Conn) {}

// OnAck implements CongestionControl.
func (cd *CARD) OnAck(c *Conn, newlyAcked int, rtt sim.Duration, _ *netem.Packet) {
	if rtt > 0 {
		cd.sumRTT += rtt
		cd.nRTT++
	}
	if newlyAcked <= 0 || c.InRecovery() {
		return
	}
	if c.Cwnd() < c.Ssthresh() {
		c.SetCwnd(c.Cwnd() + float64(newlyAcked))
		return
	}
	if c.SndUna() < cd.epochEnd {
		return
	}
	cd.epochEnd = c.SndMax()
	cd.epochs++
	if cd.nRTT == 0 {
		return
	}
	avg := cd.sumRTT / sim.Duration(cd.nRTT)
	cd.sumRTT, cd.nRTT = 0, 0
	if cd.epochs%2 != 0 {
		// Adjust only every other epoch, letting the previous change take
		// effect (Jain's "wait one RTT" rule).
		cd.prevRTT = avg
		return
	}
	if cd.prevRTT == 0 {
		cd.prevRTT = avg
		return
	}
	ndg := float64(avg-cd.prevRTT) / float64(avg+cd.prevRTT)
	cd.prevRTT = avg
	if ndg > 0 {
		c.SetCwnd(math.Max(2, c.Cwnd()*7.0/8))
	} else {
		c.SetCwnd(c.Cwnd() + 1)
	}
}

// OnDupAckLoss implements CongestionControl.
func (cd *CARD) OnDupAckLoss(c *Conn) {
	ss := math.Max(2, c.Cwnd()/2)
	c.SetSsthresh(ss)
	c.SetCwnd(ss)
}

// OnRTO implements CongestionControl.
func (cd *CARD) OnRTO(c *Conn) {
	c.SetSsthresh(math.Max(2, c.Cwnd()/2))
	c.SetCwnd(1)
}

// OnECNEcho implements CongestionControl.
func (cd *CARD) OnECNEcho(c *Conn) { cd.OnDupAckLoss(c) }
