package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/sim"
)

func blk(a, b int64) netem.SackBlock { return netem.SackBlock{Start: a, End: b} }

func TestScoreboardAddMerge(t *testing.T) {
	var s Scoreboard
	s.Add(blk(10, 12))
	s.Add(blk(14, 16))
	s.Add(blk(12, 14)) // bridges the gap
	bs := s.Blocks()
	if len(bs) != 1 || bs[0] != blk(10, 16) {
		t.Fatalf("blocks = %v", bs)
	}
	if s.SackedCount() != 6 {
		t.Fatalf("count = %d", s.SackedCount())
	}
}

func TestScoreboardAddOverlap(t *testing.T) {
	var s Scoreboard
	s.Add(blk(5, 10))
	s.Add(blk(8, 12))
	s.Add(blk(3, 6))
	bs := s.Blocks()
	if len(bs) != 1 || bs[0] != blk(3, 12) {
		t.Fatalf("blocks = %v", bs)
	}
}

func TestScoreboardEmptyBlockIgnored(t *testing.T) {
	var s Scoreboard
	s.Add(blk(5, 5))
	s.Add(blk(7, 6))
	if len(s.Blocks()) != 0 {
		t.Fatalf("blocks = %v", s.Blocks())
	}
}

func TestScoreboardAckedUpTo(t *testing.T) {
	var s Scoreboard
	s.Add(blk(5, 8))
	s.Add(blk(10, 12))
	s.AckedUpTo(6)
	if bs := s.Blocks(); len(bs) != 2 || bs[0] != blk(6, 8) {
		t.Fatalf("blocks = %v", bs)
	}
	s.AckedUpTo(9)
	if bs := s.Blocks(); len(bs) != 1 || bs[0] != blk(10, 12) {
		t.Fatalf("blocks = %v", bs)
	}
	s.AckedUpTo(20)
	if len(s.Blocks()) != 0 {
		t.Fatalf("blocks = %v", s.Blocks())
	}
}

func TestScoreboardHoles(t *testing.T) {
	var s Scoreboard
	s.Add(blk(3, 5))
	s.Add(blk(7, 9))
	if h := s.NextHole(0, 9); h != 0 {
		t.Fatalf("hole = %d", h)
	}
	if h := s.NextHole(3, 9); h != 5 {
		t.Fatalf("hole from 3 = %d", h)
	}
	if h := s.NextHole(7, 9); h != -1 {
		t.Fatalf("hole from 7 = %d", h)
	}
	if h := s.NextHole(0, 3); h != 0 {
		t.Fatalf("hole limited = %d", h)
	}
	if h := s.NextHole(3, 5); h != -1 {
		t.Fatalf("hole inside block = %d", h)
	}
}

func TestScoreboardQueries(t *testing.T) {
	var s Scoreboard
	s.Add(blk(3, 5))
	s.Add(blk(7, 9))
	if !s.IsSacked(3) || !s.IsSacked(4) || s.IsSacked(5) || s.IsSacked(6) || !s.IsSacked(8) {
		t.Fatal("IsSacked wrong")
	}
	if s.HighestSacked() != 9 {
		t.Fatalf("highest = %d", s.HighestSacked())
	}
	if s.SackedAbove(4) != 3 {
		t.Fatalf("above 4 = %d", s.SackedAbove(4))
	}
	if s.SackedAbove(9) != 0 {
		t.Fatalf("above 9 = %d", s.SackedAbove(9))
	}
	s.Reset()
	if s.SackedCount() != 0 || s.HighestSacked() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: the scoreboard agrees with a naive set-of-integers model under
// random Add/AckedUpTo sequences, and its blocks stay sorted and disjoint.
func TestScoreboardModelProperty(t *testing.T) {
	type op struct {
		Start uint8
		Len   uint8
		Ack   bool
	}
	f := func(ops []op) bool {
		var s Scoreboard
		model := map[int64]bool{}
		floor := int64(0)
		for _, o := range ops {
			if o.Ack {
				cum := int64(o.Start)
				if cum > floor {
					floor = cum
				}
				s.AckedUpTo(floor)
				for k := range model {
					if k < floor {
						delete(model, k)
					}
				}
			} else {
				a := int64(o.Start)
				b := a + int64(o.Len%8)
				s.Add(netem.SackBlock{Start: a, End: b})
				for k := a; k < b; k++ {
					if k >= floor {
						model[k] = true
					}
				}
			}
			// Compare counts and membership.
			if s.SackedCount() != int64(len(model)) {
				return false
			}
			for k := range model {
				if !s.IsSacked(k) {
					return false
				}
			}
			// Blocks sorted, disjoint, non-empty.
			bs := s.Blocks()
			for i, b := range bs {
				if b.End <= b.Start {
					return false
				}
				if i > 0 && bs[i-1].End >= b.Start {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRTTEstimator(t *testing.T) {
	e := NewRTTEstimator()
	if e.HasSample() {
		t.Fatal("fresh estimator claims samples")
	}
	if e.RTO() != sim.Second {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	e.Sample(100 * sim.Millisecond)
	if e.SRTT != 100*sim.Millisecond || e.RTTVar != 50*sim.Millisecond {
		t.Fatalf("first sample: srtt=%v var=%v", e.SRTT, e.RTTVar)
	}
	if e.Min != 100*sim.Millisecond {
		t.Fatalf("min = %v", e.Min)
	}
	e.Sample(200 * sim.Millisecond)
	// srtt = 7/8*100 + 1/8*200 = 112.5ms
	if e.SRTT != sim.Milliseconds(112.5) {
		t.Fatalf("srtt = %v", e.SRTT)
	}
	if e.Min != 100*sim.Millisecond {
		t.Fatalf("min moved: %v", e.Min)
	}
	e.Sample(50 * sim.Millisecond)
	if e.Min != 50*sim.Millisecond {
		t.Fatalf("min = %v", e.Min)
	}
}

func TestRTOBackoffAndClamp(t *testing.T) {
	e := NewRTTEstimator()
	e.Sample(100 * sim.Millisecond)
	base := e.RTO()
	e.Backoff()
	if e.RTO() != base*2 {
		t.Fatalf("backoff: %v -> %v", base, e.RTO())
	}
	for i := 0; i < 30; i++ {
		e.Backoff()
	}
	if e.RTO() != e.MaxRTO {
		t.Fatalf("RTO not clamped: %v", e.RTO())
	}
	e.Sample(100 * sim.Millisecond) // sample resets backoff
	// A fresh sample clears the exponential backoff; the exact RTO differs
	// from base because RTTVar kept shrinking.
	if e.RTO() >= base {
		t.Fatalf("backoff not reset: %v >= %v", e.RTO(), base)
	}
	// Tiny RTTs clamp up to MinRTO.
	e2 := NewRTTEstimator()
	e2.Sample(sim.Millisecond)
	if e2.RTO() != e2.MinRTO {
		t.Fatalf("min clamp: %v", e2.RTO())
	}
}
