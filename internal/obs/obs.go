// Package obs is the simulator's observability layer: typed instruments
// (counters, gauges, log-linear histograms) collected in an engine-local
// Registry, periodic time-series sampling driven by the sim engine's own
// timer, streaming JSONL/CSV export, and a bounded ring-buffer flight
// recorder that invariant auditors and watchdogs dump into repro bundles.
//
// The layer is built around two rules:
//
//  1. Zero overhead when disabled. Every instrument method is a no-op on a
//     nil receiver, and a nil *Registry hands out nil instruments, so model
//     code can bump counters unconditionally: the disabled path is one
//     nil-check, no allocation, no branch on shared state (the sim and netem
//     allocation-budget tests pin this down).
//
//  2. Observation never perturbs results. Samplers only read model state;
//     they never touch an engine RNG, and the sampling ticker consumes engine
//     sequence numbers without reordering model events relative to each
//     other (heap order is (time, seq) with seq monotone). A run with
//     metrics enabled is bit-identical to the same run without — the
//     metamorphic test in internal/experiments asserts exactly that.
//
// Registries are engine-local: one Registry per sim.Engine, touched only
// from that engine's goroutine. Parallel sweeps (experiments.WithWorkers)
// run one registry per scenario with no shared mutable state; the only
// synchronized structure is the Flight recorder's ring, which a wallclock
// watchdog may dump concurrently with the simulation.
package obs

import (
	"fmt"
	"math"

	"pert/internal/sim"
)

// Point is one time-series sample: the value of one named series at one
// instant of simulated time. T is in seconds (not sim.Time) so exported
// series are directly plottable and survive text round-trips exactly (the
// shortest float64 representation is used throughout).
type Point struct {
	T      float64 // simulated time, seconds
	Series string  // instrument name, e.g. "queue.len" or "tcp/0.cwnd"
	Value  float64
}

// Sink receives sampled points. Sinks are called from the simulation
// goroutine in deterministic order; implementations that are also read from
// other goroutines (the Flight recorder) synchronize internally.
type Sink interface {
	Record(Point)
}

// Flusher is implemented by sinks with buffered output; Registry.Close
// flushes them.
type Flusher interface {
	Flush() error
}

// Registry owns one engine's instruments and sinks. Create with NewRegistry,
// register instruments, attach sinks, then Start the periodic sampler. All
// methods are safe on a nil *Registry (they return nil instruments or do
// nothing), so callers can thread an optional registry through without
// guarding every call site.
type Registry struct {
	eng    *sim.Engine
	names  map[string]struct{}
	insts  []instrument
	hists  []*Histogram
	sinks  []Sink
	flight *Flight
	ticker *sim.Ticker
	closed bool
}

// instrument is one sampleable series: a name plus a read function returning
// the current value and whether it should be emitted this tick.
type instrument struct {
	name string
	read func() float64
}

// NewRegistry returns an empty registry bound to the engine.
func NewRegistry(eng *sim.Engine) *Registry {
	if eng == nil {
		panic("obs: NewRegistry with nil engine")
	}
	return &Registry{eng: eng, names: make(map[string]struct{})}
}

// register validates and claims a series name.
func (r *Registry) register(name string) {
	if err := CheckName(name); err != nil {
		panic("obs: " + err.Error())
	}
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate instrument %q", name))
	}
	r.names[name] = struct{}{}
}

// CheckName validates a series name: non-empty ASCII from the set
// [a-zA-Z0-9._/-]. The character set keeps every name safe in both export
// formats (no commas, quotes, or whitespace) and in file paths derived from
// it.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("empty series name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '/', c == '-':
		default:
			return fmt.Errorf("series name %q contains %q (allowed: [a-zA-Z0-9._/-])", name, c)
		}
	}
	return nil
}

// NewCounter registers and returns a monotone counter sampled on every tick.
// Returns nil on a nil registry; a nil *Counter ignores Add/Inc.
func (r *Registry) NewCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.register(name)
	c := &Counter{}
	r.insts = append(r.insts, instrument{name: name, read: func() float64 { return float64(c.v) }})
	return c
}

// NewGauge registers and returns a set-style gauge sampled on every tick.
// Returns nil on a nil registry; a nil *Gauge ignores Set.
func (r *Registry) NewGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.register(name)
	g := &Gauge{}
	r.insts = append(r.insts, instrument{name: name, read: func() float64 { return g.v }})
	return g
}

// GaugeFunc registers a pull-style gauge: fn is invoked at every sampling
// tick on the simulation goroutine and must only read model state. A
// non-finite return value (NaN/Inf) suppresses the point for that tick —
// the idiom for "not ready yet" (e.g. a PERT responder before its first
// ACK). No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("obs: GaugeFunc with nil function")
	}
	r.register(name)
	r.insts = append(r.insts, instrument{name: name, read: fn})
}

// NewHistogram registers and returns a log-linear histogram. Histograms are
// not sampled per tick; Close emits one summary point per statistic
// (<name>.count, <name>.p50, <name>.p95, <name>.p99) at the final sample
// time. Returns nil on a nil registry; a nil *Histogram ignores Observe.
func (r *Registry) NewHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.register(name)
	// Claim the summary names too, so a gauge cannot collide with them.
	for _, suffix := range []string{".count", ".p50", ".p95", ".p99"} {
		r.register(name + suffix)
	}
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// AddSink attaches a sink receiving every sampled point. No-op on a nil
// registry.
func (r *Registry) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.sinks = append(r.sinks, s)
}

// EnableFlight attaches a bounded ring-buffer flight recorder (also added as
// a sink) and registers it in the process-wide active set so wallclock
// watchdogs can dump it. Close deactivates it. Returns nil on a nil
// registry.
func (r *Registry) EnableFlight(name string, depth int) *Flight {
	if r == nil {
		return nil
	}
	if r.flight != nil {
		panic("obs: EnableFlight called twice")
	}
	f := NewFlight(name, depth)
	r.flight = f
	r.AddSink(f)
	f.activate()
	return f
}

// Flight returns the registry's flight recorder, or nil.
func (r *Registry) Flight() *Flight {
	if r == nil {
		return nil
	}
	return r.flight
}

// Start begins periodic sampling: every instrument is read and emitted to
// every sink at t0 and every interval thereafter, on the engine's event
// loop. No-op on a nil registry.
func (r *Registry) Start(t0 sim.Time, interval sim.Duration) {
	if r == nil {
		return
	}
	if r.ticker != nil {
		panic("obs: Start called twice")
	}
	if interval <= 0 {
		panic("obs: non-positive sampling interval")
	}
	r.ticker = r.eng.Every(t0, interval, r.Sample)
}

// Sample reads every instrument once at the given time and emits the points.
// The periodic ticker calls this; tests may call it directly.
func (r *Registry) Sample(now sim.Time) {
	if r == nil || r.closed {
		return
	}
	t := now.Seconds()
	for _, in := range r.insts {
		v := in.read()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue // "not ready" / meaningless this tick
		}
		p := Point{T: t, Series: in.name, Value: v}
		for _, s := range r.sinks {
			s.Record(p)
		}
	}
}

// Close stops the sampler, emits one summary point set per histogram at the
// current simulated time, flushes buffered sinks, and deactivates the flight
// recorder. It returns the first flush error; write errors are also sticky
// on the writers themselves, so callers that flush their own files still
// observe them. Closing a nil or already-closed registry is a no-op.
func (r *Registry) Close() error {
	if r == nil || r.closed {
		return nil
	}
	r.closed = true
	if r.ticker != nil {
		r.ticker.Stop()
	}
	t := r.eng.Now().Seconds()
	for _, h := range r.hists {
		if h.Count() == 0 {
			continue
		}
		for _, pt := range []Point{
			{T: t, Series: h.name + ".count", Value: float64(h.Count())},
			{T: t, Series: h.name + ".p50", Value: h.Quantile(0.50)},
			{T: t, Series: h.name + ".p95", Value: h.Quantile(0.95)},
			{T: t, Series: h.name + ".p99", Value: h.Quantile(0.99)},
		} {
			for _, s := range r.sinks {
				s.Record(pt)
			}
		}
	}
	var first error
	for _, s := range r.sinks {
		if fl, ok := s.(Flusher); ok {
			if err := fl.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	if r.flight != nil {
		r.flight.deactivate()
	}
	return first
}
