package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// roundTripPoints exercises both export formats with awkward-but-legal
// values; the shortest-float formatting must reproduce every point exactly.
var roundTripPoints = []Point{
	{T: 0, Series: "queue.len", Value: 0},
	{T: 0.1, Series: "queue.len", Value: 17},
	{T: 1.0 / 3.0, Series: "tcp/0.cwnd", Value: 12.000000000000002},
	{T: 59.99999999, Series: "tcp/0.pert.prob", Value: 0.049999999999999996},
	{T: 1e-9, Series: "a", Value: -1e-300},
	{T: maxSeconds * 0.999, Series: "b_c-d.e", Value: math.MaxFloat64},
	{T: 123456.789, Series: "rtt.p99", Value: math.SmallestNonzeroFloat64},
	{T: 2, Series: "neg", Value: -123456789.123456789},
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewJSONLWriter(&buf)
	for _, p := range roundTripPoints {
		sw.Record(p)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	comparePoints(t, got, roundTripPoints)
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewCSVWriter(&buf)
	for _, p := range roundTripPoints {
		sw.Record(p)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "t_s,series,value\n") {
		t.Fatalf("CSV missing header: %q", buf.String()[:40])
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	comparePoints(t, got, roundTripPoints)
}

func comparePoints(t *testing.T, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d: got %+v, want %+v (not bit-identical)", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejects(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"NaN time", `{"t":NaN,"series":"a","v":1}`, "non-finite time"},
		{"Inf time", `{"t":+Inf,"series":"a","v":1}`, "non-finite time"},
		{"Inf value", `{"t":1,"series":"a","v":Inf}`, "non-finite value"},
		{"negative time", `{"t":-1,"series":"a","v":1}`, "negative time"},
		{"overflow time", `{"t":1e300,"series":"a","v":1}`, "overflows the simulator clock"},
		{"truncated value", `{"t":1,"series":"a","v":`, "truncated"},
		{"truncated mid-name", `{"t":1,"series":"a`, "truncated"},
		{"no closing brace", `{"t":1,"series":"a","v":1`, "truncated"},
		{"wrong prefix", `{"time":1,"series":"a","v":1}`, "malformed"},
		{"empty name", `{"t":1,"series":"","v":1}`, "empty series name"},
		{"bad name", `{"t":1,"series":"a b","v":1}`, "series name"},
		{"junk after number", `{"t":1x,"series":"a","v":1}`, "bad time"},
		{"empty time", `{"t":,"series":"a","v":1}`, "bad time"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.in + "\n"))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "line 1") {
				t.Fatalf("error %q lost the line number", err)
			}
		})
	}
}

func TestReadCSVRejects(t *testing.T) {
	const hdr = "t_s,series,value\n"
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"missing header", "1,a,2\n", "missing t_s,series,value header"},
		{"NaN time", hdr + "NaN,a,1\n", "non-finite time"},
		{"negative time", hdr + "-1,a,1\n", "negative time"},
		{"overflow time", hdr + "1e300,a,1\n", "overflows"},
		{"Inf value", hdr + "1,a,Inf\n", "non-finite value"},
		{"two fields", hdr + "1,a\n", "want 3 fields"},
		{"four fields", hdr + "1,a,2,3\n", "want 3 fields"},
		{"bad name", hdr + `1,a"b,2` + "\n", "series name"},
		{"empty value", hdr + "1,a,\n", "bad value"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadersSkipBlankLines(t *testing.T) {
	pts, err := ReadJSONL(strings.NewReader("\n\n  \n" + `{"t":1,"series":"a","v":2}` + "\n\n"))
	if err != nil || len(pts) != 1 {
		t.Fatalf("JSONL blank-line handling: %v, %d points", err, len(pts))
	}
	pts, err = ReadCSV(strings.NewReader("\nt_s,series,value\n\n1,a,2\n\n"))
	if err != nil || len(pts) != 1 {
		t.Fatalf("CSV blank-line handling: %v, %d points", err, len(pts))
	}
}

func TestReaderErrorsCarryLineNumbers(t *testing.T) {
	in := `{"t":1,"series":"a","v":2}` + "\n" + `{"t":bad,"series":"a","v":2}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line 2 in error, got %v", err)
	}
	in = "t_s,series,value\n1,a,2\nnope\n"
	_, err = ReadCSV(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line 3 in error, got %v", err)
	}
}
