package obs

import (
	"math"
	"strings"
	"testing"

	"pert/internal/sim"
)

// memSink collects points in order.
type memSink struct {
	pts []Point
}

func (m *memSink) Record(p Point) { m.pts = append(m.pts, p) }

func TestRegistrySampling(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry(eng)
	sink := &memSink{}
	reg.AddSink(sink)

	c := reg.NewCounter("events")
	g := reg.NewGauge("level")
	var pull float64
	reg.GaugeFunc("pull", func() float64 { return pull })

	reg.Start(0, 100*sim.Millisecond)
	eng.Do(50*sim.Millisecond, func() { c.Add(3); g.Set(7.5); pull = 2 })
	eng.Run(250 * sim.Millisecond)

	// Ticks at 0, 100ms, 200ms → 9 points.
	if len(sink.pts) != 9 {
		t.Fatalf("got %d points, want 9: %+v", len(sink.pts), sink.pts)
	}
	// First tick: everything zero.
	for _, p := range sink.pts[:3] {
		if p.T != 0 || p.Value != 0 {
			t.Fatalf("first tick point not zero: %+v", p)
		}
	}
	// Second tick reflects the event at 50ms.
	want := map[string]float64{"events": 3, "level": 7.5, "pull": 2}
	for _, p := range sink.pts[3:6] {
		if p.T != 0.1 {
			t.Fatalf("second tick at %v, want 0.1", p.T)
		}
		if p.Value != want[p.Series] {
			t.Fatalf("%s = %v, want %v", p.Series, p.Value, want[p.Series])
		}
	}
}

func TestGaugeFuncNaNSuppressed(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry(eng)
	sink := &memSink{}
	reg.AddSink(sink)
	ready := false
	reg.GaugeFunc("maybe", func() float64 {
		if !ready {
			return math.NaN()
		}
		return 1
	})
	reg.Sample(0)
	ready = true
	reg.Sample(sim.Seconds(1))
	if len(sink.pts) != 1 || sink.pts[0].T != 1 || sink.pts[0].Value != 1 {
		t.Fatalf("NaN sample not suppressed: %+v", sink.pts)
	}
}

func TestRegistryCloseEmitsHistogramSummaries(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry(eng)
	sink := &memSink{}
	reg.AddSink(sink)
	h := reg.NewHistogram("rtt")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	eng.Do(sim.Seconds(2), func() {})
	eng.Run(sim.Seconds(2))
	if err := reg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := map[string]float64{}
	for _, p := range sink.pts {
		if p.T != 2 {
			t.Fatalf("summary at t=%v, want 2", p.T)
		}
		got[p.Series] = p.Value
	}
	if got["rtt.count"] != 100 {
		t.Fatalf("rtt.count = %v", got["rtt.count"])
	}
	for q, want := range map[string]float64{"rtt.p50": 50, "rtt.p95": 95, "rtt.p99": 99} {
		if v := got[q]; math.Abs(v-want)/want > 0.10 {
			t.Fatalf("%s = %v, want within 10%% of %v", q, v, want)
		}
	}
	// Closing twice is a no-op.
	n := len(sink.pts)
	if err := reg.Close(); err != nil || len(sink.pts) != n {
		t.Fatalf("second Close not a no-op")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("x")
	g := reg.NewGauge("y")
	h := reg.NewHistogram("z")
	reg.GaugeFunc("f", func() float64 { return 1 })
	reg.AddSink(&memSink{})
	reg.Start(0, sim.Second)
	reg.Sample(0)
	if fl := reg.EnableFlight("s", 8); fl != nil {
		t.Fatalf("nil registry returned a flight")
	}
	if reg.Flight() != nil {
		t.Fatalf("nil registry has a flight")
	}
	if err := reg.Close(); err != nil {
		t.Fatalf("Close on nil: %v", err)
	}
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments")
	}
	// The disabled instruments absorb use without crashing.
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil instruments leaked state")
	}
}

// TestDisabledInstrumentAllocBudget pins the zero-overhead-when-disabled
// contract: bumping nil instruments — the exact code path model code takes
// when no registry is attached — must not allocate.
func TestDisabledInstrumentAllocBudget(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 100; i++ {
			c.Inc()
			c.Add(2)
			g.Set(float64(i))
			h.Observe(float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f objects/run, want 0", allocs)
	}
}

// TestEnabledCounterAllocBudget: enabled counters and gauges are plain field
// writes — still no allocation per operation (histograms may allocate lazily
// for new buckets, which is fine off the hot path).
func TestEnabledCounterAllocBudget(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry(eng)
	c := reg.NewCounter("c")
	g := reg.NewGauge("g")
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 100; i++ {
			c.Inc()
			g.Set(float64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("enabled counter/gauge allocated %.1f objects/run, want 0", allocs)
	}
}

func TestRegistryNamePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, tc := range []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) { r.NewCounter("a"); r.NewCounter("a") }},
		{"empty", func(r *Registry) { r.NewGauge("") }},
		{"space", func(r *Registry) { r.NewGauge("a b") }},
		{"comma", func(r *Registry) { r.NewGauge("a,b") }},
		{"quote", func(r *Registry) { r.NewGauge(`a"b`) }},
		{"histogram summary collision", func(r *Registry) { r.NewHistogram("h"); r.NewGauge("h.p50") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			tc.fn(NewRegistry(eng))
		})
	}
}

func TestCheckName(t *testing.T) {
	for _, ok := range []string{"queue.len", "tcp/0.cwnd", "a-b_c.D9"} {
		if err := CheckName(ok); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "a b", "a,b", `a"b`, "a\nb", "é"} {
		if err := CheckName(bad); err == nil {
			t.Errorf("CheckName(%q) accepted", bad)
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	// Two engines, same seed, one with a registry sampling on the ticker:
	// the model event sequence (and the engine RNG stream) must be
	// identical. The model schedules events from the RNG; we record its
	// draws.
	run := func(withMetrics bool) []int64 {
		eng := sim.NewEngine(42)
		var draws []int64
		if withMetrics {
			reg := NewRegistry(eng)
			reg.AddSink(&memSink{})
			reg.GaugeFunc("g", func() float64 { return float64(len(draws)) })
			reg.Start(0, 10*sim.Millisecond)
			defer reg.Close()
		}
		var step func()
		step = func() {
			draws = append(draws, eng.Rand().Int63())
			if len(draws) < 50 {
				eng.DoAfter(sim.Duration(3*sim.Millisecond), step)
			}
		}
		eng.Do(0, step)
		eng.Run(sim.Second)
		return draws
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RNG stream diverged at draw %d", i)
		}
	}
}

func TestSeriesWriterStickyError(t *testing.T) {
	sw := NewJSONLWriter(failWriter{})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		sw.Record(Point{T: float64(i), Series: "s", Value: 1})
	}
	if sw.Err() == nil {
		t.Fatalf("write error not sticky")
	}
	if err := sw.Flush(); err == nil {
		t.Fatalf("Flush lost the sticky error")
	}
	// Invalid series names are refused into the sticky error too.
	sw2 := NewJSONLWriter(&strings.Builder{})
	sw2.Record(Point{T: 0, Series: "bad name", Value: 1})
	if sw2.Err() == nil {
		t.Fatalf("invalid name not refused")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errFail }

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "synthetic write failure" }
