package obs

import (
	"math"
	"sort"
)

// Counter is a monotone event counter. The nil receiver is the disabled
// instrument: Add and Inc on a nil *Counter are single-nil-check no-ops, so
// hot paths bump counters unconditionally without an "is metrics on" branch.
// Counters are engine-local and not synchronized, like the model state they
// count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instrument for state that model code pushes
// (prefer Registry.GaugeFunc when the state can simply be read at sampling
// time). No-op on a nil receiver.
type Gauge struct {
	v float64
}

// Set records the current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histSub is the number of linear sub-buckets per power-of-two octave. Eight
// sub-buckets bound the relative width of any bucket at 1/8 of an octave
// (≈9%), so quantile estimates are within a few percent of exact over the
// full float64 range without picking a value range up front.
const histSub = 8

// Histogram is a log-linear histogram: observations are bucketed by binary
// octave (exponent) subdivided into histSub linear sub-buckets. Buckets are
// allocated lazily in a sparse map, so one histogram covers microseconds and
// hundreds of seconds at once. Zero and negative observations share a
// dedicated underflow bucket; non-finite observations are dropped. Observe
// on a nil receiver is a no-op.
type Histogram struct {
	name    string
	count   uint64
	zeros   uint64 // observations <= 0
	sum     float64
	min     float64
	max     float64
	buckets map[int32]uint64 // key = exponent*histSub + sub-bucket
}

// bucketKey maps a positive finite v to its bucket. Frexp gives
// v = frac * 2^exp with frac in [0.5, 1); the sub-bucket index is the linear
// position of frac within that octave.
func bucketKey(v float64) int32 {
	frac, exp := math.Frexp(v)
	sub := int32((frac - 0.5) * (2 * histSub)) // in [0, histSub)
	if sub >= histSub {                        // frac == nextafter(1, 0) rounding guard
		sub = histSub - 1
	}
	return int32(exp)*histSub + sub
}

// bucketBounds returns the [low, high) value range of a bucket key.
func bucketBounds(key int32) (low, high float64) {
	exp := key / histSub
	sub := key % histSub
	if sub < 0 { // Go's % is truncated; normalize for negative exponents
		sub += histSub
		exp--
	}
	low = math.Ldexp(0.5+float64(sub)/(2*histSub), int(exp))
	high = math.Ldexp(0.5+float64(sub+1)/(2*histSub), int(exp))
	return low, high
}

// Observe records one value. Non-finite values are dropped; zero or negative
// values land in a dedicated underflow bucket. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zeros++
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int32]uint64)
	}
	h.buckets[bucketKey(v)]++
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max return the extreme observations (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-th quantile (q in [0, 1]) as the
// midpoint of the bucket holding that rank, clamped to the observed min/max
// so estimates never fall outside the data. Returns 0 on an empty or nil
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation in sorted order.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.zeros {
		return h.clamp(h.min)
	}
	rank -= h.zeros
	keys := make([]int32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var seen uint64
	for _, k := range keys {
		seen += h.buckets[k]
		if seen >= rank {
			low, high := bucketBounds(k)
			return h.clamp((low + high) / 2)
		}
	}
	return h.clamp(h.max) // unreachable unless counts drifted; fail safe
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}
