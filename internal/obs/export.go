package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxSeconds bounds parseable timestamps to what fits in sim.Time (int64
// nanoseconds); beyond that a timestamp cannot correspond to any simulated
// instant and almost certainly indicates a corrupt file.
const maxSeconds = float64(math.MaxInt64) / 1e9

// SeriesWriter streams points to an io.Writer in JSONL (one
// {"t":...,"series":"...","v":...} object per line) or CSV (header
// "t_s,series,value") form. Values are formatted with the shortest exact
// float64 representation, so a write/read round trip reproduces points
// bit-for-bit. Output is buffered; call Flush when done (Registry.Close does
// this for attached sinks). Write errors are sticky: the first one is kept,
// later Records are dropped, and both Flush and Err report it.
type SeriesWriter struct {
	w           *bufio.Writer
	csv         bool
	err         error
	wroteHeader bool
	buf         []byte
}

// NewJSONLWriter returns a SeriesWriter emitting JSON Lines.
func NewJSONLWriter(w io.Writer) *SeriesWriter {
	return &SeriesWriter{w: bufio.NewWriter(w)}
}

// NewCSVWriter returns a SeriesWriter emitting CSV with a t_s,series,value
// header.
func NewCSVWriter(w io.Writer) *SeriesWriter {
	return &SeriesWriter{w: bufio.NewWriter(w), csv: true}
}

// Record writes one point. Series names must satisfy CheckName (registries
// enforce this at registration); names that don't are dropped into the
// sticky error rather than corrupting the stream.
func (sw *SeriesWriter) Record(p Point) {
	if sw == nil || sw.err != nil {
		return
	}
	if err := CheckName(p.Series); err != nil {
		sw.err = fmt.Errorf("obs: refusing to export point: %v", err)
		return
	}
	b := sw.buf[:0]
	if sw.csv {
		if !sw.wroteHeader {
			sw.wroteHeader = true
			b = append(b, "t_s,series,value\n"...)
		}
		b = strconv.AppendFloat(b, p.T, 'g', -1, 64)
		b = append(b, ',')
		b = append(b, p.Series...)
		b = append(b, ',')
		b = strconv.AppendFloat(b, p.Value, 'g', -1, 64)
		b = append(b, '\n')
	} else {
		b = append(b, `{"t":`...)
		b = strconv.AppendFloat(b, p.T, 'g', -1, 64)
		b = append(b, `,"series":"`...)
		b = append(b, p.Series...) // CheckName guarantees no JSON metacharacters
		b = append(b, `","v":`...)
		b = strconv.AppendFloat(b, p.Value, 'g', -1, 64)
		b = append(b, "}\n"...)
	}
	sw.buf = b
	if _, err := sw.w.Write(b); err != nil {
		sw.err = err
	}
}

// Flush drains the buffer and returns the sticky error, if any.
func (sw *SeriesWriter) Flush() error {
	if sw == nil {
		return nil
	}
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// Err returns the sticky write error, if any.
func (sw *SeriesWriter) Err() error {
	if sw == nil {
		return nil
	}
	return sw.err
}

// checkPoint validates a parsed point the same way ReadTrace validates trace
// events: timestamps must be finite, non-negative, and representable as sim
// time; values must be finite (the writer never emits non-finite values);
// series names must satisfy CheckName.
func checkPoint(p Point) error {
	if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
		return fmt.Errorf("non-finite time")
	}
	if p.T < 0 {
		return fmt.Errorf("negative time %v", p.T)
	}
	if p.T > maxSeconds {
		return fmt.Errorf("time %g overflows the simulator clock", p.T)
	}
	if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
		return fmt.Errorf("non-finite value")
	}
	if err := CheckName(p.Series); err != nil {
		return err
	}
	return nil
}

// parseFloat parses a strict float64: no leading/trailing junk, and the
// empty string is rejected.
func parseFloat(s, what string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return v, nil
}

// ReadJSONL parses a JSONL series stream produced by NewJSONLWriter. It is
// deliberately strict — unknown shapes, missing fields, non-finite or
// overflowing timestamps, and truncated lines are errors with line numbers —
// because a series file is evidence from a run and silent coercion would
// hide corruption.
func ReadJSONL(r io.Reader) ([]Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		p, err := parseJSONLLine(text)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		if err := checkPoint(p); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %v", err)
	}
	return out, nil
}

// parseJSONLLine parses exactly the object shape the writer emits:
// {"t":<num>,"series":"<name>","v":<num>}. A hand-rolled parser keeps the
// accepted grammar identical to the emitted one (encoding/json would accept
// many shapes the writer never produces, silently defaulting missing
// fields).
func parseJSONLLine(s string) (Point, error) {
	var p Point
	rest, ok := strings.CutPrefix(s, `{"t":`)
	if !ok {
		return p, fmt.Errorf("malformed record %q", s)
	}
	tStr, rest, ok := strings.Cut(rest, `,"series":"`)
	if !ok {
		return p, fmt.Errorf("truncated record %q", s)
	}
	name, rest, ok := strings.Cut(rest, `","v":`)
	if !ok {
		return p, fmt.Errorf("truncated record %q", s)
	}
	vStr, ok := strings.CutSuffix(rest, "}")
	if !ok {
		return p, fmt.Errorf("truncated record %q", s)
	}
	var err error
	if p.T, err = parseFloat(tStr, "time"); err != nil {
		return p, err
	}
	if p.Value, err = parseFloat(vStr, "value"); err != nil {
		return p, err
	}
	p.Series = name
	return p, nil
}

// ReadCSV parses a CSV series stream produced by NewCSVWriter. The header
// line is required; field counts and every field are validated with
// line-numbered errors, mirroring ReadJSONL.
func ReadCSV(r io.Reader) ([]Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Point
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if !sawHeader {
			if text != "t_s,series,value" {
				return nil, fmt.Errorf("obs: line %d: missing t_s,series,value header (got %q)", line, text)
			}
			sawHeader = true
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("obs: line %d: want 3 fields, got %d", line, len(fields))
		}
		var p Point
		var err error
		if p.T, err = parseFloat(fields[0], "time"); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		p.Series = fields[1]
		if p.Value, err = parseFloat(fields[2], "value"); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		if err := checkPoint(p); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %v", err)
	}
	return out, nil
}
