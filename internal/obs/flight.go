package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Flight is a bounded ring buffer over the most recent sampled points: a
// flight recorder. It is attached as a registry sink (Registry.EnableFlight)
// and holds the trailing window of every series, so when an invariant
// auditor aborts a run or the harness watchdog declares it stalled, the
// repro bundle can include what the instruments saw just before the failure.
//
// Unlike the rest of the package, Flight is synchronized: the simulation
// goroutine records into it while a wallclock watchdog on another goroutine
// may Dump it. The mutex is only taken at sampling ticks (default every
// 100ms of sim time), never on per-event hot paths.
type Flight struct {
	name  string
	mu    sync.Mutex
	ring  []Point
	next  int
	wrap  bool
	total uint64
}

// DefaultFlightDepth is the ring size used when EnableFlight is given a
// non-positive depth: with ~20 series sampled at 100ms it holds roughly the
// last second of samples, enough to see the dynamics leading into a failure
// without holding a whole run in memory.
const DefaultFlightDepth = 256

// NewFlight returns a flight recorder holding the last depth points
// (DefaultFlightDepth if depth <= 0).
func NewFlight(name string, depth int) *Flight {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &Flight{name: name, ring: make([]Point, depth)}
}

// Name returns the identifier given at creation (typically the scenario).
func (f *Flight) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Record stores one point, evicting the oldest when full. Safe on nil.
func (f *Flight) Record(p Point) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = p
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrap = true
	}
	f.total++
	f.mu.Unlock()
}

// Points returns a snapshot of the buffered points, oldest first. Safe for
// concurrent use and on nil.
func (f *Flight) Points() []Point {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrap {
		out := make([]Point, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Point, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Dump renders the buffered points as human-readable lines, oldest first,
// preceded by a header identifying the recorder and how much was dropped.
// The format per point is "t=<seconds> <series>=<value>". Safe on nil (an
// empty dump).
func (f *Flight) Dump() []string {
	if f == nil {
		return nil
	}
	pts := f.Points()
	f.mu.Lock()
	total := f.total
	f.mu.Unlock()
	out := make([]string, 0, len(pts)+1)
	out = append(out, fmt.Sprintf("flight %q: %d of %d points retained", f.name, len(pts), total))
	for _, p := range pts {
		out = append(out, "t="+strconv.FormatFloat(p.T, 'f', 6, 64)+
			" "+p.Series+"="+strconv.FormatFloat(p.Value, 'g', -1, 64))
	}
	return out
}

// Process-wide set of flight recorders attached to running registries. The
// harness stall watchdog fires on a wallclock timer with no reference to the
// stuck engine, so discovery has to be global; entries are keyed by pointer
// and removed at Registry.Close, and parallel sweeps simply contribute one
// entry per in-flight scenario.
var (
	activeMu sync.Mutex
	active   = make(map[*Flight]struct{})
)

func (f *Flight) activate() {
	activeMu.Lock()
	active[f] = struct{}{}
	activeMu.Unlock()
}

func (f *Flight) deactivate() {
	activeMu.Lock()
	delete(active, f)
	activeMu.Unlock()
}

// ActiveFlights returns the flight recorders of all registries that have
// been started and not yet closed, in deterministic (name, pointer-set
// snapshot) order.
func ActiveFlights() []*Flight {
	activeMu.Lock()
	out := make([]*Flight, 0, len(active))
	for f := range active {
		out = append(out, f)
	}
	activeMu.Unlock()
	// Map iteration is randomized; sort for stable dumps.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].name < out[j-1].name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ActiveFlightDumps concatenates Dump output for every active flight
// recorder — what the harness watchdog appends to a stalled-run report. The
// result is capped at maxLines lines (0 = no cap) to keep error text
// bounded.
func ActiveFlightDumps(maxLines int) string {
	var lines []string
	for _, f := range ActiveFlights() {
		lines = append(lines, f.Dump()...)
	}
	if maxLines > 0 && len(lines) > maxLines {
		dropped := len(lines) - maxLines
		lines = append(lines[:maxLines], fmt.Sprintf("... %d more flight-recorder lines elided", dropped))
	}
	return strings.Join(lines, "\n")
}
