package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight("scen", 4)
	for i := 0; i < 10; i++ {
		f.Record(Point{T: float64(i), Series: "s", Value: float64(i)})
	}
	pts := f.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.T != want {
			t.Fatalf("point %d: t=%v, want %v (oldest-first window)", i, p.T, want)
		}
	}
	dump := f.Dump()
	if len(dump) != 5 {
		t.Fatalf("dump has %d lines, want header + 4", len(dump))
	}
	if want := `flight "scen": 4 of 10 points retained`; dump[0] != want {
		t.Fatalf("header %q, want %q", dump[0], want)
	}
	if !strings.HasPrefix(dump[1], "t=6.000000 s=6") {
		t.Fatalf("first dumped point %q", dump[1])
	}
}

func TestFlightPartialFill(t *testing.T) {
	f := NewFlight("x", 8)
	f.Record(Point{T: 1, Series: "a", Value: 2})
	if pts := f.Points(); len(pts) != 1 || pts[0].T != 1 {
		t.Fatalf("partial fill: %+v", pts)
	}
	if NewFlight("y", 0) == nil || len(NewFlight("y", 0).ring) != DefaultFlightDepth {
		t.Fatalf("depth<=0 did not default")
	}
	var nilF *Flight
	nilF.Record(Point{})
	if nilF.Points() != nil || nilF.Dump() != nil || nilF.Name() != "" {
		t.Fatalf("nil flight not inert")
	}
}

func TestActiveFlightSet(t *testing.T) {
	// The active set is process-global; other tests must not be running
	// registries concurrently (go test runs tests in a package serially).
	base := len(ActiveFlights())
	a := NewFlight("b-scenario", 4)
	b := NewFlight("a-scenario", 4)
	a.activate()
	b.activate()
	defer a.deactivate()
	defer b.deactivate()
	fls := ActiveFlights()
	if len(fls) != base+2 {
		t.Fatalf("active count %d, want %d", len(fls), base+2)
	}
	// Sorted by name for stable dumps.
	for i := 1; i < len(fls); i++ {
		if fls[i-1].Name() > fls[i].Name() {
			t.Fatalf("active flights not name-sorted: %q > %q", fls[i-1].Name(), fls[i].Name())
		}
	}
	a.Record(Point{T: 1, Series: "s", Value: 1})
	dump := ActiveFlightDumps(0)
	if !strings.Contains(dump, `flight "b-scenario"`) || !strings.Contains(dump, `flight "a-scenario"`) {
		t.Fatalf("dump missing recorders:\n%s", dump)
	}
	// The cap elides trailing lines and says how many.
	capped := ActiveFlightDumps(1)
	if lines := strings.Split(capped, "\n"); len(lines) != 2 ||
		!strings.Contains(lines[1], "more flight-recorder lines elided") {
		t.Fatalf("cap not applied:\n%s", capped)
	}
	a.deactivate()
	b.deactivate()
	if len(ActiveFlights()) != base {
		t.Fatalf("deactivate leaked entries")
	}
}

// TestFlightConcurrentDump drives Record from one goroutine and Dump/Points
// from another; under -race this proves the watchdog can dump a live
// recorder.
func TestFlightConcurrentDump(t *testing.T) {
	f := NewFlight("race", 16)
	stop := make(chan struct{})
	var recorder sync.WaitGroup
	recorder.Add(1)
	go func() {
		defer recorder.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				f.Record(Point{T: float64(i), Series: "s", Value: float64(i)})
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if got := f.Dump(); len(got) == 0 {
			t.Fatalf("empty dump from live recorder")
		}
		f.Points()
	}
	close(stop)
	recorder.Wait()
}
