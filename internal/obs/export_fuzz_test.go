package obs

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeeds covers the interesting corners for both readers: writer-shaped
// valid lines, whitespace, non-finite and overflowing timestamps, and
// truncation at every structural boundary (mirrors netem's FuzzReadTrace).
var fuzzSeeds = []string{
	`{"t":0,"series":"queue.len","v":17}`,
	`{"t":0.1,"series":"tcp/0.cwnd","v":12.000000000000002}`,
	`{"t":59.99999999,"series":"a-b_c.D","v":-1e-300}`,
	"",
	"\n\n  \n",
	`{"t":NaN,"series":"a","v":1}`,
	`{"t":1e300,"series":"a","v":1}`,
	`{"t":-1,"series":"a","v":1}`,
	`{"t":1,"series":"a","v":Inf}`,
	`{"t":1,"series":"a`,
	`{"t":1,"series":"a","v":`,
	`{"t":1,"series":"a","v":1`,
	`{"time":1,"series":"a","v":1}`,
	"t_s,series,value\n0,queue.len,17",
	"t_s,series,value\n0.1,tcp/0.cwnd,12.000000000000002\n2,a,3",
	"t_s,series,value\nNaN,a,1",
	"t_s,series,value\n1,a",
	"t_s,series,value\n1,a,2,3",
	"1,a,2",
}

// FuzzReadJSONL asserts ReadJSONL never panics, and that anything it accepts
// is a fixed point of the writer: re-serializing the points and re-parsing
// yields the same points byte-identically.
func FuzzReadJSONL(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		pts, err := ReadJSONL(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range pts {
			if err := checkPoint(p); err != nil {
				t.Fatalf("accepted invalid point %+v: %v", p, err)
			}
		}
		roundTripFuzz(t, pts, false)
	})
}

// FuzzReadCSV is the CSV twin of FuzzReadJSONL.
func FuzzReadCSV(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		pts, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range pts {
			if err := checkPoint(p); err != nil {
				t.Fatalf("accepted invalid point %+v: %v", p, err)
			}
		}
		roundTripFuzz(t, pts, true)
	})
}

func roundTripFuzz(t *testing.T, pts []Point, csv bool) {
	t.Helper()
	var buf bytes.Buffer
	var sw *SeriesWriter
	if csv {
		sw = NewCSVWriter(&buf)
	} else {
		sw = NewJSONLWriter(&buf)
	}
	for _, p := range pts {
		sw.Record(p)
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("re-serializing accepted points failed: %v", err)
	}
	var again []Point
	var err error
	if csv {
		again, err = ReadCSV(&buf)
	} else {
		again, err = ReadJSONL(&buf)
	}
	if err != nil {
		t.Fatalf("re-parsing our own output failed: %v", err)
	}
	if len(again) != len(pts) {
		t.Fatalf("round trip changed point count: %d -> %d", len(pts), len(again))
	}
	for i := range pts {
		if again[i] != pts[i] {
			t.Fatalf("round trip changed point %d: %+v -> %+v", i, pts[i], again[i])
		}
	}
}
