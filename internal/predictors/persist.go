package predictors

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace persistence: traces are expensive to collect (minutes of simulation)
// and cheap to analyze, so cmd/pertpredict can save one to disk and re-run
// the predictor suite against it later — the same capture-once/analyze-many
// workflow the paper applied to its tcpdump datasets.

// traceFile is the on-disk envelope; versioned so future fields stay
// readable.
type traceFile struct {
	Version int   `json:"version"`
	Trace   Trace `json:"trace"`
}

const traceVersion = 1

// Save writes the trace as versioned JSON.
func (t *Trace) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(traceFile{Version: traceVersion, Trace: *t})
}

// LoadTrace reads a trace previously written by Save.
func LoadTrace(r io.Reader) (*Trace, error) {
	var f traceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("predictors: decoding trace: %w", err)
	}
	if f.Version != traceVersion {
		return nil, fmt.Errorf("predictors: unsupported trace version %d", f.Version)
	}
	return &f.Trace, nil
}
