package predictors

import (
	"math"
	"testing"

	"pert/internal/sim"
)

func ms(x float64) sim.Duration { return sim.Milliseconds(x) }

// synthTrace builds a trace with a sawtooth RTT pattern: RTT ramps from base
// to peak over rampSamples, a queue-level loss fires at each peak, then RTT
// falls back. Sample spacing is 1 ms.
func synthTrace(cycles, rampSamples int, base, peak sim.Duration) *Trace {
	tr := &Trace{}
	t := sim.Time(0)
	for c := 0; c < cycles; c++ {
		for i := 0; i <= rampSamples; i++ {
			t += sim.Millisecond
			rtt := base + sim.Duration(float64(peak-base)*float64(i)/float64(rampSamples))
			tr.Samples = append(tr.Samples, Sample{T: t, RTT: rtt, Cwnd: 10 + float64(i), QueueFrac: float64(i) / float64(rampSamples)})
		}
		t += sim.Millisecond
		tr.QueueLosses = append(tr.QueueLosses, t)
		// Recovery: a few low samples.
		for i := 0; i < 5; i++ {
			t += sim.Millisecond
			tr.Samples = append(tr.Samples, Sample{T: t, RTT: base, Cwnd: 5, QueueFrac: 0})
		}
	}
	return tr
}

func TestThresholdPredictorOnSawtooth(t *testing.T) {
	tr := synthTrace(20, 50, ms(60), ms(80))
	p := NewThreshold(ms(65))
	res := Evaluate(p, tr, tr.QueueLosses)
	if res.BtoC != 20 {
		t.Fatalf("hits = %d, want 20 (every ramp crosses 65 ms before loss)", res.BtoC)
	}
	if res.AtoC != 0 {
		t.Fatalf("false negatives = %d", res.AtoC)
	}
	if res.BtoA != 0 {
		t.Fatalf("false positives = %d on a clean sawtooth", res.BtoA)
	}
	if e := res.Efficiency(); e != 1 {
		t.Fatalf("efficiency = %v", e)
	}
}

func TestThresholdFalseNegativeWhenTooHigh(t *testing.T) {
	tr := synthTrace(10, 50, ms(60), ms(80))
	p := NewThreshold(ms(200)) // never crossed
	res := Evaluate(p, tr, tr.QueueLosses)
	if res.BtoC != 0 || res.AtoC != 10 {
		t.Fatalf("hits=%d misses=%d, want 0/10", res.BtoC, res.AtoC)
	}
	if fn := res.FalseNegatives(); fn != 1 {
		t.Fatalf("FN rate = %v", fn)
	}
}

func TestFalsePositivesOnNoise(t *testing.T) {
	// RTT blips above threshold with no losses at all.
	tr := &Trace{}
	t0 := sim.Time(0)
	for i := 0; i < 100; i++ {
		t0 += sim.Millisecond
		rtt := ms(60)
		if i%10 == 5 {
			rtt = ms(90)
		}
		tr.Samples = append(tr.Samples, Sample{T: t0, RTT: rtt, Cwnd: 10, QueueFrac: 0.1})
	}
	p := NewThreshold(ms(65))
	res := Evaluate(p, tr, nil)
	if res.BtoA != 10 {
		t.Fatalf("false positives = %d, want 10", res.BtoA)
	}
	if res.FalsePositives() != 1 {
		t.Fatalf("FP rate = %v", res.FalsePositives())
	}
	if len(res.FalsePositiveQueueFracs) != 10 {
		t.Fatalf("fp queue fracs = %d", len(res.FalsePositiveQueueFracs))
	}
	for _, f := range res.FalsePositiveQueueFracs {
		if f != 0.1 {
			t.Fatalf("queue frac = %v", f)
		}
	}
}

func TestEWMASmootherSuppressesBlips(t *testing.T) {
	// Same noisy trace: the srtt_0.99 smoother should yield no transitions
	// into B at all, hence no false positives.
	tr := &Trace{}
	t0 := sim.Time(0)
	for i := 0; i < 1000; i++ {
		t0 += sim.Millisecond
		rtt := ms(60)
		if i%10 == 5 {
			rtt = ms(90)
		}
		tr.Samples = append(tr.Samples, Sample{T: t0, RTT: rtt, Cwnd: 10})
	}
	p := NewRelativeThreshold("ewma-0.99", ms(5), &EWMASmoother{W: 0.99})
	res := Evaluate(p, tr, nil)
	if res.BtoA != 0 || res.AtoB != 0 {
		t.Fatalf("smoothed signal still transitioned: %+v", res.Transitions)
	}
}

func TestEWMATracksPersistentShift(t *testing.T) {
	p := NewRelativeThreshold("ewma-0.99", ms(5), &EWMASmoother{W: 0.99})
	s := Sample{T: sim.Millisecond, RTT: ms(60)}
	p.Observe(s)
	// Persistent 20 ms queueing delay: the smoothed signal must cross
	// min+5ms within a few hundred samples.
	crossed := false
	for i := 0; i < 1000; i++ {
		s.T += sim.Millisecond
		s.RTT = ms(80)
		if p.Observe(s) {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("smoothed predictor never detected a persistent shift")
	}
}

func TestWindowSmoother(t *testing.T) {
	w := NewWindowSmoother(4)
	if got := w.Update(ms(10)); got != ms(10) {
		t.Fatalf("first = %v", got)
	}
	w.Update(ms(20))
	w.Update(ms(30))
	if got := w.Update(ms(40)); got != ms(25) {
		t.Fatalf("full window = %v", got)
	}
	// Rolls: 20,30,40,50 -> 35.
	if got := w.Update(ms(50)); got != ms(35) {
		t.Fatalf("rolled = %v", got)
	}
}

func TestCARDDetectsRisingDelay(t *testing.T) {
	c := &CARD{}
	t0 := sim.Time(0)
	state := false
	// Rising RTT, sampled once per RTT via the gate.
	for i := 0; i < 20; i++ {
		t0 += 100 * sim.Millisecond
		state = c.Observe(Sample{T: t0, RTT: ms(60 + float64(i)*3)})
	}
	if !state {
		t.Fatal("CARD missed a monotone delay ramp")
	}
	for i := 0; i < 5; i++ {
		t0 += 100 * sim.Millisecond
		state = c.Observe(Sample{T: t0, RTT: ms(60)})
	}
	if state {
		t.Fatal("CARD stuck in congestion after delay fell")
	}
}

func TestDUALMidpointRule(t *testing.T) {
	d := &DUAL{}
	t0 := sim.Time(0)
	obs := func(rtt sim.Duration) bool {
		t0 += 200 * sim.Millisecond
		return d.Observe(Sample{T: t0, RTT: rtt})
	}
	obs(ms(60))  // min
	obs(ms(100)) // max; midpoint now 80
	if obs(ms(70)) {
		t.Fatal("70 ms below midpoint flagged")
	}
	if !obs(ms(90)) {
		t.Fatal("90 ms above midpoint not flagged")
	}
}

func TestVegasPredictorQueueEstimate(t *testing.T) {
	v := NewVegasPredictor()
	t0 := sim.Time(0)
	obs := func(rtt sim.Duration, cwnd float64) bool {
		t0 += 200 * sim.Millisecond
		return v.Observe(Sample{T: t0, RTT: rtt, Cwnd: cwnd})
	}
	obs(ms(60), 10)
	// cwnd 20, RTT 66ms: diff = 20*6/66 = 1.8 < 3: no congestion.
	if obs(ms(66), 20) {
		t.Fatal("small backlog flagged")
	}
	// cwnd 40, RTT 75ms: diff = 40*15/75 = 8 > 3: congestion.
	if !obs(ms(75), 40) {
		t.Fatal("large backlog missed")
	}
}

func TestCIMShortVsLong(t *testing.T) {
	c := NewCIM()
	t0 := sim.Time(0)
	state := false
	for i := 0; i < 150; i++ {
		t0 += 100 * sim.Millisecond
		state = c.Observe(Sample{T: t0, RTT: ms(60)})
	}
	if state {
		t.Fatal("flat RTT flagged")
	}
	for i := 0; i < 10; i++ {
		t0 += 100 * sim.Millisecond
		state = c.Observe(Sample{T: t0, RTT: ms(90)})
	}
	if !state {
		t.Fatal("recent RTT surge missed")
	}
}

func TestPerRTTGateSubsamples(t *testing.T) {
	c := &CARD{}
	t0 := sim.Time(0)
	// 1 ms apart with 100 ms RTTs: only ~1 in 100 samples accepted, so a
	// rising ramp is seen as rising at epoch granularity.
	for i := 0; i < 1000; i++ {
		t0 += sim.Millisecond
		c.Observe(Sample{T: t0, RTT: ms(100 + float64(i)/10)})
	}
	if c.prev == 0 {
		t.Fatal("gate never accepted")
	}
	// Epochs keep being accepted through the trace (RTT grows toward
	// 200 ms, so the last epoch can start anywhere in the final 200 ms).
	if c.gate.last < 800*sim.Millisecond {
		t.Fatalf("last accepted epoch at %v", c.gate.last)
	}
}

func TestCoalesceLosses(t *testing.T) {
	in := []sim.Time{ms(100), ms(101), ms(102), ms(300), ms(301), ms(900)}
	out := CoalesceLosses(in, ms(50))
	want := []sim.Time{ms(100), ms(300), ms(900)}
	if len(out) != len(want) {
		t.Fatalf("coalesced = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("coalesced = %v", out)
		}
	}
	if CoalesceLosses(nil, ms(1)) != nil {
		t.Fatal("nil input")
	}
	// Unsorted input is sorted first.
	out = CoalesceLosses([]sim.Time{ms(500), ms(100)}, ms(50))
	if len(out) != 2 || out[0] != ms(100) {
		t.Fatalf("unsorted = %v", out)
	}
}

func TestTrailingLossesCounted(t *testing.T) {
	tr := &Trace{Samples: []Sample{{T: sim.Millisecond, RTT: ms(90)}}}
	p := NewThreshold(ms(65))
	res := Evaluate(p, tr, []sim.Time{ms(10)})
	if res.BtoC != 1 {
		t.Fatalf("trailing loss after B sample: %+v", res.Transitions)
	}
}

func TestEvaluateRatesConsistent(t *testing.T) {
	tr := synthTrace(30, 40, ms(60), ms(90))
	for _, p := range Suite(ms(5), 100) {
		res := Evaluate(p, tr, tr.QueueLosses)
		e, fp, fn := res.Efficiency(), res.FalsePositives(), res.FalseNegatives()
		if e < 0 || e > 1 || fp < 0 || fp > 1 || fn < 0 || fn > 1 {
			t.Fatalf("%s: rates out of range: e=%v fp=%v fn=%v", p.Name(), e, fp, fn)
		}
		if res.BtoC+res.BtoA > 0 && math.Abs(e+fp-1) > 1e-9 {
			t.Fatalf("%s: efficiency + FP != 1", p.Name())
		}
	}
}
