package predictors

import (
	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/tcp"
)

// Collector gathers a Trace from a live simulation: per-ACK RTT samples of
// one tagged flow (with the bottleneck queue occupancy as ground truth) and
// the loss events at both the flow and the bottleneck queue.
type Collector struct {
	Trace Trace

	bottleneck *netem.Link
	buffer     float64
	from       sim.Time
	conn       *tcp.Conn
}

// NewCollector instruments the bottleneck link (whose queue holds bufferPkts
// packets) and returns hooks to install on the tagged flow. Samples and
// losses before from are discarded (warm-up). Every packet accepted by the
// bottleneck is stamped with the occupancy it observed; the receiver echoes
// the stamp, so each RTT sample carries the queue state that produced it.
func NewCollector(bottleneck *netem.Link, bufferPkts int, from sim.Time) *Collector {
	c := &Collector{bottleneck: bottleneck, buffer: float64(bufferPkts), from: from}
	prevDrop := bottleneck.OnDrop
	bottleneck.OnDrop = func(p *netem.Packet, now sim.Time) {
		if prevDrop != nil {
			prevDrop(p, now)
		}
		if now >= c.from {
			c.Trace.QueueLosses = append(c.Trace.QueueLosses, now)
		}
	}
	prevEnq := bottleneck.OnEnqueue
	bottleneck.OnEnqueue = func(p *netem.Packet, now sim.Time) {
		if prevEnq != nil {
			prevEnq(p, now)
		}
		p.QueueSample = float64(bottleneck.Queue.Len()) / c.buffer
	}
	return c
}

// Config returns a tcp.Config pre-wired with the collector's sampling hooks;
// merge additional fields as needed before creating the tagged flow, then
// call Bind with the created connection.
func (c *Collector) Config(base tcp.Config) tcp.Config {
	base.OnRTTSample = func(now sim.Time, rtt sim.Duration, ack *netem.Packet) {
		if now < c.from || c.conn == nil {
			return
		}
		qf := ack.QueueSample
		if qf < 0 {
			// The data packet bypassed the instrumented queue; fall back
			// to the occupancy at ACK time.
			qf = float64(c.bottleneck.Queue.Len()) / c.buffer
		}
		c.Trace.Samples = append(c.Trace.Samples, Sample{
			T:         now,
			RTT:       rtt,
			Cwnd:      c.conn.Cwnd(),
			QueueFrac: qf,
		})
	}
	base.OnLoss = func(now sim.Time, _ tcp.LossKind) {
		if now >= c.from {
			c.Trace.FlowLosses = append(c.Trace.FlowLosses, now)
		}
	}
	return base
}

// Bind attaches the tagged connection (needed to record its window).
func (c *Collector) Bind(conn *tcp.Conn) { c.conn = conn }
