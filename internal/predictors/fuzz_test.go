package predictors

import (
	"bytes"
	"testing"
)

// FuzzLoadTrace hardens the trace parser against corrupted input: it must
// never panic, and anything it accepts must survive a save/load round trip.
func FuzzLoadTrace(f *testing.F) {
	var valid bytes.Buffer
	good := &Trace{Samples: []Sample{{T: 1, RTT: ms(60), Cwnd: 4, QueueFrac: 0.3}}}
	if err := good.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"version":1,"trace":{}}`))
	f.Add([]byte(`{"version":2,"trace":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Save(&out); err != nil {
			t.Fatalf("accepted trace failed to re-save: %v", err)
		}
		again, err := LoadTrace(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Samples) != len(got.Samples) {
			t.Fatal("round trip changed sample count")
		}
	})
}
