package predictors

import (
	"bytes"
	"strings"
	"testing"

	"pert/internal/sim"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{
		Samples: []Sample{
			{T: sim.Millisecond, RTT: ms(60), Cwnd: 10, QueueFrac: 0.25},
			{T: 2 * sim.Millisecond, RTT: ms(75), Cwnd: 11, QueueFrac: 0.5},
		},
		FlowLosses:  []sim.Time{ms(100)},
		QueueLosses: []sim.Time{ms(90), ms(95)},
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 2 || got.Samples[1].RTT != ms(75) || got.Samples[1].QueueFrac != 0.5 {
		t.Fatalf("samples: %+v", got.Samples)
	}
	if len(got.FlowLosses) != 1 || len(got.QueueLosses) != 2 {
		t.Fatalf("losses: %v %v", got.FlowLosses, got.QueueLosses)
	}
	// The restored trace must evaluate identically.
	a := Evaluate(NewThreshold(ms(65)), tr, tr.QueueLosses)
	b := Evaluate(NewThreshold(ms(65)), got, got.QueueLosses)
	if a.Transitions != b.Transitions {
		t.Fatalf("evaluation diverged: %+v vs %+v", a.Transitions, b.Transitions)
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":99,"trace":{}}`)); err == nil {
		t.Fatal("future version accepted")
	}
}
