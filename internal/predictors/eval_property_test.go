package predictors

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/sim"
)

// Property: for any trace and loss series, the Figure 1 state machine
// conserves events: every loss is attributed exactly once (n2 + n4 equals
// the loss count), every B exit was preceded by a B entry (n2 + n5 <= n1),
// and all counts are non-negative.
func TestEvaluateConservationProperty(t *testing.T) {
	f := func(rttsRaw []uint16, lossRaw []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		now := sim.Time(0)
		for _, v := range rttsRaw {
			now += sim.Duration(1+v%20) * sim.Millisecond
			tr.Samples = append(tr.Samples, Sample{
				T:   now,
				RTT: ms(50 + float64(v%80)),
			})
		}
		horizon := now + sim.Second
		var losses []sim.Time
		for range lossRaw {
			losses = append(losses, sim.Time(rng.Int63n(int64(horizon)+1)))
		}
		losses = CoalesceLosses(losses, 10*sim.Millisecond)

		for _, p := range Suite(ms(5), 50) {
			res := Evaluate(p, tr, losses)
			n := res.Transitions
			if n.AtoB < 0 || n.BtoA < 0 || n.BtoC < 0 || n.AtoC < 0 {
				return false
			}
			if n.BtoC+n.AtoC != len(losses) {
				return false
			}
			if n.BtoC+n.BtoA > n.AtoB {
				return false
			}
			if len(res.FalsePositiveQueueFracs) != n.BtoA {
				return false
			}
			// Rates stay in [0,1].
			for _, r := range []float64{res.Efficiency(), res.FalsePositives(), res.FalseNegatives()} {
				if r < 0 || r > 1 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is deterministic — the same predictor configuration
// replayed over the same trace yields identical counts.
func TestEvaluateDeterministicProperty(t *testing.T) {
	f := func(rttsRaw []uint16) bool {
		tr := &Trace{}
		now := sim.Time(0)
		for _, v := range rttsRaw {
			now += 5 * sim.Millisecond
			tr.Samples = append(tr.Samples, Sample{T: now, RTT: ms(50 + float64(v%60)), Cwnd: 10})
			if v%17 == 0 {
				tr.QueueLosses = append(tr.QueueLosses, now)
			}
		}
		losses := CoalesceLosses(tr.QueueLosses, 10*sim.Millisecond)
		a := Evaluate(NewCIM(), tr, losses)
		b := Evaluate(NewCIM(), tr, losses)
		return a.Transitions == b.Transitions
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
