package predictors

import (
	"sort"

	"pert/internal/sim"
)

// Trace is the recorded history of one tagged flow plus ground truth: its
// per-ACK RTT samples, loss events observed by the flow itself (fast
// retransmits and timeouts), and loss events at the bottleneck queue. It is
// the in-simulator equivalent of the tcpdump datasets of [21] and [26], with
// the queue-level ground truth those studies lack.
type Trace struct {
	Samples     []Sample
	FlowLosses  []sim.Time
	QueueLosses []sim.Time
}

// Transitions counts the Figure 1 state-machine transitions observed when a
// predictor's A/B states are replayed against a loss series.
type Transitions struct {
	AtoB int // transition 1: congestion predicted
	BtoC int // transition 2: predicted congestion followed by loss (hit)
	AtoC int // transition 4: loss with no preceding prediction (false negative)
	BtoA int // transition 5: prediction cleared without loss (false positive)
}

// Efficiency is n2/(n2+n5): the fraction of congestion predictions that were
// followed by loss.
func (t Transitions) Efficiency() float64 {
	if t.BtoC+t.BtoA == 0 {
		return 0
	}
	return float64(t.BtoC) / float64(t.BtoC+t.BtoA)
}

// FalsePositives is n5/(n2+n5).
func (t Transitions) FalsePositives() float64 {
	if t.BtoC+t.BtoA == 0 {
		return 0
	}
	return float64(t.BtoA) / float64(t.BtoC+t.BtoA)
}

// FalseNegatives is n4/(n2+n4): the fraction of losses that arrived without
// a prediction.
func (t Transitions) FalseNegatives() float64 {
	if t.BtoC+t.AtoC == 0 {
		return 0
	}
	return float64(t.AtoC) / float64(t.BtoC+t.AtoC)
}

// CoalesceLosses merges loss events closer than gap into single congestion
// episodes, so a burst of queue overflows counts as one loss event the way a
// single fast-retransmit episode does at the flow level.
func CoalesceLosses(losses []sim.Time, gap sim.Duration) []sim.Time {
	if len(losses) == 0 {
		return nil
	}
	sorted := append([]sim.Time(nil), losses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := []sim.Time{sorted[0]}
	for _, t := range sorted[1:] {
		if t-out[len(out)-1] >= gap {
			out = append(out, t)
		}
	}
	return out
}

// EvalResult couples the transition counts with the false-positive context
// needed by Figure 4: the normalized bottleneck queue occupancy at each
// false-positive instant.
type EvalResult struct {
	Transitions
	FalsePositiveQueueFracs []float64
}

// Evaluate replays a predictor over the trace's sample stream against the
// given (already coalesced) loss series and counts the Figure 1 transitions.
//
// The state machine: the predictor's boolean output defines states A/B
// between losses. When a loss event falls between two samples, the transition
// is B->C if the predictor was in B at the preceding sample, A->C otherwise;
// after C the machine resumes from the predictor's next output. A B->A
// output transition with no intervening loss is a false positive.
func Evaluate(p Predictor, trace *Trace, losses []sim.Time) EvalResult {
	var res EvalResult
	inB := false
	li := 0
	for _, s := range trace.Samples {
		// Account for losses that occurred before this sample.
		for li < len(losses) && losses[li] <= s.T {
			if inB {
				res.BtoC++
			} else {
				res.AtoC++
			}
			inB = false // response to loss returns the flow toward A
			li++
		}
		next := p.Observe(s)
		switch {
		case !inB && next:
			res.AtoB++
		case inB && !next:
			res.BtoA++
			res.FalsePositiveQueueFracs = append(res.FalsePositiveQueueFracs, s.QueueFrac)
		}
		inB = next
	}
	// Trailing losses after the final sample.
	for li < len(losses) {
		if inB {
			res.BtoC++
		} else {
			res.AtoC++
		}
		inB = false
		li++
	}
	return res
}
