package predictors

import (
	"math"

	"pert/internal/sim"
)

// SyncTrend approximates Sync-TCP's congestion detector (Weigle et al.,
// Computer Communications 2005): the trend of windowed average delays. The
// original works on one-way delays; applied to a round-trip sample stream it
// averages each window of Window samples and predicts congestion while the
// last Consecutive window averages are strictly increasing and the latest
// average sits above the observed minimum by Margin.
type SyncTrend struct {
	Window      int
	Consecutive int
	Margin      sim.Duration

	cur   sim.Duration
	n     int
	avgs  []sim.Duration
	min   sim.Duration
	state bool
}

// NewSyncTrend builds the detector with Sync-TCP-like defaults: 5-sample
// windows, 3 consecutive increases, 5 ms margin.
func NewSyncTrend() *SyncTrend {
	return &SyncTrend{Window: 5, Consecutive: 3, Margin: 5 * sim.Millisecond, min: sim.MaxTime}
}

// Name implements Predictor.
func (*SyncTrend) Name() string { return "sync-trend" }

// Observe implements Predictor.
func (s *SyncTrend) Observe(smp Sample) bool {
	if smp.RTT < s.min {
		s.min = smp.RTT
	}
	s.cur += smp.RTT
	s.n++
	if s.n < s.Window {
		return s.state
	}
	avg := s.cur / sim.Duration(s.n)
	s.cur, s.n = 0, 0
	s.avgs = append(s.avgs, avg)
	if len(s.avgs) > s.Consecutive+1 {
		s.avgs = s.avgs[1:]
	}
	if len(s.avgs) < s.Consecutive+1 {
		return s.state
	}
	rising := true
	for i := 1; i < len(s.avgs); i++ {
		if s.avgs[i] <= s.avgs[i-1] {
			rising = false
			break
		}
	}
	latest := s.avgs[len(s.avgs)-1]
	switch {
	case rising && latest > s.min+s.Margin:
		s.state = true
	case latest <= s.min+s.Margin:
		s.state = false
	default:
		// High but not rising: hold the previous state (Sync-TCP's
		// intermediate levels collapse to hysteresis in a binary detector).
	}
	return s.state
}

// BFA approximates TCP-BFA (Awadallah & Rai, 1998), which watches the RTT
// variance: as the bottleneck buffer fills, the RTT rises while its
// variation collapses (every packet waits for a full, deterministic queue).
// Congestion is predicted when the coefficient of variation over the last
// Window samples falls below CVThresh while the mean exceeds the observed
// minimum by Margin.
type BFA struct {
	Window   int
	CVThresh float64
	Margin   sim.Duration

	buf   []sim.Duration
	head  int
	min   sim.Duration
	state bool
}

// NewBFA builds the detector with 16-sample windows, CV threshold 0.05, and
// a 5 ms margin.
func NewBFA() *BFA {
	return &BFA{Window: 16, CVThresh: 0.05, Margin: 5 * sim.Millisecond, min: sim.MaxTime}
}

// Name implements Predictor.
func (*BFA) Name() string { return "bfa" }

// Observe implements Predictor.
func (b *BFA) Observe(smp Sample) bool {
	if smp.RTT < b.min {
		b.min = smp.RTT
	}
	if len(b.buf) < b.Window {
		b.buf = append(b.buf, smp.RTT)
	} else {
		b.buf[b.head] = smp.RTT
		b.head = (b.head + 1) % b.Window
	}
	if len(b.buf) < b.Window {
		return b.state
	}
	var sum, sumsq float64
	for _, v := range b.buf {
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	n := float64(len(b.buf))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	cv := math.Sqrt(variance) / mean
	b.state = cv < b.CVThresh && sim.Duration(mean) > b.min+b.Margin
	return b.state
}
