package predictors

import (
	"testing"

	"pert/internal/sim"
)

func feed(p Predictor, rtts []sim.Duration) bool {
	t := sim.Time(0)
	state := false
	for _, r := range rtts {
		t += sim.Millisecond
		state = p.Observe(Sample{T: t, RTT: r, Cwnd: 10})
	}
	return state
}

func ramp(from, to sim.Duration, n int) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = from + sim.Duration(float64(to-from)*float64(i)/float64(n-1))
	}
	return out
}

func flat(v sim.Duration, n int) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSyncTrendDetectsRisingDelay(t *testing.T) {
	p := NewSyncTrend()
	// Anchor the minimum, then ramp.
	feed(p, flat(ms(60), 20))
	if feed(p, ramp(ms(60), ms(100), 60)) != true {
		t.Fatal("rising delay not detected")
	}
}

func TestSyncTrendClearsOnReturnToBase(t *testing.T) {
	p := NewSyncTrend()
	feed(p, flat(ms(60), 20))
	feed(p, ramp(ms(60), ms(100), 60))
	if feed(p, flat(ms(60), 40)) != false {
		t.Fatal("state stuck after delay returned to base")
	}
}

func TestSyncTrendIgnoresFlatHighAfterHold(t *testing.T) {
	// High but non-rising delay holds the previous state (hysteresis);
	// starting from low state, a jump followed by a plateau must flip it
	// during the rise only.
	p := NewSyncTrend()
	feed(p, flat(ms(60), 20))
	state := feed(p, flat(ms(61), 25)) // noise-level bump, not rising
	if state {
		t.Fatal("flat near-minimum flagged")
	}
}

func TestBFADetectsFullBuffer(t *testing.T) {
	p := NewBFA()
	// Varying RTTs around a low mean: no congestion.
	var noisy []sim.Duration
	for i := 0; i < 64; i++ {
		noisy = append(noisy, ms(60+float64(i%8)*3))
	}
	if feed(p, noisy) {
		t.Fatal("noisy low RTTs flagged")
	}
	// High and nearly constant RTT: buffer full, variance collapsed.
	if !feed(p, flat(ms(120), 32)) {
		t.Fatal("saturated buffer not detected")
	}
	// Low and constant again: high mean condition fails.
	if feed(p, flat(ms(60), 64)) {
		t.Fatal("flat baseline flagged after recovery")
	}
}

func TestBFAHighVarianceHighMeanNotFlagged(t *testing.T) {
	p := NewBFA()
	feed(p, flat(ms(60), 20)) // anchor min
	var wild []sim.Duration
	for i := 0; i < 64; i++ {
		wild = append(wild, ms(80+float64(i%16)*10))
	}
	if feed(p, wild) {
		t.Fatal("high-variance delay flagged (queue still churning)")
	}
}

func TestSuiteIncludesExtras(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Suite(ms(5), 100) {
		names[p.Name()] = true
	}
	for _, want := range []string{"sync-trend", "bfa", "card", "tri-s", "dual", "vegas", "cim",
		"inst-rtt", "movavg-buf", "ewma-0.875", "ewma-0.99"} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
	if len(names) != 11 {
		t.Errorf("suite has %d predictors", len(names))
	}
}
