// Package predictors implements the end-host congestion predictors surveyed
// in Section 2 of the paper (CARD, TRI-S, DUAL, Vegas, CIM, instantaneous
// RTT, window moving average, EWMA variants), the A/B/C congestion state
// machine of Figure 1, and the transition-counting evaluation that yields the
// prediction efficiency, false-positive and false-negative rates of Figures
// 2-4.
package predictors

import (
	"pert/internal/sim"
)

// Sample is one per-ACK observation of the tagged flow: the instantaneous
// RTT, the sender's congestion window, and the bottleneck queue occupancy
// (normalized to its capacity) at the sampling instant. QueueFrac is ground
// truth used only for evaluation (Figure 4), never by predictors.
type Sample struct {
	T         sim.Time
	RTT       sim.Duration
	Cwnd      float64
	QueueFrac float64
}

// Predictor consumes the tagged flow's RTT sample stream and maintains a
// binary congestion state: false = state A (low delay), true = state B (high
// delay). Implementations must be deterministic functions of the sample
// stream.
type Predictor interface {
	Name() string
	// Observe folds in one per-ACK sample and returns the predictor's
	// current state (true = congestion predicted).
	Observe(s Sample) bool
}

// perRTT gates a predictor's sampling to once per round-trip time, as CARD,
// TRI-S, DUAL, Vegas and CIM all do. Between accepted samples the wrapped
// state is held.
type perRTT struct {
	last  sim.Time
	state bool
}

// accept reports whether this sample begins a new RTT epoch.
func (g *perRTT) accept(s Sample) bool {
	if g.last != 0 && s.T-g.last < s.RTT {
		return false
	}
	g.last = s.T
	return true
}

// Threshold predicts congestion when the instantaneous RTT exceeds a fixed
// absolute threshold. With per-packet samples this is the "instantaneous
// RTT" predictor of Section 2.4; Figure 2 uses it with a 65 ms threshold.
type Threshold struct {
	Thresh sim.Duration
	name   string
}

// NewThreshold builds the fixed-threshold predictor.
func NewThreshold(thresh sim.Duration) *Threshold {
	return &Threshold{Thresh: thresh, name: "inst-rtt"}
}

// Name implements Predictor.
func (p *Threshold) Name() string { return p.name }

// Observe implements Predictor.
func (p *Threshold) Observe(s Sample) bool { return s.RTT > p.Thresh }

// RelativeThreshold predicts congestion when a smoothed RTT signal exceeds
// the flow's minimum observed RTT by a fixed queueing-delay margin. A nil
// smoother gives the instantaneous variant. This is the family Section 2.4
// sweeps: instantaneous, windowed moving average, EWMA(7/8) and EWMA(0.99).
type RelativeThreshold struct {
	Margin   sim.Duration
	smoother Smoother
	min      sim.Duration
	name     string
}

// Smoother filters the RTT sample stream.
type Smoother interface {
	Update(rtt sim.Duration) sim.Duration
}

// NewRelativeThreshold builds the predictor; smoother may be nil for the
// instantaneous signal.
func NewRelativeThreshold(name string, margin sim.Duration, smoother Smoother) *RelativeThreshold {
	return &RelativeThreshold{Margin: margin, smoother: smoother, min: sim.MaxTime, name: name}
}

// Name implements Predictor.
func (p *RelativeThreshold) Name() string { return p.name }

// Observe implements Predictor.
func (p *RelativeThreshold) Observe(s Sample) bool {
	if s.RTT < p.min {
		p.min = s.RTT
	}
	v := s.RTT
	if p.smoother != nil {
		v = p.smoother.Update(s.RTT)
	}
	return v > p.min+p.Margin
}

// EWMASmoother is the exponentially weighted moving average with history
// weight W (7/8 for TCP's RTO filter, 0.99 for the paper's srtt_0.99).
type EWMASmoother struct {
	W    float64
	v    float64
	init bool
}

// Update implements Smoother.
func (e *EWMASmoother) Update(rtt sim.Duration) sim.Duration {
	if !e.init {
		e.init = true
		e.v = float64(rtt)
	} else {
		e.v = e.W*e.v + (1-e.W)*float64(rtt)
	}
	return sim.Duration(e.v)
}

// WindowSmoother is a sliding-window moving average over the last N samples
// (the paper uses N = 750, the bottleneck buffer size, as the oracle
// smoother).
type WindowSmoother struct {
	N    int
	buf  []sim.Duration
	head int
	sum  sim.Duration
}

// NewWindowSmoother builds an N-sample moving average.
func NewWindowSmoother(n int) *WindowSmoother {
	if n <= 0 {
		panic("predictors: window size must be positive")
	}
	return &WindowSmoother{N: n}
}

// Update implements Smoother.
func (w *WindowSmoother) Update(rtt sim.Duration) sim.Duration {
	if len(w.buf) < w.N {
		w.buf = append(w.buf, rtt)
		w.sum += rtt
	} else {
		w.sum += rtt - w.buf[w.head]
		w.buf[w.head] = rtt
		w.head = (w.head + 1) % w.N
	}
	return w.sum / sim.Duration(len(w.buf))
}

// CARD is Jain's 1989 delay-gradient predictor: once per RTT, the normalized
// delay gradient (RTT_i - RTT_{i-1})/(RTT_i + RTT_{i-1}) is computed; a
// positive gradient predicts congestion.
type CARD struct {
	gate perRTT
	prev sim.Duration
}

// Name implements Predictor.
func (*CARD) Name() string { return "card" }

// Observe implements Predictor.
func (c *CARD) Observe(s Sample) bool {
	if !c.gate.accept(s) {
		return c.gate.state
	}
	if c.prev == 0 {
		c.prev = s.RTT
		return false
	}
	ndg := float64(s.RTT-c.prev) / float64(s.RTT+c.prev)
	c.prev = s.RTT
	c.gate.state = ndg > 0
	return c.gate.state
}

// TRIS is the Tri-S scheme of Wang & Crowcroft 1991: once per RTT, the
// normalized throughput gradient is computed from the achieved throughput
// cwnd/RTT; a vanishing or negative gradient while the window grows predicts
// that the knee has been passed.
type TRIS struct {
	gate     perRTT
	prevTput float64
	prevWnd  float64
}

// Name implements Predictor.
func (*TRIS) Name() string { return "tri-s" }

// Observe implements Predictor.
func (t *TRIS) Observe(s Sample) bool {
	if !t.gate.accept(s) {
		return t.gate.state
	}
	tput := s.Cwnd / s.RTT.Seconds()
	defer func() { t.prevTput, t.prevWnd = tput, s.Cwnd }()
	if t.prevTput == 0 {
		return false
	}
	dw := s.Cwnd - t.prevWnd
	if dw <= 0 {
		// Window not probing upward: keep the previous state.
		return t.gate.state
	}
	// Normalized throughput gradient per unit of window increase.
	ntg := (tput - t.prevTput) / t.prevTput / dw
	t.gate.state = ntg < 0.01
	return t.gate.state
}

// DUAL is Wang & Crowcroft 1992: congestion is predicted when the RTT
// exceeds the midpoint of the minimum and maximum observed RTTs.
type DUAL struct {
	gate     perRTT
	min, max sim.Duration
}

// Name implements Predictor.
func (*DUAL) Name() string { return "dual" }

// Observe implements Predictor.
func (d *DUAL) Observe(s Sample) bool {
	if d.min == 0 || s.RTT < d.min {
		d.min = s.RTT
	}
	if s.RTT > d.max {
		d.max = s.RTT
	}
	if !d.gate.accept(s) {
		return d.gate.state
	}
	d.gate.state = s.RTT > (d.min+d.max)/2
	return d.gate.state
}

// VegasPredictor applies Vegas's expected-vs-actual throughput comparison as
// a pure congestion detector: diff = cwnd*(RTT-baseRTT)/RTT packets queued;
// congestion is predicted when diff exceeds Beta.
type VegasPredictor struct {
	Beta float64
	gate perRTT
	base sim.Duration
}

// NewVegasPredictor builds the predictor with the canonical beta = 3.
func NewVegasPredictor() *VegasPredictor { return &VegasPredictor{Beta: 3} }

// Name implements Predictor.
func (*VegasPredictor) Name() string { return "vegas" }

// Observe implements Predictor.
func (v *VegasPredictor) Observe(s Sample) bool {
	if v.base == 0 || s.RTT < v.base {
		v.base = s.RTT
	}
	if !v.gate.accept(s) {
		return v.gate.state
	}
	diff := s.Cwnd * float64(s.RTT-v.base) / float64(s.RTT)
	v.gate.state = diff > v.Beta
	return v.gate.state
}

// CIM is Martin, Nilsson & Rhee 2003: congestion is inferred when a short
// moving average of RTT samples exceeds a long moving average.
type CIM struct {
	Short, Long int
	gate        perRTT
	short, long *WindowSmoother
}

// NewCIM builds CIM with an 8-sample short window over a 100-sample long
// window.
func NewCIM() *CIM {
	return &CIM{Short: 8, Long: 100, short: NewWindowSmoother(8), long: NewWindowSmoother(100)}
}

// Name implements Predictor.
func (*CIM) Name() string { return "cim" }

// Observe implements Predictor.
func (c *CIM) Observe(s Sample) bool {
	if !c.gate.accept(s) {
		return c.gate.state
	}
	sa := c.short.Update(s.RTT)
	la := c.long.Update(s.RTT)
	c.gate.state = sa > la
	return c.gate.state
}

// Suite returns the Figure 3 predictor set: the five published schemes plus
// the paper's per-ACK signal family. margin is the queueing-delay threshold
// for the relative family (the paper's study effectively uses 5 ms over a
// 60 ms path), and window is the buffer-sized moving average length.
func Suite(margin sim.Duration, window int) []Predictor {
	return []Predictor{
		&CARD{},
		&TRIS{},
		&DUAL{},
		NewVegasPredictor(),
		NewCIM(),
		NewSyncTrend(),
		NewBFA(),
		NewRelativeThreshold("inst-rtt", margin, nil),
		NewRelativeThreshold("movavg-buf", margin, NewWindowSmoother(window)),
		NewRelativeThreshold("ewma-0.875", margin, &EWMASmoother{W: 0.875}),
		NewRelativeThreshold("ewma-0.99", margin, &EWMASmoother{W: 0.99}),
	}
}
