package core

import (
	"math"
	"math/rand"
	"testing"

	"pert/internal/sim"
)

// Paper-anchored conformance tests for the PERT response curve (Section 3,
// Figure 5) and the PERT/PI controller (Section 6). These pin the numeric
// breakpoints and slopes of the RED emulation with the publication's
// parameters — Tmin = 5 ms, Tmax = 10 ms, Pmax = 0.05 — so a refactor of the
// curve cannot silently move the probability law the experiments depend on.

const probTol = 1e-12

func paperCurve() ResponseCurve {
	return ResponseCurve{Tmin: 5 * sim.Millisecond, Tmax: 10 * sim.Millisecond, Pmax: 0.05, Gentle: true}
}

func TestResponseCurveBreakpoints(t *testing.T) {
	c := paperCurve()
	for _, tc := range []struct {
		name string
		tq   sim.Duration
		want float64
	}{
		// Below Tmin: no early response.
		{"zero", 0, 0},
		{"below Tmin", 4 * sim.Millisecond, 0},
		{"just under Tmin", 5*sim.Millisecond - 1, 0},
		// At Tmin the linear ramp starts from 0.
		{"at Tmin", 5 * sim.Millisecond, 0},
		// Linear ramp Pmax*(Tq-Tmin)/(Tmax-Tmin): slope Pmax/5ms.
		{"6 ms", 6 * sim.Millisecond, 0.01},
		{"7.5 ms (midpoint)", 7500 * sim.Microsecond, 0.025},
		{"9 ms", 9 * sim.Millisecond, 0.04},
		// Just below Tmax the ramp approaches Pmax.
		{"just under Tmax", 10*sim.Millisecond - 1000, 0.05 * float64(5*sim.Millisecond-1000) / float64(5*sim.Millisecond)},
		// At Tmax the gentle segment takes over at exactly Pmax.
		{"at Tmax", 10 * sim.Millisecond, 0.05},
		// Gentle segment Pmax + (1-Pmax)*(Tq-Tmax)/Tmax: slope (1-Pmax)/10ms.
		{"12.5 ms", 12500 * sim.Microsecond, 0.05 + 0.95*0.25},
		{"15 ms (gentle midpoint)", 15 * sim.Millisecond, 0.525},
		{"17.5 ms", 17500 * sim.Microsecond, 0.05 + 0.95*0.75},
		// At and beyond 2*Tmax the probability saturates at 1.
		{"at 2*Tmax", 20 * sim.Millisecond, 1},
		{"beyond 2*Tmax", 50 * sim.Millisecond, 1},
	} {
		if got := c.Prob(tc.tq); math.Abs(got-tc.want) > probTol {
			t.Errorf("%s: Prob(%v) = %v, want %v", tc.name, tc.tq, got, tc.want)
		}
	}
}

func TestResponseCurveSlopes(t *testing.T) {
	c := paperCurve()
	// Numeric slope over each linear segment must match the analytic value
	// everywhere, not only at the endpoints.
	segSlope := func(a, b sim.Duration) float64 {
		return (c.Prob(b) - c.Prob(a)) / (b - a).Seconds()
	}
	rampSlope := c.Pmax / (c.Tmax - c.Tmin).Seconds() // 0.05 / 5ms = 10 /s
	for _, pair := range [][2]sim.Duration{
		{5 * sim.Millisecond, 6 * sim.Millisecond},
		{6 * sim.Millisecond, 9 * sim.Millisecond},
		{7 * sim.Millisecond, 10 * sim.Millisecond},
	} {
		if got := segSlope(pair[0], pair[1]); math.Abs(got-rampSlope) > 1e-6 {
			t.Errorf("RED ramp slope over [%v,%v] = %v, want %v", pair[0], pair[1], got, rampSlope)
		}
	}
	gentleSlope := (1 - c.Pmax) / c.Tmax.Seconds() // 0.95 / 10ms = 95 /s
	for _, pair := range [][2]sim.Duration{
		{10 * sim.Millisecond, 12 * sim.Millisecond},
		{12 * sim.Millisecond, 20 * sim.Millisecond},
	} {
		if got := segSlope(pair[0], pair[1]); math.Abs(got-gentleSlope) > 1e-6 {
			t.Errorf("gentle slope over [%v,%v] = %v, want %v", pair[0], pair[1], got, gentleSlope)
		}
	}
}

func TestResponseCurveNonGentleClips(t *testing.T) {
	c := paperCurve()
	c.Gentle = false
	for _, tq := range []sim.Duration{10 * sim.Millisecond, 15 * sim.Millisecond,
		20 * sim.Millisecond, sim.Second} {
		if got := c.Prob(tq); got != c.Pmax {
			t.Errorf("non-gentle Prob(%v) = %v, want clip at Pmax=%v", tq, got, c.Pmax)
		}
	}
	// The ramp below Tmax is unchanged by the Gentle flag.
	gentle := paperCurve()
	for _, tq := range []sim.Duration{0, 3 * sim.Millisecond, 7 * sim.Millisecond, 10*sim.Millisecond - 1} {
		if c.Prob(tq) != gentle.Prob(tq) {
			t.Errorf("Gentle flag changed Prob(%v) below Tmax", tq)
		}
	}
}

func TestResponseCurveMonotone(t *testing.T) {
	for _, gentle := range []bool{true, false} {
		c := paperCurve()
		c.Gentle = gentle
		prev := -1.0
		for tq := sim.Duration(0); tq <= 30*sim.Millisecond; tq += 100 * sim.Microsecond {
			p := c.Prob(tq)
			if p < prev {
				t.Fatalf("gentle=%v: Prob decreased at %v: %v -> %v", gentle, tq, prev, p)
			}
			if p < 0 || p > 1 {
				t.Fatalf("gentle=%v: Prob(%v) = %v outside [0,1]", gentle, tq, p)
			}
			prev = p
		}
	}
}

func TestDefaultCurveMatchesPaper(t *testing.T) {
	c := DefaultCurve()
	if c.Tmin != 5*sim.Millisecond || c.Tmax != 10*sim.Millisecond ||
		c.Pmax != 0.05 || !c.Gentle {
		t.Fatalf("DefaultCurve = %+v, want paper parameters (5ms, 10ms, 0.05, gentle)", c)
	}
}

// TestREDResponderProberConsistency: the instrumentation probe P() must agree
// with the probability OnRTT computes for the same signal state, and must not
// advance the signal.
func TestREDResponderProberConsistency(t *testing.T) {
	r := NewREDResponder(rand.New(rand.NewSource(1)))
	var _ Prober = r // compile-time: REDResponder exposes its probability
	now := sim.Time(0)
	// Establish P = 40 ms, then push srtt up with 55 ms samples.
	for i := 0; i < 400; i++ {
		rtt := 55 * sim.Millisecond
		if i == 0 {
			rtt = 40 * sim.Millisecond
		}
		now += 10 * sim.Millisecond
		d := r.OnRTT(now, rtt)
		probe := r.P()
		if math.Abs(probe-d.Prob) > probTol {
			t.Fatalf("sample %d: P() = %v but OnRTT reported %v", i, probe, d.Prob)
		}
	}
	before := r.Signal().QueueingDelay()
	for i := 0; i < 100; i++ {
		r.P()
	}
	if r.Signal().QueueingDelay() != before {
		t.Fatalf("P() advanced the signal")
	}
}

// TestPIResponderMonotoneInDelay: the PI emulation's probability must move
// with the sign of the delay error — rise while the estimated queueing delay
// sits above target, fall (and floor at 0) while below (Section 6,
// equation 18).
func TestPIResponderMonotoneInDelay(t *testing.T) {
	mk := func() *PIResponder {
		params := DesignPERTPI(5000, 10, 200*sim.Millisecond) // 5k pkts/s, 10 flows, 200ms Rmax
		return NewPIResponder(rand.New(rand.NewSource(1)), params, 10*sim.Millisecond, 3*sim.Millisecond)
	}
	r := mk()
	now := sim.Time(0)
	feed := func(rtt sim.Duration, n int) []float64 {
		out := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			now += 10 * sim.Millisecond
			r.OnRTT(now, rtt)
			out = append(out, r.P())
		}
		return out
	}
	// Pin P at 40 ms, then hold RTT at 80 ms: queueing delay climbs well
	// above the 3 ms target, so p must be non-decreasing once the error is
	// positive, and must become strictly positive.
	feed(40*sim.Millisecond, 1)
	ps := feed(80*sim.Millisecond, 600)
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1]-probTol {
			t.Fatalf("p decreased (%v -> %v at step %d) while delay error was positive", ps[i-1], ps[i], i)
		}
	}
	final := ps[len(ps)-1]
	if final <= 0 {
		t.Fatalf("persistent positive error left p = %v, want > 0", final)
	}
	// Now return RTT to the propagation delay: the error turns negative and
	// p must decay monotonically to the 0 floor (the per-step decrement is
	// tiny — (Gamma-Beta)*|err| — so give the integrator plenty of samples).
	ps = feed(40*sim.Millisecond, 50000)
	for i := 1; i < len(ps); i++ {
		if ps[i] > ps[i-1]+probTol {
			t.Fatalf("p increased (%v -> %v at step %d) while delay error was negative", ps[i-1], ps[i], i)
		}
	}
	if got := ps[len(ps)-1]; got != 0 {
		t.Fatalf("persistent negative error left p = %v, want floor at 0", got)
	}

	// Sensitivity: from identical state, a larger next delay sample may not
	// produce a smaller probability.
	a, b := mk(), mk()
	nowA, nowB := sim.Time(0), sim.Time(0)
	for i := 0; i < 50; i++ {
		nowA += 10 * sim.Millisecond
		nowB += 10 * sim.Millisecond
		rtt := 40 * sim.Millisecond
		if i > 0 {
			rtt = 60 * sim.Millisecond
		}
		a.OnRTT(nowA, rtt)
		b.OnRTT(nowB, rtt)
	}
	nowA += 10 * sim.Millisecond
	nowB += 10 * sim.Millisecond
	a.OnRTT(nowA, 60*sim.Millisecond)
	b.OnRTT(nowB, 90*sim.Millisecond) // strictly larger sample
	if b.P() < a.P()-probTol {
		t.Fatalf("larger delay sample lowered p: %v < %v", b.P(), a.P())
	}

	var _ Prober = r // PI responder exposes its probability too
}
