// Package core implements the paper's primary contribution: PERT
// (Probabilistic Early Response TCP). It contains the end-host congestion
// prediction signal (the heavily smoothed per-ACK RTT estimate srtt_0.99),
// the gentle-RED-like probabilistic response curve (Section 3, Figure 5), the
// once-per-RTT early-response policy with a 35% multiplicative decrease
// (equation 1), and the PERT/PI variant that replaces the RED curve with a
// discretized proportional-integral controller on the estimated queueing
// delay (Section 6). The package is transport-agnostic: internal/tcp adapts
// it onto a concrete TCP sender.
package core

import "pert/internal/sim"

// EWMA is an exponentially weighted moving average with history weight W:
// v <- W*v + (1-W)*x. The paper's congestion predictor uses W = 0.99, a much
// heavier smoothing than the 7/8 TCP uses for RTO, which is what lets the
// signal track the bottleneck's average queue rather than per-packet noise.
type EWMA struct {
	W    float64
	v    float64
	init bool
}

// Update folds in one observation and returns the new average.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.init = true
		e.v = x
	} else {
		e.v = e.W*e.v + (1-e.W)*x
	}
	return e.v
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.v }

// Initialized reports whether at least one sample has been folded in.
func (e *EWMA) Initialized() bool { return e.init }

// Signal is the PERT congestion predictor: srtt_0.99 over per-ACK
// instantaneous RTT samples, plus the running minimum RTT used as the
// propagation-delay estimate P. The estimated queueing delay is
// srtt_0.99 - P.
type Signal struct {
	srtt EWMA
	min  sim.Duration
}

// DefaultHistoryWeight is the paper's smoothing weight for srtt_0.99.
const DefaultHistoryWeight = 0.99

// NewSignal returns a predictor with history weight w (use
// DefaultHistoryWeight for the paper's signal).
func NewSignal(w float64) *Signal {
	if w <= 0 || w >= 1 {
		panic("core: EWMA history weight must be in (0,1)")
	}
	return &Signal{srtt: EWMA{W: w}, min: sim.MaxTime}
}

// Observe folds in one instantaneous RTT sample.
func (s *Signal) Observe(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if rtt < s.min {
		s.min = rtt
	}
	s.srtt.Update(float64(rtt))
}

// SRTT returns the smoothed RTT signal.
func (s *Signal) SRTT() sim.Duration { return sim.Duration(s.srtt.Value()) }

// PropDelay returns the propagation-delay estimate P (minimum observed RTT).
// Before any observation it returns 0.
func (s *Signal) PropDelay() sim.Duration {
	if s.min == sim.MaxTime {
		return 0
	}
	return s.min
}

// QueueingDelay returns the estimated queueing delay, max(0, srtt - P).
func (s *Signal) QueueingDelay() sim.Duration {
	if !s.srtt.Initialized() {
		return 0
	}
	q := s.SRTT() - s.PropDelay()
	if q < 0 {
		return 0
	}
	return q
}

// Ready reports whether the signal has seen at least one sample.
func (s *Signal) Ready() bool { return s.srtt.Initialized() }
