package core

import (
	"math"
	"math/rand"

	"pert/internal/sim"
)

// This file implements the adaptive pro-activeness mechanisms sketched in
// the paper's Section 7 discussion, and a REM emulation demonstrating the
// conclusion's claim that "other AQM schemes can be potentially emulated at
// the end-host".

// AdaptiveResponder wraps a REDResponder with the Section 7 options:
//
//   - EscalateSpacing: "increasing the time for the next response
//     progressively if queue lengths persist" — each response that fails to
//     bring the signal below Tmin doubles the required spacing (up to
//     MaxSpacingRTTs round trips); the spacing resets when the queue
//     estimate clears.
//   - OneShotThreshold: "limiting the probabilistic early response to once
//     when the probability exceeds some threshold (say 0.75)" — above the
//     threshold the flow responds deterministically once and then waits for
//     the signal to recede below Tmin before re-arming.
type AdaptiveResponder struct {
	*REDResponder

	EscalateSpacing  bool
	MaxSpacingRTTs   int
	OneShotThreshold float64 // 0 disables

	spacingRTTs int
	oneShotUsed bool
}

// NewAdaptiveResponder builds the standard PERT responder with both
// Section 7 mechanisms enabled (spacing escalation up to 8 RTTs, one-shot
// threshold 0.75).
func NewAdaptiveResponder(rng *rand.Rand) *AdaptiveResponder {
	return &AdaptiveResponder{
		REDResponder:     NewREDResponder(rng),
		EscalateSpacing:  true,
		MaxSpacingRTTs:   8,
		OneShotThreshold: 0.75,
		spacingRTTs:      1,
	}
}

// OnRTT implements Responder.
func (a *AdaptiveResponder) OnRTT(now sim.Time, rtt sim.Duration) Decision {
	sig := a.Signal()
	sig.Observe(rtt)
	tq := sig.QueueingDelay()
	p := a.Curve.Prob(tq)
	d := Decision{Prob: p, Factor: a.DecreaseFactor}

	if tq < a.Curve.Tmin {
		// Queue cleared: previous responses worked; re-arm everything.
		a.spacingRTTs = 1
		a.oneShotUsed = false
		return d
	}
	if p <= 0 {
		return d
	}

	// One-shot region: deterministic single response.
	if a.OneShotThreshold > 0 && p >= a.OneShotThreshold {
		if a.oneShotUsed {
			return d
		}
		if a.spaced(now) {
			a.oneShotUsed = true
			a.fire(now)
			d.Respond = true
		}
		return d
	}

	if !a.spaced(now) {
		return d
	}
	if a.rng.Float64() < p {
		a.fire(now)
		d.Respond = true
	}
	return d
}

// spaced reports whether enough time has passed since the last response,
// with escalation: the required gap is spacingRTTs round trips.
func (a *AdaptiveResponder) spaced(now sim.Time) bool {
	if !a.hasResp {
		return true
	}
	gap := a.Signal().SRTT() * sim.Duration(a.spacingRTTs)
	return now-a.lastResp >= gap
}

// fire records a response and escalates the spacing for the next one (the
// queue evidently persisted through this response's preconditions).
func (a *AdaptiveResponder) fire(now sim.Time) {
	a.lastResp = now
	a.hasResp = true
	if a.EscalateSpacing && a.spacingRTTs < a.MaxSpacingRTTs {
		a.spacingRTTs *= 2
	}
}

// REMResponder emulates the REM AQM (Athuraliya et al.) at the end host: a
// "price" integrates the mismatch between the estimated queueing delay and a
// target, and the response probability is 1 - Phi^(-price). Like PERT/PI it
// decouples the steady-state response rate from the queue level; unlike PI
// the probability is exponential in the price, which reacts faster to large
// excursions.
type REMResponder struct {
	Gamma          float64      // price gain per second of delay error
	Phi            float64      // probability base (> 1); REM's default 1.001
	Target         sim.Duration // queueing-delay reference
	DecreaseFactor float64

	sig      *Signal
	rng      *rand.Rand
	price    float64
	lastResp sim.Time
	hasResp  bool
}

// NewREMResponder builds a REM emulation with the given target delay.
// Gamma and Phi default to 0.5 and 1.002 when zero.
func NewREMResponder(rng *rand.Rand, gamma, phi float64, target sim.Duration) *REMResponder {
	if gamma == 0 {
		gamma = 0.5
	}
	if phi == 0 {
		phi = 1.002
	}
	if phi <= 1 {
		panic("core: REM phi must exceed 1")
	}
	return &REMResponder{
		Gamma:          gamma,
		Phi:            phi,
		Target:         target,
		DecreaseFactor: DefaultDecreaseFactor,
		sig:            NewSignal(DefaultHistoryWeight),
		rng:            rng,
	}
}

// Signal implements Responder.
func (r *REMResponder) Signal() *Signal { return r.sig }

// Price returns the current REM price (for tests and instrumentation).
func (r *REMResponder) Price() float64 { return r.price }

// P returns the current response probability.
func (r *REMResponder) P() float64 {
	return 1 - math.Pow(r.Phi, -r.price)
}

// OnRTT implements Responder.
func (r *REMResponder) OnRTT(now sim.Time, rtt sim.Duration) Decision {
	r.sig.Observe(rtt)
	err := (r.sig.QueueingDelay() - r.Target).Seconds()
	r.price = math.Max(0, r.price+r.Gamma*err)
	p := r.P()
	d := Decision{Prob: p, Factor: r.DecreaseFactor}
	if p <= 0 {
		return d
	}
	if r.hasResp && now-r.lastResp < r.sig.SRTT() {
		return d
	}
	if r.rng.Float64() < p {
		d.Respond = true
		r.lastResp = now
		r.hasResp = true
	}
	return d
}
