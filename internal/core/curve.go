package core

import "pert/internal/sim"

// ResponseCurve maps the estimated queueing delay to a per-ACK response
// probability, emulating gentle RED's marking curve at the end host
// (Figure 5 of the paper):
//
//	p = 0                                  for Tq <  Tmin
//	p = Pmax*(Tq-Tmin)/(Tmax-Tmin)         for Tmin <= Tq < Tmax
//	p = Pmax + (1-Pmax)*(Tq-Tmax)/Tmax     for Tmax <= Tq < 2*Tmax  (gentle)
//	p = 1                                  for Tq >= 2*Tmax
//
// Thresholds are queueing delays relative to the flow's propagation-delay
// estimate; the paper uses Tmin = 5 ms, Tmax = 10 ms, Pmax = 0.05.
type ResponseCurve struct {
	Tmin   sim.Duration
	Tmax   sim.Duration
	Pmax   float64
	Gentle bool // false clips the probability at Pmax above Tmax (ablation)
}

// DefaultCurve returns the paper's fixed response curve: thresholds P+5 ms
// and P+10 ms expressed as queueing delays, with Pmax = 0.05 and the gentle
// upper ramp.
func DefaultCurve() ResponseCurve {
	return ResponseCurve{
		Tmin:   5 * sim.Millisecond,
		Tmax:   10 * sim.Millisecond,
		Pmax:   0.05,
		Gentle: true,
	}
}

// Prob returns the response probability for estimated queueing delay tq.
func (c ResponseCurve) Prob(tq sim.Duration) float64 {
	switch {
	case tq < c.Tmin:
		return 0
	case tq < c.Tmax:
		return c.Pmax * float64(tq-c.Tmin) / float64(c.Tmax-c.Tmin)
	case !c.Gentle:
		return c.Pmax
	case tq < 2*c.Tmax:
		return c.Pmax + (1-c.Pmax)*float64(tq-c.Tmax)/float64(c.Tmax)
	default:
		return 1
	}
}
