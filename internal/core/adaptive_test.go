package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/sim"
)

func TestAdaptiveSpacingEscalates(t *testing.T) {
	a := NewAdaptiveResponder(rand.New(rand.NewSource(1)))
	a.OneShotThreshold = 0 // isolate the escalation mechanism
	now := sim.Time(0)
	a.OnRTT(now, 60*sim.Millisecond) // anchor P

	// Persistent congestion: feed high RTTs and record response gaps.
	var gaps []sim.Duration
	last := sim.Time(0)
	for i := 0; i < 400000; i++ {
		now += 100 * sim.Microsecond
		if a.OnRTT(now, 75*sim.Millisecond).Respond {
			if last != 0 {
				gaps = append(gaps, now-last)
			}
			last = now
		}
	}
	if len(gaps) < 3 {
		t.Fatalf("only %d response gaps", len(gaps)+1)
	}
	// Later gaps must be much larger than the first: spacing escalated.
	if gaps[len(gaps)-1] < 2*gaps[0] {
		t.Fatalf("spacing did not escalate: first=%v last=%v", gaps[0], gaps[len(gaps)-1])
	}
}

func TestAdaptiveSpacingResetsWhenQueueClears(t *testing.T) {
	a := NewAdaptiveResponder(rand.New(rand.NewSource(2)))
	a.OneShotThreshold = 0
	now := sim.Time(0)
	a.OnRTT(now, 60*sim.Millisecond)
	// Escalate.
	for i := 0; i < 100000; i++ {
		now += 100 * sim.Microsecond
		a.OnRTT(now, 75*sim.Millisecond)
	}
	if a.spacingRTTs <= 1 {
		t.Fatal("premise: spacing should have escalated")
	}
	// Clear the queue estimate: srtt_0.99 must decay below P+Tmin.
	for i := 0; i < 100000; i++ {
		now += 100 * sim.Microsecond
		a.OnRTT(now, 60*sim.Millisecond)
	}
	if a.spacingRTTs != 1 || a.oneShotUsed {
		t.Fatalf("spacing=%d oneShot=%v after queue cleared", a.spacingRTTs, a.oneShotUsed)
	}
}

func TestAdaptiveOneShotRegion(t *testing.T) {
	a := NewAdaptiveResponder(rand.New(rand.NewSource(3)))
	a.EscalateSpacing = false
	now := sim.Time(0)
	a.OnRTT(now, 60*sim.Millisecond)
	// Drive the signal deep into the gentle region (p >= 0.75). Count only
	// responses fired while inside the one-shot region — the climb through
	// the probabilistic band below it may legitimately respond too.
	oneShot := 0
	for i := 0; i < 500000; i++ {
		now += 100 * sim.Microsecond
		d := a.OnRTT(now, 90*sim.Millisecond)
		if d.Respond && d.Prob >= a.OneShotThreshold {
			oneShot++
		}
	}
	if got := a.Curve.Prob(a.Signal().QueueingDelay()); got < 0.75 {
		t.Fatalf("premise: probability %v below one-shot threshold", got)
	}
	if oneShot != 1 {
		t.Fatalf("one-shot region produced %d responses, want exactly 1 until the queue clears", oneShot)
	}
	// Clearing re-arms.
	for i := 0; i < 400000; i++ {
		now += 100 * sim.Microsecond
		a.OnRTT(now, 60*sim.Millisecond)
	}
	for i := 0; i < 500000; i++ {
		now += 100 * sim.Microsecond
		if d := a.OnRTT(now, 90*sim.Millisecond); d.Respond && d.Prob >= a.OneShotThreshold {
			oneShot++
		}
	}
	if oneShot != 2 {
		t.Fatalf("re-armed one-shot produced %d total in-region responses, want 2", oneShot)
	}
}

func TestREMPriceIntegrates(t *testing.T) {
	r := NewREMResponder(rand.New(rand.NewSource(4)), 0, 0, 3*sim.Millisecond)
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond)
	for i := 0; i < 20000; i++ {
		now += sim.Millisecond
		r.OnRTT(now, 80*sim.Millisecond) // ~17 ms over target
	}
	if r.Price() <= 0 || r.P() <= 0 {
		t.Fatalf("price=%v p=%v under sustained excess delay", r.Price(), r.P())
	}
	high := r.Price()
	// Below-target delay drains the price toward zero.
	for i := 0; i < 400000; i++ {
		now += sim.Millisecond
		r.OnRTT(now, 60*sim.Millisecond)
	}
	if r.Price() >= high {
		t.Fatalf("price did not drain: %v -> %v", high, r.Price())
	}
}

func TestREMProbabilityBounds(t *testing.T) {
	f := func(rtts []uint16, seed int64) bool {
		r := NewREMResponder(rand.New(rand.NewSource(seed)), 0.8, 1.01, 3*sim.Millisecond)
		now := sim.Time(0)
		for _, v := range rtts {
			now += sim.Millisecond
			r.OnRTT(now, 50*sim.Millisecond+sim.Duration(v%100)*sim.Millisecond)
			if r.P() < 0 || r.P() >= 1 {
				return false
			}
			if r.Price() < 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestREMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("phi <= 1 did not panic")
		}
	}()
	NewREMResponder(rand.New(rand.NewSource(1)), 1, 0.5, sim.Millisecond)
}

func TestREMRespondsUnderLoad(t *testing.T) {
	r := NewREMResponder(rand.New(rand.NewSource(5)), 0, 0, 3*sim.Millisecond)
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond)
	responses := 0
	for i := 0; i < 200000; i++ {
		now += 100 * sim.Microsecond
		if r.OnRTT(now, 80*sim.Millisecond).Respond {
			responses++
		}
	}
	if responses == 0 {
		t.Fatal("REM never responded")
	}
}
