package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/sim"
)

func TestEWMA(t *testing.T) {
	e := EWMA{W: 0.99}
	if e.Initialized() {
		t.Fatal("fresh EWMA claims init")
	}
	e.Update(100)
	if e.Value() != 100 {
		t.Fatalf("first sample: %v", e.Value())
	}
	e.Update(200)
	if got := e.Value(); math.Abs(got-101) > 1e-9 {
		t.Fatalf("after 200: %v, want 101", got)
	}
}

func TestSignalBasics(t *testing.T) {
	s := NewSignal(0.99)
	if s.Ready() || s.QueueingDelay() != 0 || s.PropDelay() != 0 {
		t.Fatal("fresh signal not zeroed")
	}
	s.Observe(60 * sim.Millisecond)
	if s.PropDelay() != 60*sim.Millisecond {
		t.Fatalf("P = %v", s.PropDelay())
	}
	if s.QueueingDelay() != 0 {
		t.Fatalf("Tq = %v on first sample", s.QueueingDelay())
	}
	// RTT inflates: srtt creeps up, P stays at the minimum.
	for i := 0; i < 3000; i++ {
		s.Observe(80 * sim.Millisecond)
	}
	if s.PropDelay() != 60*sim.Millisecond {
		t.Fatalf("P moved: %v", s.PropDelay())
	}
	tq := s.QueueingDelay()
	if tq < 15*sim.Millisecond || tq > 20*sim.Millisecond {
		t.Fatalf("Tq = %v, want ->20 ms", tq)
	}
	// A new minimum re-anchors P.
	s.Observe(50 * sim.Millisecond)
	if s.PropDelay() != 50*sim.Millisecond {
		t.Fatalf("P = %v after new min", s.PropDelay())
	}
	s.Observe(-sim.Millisecond) // ignored
	if s.PropDelay() != 50*sim.Millisecond {
		t.Fatal("negative sample was not ignored")
	}
}

func TestSignalSmoothingRejectsSpikes(t *testing.T) {
	s := NewSignal(0.99)
	for i := 0; i < 1000; i++ {
		s.Observe(60 * sim.Millisecond)
	}
	// One 100 ms spike moves srtt_0.99 by only 1% of the 40 ms excess.
	s.Observe(100 * sim.Millisecond)
	tq := s.QueueingDelay()
	if tq > sim.Milliseconds(0.5) {
		t.Fatalf("single spike moved Tq to %v", tq)
	}
}

func TestCurveShape(t *testing.T) {
	c := DefaultCurve()
	ms := func(x float64) sim.Duration { return sim.Milliseconds(x) }
	cases := []struct {
		tq   sim.Duration
		want float64
	}{
		{0, 0},
		{ms(4.999), 0},
		{ms(5), 0},
		{ms(7.5), 0.025},
		{ms(10) - 1, 0.05}, // just below Tmax: approaches Pmax
		{ms(10), 0.05},     // at Tmax: gentle region begins at Pmax
		{ms(15), 0.525},    // halfway up the gentle ramp
		{ms(20), 1},
		{ms(500), 1},
	}
	for _, tc := range cases {
		got := c.Prob(tc.tq)
		if math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("Prob(%v) = %v, want %v", tc.tq, got, tc.want)
		}
	}
}

func TestCurveNonGentleClips(t *testing.T) {
	c := DefaultCurve()
	c.Gentle = false
	if got := c.Prob(15 * sim.Millisecond); got != c.Pmax {
		t.Fatalf("clipped curve above Tmax = %v, want Pmax", got)
	}
	if got := c.Prob(sim.Second); got != c.Pmax {
		t.Fatalf("clipped curve far above Tmax = %v, want Pmax", got)
	}
}

// Property: the response curve is monotone non-decreasing and bounded in
// [0,1] over its whole domain.
func TestCurveMonotoneProperty(t *testing.T) {
	c := DefaultCurve()
	f := func(a, b uint32) bool {
		x := sim.Duration(a % 50_000_000) // up to 50 ms
		y := sim.Duration(b % 50_000_000)
		if x > y {
			x, y = y, x
		}
		px, py := c.Prob(x), c.Prob(y)
		return px >= 0 && py <= 1 && px <= py
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestREDResponderNoResponseBelowTmin(t *testing.T) {
	r := NewREDResponder(rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	for i := 0; i < 10000; i++ {
		now += sim.Millisecond
		d := r.OnRTT(now, 60*sim.Millisecond) // constant RTT: Tq = 0
		if d.Respond {
			t.Fatal("responded with zero queueing delay")
		}
		if d.Prob != 0 {
			t.Fatalf("prob = %v with zero queueing delay", d.Prob)
		}
	}
}

func TestREDResponderRespondsUnderPersistentDelay(t *testing.T) {
	r := NewREDResponder(rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond) // anchor P
	responses := 0
	for i := 0; i < 20000; i++ {
		now += sim.Millisecond
		d := r.OnRTT(now, 75*sim.Millisecond) // srtt -> 75 ms, Tq -> 15 ms
		if d.Respond {
			responses++
		}
	}
	if responses == 0 {
		t.Fatal("never responded despite Tq deep in the gentle region")
	}
}

func TestREDResponderOncePerRTT(t *testing.T) {
	r := NewREDResponder(rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond)
	var respTimes []sim.Time
	for i := 0; i < 100000; i++ {
		now += 100 * sim.Microsecond // 10 ACKs per ms: plenty of chances
		d := r.OnRTT(now, 80*sim.Millisecond)
		if d.Respond {
			respTimes = append(respTimes, now)
		}
	}
	if len(respTimes) < 2 {
		t.Fatalf("only %d responses", len(respTimes))
	}
	for i := 1; i < len(respTimes); i++ {
		gap := respTimes[i] - respTimes[i-1]
		// srtt converges toward 80 ms; the spacing must be at least the
		// srtt at response time, which is always > 60 ms here.
		if gap < 60*sim.Millisecond {
			t.Fatalf("responses %v apart, want >= one RTT", gap)
		}
	}
}

func TestREDResponderUnlimitedAblation(t *testing.T) {
	r := NewREDResponder(rand.New(rand.NewSource(1)))
	r.Unlimited = true
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond)
	responses := 0
	for i := 0; i < 10000; i++ {
		now += 100 * sim.Microsecond
		if r.OnRTT(now, 85*sim.Millisecond).Respond {
			responses++
		}
	}
	// Without the once-per-RTT limit, responses come far faster than one
	// per 60 ms (= max ~17 in one simulated second).
	if responses < 100 {
		t.Fatalf("unlimited responder fired only %d times", responses)
	}
}

func TestDesignPERTPIMatchesTheorem2(t *testing.T) {
	// Verify the Theorem 2 formulas directly:
	//   m = 2*Nmin/(Rmax^2*C),  K = m*|j*R*m+1| * (2*Nmin)^2/(Rmax^3*C^2).
	C, N, R := 1000.0, 10, 0.2
	p := DesignPERTPI(C, N, 200*sim.Millisecond)
	wantM := 2 * float64(N) / (R * R * C)
	if math.Abs(p.M-wantM) > 1e-12 {
		t.Fatalf("m = %v, want %v", p.M, wantM)
	}
	wantK := wantM * math.Hypot(R*wantM, 1) * math.Pow(2*float64(N), 2) / (math.Pow(R, 3) * C * C)
	if math.Abs(p.K-wantK) > 1e-12 {
		t.Fatalf("K = %v, want %v", p.K, wantK)
	}
	if p.K <= 0 || p.M <= 0 {
		t.Fatalf("non-positive gains: %+v", p)
	}
	// The C^2 in the denominator (vs router PI's C^3) is the paper's
	// "multiply router parameters by the link capacity" relationship, so
	// doubling C while m's C^-1 also acts gives a K ratio of 8.
	p2 := DesignPERTPI(2*C, N, 200*sim.Millisecond)
	h1 := math.Hypot(R*p.M, 1)
	h2 := math.Hypot(R*p2.M, 1)
	if r := (p.K / h1) / (p2.K / h2); math.Abs(r-8) > 1e-9 {
		t.Fatalf("K scaling with C: ratio = %v, want 8", r)
	}
}

func TestPIResponderIntegratesTowardTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := DesignPERTPI(1201, 10, 200*sim.Millisecond)
	r := NewPIResponder(rng, params, sim.Milliseconds(0.8), 3*sim.Millisecond)
	now := sim.Time(0)
	r.OnRTT(now, 60*sim.Millisecond)
	// Hold the measured queueing delay well above target: p must rise.
	for i := 0; i < 50000; i++ {
		now += sim.Millisecond
		r.OnRTT(now, 75*sim.Millisecond)
	}
	if r.P() <= 0 {
		t.Fatalf("PI probability did not rise: %v", r.P())
	}
	pHigh := r.P()
	// Drop the delay to zero: the integrator must wind back down.
	for i := 0; i < 200000; i++ {
		now += sim.Millisecond
		r.OnRTT(now, 60*sim.Millisecond)
	}
	if r.P() >= pHigh {
		t.Fatalf("PI probability did not fall: %v -> %v", pHigh, r.P())
	}
}

func TestPIResponderProbabilityBounds(t *testing.T) {
	f := func(rtts []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		params := DesignPERTPI(1201, 10, 200*sim.Millisecond)
		r := NewPIResponder(rng, params, sim.Millisecond, 3*sim.Millisecond)
		now := sim.Time(0)
		for _, v := range rtts {
			now += sim.Millisecond
			rtt := 50*sim.Millisecond + sim.Duration(v%100)*sim.Millisecond
			r.OnRTT(now, rtt)
			if r.P() < 0 || r.P() > 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewSignalValidatesWeight(t *testing.T) {
	for _, w := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %v did not panic", w)
				}
			}()
			NewSignal(w)
		}()
	}
}
