package core

import (
	"math"
	"math/rand"

	"pert/internal/sim"
)

// Decision is the outcome of offering one RTT sample to a responder.
type Decision struct {
	// Respond is true when the flow should proactively reduce its window.
	Respond bool
	// Factor is the multiplicative decrease to apply when Respond is true
	// (e.g. 0.35 means cwnd *= 0.65).
	Factor float64
	// Prob is the response probability that was in effect (exported for
	// instrumentation and tests).
	Prob float64
}

// Responder is the policy shared by PERT's RED and PI emulations: a response
// probability is derived from the congestion signal on every ACK, a biased
// coin is flipped, and positive outcomes are rate-limited to at most one
// early response per RTT (the paper's Section 3 rule, since the effect of a
// window reduction is not visible for a round trip).
type Responder interface {
	// OnRTT offers one per-ACK instantaneous RTT sample and returns the
	// response decision.
	OnRTT(now sim.Time, rtt sim.Duration) Decision
	// Signal exposes the underlying congestion predictor.
	Signal() *Signal
}

// Prober is implemented by responders that can report their current response
// probability without consuming an RTT sample. The observability layer uses
// it to export the PERT probability series; both bundled responders
// implement it.
type Prober interface {
	// P returns the response probability currently in effect.
	P() float64
}

// DefaultDecreaseFactor is the paper's early-response multiplicative decrease
// (35%), derived from the buffer-sizing relationship B > f/(1-f) * BDP with
// the conservative goal of keeping the queue under half of a one-BDP buffer.
const DefaultDecreaseFactor = 0.35

// REDResponder emulates gentle RED/ECN at the end host: probability from a
// ResponseCurve over the srtt_0.99 queueing-delay estimate.
type REDResponder struct {
	Curve          ResponseCurve
	DecreaseFactor float64
	// MinInterval, when non-zero, overrides the once-per-RTT limit with a
	// fixed spacing (used by ablations; leave zero for the paper's rule).
	MinInterval sim.Duration
	// Unlimited disables response rate-limiting entirely (ablation).
	Unlimited bool

	sig      *Signal
	rng      *rand.Rand
	lastResp sim.Time
	hasResp  bool
}

// NewREDResponder builds the paper's standard PERT responder with history
// weight 0.99, the default curve, and a 35% decrease.
func NewREDResponder(rng *rand.Rand) *REDResponder {
	return &REDResponder{
		Curve:          DefaultCurve(),
		DecreaseFactor: DefaultDecreaseFactor,
		sig:            NewSignal(DefaultHistoryWeight),
		rng:            rng,
	}
}

// NewREDResponderWith builds a responder with explicit parameters (used by
// ablation benchmarks).
func NewREDResponderWith(rng *rand.Rand, curve ResponseCurve, weight, decrease float64) *REDResponder {
	return &REDResponder{
		Curve:          curve,
		DecreaseFactor: decrease,
		sig:            NewSignal(weight),
		rng:            rng,
	}
}

// Signal implements Responder.
func (r *REDResponder) Signal() *Signal { return r.sig }

// P implements Prober: the response probability the curve assigns to the
// current queueing-delay estimate. Pure read; it does not advance the signal
// or the once-per-RTT limiter.
func (r *REDResponder) P() float64 { return r.Curve.Prob(r.sig.QueueingDelay()) }

// OnRTT implements Responder.
func (r *REDResponder) OnRTT(now sim.Time, rtt sim.Duration) Decision {
	r.sig.Observe(rtt)
	p := r.Curve.Prob(r.sig.QueueingDelay())
	d := Decision{Prob: p, Factor: r.DecreaseFactor}
	if p <= 0 {
		return d
	}
	if !r.allowed(now) {
		return d
	}
	if r.rng.Float64() < p {
		d.Respond = true
		r.lastResp = now
		r.hasResp = true
	}
	return d
}

// allowed applies the once-per-RTT (or configured) response spacing.
func (r *REDResponder) allowed(now sim.Time) bool {
	if r.Unlimited {
		return true
	}
	if !r.hasResp {
		return true
	}
	gap := r.MinInterval
	if gap == 0 {
		gap = r.sig.SRTT()
	}
	return now-r.lastResp >= gap
}

// PIResponder emulates the PI AQM of Hollot et al. at the end host
// (Section 6): the response probability integrates the error between the
// estimated queueing delay and a target delay, using the bilinear-transform
// discretization of equation (18):
//
//	p(k) = p(k-1) + Gamma*(Tq(k)-Tref) - Beta*(Tq(k-1)-Tref)
//
// with Gamma = K/m + K*delta/2 and Beta = K/m - K*delta/2. (The paper's
// equation (19) swaps beta and gamma relative to its own equation (18); we
// implement the standard discretization, which matches (18).)
type PIResponder struct {
	Gamma, Beta    float64 // per-second coefficients applied to delay error
	Target         sim.Duration
	DecreaseFactor float64

	sig      *Signal
	rng      *rand.Rand
	p        float64
	prevErr  float64
	havePrev bool
	lastResp sim.Time
	hasResp  bool
}

// PIParams are the continuous-time PI constants of equation (16)/(21).
type PIParams struct {
	K float64 // loop gain
	M float64 // controller zero (rad/s)
}

// DesignPERTPI computes the Theorem 2 gains for PERT/PI from the link
// capacity in packets/second, a lower bound on the number of flows, and an
// upper bound on the RTT:
//
//	m = 2*Nmin / (Rmax^2 * C)
//	K = m * |j*R*m + 1| * (2*Nmin)^2 / (Rmax^3 * C^2)
//
// Because PERT acts on queueing delay rather than queue length, the C^2 term
// replaces the C^3 of router PI — equivalently, PERT/PI parameters are router
// PI parameters multiplied by the link capacity (Section 6.1).
func DesignPERTPI(cPPS float64, nMin int, rMax sim.Duration) PIParams {
	R := rMax.Seconds()
	n2 := 2 * float64(nMin)
	m := n2 / (R * R * cPPS)
	k := m * math.Hypot(R*m, 1) * n2 * n2 / (R * R * R * cPPS * cPPS)
	return PIParams{K: k, M: m}
}

// NewPIResponder builds a PERT/PI responder. delta is the expected sampling
// interval (mean inter-ACK time) used by the bilinear discretization; target
// is the queueing-delay reference (the paper's experiments use 3 ms).
func NewPIResponder(rng *rand.Rand, params PIParams, delta, target sim.Duration) *PIResponder {
	d := delta.Seconds()
	return &PIResponder{
		Gamma:          params.K/params.M + params.K*d/2,
		Beta:           params.K/params.M - params.K*d/2,
		Target:         target,
		DecreaseFactor: DefaultDecreaseFactor,
		sig:            NewSignal(DefaultHistoryWeight),
		rng:            rng,
	}
}

// P returns the current response probability (for instrumentation).
func (r *PIResponder) P() float64 { return r.p }

// Signal implements Responder.
func (r *PIResponder) Signal() *Signal { return r.sig }

// OnRTT implements Responder.
func (r *PIResponder) OnRTT(now sim.Time, rtt sim.Duration) Decision {
	r.sig.Observe(rtt)
	err := (r.sig.QueueingDelay() - r.Target).Seconds()
	if !r.havePrev {
		r.havePrev = true
		r.prevErr = err
	}
	r.p += r.Gamma*err - r.Beta*r.prevErr
	r.prevErr = err
	if r.p < 0 {
		r.p = 0
	} else if r.p > 1 {
		r.p = 1
	}

	d := Decision{Prob: r.p, Factor: r.DecreaseFactor}
	if r.p <= 0 {
		return d
	}
	if r.hasResp && now-r.lastResp < r.sig.SRTT() {
		return d
	}
	if r.rng.Float64() < r.p {
		d.Respond = true
		r.lastResp = now
		r.hasResp = true
	}
	return d
}
