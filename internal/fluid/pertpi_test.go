package fluid

import (
	"math"
	"testing"
)

func TestPERTPIEquilibrium(t *testing.T) {
	p := DesignPERTPIParams(1000, 5, 0.2, 0.05)
	w, pr, tq := p.Equilibrium()
	if math.Abs(w-40) > 1e-12 { // RC/N = 0.2*1000/5
		t.Fatalf("W* = %v", w)
	}
	if math.Abs(pr-2.0/1600) > 1e-12 {
		t.Fatalf("p* = %v", pr)
	}
	if tq != 0.05 {
		t.Fatalf("Tq* = %v", tq)
	}
}

func TestPERTPIConvergesWithTheorem2Gains(t *testing.T) {
	// With the Theorem 2 design the closed loop must converge, and —
	// unlike the RED emulation — the queueing delay must settle exactly on
	// the target (the integral action removes the steady-state error the
	// paper lists among RED's drawbacks).
	// Theorem 2 assumes W* >> 2; use C/N giving W* = 40. The hard Tq >= 0
	// constraint leaves a small residual limit cycle (the queue drains
	// periodically), so assert on late-time averages and bounded
	// oscillation rather than pointwise convergence.
	p := DesignPERTPIParams(1000, 5, 0.2, 0.05)
	wMean, tqMean, wAmp := lateStats(p, 1200)
	w, _, _ := p.Equilibrium()
	if math.Abs(wMean-w) > 0.15*w {
		t.Fatalf("mean W = %v, want ~%v", wMean, w)
	}
	if math.Abs(tqMean-p.Target) > 0.5*p.Target {
		t.Fatalf("mean Tq = %v, want ~target %v", tqMean, p.Target)
	}
	if wAmp > 0.3*w {
		t.Fatalf("W oscillation amplitude %v of W*=%v", wAmp, w)
	}
}

// lateStats integrates for dur seconds and returns the mean window, mean
// queueing delay, and window peak-to-peak amplitude over the last third.
func lateStats(p PERTPIParams, dur float64) (wMean, tqMean, wAmp float64) {
	var n int
	wMin, wMax := math.Inf(1), math.Inf(-1)
	p.Trajectory(dur, 1e-3, func(t float64, x []float64) {
		if t < dur*2/3 {
			return
		}
		n++
		wMean += x[0]
		tqMean += x[1]
		wMin = math.Min(wMin, x[0])
		wMax = math.Max(wMax, x[0])
	})
	return wMean / float64(n), tqMean / float64(n), wMax - wMin
}

func TestPERTPIStableAcrossTargets(t *testing.T) {
	for _, target := range []float64{0.003, 0.02, 0.05} {
		p := DesignPERTPIParams(2000, 10, 0.15, target)
		wMean, _, wAmp := lateStats(p, 900)
		w, _, _ := p.Equilibrium()
		if math.Abs(wMean-w) > 0.2*w {
			t.Fatalf("target %v: mean W = %v, want ~%v", target, wMean, w)
		}
		if wAmp > 0.4*w {
			t.Fatalf("target %v: W amplitude %v", target, wAmp)
		}
	}
}

func TestPERTPIUnstableWithOversizedGain(t *testing.T) {
	// Cranking the loop gain far beyond the Theorem 2 design must destroy
	// stability — evidence the design rule binds.
	p := DesignPERTPIParams(1000, 5, 0.2, 0.05)
	p.K *= 500
	w, _, _ := p.Equilibrium()
	var lateMin, lateMax = math.Inf(1), math.Inf(-1)
	p.Trajectory(600, 1e-3, func(t float64, x []float64) {
		if t > 500 {
			lateMin = math.Min(lateMin, x[0])
			lateMax = math.Max(lateMax, x[0])
		}
	})
	if (lateMax-lateMin)/w < 0.2 {
		t.Fatalf("500x gain still converged (amplitude %v of W*=%v)", lateMax-lateMin, w)
	}
}

func TestPERTPIIntegralRemovesOffset(t *testing.T) {
	// Contrast with PERT/RED: the RED emulation's equilibrium queueing
	// delay depends on load (Tq* = Tmin + p*/L), while PI pins it to the
	// target regardless of N.
	for _, n := range []float64{5, 10} {
		p := DesignPERTPIParams(2000, n, 0.2, 0.03)
		p.N = n
		_, tqMean, _ := lateStats(p, 1200)
		if math.Abs(tqMean-0.03) > 0.02 {
			t.Fatalf("N=%v: mean Tq = %v, want ~0.03", n, tqMean)
		}
	}
}
