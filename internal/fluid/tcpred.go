package fluid

import "math"

// REDParams are the constants of the classic TCP/RED fluid model of Misra,
// Gong and Towsley (SIGCOMM 2000), which Section 5 contrasts PERT with. The
// averaging filter runs per packet (sampling interval 1/C).
type REDParams struct {
	C     float64 // link capacity, packets/second
	N     float64 // number of flows
	R     float64 // round-trip time, seconds
	MinTh float64 // lower average-queue threshold, packets
	MaxTh float64 // upper threshold, packets
	Pmax  float64
	Wq    float64 // averaging weight
}

// L returns L_RED = pmax/(maxth - minth), probability per packet of average
// queue.
func (p REDParams) L() float64 { return p.Pmax / (p.MaxTh - p.MinTh) }

// K returns the averaging-filter pole ln(1-wq)*C (negative).
func (p REDParams) K() float64 { return math.Log(1-p.Wq) * p.C }

// Equilibrium returns W* and p* (the same TCP relation as PERT) plus the
// average queue q* that generates p* on the linear RED curve.
func (p REDParams) Equilibrium() (wStar, pStar, qStar float64) {
	wStar = p.R * p.C / p.N
	pStar = 2 * p.N * p.N / (p.R * p.R * p.C * p.C)
	qStar = p.MinTh + pStar/p.L()
	return
}

// System builds the three-state DDE: x1 = W (packets), x2 = q (packets),
// x3 = avg (packets). Unlike PERT, the drop probability acts with one RTT of
// feedback delay (the router marks, the sender reacts an RTT later).
func (p REDParams) System() *System {
	L := p.L()
	K := p.K()
	return &System{
		Dim:    3,
		MaxLag: p.R,
		F: func(_ float64, x []float64, delayed func(float64, int) float64, dx []float64) {
			wLag := delayed(p.R, 0)
			avgLag := delayed(p.R, 2)
			prob := L * (avgLag - p.MinTh)
			if prob < 0 {
				prob = 0
			} else if prob > 1 {
				prob = 1
			}
			dx[0] = 1/p.R - prob*x[0]*wLag/(2*p.R)
			dx[1] = p.N/p.R*x[0] - p.C
			dx[2] = K*x[2] - K*x[1]
		},
		Clamp: func(x []float64) {
			for i := range x {
				if x[i] < 0 {
					x[i] = 0
				}
			}
		},
	}
}

// StableRED evaluates the router-RED analog of condition (11): the same
// expression with C^3 in place of C^2 (Section 5.4), certifying local
// stability for N >= Nmin, R* <= Rmax.
func StableRED(p REDParams, nMin, rMax float64) (lhs, rhs float64, stable bool) {
	wg := CrossoverFreq(p.C, nMin, rMax)
	K := p.K()
	lhs = p.L() * math.Pow(rMax, 3) * math.Pow(p.C, 3) / math.Pow(2*nMin, 2)
	rhs = math.Sqrt(wg*wg/(K*K) + 1)
	return lhs, rhs, lhs <= rhs
}

// Trajectory integrates the TCP/RED model from (1,1,1).
func (p REDParams) Trajectory(dur, h float64, observe func(t float64, x []float64)) []float64 {
	return p.System().Integrate([]float64{1, 1, 1}, 0, dur, h, observe)
}
