package fluid

import (
	"math"
	"testing"
)

// fig13Params returns the paper's Figure 13(b)-(d) configuration:
// C = 100 pkt/s (1 Mbps at 1250 B), N = 5, pmax = 0.1, Tmax = 100 ms,
// Tmin = 50 ms, alpha = 0.99, delta = 0.1 ms.
func fig13Params(r float64) PERTParams {
	return PERTParams{
		C: 100, N: 5, R: r,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
	}
}

func TestDDESolvesExponentialDecay(t *testing.T) {
	// dx/dt = -x with a dummy lag: x(t) = e^{-t}.
	s := &System{
		Dim:    1,
		MaxLag: 0.1,
		F: func(_ float64, x []float64, _ func(float64, int) float64, dx []float64) {
			dx[0] = -x[0]
		},
	}
	got := s.Integrate([]float64{1}, 0, 1, 1e-3, nil)
	if math.Abs(got[0]-math.Exp(-1)) > 1e-6 {
		t.Fatalf("x(1) = %v, want %v", got[0], math.Exp(-1))
	}
}

func TestDDEDelayedLogistic(t *testing.T) {
	// The delayed relaxation dx/dt = x(t-tau) - x(t) converges to the
	// constant history value (here 2) from any start equal to history.
	s := &System{
		Dim:    1,
		MaxLag: 0.5,
		F: func(_ float64, x []float64, d func(float64, int) float64, dx []float64) {
			dx[0] = d(0.5, 0) - x[0]
		},
	}
	got := s.Integrate([]float64{2}, 0, 10, 1e-3, nil)
	if math.Abs(got[0]-2) > 1e-9 {
		t.Fatalf("fixed point drifted: %v", got[0])
	}
}

func TestDDEDelayedOscillator(t *testing.T) {
	// dx/dt = -pi/2 * x(t-1) with x ≡ cos on history oscillates with
	// period 4; verify the solution stays bounded and sign-alternates.
	s := &System{
		Dim:    1,
		MaxLag: 1,
		F: func(_ float64, x []float64, d func(float64, int) float64, dx []float64) {
			dx[0] = -math.Pi / 2 * d(1, 0)
		},
	}
	var min, max float64
	s.Integrate([]float64{1}, 0, 20, 1e-3, func(_ float64, x []float64) {
		if x[0] < min {
			min = x[0]
		}
		if x[0] > max {
			max = x[0]
		}
	})
	if min > -0.5 || max < 0.5 {
		t.Fatalf("no oscillation: min=%v max=%v", min, max)
	}
	if min < -3 || max > 3 {
		t.Fatalf("marginal oscillator blew up: min=%v max=%v", min, max)
	}
}

func TestEquilibriumFormula(t *testing.T) {
	p := fig13Params(0.1)
	w, pr, tq := p.Equilibrium()
	if math.Abs(w-2) > 1e-12 { // RC/N = 0.1*100/5
		t.Fatalf("W* = %v", w)
	}
	if math.Abs(pr-0.5) > 1e-12 { // 2N^2/(RC)^2 = 50/100
		t.Fatalf("p* = %v", pr)
	}
	if math.Abs(tq-(0.05+0.5/2)) > 1e-12 {
		t.Fatalf("Tq* = %v", tq)
	}
	// p* = 2/W*^2 identity from Section 5.2.
	if math.Abs(pr-2/(w*w)) > 1e-12 {
		t.Fatal("p* != 2/W*^2")
	}
}

func TestTheorem1BoundaryNear171ms(t *testing.T) {
	// The paper reports the stability boundary at R = 171 ms for the
	// Figure 13 configuration.
	p := fig13Params(0.1)
	b := StabilityBoundaryR(p, 0.05, 0.3, 0.001)
	if b < 0.165 || b > 0.176 {
		t.Fatalf("Theorem 1 boundary = %v s, want ~0.171", b)
	}
	if _, _, ok := StableTheorem1(fig13Params(0.16), 5, 0.16); !ok {
		t.Fatal("R=160 ms should satisfy Theorem 1")
	}
	if _, _, ok := StableTheorem1(fig13Params(0.18), 5, 0.18); ok {
		t.Fatal("R=180 ms should violate Theorem 1")
	}
}

func TestPERTTrajectoryStableConverges(t *testing.T) {
	p := fig13Params(0.1)
	final := p.Trajectory(200, 1e-3, nil)
	w, _, tq := p.Equilibrium()
	if math.Abs(final[0]-w) > 0.15*w {
		t.Fatalf("W(end) = %v, want ~%v", final[0], w)
	}
	if math.Abs(final[2]-tq) > 0.2*tq {
		t.Fatalf("Tq(end) = %v, want ~%v", final[2], tq)
	}
}

func TestPERTTrajectoryDampedOscillationsNearBoundary(t *testing.T) {
	// R = 160 ms: stable but close to the boundary; converges after
	// decaying oscillations (Figure 13c).
	p := fig13Params(0.16)
	w, _, _ := p.Equilibrium()
	var lateDev float64
	p.Trajectory(400, 1e-3, func(t float64, x []float64) {
		if t > 350 {
			if d := math.Abs(x[0] - w); d > lateDev {
				lateDev = d
			}
		}
	})
	if lateDev > 0.25*w {
		t.Fatalf("late deviation %v of W* = %v: did not converge", lateDev, w)
	}
}

func TestPERTTrajectoryUnstableBeyondBoundary(t *testing.T) {
	// R = 190 ms: beyond the boundary; persistent oscillations (the paper
	// observes instability from ~171 ms on).
	p := fig13Params(0.19)
	w, _, _ := p.Equilibrium()
	var lateDev float64
	p.Trajectory(400, 1e-3, func(t float64, x []float64) {
		if t > 350 {
			if d := math.Abs(x[0] - w); d > lateDev {
				lateDev = d
			}
		}
	})
	if lateDev < 0.2*w {
		t.Fatalf("late deviation %v of W* = %v: expected persistent oscillation", lateDev, w)
	}
}

func TestMinDeltaMonotoneInN(t *testing.T) {
	// Figure 13(a): the minimum stable sampling interval decreases with the
	// number of flows (C = 10 Mbps = 1000 pkt/s at 1250 B, R = 200 ms).
	base := PERTParams{
		C: 1000, N: 1, R: 0.2,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1, Alpha: 0.99, Delta: 0.1,
	}
	prev := math.Inf(1)
	for n := 1.0; n <= 50; n++ {
		d := MinDelta(base, n, 0.2)
		if d < 0 {
			t.Fatalf("negative delta at N=%v", n)
		}
		if d > prev+1e-12 {
			t.Fatalf("min delta not monotone at N=%v: %v > %v", n, d, prev)
		}
		prev = d
	}
	// The paper reads ~0.1 s near N = 40.
	d40 := MinDelta(base, 40, 0.2)
	if d40 <= 0 || d40 > 1 {
		t.Fatalf("min delta at N=40 = %v, want order 0.1 s", d40)
	}
}

func TestMinDeltaConsistentWithTheorem1(t *testing.T) {
	// For any N, using delta = MinDelta must satisfy Theorem 1, and using
	// half of it (when positive) must violate it.
	base := fig13Params(0.2)
	for n := 1.0; n <= 20; n++ {
		base.N = n
		d := MinDelta(base, n, base.R)
		if d == 0 {
			continue
		}
		p := base
		p.Delta = d * 1.0001
		if _, _, ok := StableTheorem1(p, n, base.R); !ok {
			t.Fatalf("N=%v: delta=MinDelta does not satisfy Theorem 1", n)
		}
		p.Delta = d / 2
		if _, _, ok := StableTheorem1(p, n, base.R); ok {
			t.Fatalf("N=%v: delta=MinDelta/2 should violate Theorem 1", n)
		}
	}
}

func TestEquilibriumFeasible(t *testing.T) {
	// W* = 10 needs pmax >= 2% (Section 5.2's example).
	p := PERTParams{C: 100, N: 1, R: 0.1, Tmin: 0.05, Tmax: 0.1, Pmax: 0.02, Alpha: 0.99, Delta: 1e-3}
	// W* = RC/N = 10, p* = 2/100 = 0.02 <= pmax.
	if !EquilibriumFeasible(p) {
		t.Fatal("W*=10 with pmax=2% should be feasible")
	}
	p.Pmax = 0.01
	if EquilibriumFeasible(p) {
		t.Fatal("pmax=1% cannot generate p*=2%")
	}
}

func TestREDModelEquilibrium(t *testing.T) {
	p := REDParams{C: 1000, N: 50, R: 0.1, MinTh: 50, MaxTh: 150, Pmax: 0.1, Wq: 0.0001}
	w, pr, q := p.Equilibrium()
	if math.Abs(w-2) > 1e-12 || pr <= 0 || q <= p.MinTh {
		t.Fatalf("equilibrium: W*=%v p*=%v q*=%v", w, pr, q)
	}
	final := p.Trajectory(300, 1e-3, nil)
	if math.Abs(final[0]-w) > 0.2*w {
		t.Fatalf("W(end) = %v, want ~%v", final[0], w)
	}
}

func TestPERTStabilityRegionExceedsRED(t *testing.T) {
	// Section 5.4: with L_PERT = L_RED*C the two conditions have identical
	// left-hand sides; PERT's advantage is the sampling interval. A PERT
	// user samples once per own packet (delta ~ N/C) while RED samples
	// every packet (delta = 1/C), so |K_PERT| < |K_RED|, inflating PERT's
	// right-hand side and enlarging the certified stability region.
	c, n, r := 1000.0, 5.0, 0.2
	pert := PERTParams{C: c, N: n, R: r, Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: n / c} // per-flow sampling
	red := REDParams{C: c, N: n, R: r, MinTh: 0.05 * c, MaxTh: 0.1 * c,
		Pmax: 0.1, Wq: 1 - pert.Alpha} // per-packet sampling, same weight
	lp, rp, _ := StableTheorem1(pert, n, r)
	lr, rr, _ := StableRED(red, n, r)
	if math.Abs(lp-lr) > 1e-9*lp {
		t.Fatalf("lhs should match: PERT %v, RED %v", lp, lr)
	}
	if !(rp > rr) {
		t.Fatalf("PERT rhs %v should exceed RED rhs %v", rp, rr)
	}
}
