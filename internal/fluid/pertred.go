package fluid

import "math"

// PERTParams are the constants of the PERT/RED fluid model (equations
// (2)-(7), reduced to the DDE system (14)).
type PERTParams struct {
	C     float64 // link capacity, packets/second
	N     float64 // number of flows
	R     float64 // round-trip time, seconds (assumed constant, as in Sec 5.2)
	Tmin  float64 // lower queueing-delay threshold, seconds
	Tmax  float64 // upper threshold, seconds
	Pmax  float64 // response probability at Tmax
	Alpha float64 // EWMA history weight (0.99)
	Delta float64 // sampling interval, seconds
}

// L returns L_PERT = pmax/(Tmax - Tmin) from equation (10).
func (p PERTParams) L() float64 { return p.Pmax / (p.Tmax - p.Tmin) }

// K returns K = ln(alpha)/delta from equation (10); it is negative.
func (p PERTParams) K() float64 { return math.Log(p.Alpha) / p.Delta }

// Equilibrium returns the stationary point of equation (9): window W*,
// response probability p*, and the queueing delay Tq* at which the linear
// response curve produces p*.
func (p PERTParams) Equilibrium() (wStar, pStar, tqStar float64) {
	wStar = p.R * p.C / p.N
	pStar = 2 * p.N * p.N / (p.R * p.R * p.C * p.C)
	tqStar = p.Tmin + pStar/p.L()
	return
}

// System builds the three-state DDE (14): x1 = W (window, packets),
// x2 = actual queueing delay (seconds), x3 = smoothed queueing delay
// perceived by the end host (seconds).
func (p PERTParams) System() *System {
	L := p.L()
	K := p.K()
	return &System{
		Dim:    3,
		MaxLag: p.R,
		F: func(_ float64, x []float64, delayed func(float64, int) float64, dx []float64) {
			wLag := delayed(p.R, 0)
			tqLag := delayed(p.R, 2)
			prob := L * (tqLag - p.Tmin)
			if prob < 0 {
				prob = 0
			} else if prob > 1 {
				prob = 1
			}
			dx[0] = 1/p.R - prob*x[0]*wLag/(2*p.R)
			dx[1] = p.N/(p.R*p.C)*x[0] - 1
			dx[2] = K*x[2] - K*x[1]
		},
		Clamp: func(x []float64) {
			if x[0] < 0 {
				x[0] = 0
			}
			if x[1] < 0 {
				x[1] = 0
			}
			if x[2] < 0 {
				x[2] = 0
			}
		},
	}
}

// Trajectory integrates the model from (1 pkt, 1 s, 1 s) — the paper's
// Figure 13 initial point — for dur seconds with step h, invoking observe at
// each step.
func (p PERTParams) Trajectory(dur, h float64, observe func(t float64, x []float64)) []float64 {
	return p.System().Integrate([]float64{1, 1, 1}, 0, dur, h, observe)
}
