package fluid

import "math"

// CrossoverFreq returns w_g of equation (12):
// w_g = 0.1 * min(2*Nmin/(Rmax^2*C), 1/Rmax).
func CrossoverFreq(c float64, nMin float64, rMax float64) float64 {
	return 0.1 * math.Min(2*nMin/(rMax*rMax*c), 1/rMax)
}

// StableTheorem1 evaluates the Theorem 1 sufficient condition (11)-(12) for
// the PERT/RED system: returns the left- and right-hand sides and whether
// LHS <= RHS (locally stable for all N >= Nmin, R* <= Rmax).
func StableTheorem1(p PERTParams, nMin, rMax float64) (lhs, rhs float64, stable bool) {
	wg := CrossoverFreq(p.C, nMin, rMax)
	K := p.K()
	lhs = p.L() * math.Pow(rMax, 3) * p.C * p.C / math.Pow(2*nMin, 2)
	rhs = math.Sqrt(wg*wg/(K*K) + 1)
	return lhs, rhs, lhs <= rhs
}

// MinDelta returns the smallest sampling interval delta satisfying equation
// (13) for the given configuration:
//
//	delta >= -ln(alpha)/(4*Nmin^2*w_g) * sqrt(L^2*Rmax^6*C^4 - 16*Nmin^4)
//
// When the radicand is non-positive the condition holds for every delta and
// MinDelta returns 0.
func MinDelta(p PERTParams, nMin, rMax float64) float64 {
	wg := CrossoverFreq(p.C, nMin, rMax)
	L := p.L()
	rad := L*L*math.Pow(rMax, 6)*math.Pow(p.C, 4) - 16*math.Pow(nMin, 4)
	if rad <= 0 {
		return 0
	}
	return -math.Log(p.Alpha) / (4 * nMin * nMin * wg) * math.Sqrt(rad)
}

// StabilityBoundaryR sweeps R upward from rLo to rHi in steps of dr and
// returns the largest R for which Theorem 1 still certifies stability (with
// Nmin = p.N, Rmax = R). Returns rLo-dr if none are stable.
func StabilityBoundaryR(p PERTParams, rLo, rHi, dr float64) float64 {
	last := rLo - dr
	for r := rLo; r <= rHi; r += dr {
		if _, _, ok := StableTheorem1(p, p.N, r); ok {
			last = r
		} else {
			break
		}
	}
	return last
}

// EquilibriumFeasible reports whether p* <= pmax, the side condition noted
// after Theorem 1 (the linear response region must be able to generate the
// stationary probability).
func EquilibriumFeasible(p PERTParams) bool {
	_, pStar, _ := p.Equilibrium()
	return pStar <= p.Pmax
}
