package fluid

// Hybrid coupling: the PERT/RED fluid model of equation (14) extended with a
// measured packet-arrival term, so a modeled aggregate of N background flows
// and a handful of real packet connections share one bottleneck queue.
//
// The coupling replaces the queue equation's fluid-only arrival rate N·W/R
// with N·W/R + A_p(t), where A_p is the arrival rate of real packets measured
// at the link:
//
//	dTq/dt = (N·W/R + A_p(t) − C) / C = N/(R·C)·W + A_p/C − 1
//
// A_p(t) is exactly the packet flows' own N_p·W_p/R_p contribution — measured
// rather than modeled — so packet arrivals feed back into the DDE's N and
// arrival-rate terms, and the window/probability equations see the inflated
// shared queue through Tq as usual.

// HybridInputs carries the packet-side measurements into the fluid model.
type HybridInputs struct {
	// PacketRate returns the current measured arrival rate of real packets
	// at the shared bottleneck, in packets/second. It is sampled at every
	// RK4 stage evaluation; returning a rate averaged over the last
	// co-simulation tick is the intended use.
	PacketRate func() float64
}

// HybridSystem builds the three-state DDE (14) with the measured packet
// arrival rate added to the queue equation. With in.PacketRate nil or
// returning 0 the system is exactly System().
func (p PERTParams) HybridSystem(in HybridInputs) *System {
	L := p.L()
	K := p.K()
	return &System{
		Dim:    3,
		MaxLag: p.R,
		F: func(_ float64, x []float64, delayed func(float64, int) float64, dx []float64) {
			wLag := delayed(p.R, 0)
			tqLag := delayed(p.R, 2)
			prob := L * (tqLag - p.Tmin)
			if prob < 0 {
				prob = 0
			} else if prob > 1 {
				prob = 1
			}
			rate := 0.0
			if in.PacketRate != nil {
				rate = in.PacketRate()
			}
			dx[0] = 1/p.R - prob*x[0]*wLag/(2*p.R)
			dx[1] = p.N/(p.R*p.C)*x[0] - 1 + rate/p.C
			dx[2] = K*x[2] - K*x[1]
		},
		Clamp: func(x []float64) {
			if x[0] < 0 {
				x[0] = 0
			}
			if x[1] < 0 {
				x[1] = 0
			}
			if x[2] < 0 {
				x[2] = 0
			}
		},
	}
}

// HybridEquilibrium returns the stationary point of the coupled system when
// the packet side contributes a constant arrival rate ap (packets/second):
// the fluid aggregate settles where N·W/R fills the capacity left over by the
// packets, W* = (C−ap)·R/N, giving p* = 2/W*² from the window equation and
// Tq* = Tmin + p*/L from the linear response curve — equation (9) with the
// effective capacity C−ap. With ap = 0 this is exactly Equilibrium().
func (p PERTParams) HybridEquilibrium(ap float64) (wStar, pStar, tqStar float64) {
	eff := p.C - ap
	if eff < 0 {
		eff = 0
	}
	wStar = p.R * eff / p.N
	pStar = 2 / (wStar * wStar)
	tqStar = p.Tmin + pStar/p.L()
	return
}
