package fluid

import "math"

// PERTPIParams are the constants of the PERT/PI fluid model (Section 6): the
// window dynamics of equation (3) driven by a proportional-integral
// controller on the estimated queueing delay, with the Theorem 2 gains.
type PERTPIParams struct {
	C      float64 // link capacity, packets/second
	N      float64 // number of flows
	R      float64 // round-trip time, seconds
	K      float64 // PI loop gain
	M      float64 // PI zero, rad/s
	Target float64 // queueing-delay reference, seconds
}

// DesignPERTPIParams applies the Theorem 2 formulas
//
//	m = 2*Nmin/(Rmax^2*C),  K = m*|j*R*m + 1| * (2*Nmin)^2/(Rmax^3*C^2)
//
// to produce a provably stable configuration for all N >= nMin, R <= rMax.
func DesignPERTPIParams(c float64, nMin float64, rMax float64, target float64) PERTPIParams {
	m := 2 * nMin / (rMax * rMax * c)
	k := m * math.Hypot(rMax*m, 1) * math.Pow(2*nMin, 2) / (math.Pow(rMax, 3) * c * c)
	return PERTPIParams{C: c, N: nMin, R: rMax, K: k, M: m, Target: target}
}

// System builds the PERT/PI DDE. States: x1 = W (packets), x2 = Tq (queueing
// delay, seconds), x3 = integral of the delay error. The continuous PI
// controller C(s) = K(1+s/m)/s gives
//
//	p(t) = (K/m)*e(t) + K*x3(t),   dx3/dt = e(t),   e = Tq - Target
//
// with p clamped to [0, 1]. As in the RED model, the window reacts to the
// response probability with one round trip of self-delay in W but the
// probability itself is computed at the end host from a delayed delay
// measurement.
func (p PERTPIParams) System() *System {
	return &System{
		Dim:    3,
		MaxLag: p.R,
		F: func(_ float64, x []float64, delayed func(float64, int) float64, dx []float64) {
			wLag := delayed(p.R, 0)
			errLag := delayed(p.R, 1) - p.Target
			intLag := delayed(p.R, 2)
			prob := p.K/p.M*errLag + p.K*intLag
			if prob < 0 {
				prob = 0
			} else if prob > 1 {
				prob = 1
			}
			dx[0] = 1/p.R - prob*x[0]*wLag/(2*p.R)
			dx[1] = p.N/(p.R*p.C)*x[0] - 1
			// Conditional integration (anti-windup): freeze the integral
			// while the controller output is saturated and the error would
			// push it further into saturation — otherwise long empty-queue
			// periods wind the integrator far negative and force slow
			// limit cycles.
			err := x[1] - p.Target
			probNow := p.K/p.M*err + p.K*x[2]
			if (probNow <= 0 && err < 0) || (probNow >= 1 && err > 0) {
				dx[2] = 0
			} else {
				dx[2] = err
			}
		},
		Clamp: func(x []float64) {
			if x[0] < 0 {
				x[0] = 0
			}
			if x[1] < 0 {
				x[1] = 0
			}
			// The integral state is free to go negative (anti-windup is
			// the [0,1] clamp on prob).
		},
	}
}

// Equilibrium returns the PERT/PI stationary point: the PI integrator drives
// the queueing delay to the target exactly, and the window to RC/N.
func (p PERTPIParams) Equilibrium() (wStar, pStar, tqStar float64) {
	wStar = p.R * p.C / p.N
	pStar = 2 / (wStar * wStar)
	tqStar = p.Target
	return
}

// Trajectory integrates from the (1, 1, 0) starting point.
func (p PERTPIParams) Trajectory(dur, h float64, observe func(t float64, x []float64)) []float64 {
	return p.System().Integrate([]float64{1, 1, 0}, 0, dur, h, observe)
}
