package fluid

// Stepper is a resumable integrator for a System: where Integrate consumes a
// whole [t0, t1] window in one call, a Stepper advances one fixed RK4 step at
// a time, so the DDE can run in lockstep with a discrete-event simulation
// (the hybrid fluid/packet substrate drives one from a sim.Ticker). The
// delayed-state history is a MaxLag-bounded ring: memory is O(MaxLag/h)
// regardless of how long the integration runs, which is what makes
// indefinite co-simulation possible.
//
// The step arithmetic — stage times, stage order, the linear interpolation of
// delayed states, and the t = t0 + n*h clock — is exactly Integrate's
// (Integrate is now implemented on a Stepper), so a step-at-a-time trajectory
// is bit-identical to the batch one.
type Stepper struct {
	sys *System
	h   float64
	t0  float64
	t   float64
	n   int // completed steps

	x  []float64 // current state (after n steps)
	x0 []float64 // initial state, the constant history before t0

	// ring holds the accepted states of steps [base, base+count), oldest at
	// slot head. Capacity covers MaxLag plus interpolation slack; once full,
	// each accepted step overwrites the oldest entry in place, so a
	// long-running Stepper allocates nothing per step.
	ring  [][]float64
	head  int
	base  int
	count int

	dx1, dx2, dx3, dx4, tmp []float64

	// stageBase and dfn implement the delayed-lookup callback without a
	// per-stage closure allocation: Step sets stageBase to the stage time
	// and passes the one pre-bound dfn to F.
	stageBase float64
	dfn       func(lag float64, i int) float64
}

// NewStepper prepares a stepper for the system from state x0 at time t0 with
// fixed step h. Lags must exceed h for the stage evaluations to stay within
// history (the same constraint Integrate documents).
func NewStepper(sys *System, x0 []float64, t0, h float64) *Stepper {
	if len(x0) != sys.Dim {
		panic("fluid: initial state has wrong dimension")
	}
	if h <= 0 {
		panic("fluid: non-positive step")
	}
	histLen := int(sys.MaxLag/h) + 8
	s := &Stepper{
		sys: sys, h: h, t0: t0, t: t0,
		x:    append([]float64(nil), x0...),
		x0:   append([]float64(nil), x0...),
		ring: make([][]float64, 0, histLen),
		dx1:  make([]float64, sys.Dim),
		dx2:  make([]float64, sys.Dim),
		dx3:  make([]float64, sys.Dim),
		dx4:  make([]float64, sys.Dim),
		tmp:  make([]float64, sys.Dim),
	}
	s.dfn = func(lag float64, i int) float64 { return s.delayed(s.stageBase, lag, i) }
	s.record()
	return s
}

// record appends the current state to the history ring, evicting the oldest
// entry once the ring covers MaxLag.
func (s *Stepper) record() {
	if s.count < cap(s.ring) {
		if len(s.ring) < cap(s.ring) {
			s.ring = append(s.ring, append([]float64(nil), s.x...))
		} else {
			copy(s.ring[(s.head+s.count)%cap(s.ring)], s.x)
		}
		s.count++
		return
	}
	// Full: overwrite the oldest slot and advance the window.
	copy(s.ring[s.head], s.x)
	s.head = (s.head + 1) % cap(s.ring)
	s.base++
}

// at returns component i of the stored state of absolute step k, clamping to
// the retained window (steps older than MaxLag read the oldest entry; the
// System contract promises F never asks for them).
func (s *Stepper) at(k, i int) float64 {
	if k < s.base {
		k = s.base
	}
	last := s.base + s.count - 1
	if k > last {
		k = last
	}
	return s.ring[(s.head+k-s.base)%cap(s.ring)][i]
}

// delayed returns component i of the state at base-lag, linearly interpolated
// between stored steps and constant x0 before t0 — Integrate's exact lookup.
func (s *Stepper) delayed(base, lag float64, i int) float64 {
	when := base - lag
	if when <= s.t0 {
		return s.x0[i]
	}
	pos := (when - s.t0) / s.h
	k := int(pos)
	last := s.base + s.count - 1
	if k >= last {
		return s.at(last, i)
	}
	frac := pos - float64(k)
	return s.at(k, i)*(1-frac) + s.at(k+1, i)*frac
}

// Time returns the current integration time t0 + n*h.
func (s *Stepper) Time() float64 { return s.t }

// Steps returns the number of accepted steps taken so far.
func (s *Stepper) Steps() int { return s.n }

// State returns the current state vector. The slice is the stepper's working
// storage: read it between steps, copy it to keep it, never modify it.
func (s *Stepper) State() []float64 { return s.x }

// StateAt returns component i of the state lag seconds before the current
// time, interpolated from the bounded history (constant x0 before t0). The
// lag must not exceed the system's MaxLag; older requests clamp to the
// oldest retained state.
func (s *Stepper) StateAt(lag float64, i int) float64 {
	return s.delayed(s.t, lag, i)
}

// Step advances the system by one h using the classical fourth-order
// Runge-Kutta method and records the accepted state in the history ring.
func (s *Stepper) Step() {
	sys, h, t, x := s.sys, s.h, s.t, s.x
	s.stageBase = t
	sys.F(t, x, s.dfn, s.dx1)
	for i := range s.tmp {
		s.tmp[i] = x[i] + h/2*s.dx1[i]
	}
	s.stageBase = t + h/2
	sys.F(t+h/2, s.tmp, s.dfn, s.dx2)
	for i := range s.tmp {
		s.tmp[i] = x[i] + h/2*s.dx2[i]
	}
	sys.F(t+h/2, s.tmp, s.dfn, s.dx3)
	for i := range s.tmp {
		s.tmp[i] = x[i] + h*s.dx3[i]
	}
	s.stageBase = t + h
	sys.F(t+h, s.tmp, s.dfn, s.dx4)
	for i := range x {
		x[i] += h / 6 * (s.dx1[i] + 2*s.dx2[i] + 2*s.dx3[i] + s.dx4[i])
	}
	if sys.Clamp != nil {
		sys.Clamp(x)
	}
	s.n++
	s.t = s.t0 + float64(s.n)*h
	s.record()
}

// AdvanceTo steps until the integration time reaches t (rounded to the
// nearest whole step, matching Integrate's window arithmetic). Times at or
// before the current step are a no-op, so a co-simulating caller may invoke
// it from every tick without tracking alignment itself.
func (s *Stepper) AdvanceTo(t float64) {
	target := int((t-s.t0)/s.h + 0.5)
	for s.n < target {
		s.Step()
	}
}
