package fluid

import (
	"math"
	"runtime"
	"testing"
)

// TestStepperMatchesIntegrate is the equivalence property test: stepping the
// PERT/RED system one step at a time must reproduce the batch Integrate
// trajectory bit for bit (Integrate is built on Stepper, but this pins the
// incremental API — interleaved AdvanceTo calls with uneven targets — against
// the straight loop).
func TestStepperMatchesIntegrate(t *testing.T) {
	for _, r := range []float64{0.1, 0.4, 1.0} {
		p := fig13Params(r)
		sys := p.System()
		h := 1e-3

		var batchT []float64
		var batchX [][]float64
		sys.Integrate([]float64{1, 1, 1}, 0, 20, h, func(tt float64, x []float64) {
			batchT = append(batchT, tt)
			batchX = append(batchX, append([]float64(nil), x...))
		})

		st := NewStepper(sys, []float64{1, 1, 1}, 0, h)
		// Advance in deliberately uneven increments, including no-op and
		// mid-step targets, to exercise AdvanceTo's rounding.
		targets := []float64{0.0007, 0.5, 0.5, 3.33333, 7, 12.0004, 20}
		idx := 0
		check := func() {
			n := st.Steps()
			if n >= len(batchT) {
				t.Fatalf("R=%v: stepper ran past batch trajectory (step %d)", r, n)
			}
			if st.Time() != batchT[n] {
				t.Fatalf("R=%v step %d: time %v != batch %v", r, n, st.Time(), batchT[n])
			}
			for i, v := range st.State() {
				if v != batchX[n][i] {
					t.Fatalf("R=%v step %d x[%d]: %v != batch %v", r, n, i, v, batchX[n][i])
				}
			}
			idx++
		}
		for _, tt := range targets {
			st.AdvanceTo(tt)
			check()
		}
		if st.Steps() != len(batchT)-1 {
			t.Fatalf("R=%v: stepper took %d steps, batch %d", r, st.Steps(), len(batchT)-1)
		}
	}
}

// TestStepperStateAt pins delayed-state lookup: for the pure decay system the
// state lag seconds ago is e^{lag} times the current state, and lags reaching
// before t0 return the constant initial history.
func TestStepperStateAt(t *testing.T) {
	sys := &System{
		Dim:    1,
		MaxLag: 0.5,
		F: func(_ float64, x []float64, _ func(float64, int) float64, dx []float64) {
			dx[0] = -x[0]
		},
	}
	st := NewStepper(sys, []float64{1}, 0, 1e-3)
	st.AdvanceTo(2)
	now := st.State()[0]
	for _, lag := range []float64{0.1, 0.25, 0.5} {
		got := st.StateAt(lag, 0)
		want := now * math.Exp(lag)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("StateAt(%v) = %v, want %v", lag, got, want)
		}
	}
	// Before history began: the constant initial value.
	st2 := NewStepper(sys, []float64{7}, 0, 1e-3)
	st2.AdvanceTo(0.01)
	if got := st2.StateAt(0.4, 0); got != 7 {
		t.Errorf("pre-t0 StateAt = %v, want the initial state 7", got)
	}
}

// TestStepperBoundedHistory is the long-horizon memory regression test for
// the formerly unbounded DDE history: integrating 2000× past MaxLag must not
// grow the ring (zero allocations per step once warm) and must keep heap
// growth far below what O(steps) history would need.
func TestStepperBoundedHistory(t *testing.T) {
	sys := &System{
		Dim:    3,
		MaxLag: 0.1,
		F: func(_ float64, x []float64, d func(float64, int) float64, dx []float64) {
			dx[0] = d(0.1, 1) - x[0]
			dx[1] = -x[1]
			dx[2] = x[0] - x[2]
		},
	}
	h := 1e-3
	st := NewStepper(sys, []float64{1, 1, 1}, 0, h)
	st.AdvanceTo(1) // warm the ring past MaxLag
	allocs := testing.AllocsPerRun(200, func() { st.Step() })
	if allocs != 0 {
		t.Errorf("warm Step allocates %v objects per run, want 0", allocs)
	}

	// Batch path: 200 s at h=1e-3 is 200k steps; bounded history keeps the
	// live heap near histLen (≈108 vectors), not 200k vectors (~14 MB here,
	// scaled up by dimension in real use).
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	got := sys.Integrate([]float64{1, 1, 1}, 0, 200, h, nil)
	runtime.GC()
	runtime.ReadMemStats(&after)
	if got[1] > 1e-9 {
		t.Fatalf("decay component did not decay: %v", got[1])
	}
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if grew > 1<<20 {
		t.Errorf("200k-step Integrate grew the live heap by %d bytes; history is unbounded again", grew)
	}
}

// TestHybridSystemZeroRateMatchesPlain pins the metamorphic guarantee at the
// model level: with no packet traffic the hybrid system integrates to the
// exact trajectory of the plain PERT/RED system.
func TestHybridSystemZeroRateMatchesPlain(t *testing.T) {
	p := fig13Params(0.4)
	plain := p.System()
	hybrid := p.HybridSystem(HybridInputs{PacketRate: func() float64 { return 0 }})
	h := 1e-3
	var plainX [][]float64
	plain.Integrate([]float64{1, 1, 1}, 0, 30, h, func(_ float64, x []float64) {
		plainX = append(plainX, append([]float64(nil), x...))
	})
	n := 0
	hybrid.Integrate([]float64{1, 1, 1}, 0, 30, h, func(_ float64, x []float64) {
		for i, v := range x {
			if v != plainX[n][i] {
				t.Fatalf("step %d x[%d]: hybrid %v != plain %v", n, i, v, plainX[n][i])
			}
		}
		n++
	})
}

// TestHybridEquilibrium verifies the coupled system settles onto the
// HybridEquilibrium prediction (equation (9) with effective capacity C−ap)
// when the packet side holds a constant arrival rate.
func TestHybridEquilibrium(t *testing.T) {
	// The Figure 13 stable configuration (R = 100 ms): its equilibrium
	// queueing delay sits far from the Tq=0 clamp, so the trajectory
	// converges instead of riding a drain-and-refill limit cycle. Packet
	// fractions are kept small enough that p* = 2/W*² stays below 1.
	p := fig13Params(0.1)
	for _, frac := range []float64{0, 0.1, 0.2} {
		ap := frac * p.C
		sys := p.HybridSystem(HybridInputs{PacketRate: func() float64 { return ap }})
		x := sys.Integrate([]float64{1, 0, 0}, 0, 300, 1e-3, nil)
		wStar, _, tqStar := p.HybridEquilibrium(ap)
		if rel := math.Abs(x[0]-wStar) / wStar; rel > 0.1 {
			t.Errorf("ap=%v: W settled at %v, predicted %v (%.1f%% off)", ap, x[0], wStar, 100*rel)
		}
		if rel := math.Abs(x[1]-tqStar) / tqStar; rel > 0.1 {
			t.Errorf("ap=%v: Tq settled at %v, predicted %v (%.1f%% off)", ap, x[1], tqStar, 100*rel)
		}
	}
	// ap = 0 must degenerate to the fluid-only equation (9).
	w0, p0, t0 := p.HybridEquilibrium(0)
	w1, p1, t1 := p.Equilibrium()
	if w0 != w1 || math.Abs(p0-p1) > 1e-15 || math.Abs(t0-t1) > 1e-15 {
		t.Errorf("HybridEquilibrium(0) = (%v,%v,%v), want Equilibrium() = (%v,%v,%v)", w0, p0, t0, w1, p1, t1)
	}
}
