// Package fluid implements the paper's control-theoretic side: a fixed-step
// delay-differential-equation integrator, the PERT/RED fluid model of
// equations (2)-(7)/(14), the classic TCP/RED fluid model of Misra et al. for
// comparison, the Theorem 1 stability condition with the minimum
// sampling-interval rule of equation (13), and the system equilibrium of
// equation (9). It replaces the paper's Matlab simulations (Figure 13).
package fluid

// System is a delay differential equation dx/dt = F(t, x, delayed) where
// delayed(lag, i) returns component i of the state at time t-lag.
type System struct {
	// Dim is the state dimension.
	Dim int
	// MaxLag bounds every lag F will request.
	MaxLag float64
	// F writes dx/dt into dx. It must not retain x or dx.
	F func(t float64, x []float64, delayed func(lag float64, i int) float64, dx []float64)
	// Clamp, if non-nil, post-processes the state after each step (e.g.
	// queue lengths cannot be negative).
	Clamp func(x []float64)
}

// Integrate advances the system from x0 at t0 to t1 with fixed step h using
// the classical fourth-order Runge-Kutta method; delayed states are linearly
// interpolated from the stored solution history (constant x0 before t0).
// observe, if non-nil, is called at every accepted step including the first.
// Lags must exceed h for the stage evaluations to stay within history.
func (s *System) Integrate(x0 []float64, t0, t1, h float64, observe func(t float64, x []float64)) []float64 {
	if len(x0) != s.Dim {
		panic("fluid: initial state has wrong dimension")
	}
	if h <= 0 || t1 < t0 {
		panic("fluid: bad integration window")
	}
	steps := int((t1-t0)/h + 0.5)
	// History ring: store every step; capacity covers MaxLag plus slack.
	histLen := int(s.MaxLag/h) + 8
	hist := make([][]float64, 0, steps+1)

	x := append([]float64(nil), x0...)
	hist = append(hist, append([]float64(nil), x...))
	_ = histLen

	t := t0
	delayedAt := func(base float64) func(lag float64, i int) float64 {
		return func(lag float64, i int) float64 {
			when := base - lag
			if when <= t0 {
				return x0[i]
			}
			pos := (when - t0) / h
			k := int(pos)
			if k >= len(hist)-1 {
				return hist[len(hist)-1][i]
			}
			frac := pos - float64(k)
			return hist[k][i]*(1-frac) + hist[k+1][i]*frac
		}
	}

	dx1 := make([]float64, s.Dim)
	dx2 := make([]float64, s.Dim)
	dx3 := make([]float64, s.Dim)
	dx4 := make([]float64, s.Dim)
	tmp := make([]float64, s.Dim)

	if observe != nil {
		observe(t, x)
	}
	for n := 0; n < steps; n++ {
		s.F(t, x, delayedAt(t), dx1)
		for i := range tmp {
			tmp[i] = x[i] + h/2*dx1[i]
		}
		s.F(t+h/2, tmp, delayedAt(t+h/2), dx2)
		for i := range tmp {
			tmp[i] = x[i] + h/2*dx2[i]
		}
		s.F(t+h/2, tmp, delayedAt(t+h/2), dx3)
		for i := range tmp {
			tmp[i] = x[i] + h*dx3[i]
		}
		s.F(t+h, tmp, delayedAt(t+h), dx4)
		for i := range x {
			x[i] += h / 6 * (dx1[i] + 2*dx2[i] + 2*dx3[i] + dx4[i])
		}
		if s.Clamp != nil {
			s.Clamp(x)
		}
		t = t0 + float64(n+1)*h
		hist = append(hist, append([]float64(nil), x...))
		if observe != nil {
			observe(t, x)
		}
	}
	return x
}
