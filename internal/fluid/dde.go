// Package fluid implements the paper's control-theoretic side: a fixed-step
// delay-differential-equation integrator, the PERT/RED fluid model of
// equations (2)-(7)/(14), the classic TCP/RED fluid model of Misra et al. for
// comparison, the Theorem 1 stability condition with the minimum
// sampling-interval rule of equation (13), and the system equilibrium of
// equation (9). It replaces the paper's Matlab simulations (Figure 13).
package fluid

// System is a delay differential equation dx/dt = F(t, x, delayed) where
// delayed(lag, i) returns component i of the state at time t-lag.
type System struct {
	// Dim is the state dimension.
	Dim int
	// MaxLag bounds every lag F will request.
	MaxLag float64
	// F writes dx/dt into dx. It must not retain x or dx.
	F func(t float64, x []float64, delayed func(lag float64, i int) float64, dx []float64)
	// Clamp, if non-nil, post-processes the state after each step (e.g.
	// queue lengths cannot be negative).
	Clamp func(x []float64)
}

// Integrate advances the system from x0 at t0 to t1 with fixed step h using
// the classical fourth-order Runge-Kutta method; delayed states are linearly
// interpolated from the stored solution history (constant x0 before t0).
// observe, if non-nil, is called at every accepted step including the first.
// Lags must exceed h for the stage evaluations to stay within history.
//
// Integrate is a batch convenience over Stepper; the retained history is a
// MaxLag-bounded ring, so memory stays O(MaxLag/h) no matter how long the
// window is.
func (s *System) Integrate(x0 []float64, t0, t1, h float64, observe func(t float64, x []float64)) []float64 {
	if h <= 0 || t1 < t0 {
		panic("fluid: bad integration window")
	}
	steps := int((t1-t0)/h + 0.5)
	st := NewStepper(s, x0, t0, h)
	if observe != nil {
		observe(st.Time(), st.State())
	}
	for n := 0; n < steps; n++ {
		st.Step()
		if observe != nil {
			observe(st.Time(), st.State())
		}
	}
	return append([]float64(nil), st.State()...)
}
