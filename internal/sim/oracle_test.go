package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// The engine's 4-ary lazy-deletion heap is checked against the standard
// library's container/heap, the implementation the engine used before the
// hot-path overhaul, kept here as a test oracle.

// oracleItem mirrors one scheduled callback in the reference heap.
type oracleItem struct {
	at   Time
	seq  uint64
	id   int
	dead bool // canceled event / superseded timer deadline
}

type oracleHeap []*oracleItem

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(*oracleItem)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

type evRec struct {
	ev   *Event
	item *oracleItem
	done bool // fired or canceled: the handle is no longer valid
}

type tmRec struct {
	tm   *Timer
	item *oracleItem // currently scheduled deadline, nil when idle
}

// oracleRun drives one randomized trial. It mirrors the engine's sequence
// counter by hand: every scheduling operation (At, Do, Post, Timer.Reset)
// consumes exactly one sequence number, which is the parity contract the
// lazy-deletion rewrite must preserve for runs to stay deterministic.
type oracleRun struct {
	t      *testing.T
	e      *Engine
	rng    *rand.Rand
	oh     oracleHeap
	seq    uint64
	nextID int
	events []*evRec
	timers []*tmRec
	fires  int
}

// expect pops the next live item off the reference heap and asserts the
// engine fired exactly that item at exactly its scheduled time.
func (r *oracleRun) expect(got *oracleItem) {
	r.t.Helper()
	for r.oh.Len() > 0 {
		it := heap.Pop(&r.oh).(*oracleItem)
		if it.dead {
			continue
		}
		if it != got {
			r.t.Fatalf("fire order diverged: engine fired id %d (at %v, seq %d), oracle expects id %d (at %v, seq %d)",
				got.id, got.at, got.seq, it.id, it.at, it.seq)
		}
		if r.e.Now() != it.at {
			r.t.Fatalf("id %d fired at clock %v, scheduled for %v", it.id, r.e.Now(), it.at)
		}
		r.fires++
		return
	}
	r.t.Fatalf("engine fired id %d but the oracle heap is empty", got.id)
}

func (r *oracleRun) futureTime() Time {
	return r.e.Now() + Time(r.rng.Int63n(int64(Second))) + 1
}

func (r *oracleRun) newItem(at Time) *oracleItem {
	r.seq++
	it := &oracleItem{at: at, seq: r.seq, id: r.nextID}
	r.nextID++
	heap.Push(&r.oh, it)
	return it
}

func (r *oracleRun) liveEvents() []*evRec {
	var live []*evRec
	for _, rec := range r.events {
		if !rec.done {
			live = append(live, rec)
		}
	}
	return live
}

// maybeOps issues up to n further random operations; callbacks call this to
// exercise scheduling and cancelation from inside the event loop.
func (r *oracleRun) maybeOps(n int) {
	for i := 0; i < n && r.nextID < 500; i++ {
		r.randomOp()
	}
}

func (r *oracleRun) randomOp() {
	switch k := r.rng.Intn(10); {
	case k < 3: // handle-carrying event
		it := r.newItem(r.futureTime())
		rec := &evRec{item: it}
		rec.ev = r.e.At(it.at, func() {
			rec.done = true
			r.expect(it)
			r.maybeOps(r.rng.Intn(3))
		})
		r.events = append(r.events, rec)
	case k < 5: // handle-free closure
		it := r.newItem(r.futureTime())
		r.e.Do(it.at, func() {
			r.expect(it)
			r.maybeOps(r.rng.Intn(2))
		})
	case k < 6: // handle-free with boxed argument
		it := r.newItem(r.futureTime())
		r.e.Post(it.at, func(a any) {
			r.expect(a.(*oracleItem))
			r.maybeOps(r.rng.Intn(2))
		}, it)
	case k < 8: // cancel a pending handle (lazy deletion in the engine)
		live := r.liveEvents()
		if len(live) == 0 {
			return
		}
		rec := live[r.rng.Intn(len(live))]
		rec.ev.Cancel()
		rec.item.dead = true
		rec.done = true
	case k < 9: // move a timer deadline (supersedes any pending one)
		tr := r.timers[r.rng.Intn(len(r.timers))]
		at := r.futureTime()
		if tr.item != nil {
			tr.item.dead = true
		}
		tr.item = r.newItem(at)
		tr.tm.Reset(at)
	default: // stop a timer (consumes no sequence number)
		tr := r.timers[r.rng.Intn(len(r.timers))]
		if tr.item != nil {
			tr.item.dead = true
			tr.item = nil
		}
		tr.tm.Stop()
	}
}

// TestHeapMatchesContainerHeapOracle drives the engine and the container/heap
// oracle side by side through randomized schedules, handle cancelations, and
// timer resets/stops — including operations issued from inside firing
// callbacks — and asserts every callback fires in exactly the (time, seq)
// order the oracle predicts. This is the correctness fence around lazy
// deletion: dead entries may linger in the engine's heap, but the observable
// fire sequence must be indistinguishable from eager removal.
func TestHeapMatchesContainerHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := &oracleRun{
			t:   t,
			e:   NewEngine(seed),
			rng: rand.New(rand.NewSource(seed * 0x9e3779b97f4a7c)),
		}
		for i := 0; i < 4; i++ {
			tr := &tmRec{}
			tr.tm = r.e.NewTimer(func() {
				it := tr.item
				tr.item = nil
				if it == nil {
					t.Fatal("timer fired while oracle thinks it is idle")
				}
				r.expect(it)
				r.maybeOps(r.rng.Intn(3))
			})
			r.timers = append(r.timers, tr)
		}
		for i := 0; i < 150; i++ {
			r.randomOp()
		}
		r.e.Run(1 << 60) // drain everything

		for r.oh.Len() > 0 {
			it := heap.Pop(&r.oh).(*oracleItem)
			if !it.dead {
				t.Fatalf("seed %d: oracle item id %d at %v never fired", seed, it.id, it.at)
			}
		}
		if n := r.e.Pending(); n != 0 {
			t.Fatalf("seed %d: %d events still pending after drain", seed, n)
		}
		if r.fires == 0 {
			t.Fatalf("seed %d: trial fired nothing", seed)
		}
	}
}
